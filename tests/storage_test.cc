// Unit tests for storage/disk_table.

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "storage/disk_table.h"

namespace hydra {
namespace {

class DiskTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hydra_storage_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(DiskTableTest, WriteScanRoundTrip) {
  const std::string path = Path("t1.tbl");
  DiskTableWriter writer(path, 3);
  ASSERT_TRUE(writer.Open().ok());
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(writer.Append({i, i * 2, -i}).ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(writer.rows_written(), 1000u);

  int64_t next = 0;
  auto rows = ScanDiskTable(path, [&](const Row& r) {
    EXPECT_EQ(r[0], next);
    EXPECT_EQ(r[1], next * 2);
    EXPECT_EQ(r[2], -next);
    ++next;
  });
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, 1000u);
  EXPECT_EQ(next, 1000);
}

TEST_F(DiskTableTest, ReadWholeTable) {
  const std::string path = Path("t2.tbl");
  Table t(2);
  t.AppendRow({1, 2});
  t.AppendRow({3, 4});
  ASSERT_TRUE(WriteDiskTable(t, path).ok());
  auto back = ReadDiskTable(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 2u);
  EXPECT_EQ(back->At(1, 1), 4);
}

TEST_F(DiskTableTest, EmptyTableRoundTrip) {
  const std::string path = Path("t3.tbl");
  DiskTableWriter writer(path, 4);
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.Close().ok());
  auto rows = ScanDiskTable(path, [](const Row&) { FAIL(); });
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, 0u);
}

TEST_F(DiskTableTest, LargeBatchCrossesBufferBoundary) {
  // More rows than the 64K-row internal buffer.
  const std::string path = Path("t4.tbl");
  DiskTableWriter writer(path, 1);
  ASSERT_TRUE(writer.Open().ok());
  const int64_t n = 70000;
  for (int64_t i = 0; i < n; ++i) ASSERT_TRUE(writer.Append({i}).ok());
  ASSERT_TRUE(writer.Close().ok());
  int64_t sum = 0;
  auto rows = ScanDiskTable(path, [&](const Row& r) { sum += r[0]; });
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, static_cast<uint64_t>(n));
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST_F(DiskTableTest, MissingFileIsIoError) {
  auto rows = ScanDiskTable(Path("nope.tbl"), [](const Row&) {});
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);
}

TEST_F(DiskTableTest, CorruptHeaderRejected) {
  const std::string path = Path("garbage.tbl");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[64] = "not a hydra table";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_FALSE(ScanDiskTable(path, [](const Row&) {}).ok());
  EXPECT_FALSE(ReadDiskTable(path).ok());
}

TEST_F(DiskTableTest, BytesReflectsContent) {
  const std::string path = Path("t5.tbl");
  Table t(2);
  for (int i = 0; i < 100; ++i) t.AppendRow({i, i});
  ASSERT_TRUE(WriteDiskTable(t, path).ok());
  auto bytes = DiskTableBytes(path);
  ASSERT_TRUE(bytes.ok());
  // Header (24 bytes) + 200 values.
  EXPECT_EQ(*bytes, 24u + 200u * sizeof(Value));
}

}  // namespace
}  // namespace hydra
