// Unit tests for storage/disk_table.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "hydra/regenerator.h"
#include "hydra/tuple_generator.h"
#include "storage/disk_table.h"
#include "workload/toy.h"

namespace hydra {
namespace {

class DiskTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoint::DisarmAll();
    dir_ = std::filesystem::temp_directory_path() /
           ("hydra_storage_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    Failpoint::DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(DiskTableTest, WriteScanRoundTrip) {
  const std::string path = Path("t1.tbl");
  DiskTableWriter writer(path, 3);
  ASSERT_TRUE(writer.Open().ok());
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(writer.Append({i, i * 2, -i}).ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(writer.rows_written(), 1000u);

  int64_t next = 0;
  auto rows = ScanDiskTable(path, [&](const Row& r) {
    EXPECT_EQ(r[0], next);
    EXPECT_EQ(r[1], next * 2);
    EXPECT_EQ(r[2], -next);
    ++next;
  });
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, 1000u);
  EXPECT_EQ(next, 1000);
}

TEST_F(DiskTableTest, ReadWholeTable) {
  const std::string path = Path("t2.tbl");
  Table t(2);
  t.AppendRow({1, 2});
  t.AppendRow({3, 4});
  ASSERT_TRUE(WriteDiskTable(t, path).ok());
  auto back = ReadDiskTable(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 2u);
  EXPECT_EQ(back->At(1, 1), 4);
}

TEST_F(DiskTableTest, EmptyTableRoundTrip) {
  const std::string path = Path("t3.tbl");
  DiskTableWriter writer(path, 4);
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.Close().ok());
  auto rows = ScanDiskTable(path, [](const Row&) { FAIL(); });
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, 0u);
}

TEST_F(DiskTableTest, LargeBatchCrossesBufferBoundary) {
  // More rows than the 64K-row internal buffer.
  const std::string path = Path("t4.tbl");
  DiskTableWriter writer(path, 1);
  ASSERT_TRUE(writer.Open().ok());
  const int64_t n = 70000;
  for (int64_t i = 0; i < n; ++i) ASSERT_TRUE(writer.Append({i}).ok());
  ASSERT_TRUE(writer.Close().ok());
  int64_t sum = 0;
  auto rows = ScanDiskTable(path, [&](const Row& r) { sum += r[0]; });
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, static_cast<uint64_t>(n));
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST_F(DiskTableTest, MissingFileIsIoError) {
  auto rows = ScanDiskTable(Path("nope.tbl"), [](const Row&) {});
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);
}

TEST_F(DiskTableTest, CorruptHeaderRejected) {
  const std::string path = Path("garbage.tbl");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[64] = "not a hydra table";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_FALSE(ScanDiskTable(path, [](const Row&) {}).ok());
  EXPECT_FALSE(ReadDiskTable(path).ok());
}

TEST_F(DiskTableTest, ShardWritersProduceSequentialBytes) {
  // Write [0, 1000) sequentially, then the same rows as three out-of-order
  // shards into a preallocated file; the bytes must match exactly.
  const std::string seq_path = Path("seq.tbl");
  DiskTableWriter seq(seq_path, 2);
  ASSERT_TRUE(seq.Open().ok());
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(seq.Append({i, i * 3}).ok());
  }
  ASSERT_TRUE(seq.Close().ok());

  const std::string shard_path = Path("shard.tbl");
  ASSERT_TRUE(PreallocateDiskTable(shard_path, 2).ok());
  for (const auto& [begin, end] : std::vector<std::pair<int64_t, int64_t>>{
           {700, 1000}, {0, 333}, {333, 700}}) {
    DiskTableWriter writer(shard_path, 2);
    ASSERT_TRUE(writer.OpenShard(begin).ok());
    for (int64_t i = begin; i < end; ++i) {
      ASSERT_TRUE(writer.Append({i, i * 3}).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
    EXPECT_EQ(writer.rows_written(), static_cast<uint64_t>(end - begin));
  }
  // Before finalization the file must scan as empty (in-progress marker).
  auto in_progress = ScanDiskTable(shard_path, [](const Row&) { FAIL(); });
  ASSERT_TRUE(in_progress.ok());
  EXPECT_EQ(*in_progress, 0u);
  ASSERT_TRUE(FinalizeDiskTable(shard_path, 2, 1000).ok());

  std::ifstream a(seq_path, std::ios::binary), b(shard_path, std::ios::binary);
  const std::vector<char> seq_bytes((std::istreambuf_iterator<char>(a)),
                                    std::istreambuf_iterator<char>());
  const std::vector<char> shard_bytes((std::istreambuf_iterator<char>(b)),
                                      std::istreambuf_iterator<char>());
  EXPECT_EQ(shard_bytes, seq_bytes);
}

TEST_F(DiskTableTest, ShardBlocksScanBack) {
  const std::string path = Path("shard_blocks.tbl");
  ASSERT_TRUE(PreallocateDiskTable(path, 1).ok());
  const Value lo[] = {0, 1, 2, 3};
  const Value hi[] = {4, 5, 6, 7, 8, 9};
  {
    DiskTableWriter writer(path, 1);
    ASSERT_TRUE(writer.OpenShard(4).ok());
    ASSERT_TRUE(writer.AppendBlock(hi, 6).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  {
    DiskTableWriter writer(path, 1);
    ASSERT_TRUE(writer.OpenShard(0).ok());
    ASSERT_TRUE(writer.AppendBlock(lo, 4).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  ASSERT_TRUE(FinalizeDiskTable(path, 1, 10).ok());
  int64_t next = 0;
  auto rows = ScanDiskTable(path, [&](const Row& r) {
    EXPECT_EQ(r[0], next);
    ++next;
  });
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, 10u);
}

TEST_F(DiskTableTest, OpenShardRequiresExistingFile) {
  DiskTableWriter writer(Path("absent.tbl"), 2);
  EXPECT_EQ(writer.OpenShard(0).code(), StatusCode::kIoError);
}

TEST_F(DiskTableTest, OpenShardRejectsMismatchedHeader) {
  // A stale file with a different column count at the same path must be an
  // error, not silently misaligned row offsets.
  const std::string path = Path("stale.tbl");
  ASSERT_TRUE(PreallocateDiskTable(path, 3).ok());
  DiskTableWriter writer(path, 2);
  EXPECT_EQ(writer.OpenShard(0).code(), StatusCode::kIoError);

  const std::string garbage = Path("garbage_shard.tbl");
  std::ofstream(garbage, std::ios::binary) << "not a hydra table at all....";
  DiskTableWriter writer2(garbage, 2);
  EXPECT_EQ(writer2.OpenShard(0).code(), StatusCode::kIoError);
}

TEST_F(DiskTableTest, BytesReflectsContent) {
  const std::string path = Path("t5.tbl");
  Table t(2);
  for (int i = 0; i < 100; ++i) t.AppendRow({i, i});
  ASSERT_TRUE(WriteDiskTable(t, path).ok());
  auto bytes = DiskTableBytes(path);
  ASSERT_TRUE(bytes.ok());
  // Header (24 bytes) + 200 values.
  EXPECT_EQ(*bytes, 24u + 200u * sizeof(Value));
}

// ---- injected-fault error paths (docs/robustness.md) ----------------------

TEST_F(DiskTableTest, InjectedOpenFailureSurfacesCleanly) {
  ASSERT_TRUE(Failpoint::ArmFromString("disk_table/open=error(IO_ERROR)").ok());
  DiskTableWriter writer(Path("never_created.tbl"), 2);
  EXPECT_EQ(writer.Open().code(), StatusCode::kIoError);
  // The writer was never opened; closing is still safe and the failure left
  // no half-created file behind the caller's back.
  (void)writer.Close();
}

TEST_F(DiskTableTest, DiskFullMidWriteLeavesFileScanningAsEmpty) {
  const std::string path = Path("diskfull.tbl");
  DiskTableWriter writer(path, 2);
  ASSERT_TRUE(writer.Open().ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(writer.Append({i, i}).ok());
  // From here every flush fails, as if the disk filled under the buffer.
  ASSERT_TRUE(
      Failpoint::ArmFromString("disk_table/append=error(IO_ERROR)").ok());
  Status status = Status::OK();
  for (int i = 0; i < 100000 && status.ok(); ++i) {
    status = writer.Append({i, i});
  }
  const Status close_status = writer.Close();
  // The failure surfaced on the buffered-append path or at Close — never
  // silently — and the unfinalized header makes the file scan as empty.
  EXPECT_TRUE(!status.ok() || !close_status.ok());
  auto rows = ScanDiskTable(path, [](const Row&) { FAIL(); });
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, 0u);
}

TEST_F(DiskTableTest, InjectedShardOpenFailure) {
  const std::string path = Path("shardfail.tbl");
  ASSERT_TRUE(PreallocateDiskTable(path, 2).ok());
  ASSERT_TRUE(
      Failpoint::ArmFromString("disk_table/open_shard=error(IO_ERROR)").ok());
  DiskTableWriter writer(path, 2);
  EXPECT_EQ(writer.OpenShard(0).code(), StatusCode::kIoError);
}

// One failed shard aborts the whole materialization fleet cleanly: the
// error propagates, no header is ever finalized, and every output file
// scans as empty — never as a table with zero-filled holes
// (the MaterializeToDisk contract in tuple_generator.cc).
TEST_F(DiskTableTest, FailedShardAbortsMaterializationFleet) {
  const ToyEnvironment env = MakeToyEnvironment();
  HydraRegenerator hydra(env.schema);
  auto regen = hydra.Regenerate(env.ccs);
  ASSERT_TRUE(regen.ok()) << regen.status().ToString();
  const DatabaseSummary& summary = regen->summary;

  GenerationOptions options;
  options.num_threads = 4;
  options.shard_rows = 256;  // many shards per relation: a real fleet
  ASSERT_TRUE(
      Failpoint::ArmFromString("disk_table/open_shard=error(IO_ERROR,times=1)")
          .ok());
  const auto bytes = MaterializeToDisk(summary, dir_.string(), options);
  ASSERT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.status().code(), StatusCode::kIoError);
  Failpoint::DisarmAll();

  for (int r = 0; r < summary.schema.num_relations(); ++r) {
    const std::string path =
        (dir_ / (summary.schema.relation(r).name() + ".tbl")).string();
    auto rows = ScanDiskTable(path, [](const Row&) { FAIL(); });
    ASSERT_TRUE(rows.ok()) << path << ": " << rows.status().ToString();
    EXPECT_EQ(*rows, 0u) << path << " scanned rows after an aborted fleet";
  }

  // The same summary materializes fine once the fault clears — the aborted
  // run left nothing poisoned behind.
  const auto retry = MaterializeToDisk(summary, dir_.string(), options);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_GT(*retry, 0u);
}

}  // namespace
}  // namespace hydra
