// Randomized end-to-end property tests: for randomly generated schemas,
// client databases and workloads, the full Hydra pipeline must (a) run,
// (b) keep referential integrity, and (c) reproduce every extracted CC
// within a small relative error.

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "hydra/regenerator.h"
#include "hydra/tuple_generator.h"
#include "workload/querygen.h"
#include "workload/workload_runner.h"

namespace hydra {
namespace {

// A random star/snowflake schema: 1-2 levels of dimensions under 1-2 facts.
Schema RandomSchema(Rng& rng) {
  Schema s;
  const int num_leaf_dims = static_cast<int>(rng.NextInt(1, 4));
  std::vector<int> leaves;
  for (int i = 0; i < num_leaf_dims; ++i) {
    Relation d("leaf" + std::to_string(i),
               static_cast<uint64_t>(rng.NextInt(20, 200)));
    d.AddPrimaryKey("pk");
    const int attrs = static_cast<int>(rng.NextInt(1, 4));
    for (int a = 0; a < attrs; ++a) {
      const int64_t width = rng.NextInt(8, 120);
      d.AddDataAttribute("x" + std::to_string(a), Interval(0, width));
    }
    leaves.push_back(s.AddRelation(std::move(d)));
  }
  // Mid-level dimension referencing a random leaf (snowflake).
  std::vector<int> mids = leaves;
  if (rng.NextBool(0.7)) {
    Relation m("mid", static_cast<uint64_t>(rng.NextInt(50, 400)));
    m.AddPrimaryKey("pk");
    m.AddForeignKey("leaf_fk", leaves[rng.NextBounded(leaves.size())]);
    const int attrs = static_cast<int>(rng.NextInt(1, 3));
    for (int a = 0; a < attrs; ++a) {
      m.AddDataAttribute("y" + std::to_string(a),
                         Interval(0, rng.NextInt(8, 60)));
    }
    mids.push_back(s.AddRelation(std::move(m)));
  }
  // Fact referencing a subset of dims.
  Relation f("fact", static_cast<uint64_t>(rng.NextInt(500, 4000)));
  f.AddPrimaryKey("pk");
  int fk_count = 0;
  for (int dim : mids) {
    if (fk_count < 3 && rng.NextBool(0.8)) {
      f.AddForeignKey("fk" + std::to_string(dim), dim);
      ++fk_count;
    }
  }
  if (fk_count == 0) f.AddForeignKey("fk0", mids[0]);
  const int attrs = static_cast<int>(rng.NextInt(1, 4));
  for (int a = 0; a < attrs; ++a) {
    f.AddDataAttribute("z" + std::to_string(a),
                       Interval(0, rng.NextInt(10, 300)));
  }
  s.AddRelation(std::move(f));
  HYDRA_CHECK_OK(s.Validate());
  return s;
}

std::vector<Query> RandomWorkload(const Schema& schema, Rng& rng) {
  FilterGenOptions filter_options;
  filter_options.dnf_probability = 0.2;
  filter_options.in_probability = 0.2;
  std::vector<Query> queries;
  const int n = static_cast<int>(rng.NextInt(2, 7));
  const int fact = schema.RelationIndex("fact");
  for (int qi = 0; qi < n; ++qi) {
    Query q;
    q.name = "rq" + std::to_string(qi);
    q.tables.push_back(QueryTable{fact, DnfPredicate::True()});
    const Relation& rel = schema.relation(fact);
    std::vector<int> fks = rel.ForeignKeyIndices();
    for (int fk : fks) {
      if (rng.NextBool(0.6)) {
        JoinPkSide(&q, 0, fk, rel.attribute(fk).fk_target);
      }
    }
    int filters = static_cast<int>(rng.NextInt(1, 4));
    int attempts = 0;
    while (filters > 0 && attempts++ < 16) {
      const size_t t = rng.NextBounded(q.tables.size());
      const Relation& trel = schema.relation(q.tables[t].relation);
      const auto data_attrs = trel.DataAttrIndices();
      if (data_attrs.empty()) continue;
      AddFilter(&q.tables[t],
                RandomFilter(trel,
                             data_attrs[rng.NextBounded(data_attrs.size())],
                             rng, filter_options));
      --filters;
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

class PipelinePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelinePropertyTest, RegeneratedDatabaseReproducesAllCcs) {
  Rng rng(GetParam() * 7919 + 2);
  const Schema schema = RandomSchema(rng);
  auto site = BuildClientSite(schema, DataGenOptions{.seed = rng.Next64()},
                              RandomWorkload(schema, rng));
  ASSERT_TRUE(site.ok()) << site.status().ToString();

  HydraRegenerator hydra(site->schema);
  auto result = hydra.Regenerate(site->ccs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto db = MaterializeDatabase(result->summary);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->CheckReferentialIntegrity().ok());

  auto report = MeasureVolumetricSimilarity(*site, *db);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Integerization noise plus referential additions stay well under the
  // paper's 10% band — with an absolute floor of a few tuples, since the
  // additive referential-integrity error is a fixed number of rows and can
  // dominate the *relative* error of tiny-cardinality CCs (Section 5.3).
  int fine = 0;
  for (const SimilarityEntry& e : report->entries) {
    const double want = static_cast<double>(e.client_cardinality);
    const double got = static_cast<double>(e.vendor_cardinality);
    if (std::fabs(got - want) <= std::max(4.0, 0.1 * want)) ++fine;
  }
  EXPECT_GE(static_cast<double>(fine) / report->entries.size(), 0.95)
      << "max error " << report->MaxAbsError();
  for (const SimilarityEntry& e : report->entries) {
    EXPECT_GE(e.signed_relative_error, -0.05) << e.label;
  }
}

TEST_P(PipelinePropertyTest, DynamicAndStaticGenerationAgree) {
  Rng rng(GetParam() * 104729 + 5);
  const Schema schema = RandomSchema(rng);
  auto site = BuildClientSite(schema, DataGenOptions{.seed = rng.Next64()},
                              RandomWorkload(schema, rng));
  ASSERT_TRUE(site.ok());
  HydraRegenerator hydra(site->schema);
  auto result = hydra.Regenerate(site->ccs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  TupleGenerator gen(result->summary);
  auto db = MaterializeDatabase(result->summary);
  ASSERT_TRUE(db.ok());
  for (int r = 0; r < site->schema.num_relations(); ++r) {
    ASSERT_EQ(gen.RowCount(r), db->RowCount(r));
    // Random access agrees with materialized rows at probe positions.
    Row row;
    const int64_t n = static_cast<int64_t>(gen.RowCount(r));
    for (int64_t probe = 0; probe < n;
         probe += std::max<int64_t>(1, n / 13)) {
      gen.GetTuple(r, probe, &row);
      for (int c = 0; c < db->table(r).num_columns(); ++c) {
        ASSERT_EQ(row[c], db->table(r).At(probe, c))
            << "relation " << r << " tuple " << probe << " col " << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePropertyTest,
                         ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace hydra
