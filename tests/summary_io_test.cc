// Tests for hydra/summary_io: summary serialization round trips.

#include <filesystem>

#include <gtest/gtest.h>

#include "hydra/regenerator.h"
#include "hydra/summary_io.h"
#include "hydra/tuple_generator.h"
#include "workload/toy.h"

namespace hydra {
namespace {

class SummaryIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hydra_sio_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    ToyEnvironment env = MakeToyEnvironment();
    schema_ = env.schema;
    HydraRegenerator hydra(env.schema);
    auto result = hydra.Regenerate(env.ccs);
    ASSERT_TRUE(result.ok());
    summary_ = std::move(result->summary);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
  Schema schema_;
  DatabaseSummary summary_;
};

TEST_F(SummaryIoTest, RoundTripPreservesEverything) {
  auto bytes = WriteSummary(summary_, Path("toy.summary"));
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_GT(*bytes, 0u);

  auto back = ReadSummary(Path("toy.summary"));
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  // Schema round trip.
  ASSERT_EQ(back->schema.num_relations(), schema_.num_relations());
  for (int r = 0; r < schema_.num_relations(); ++r) {
    EXPECT_EQ(back->schema.relation(r).name(), schema_.relation(r).name());
    EXPECT_EQ(back->schema.relation(r).num_attributes(),
              schema_.relation(r).num_attributes());
    EXPECT_EQ(back->schema.relation(r).PrimaryKeyIndex(),
              schema_.relation(r).PrimaryKeyIndex());
  }
  EXPECT_TRUE(back->schema.Validate().ok());

  // Summary rows round trip.
  ASSERT_EQ(back->relations.size(), summary_.relations.size());
  for (size_t r = 0; r < summary_.relations.size(); ++r) {
    const RelationSummary& a = summary_.relations[r];
    const RelationSummary& b = back->relations[r];
    EXPECT_EQ(a.attr_indices, b.attr_indices);
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (size_t i = 0; i < a.rows.size(); ++i) {
      EXPECT_EQ(a.rows[i].values, b.rows[i].values);
      EXPECT_EQ(a.rows[i].count, b.rows[i].count);
    }
    EXPECT_EQ(a.prefix_counts, b.prefix_counts) << "Finalize() on load";
  }
  EXPECT_EQ(back->extra_tuples, summary_.extra_tuples);
}

TEST_F(SummaryIoTest, LoadedSummaryDrivesTupleGenerator) {
  ASSERT_TRUE(WriteSummary(summary_, Path("toy.summary")).ok());
  auto back = ReadSummary(Path("toy.summary"));
  ASSERT_TRUE(back.ok());

  TupleGenerator original(summary_);
  TupleGenerator loaded(*back);
  for (int r = 0; r < schema_.num_relations(); ++r) {
    ASSERT_EQ(original.RowCount(r), loaded.RowCount(r));
    Row a, b;
    const int64_t n = static_cast<int64_t>(original.RowCount(r));
    for (int64_t probe = 0; probe < n; probe += std::max<int64_t>(1, n / 7)) {
      original.GetTuple(r, probe, &a);
      loaded.GetTuple(r, probe, &b);
      EXPECT_EQ(a, b);
    }
  }
}

TEST_F(SummaryIoTest, MissingFileFails) {
  EXPECT_FALSE(ReadSummary(Path("nope.summary")).ok());
}

TEST_F(SummaryIoTest, GarbageFileFails) {
  std::FILE* f = std::fopen(Path("junk.summary").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[32] = "definitely not a summary";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_FALSE(ReadSummary(Path("junk.summary")).ok());
}

TEST_F(SummaryIoTest, TruncatedFileFails) {
  ASSERT_TRUE(WriteSummary(summary_, Path("full.summary")).ok());
  // Copy a truncated prefix.
  auto full = std::filesystem::file_size(Path("full.summary"));
  std::filesystem::copy_file(Path("full.summary"), Path("cut.summary"));
  std::filesystem::resize_file(Path("cut.summary"), full / 2);
  EXPECT_FALSE(ReadSummary(Path("cut.summary")).ok());
}

}  // namespace
}  // namespace hydra
