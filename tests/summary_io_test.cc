// Tests for hydra/summary_io: summary serialization round trips.

#include <filesystem>

#include <gtest/gtest.h>

#include "hydra/regenerator.h"
#include "hydra/summary_io.h"
#include "hydra/tuple_generator.h"
#include "workload/toy.h"

namespace hydra {
namespace {

class SummaryIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hydra_sio_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    ToyEnvironment env = MakeToyEnvironment();
    schema_ = env.schema;
    HydraRegenerator hydra(env.schema);
    auto result = hydra.Regenerate(env.ccs);
    ASSERT_TRUE(result.ok());
    summary_ = std::move(result->summary);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
  Schema schema_;
  DatabaseSummary summary_;
};

TEST_F(SummaryIoTest, RoundTripPreservesEverything) {
  auto bytes = WriteSummary(summary_, Path("toy.summary"));
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_GT(*bytes, 0u);

  auto back = ReadSummary(Path("toy.summary"));
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  // Schema round trip.
  ASSERT_EQ(back->schema.num_relations(), schema_.num_relations());
  for (int r = 0; r < schema_.num_relations(); ++r) {
    EXPECT_EQ(back->schema.relation(r).name(), schema_.relation(r).name());
    EXPECT_EQ(back->schema.relation(r).num_attributes(),
              schema_.relation(r).num_attributes());
    EXPECT_EQ(back->schema.relation(r).PrimaryKeyIndex(),
              schema_.relation(r).PrimaryKeyIndex());
  }
  EXPECT_TRUE(back->schema.Validate().ok());

  // Summary rows round trip.
  ASSERT_EQ(back->relations.size(), summary_.relations.size());
  for (size_t r = 0; r < summary_.relations.size(); ++r) {
    const RelationSummary& a = summary_.relations[r];
    const RelationSummary& b = back->relations[r];
    EXPECT_EQ(a.attr_indices, b.attr_indices);
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (size_t i = 0; i < a.rows.size(); ++i) {
      EXPECT_EQ(a.rows[i].values, b.rows[i].values);
      EXPECT_EQ(a.rows[i].count, b.rows[i].count);
    }
    EXPECT_EQ(a.prefix_counts, b.prefix_counts) << "Finalize() on load";
  }
  EXPECT_EQ(back->extra_tuples, summary_.extra_tuples);
}

TEST_F(SummaryIoTest, LoadedSummaryDrivesTupleGenerator) {
  ASSERT_TRUE(WriteSummary(summary_, Path("toy.summary")).ok());
  auto back = ReadSummary(Path("toy.summary"));
  ASSERT_TRUE(back.ok());

  TupleGenerator original(summary_);
  TupleGenerator loaded(*back);
  for (int r = 0; r < schema_.num_relations(); ++r) {
    ASSERT_EQ(original.RowCount(r), loaded.RowCount(r));
    Row a, b;
    const int64_t n = static_cast<int64_t>(original.RowCount(r));
    for (int64_t probe = 0; probe < n; probe += std::max<int64_t>(1, n / 7)) {
      original.GetTuple(r, probe, &a);
      loaded.GetTuple(r, probe, &b);
      EXPECT_EQ(a, b);
    }
  }
}

TEST_F(SummaryIoTest, MissingFileFails) {
  EXPECT_FALSE(ReadSummary(Path("nope.summary")).ok());
}

TEST_F(SummaryIoTest, GarbageFileFails) {
  std::FILE* f = std::fopen(Path("junk.summary").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[32] = "definitely not a summary";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_FALSE(ReadSummary(Path("junk.summary")).ok());
}

TEST_F(SummaryIoTest, TruncatedFileFails) {
  ASSERT_TRUE(WriteSummary(summary_, Path("full.summary")).ok());
  // Copy a truncated prefix.
  auto full = std::filesystem::file_size(Path("full.summary"));
  std::filesystem::copy_file(Path("full.summary"), Path("cut.summary"));
  std::filesystem::resize_file(Path("cut.summary"), full / 2);
  EXPECT_FALSE(ReadSummary(Path("cut.summary")).ok());
}

TEST_F(SummaryIoTest, EveryTruncationLengthFails) {
  // No prefix of a valid file may crash or parse: the serve layer loads
  // these at runtime. Sweep a stride of truncation points.
  ASSERT_TRUE(WriteSummary(summary_, Path("sweep.summary")).ok());
  const auto full = std::filesystem::file_size(Path("sweep.summary"));
  for (uintmax_t cut = 0; cut < full; cut += 13) {
    std::filesystem::copy_file(
        Path("sweep.summary"), Path("sweep_cut.summary"),
        std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(Path("sweep_cut.summary"), cut);
    EXPECT_FALSE(ReadSummary(Path("sweep_cut.summary")).ok()) << cut;
  }
}

// Hand-writes summary files with targeted field corruptions. Field layout
// mirrors WriteSummary; every case must come back as a Status, never a
// crash or an absurd allocation.
class CorruptSummaryWriter {
 public:
  explicit CorruptSummaryWriter(const std::string& path) {
    f_ = std::fopen(path.c_str(), "wb");
  }
  ~CorruptSummaryWriter() {
    if (f_ != nullptr) std::fclose(f_);
  }

  void U64(uint64_t v) { std::fwrite(&v, sizeof(v), 1, f_); }
  void I64(int64_t v) { std::fwrite(&v, sizeof(v), 1, f_); }
  void I32(int32_t v) { std::fwrite(&v, sizeof(v), 1, f_); }
  void Str(const std::string& s) {
    U64(s.size());
    std::fwrite(s.data(), 1, s.size(), f_);
  }
  void Magic() { U64(0x48594452'53554D31ULL); }
  // Schema of one relation R(pk, a) with a [0, 10) data attribute.
  void MinimalSchema() {
    I32(1);  // num_relations
    Str("R");
    U64(4);  // row_count
    I32(2);  // num_attrs
    Str("pk");
    I32(1);  // kPrimaryKey
    I64(0);
    I64(4);
    I32(-1);
    Str("a");
    I32(0);  // kData
    I64(0);
    I64(10);
    I32(-1);
  }
  void Close() {
    std::fclose(f_);
    f_ = nullptr;
  }

 private:
  std::FILE* f_;
};

TEST_F(SummaryIoTest, HugeClaimedRowCountFailsWithoutAllocating) {
  CorruptSummaryWriter w(Path("huge.summary"));
  w.Magic();
  w.MinimalSchema();
  w.I32(0);  // summary relation
  w.I32(1);  // cols
  w.I32(1);  // attr index
  // Claims 2^40 summary rows; the file ends here. The old reader resized
  // the row vector before noticing, which is an OOM at ~40 bytes per row.
  w.U64(1ull << 40);
  w.Close();
  auto result = ReadSummary(Path("huge.summary"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(SummaryIoTest, SummaryAttrIndexOutOfRangeFails) {
  CorruptSummaryWriter w(Path("attr.summary"));
  w.Magic();
  w.MinimalSchema();
  w.I32(0);
  w.I32(1);
  w.I32(5);  // relation R has 2 attributes
  w.U64(0);
  w.U64(0);  // extra_tuples
  w.Close();
  EXPECT_FALSE(ReadSummary(Path("attr.summary")).ok());
}

TEST_F(SummaryIoTest, NegativeTupleCountFails) {
  CorruptSummaryWriter w(Path("negcount.summary"));
  w.Magic();
  w.MinimalSchema();
  w.I32(0);
  w.I32(1);
  w.I32(1);
  w.U64(1);   // one summary row
  w.I64(-3);  // negative NumTuples would corrupt the prefix sums
  w.I64(7);
  w.U64(0);
  w.Close();
  EXPECT_FALSE(ReadSummary(Path("negcount.summary")).ok());
}

TEST_F(SummaryIoTest, SecondPrimaryKeyFails) {
  CorruptSummaryWriter w(Path("twopk.summary"));
  w.Magic();
  w.I32(1);
  w.Str("R");
  w.U64(4);
  w.I32(2);
  w.Str("pk");
  w.I32(1);  // kPrimaryKey
  w.I64(0);
  w.I64(4);
  w.I32(-1);
  w.Str("pk2");
  w.I32(1);  // a second PK CHECK-aborted the schema builder before
  w.I64(0);
  w.I64(4);
  w.I32(-1);
  w.Close();
  EXPECT_FALSE(ReadSummary(Path("twopk.summary")).ok());
}

TEST_F(SummaryIoTest, DuplicateAttributeNameFails) {
  CorruptSummaryWriter w(Path("dupattr.summary"));
  w.Magic();
  w.I32(1);
  w.Str("R");
  w.U64(4);
  w.I32(2);
  w.Str("a");
  w.I32(0);
  w.I64(0);
  w.I64(10);
  w.I32(-1);
  w.Str("a");  // duplicate name CHECK-aborted the schema builder before
  w.I32(0);
  w.I64(0);
  w.I64(10);
  w.I32(-1);
  w.Close();
  EXPECT_FALSE(ReadSummary(Path("dupattr.summary")).ok());
}

TEST_F(SummaryIoTest, ForeignKeyTargetOutOfRangeFails) {
  CorruptSummaryWriter w(Path("badfk.summary"));
  w.Magic();
  w.I32(1);
  w.Str("R");
  w.U64(4);
  w.I32(1);
  w.Str("fk");
  w.I32(2);  // kForeignKey
  w.I64(0);
  w.I64(1);
  w.I32(9);  // only one relation exists
  w.Close();
  EXPECT_FALSE(ReadSummary(Path("badfk.summary")).ok());
}

TEST_F(SummaryIoTest, SummaryRelationIndexMismatchFails) {
  CorruptSummaryWriter w(Path("relidx.summary"));
  w.Magic();
  w.MinimalSchema();
  w.I32(1);  // summary block claims relation 1; only relation 0 exists
  w.I32(1);
  w.I32(1);
  w.U64(0);
  w.U64(0);
  w.Close();
  EXPECT_FALSE(ReadSummary(Path("relidx.summary")).ok());
}

}  // namespace
}  // namespace hydra
