// Tests for engine/operators: batch-vectorized operators over materialized
// and dynamically generated sources, including the row-at-a-time Next()
// shim kept at the root.

#include <gtest/gtest.h>

#include "engine/operators.h"
#include "hydra/regenerator.h"
#include "workload/toy.h"

namespace hydra {
namespace {

Table MakeTable(std::vector<Row> rows, int cols) {
  Table t(cols);
  for (const Row& r : rows) t.AppendRow(r);
  return t;
}

TEST(TableScanOpTest, EmitsAllRowsInOrder) {
  Table t = MakeTable({{1, 2}, {3, 4}, {5, 6}}, 2);
  TableScanOp scan(&t);
  scan.Open();
  Row row;
  ASSERT_TRUE(scan.Next(&row));
  EXPECT_EQ(row, (Row{1, 2}));
  ASSERT_TRUE(scan.Next(&row));
  ASSERT_TRUE(scan.Next(&row));
  EXPECT_EQ(row, (Row{5, 6}));
  EXPECT_FALSE(scan.Next(&row));
}

TEST(TableScanOpTest, ReopenRestarts) {
  Table t = MakeTable({{7}}, 1);
  TableScanOp scan(&t);
  EXPECT_EQ(CountRows(&scan), 1u);
  EXPECT_EQ(CountRows(&scan), 1u);
}

TEST(FilterOpTest, KeepsMatchingRows) {
  Table t = MakeTable({{1}, {5}, {9}, {3}}, 1);
  FilterOp filter(std::make_unique<TableScanOp>(&t),
                  PredicateOf(AtomGreaterEqual(0, 4)));
  filter.Open();
  Row row;
  ASSERT_TRUE(filter.Next(&row));
  EXPECT_EQ(row[0], 5);
  ASSERT_TRUE(filter.Next(&row));
  EXPECT_EQ(row[0], 9);
  EXPECT_FALSE(filter.Next(&row));
}

TEST(ProjectOpTest, ReordersColumns) {
  Table t = MakeTable({{1, 2, 3}}, 3);
  ProjectOp project(std::make_unique<TableScanOp>(&t), {2, 0});
  project.Open();
  Row row;
  ASSERT_TRUE(project.Next(&row));
  EXPECT_EQ(row, (Row{3, 1}));
  EXPECT_EQ(project.num_columns(), 2);
}

TEST(HashJoinOpTest, JoinsOnKeysWithDuplicates) {
  // probe(key, x) ⋈ build(key, y).
  Table probe = MakeTable({{1, 10}, {2, 20}, {1, 30}, {9, 90}}, 2);
  Table build = MakeTable({{1, 100}, {2, 200}, {1, 101}}, 2);
  HashJoinOp join(std::make_unique<TableScanOp>(&probe), 0,
                  std::make_unique<TableScanOp>(&build), 0);
  join.Open();
  Row row;
  std::multiset<std::vector<Value>> results;
  while (join.Next(&row)) results.insert(row);
  // probe key 1 matches two build rows, twice; key 2 once; key 9 none.
  EXPECT_EQ(results.size(), 5u);
  EXPECT_TRUE(results.count(Row{1, 10, 1, 100}));
  EXPECT_TRUE(results.count(Row{1, 30, 1, 101}));
  EXPECT_TRUE(results.count(Row{2, 20, 2, 200}));
}

TEST(HashJoinOpTest, EmptyBuildSideYieldsNothing) {
  Table probe = MakeTable({{1}}, 1);
  Table build(1);
  HashJoinOp join(std::make_unique<TableScanOp>(&probe), 0,
                  std::make_unique<TableScanOp>(&build), 0);
  EXPECT_EQ(CountRows(&join), 0u);
}

TEST(HashAggregateOpTest, GroupedCountsAndSums) {
  Table t = MakeTable({{1, 10}, {2, 20}, {1, 5}, {1, 1}}, 2);
  HashAggregateOp agg(
      std::make_unique<TableScanOp>(&t), {0},
      {{AggregateKind::kCount, -1}, {AggregateKind::kSum, 1},
       {AggregateKind::kMin, 1}, {AggregateKind::kMax, 1}});
  agg.Open();
  Row row;
  ASSERT_TRUE(agg.Next(&row));  // group 1 (std::map order)
  EXPECT_EQ(row, (Row{1, 3, 16, 1, 10}));
  ASSERT_TRUE(agg.Next(&row));  // group 2
  EXPECT_EQ(row, (Row{2, 1, 20, 20, 20}));
  EXPECT_FALSE(agg.Next(&row));
}

TEST(HashAggregateOpTest, GlobalAggregateSingleRow) {
  Table t = MakeTable({{4}, {6}}, 1);
  HashAggregateOp agg(std::make_unique<TableScanOp>(&t), {},
                      {{AggregateKind::kSum, 0}});
  agg.Open();
  Row row;
  ASSERT_TRUE(agg.Next(&row));
  EXPECT_EQ(row, (Row{10}));
  EXPECT_FALSE(agg.Next(&row));
}

TEST(LimitOpTest, StopsEarly) {
  Table t = MakeTable({{1}, {2}, {3}}, 1);
  LimitOp limit(std::make_unique<TableScanOp>(&t), 2);
  EXPECT_EQ(CountRows(&limit), 2u);
}

TEST(GeneratorScanOpTest, MatchesDynamicSummaryScan) {
  ToyEnvironment env = MakeToyEnvironment();
  HydraRegenerator hydra(env.schema);
  auto result = hydra.Regenerate(env.ccs);
  ASSERT_TRUE(result.ok());
  TupleGenerator gen(result->summary);
  const int s = env.schema.RelationIndex("S");
  GeneratorScanOp scan(&gen, s,
                       env.schema.relation(s).num_attributes());
  EXPECT_EQ(CountRows(&scan), gen.RowCount(s));
}

TEST(OperatorPipelineTest, FilterAggregateOverGeneratedTuples) {
  // The full "engine under test" path: σ then γ over dynamically generated
  // data, no storage anywhere.
  ToyEnvironment env = MakeToyEnvironment();
  HydraRegenerator hydra(env.schema);
  auto result = hydra.Regenerate(env.ccs);
  ASSERT_TRUE(result.ok());
  TupleGenerator gen(result->summary);
  const int s = env.schema.RelationIndex("S");
  const int a = env.schema.relation(s).AttrIndex("A");

  auto scan = std::make_unique<GeneratorScanOp>(
      &gen, s, env.schema.relation(s).num_attributes());
  auto filter = std::make_unique<FilterOp>(
      std::move(scan), PredicateOf(AtomRange(a, 20, 60)));
  HashAggregateOp agg(std::move(filter), {},
                      {{AggregateKind::kCount, -1}});
  agg.Open();
  Row row;
  ASSERT_TRUE(agg.Next(&row));
  // |σ_{A∈[20,60)}(S)| = 400 (the Figure 1d constraint).
  EXPECT_EQ(row[0], 400);
}

TEST(BatchContractTest, NextShimMatchesNextBatchConcatenation) {
  Table t = MakeTable({{1, 2}, {3, 4}, {5, 6}, {7, 8}}, 2);
  TableScanOp scan(&t);

  scan.Open();
  std::vector<Value> batched;
  RowBlock block;
  while (scan.NextBatch(&block)) {
    EXPECT_GT(block.num_rows(), 0) << "NextBatch must not emit empty batches";
    for (int64_t r = 0; r < block.num_rows(); ++r) {
      const size_t base = batched.size();
      batched.resize(base + block.num_columns());
      block.CopyRowTo(r, batched.data() + base);
    }
  }

  scan.Open();
  std::vector<Value> rowwise;
  Row row;
  while (scan.Next(&row)) rowwise.insert(rowwise.end(), row.begin(), row.end());

  EXPECT_EQ(batched, rowwise);
  EXPECT_EQ(batched, t.data());
}

TEST(SourceScanOpTest, PushedFilterMatchesFilterOpOverScan) {
  ToyEnvironment env = MakeToyEnvironment();
  HydraRegenerator hydra(env.schema);
  auto result = hydra.Regenerate(env.ccs);
  ASSERT_TRUE(result.ok());
  auto db = MaterializeDatabase(result->summary);
  ASSERT_TRUE(db.ok());
  const int s = env.schema.RelationIndex("S");
  const int cols = env.schema.relation(s).num_attributes();
  const int a = env.schema.relation(s).AttrIndex("A");
  const DnfPredicate pred = PredicateOf(AtomRange(a, 20, 60));

  SourceScanOp pushed(&*db, s, cols, pred);
  FilterOp unpushed(std::make_unique<SourceScanOp>(&*db, s, cols), pred);
  EXPECT_EQ(CountRows(&pushed), CountRows(&unpushed));
  EXPECT_EQ(CountRows(&pushed), 400u);
}

TEST(SourceScanOpTest, ScansGeneratorSource) {
  ToyEnvironment env = MakeToyEnvironment();
  HydraRegenerator hydra(env.schema);
  auto result = hydra.Regenerate(env.ccs);
  ASSERT_TRUE(result.ok());
  TupleGenerator gen(result->summary);
  const int s = env.schema.RelationIndex("S");
  SourceScanOp scan(&gen, s, env.schema.relation(s).num_attributes());
  EXPECT_EQ(CountRows(&scan), gen.RowCount(s));
}

TEST(OperatorPipelineTest, JoinPipelineReproducesCardinality) {
  ToyEnvironment env = MakeToyEnvironment();
  HydraRegenerator hydra(env.schema);
  auto result = hydra.Regenerate(env.ccs);
  ASSERT_TRUE(result.ok());
  auto db = MaterializeDatabase(result->summary);
  ASSERT_TRUE(db.ok());
  const Schema& schema = env.schema;
  const int s = schema.RelationIndex("S");
  const int r = schema.RelationIndex("R");
  const int a = schema.relation(s).AttrIndex("A");
  const int sfk = schema.relation(r).AttrIndex("S_fk");
  const int spk = schema.relation(s).PrimaryKeyIndex();

  auto s_scan = std::make_unique<TableScanOp>(&db->table(s));
  auto s_filtered = std::make_unique<FilterOp>(
      std::move(s_scan), PredicateOf(AtomRange(a, 20, 60)));
  HashJoinOp join(std::make_unique<TableScanOp>(&db->table(r)), sfk,
                  std::move(s_filtered), spk);
  // |σ_A(R ⋈ S)| = 50000.
  EXPECT_EQ(CountRows(&join), 50000u);
}

}  // namespace
}  // namespace hydra
