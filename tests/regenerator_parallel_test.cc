// Determinism of parallel regeneration: HydraRegenerator::Regenerate with a
// thread pool must produce a byte-identical DatabaseSummary to the
// sequential path (each view writes its own slot; reduction is in view
// order), with per-view reports carrying the same structural fields.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "hydra/regenerator.h"
#include "hydra/summary_io.h"
#include "workload/datagen.h"
#include "workload/toy.h"
#include "workload/tpcds.h"
#include "workload/workload_runner.h"

namespace hydra {
namespace {

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::string SummaryBytes(const DatabaseSummary& summary,
                         const std::string& tag) {
  const auto path =
      (std::filesystem::temp_directory_path() / ("hydra_par_" + tag + ".bin"))
          .string();
  auto bytes = WriteSummary(summary, path);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  std::string data = FileBytes(path);
  std::filesystem::remove(path);
  return data;
}

void ExpectIdenticalRuns(const Schema& schema,
                         const std::vector<CardinalityConstraint>& ccs,
                         const std::string& tag) {
  HydraOptions sequential;
  sequential.num_threads = 1;
  HydraOptions parallel;
  parallel.num_threads = 4;

  auto seq = HydraRegenerator(schema, sequential).Regenerate(ccs);
  auto par = HydraRegenerator(schema, parallel).Regenerate(ccs);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_TRUE(par.ok()) << par.status().ToString();

  EXPECT_EQ(SummaryBytes(seq->summary, tag + "_seq"),
            SummaryBytes(par->summary, tag + "_par"));

  ASSERT_EQ(seq->views.size(), par->views.size());
  for (size_t v = 0; v < seq->views.size(); ++v) {
    EXPECT_EQ(seq->views[v].relation, par->views[v].relation);
    EXPECT_EQ(seq->views[v].num_subviews, par->views[v].num_subviews);
    EXPECT_EQ(seq->views[v].lp_variables, par->views[v].lp_variables);
    EXPECT_EQ(seq->views[v].lp_constraints, par->views[v].lp_constraints);
    EXPECT_EQ(seq->views[v].lp_iterations, par->views[v].lp_iterations);
    EXPECT_EQ(seq->views[v].max_abs_violation,
              par->views[v].max_abs_violation);
  }
}

TEST(RegeneratorParallelTest, ToyEnvironmentDeterministic) {
  ToyEnvironment env = MakeToyEnvironment();
  ExpectIdenticalRuns(env.schema, env.ccs, "toy");
}

TEST(RegeneratorParallelTest, TpcdsWorkloadDeterministic) {
  Schema schema = TpcdsSchema(0.5);
  auto queries =
      TpcdsWorkload(schema, TpcdsWorkloadKind::kSimple, 40, 515151);
  auto site =
      BuildClientSite(schema, DataGenOptions{.seed = 99}, std::move(queries));
  ASSERT_TRUE(site.ok()) << site.status().ToString();
  ExpectIdenticalRuns(site->schema, site->ccs, "tpcds");
}

TEST(RegeneratorParallelTest, DefaultThreadCountMatchesSequential) {
  // num_threads = 0 (hardware concurrency) must agree with the explicit
  // settings too — this is the configuration real callers run with.
  ToyEnvironment env = MakeToyEnvironment();
  HydraOptions defaults;  // num_threads = 0
  HydraOptions sequential;
  sequential.num_threads = 1;
  auto def = HydraRegenerator(env.schema, defaults).Regenerate(env.ccs);
  auto seq = HydraRegenerator(env.schema, sequential).Regenerate(env.ccs);
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  EXPECT_EQ(SummaryBytes(def->summary, "def"),
            SummaryBytes(seq->summary, "seq"));
}

}  // namespace
}  // namespace hydra
