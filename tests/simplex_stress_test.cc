// Stress tests for the sparse revised simplex: degenerate and cycling-prone
// systems, structured infeasibility, and iteration bounds on a ~2k-variable
// feasibility instance (guarding the partial-pricing design against
// iteration-count regressions).

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace hydra {
namespace {

LpConstraint MakeConstraint(std::vector<int> vars, double rhs) {
  LpConstraint c;
  for (int v : vars) c.AddTerm(v, 1.0);
  c.rhs = rhs;
  return c;
}

TEST(SimplexStressTest, DegenerateZeroRhsChain) {
  // Every constraint has rhs 0, so every basic solution is fully degenerate
  // and every pivot has ratio 0 — the classic cycling trap. The solver must
  // still terminate (Bland fallback) and report the all-zero solution.
  LpProblem p;
  const int n = 40;
  p.AddVariables(n);
  for (int i = 0; i + 1 < n; ++i) {
    p.AddConstraint(MakeConstraint({i, i + 1}, 0));
  }
  auto sol = SolveFeasibility(p);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  for (double v : sol->values) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(SimplexStressTest, DegenerateDuplicatedConstraints) {
  // Heavy redundancy: the same constraint repeated many times makes most
  // bases singular and most pivots degenerate.
  LpProblem p;
  p.AddVariables(6);
  for (int rep = 0; rep < 12; ++rep) {
    p.AddConstraint(MakeConstraint({0, 1, 2}, 30));
    p.AddConstraint(MakeConstraint({2, 3, 4}, 50));
  }
  p.AddConstraint(MakeConstraint({0, 1, 2, 3, 4, 5}, 100));
  auto sol = SolveFeasibility(p);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_LT(p.MaxViolation(sol->values), 1e-6);
  for (double v : sol->values) EXPECT_GE(v, -1e-9);
}

TEST(SimplexStressTest, TiedColumnsTerminate) {
  // Many identical columns create reduced-cost ties across every pricing
  // block; the candidate list must not loop among them.
  LpProblem p;
  const int n = 200;
  p.AddVariables(n);
  LpConstraint all;
  for (int j = 0; j < n; ++j) all.AddTerm(j, 1.0);
  all.rhs = 1000;
  p.AddConstraint(std::move(all));
  p.AddConstraint(MakeConstraint({0, 1}, 0));
  auto sol = SolveFeasibility(p);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_LT(p.MaxViolation(sol->values), 1e-6);
}

TEST(SimplexStressTest, StructuredInfeasibleCycle) {
  // x0+x1 = 10, x1+x2 = 10, x0+x2 = 10 forces x0+x1+x2 = 15; asserting 14
  // is a contradiction that only surfaces by combining all four rows.
  LpProblem p;
  p.AddVariables(3);
  p.AddConstraint(MakeConstraint({0, 1}, 10));
  p.AddConstraint(MakeConstraint({1, 2}, 10));
  p.AddConstraint(MakeConstraint({0, 2}, 10));
  p.AddConstraint(MakeConstraint({0, 1, 2}, 14));
  auto sol = SolveFeasibility(p);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SimplexStressTest, InfeasibleAfterManyPivots) {
  // A long feasible chain plus one contradicting total: infeasibility must
  // be detected after the solver has already done real pivoting work (and
  // therefore through the eta file, not the initial identity basis).
  LpProblem p;
  const int n = 120;
  p.AddVariables(n);
  for (int i = 0; i + 1 < n; i += 2) {
    p.AddConstraint(MakeConstraint({i, i + 1}, 10));
  }
  std::vector<int> all(n);
  for (int i = 0; i < n; ++i) all[i] = i;
  p.AddConstraint(MakeConstraint(all, 10.0 * (n / 2) - 7));
  auto sol = SolveFeasibility(p);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SimplexStressTest, TwoThousandVariableIterationBound) {
  // Random feasible instance built from a known witness. The solver must
  // find a feasible point in a small multiple of m iterations — candidate
  // list pricing trades per-iteration cost for slightly more pivots, and
  // this pins the trade at <= 5m for phase I (observed ~3m across seeds).
  // The canonicalization phase then walks to the unique canonical vertex;
  // the total gets a looser bound.
  const int n = 2000;
  const int m = 200;
  Rng rng(7);
  std::vector<int64_t> witness(n);
  for (int j = 0; j < n; ++j) witness[j] = rng.NextInt(0, 1000000);
  LpProblem p;
  p.AddVariables(n);
  for (int i = 0; i < m; ++i) {
    LpConstraint c;
    int64_t rhs = 0;
    for (int j = 0; j < n; ++j) {
      if (rng.NextBool(0.1)) {
        c.AddTerm(j, 1.0);
        rhs += witness[j];
      }
    }
    c.rhs = static_cast<double>(rhs);
    p.AddConstraint(std::move(c));
  }
  auto sol = SolveFeasibility(p);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_LT(p.MaxViolation(sol->values), 1e-4);
  for (double v : sol->values) EXPECT_GE(v, -1e-9);
  EXPECT_LE(sol->phase1_iterations, 5 * m);
  EXPECT_LE(sol->iterations, 20 * m);
}

TEST(SimplexStressTest, WideAndShallowStaysFast) {
  // 20k variables over 20 rows: the regime DataSynth's grid formulations
  // live in. Feasibility plus the iteration bound double as a smoke test
  // that partial pricing never degenerates into full n-column scans per
  // pivot (which would time out the suite long before failing).
  const int n = 20000;
  const int m = 20;
  Rng rng(13);
  std::vector<int64_t> witness(n);
  for (int j = 0; j < n; ++j) witness[j] = rng.NextInt(0, 1000);
  LpProblem p;
  p.AddVariables(n);
  for (int i = 0; i < m; ++i) {
    LpConstraint c;
    int64_t rhs = 0;
    for (int j = 0; j < n; ++j) {
      if (rng.NextBool(0.05)) {
        c.AddTerm(j, 1.0);
        rhs += witness[j];
      }
    }
    c.rhs = static_cast<double>(rhs);
    p.AddConstraint(std::move(c));
  }
  auto sol = SolveFeasibility(p);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_LT(p.MaxViolation(sol->values), 1e-5);
  EXPECT_LE(sol->phase1_iterations, 10 * m);
  EXPECT_LE(sol->iterations, 40 * m);
}

TEST(SimplexStressTest, ParallelPricingBitIdentical) {
  // The striped pricing scan merges stripes in column order, so thread
  // count must not perturb the pivot path: identical iteration counts,
  // identical exported basis, and bit-identical (==, not near) solution
  // values at every pricing_threads setting. The instance is wide enough
  // (20k columns) that the fresh-block scans actually fork.
  const int n = 20000;
  const int m = 24;
  Rng rng(29);
  std::vector<int64_t> witness(n);
  for (int j = 0; j < n; ++j) witness[j] = rng.NextInt(0, 1000);
  LpProblem p;
  p.AddVariables(n);
  for (int i = 0; i < m; ++i) {
    LpConstraint c;
    int64_t rhs = 0;
    for (int j = 0; j < n; ++j) {
      if (rng.NextBool(0.05)) {
        c.AddTerm(j, 1.0);
        rhs += witness[j];
      }
    }
    c.rhs = static_cast<double>(rhs);
    p.AddConstraint(std::move(c));
  }

  SimplexOptions base;
  SimplexBasis ref_basis;
  base.export_basis = &ref_basis;
  auto ref = SolveFeasibility(p, base);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  for (const int threads : {2, 3, 8}) {
    SimplexOptions opt;
    opt.pricing_threads = threads;
    SimplexBasis basis;
    opt.export_basis = &basis;
    auto sol = SolveFeasibility(p, opt);
    ASSERT_TRUE(sol.ok()) << sol.status().ToString();
    EXPECT_EQ(sol->iterations, ref->iterations) << threads << " threads";
    EXPECT_EQ(sol->phase1_iterations, ref->phase1_iterations);
    EXPECT_EQ(basis.basic, ref_basis.basic) << threads << " threads";
    ASSERT_EQ(sol->values.size(), ref->values.size());
    for (size_t j = 0; j < ref->values.size(); ++j) {
      ASSERT_EQ(sol->values[j], ref->values[j])
          << "column " << j << " at " << threads << " threads";
    }
  }

  // Both pricing rules must stay deterministic under striping.
  for (const auto pricing : {SimplexPricing::kDevex, SimplexPricing::kPartial}) {
    SimplexOptions seq;
    seq.pricing = pricing;
    auto a = SolveFeasibility(p, seq);
    SimplexOptions par = seq;
    par.pricing_threads = 4;
    auto b = SolveFeasibility(p, par);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->iterations, b->iterations);
    for (size_t j = 0; j < a->values.size(); ++j) {
      ASSERT_EQ(a->values[j], b->values[j]) << "column " << j;
    }
  }
}

}  // namespace
}  // namespace hydra
