// Tests for the range-partitioned generation pipeline: ScanRange /
// ScanBlocksRange starting at arbitrary ranks, and parallel sharded
// materialization producing byte-identical output (docs/generation.md).

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/random.h"
#include "hydra/regenerator.h"
#include "hydra/tuple_generator.h"
#include "storage/disk_table.h"
#include "workload/toy.h"

namespace hydra {
namespace {

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

// A summary built by hand so that tests control exactly where summary-row
// boundaries fall: counts are deliberately uneven (including a zero-count
// row) so range and shard boundaries cut through the middle of rows.
DatabaseSummary MakeHandSummary() {
  Relation u("U", 0);
  u.AddPrimaryKey("U_pk");
  u.AddDataAttribute("X", Interval(0, 1000));
  u.AddDataAttribute("Y", Interval(0, 1000));
  Schema schema;
  schema.AddRelation(std::move(u));

  RelationSummary rs;
  rs.relation = 0;
  rs.attr_indices = {1, 2};
  const int64_t counts[] = {3, 7, 0, 11, 1, 5};
  int64_t total = 0;
  for (size_t i = 0; i < std::size(counts); ++i) {
    SolutionRow row;
    row.values = {static_cast<Value>(10 * (i + 1)),
                  static_cast<Value>(10 * (i + 1) + 1)};
    row.count = counts[i];
    total += counts[i];
    rs.rows.push_back(std::move(row));
  }
  rs.Finalize();

  DatabaseSummary summary;
  summary.schema = std::move(schema);
  summary.schema.mutable_relation(0).set_row_count(total);
  summary.relations.push_back(std::move(rs));
  summary.extra_tuples = {0};
  return summary;
}

std::vector<Row> CollectScan(const TableSource& source, int relation) {
  std::vector<Row> rows;
  source.Scan(relation, [&](const Row& r) { rows.push_back(r); });
  return rows;
}

class GenerationRangeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = MakeToyEnvironment();
    HydraRegenerator hydra(env_.schema);
    auto result = hydra.Regenerate(env_.ccs);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    summary_ = std::move(result->summary);
    dir_ = std::filesystem::temp_directory_path() /
           ("hydra_genrange_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Dir(const std::string& sub) {
    const auto d = dir_ / sub;
    std::filesystem::create_directories(d);
    return d.string();
  }

  ToyEnvironment env_;
  DatabaseSummary summary_;
  std::filesystem::path dir_;
};

TEST_F(GenerationRangeTest, ScanRangeConcatenationMatchesScan) {
  TupleGenerator gen(summary_);
  Rng rng(7);
  for (int rel = 0; rel < env_.schema.num_relations(); ++rel) {
    const std::vector<Row> full = CollectScan(gen, rel);
    const int64_t n = static_cast<int64_t>(full.size());
    for (int trial = 0; trial < 8; ++trial) {
      // Random split of [0, n) into up to 5 ranges.
      std::vector<int64_t> cuts = {0, n};
      for (int c = 0; c < 4; ++c) cuts.push_back(rng.NextInt(0, n + 1));
      std::sort(cuts.begin(), cuts.end());
      std::vector<Row> glued;
      for (size_t i = 0; i + 1 < cuts.size(); ++i) {
        gen.ScanRange(rel, cuts[i], cuts[i + 1],
                      [&](const Row& r) { glued.push_back(r); });
      }
      ASSERT_EQ(glued, full) << "relation " << rel << " trial " << trial;
    }
  }
}

TEST_F(GenerationRangeTest, ScanRangeCrossesSummaryRowBoundaries) {
  const DatabaseSummary hand = MakeHandSummary();
  TupleGenerator gen(hand);
  const std::vector<Row> full = CollectScan(gen, 0);
  ASSERT_EQ(full.size(), 27u);
  // Every possible [begin, end) — including ranges that start and stop in
  // the middle of a summary row and ranges spanning the zero-count row.
  for (int64_t begin = 0; begin <= 27; ++begin) {
    for (int64_t end = begin; end <= 27; ++end) {
      std::vector<Row> part;
      gen.ScanRange(0, begin, end, [&](const Row& r) { part.push_back(r); });
      ASSERT_EQ(part.size(), static_cast<size_t>(end - begin));
      for (int64_t i = begin; i < end; ++i) {
        ASSERT_EQ(part[i - begin], full[i]) << "range [" << begin << ", "
                                            << end << ") rank " << i;
      }
    }
  }
}

TEST_F(GenerationRangeTest, ScanBlocksRangeConcatenationMatchesScan) {
  const DatabaseSummary hand = MakeHandSummary();
  TupleGenerator gen(hand);
  const std::vector<Row> full = CollectScan(gen, 0);
  const int width = hand.schema.relation(0).num_attributes();
  // Block size deliberately misaligned with both summary-row and range
  // boundaries.
  for (const int64_t block_rows : {1, 4, 100}) {
    for (const std::vector<int64_t> cuts :
         {std::vector<int64_t>{0, 27}, {0, 5, 27}, {0, 10, 11, 20, 27}}) {
      std::vector<Row> glued;
      for (size_t i = 0; i + 1 < cuts.size(); ++i) {
        gen.ScanBlocksRange(0, cuts[i], cuts[i + 1], block_rows,
                            [&](const Value* rows, int64_t n) {
                              for (int64_t r = 0; r < n; ++r) {
                                glued.emplace_back(rows + r * width,
                                                   rows + (r + 1) * width);
                              }
                            });
      }
      ASSERT_EQ(glued, full) << "block_rows " << block_rows;
    }
  }
}

TEST_F(GenerationRangeTest, FillRangeMatchesScan) {
  const DatabaseSummary hand = MakeHandSummary();
  TupleGenerator gen(hand);
  const std::vector<Row> full = CollectScan(gen, 0);
  const int width = hand.schema.relation(0).num_attributes();
  for (int64_t begin = 0; begin <= 27; begin += 5) {
    for (int64_t end = begin; end <= 27; end += 4) {
      std::vector<Value> buf(static_cast<size_t>(end - begin) * width, -1);
      gen.FillRange(0, begin, end, buf.data());
      for (int64_t i = begin; i < end; ++i) {
        const Row got(buf.begin() + (i - begin) * width,
                      buf.begin() + (i - begin + 1) * width);
        ASSERT_EQ(got, full[i]) << "rank " << i;
      }
    }
  }
}

TEST_F(GenerationRangeTest, ParallelMaterializeToDiskByteIdentical) {
  GenerationOptions sequential;
  sequential.num_threads = 1;
  // A prime shard size guarantees shard boundaries land mid-summary-row.
  sequential.shard_rows = 1009;
  const std::string seq_dir = Dir("seq");
  auto seq_bytes = MaterializeToDisk(summary_, seq_dir, sequential);
  ASSERT_TRUE(seq_bytes.ok()) << seq_bytes.status().ToString();

  for (const int threads : {2, 4}) {
    GenerationOptions parallel = sequential;
    parallel.num_threads = threads;
    const std::string par_dir = Dir("par" + std::to_string(threads));
    auto par_bytes = MaterializeToDisk(summary_, par_dir, parallel);
    ASSERT_TRUE(par_bytes.ok()) << par_bytes.status().ToString();
    EXPECT_EQ(*par_bytes, *seq_bytes);
    for (int r = 0; r < env_.schema.num_relations(); ++r) {
      const std::string name = env_.schema.relation(r).name() + ".tbl";
      EXPECT_EQ(ReadFileBytes(par_dir + "/" + name),
                ReadFileBytes(seq_dir + "/" + name))
          << name << " differs at num_threads=" << threads;
    }
  }
}

TEST_F(GenerationRangeTest, ShardsSmallerThanSummaryRowsRoundTrip) {
  const DatabaseSummary hand = MakeHandSummary();
  TupleGenerator gen(hand);
  GenerationOptions options;
  options.num_threads = 3;
  options.shard_rows = 5;  // the 11-count summary row spans 3+ shards
  options.block_rows = 2;
  const std::string dir = Dir("hand");
  auto bytes = MaterializeToDisk(hand, dir, options);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  auto table = ReadDiskTable(dir + "/U.tbl");
  ASSERT_TRUE(table.ok());
  const std::vector<Row> full = CollectScan(gen, 0);
  ASSERT_EQ(table->num_rows(), full.size());
  for (uint64_t r = 0; r < table->num_rows(); ++r) {
    Row row;
    table->GetRow(r, &row);
    EXPECT_EQ(row, full[r]) << "rank " << r;
  }
}

TEST_F(GenerationRangeTest, ParallelMaterializeDatabaseMatchesSequential) {
  GenerationOptions sequential;
  sequential.num_threads = 1;
  sequential.shard_rows = 997;
  auto seq = MaterializeDatabase(summary_, sequential);
  ASSERT_TRUE(seq.ok());

  GenerationOptions parallel = sequential;
  parallel.num_threads = 4;
  auto par = MaterializeDatabase(summary_, parallel);
  ASSERT_TRUE(par.ok());

  for (int r = 0; r < env_.schema.num_relations(); ++r) {
    ASSERT_EQ(par->RowCount(r), seq->RowCount(r));
    EXPECT_EQ(par->table(r).data(), seq->table(r).data()) << "relation " << r;
  }
}

TEST_F(GenerationRangeTest, RegeneratorMaterializeUsesGenerationOptions) {
  // One HydraOptions configures the whole regenerate→materialize pipeline;
  // the wrappers must match the free functions byte for byte.
  HydraOptions opts;
  opts.generation.num_threads = 3;
  opts.generation.shard_rows = 1009;
  HydraRegenerator hydra(env_.schema, opts);
  auto result = hydra.Regenerate(env_.ccs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto db = hydra.Materialize(result->summary);
  ASSERT_TRUE(db.ok());
  auto reference = MaterializeDatabase(result->summary);
  ASSERT_TRUE(reference.ok());
  for (int r = 0; r < env_.schema.num_relations(); ++r) {
    EXPECT_EQ(db->table(r).data(), reference->table(r).data());
  }

  const std::string wrapper_dir = Dir("wrapper");
  const std::string free_dir = Dir("free");
  auto wrapper_bytes = hydra.MaterializeToDisk(result->summary, wrapper_dir);
  ASSERT_TRUE(wrapper_bytes.ok()) << wrapper_bytes.status().ToString();
  auto free_bytes = MaterializeToDisk(result->summary, free_dir);
  ASSERT_TRUE(free_bytes.ok()) << free_bytes.status().ToString();
  EXPECT_EQ(*wrapper_bytes, *free_bytes);
  for (int r = 0; r < env_.schema.num_relations(); ++r) {
    const std::string name = env_.schema.relation(r).name() + ".tbl";
    EXPECT_EQ(ReadFileBytes(wrapper_dir + "/" + name),
              ReadFileBytes(free_dir + "/" + name));
  }
}

TEST_F(GenerationRangeTest, TupleGeneratorRangeMatchesMaterializedRange) {
  // The TableSource contract: generator and materialized database agree on
  // every range, so scan operators can consume either interchangeably.
  TupleGenerator gen(summary_);
  auto db = MaterializeDatabase(summary_);
  ASSERT_TRUE(db.ok());
  Rng rng(13);
  for (int rel = 0; rel < env_.schema.num_relations(); ++rel) {
    const int64_t n = static_cast<int64_t>(gen.RowCount(rel));
    for (int trial = 0; trial < 4; ++trial) {
      const int64_t begin = rng.NextInt(0, n);
      const int64_t end = begin + rng.NextInt(0, n - begin + 1);
      std::vector<Row> from_gen, from_db;
      gen.ScanRange(rel, begin, end,
                    [&](const Row& r) { from_gen.push_back(r); });
      db->ScanRange(rel, begin, end,
                    [&](const Row& r) { from_db.push_back(r); });
      ASSERT_EQ(from_gen, from_db) << "relation " << rel;
    }
  }
}

}  // namespace
}  // namespace hydra
