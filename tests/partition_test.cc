// Unit + property tests for partition/: region partitioning (Algorithms 1&2)
// and grid partitioning.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "partition/grid_partition.h"
#include "partition/region_partition.h"

namespace hydra {
namespace {

// The "Person" example of Section 3.2 / Figure 3: age × salary domain with
//   C0: age < 40 ∧ salary < 40   (cardinality 1000)
//   C1: 20 <= age < 60 ∧ 20 <= salary < 60   (cardinality 2000)
// Domains scaled to [0,100) x [0,100).
std::vector<DnfPredicate> PersonConstraints() {
  return {
      PredicateAllOf({AtomLess(0, 40), AtomLess(1, 40)}),
      PredicateAllOf({AtomRange(0, 20, 60), AtomRange(1, 20, 60)}),
  };
}

std::vector<Interval> PersonDomains() {
  return {Interval(0, 100), Interval(0, 100)};
}

TEST(RegionPartitionTest, PaperExampleHasFourRegions) {
  // Figure 3b: region partitioning needs exactly 4 variables where the grid
  // needs 16 cells (plus the implicit whole-domain region).
  const RegionPartition p =
      BuildRegionPartition(PersonDomains(), PersonConstraints());
  EXPECT_EQ(p.num_regions(), 4);
}

TEST(GridPartitionTest, PaperExampleHasSixteenCells) {
  const GridPartition g =
      BuildGridPartition(PersonDomains(), PersonConstraints());
  EXPECT_EQ(g.NumIntervals(0), 4);  // cuts at 20, 40, 60
  EXPECT_EQ(g.NumIntervals(1), 4);
  EXPECT_EQ(g.NumCellsCapped(1000), 16u);
}

TEST(RegionPartitionTest, RegionsCoverDomainDisjointly) {
  const RegionPartition p =
      BuildRegionPartition(PersonDomains(), PersonConstraints());
  uint64_t total = 0;
  for (const Region& r : p.regions) {
    total += r.PointCountCapped(UINT64_MAX / 2);
  }
  EXPECT_EQ(total, 100u * 100u);
  // Spot-check disjointness via membership of sampled points.
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Row pt = {rng.NextInt(0, 100), rng.NextInt(0, 100)};
    int owners = 0;
    for (const Region& r : p.regions) {
      for (const Block& b : r.blocks) {
        if (b.ContainsPoint(pt)) ++owners;
      }
    }
    EXPECT_EQ(owners, 1) << "point (" << pt[0] << "," << pt[1] << ")";
  }
}

TEST(RegionPartitionTest, LabelsMatchConstraintSatisfaction) {
  const auto constraints = PersonConstraints();
  const RegionPartition p =
      BuildRegionPartition(PersonDomains(), constraints);
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    const Row pt = {rng.NextInt(0, 100), rng.NextInt(0, 100)};
    const int region = p.RegionOf(pt);
    ASSERT_GE(region, 0);
    for (size_t ci = 0; ci < constraints.size(); ++ci) {
      EXPECT_EQ(p.regions[region].SatisfiesConstraint(static_cast<int>(ci)),
                constraints[ci].Eval(pt))
          << "point (" << pt[0] << "," << pt[1] << ") constraint " << ci;
    }
  }
}

TEST(RegionPartitionTest, NoConstraintsGivesSingleRegion) {
  const RegionPartition p =
      BuildRegionPartition({Interval(0, 50)}, {});
  ASSERT_EQ(p.num_regions(), 1);
  EXPECT_TRUE(p.regions[0].label.empty());
  EXPECT_EQ(p.regions[0].PointCountCapped(1000), 50u);
}

TEST(RegionPartitionTest, DnfConstraintSplitsCorrectly) {
  // ((c0 <= 20) ∧ (c1 > 30)) ∨ (c0 > 50) — the Section 4.2 example.
  Conjunct c1;
  c1.AddAtom(AtomLessEqual(0, 20));
  c1.AddAtom(AtomGreater(1, 30));
  Conjunct c2;
  c2.AddAtom(AtomGreater(0, 50));
  DnfPredicate dnf;
  dnf.AddConjunct(c1);
  dnf.AddConjunct(c2);
  const std::vector<Interval> domains = {Interval(0, 100), Interval(0, 100)};
  const RegionPartition p = BuildRegionPartition(domains, {dnf});
  ASSERT_EQ(p.num_regions(), 2);  // satisfied / not satisfied
  // Check the split is semantically exact on every 5th point.
  for (Value x = 0; x < 100; x += 5) {
    for (Value y = 0; y < 100; y += 5) {
      const Row pt = {x, y};
      const int region = p.RegionOf(pt);
      ASSERT_GE(region, 0);
      EXPECT_EQ(p.regions[region].SatisfiesConstraint(0), dnf.Eval(pt));
    }
  }
}

TEST(RegionPartitionTest, NotEqualAtomCreatesHole) {
  DnfPredicate dnf = PredicateOf(AtomNotEqual(0, 5));
  const RegionPartition p =
      BuildRegionPartition({Interval(0, 10)}, {dnf});
  ASSERT_EQ(p.num_regions(), 2);
  const int hole = p.RegionOf({5});
  const int rest = p.RegionOf({4});
  EXPECT_NE(hole, rest);
  EXPECT_EQ(p.regions[hole].PointCountCapped(100), 1u);
  EXPECT_EQ(p.regions[rest].PointCountCapped(100), 9u);
}

TEST(BlockTest, MinPointAndCount) {
  Block b;
  b.dims.push_back(IntervalSet(std::vector<Interval>{{5, 8}, {10, 12}}));
  b.dims.push_back(IntervalSet(Interval(2, 4)));
  EXPECT_EQ(b.MinPoint(), (Row{5, 2}));
  EXPECT_EQ(b.PointCountCapped(1000), 10u);  // 5 * 2
  EXPECT_FALSE(b.empty());
  EXPECT_TRUE(b.ContainsPoint({11, 3}));
  EXPECT_FALSE(b.ContainsPoint({8, 3}));
}

TEST(BlockTest, PointCountSaturates) {
  Block b;
  b.dims.push_back(IntervalSet(Interval(0, 1000000)));
  b.dims.push_back(IntervalSet(Interval(0, 1000000)));
  EXPECT_EQ(b.PointCountCapped(500), 500u);
}

TEST(ValidBlocksTest, SingleConjunctTwoBlocks) {
  Conjunct c;
  c.AddAtom(AtomRange(0, 3, 7));
  const auto blocks = BuildValidBlocks({Interval(0, 10)}, {c});
  EXPECT_EQ(blocks.size(), 2u);
}

TEST(ValidBlocksTest, BlocksAreValidWrtEveryConjunct) {
  Rng rng(7);
  std::vector<Conjunct> conjuncts;
  for (int i = 0; i < 5; ++i) {
    Conjunct c;
    const int64_t lo = rng.NextInt(0, 30);
    c.AddAtom(AtomRange(0, lo, rng.NextInt(lo + 1, 31)));
    const int64_t lo2 = rng.NextInt(0, 30);
    c.AddAtom(AtomRange(1, lo2, rng.NextInt(lo2 + 1, 31)));
    conjuncts.push_back(std::move(c));
  }
  const std::vector<Interval> domains = {Interval(0, 30), Interval(0, 30)};
  const auto blocks = BuildValidBlocks(domains, conjuncts);
  // Validity (Definition 4.2): within a block every point satisfies the same
  // conjuncts. Exhaustive check over the small domain.
  for (const Block& b : blocks) {
    const Row rep = b.MinPoint();
    std::vector<bool> sig;
    for (const Conjunct& c : conjuncts) sig.push_back(c.Eval(rep));
    for (Value x = 0; x < 30; ++x) {
      for (Value y = 0; y < 30; ++y) {
        const Row pt = {x, y};
        if (!b.ContainsPoint(pt)) continue;
        for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
          ASSERT_EQ(conjuncts[ci].Eval(pt), sig[ci])
              << "block " << b.ToString() << " point " << x << "," << y;
        }
      }
    }
  }
}

TEST(RefineRegionsTest, CutsStopBlocksCrossing) {
  RegionPartition p =
      BuildRegionPartition({Interval(0, 100)},
                           {PredicateOf(AtomRange(0, 30, 70))});
  RefineRegionsAtCuts(&p, {{0, {50}}});
  for (const Region& r : p.regions) {
    for (const Block& b : r.blocks) {
      // No interval may straddle 50.
      for (const Interval& iv : b.dims[0].intervals()) {
        EXPECT_FALSE(iv.lo < 50 && iv.hi > 50) << iv.ToString();
      }
    }
  }
}

TEST(BlockBoundariesTest, InteriorConstraintEdges) {
  RegionPartition p =
      BuildRegionPartition({Interval(0, 100)},
                           {PredicateOf(AtomRange(0, 30, 70))});
  const auto cuts = BlockBoundaries(p, 0);
  EXPECT_EQ(cuts, (std::vector<int64_t>{30, 70}));
}

// --- Optimality: the region count equals the number of distinct constraint
// signatures realized over the domain (Lemma 4.3), verified exhaustively on
// random instances.
class RegionOptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegionOptimalityTest, RegionCountEqualsDistinctSignatures) {
  Rng rng(GetParam() * 101 + 3);
  const int dims = static_cast<int>(rng.NextInt(1, 4));
  const int64_t width = rng.NextInt(6, 16);
  std::vector<Interval> domains(dims, Interval(0, width));
  std::vector<DnfPredicate> constraints;
  const int num_constraints = static_cast<int>(rng.NextInt(1, 5));
  for (int i = 0; i < num_constraints; ++i) {
    DnfPredicate p;
    const int conjuncts = static_cast<int>(rng.NextInt(1, 3));
    for (int j = 0; j < conjuncts; ++j) {
      Conjunct c;
      const int atoms = static_cast<int>(rng.NextInt(1, dims + 1));
      for (int a = 0; a < atoms; ++a) {
        const int col = static_cast<int>(rng.NextInt(0, dims));
        const int64_t lo = rng.NextInt(0, width);
        c.AddAtom(AtomRange(col, lo, rng.NextInt(lo + 1, width + 1)));
      }
      p.AddConjunct(std::move(c));
    }
    constraints.push_back(std::move(p));
  }

  const RegionPartition partition =
      BuildRegionPartition(domains, constraints);

  // Enumerate the full domain, collect signatures, check region membership.
  std::set<std::vector<bool>> signatures;
  std::vector<int64_t> region_counts(partition.num_regions(), 0);
  Row pt(dims, 0);
  const int64_t total = [&] {
    int64_t t = 1;
    for (int d = 0; d < dims; ++d) t *= width;
    return t;
  }();
  for (int64_t idx = 0; idx < total; ++idx) {
    int64_t rest = idx;
    for (int d = 0; d < dims; ++d) {
      pt[d] = rest % width;
      rest /= width;
    }
    std::vector<bool> sig;
    for (const DnfPredicate& c : constraints) sig.push_back(c.Eval(pt));
    signatures.insert(sig);
    const int region = partition.RegionOf(pt);
    ASSERT_GE(region, 0);
    ++region_counts[region];
    // Membership agrees with the label.
    for (size_t ci = 0; ci < constraints.size(); ++ci) {
      ASSERT_EQ(partition.regions[region].SatisfiesConstraint(
                    static_cast<int>(ci)),
                sig[ci]);
    }
  }
  // Optimal: one region per realized signature (Lemma 4.3).
  EXPECT_EQ(partition.num_regions(),
            static_cast<int>(signatures.size()));
  // Region point counts match the exhaustive census.
  for (int r = 0; r < partition.num_regions(); ++r) {
    EXPECT_EQ(partition.regions[r].PointCountCapped(UINT64_MAX / 2),
              static_cast<uint64_t>(region_counts[r]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionOptimalityTest,
                         ::testing::Range<uint64_t>(0, 30));

// --- Grid ---------------------------------------------------------------

TEST(GridPartitionTest, BoundariesFromConstants) {
  const GridPartition g = BuildGridPartition(
      {Interval(0, 100)}, {PredicateOf(AtomRange(0, 30, 70))});
  EXPECT_EQ(g.boundaries[0], (std::vector<int64_t>{0, 30, 70, 100}));
  EXPECT_EQ(g.NumIntervals(0), 3);
}

TEST(GridPartitionTest, OutOfDomainConstantsClipped) {
  const GridPartition g = BuildGridPartition(
      {Interval(0, 100)}, {PredicateOf(AtomLess(0, 40))});
  // AtomLess uses the kValueMin sentinel; only 40 lands inside the domain.
  EXPECT_EQ(g.boundaries[0], (std::vector<int64_t>{0, 40, 100}));
}

TEST(GridPartitionTest, CellsSaturate) {
  std::vector<Interval> domains(8, Interval(0, 1000000));
  std::vector<DnfPredicate> constraints;
  for (int d = 0; d < 8; ++d) {
    for (int k = 1; k <= 30; ++k) {
      constraints.push_back(
          PredicateOf(AtomRange(d, k * 1000, k * 1000 + 500)));
    }
  }
  const GridPartition g = BuildGridPartition(domains, constraints);
  // 61 intervals per dimension; 61^8 ≈ 1.9e14 saturates any sane cap.
  EXPECT_EQ(g.NumCellsCapped(1000000), 1000000u);
}

TEST(GridPartitionTest, CellRoundTrip) {
  const GridPartition g = BuildGridPartition(
      {Interval(0, 10), Interval(0, 10)},
      {PredicateAllOf({AtomRange(0, 3, 7), AtomRange(1, 5, 8)})});
  const uint64_t cells = g.NumCellsCapped(1000);
  for (uint64_t cell = 0; cell < cells; ++cell) {
    const auto index = g.DecodeCell(cell);
    const Row pt = g.CellMinPoint(index);
    EXPECT_EQ(g.CellOf(pt), cell);
  }
}

TEST(GridPartitionTest, CellOfInteriorPoints) {
  const GridPartition g = BuildGridPartition(
      {Interval(0, 10)}, {PredicateOf(AtomRange(0, 4, 6))});
  // Intervals: [0,4) [4,6) [6,10).
  EXPECT_EQ(g.CellOf({0}), 0u);
  EXPECT_EQ(g.CellOf({3}), 0u);
  EXPECT_EQ(g.CellOf({4}), 1u);
  EXPECT_EQ(g.CellOf({5}), 1u);
  EXPECT_EQ(g.CellOf({9}), 2u);
}

// Region vs grid: region partitioning never produces more variables than the
// grid over the same constraints (the paper's core complexity claim).
class RegionVsGridTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegionVsGridTest, RegionCountNeverExceedsGridCells) {
  Rng rng(GetParam() * 53 + 11);
  const int dims = static_cast<int>(rng.NextInt(1, 4));
  std::vector<Interval> domains(dims, Interval(0, 60));
  std::vector<DnfPredicate> constraints;
  for (int i = 0; i < 4; ++i) {
    Conjunct c;
    for (int d = 0; d < dims; ++d) {
      if (rng.NextBool(0.7)) {
        const int64_t lo = rng.NextInt(0, 59);
        c.AddAtom(AtomRange(d, lo, rng.NextInt(lo + 1, 61)));
      }
    }
    if (c.atoms.empty()) c.AddAtom(AtomRange(0, 10, 20));
    DnfPredicate p;
    p.AddConjunct(std::move(c));
    constraints.push_back(std::move(p));
  }
  const RegionPartition regions = BuildRegionPartition(domains, constraints);
  const GridPartition grid = BuildGridPartition(domains, constraints);
  EXPECT_LE(static_cast<uint64_t>(regions.num_regions()),
            grid.NumCellsCapped(UINT64_MAX / 2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionVsGridTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace hydra
