// Tests for the metrics registry (src/common/metrics.h,
// docs/observability.md): log-bucket geometry, percentile accuracy against
// a sorted-vector oracle, concurrent recording, snapshot self-consistency,
// static-registration linkage (instrumented .cc files in the library put
// their metrics in the registry), provider prefixing, the deterministic
// binary snapshot codec, and the Prometheus text writer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace hydra {
namespace {

// Registry state is process-global, so these tests define their own
// uniquely-named metrics and assert on those — never on totals that other
// tests (or library instrumentation) could also bump.

HYDRA_METRIC_COUNTER(g_test_counter, "test/metrics/counter");
HYDRA_METRIC_GAUGE(g_test_gauge, "test/metrics/gauge");
HYDRA_METRIC_HISTOGRAM(g_test_histogram, "test/metrics/histogram");

const CounterSnapshot* FindCounter(const MetricsSnapshot& snapshot,
                                   const std::string& name) {
  for (const auto& c : snapshot.counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* FindGauge(const MetricsSnapshot& snapshot,
                               const std::string& name) {
  for (const auto& g : snapshot.gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* FindHistogram(const MetricsSnapshot& snapshot,
                                       const std::string& name) {
  for (const auto& h : snapshot.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

// ---- bucket geometry -----------------------------------------------------

TEST(HistogramBuckets, SmallValuesGetExactUnitBuckets) {
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    const int i = Histogram::BucketIndex(v);
    EXPECT_EQ(Histogram::BucketLower(i), v);
    EXPECT_EQ(Histogram::BucketUpper(i), v + 1);
  }
}

TEST(HistogramBuckets, EveryValueLandsInsideItsBucket) {
  std::mt19937_64 rng(42);
  std::vector<uint64_t> probes = {0, 1, 15, 16, 17, 31, 32, 33,
                                  255, 256, 1000, 1000000, UINT64_MAX};
  for (int i = 0; i < 1000; ++i) {
    // Exercise all octaves: a random mantissa under a random bit width.
    probes.push_back(rng() >> (rng() % 64));
  }
  for (const uint64_t v : probes) {
    const int i = Histogram::BucketIndex(v);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, Histogram::kNumBuckets);
    EXPECT_GE(v, Histogram::BucketLower(i)) << "value " << v;
    if (Histogram::BucketUpper(i) != UINT64_MAX) {
      EXPECT_LT(v, Histogram::BucketUpper(i)) << "value " << v;
    }
  }
}

TEST(HistogramBuckets, BoundariesTileWithoutGapsOrOverlap) {
  for (int i = 1; i < Histogram::kNumBuckets; ++i) {
    if (Histogram::BucketUpper(i - 1) == UINT64_MAX) break;
    EXPECT_EQ(Histogram::BucketUpper(i - 1), Histogram::BucketLower(i))
        << "gap between buckets " << i - 1 << " and " << i;
  }
}

TEST(HistogramBuckets, RelativeWidthIsBounded) {
  // From the first full octave on, width <= lower/16 (6.25%).
  for (int i = Histogram::kSubBuckets * 2; i < Histogram::kNumBuckets; ++i) {
    const uint64_t lower = Histogram::BucketLower(i);
    const uint64_t upper = Histogram::BucketUpper(i);
    if (upper == UINT64_MAX) break;
    EXPECT_LE(upper - lower, lower / Histogram::kSubBuckets)
        << "bucket " << i << " [" << lower << ", " << upper << ")";
  }
}

// ---- percentiles against an oracle ---------------------------------------

// Records `values` into a fresh histogram and checks every requested
// quantile against the sorted-vector order statistic: the estimate must be
// >= the true value and within one bucket width above it.
void CheckPercentiles(std::vector<uint64_t> values) {
  Histogram h("test/metrics/oracle_scratch");
  for (const uint64_t v : values) h.Record(v);
  const MetricsSnapshot snapshot = MetricRegistry::Snapshot();
  const HistogramSnapshot* s =
      FindHistogram(snapshot, "test/metrics/oracle_scratch");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->count, values.size());

  std::sort(values.begin(), values.end());
  for (const double q : {0.0, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999, 1.0}) {
    const double r = std::ceil(q * static_cast<double>(values.size())) - 1;
    const size_t rank =
        r <= 0 ? 0 : std::min(values.size() - 1, static_cast<size_t>(r));
    const uint64_t truth = values[rank];
    const uint64_t est = s->Percentile(q);
    EXPECT_GE(est, truth) << "q=" << q;
    // est is the inclusive upper bound of truth's bucket.
    const int bucket = Histogram::BucketIndex(truth);
    EXPECT_LE(est, Histogram::BucketUpper(bucket) == UINT64_MAX
                       ? UINT64_MAX
                       : Histogram::BucketUpper(bucket) - 1)
        << "q=" << q;
  }
}

TEST(HistogramPercentiles, UniformValues) {
  std::vector<uint64_t> values;
  for (uint64_t v = 0; v < 10000; ++v) values.push_back(v);
  CheckPercentiles(std::move(values));
}

TEST(HistogramPercentiles, LogNormalLatencies) {
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(6.0, 1.5);  // ~400us median
  std::vector<uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    values.push_back(static_cast<uint64_t>(dist(rng)));
  }
  CheckPercentiles(std::move(values));
}

TEST(HistogramPercentiles, ValuesStraddlingBucketBoundaries) {
  std::vector<uint64_t> values;
  for (int o = 0; o < 40; ++o) {
    const uint64_t p = 1ull << o;
    values.insert(values.end(), {p - 1, p, p + 1});
  }
  CheckPercentiles(std::move(values));
}

TEST(HistogramPercentiles, EmptyAndSingleton) {
  Histogram h("test/metrics/empty_scratch");
  {
    const MetricsSnapshot snapshot = MetricRegistry::Snapshot();
    const HistogramSnapshot* s =
        FindHistogram(snapshot, "test/metrics/empty_scratch");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->count, 0u);
    EXPECT_EQ(s->Percentile(0.5), 0u);
  }
  h.Record(777);
  {
    const MetricsSnapshot snapshot = MetricRegistry::Snapshot();
    const HistogramSnapshot* s =
        FindHistogram(snapshot, "test/metrics/empty_scratch");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->count, 1u);
    EXPECT_EQ(s->sum, 777u);
    EXPECT_EQ(s->max, 777u);
    const uint64_t est = s->Percentile(0.5);
    EXPECT_GE(est, 777u);
    EXPECT_LE(est, 777u + 777u / Histogram::kSubBuckets);
  }
}

// ---- concurrency ---------------------------------------------------------

TEST(MetricsConcurrency, ParallelRecordingLosesNothing) {
  // Run under TSan to verify the lock-free record path; the count/sum
  // checks catch lost updates under any build.
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  Counter counter("test/metrics/mt_counter");
  Histogram histogram("test/metrics/mt_histogram");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram, t] {
      std::mt19937_64 rng(static_cast<uint64_t>(t));
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter.Inc();
        histogram.Record(rng() % 100000);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
}

TEST(MetricsConcurrency, SnapshotWhileRecordingStaysCoherent) {
  Histogram histogram("test/metrics/live_histogram");
  std::atomic<bool> stop{false};
  std::thread writer([&histogram, &stop] {
    uint64_t v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      histogram.Record(v++ % 5000);
    }
  });
  while (histogram.count() == 0) std::this_thread::yield();
  uint64_t last_count = 0;
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snapshot = MetricRegistry::Snapshot();
    const HistogramSnapshot* s =
        FindHistogram(snapshot, "test/metrics/live_histogram");
    ASSERT_NE(s, nullptr);
    // Count is derived from the bucket array, so it always equals the sum
    // of the buckets in the same snapshot, and it never goes backwards.
    uint64_t bucket_total = 0;
    for (const auto& [index, n] : s->buckets) bucket_total += n;
    EXPECT_EQ(s->count, bucket_total);
    EXPECT_GE(s->count, last_count);
    last_count = s->count;
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(last_count, 0u);
}

// ---- registry ------------------------------------------------------------

TEST(MetricRegistryTest, StaticRegistrationIsVisible) {
  // The file-scope globals above registered before main().
  EXPECT_EQ(MetricRegistry::FindCounter("test/metrics/counter"),
            &g_test_counter);
  EXPECT_EQ(MetricRegistry::FindGauge("test/metrics/gauge"), &g_test_gauge);
  EXPECT_EQ(MetricRegistry::FindHistogram("test/metrics/histogram"),
            &g_test_histogram);
  EXPECT_EQ(MetricRegistry::FindCounter("test/metrics/absent"), nullptr);
}

TEST(MetricRegistryTest, SnapshotIsSortedAndContainsRegisteredNames) {
  g_test_counter.Inc(3);
  g_test_gauge.Set(-17);
  const MetricsSnapshot snapshot = MetricRegistry::Snapshot();
  const CounterSnapshot* c = FindCounter(snapshot, "test/metrics/counter");
  ASSERT_NE(c, nullptr);
  EXPECT_GE(c->value, 3u);
  const GaugeSnapshot* g = FindGauge(snapshot, "test/metrics/gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, -17);
  EXPECT_TRUE(std::is_sorted(
      snapshot.counters.begin(), snapshot.counters.end(),
      [](const auto& a, const auto& b) { return a.name < b.name; }));
  EXPECT_TRUE(std::is_sorted(
      snapshot.gauges.begin(), snapshot.gauges.end(),
      [](const auto& a, const auto& b) { return a.name < b.name; }));
  EXPECT_TRUE(std::is_sorted(
      snapshot.histograms.begin(), snapshot.histograms.end(),
      [](const auto& a, const auto& b) { return a.name < b.name; }));
}

TEST(MetricRegistryTest, ScopedMetricUnregistersOnDestruction) {
  {
    Counter scoped("test/metrics/scoped");
    EXPECT_EQ(MetricRegistry::FindCounter("test/metrics/scoped"), &scoped);
  }
  EXPECT_EQ(MetricRegistry::FindCounter("test/metrics/scoped"), nullptr);
}

// ---- providers -----------------------------------------------------------

TEST(MetricsProviderTest, GaugesAppearUnderPrefixAndVanishOnDestruction) {
  {
    MetricsProvider provider("test_prov", [](MetricsSink* sink) {
      sink->Gauge("alpha", int64_t{11});
      sink->Gauge("beta", uint64_t{22});
    });
    EXPECT_EQ(provider.registered_name(), "test_prov");
    const MetricsSnapshot snapshot = MetricRegistry::Snapshot();
    const GaugeSnapshot* a = FindGauge(snapshot, "test_prov/alpha");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->value, 11);
    const GaugeSnapshot* b = FindGauge(snapshot, "test_prov/beta");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->value, 22);
  }
  const MetricsSnapshot snapshot = MetricRegistry::Snapshot();
  EXPECT_EQ(FindGauge(snapshot, "test_prov/alpha"), nullptr);
}

TEST(MetricsProviderTest, DuplicateNamesGetSuffixed) {
  MetricsProvider first("test_dup", [](MetricsSink* sink) {
    sink->Gauge("x", int64_t{1});
  });
  MetricsProvider second("test_dup", [](MetricsSink* sink) {
    sink->Gauge("x", int64_t{2});
  });
  EXPECT_EQ(first.registered_name(), "test_dup");
  EXPECT_EQ(second.registered_name(), "test_dup#2");
  const MetricsSnapshot snapshot = MetricRegistry::Snapshot();
  const GaugeSnapshot* a = FindGauge(snapshot, "test_dup/x");
  const GaugeSnapshot* b = FindGauge(snapshot, "test_dup#2/x");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->value, 1);
  EXPECT_EQ(b->value, 2);
}

// ---- timing gate ---------------------------------------------------------

TEST(TimingGate, DisabledTimerRecordsNothing) {
  Histogram h("test/metrics/gated");
  metrics::SetTimingEnabled(false);
  {
    ScopedLatencyTimer timer(&h);
    EXPECT_FALSE(timer.active());
    EXPECT_EQ(timer.elapsed_us(), 0u);
  }
  EXPECT_EQ(h.count(), 0u);
  metrics::SetTimingEnabled(true);
  {
    ScopedLatencyTimer timer(&h);
    EXPECT_TRUE(timer.active());
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(TimingGate, NullHistogramIsSafe) {
  ScopedLatencyTimer timer(nullptr);  // conditional-timing idiom
  EXPECT_FALSE(timer.active());
}

// ---- serialization -------------------------------------------------------

TEST(MetricsCodec, RoundTripsAndIsDeterministic) {
  g_test_counter.Inc();
  g_test_histogram.Record(123);
  g_test_histogram.Record(456789);
  const MetricsSnapshot snapshot = MetricRegistry::Snapshot();
  const std::string bytes = SerializeMetricsSnapshot(snapshot);
  EXPECT_EQ(bytes, SerializeMetricsSnapshot(snapshot));

  MetricsSnapshot parsed;
  ASSERT_TRUE(ParseMetricsSnapshot(bytes, &parsed).ok());
  ASSERT_EQ(parsed.counters.size(), snapshot.counters.size());
  ASSERT_EQ(parsed.gauges.size(), snapshot.gauges.size());
  ASSERT_EQ(parsed.histograms.size(), snapshot.histograms.size());
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    EXPECT_EQ(parsed.counters[i].name, snapshot.counters[i].name);
    EXPECT_EQ(parsed.counters[i].value, snapshot.counters[i].value);
  }
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    EXPECT_EQ(parsed.histograms[i].name, snapshot.histograms[i].name);
    EXPECT_EQ(parsed.histograms[i].count, snapshot.histograms[i].count);
    EXPECT_EQ(parsed.histograms[i].sum, snapshot.histograms[i].sum);
    EXPECT_EQ(parsed.histograms[i].max, snapshot.histograms[i].max);
    EXPECT_EQ(parsed.histograms[i].buckets, snapshot.histograms[i].buckets);
  }
  // The round trip preserves percentile math, not just raw fields.
  const HistogramSnapshot* h = FindHistogram(parsed, "test/metrics/histogram");
  ASSERT_NE(h, nullptr);
  const HistogramSnapshot* orig =
      FindHistogram(snapshot, "test/metrics/histogram");
  EXPECT_EQ(h->Percentile(0.99), orig->Percentile(0.99));
}

TEST(MetricsCodec, RejectsGarbage) {
  MetricsSnapshot scratch;
  EXPECT_FALSE(ParseMetricsSnapshot("", &scratch).ok());
  EXPECT_FALSE(ParseMetricsSnapshot("nonsense", &scratch).ok());
  std::string truncated =
      SerializeMetricsSnapshot(MetricRegistry::Snapshot());
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(ParseMetricsSnapshot(truncated, &scratch).ok());
}

// ---- Prometheus text -----------------------------------------------------

TEST(PrometheusTextTest, EmitsSanitizedSeries) {
  g_test_counter.Inc();
  g_test_histogram.Record(42);
  const std::string text = PrometheusText(MetricRegistry::Snapshot());
  EXPECT_NE(text.find("hydra_test_metrics_counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hydra_test_metrics_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("hydra_test_metrics_histogram_bucket"),
            std::string::npos);
  EXPECT_NE(text.find("hydra_test_metrics_histogram_count"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  // No raw '/' survives sanitization in a metric name.
  for (size_t pos = 0; (pos = text.find("hydra_", pos)) != std::string::npos;
       ++pos) {
    const size_t end = text.find_first_of(" {", pos);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(text.find('/', pos), text.find('/', end))
        << "metric name contains '/': " << text.substr(pos, end - pos);
  }
}

}  // namespace
}  // namespace hydra
