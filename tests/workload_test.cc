// Tests for workload/: schemas, data generation, workload generation, client
// site construction and similarity measurement.

#include <gtest/gtest.h>

#include "workload/job.h"
#include "workload/tpcds.h"
#include "workload/toy.h"
#include "workload/workload_runner.h"

namespace hydra {
namespace {

TEST(TpcdsSchemaTest, ValidatesAndHas24Relations) {
  Schema s = TpcdsSchema(1.0);
  EXPECT_TRUE(s.Validate().ok());
  EXPECT_EQ(s.num_relations(), 24);
  EXPECT_GE(s.RelationIndex("store_sales"), 0);
  EXPECT_GE(s.RelationIndex("inventory"), 0);
  EXPECT_GE(s.RelationIndex("income_band"), 0);
}

TEST(TpcdsSchemaTest, DiamondDependenciesPresent) {
  // store_sales and store_returns both reach date_dim; customer chains to
  // household_demographics → income_band: the DAG shape Hydra supports.
  Schema s = TpcdsSchema(1.0);
  const int ss = s.RelationIndex("store_sales");
  const auto deps = s.TransitiveDependencies(ss);
  EXPECT_GT(deps.size(), 8u);
  const int ib = s.RelationIndex("income_band");
  EXPECT_TRUE(std::binary_search(deps.begin(), deps.end(), ib))
      << "store_sales must transitively reach income_band";
}

TEST(TpcdsSchemaTest, ScaleFactorScalesFacts) {
  Schema s1 = TpcdsSchema(1.0);
  Schema s4 = TpcdsSchema(4.0);
  const int ss1 = s1.RelationIndex("store_sales");
  EXPECT_EQ(s4.relation(ss1).row_count(), 4 * s1.relation(ss1).row_count());
  // Dimensions grow sub-linearly.
  const int item = s1.RelationIndex("item");
  EXPECT_LT(s4.relation(item).row_count(),
            4 * s1.relation(item).row_count());
  EXPECT_GT(s4.relation(item).row_count(), s1.relation(item).row_count());
}

TEST(TpcdsWorkloadTest, QueriesValidate) {
  Schema s = TpcdsSchema(1.0);
  for (auto kind : {TpcdsWorkloadKind::kComplex, TpcdsWorkloadKind::kSimple}) {
    const auto queries = TpcdsWorkload(s, kind, 50, 123);
    ASSERT_EQ(queries.size(), 50u);
    for (const Query& q : queries) {
      EXPECT_TRUE(q.Validate(s).ok()) << q.name;
    }
  }
}

TEST(TpcdsWorkloadTest, DeterministicInSeed) {
  Schema s = TpcdsSchema(1.0);
  const auto a = TpcdsWorkload(s, TpcdsWorkloadKind::kComplex, 10, 7);
  const auto b = TpcdsWorkload(s, TpcdsWorkloadKind::kComplex, 10, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tables.size(), b[i].tables.size());
    EXPECT_EQ(a[i].joins.size(), b[i].joins.size());
  }
}

TEST(TpcdsWorkloadTest, ComplexHasDnfAndDeepJoins) {
  Schema s = TpcdsSchema(1.0);
  const auto queries = TpcdsWorkload(s, TpcdsWorkloadKind::kComplex, 131, 42);
  int dnf_filters = 0;
  size_t max_joins = 0;
  for (const Query& q : queries) {
    max_joins = std::max(max_joins, q.joins.size());
    for (const QueryTable& qt : q.tables) {
      if (qt.filter.conjuncts().size() > 1) ++dnf_filters;
    }
  }
  EXPECT_GT(dnf_filters, 5);
  EXPECT_GE(max_joins, 4u);
}

TEST(JobSchemaTest, ValidatesAndScales) {
  Schema s = JobSchema(1.0);
  EXPECT_TRUE(s.Validate().ok());
  EXPECT_EQ(s.num_relations(), 13);
  // cast_info references title which references kind_type: a 2-level chain.
  const int ci = s.RelationIndex("cast_info");
  const auto deps = s.TransitiveDependencies(ci);
  EXPECT_TRUE(std::binary_search(deps.begin(), deps.end(),
                                 s.RelationIndex("kind_type")));
}

TEST(JobWorkloadTest, QueriesValidate) {
  Schema s = JobSchema(1.0);
  const auto queries = JobWorkload(s, 60, 5);
  ASSERT_EQ(queries.size(), 60u);
  for (const Query& q : queries) {
    EXPECT_TRUE(q.Validate(s).ok()) << q.name;
  }
}

TEST(DataGenTest, RespectsDomainsAndKeys) {
  Schema s = TpcdsSchema(0.2);
  auto db = GenerateClientDatabase(s, DataGenOptions{.seed = 1});
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->CheckReferentialIntegrity().ok());
  // Row counts match metadata; data attrs within domains.
  for (int r = 0; r < s.num_relations(); ++r) {
    EXPECT_EQ(db->RowCount(r), s.relation(r).row_count());
    const Relation& rel = s.relation(r);
    const Table& t = db->table(r);
    for (int a : rel.DataAttrIndices()) {
      const Interval dom = rel.attribute(a).domain;
      for (uint64_t i = 0; i < std::min<uint64_t>(t.num_rows(), 200); ++i) {
        ASSERT_TRUE(dom.Contains(t.At(i, a)))
            << rel.name() << "." << rel.attribute(a).name << " = "
            << t.At(i, a);
      }
    }
  }
}

TEST(DataGenTest, FkDistributionIsSkewed) {
  Schema s = TpcdsSchema(1.0);
  auto db = GenerateClientDatabase(s, DataGenOptions{.seed = 2});
  ASSERT_TRUE(db.ok());
  const int ss = s.RelationIndex("store_sales");
  const int item_fk = s.relation(ss).AttrIndex("ss_item_sk");
  const uint64_t items = s.relation(s.RelationIndex("item")).row_count();
  uint64_t low = 0, rows = db->RowCount(ss);
  for (uint64_t i = 0; i < rows; ++i) {
    if (db->table(ss).At(i, item_fk) <
        static_cast<int64_t>(items / 10)) {
      ++low;
    }
  }
  // Zipf: far more than 10% of references hit the first decile of items.
  EXPECT_GT(static_cast<double>(low) / rows, 0.25);
}

TEST(ClientSiteTest, BuildsAqpsAndCcs) {
  Schema s = TpcdsSchema(0.2);
  auto queries = TpcdsWorkload(s, TpcdsWorkloadKind::kSimple, 12, 9);
  auto site = BuildClientSite(s, DataGenOptions{.seed = 3},
                              std::move(queries));
  ASSERT_TRUE(site.ok()) << site.status().ToString();
  EXPECT_EQ(site->queries.size(), 12u);
  EXPECT_EQ(site->aqps.size(), 12u);
  // Size CCs (24) + at least one CC per query.
  EXPECT_GE(site->ccs.size(), 24u + 12u);
  // Every CC cardinality is consistent with its relation's table size.
  for (const auto& cc : site->ccs) {
    EXPECT_LE(cc.cardinality,
              site->database.RowCount(cc.RootRelation()))
        << cc.label;
  }
}

TEST(SimilarityTest, SelfComparisonIsExact) {
  Schema s = TpcdsSchema(0.2);
  auto queries = TpcdsWorkload(s, TpcdsWorkloadKind::kSimple, 8, 4);
  auto site = BuildClientSite(s, DataGenOptions{.seed = 5},
                              std::move(queries));
  ASSERT_TRUE(site.ok());
  auto report = MeasureVolumetricSimilarity(*site, site->database);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->FractionWithin(0.0), 1.0);
  EXPECT_DOUBLE_EQ(report->MaxAbsError(), 0.0);
  EXPECT_EQ(report->CountNegative(), 0);
}

TEST(SimilarityTest, DetectsDeviations) {
  ToyEnvironment env = MakeToyEnvironment();
  env.schema.mutable_relation(0).set_row_count(100);
  env.schema.mutable_relation(1).set_row_count(100);
  env.schema.mutable_relation(2).set_row_count(1000);
  auto site = BuildClientSite(env.schema, DataGenOptions{.seed = 6},
                              {env.query});
  ASSERT_TRUE(site.ok());
  // Vendor = an empty database: everything deviates fully negative.
  Database empty(site->schema);
  auto report = MeasureVolumetricSimilarity(*site, empty);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->FractionWithin(0.5), 1.0);
  EXPECT_GT(report->CountNegative(), 0);
}

TEST(ToyTest, EnvironmentMatchesPaperFigures) {
  ToyEnvironment env = MakeToyEnvironment();
  ASSERT_EQ(env.ccs.size(), 7u);
  EXPECT_EQ(env.ccs[0].cardinality, 80000u);
  EXPECT_EQ(env.ccs.back().cardinality, 30000u);
  EXPECT_TRUE(env.query.Validate(env.schema).ok());
}

}  // namespace
}  // namespace hydra
