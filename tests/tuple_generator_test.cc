// Unit tests for hydra/tuple_generator: dynamic generation, random access,
// materialization (memory + disk).

#include <filesystem>

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "hydra/regenerator.h"
#include "hydra/tuple_generator.h"
#include "storage/disk_table.h"
#include "workload/toy.h"

namespace hydra {
namespace {

class TupleGeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = MakeToyEnvironment();
    HydraRegenerator hydra(env_.schema);
    auto result = hydra.Regenerate(env_.ccs);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    summary_ = std::move(result->summary);
  }

  ToyEnvironment env_;
  DatabaseSummary summary_;
};

TEST_F(TupleGeneratorTest, RowCountsMatchSummary) {
  TupleGenerator gen(summary_);
  for (int r = 0; r < env_.schema.num_relations(); ++r) {
    EXPECT_EQ(gen.RowCount(r),
              static_cast<uint64_t>(summary_.relations[r].TotalCount()));
  }
}

TEST_F(TupleGeneratorTest, ScanEmitsSequentialPks) {
  TupleGenerator gen(summary_);
  const int s = env_.schema.RelationIndex("S");
  const int pk = env_.schema.relation(s).PrimaryKeyIndex();
  int64_t expected_pk = 0;
  gen.Scan(s, [&](const Row& row) {
    EXPECT_EQ(row[pk], expected_pk);
    ++expected_pk;
  });
  EXPECT_EQ(expected_pk, summary_.relations[s].TotalCount());
}

TEST_F(TupleGeneratorTest, GetTupleMatchesScan) {
  TupleGenerator gen(summary_);
  const int s = env_.schema.RelationIndex("S");
  std::vector<Row> scanned;
  gen.Scan(s, [&](const Row& row) { scanned.push_back(row); });
  Row out;
  for (int64_t i = 0; i < static_cast<int64_t>(scanned.size());
       i += std::max<int64_t>(1, scanned.size() / 37)) {
    gen.GetTuple(s, i, &out);
    EXPECT_EQ(out, scanned[i]) << "tuple " << i;
  }
  // Paper Section 6's example shape: random access at an arbitrary position.
  gen.GetTuple(s, 120 % scanned.size(), &out);
  EXPECT_EQ(out, scanned[120 % scanned.size()]);
}

TEST_F(TupleGeneratorTest, MaterializedDatabaseMatchesGenerator) {
  auto db = MaterializeDatabase(summary_);
  ASSERT_TRUE(db.ok());
  TupleGenerator gen(summary_);
  for (int r = 0; r < env_.schema.num_relations(); ++r) {
    ASSERT_EQ(db->RowCount(r), gen.RowCount(r));
    uint64_t i = 0;
    bool equal = true;
    gen.Scan(r, [&](const Row& row) {
      for (int c = 0; c < db->table(r).num_columns(); ++c) {
        if (db->table(r).At(i, c) != row[c]) equal = false;
      }
      ++i;
    });
    EXPECT_TRUE(equal) << "relation " << r;
  }
}

TEST_F(TupleGeneratorTest, MaterializedDatabaseHasReferentialIntegrity) {
  auto db = MaterializeDatabase(summary_);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->CheckReferentialIntegrity().ok());
}

TEST_F(TupleGeneratorTest, MaterializeToDiskRoundTrips) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("hydra_tg_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  auto bytes = MaterializeToDisk(summary_, dir.string());
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_GT(*bytes, 0u);

  const int s = env_.schema.RelationIndex("S");
  auto table = ReadDiskTable((dir / "S.tbl").string());
  ASSERT_TRUE(table.ok());
  TupleGenerator gen(summary_);
  EXPECT_EQ(table->num_rows(), gen.RowCount(s));
  std::filesystem::remove_all(dir);
}

TEST_F(TupleGeneratorTest, DynamicSourceUsableByExecutor) {
  // The vendor engine runs the workload without any materialized data —
  // the paper's "datagen" mode.
  TupleGenerator gen(summary_);
  Executor ex(env_.schema);
  auto aqp = ex.Execute(env_.query, gen);
  ASSERT_TRUE(aqp.ok()) << aqp.status().ToString();
  // Volumetric similarity on the toy CCs is exact or near-exact.
  ASSERT_EQ(aqp->steps.size(), 4u);
  EXPECT_EQ(aqp->steps[0].cardinality, 400u);    // σ_A(S)
  EXPECT_EQ(aqp->steps[1].cardinality, 900u);    // σ_C(T)
  EXPECT_EQ(aqp->steps[2].cardinality, 50000u);  // R⋈S
  EXPECT_EQ(aqp->steps[3].cardinality, 30000u);  // R⋈S⋈T
}

}  // namespace
}  // namespace hydra
