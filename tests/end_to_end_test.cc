// End-to-end integration: client site → CC extraction → Hydra regeneration →
// vendor-side volumetric similarity, on TPC-DS-like and JOB-like
// environments. These are the moral equivalent of the paper's Section 7.1.

#include <gtest/gtest.h>

#include "codd/metadata.h"
#include "hydra/regenerator.h"
#include "hydra/tuple_generator.h"
#include "workload/job.h"
#include "workload/tpcds.h"
#include "workload/workload_runner.h"

namespace hydra {
namespace {

class TpcdsEndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Schema schema = TpcdsSchema(0.3);
    auto queries = TpcdsWorkload(schema, TpcdsWorkloadKind::kSimple, 20, 21);
    auto site =
        BuildClientSite(schema, DataGenOptions{.seed = 31}, std::move(queries));
    ASSERT_TRUE(site.ok()) << site.status().ToString();
    site_ = new ClientSite(std::move(*site));

    HydraRegenerator hydra(site_->schema);
    auto result = hydra.Regenerate(site_->ccs);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    result_ = new RegenerationResult(std::move(*result));
  }
  static void TearDownTestSuite() {
    delete site_;
    delete result_;
    site_ = nullptr;
    result_ = nullptr;
  }

  static ClientSite* site_;
  static RegenerationResult* result_;
};

ClientSite* TpcdsEndToEndTest::site_ = nullptr;
RegenerationResult* TpcdsEndToEndTest::result_ = nullptr;

TEST_F(TpcdsEndToEndTest, SummaryIsSmall) {
  // The database is tens of MB; the summary must be a few hundred KB at most.
  EXPECT_LT(result_->summary.ByteSize(), 2u << 20);
}

TEST_F(TpcdsEndToEndTest, MaterializedDatabaseKeepsReferentialIntegrity) {
  auto db = MaterializeDatabase(result_->summary);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->CheckReferentialIntegrity().ok());
}

TEST_F(TpcdsEndToEndTest, VolumetricSimilarityHigh) {
  auto db = MaterializeDatabase(result_->summary);
  ASSERT_TRUE(db.ok());
  auto report = MeasureVolumetricSimilarity(*site_, *db);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Paper Section 7.1: ~90% of CCs essentially exact, all within ~10%.
  EXPECT_GE(report->FractionWithin(0.01), 0.85)
      << "max error " << report->MaxAbsError();
  EXPECT_GE(report->FractionWithin(0.15), 0.98);
}

TEST_F(TpcdsEndToEndTest, DynamicGenerationMatchesMaterialized) {
  TupleGenerator gen(result_->summary);
  auto dynamic_report = MeasureVolumetricSimilarity(*site_, gen);
  ASSERT_TRUE(dynamic_report.ok());
  auto db = MaterializeDatabase(result_->summary);
  ASSERT_TRUE(db.ok());
  auto static_report = MeasureVolumetricSimilarity(*site_, *db);
  ASSERT_TRUE(static_report.ok());
  ASSERT_EQ(dynamic_report->entries.size(), static_report->entries.size());
  for (size_t i = 0; i < dynamic_report->entries.size(); ++i) {
    EXPECT_EQ(dynamic_report->entries[i].vendor_cardinality,
              static_report->entries[i].vendor_cardinality)
        << dynamic_report->entries[i].label;
  }
}

TEST_F(TpcdsEndToEndTest, ErrorsAreOneSidedPositive) {
  auto db = MaterializeDatabase(result_->summary);
  ASSERT_TRUE(db.ok());
  auto report = MeasureVolumetricSimilarity(*site_, *db);
  ASSERT_TRUE(report.ok());
  // Hydra only adds tuples; any deviation beyond integerization noise must
  // be positive (Section 7.1).
  for (const SimilarityEntry& e : report->entries) {
    EXPECT_GE(e.signed_relative_error, -0.02) << e.label;
  }
}

TEST_F(TpcdsEndToEndTest, LpStaysSmall) {
  // Region partitioning keeps per-view LPs in the low thousands of variables.
  EXPECT_LT(result_->MaxLpVariables(), 100000u);
}

TEST(JobEndToEndTest, RegeneratesWithHighFidelity) {
  Schema schema = JobSchema(0.3);
  auto queries = JobWorkload(schema, 30, 77);
  auto site =
      BuildClientSite(schema, DataGenOptions{.seed = 78}, std::move(queries));
  ASSERT_TRUE(site.ok()) << site.status().ToString();

  HydraRegenerator hydra(site->schema);
  auto result = hydra.Regenerate(site->ccs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Paper Section 7.6: JOB views stay below 1e5 variables, all constraints
  // within 2% relative error.
  EXPECT_LT(result->MaxLpVariables(), 100000u);

  auto db = MaterializeDatabase(result->summary);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->CheckReferentialIntegrity().ok());
  auto report = MeasureVolumetricSimilarity(*site, *db);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->FractionWithin(0.05), 0.9)
      << "max error " << report->MaxAbsError();
}

TEST(ExabyteEndToEndTest, SummaryBuildsAtExtremeScale) {
  // Section 7.4: scale the toy CCs to an exabyte-equivalent row count and
  // verify the summary still builds instantly and describes the scaled data.
  Schema schema = TpcdsSchema(0.2);
  auto queries = TpcdsWorkload(schema, TpcdsWorkloadKind::kSimple, 6, 91);
  auto site =
      BuildClientSite(schema, DataGenOptions{.seed = 92}, std::move(queries));
  ASSERT_TRUE(site.ok());

  const double factor = 1e7;
  auto scaled_ccs = ScaleConstraints(site->ccs, factor);
  Schema scaled_schema = site->schema;
  for (int r = 0; r < scaled_schema.num_relations(); ++r) {
    scaled_schema.mutable_relation(r).set_row_count(
        static_cast<uint64_t>(scaled_schema.relation(r).row_count() *
                              factor));
  }
  HydraRegenerator hydra(scaled_schema);
  auto result = hydra.Regenerate(scaled_ccs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The summary stays tiny while describing ~1e12 rows.
  EXPECT_LT(result->summary.ByteSize(), 4u << 20);
  uint64_t total_rows = 0;
  for (const auto& rs : result->summary.relations) {
    total_rows += static_cast<uint64_t>(rs.TotalCount());
  }
  EXPECT_GT(total_rows, 100'000'000'000ull);  // ~1e11 rows described

  // Dynamic generation can serve tuples from anywhere in the range without
  // materializing anything.
  TupleGenerator gen(result->summary);
  const int ss = scaled_schema.RelationIndex("store_sales");
  Row row;
  gen.GetTuple(ss, static_cast<int64_t>(gen.RowCount(ss)) - 1, &row);
  EXPECT_EQ(row[scaled_schema.relation(ss).PrimaryKeyIndex()],
            static_cast<int64_t>(gen.RowCount(ss)) - 1);
}

}  // namespace
}  // namespace hydra
