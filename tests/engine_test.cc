// Unit + property tests for engine/: tables, database, executor AQPs.

#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/executor.h"
#include "engine/table.h"
#include "workload/datagen.h"
#include "workload/toy.h"

namespace hydra {
namespace {

TEST(TableTest, AppendAndAccess) {
  Table t(3);
  t.AppendRow({1, 2, 3});
  t.AppendRow({4, 5, 6});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.At(0, 0), 1);
  EXPECT_EQ(t.At(1, 2), 6);
  Row out;
  t.GetRow(1, &out);
  EXPECT_EQ(out, (Row{4, 5, 6}));
  EXPECT_EQ(t.ByteSize(), 6 * sizeof(Value));
}

TEST(TableTest, AppendRaw) {
  Table t(2);
  const Value raw[] = {7, 8};
  t.AppendRaw(raw);
  EXPECT_EQ(t.At(0, 1), 8);
}

TEST(TableTest, AppendBlock) {
  Table t(2);
  const Value rows[] = {1, 2, 3, 4, 5, 6};
  t.AppendBlock(rows, 3);
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.At(0, 0), 1);
  EXPECT_EQ(t.At(2, 1), 6);
}

TEST(DatabaseTest, ScanVisitsAllRowsInOrder) {
  ToyEnvironment env = MakeToyEnvironment();
  Database db(env.schema);
  const int s = env.schema.RelationIndex("S");
  db.table(s).AppendRow({0, 10, 20});
  db.table(s).AppendRow({1, 11, 21});
  std::vector<Row> seen;
  db.Scan(s, [&](const Row& r) { seen.push_back(r); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (Row{0, 10, 20}));
  EXPECT_EQ(seen[1], (Row{1, 11, 21}));
  EXPECT_EQ(db.RowCount(s), 2u);
}

TEST(DatabaseTest, ScanRangeMatchesScanSlices) {
  ToyEnvironment env = MakeToyEnvironment();
  Database db(env.schema);
  const int s = env.schema.RelationIndex("S");
  for (int64_t i = 0; i < 10; ++i) db.table(s).AppendRow({i, 10 * i, -i});
  std::vector<Row> full;
  db.Scan(s, [&](const Row& r) { full.push_back(r); });
  for (int64_t begin = 0; begin <= 10; ++begin) {
    for (int64_t end = begin; end <= 10; ++end) {
      std::vector<Row> part;
      db.ScanRange(s, begin, end, [&](const Row& r) { part.push_back(r); });
      ASSERT_EQ(part.size(), static_cast<size_t>(end - begin));
      for (int64_t i = begin; i < end; ++i) {
        EXPECT_EQ(part[i - begin], full[i]);
      }
    }
  }
}

TEST(TableTest, ResizeRowsAndMutableRowPtr) {
  Table t(2);
  t.ResizeRows(3);
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.At(2, 1), 0);  // zero-filled
  Value* p = t.MutableRowPtr(1);
  p[0] = 7;
  p[1] = 8;
  EXPECT_EQ(t.At(1, 0), 7);
  EXPECT_EQ(t.At(1, 1), 8);
}

TEST(DatabaseTest, ReferentialIntegrityDetectsDangling) {
  ToyEnvironment env = MakeToyEnvironment();
  Database db(env.schema);
  const int s = env.schema.RelationIndex("S");
  const int t = env.schema.RelationIndex("T");
  const int r = env.schema.RelationIndex("R");
  db.table(s).AppendRow({0, 1, 2});
  db.table(t).AppendRow({0, 3});
  db.table(r).AppendRow({0, 0, 0});
  EXPECT_TRUE(db.CheckReferentialIntegrity().ok());
  db.table(r).AppendRow({1, 5, 0});  // S_fk = 5 dangling
  EXPECT_FALSE(db.CheckReferentialIntegrity().ok());
}

// --- Executor ------------------------------------------------------------

class ToyExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = MakeToyEnvironment();
    auto db = GenerateClientDatabase(env_.schema, DataGenOptions{.seed = 11});
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<Database>(std::move(*db));
  }

  ToyEnvironment env_;
  std::unique_ptr<Database> db_;
};

TEST_F(ToyExecutorTest, PlanShapeMatchesQuery) {
  Executor ex(env_.schema);
  auto aqp = ex.Execute(env_.query, *db_);
  ASSERT_TRUE(aqp.ok()) << aqp.status().ToString();
  // Two filtered tables + two joins = 4 annotated steps.
  ASSERT_EQ(aqp->steps.size(), 4u);
  EXPECT_EQ(aqp->steps[0].relations.size(), 1u);
  EXPECT_EQ(aqp->steps[1].relations.size(), 1u);
  EXPECT_EQ(aqp->steps[2].relations.size(), 2u);
  EXPECT_EQ(aqp->steps[3].relations.size(), 3u);
  EXPECT_EQ(aqp->steps[3].joins.size(), 2u);
}

TEST_F(ToyExecutorTest, FilterCardinalityMatchesBruteForce) {
  Executor ex(env_.schema);
  auto aqp = ex.Execute(env_.query, *db_);
  ASSERT_TRUE(aqp.ok());
  // Count σ_{A∈[20,60)}(S) by hand.
  const int s = env_.schema.RelationIndex("S");
  const int a = env_.schema.relation(s).AttrIndex("A");
  uint64_t expected = 0;
  db_->Scan(s, [&](const Row& r) {
    if (r[a] >= 20 && r[a] < 60) ++expected;
  });
  EXPECT_EQ(aqp->steps[0].cardinality, expected);
}

TEST_F(ToyExecutorTest, JoinCardinalityMatchesBruteForce) {
  Executor ex(env_.schema);
  auto aqp = ex.Execute(env_.query, *db_);
  ASSERT_TRUE(aqp.ok());
  // |σ_A(R ⋈ S)|: R rows whose S_fk lands in a filtered S row.
  const int s = env_.schema.RelationIndex("S");
  const int r = env_.schema.RelationIndex("R");
  const int a = env_.schema.relation(s).AttrIndex("A");
  const int sfk = env_.schema.relation(r).AttrIndex("S_fk");
  std::set<Value> s_keys;
  db_->Scan(s, [&](const Row& row) {
    if (row[a] >= 20 && row[a] < 60) s_keys.insert(row[0]);
  });
  uint64_t expected = 0;
  db_->Scan(r, [&](const Row& row) {
    if (s_keys.count(row[sfk])) ++expected;
  });
  EXPECT_EQ(aqp->steps[2].cardinality, expected);
}

TEST_F(ToyExecutorTest, AqpToConstraintsPreservesEverything) {
  Executor ex(env_.schema);
  auto aqp = ex.Execute(env_.query, *db_);
  ASSERT_TRUE(aqp.ok());
  const auto ccs = AqpToConstraints(*aqp);
  ASSERT_EQ(ccs.size(), aqp->steps.size());
  for (size_t i = 0; i < ccs.size(); ++i) {
    EXPECT_EQ(ccs[i].cardinality, aqp->steps[i].cardinality);
    EXPECT_EQ(ccs[i].relations, aqp->steps[i].relations);
    EXPECT_EQ(ccs[i].label, aqp->steps[i].label);
  }
  // The final CC's root must be R (the FK source).
  EXPECT_EQ(ccs.back().RootRelation(), env_.schema.RelationIndex("R"));
}

TEST_F(ToyExecutorTest, RejectsSelfJoin) {
  Query q;
  q.name = "self";
  const int s = env_.schema.RelationIndex("S");
  q.tables.push_back(QueryTable{s, DnfPredicate::True()});
  q.tables.push_back(QueryTable{s, DnfPredicate::True()});
  // There is no FK S->S, so Validate already rejects; build a join that
  // passes arity checks only.
  q.joins.push_back(JoinEdge{0, 0, 1});
  Executor ex(env_.schema);
  EXPECT_FALSE(ex.Execute(q, *db_).ok());
}

TEST_F(ToyExecutorTest, RejectsFilterOnKeyAttribute) {
  Query q;
  q.name = "keyfilter";
  const int s = env_.schema.RelationIndex("S");
  q.tables.push_back(QueryTable{s, PredicateOf(AtomLess(0, 10))});  // S_pk
  Executor ex(env_.schema);
  EXPECT_FALSE(ex.Execute(q, *db_).ok());
}

TEST(ExecutorTest, DnfFilterCounted) {
  ToyEnvironment env = MakeToyEnvironment();
  auto db = GenerateClientDatabase(env.schema, DataGenOptions{.seed = 3});
  ASSERT_TRUE(db.ok());
  const int s = env.schema.RelationIndex("S");
  const int a = env.schema.relation(s).AttrIndex("A");
  const int b = env.schema.relation(s).AttrIndex("B");
  Query q;
  q.name = "dnf";
  DnfPredicate p =
      PredicateAllOf({AtomRange(a, 0, 30), AtomRange(b, 10, 40)})
          .Or(PredicateOf(AtomGreaterEqual(a, 80)));
  q.tables.push_back(QueryTable{s, p});
  Executor ex(env.schema);
  auto aqp = ex.Execute(q, *db);
  ASSERT_TRUE(aqp.ok());
  uint64_t expected = 0;
  db->Scan(s, [&](const Row& row) {
    if ((row[a] >= 0 && row[a] < 30 && row[b] >= 10 && row[b] < 40) ||
        row[a] >= 80) {
      ++expected;
    }
  });
  ASSERT_EQ(aqp->steps.size(), 1u);
  EXPECT_EQ(aqp->steps[0].cardinality, expected);
}

TEST(ExecutorTest, FkSideExpansionJoin) {
  // Join where the new table is the FK side: S first, then R (R references
  // S). Every filtered S row can match many R rows.
  ToyEnvironment env = MakeToyEnvironment();
  auto db = GenerateClientDatabase(env.schema, DataGenOptions{.seed = 5});
  ASSERT_TRUE(db.ok());
  const int s = env.schema.RelationIndex("S");
  const int r = env.schema.RelationIndex("R");
  const int a = env.schema.relation(s).AttrIndex("A");
  const int sfk = env.schema.relation(r).AttrIndex("S_fk");

  Query q;
  q.name = "fk_expand";
  q.tables.push_back(QueryTable{s, PredicateOf(AtomLess(a, 50))});
  q.tables.push_back(QueryTable{r, DnfPredicate::True()});
  q.joins.push_back(JoinEdge{1, sfk, 0});  // fk side is table 1 (new)

  Executor ex(env.schema);
  auto aqp = ex.Execute(q, *db);
  ASSERT_TRUE(aqp.ok()) << aqp.status().ToString();

  std::set<Value> keys;
  db->Scan(s, [&](const Row& row) {
    if (row[a] < 50) keys.insert(row[0]);
  });
  uint64_t expected = 0;
  db->Scan(r, [&](const Row& row) {
    if (keys.count(row[sfk])) ++expected;
  });
  EXPECT_EQ(aqp->steps.back().cardinality, expected);
}

// Property sweep: executing the toy query on databases generated with many
// seeds always produces join cardinalities that match a brute-force join.
class ExecutorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorPropertyTest, ThreeWayJoinMatchesBruteForce) {
  ToyEnvironment env = MakeToyEnvironment();
  // Shrink for speed.
  env.schema.mutable_relation(env.schema.RelationIndex("R"))
      .set_row_count(2000);
  env.schema.mutable_relation(env.schema.RelationIndex("S"))
      .set_row_count(100);
  env.schema.mutable_relation(env.schema.RelationIndex("T"))
      .set_row_count(80);
  auto db =
      GenerateClientDatabase(env.schema, DataGenOptions{.seed = GetParam()});
  ASSERT_TRUE(db.ok());
  Executor ex(env.schema);
  auto aqp = ex.Execute(env.query, *db);
  ASSERT_TRUE(aqp.ok());

  const Schema& schema = env.schema;
  const int s = schema.RelationIndex("S"), t = schema.RelationIndex("T"),
            r = schema.RelationIndex("R");
  const int a = schema.relation(s).AttrIndex("A");
  const int c = schema.relation(t).AttrIndex("C");
  const int sfk = schema.relation(r).AttrIndex("S_fk");
  const int tfk = schema.relation(r).AttrIndex("T_fk");
  std::set<Value> s_keys, t_keys;
  db->Scan(s, [&](const Row& row) {
    if (row[a] >= 20 && row[a] < 60) s_keys.insert(row[0]);
  });
  db->Scan(t, [&](const Row& row) {
    if (row[c] >= 2 && row[c] < 3) t_keys.insert(row[0]);
  });
  uint64_t expected = 0;
  db->Scan(r, [&](const Row& row) {
    if (s_keys.count(row[sfk]) && t_keys.count(row[tfk])) ++expected;
  });
  EXPECT_EQ(aqp->steps.back().cardinality, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace hydra
