// Integration tests for the end-to-end HydraRegenerator API on the paper's
// running example.

#include <gtest/gtest.h>

#include "hydra/regenerator.h"
#include "hydra/tuple_generator.h"
#include "workload/toy.h"

namespace hydra {
namespace {

TEST(RegeneratorTest, ToyEnvironmentSatisfiesAllCcsExactly) {
  ToyEnvironment env = MakeToyEnvironment();
  HydraRegenerator hydra(env.schema);
  auto result = hydra.Regenerate(env.ccs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto db = MaterializeDatabase(result->summary);
  ASSERT_TRUE(db.ok());

  // Verify every CC against the materialized database by direct evaluation.
  for (const CardinalityConstraint& cc : env.ccs) {
    if (cc.relations.size() == 1 && cc.predicate.IsTrue()) {
      EXPECT_EQ(db->RowCount(cc.relations[0]), cc.cardinality) << cc.label;
    }
  }
  EXPECT_TRUE(db->CheckReferentialIntegrity().ok());
}

TEST(RegeneratorTest, ReportsPerViewDiagnostics) {
  ToyEnvironment env = MakeToyEnvironment();
  HydraRegenerator hydra(env.schema);
  auto result = hydra.Regenerate(env.ccs);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->views.size(), 3u);
  // The R view (two-attribute clique) needs only a handful of variables —
  // the region-partitioning claim at toy scale.
  EXPECT_LE(result->MaxLpVariables(), 16u);
  EXPECT_GT(result->TotalLpVariables(), 0u);
  for (const ViewReport& v : result->views) {
    EXPECT_EQ(v.max_abs_violation, 0) << "relation " << v.relation;
  }
  EXPECT_GT(result->total_seconds, 0);
}

TEST(RegeneratorTest, SummaryIndependentOfDataScale) {
  // Scaling all cardinalities by 1000x must not change the summary's size —
  // the dynamic-regeneration claim (Section 7.4).
  ToyEnvironment env = MakeToyEnvironment();
  HydraRegenerator hydra(env.schema);
  auto base = hydra.Regenerate(env.ccs);
  ASSERT_TRUE(base.ok());

  std::vector<CardinalityConstraint> scaled = env.ccs;
  for (auto& cc : scaled) cc.cardinality *= 1000;
  Schema big = env.schema;
  for (int r = 0; r < big.num_relations(); ++r) {
    big.mutable_relation(r).set_row_count(big.relation(r).row_count() * 1000);
  }
  HydraRegenerator hydra_big(big);
  auto scaled_result = hydra_big.Regenerate(scaled);
  ASSERT_TRUE(scaled_result.ok()) << scaled_result.status().ToString();

  EXPECT_EQ(base->summary.relations[0].rows.size(),
            scaled_result->summary.relations[0].rows.size());
  // Byte sizes are equal up to integer-width noise.
  EXPECT_NEAR(static_cast<double>(base->summary.ByteSize()),
              static_cast<double>(scaled_result->summary.ByteSize()),
              base->summary.ByteSize() * 0.1);
  // But the described data is 1000x larger.
  EXPECT_EQ(scaled_result->summary.relations[0].TotalCount(),
            base->summary.relations[0].TotalCount() * 1000);
}

TEST(RegeneratorTest, EmptyCcListStillProducesValidSummary) {
  ToyEnvironment env = MakeToyEnvironment();
  HydraRegenerator hydra(env.schema);
  auto result = hydra.Regenerate({});
  ASSERT_TRUE(result.ok());
  auto db = MaterializeDatabase(result->summary);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->RowCount(env.schema.RelationIndex("R")), 80000u);
  EXPECT_TRUE(db->CheckReferentialIntegrity().ok());
}

TEST(RegeneratorTest, InfeasibleCcsReportError) {
  ToyEnvironment env = MakeToyEnvironment();
  // σ(S) larger than |S|.
  const int s = env.schema.RelationIndex("S");
  CardinalityConstraint bad;
  bad.relations = {s};
  bad.columns = {AttrRef{s, env.schema.relation(s).AttrIndex("A")}};
  bad.predicate = PredicateOf(AtomRange(0, 0, 10));
  bad.cardinality = 5000;  // |S| = 700
  bad.label = "impossible";
  std::vector<CardinalityConstraint> ccs = env.ccs;
  ccs.push_back(bad);
  HydraRegenerator hydra(env.schema);
  auto result = hydra.Regenerate(ccs);
  EXPECT_FALSE(result.ok());
}

TEST(RegeneratorTest, PositiveOnlyErrors) {
  // Hydra's only inaccuracy is ADDING tuples for referential integrity —
  // never removing mass (Section 7.1's one-sided error claim).
  ToyEnvironment env = MakeToyEnvironment();
  HydraRegenerator hydra(env.schema);
  auto result = hydra.Regenerate(env.ccs);
  ASSERT_TRUE(result.ok());
  for (int r = 0; r < env.schema.num_relations(); ++r) {
    EXPECT_GE(result->summary.relations[r].TotalCount(),
              static_cast<int64_t>(env.schema.relation(r).row_count()));
  }
}

}  // namespace
}  // namespace hydra
