// Unit tests for hydra/preprocessor: view construction and CC rewriting.

#include <gtest/gtest.h>

#include "hydra/preprocessor.h"
#include "workload/tpcds.h"
#include "workload/toy.h"

namespace hydra {
namespace {

TEST(PreprocessorTest, ToyViewsMatchPaperSection32) {
  ToyEnvironment env = MakeToyEnvironment();
  Preprocessor pre(env.schema);
  auto views = pre.BuildViews();
  ASSERT_TRUE(views.ok()) << views.status().ToString();
  const int r = env.schema.RelationIndex("R");
  const int s = env.schema.RelationIndex("S");
  const int t = env.schema.RelationIndex("T");
  // R_view(A, B, C), S_view(A, B), T_view(C).
  EXPECT_EQ((*views)[r].num_columns(), 3);
  EXPECT_EQ((*views)[s].num_columns(), 2);
  EXPECT_EQ((*views)[t].num_columns(), 1);
  EXPECT_EQ((*views)[r].total_rows, 80000u);
}

TEST(PreprocessorTest, ViewColumnsAreSupersets) {
  // columns(V_S) ⊆ columns(V_R) whenever R references S — the invariant the
  // summary generator's projections rely on.
  Schema schema = TpcdsSchema(0.2);
  Preprocessor pre(schema);
  auto views = pre.BuildViews();
  ASSERT_TRUE(views.ok());
  for (int r = 0; r < schema.num_relations(); ++r) {
    for (int dep : schema.TransitiveDependencies(r)) {
      for (const AttrRef& ref : (*views)[dep].columns) {
        EXPECT_GE((*views)[r].ColumnOf(ref), 0)
            << schema.relation(r).name() << " missing "
            << schema.QualifiedName(ref);
      }
    }
  }
}

TEST(PreprocessorTest, ColumnOfFindsOwnAttrs) {
  ToyEnvironment env = MakeToyEnvironment();
  Preprocessor pre(env.schema);
  auto views = pre.BuildViews();
  ASSERT_TRUE(views.ok());
  const int s = env.schema.RelationIndex("S");
  const int a = env.schema.relation(s).AttrIndex("A");
  EXPECT_EQ((*views)[s].ColumnOf(AttrRef{s, a}), 0);
  EXPECT_EQ((*views)[s].ColumnOf(AttrRef{s, 99}), -1);
}

TEST(PreprocessorTest, JoinCcRewrittenOntoRootView) {
  ToyEnvironment env = MakeToyEnvironment();
  Preprocessor pre(env.schema);
  auto views = pre.BuildViews();
  ASSERT_TRUE(views.ok());
  auto mapped = pre.MapConstraints(*views, env.ccs);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const int r = env.schema.RelationIndex("R");
  const int s = env.schema.RelationIndex("S");
  const int t = env.schema.RelationIndex("T");
  // R gets: |R| (TRUE), the R⋈S CC and the R⋈S⋈T CC.
  EXPECT_EQ((*mapped)[r].size(), 3u);
  // S gets |S| and the filter CC; T likewise.
  EXPECT_EQ((*mapped)[s].size(), 2u);
  EXPECT_EQ((*mapped)[t].size(), 2u);

  // The rewritten R⋈S⋈T predicate must evaluate over R_view columns: find it
  // and probe semantics. R_view columns are (S.A, S.B, T.C) in some order.
  const View& rv = (*views)[r];
  const ViewConstraint* joint = nullptr;
  for (const ViewConstraint& vc : (*mapped)[r]) {
    if (vc.cardinality == 30000) joint = &vc;
  }
  ASSERT_NE(joint, nullptr);
  Row probe(rv.num_columns(), 0);
  const int s_a =
      rv.ColumnOf(AttrRef{s, env.schema.relation(s).AttrIndex("A")});
  const int t_c =
      rv.ColumnOf(AttrRef{t, env.schema.relation(t).AttrIndex("C")});
  ASSERT_GE(s_a, 0);
  ASSERT_GE(t_c, 0);
  probe[s_a] = 30;
  probe[t_c] = 2;
  EXPECT_TRUE(joint->predicate.Eval(probe));
  probe[t_c] = 5;
  EXPECT_FALSE(joint->predicate.Eval(probe));
}

TEST(PreprocessorTest, RejectsUnreachableJoin) {
  ToyEnvironment env = MakeToyEnvironment();
  Preprocessor pre(env.schema);
  auto views = pre.BuildViews();
  ASSERT_TRUE(views.ok());
  CardinalityConstraint bad;
  // Root S cannot reach T.
  bad.relations = {env.schema.RelationIndex("S"),
                   env.schema.RelationIndex("T")};
  bad.predicate = DnfPredicate::True();
  bad.cardinality = 1;
  bad.label = "bad";
  auto mapped = pre.MapConstraints(*views, {bad});
  EXPECT_FALSE(mapped.ok());
}

TEST(PreprocessorTest, RejectsDuplicateFkTarget) {
  Schema s;
  Relation d("d", 10);
  d.AddPrimaryKey("d_pk");
  d.AddDataAttribute("x", Interval(0, 5));
  const int rd = s.AddRelation(std::move(d));
  Relation f("f", 100);
  f.AddPrimaryKey("f_pk");
  f.AddForeignKey("fk1", rd);
  f.AddForeignKey("fk2", rd);  // second FK to the same relation
  s.AddRelation(std::move(f));
  Preprocessor pre(s);
  auto views = pre.BuildViews();
  ASSERT_FALSE(views.ok());
  EXPECT_EQ(views.status().code(), StatusCode::kUnimplemented);
}

TEST(PreprocessorTest, TpcdsViewsBuild) {
  Schema schema = TpcdsSchema(0.2);
  Preprocessor pre(schema);
  auto views = pre.BuildViews();
  ASSERT_TRUE(views.ok());
  // store_sales borrows from 6 direct + transitive dims.
  const int ss = schema.RelationIndex("store_sales");
  const View& v = (*views)[ss];
  EXPECT_GT(v.num_columns(), 25);
  // customer's own view is a subset.
  const int c = schema.RelationIndex("customer");
  for (const AttrRef& ref : (*views)[c].columns) {
    EXPECT_GE(v.ColumnOf(ref), 0);
  }
}

}  // namespace
}  // namespace hydra
