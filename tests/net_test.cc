// Tests for the TCP front end (src/net/, docs/net.md): frame-level codec
// round trips, the stable ServeErrorCode mapping, protocol hardening (torn
// frames, oversized payloads, bad magic/version, unknown opcodes, a seeded
// malformed-frame fuzz sweep — none may crash or wedge the server), session
// scoping and disconnect reaping, QoS fields riding the open frame, and the
// headline contract: a NetClient stream is byte-identical to the in-process
// stream, including resume-after-drop.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "hydra/regenerator.h"
#include "hydra/summary_io.h"
#include "hydra/tuple_generator.h"
#include "net/client.h"
#include "net/net_server.h"
#include "net/wire.h"
#include "serve/serve_api.h"
#include "serve/server.h"
#include "workload/toy.h"

namespace hydra {
namespace {

constexpr uint64_t kFnvSeed = 14695981039346656037ull;

uint64_t HashValues(uint64_t h, const Value* v, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    uint64_t x = static_cast<uint64_t>(v[i]);
    for (int b = 0; b < 8; ++b) {
      h ^= (x >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

uint64_t HashBlock(uint64_t h, const RowBlock& block) {
  Row row(block.num_columns());
  for (int64_t r = 0; r < block.num_rows(); ++r) {
    block.CopyRowTo(r, row.data());
    h = HashValues(h, row.data(), block.num_columns());
  }
  return h;
}

// ---- codec unit tests (no server) ----------------------------------------

TEST(WireTest, FrameHeaderRoundTrips) {
  FrameHeader header;
  header.opcode = static_cast<uint8_t>(Opcode::kNextBatch);
  header.request_id = 0x0123456789abcdefull;
  header.payload_len = 4242;
  uint8_t bytes[kFrameHeaderBytes];
  EncodeFrameHeader(header, bytes);
  const FrameHeader decoded = DecodeFrameHeader(bytes);
  EXPECT_EQ(decoded.magic, kWireMagic);
  EXPECT_EQ(decoded.version, kWireVersion);
  EXPECT_EQ(decoded.opcode, header.opcode);
  EXPECT_EQ(decoded.request_id, header.request_id);
  EXPECT_EQ(decoded.payload_len, header.payload_len);
  EXPECT_TRUE(ValidateFrameHeader(decoded).ok());
  // The magic reads "HYRA" in byte order — a recognizable prefix in pcaps.
  EXPECT_EQ(std::string(reinterpret_cast<char*>(bytes), 4), "HYRA");
}

TEST(WireTest, ValidateRejectsBadHeaders) {
  FrameHeader header;
  header.magic = 0xdeadbeef;
  EXPECT_FALSE(ValidateFrameHeader(header).ok());
  header = FrameHeader();
  header.version = kWireVersion + 1;
  EXPECT_FALSE(ValidateFrameHeader(header).ok());
  header = FrameHeader();
  header.payload_len = kMaxPayloadBytes + 1;
  EXPECT_FALSE(ValidateFrameHeader(header).ok());
}

TEST(WireTest, OpenSessionRequestRoundTripsQosFields) {
  OpenSessionRequest request{"alpha"};
  request.deadline_ms = 1234;
  request.priority = 5;
  request.rate_limit_rows_per_sec = 9999;
  std::string buf;
  AppendOpenSessionRequest(request, &buf);
  WireReader reader(buf);
  OpenSessionRequest decoded;
  ASSERT_TRUE(ReadOpenSessionRequest(&reader, &decoded).ok());
  EXPECT_TRUE(reader.done());
  EXPECT_EQ(decoded.summary_id, "alpha");
  EXPECT_EQ(decoded.deadline_ms, 1234);
  EXPECT_EQ(decoded.priority, 5);
  EXPECT_EQ(decoded.rate_limit_rows_per_sec, 9999);
  EXPECT_EQ(decoded.cancel, nullptr);  // in-process only, never marshalled
}

TEST(WireTest, CursorSpecAndPredicateRoundTrip) {
  CursorSpec spec;
  spec.relation = 2;
  spec.begin_rank = 1000;
  spec.end_rank = 77777;
  spec.projection = {0, 3, 1};
  spec.filter = PredicateOf(AtomRange(/*column=*/1, 40, 400));
  std::string buf;
  AppendCursorSpec(spec, &buf);
  WireReader reader(buf);
  CursorSpec decoded;
  ASSERT_TRUE(ReadCursorSpec(&reader, &decoded).ok());
  EXPECT_TRUE(reader.done());
  EXPECT_EQ(decoded.relation, spec.relation);
  EXPECT_EQ(decoded.begin_rank, spec.begin_rank);
  EXPECT_EQ(decoded.end_rank, spec.end_rank);
  EXPECT_EQ(decoded.projection, spec.projection);
  // Re-encoding the decoded predicate must reproduce the bytes: the codec
  // is canonical for the normalized DNF representation.
  std::string again;
  AppendCursorSpec(decoded, &again);
  EXPECT_EQ(again, buf);
}

TEST(WireTest, RowBlockRoundTrips) {
  RowBlock block;
  block.Reset(3);
  for (int64_t r = 0; r < 100; ++r) {
    for (int c = 0; c < 3; ++c) {
      block.MutableColumnBuffer(c).push_back(r * 3 + c);
    }
  }
  block.SetNumRows(100);
  std::string buf;
  AppendRowBlock(block, &buf);
  WireReader reader(buf);
  RowBlock decoded;
  ASSERT_TRUE(ReadRowBlock(&reader, &decoded).ok());
  EXPECT_TRUE(reader.done());
  ASSERT_EQ(decoded.num_columns(), 3);
  ASSERT_EQ(decoded.num_rows(), 100);
  EXPECT_EQ(HashBlock(kFnvSeed, decoded), HashBlock(kFnvSeed, block));
}

TEST(WireTest, RowBlockRejectsLyingRowCount) {
  // A header claiming more rows than the payload holds must fail cleanly
  // before any allocation sized from the lie.
  std::string buf;
  WireWriter writer(&buf);
  writer.U32(4);                    // columns
  writer.U64(1ull << 40);           // rows (absurd)
  writer.I64(1);                    // one actual value
  WireReader reader(buf);
  RowBlock decoded;
  EXPECT_EQ(ReadRowBlock(&reader, &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(WireTest, StatusEnvelopeRoundTrips) {
  std::string buf;
  AppendStatusEnvelope(Status::NotFound("no such cursor"), &buf);
  WireReader reader(buf);
  Status decoded;
  ASSERT_TRUE(ReadStatusEnvelope(&reader, &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kNotFound);
  EXPECT_EQ(decoded.message(), "no such cursor");

  buf.clear();
  AppendStatusEnvelope(Status::OK(), &buf);
  WireReader ok_reader(buf);
  ASSERT_TRUE(ReadStatusEnvelope(&ok_reader, &decoded).ok());
  EXPECT_TRUE(decoded.ok());
}

TEST(WireTest, ServeErrorCodeNumbersAreFrozen) {
  // The wire contract (docs/net.md): these numbers may never change.
  EXPECT_EQ(static_cast<uint16_t>(ServeErrorCode::kOk), 0);
  EXPECT_EQ(static_cast<uint16_t>(ServeErrorCode::kInvalidArgument), 1);
  EXPECT_EQ(static_cast<uint16_t>(ServeErrorCode::kNotFound), 2);
  EXPECT_EQ(static_cast<uint16_t>(ServeErrorCode::kFailedPrecondition), 3);
  EXPECT_EQ(static_cast<uint16_t>(ServeErrorCode::kOutOfRange), 4);
  EXPECT_EQ(static_cast<uint16_t>(ServeErrorCode::kResourceExhausted), 5);
  EXPECT_EQ(static_cast<uint16_t>(ServeErrorCode::kInternal), 6);
  EXPECT_EQ(static_cast<uint16_t>(ServeErrorCode::kUnimplemented), 7);
  EXPECT_EQ(static_cast<uint16_t>(ServeErrorCode::kIoError), 8);
  EXPECT_EQ(static_cast<uint16_t>(ServeErrorCode::kCancelled), 9);
  EXPECT_EQ(static_cast<uint16_t>(ServeErrorCode::kDeadlineExceeded), 10);
  EXPECT_EQ(static_cast<uint16_t>(ServeErrorCode::kUnavailable), 11);

  // Every StatusCode round-trips through its wire number.
  for (const StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
        StatusCode::kResourceExhausted, StatusCode::kInternal,
        StatusCode::kUnimplemented, StatusCode::kIoError,
        StatusCode::kCancelled, StatusCode::kDeadlineExceeded,
        StatusCode::kUnavailable}) {
    EXPECT_EQ(ToStatusCode(static_cast<uint16_t>(ToServeErrorCode(code))),
              code);
  }
  // Unknown wire values (a newer server) degrade to kInternal.
  EXPECT_EQ(ToStatusCode(60000), StatusCode::kInternal);
}

// ---- raw-socket helpers ---------------------------------------------------

// A bare TCP connection for speaking deliberately broken protocol.
class RawConn {
 public:
  explicit RawConn(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Bound every read so a test failure surfaces as an assertion, not a
    // ctest timeout.
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool Send(const std::string& bytes) {
    return WriteAll(fd_, bytes.data(), bytes.size()).ok();
  }

  // Reads one whole response frame; false on EOF/timeout/invalid header.
  bool ReadFrame(FrameHeader* header, std::string* payload) {
    uint8_t raw[kFrameHeaderBytes];
    if (!ReadExact(fd_, raw, sizeof(raw)).ok()) return false;
    *header = DecodeFrameHeader(raw);
    if (!ValidateFrameHeader(*header).ok()) return false;
    payload->resize(header->payload_len);
    if (header->payload_len == 0) return true;
    return ReadExact(fd_, &(*payload)[0], payload->size()).ok();
  }

  // True when the server has closed this connection (EOF within the read
  // timeout).
  bool ServerClosed() {
    char byte;
    const ssize_t got = ::read(fd_, &byte, 1);
    return got == 0;
  }

 private:
  int fd_ = -1;
};

std::string Frame(Opcode opcode, uint64_t request_id,
                  const std::string& payload) {
  FrameHeader header;
  header.opcode = static_cast<uint8_t>(opcode);
  header.request_id = request_id;
  header.payload_len = static_cast<uint32_t>(payload.size());
  std::string out(kFrameHeaderBytes, '\0');
  EncodeFrameHeader(header, reinterpret_cast<uint8_t*>(&out[0]));
  out += payload;
  return out;
}

// ---- served fixture -------------------------------------------------------

// This binary references every instrumented subsystem (serve, net, lp,
// generation), so their translation units link in and their namespace-scope
// metric globals must self-register before main() — the static-registration
// linkage contract of docs/observability.md. (A binary that links none of
// a subsystem's symbols legitimately drops its metrics with the TU.)
TEST(MetricsRegistration, LinkedSubsystemMetricsAreRegistered) {
  for (const char* name :
       {"serve/next_batch_us", "serve/open_session_us",
        "serve/admission_wait_us", "serve/summary_load_us", "lp/formulate_us",
        "lp/solve_us", "lp/refactorize_us", "gen/fill_us",
        "net/dispatch_wait_us", "net/handle_us", "net/write_us"}) {
    EXPECT_NE(MetricRegistry::FindHistogram(name), nullptr) << name;
  }
  EXPECT_NE(MetricRegistry::FindCounter("serve/slow_ops"), nullptr);
  EXPECT_NE(MetricRegistry::FindCounter("serve/summary_load_retries"),
            nullptr);
}

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hydra_net_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    env_ = MakeToyEnvironment();
    HydraRegenerator hydra(env_.schema);
    auto result = hydra.Regenerate(env_.ccs);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    summary_ = std::move(result->summary);
    path_ = (dir_ / "toy.summary").string();
    ASSERT_TRUE(WriteSummary(summary_, path_).ok());

    ServeOptions options;
    options.num_threads = 2;
    options.batch_rows = 1024;
    server_ = std::make_unique<RegenServer>(options);
    ASSERT_TRUE(server_->RegisterSummary("alpha", path_).ok());
    ASSERT_TRUE(server_->RegisterSummary("beta", path_).ok());
    net_ = std::make_unique<NetServer>(server_.get());
    ASSERT_TRUE(net_->Start().ok());
  }
  void TearDown() override {
    net_->Stop();
    net_.reset();
    server_.reset();
    std::filesystem::remove_all(dir_);
  }

  int port() const { return net_->port(); }

  // Drains `spec` through `client`, accumulating the row-stream hash.
  uint64_t StreamHash(NetClient& client, const CursorSpec& spec) {
    auto sid = client.OpenSession(OpenSessionRequest{"alpha"});
    EXPECT_TRUE(sid.ok()) << sid.status().ToString();
    auto cid = client.OpenCursor(*sid, spec);
    EXPECT_TRUE(cid.ok()) << cid.status().ToString();
    uint64_t h = kFnvSeed;
    RowBlock block;
    for (;;) {
      auto batch = client.NextBatch(*sid, *cid, std::move(block));
      EXPECT_TRUE(batch.ok()) << batch.status().ToString();
      if (!batch.ok() || batch->done) break;
      h = HashBlock(h, batch->rows);
      block = std::move(batch->rows);
    }
    EXPECT_TRUE(client.CloseSession(*sid).ok());
    return h;
  }

  // The in-process reference for the same spec.
  uint64_t InProcessHash(const CursorSpec& spec) {
    auto sid = server_->OpenSession(OpenSessionRequest{"alpha"});
    EXPECT_TRUE(sid.ok());
    auto cid = server_->OpenCursor(*sid, spec);
    EXPECT_TRUE(cid.ok());
    uint64_t h = kFnvSeed;
    RowBlock block;
    for (;;) {
      auto batch = server_->NextBatch(*sid, *cid, std::move(block));
      EXPECT_TRUE(batch.ok());
      if (!batch.ok() || batch->done) break;
      h = HashBlock(h, batch->rows);
      block = std::move(batch->rows);
    }
    EXPECT_TRUE(server_->CloseSession(*sid).ok());
    return h;
  }

  std::filesystem::path dir_;
  std::string path_;
  ToyEnvironment env_;
  DatabaseSummary summary_;
  std::unique_ptr<RegenServer> server_;
  std::unique_ptr<NetServer> net_;
};

// ---- the serving contract over TCP ---------------------------------------

TEST_F(NetTest, StreamsByteIdenticalToInProcess) {
  const int r = env_.schema.RelationIndex("R");
  std::vector<CursorSpec> specs;
  {
    CursorSpec identity;
    identity.relation = r;
    specs.push_back(identity);
  }
  {
    CursorSpec filtered;
    filtered.relation = r;
    filtered.filter = PredicateOf(AtomRange(/*column=*/1, 100, 400));
    filtered.projection = {1, 2};
    filtered.begin_rank = 777;
    filtered.end_rank = 66000;
    specs.push_back(filtered);
  }
  {
    CursorSpec narrow;
    narrow.relation = env_.schema.RelationIndex("S");
    narrow.projection = {0};
    specs.push_back(narrow);
  }
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port()).ok());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(StreamHash(client, specs[i]), InProcessHash(specs[i]))
        << "spec " << i << " diverged between wire and in-process";
  }
}

TEST_F(NetTest, PingStatsAndQosRideTheWire) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port()).ok());
  ASSERT_TRUE(client.Ping().ok());

  // A rate-limited session opened over the wire is paced server-side, and
  // the QoS counters come back through the Stats opcode.
  OpenSessionRequest request{"alpha"};
  request.rate_limit_rows_per_sec = 20000;
  request.priority = 3;
  auto sid = client.OpenSession(request);
  ASSERT_TRUE(sid.ok()) << sid.status().ToString();
  CursorSpec spec;
  spec.relation = env_.schema.RelationIndex("R");
  spec.end_rank = 30000;  // 20k burst + 10k paced rows (~500ms)
  auto cid = client.OpenCursor(*sid, spec);
  ASSERT_TRUE(cid.ok());
  const auto start = std::chrono::steady_clock::now();
  uint64_t rows = 0;
  RowBlock block;
  for (;;) {
    auto batch = client.NextBatch(*sid, *cid, std::move(block));
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (batch->done) break;
    rows += static_cast<uint64_t>(batch->rows.num_rows());
    block = std::move(batch->rows);
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(rows, 30000u);
  EXPECT_GE(elapsed.count(), 250);
  ASSERT_TRUE(client.CloseSession(*sid).ok());

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->rows_served, 30000u);
  EXPECT_GE(stats->rate_deferrals, 1u);
  EXPECT_EQ(stats->rows_served, server_->stats().rows_served);
}

TEST_F(NetTest, GetMetricsIsByteConsistentWithInProcessSnapshot) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port()).ok());
  // Drive real traffic first so the snapshot is non-trivial: histograms
  // have samples, the serve/net providers have non-zero gauges.
  CursorSpec spec;
  spec.relation = env_.schema.RelationIndex("R");
  spec.end_rank = 5000;
  StreamHash(client, spec);

  // One connection, synchronous requests: when the GetMetrics response is
  // on the wire, the server has fully accounted the traffic above, and the
  // request's own footprint landed before serialization (dispatch wait,
  // pre-counted frames_sent) or not at all (handle/write records). So the
  // wire bytes must equal a local snapshot taken right after — same
  // registry, same encoder, no tolerance.
  auto wire_bytes = client.MetricsSerialized();
  ASSERT_TRUE(wire_bytes.ok()) << wire_bytes.status().ToString();
  const std::string local_bytes =
      SerializeMetricsSnapshot(MetricRegistry::Snapshot());
  EXPECT_EQ(*wire_bytes, local_bytes);

  // And the parsed view carries the instrumentation this traffic produced.
  MetricsSnapshot snapshot;
  ASSERT_TRUE(ParseMetricsSnapshot(*wire_bytes, &snapshot).ok());
  bool saw_next_batch = false;
  for (const auto& h : snapshot.histograms) {
    if (h.name == "serve/next_batch_us") {
      saw_next_batch = true;
      EXPECT_GT(h.count, 0u);
      EXPECT_GE(h.Percentile(0.99), h.Percentile(0.50));
    }
  }
  EXPECT_TRUE(saw_next_batch);
  bool saw_frames_sent = false;
  for (const auto& g : snapshot.gauges) {
    if (g.name == "net/frames_sent") {
      saw_frames_sent = true;
      // The response carrying this snapshot is itself counted (pre-counted
      // before serialization, so a scrape after N frames reads N+1).
      EXPECT_EQ(g.value,
                static_cast<int64_t>(net_->stats().frames_sent));
    }
  }
  EXPECT_TRUE(saw_frames_sent);
}

TEST_F(NetTest, DeadlineRidesTheOpenFrame) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port()).ok());
  OpenSessionRequest request{"alpha"};
  request.deadline_ms = 30;
  auto sid = client.OpenSession(request);
  ASSERT_TRUE(sid.ok());
  CursorSpec spec;
  spec.relation = env_.schema.RelationIndex("R");
  auto cid = client.OpenCursor(*sid, spec);
  ASSERT_TRUE(cid.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  Status terminal = Status::OK();
  RowBlock block;
  for (int i = 0; i < 10000 && terminal.ok(); ++i) {
    auto batch = client.NextBatch(*sid, *cid, std::move(block));
    if (!batch.ok()) {
      terminal = batch.status();
      break;
    }
    if (batch->done) break;
    block = std::move(batch->rows);
  }
  // The remote deadline error decodes through the stable mapping; the
  // connection itself stays healthy.
  EXPECT_EQ(terminal.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(client.connected());
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(NetTest, SessionsAreConnectionScoped) {
  NetClient a;
  NetClient b;
  ASSERT_TRUE(a.Connect("127.0.0.1", port()).ok());
  ASSERT_TRUE(b.Connect("127.0.0.1", port()).ok());
  auto sid = a.OpenSession(OpenSessionRequest{"alpha"});
  ASSERT_TRUE(sid.ok());
  // Another connection can't address it — not closing, not streaming.
  EXPECT_EQ(b.CloseSession(*sid).code(), StatusCode::kNotFound);
  CursorSpec spec;
  spec.relation = env_.schema.RelationIndex("R");
  EXPECT_EQ(b.OpenCursor(*sid, spec).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(a.CloseSession(*sid).ok());
}

TEST_F(NetTest, DisconnectReapsTheConnectionsSessions) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port()).ok());
  auto sid = client.OpenSession(OpenSessionRequest{"alpha"});
  ASSERT_TRUE(sid.ok());
  CursorSpec spec;
  spec.relation = env_.schema.RelationIndex("R");
  ASSERT_TRUE(client.OpenCursor(*sid, spec).ok());
  client.Disconnect();  // abrupt: no goodbye frames
  // The IO loop notices the EOF and cancels + closes the orphaned session.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (net_->stats().sessions_reaped == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(net_->stats().sessions_reaped, 1u);
}

// ---- protocol hardening ---------------------------------------------------

TEST_F(NetTest, BadMagicKillsTheConnection) {
  RawConn conn(port());
  ASSERT_TRUE(conn.connected());
  std::string junk = Frame(Opcode::kPing, 1, "");
  junk[0] = 'X';  // corrupt the magic
  ASSERT_TRUE(conn.Send(junk));
  EXPECT_TRUE(conn.ServerClosed());
  EXPECT_GE(net_->stats().protocol_errors, 1u);
}

TEST_F(NetTest, BadVersionKillsTheConnection) {
  RawConn conn(port());
  ASSERT_TRUE(conn.connected());
  std::string frame = Frame(Opcode::kPing, 1, "");
  frame[4] = 9;  // unknown protocol version
  ASSERT_TRUE(conn.Send(frame));
  EXPECT_TRUE(conn.ServerClosed());
}

TEST_F(NetTest, OversizedPayloadKillsTheConnection) {
  RawConn conn(port());
  ASSERT_TRUE(conn.connected());
  FrameHeader header;
  header.opcode = static_cast<uint8_t>(Opcode::kPing);
  header.request_id = 1;
  header.payload_len = kMaxPayloadBytes + 1;
  std::string frame(kFrameHeaderBytes, '\0');
  EncodeFrameHeader(header, reinterpret_cast<uint8_t*>(&frame[0]));
  ASSERT_TRUE(conn.Send(frame));
  // The header alone is the protocol error: the server drops the
  // connection without waiting for (or buffering) the announced payload.
  EXPECT_TRUE(conn.ServerClosed());
}

TEST_F(NetTest, TornFramesReassembleAcrossArbitrarySplits) {
  // One frame dribbled in three writes with pauses, then two frames glued
  // into a single write: framing must be byte-oriented, not read-oriented.
  RawConn conn(port());
  ASSERT_TRUE(conn.connected());
  const std::string ping = Frame(Opcode::kPing, 7, "");
  ASSERT_TRUE(conn.Send(ping.substr(0, 5)));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(conn.Send(ping.substr(5, 11)));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(conn.Send(ping.substr(16)));
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(conn.ReadFrame(&header, &payload));
  EXPECT_EQ(header.request_id, 7u);

  ASSERT_TRUE(conn.Send(Frame(Opcode::kPing, 8, "") +
                        Frame(Opcode::kPing, 9, "")));
  ASSERT_TRUE(conn.ReadFrame(&header, &payload));
  EXPECT_EQ(header.request_id, 8u);
  ASSERT_TRUE(conn.ReadFrame(&header, &payload));
  EXPECT_EQ(header.request_id, 9u);
}

TEST_F(NetTest, UnknownOpcodeFailsTheRequestNotTheConnection) {
  RawConn conn(port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Send(Frame(static_cast<Opcode>(0x77), 3, "payload")));
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(conn.ReadFrame(&header, &payload));
  EXPECT_EQ(header.request_id, 3u);
  WireReader reader(payload);
  Status status;
  ASSERT_TRUE(ReadStatusEnvelope(&reader, &status).ok());
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
  // Framing stayed intact: the next request on the same connection works.
  ASSERT_TRUE(conn.Send(Frame(Opcode::kPing, 4, "")));
  ASSERT_TRUE(conn.ReadFrame(&header, &payload));
  EXPECT_EQ(header.request_id, 4u);
}

TEST_F(NetTest, MalformedBodyFailsTheRequestNotTheConnection) {
  RawConn conn(port());
  ASSERT_TRUE(conn.connected());
  // OpenCursor with a truncated body: the frame is well-formed, the
  // payload is garbage — kInvalidArgument, connection survives.
  ASSERT_TRUE(conn.Send(Frame(Opcode::kOpenCursor, 5, "abc")));
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(conn.ReadFrame(&header, &payload));
  WireReader reader(payload);
  Status status;
  ASSERT_TRUE(ReadStatusEnvelope(&reader, &status).ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(conn.Send(Frame(Opcode::kPing, 6, "")));
  ASSERT_TRUE(conn.ReadFrame(&header, &payload));
  EXPECT_EQ(header.request_id, 6u);
}

TEST_F(NetTest, MalformedFrameFuzzSweepNeverWedgesTheServer) {
  // Seeded sweep of hostile inputs: random bytes, valid headers with
  // random opcodes and random bodies, truncated frames with early
  // disconnects. The server may kill any individual connection; it must
  // survive them all and keep serving clean clients byte-identically.
  std::mt19937_64 rng(20260807);
  const auto random_bytes = [&](size_t n) {
    std::string s(n, '\0');
    for (char& c : s) c = static_cast<char>(rng() & 0xff);
    return s;
  };
  for (int i = 0; i < 60; ++i) {
    RawConn conn(port());
    ASSERT_TRUE(conn.connected()) << "iteration " << i;
    std::string bytes;
    switch (i % 3) {
      case 0:  // pure noise
        bytes = random_bytes(1 + (rng() % 64));
        break;
      case 1:  // valid frame shape, random opcode + body
        bytes = Frame(static_cast<Opcode>(rng() & 0xff), rng(),
                      random_bytes(rng() % 48));
        break;
      default:  // truncated valid frame: disconnect mid-payload
        bytes = Frame(Opcode::kOpenCursor, rng(), random_bytes(32));
        bytes.resize(kFrameHeaderBytes + (rng() % 16));
        break;
    }
    conn.Send(bytes);
    // Destructor closes the socket — often mid-frame, which is the point.
  }
  CursorSpec spec;
  spec.relation = env_.schema.RelationIndex("R");
  spec.end_rank = 10000;
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port()).ok());
  EXPECT_EQ(StreamHash(client, spec), InProcessHash(spec));
}

}  // namespace
}  // namespace hydra
