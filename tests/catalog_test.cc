// Unit tests for catalog/schema: attribute kinds, FK graph, topological order.

#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "workload/toy.h"

namespace hydra {
namespace {

Schema ChainSchema() {
  // a -> b -> c
  Schema s;
  Relation c("c", 10);
  c.AddPrimaryKey("c_pk");
  c.AddDataAttribute("cx", Interval(0, 5));
  const int rc = s.AddRelation(std::move(c));
  Relation b("b", 20);
  b.AddPrimaryKey("b_pk");
  b.AddForeignKey("c_fk", rc);
  b.AddDataAttribute("bx", Interval(0, 5));
  const int rb = s.AddRelation(std::move(b));
  Relation a("a", 30);
  a.AddPrimaryKey("a_pk");
  a.AddForeignKey("b_fk", rb);
  s.AddRelation(std::move(a));
  return s;
}

TEST(RelationTest, AttributeKindsAndLookup) {
  Relation r("r", 100);
  const int pk = r.AddPrimaryKey("pk");
  const int d = r.AddDataAttribute("x", Interval(0, 10));
  EXPECT_EQ(r.PrimaryKeyIndex(), pk);
  EXPECT_EQ(r.AttrIndex("x"), d);
  EXPECT_EQ(r.AttrIndex("missing"), -1);
  EXPECT_EQ(r.DataAttrIndices(), std::vector<int>{d});
  EXPECT_TRUE(r.ForeignKeyIndices().empty());
}

TEST(RelationTest, PkDomainTracksRowCount) {
  Relation r("r", 100);
  r.AddPrimaryKey("pk");
  EXPECT_EQ(r.attribute(r.PrimaryKeyIndex()).domain, Interval(0, 100));
  r.set_row_count(250);
  EXPECT_EQ(r.attribute(r.PrimaryKeyIndex()).domain, Interval(0, 250));
  EXPECT_EQ(r.row_count(), 250u);
}

TEST(SchemaTest, RelationLookup) {
  Schema s = ChainSchema();
  EXPECT_EQ(s.num_relations(), 3);
  EXPECT_EQ(s.RelationIndex("a"), 2);
  EXPECT_EQ(s.RelationIndex("zzz"), -1);
}

TEST(SchemaTest, DirectAndTransitiveDependencies) {
  Schema s = ChainSchema();
  const int a = s.RelationIndex("a");
  const int b = s.RelationIndex("b");
  const int c = s.RelationIndex("c");
  EXPECT_EQ(s.DirectDependencies(a), std::vector<int>{b});
  EXPECT_EQ(s.DirectDependencies(c), std::vector<int>{});
  EXPECT_EQ(s.TransitiveDependencies(a), (std::vector<int>{c, b}))
      << "sorted output";
  EXPECT_EQ(s.TransitiveDependencies(b), std::vector<int>{c});
}

TEST(SchemaTest, DependentsFirstOrder) {
  Schema s = ChainSchema();
  auto order = s.DependentsFirstOrder();
  ASSERT_TRUE(order.ok());
  // a (index 2) must come before b (1) before c (0).
  const std::vector<int>& o = *order;
  auto pos = [&](int r) {
    return std::find(o.begin(), o.end(), r) - o.begin();
  };
  EXPECT_LT(pos(2), pos(1));
  EXPECT_LT(pos(1), pos(0));
}

TEST(SchemaTest, DiamondDependencyIsDag) {
  // a -> b -> d, a -> c -> d: the DAG case Hydra supports beyond DataSynth.
  Schema s;
  Relation d("d", 5);
  d.AddPrimaryKey("d_pk");
  const int rd = s.AddRelation(std::move(d));
  Relation b("b", 5);
  b.AddPrimaryKey("b_pk");
  b.AddForeignKey("d_fk", rd);
  const int rb = s.AddRelation(std::move(b));
  Relation c("c", 5);
  c.AddPrimaryKey("c_pk");
  c.AddForeignKey("d_fk", rd);
  const int rc = s.AddRelation(std::move(c));
  Relation a("a", 5);
  a.AddPrimaryKey("a_pk");
  a.AddForeignKey("b_fk", rb);
  a.AddForeignKey("c_fk", rc);
  s.AddRelation(std::move(a));
  EXPECT_TRUE(s.IsDag());
  EXPECT_TRUE(s.Validate().ok());
  const auto deps = s.TransitiveDependencies(3);
  EXPECT_EQ(deps, (std::vector<int>{0, 1, 2}));
}

TEST(SchemaTest, CycleDetected) {
  Schema s;
  Relation a("a", 5);
  a.AddPrimaryKey("a_pk");
  a.AddForeignKey("b_fk", 1);
  s.AddRelation(std::move(a));
  Relation b("b", 5);
  b.AddPrimaryKey("b_pk");
  b.AddForeignKey("a_fk", 0);
  s.AddRelation(std::move(b));
  EXPECT_FALSE(s.IsDag());
  EXPECT_FALSE(s.Validate().ok());
  EXPECT_FALSE(s.DependentsFirstOrder().ok());
}

TEST(SchemaTest, ValidateRejectsDanglingFk) {
  Schema s;
  Relation a("a", 5);
  a.AddPrimaryKey("a_pk");
  a.AddForeignKey("bad_fk", 7);
  s.AddRelation(std::move(a));
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsFkToPkLessRelation) {
  Schema s;
  Relation nopk("nopk", 5);
  nopk.AddDataAttribute("x", Interval(0, 3));
  const int r = s.AddRelation(std::move(nopk));
  Relation a("a", 5);
  a.AddPrimaryKey("a_pk");
  a.AddForeignKey("fk", r);
  s.AddRelation(std::move(a));
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsSelfReference) {
  Schema s;
  Relation a("a", 5);
  a.AddPrimaryKey("a_pk");
  a.AddForeignKey("self", 0);
  s.AddRelation(std::move(a));
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SchemaTest, QualifiedName) {
  Schema s = ChainSchema();
  EXPECT_EQ(s.QualifiedName(AttrRef{s.RelationIndex("b"), 2}), "b.bx");
}

TEST(SchemaTest, ToySchemaValidates) {
  ToyEnvironment env = MakeToyEnvironment();
  EXPECT_TRUE(env.schema.Validate().ok());
  EXPECT_EQ(env.schema.num_relations(), 3);
  const int r = env.schema.RelationIndex("R");
  EXPECT_EQ(env.schema.DirectDependencies(r).size(), 2u);
}

TEST(AttrRefTest, OrderingAndEquality) {
  AttrRef a{0, 1}, b{0, 2}, c{1, 0};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a == (AttrRef{0, 1}));
  AttrRefHash h;
  EXPECT_NE(h(a), h(b));
}

}  // namespace
}  // namespace hydra
