// Tests for codd/metadata: capture, matching, scale modeling.

#include <gtest/gtest.h>

#include "codd/metadata.h"
#include "workload/datagen.h"
#include "workload/toy.h"

namespace hydra {
namespace {

TEST(CoddTest, CaptureReflectsData) {
  ToyEnvironment env = MakeToyEnvironment();
  env.schema.mutable_relation(env.schema.RelationIndex("R"))
      .set_row_count(500);
  auto db = GenerateClientDatabase(env.schema, DataGenOptions{.seed = 1});
  ASSERT_TRUE(db.ok());
  const DatabaseMetadata md = CaptureMetadata(*db);
  ASSERT_EQ(md.relations.size(), 3u);
  const int s = env.schema.RelationIndex("S");
  EXPECT_EQ(md.relations[s].name, "S");
  EXPECT_EQ(md.relations[s].row_count, 700u);
  const int a = env.schema.relation(s).AttrIndex("A");
  EXPECT_GE(md.relations[s].columns[a].min_value, 0);
  EXPECT_LT(md.relations[s].columns[a].max_value, 100);
  EXPECT_GT(md.relations[s].columns[a].num_distinct, 1u);
}

TEST(CoddTest, ApplyMetadataTransfersRowCountsAndDomains) {
  ToyEnvironment env = MakeToyEnvironment();
  auto db = GenerateClientDatabase(env.schema, DataGenOptions{.seed = 2});
  ASSERT_TRUE(db.ok());
  DatabaseMetadata md = CaptureMetadata(*db);
  md.relations[0].row_count = 4242;

  Schema vendor = env.schema;  // pristine copy
  ASSERT_TRUE(ApplyMetadata(md, &vendor).ok());
  EXPECT_EQ(vendor.relation(0).row_count(), 4242u);
  // Data-attribute domain tightened to observed min/max.
  const int s = env.schema.RelationIndex("S");
  const int a = env.schema.relation(s).AttrIndex("A");
  EXPECT_EQ(vendor.relation(s).attribute(a).domain.lo,
            md.relations[s].columns[a].min_value);
  EXPECT_EQ(vendor.relation(s).attribute(a).domain.hi,
            md.relations[s].columns[a].max_value + 1);
}

TEST(CoddTest, ApplyMetadataRejectsArityMismatch) {
  ToyEnvironment env = MakeToyEnvironment();
  DatabaseMetadata md;
  md.relations.resize(2);  // schema has 3
  Schema schema = env.schema;
  EXPECT_FALSE(ApplyMetadata(md, &schema).ok());
}

TEST(CoddTest, ScaleMetadataMultipliesRowCounts) {
  DatabaseMetadata md;
  md.relations.push_back(RelationMetadata{"x", 100, {}});
  const DatabaseMetadata scaled = ScaleMetadata(md, 1e7);
  EXPECT_EQ(scaled.relations[0].row_count, 1000000000u);
}

TEST(CoddTest, ScaleConstraintsToExabyteCardinalities) {
  ToyEnvironment env = MakeToyEnvironment();
  const auto scaled = ScaleConstraints(env.ccs, 1e7);
  EXPECT_EQ(scaled[0].cardinality, 800000000000u);  // 8e4 * 1e7
  // Labels and structure preserved.
  EXPECT_EQ(scaled[0].label, env.ccs[0].label);
  EXPECT_EQ(scaled.back().relations, env.ccs.back().relations);
}

TEST(CoddTest, EstimatedBytes) {
  ToyEnvironment env = MakeToyEnvironment();
  auto db = GenerateClientDatabase(env.schema, DataGenOptions{.seed = 4});
  ASSERT_TRUE(db.ok());
  const DatabaseMetadata md = CaptureMetadata(*db);
  EXPECT_EQ(md.EstimatedBytes(env.schema), db->TotalBytes());
}

}  // namespace
}  // namespace hydra
