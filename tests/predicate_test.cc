// Unit tests for query/predicate: DNF algebra, builders, restrictions.

#include <gtest/gtest.h>

#include "common/random.h"
#include "query/predicate.h"

namespace hydra {
namespace {

TEST(AtomTest, BuildersMatchComparisons) {
  // Domain values to probe.
  for (Value v = -3; v <= 12; ++v) {
    EXPECT_EQ(AtomLess(0, 5).Eval(v), v < 5) << v;
    EXPECT_EQ(AtomLessEqual(0, 5).Eval(v), v <= 5) << v;
    EXPECT_EQ(AtomGreater(0, 5).Eval(v), v > 5) << v;
    EXPECT_EQ(AtomGreaterEqual(0, 5).Eval(v), v >= 5) << v;
    EXPECT_EQ(AtomEqual(0, 5).Eval(v), v == 5) << v;
    EXPECT_EQ(AtomNotEqual(0, 5).Eval(v), v != 5) << v;
    EXPECT_EQ(AtomRange(0, 2, 8).Eval(v), v >= 2 && v < 8) << v;
    EXPECT_EQ(AtomIn(0, {1, 5, 9}).Eval(v), v == 1 || v == 5 || v == 9) << v;
  }
}

TEST(ConjunctTest, EvalIsConjunction) {
  Conjunct c;
  c.AddAtom(AtomGreaterEqual(0, 2));
  c.AddAtom(AtomLess(1, 10));
  EXPECT_TRUE(c.Eval({5, 3}));
  EXPECT_FALSE(c.Eval({1, 3}));
  EXPECT_FALSE(c.Eval({5, 12}));
}

TEST(ConjunctTest, EmptyConjunctIsTrue) {
  Conjunct c;
  EXPECT_TRUE(c.Eval({1, 2, 3}));
}

TEST(ConjunctTest, AddAtomIntersectsSameColumn) {
  Conjunct c;
  c.AddAtom(AtomGreaterEqual(0, 2));
  c.AddAtom(AtomLess(0, 8));
  ASSERT_EQ(c.atoms.size(), 1u);
  EXPECT_TRUE(c.Eval({5}));
  EXPECT_FALSE(c.Eval({9}));
  EXPECT_FALSE(c.Eval({1}));
}

TEST(ConjunctTest, RestrictToClipsToDomain) {
  Conjunct c;
  c.AddAtom(AtomGreaterEqual(1, 4));
  c.AddAtom(AtomLessEqual(1, 5));
  const IntervalSet r = c.RestrictTo(1, Interval(0, 10));
  EXPECT_EQ(r.Count(), 2);  // {4, 5}
  EXPECT_TRUE(r.Contains(4));
  EXPECT_TRUE(r.Contains(5));
  // Unmentioned dimension restricts to the full domain.
  const IntervalSet full = c.RestrictTo(0, Interval(0, 10));
  EXPECT_EQ(full.Count(), 10);
}

TEST(ConjunctTest, Mentions) {
  Conjunct c;
  c.AddAtom(AtomEqual(2, 1));
  EXPECT_TRUE(c.Mentions(2));
  EXPECT_FALSE(c.Mentions(0));
}

TEST(DnfTest, TrueAndFalse) {
  EXPECT_TRUE(DnfPredicate::True().IsTrue());
  EXPECT_TRUE(DnfPredicate::True().Eval({0}));
  EXPECT_TRUE(DnfPredicate::False().IsFalse());
  EXPECT_FALSE(DnfPredicate::False().Eval({0}));
}

TEST(DnfTest, EvalIsDisjunctionOfConjunctions) {
  // (c0 <= 20 ∧ c1 > 30) ∨ (c0 > 50) — the Section 4.2 example.
  Conjunct c1;
  c1.AddAtom(AtomLessEqual(0, 20));
  c1.AddAtom(AtomGreater(1, 30));
  Conjunct c2;
  c2.AddAtom(AtomGreater(0, 50));
  DnfPredicate p;
  p.AddConjunct(c1);
  p.AddConjunct(c2);
  EXPECT_TRUE(p.Eval({10, 40}));
  EXPECT_FALSE(p.Eval({10, 20}));
  EXPECT_TRUE(p.Eval({60, 0}));
  EXPECT_FALSE(p.Eval({30, 40}));
}

TEST(DnfTest, AndDistributes) {
  DnfPredicate a = PredicateOf(AtomLess(0, 10)).Or(
      PredicateOf(AtomGreaterEqual(0, 20)));
  DnfPredicate b = PredicateOf(AtomEqual(1, 3));
  DnfPredicate c = a.And(b);
  EXPECT_EQ(c.conjuncts().size(), 2u);
  EXPECT_TRUE(c.Eval({5, 3}));
  EXPECT_TRUE(c.Eval({25, 3}));
  EXPECT_FALSE(c.Eval({5, 4}));
  EXPECT_FALSE(c.Eval({15, 3}));
}

TEST(DnfTest, AndWithTrueIsIdentity) {
  DnfPredicate a = PredicateOf(AtomLess(0, 10));
  DnfPredicate c = a.And(DnfPredicate::True());
  EXPECT_TRUE(c.Eval({5}));
  EXPECT_FALSE(c.Eval({15}));
  EXPECT_EQ(c.conjuncts().size(), 1u);
}

TEST(DnfTest, AndWithFalseIsFalse) {
  DnfPredicate a = PredicateOf(AtomLess(0, 10));
  EXPECT_TRUE(a.And(DnfPredicate::False()).IsFalse());
}

TEST(DnfTest, OrConcatenates) {
  DnfPredicate a = PredicateOf(AtomLess(0, 3));
  DnfPredicate b = PredicateOf(AtomGreater(0, 8));
  DnfPredicate c = a.Or(b);
  EXPECT_EQ(c.conjuncts().size(), 2u);
  EXPECT_TRUE(c.Eval({1}));
  EXPECT_TRUE(c.Eval({9}));
  EXPECT_FALSE(c.Eval({5}));
}

TEST(DnfTest, RemapColumns) {
  DnfPredicate a = PredicateAllOf({AtomLess(0, 10), AtomEqual(1, 2)});
  DnfPredicate b = a.RemapColumns({3, 1});
  EXPECT_TRUE(b.Eval({0, 2, 0, 5}));
  EXPECT_FALSE(b.Eval({0, 2, 0, 15}));
  EXPECT_FALSE(b.Eval({0, 3, 0, 5}));
  EXPECT_EQ(b.Columns(), (std::vector<int>{1, 3}));
}

TEST(DnfTest, ColumnsDeduplicatedSorted) {
  Conjunct c1;
  c1.AddAtom(AtomLess(4, 1));
  c1.AddAtom(AtomLess(2, 1));
  Conjunct c2;
  c2.AddAtom(AtomLess(2, 5));
  DnfPredicate p;
  p.AddConjunct(c1);
  p.AddConjunct(c2);
  EXPECT_EQ(p.Columns(), (std::vector<int>{2, 4}));
}

TEST(DnfTest, ToStringIsReadable) {
  EXPECT_EQ(DnfPredicate::True().ToString(), "TRUE");
  EXPECT_EQ(DnfPredicate::False().ToString(), "FALSE");
  const std::string s = PredicateOf(AtomRange(0, 2, 8)).ToString();
  EXPECT_NE(s.find("c0"), std::string::npos);
}

// Property sweep: And/Or semantics equal pointwise boolean combination for
// random predicates over a small 2-D domain.
class DnfPropertyTest : public ::testing::TestWithParam<uint64_t> {};

DnfPredicate RandomPredicate(Rng& rng) {
  DnfPredicate p;
  const int conjuncts = static_cast<int>(rng.NextInt(1, 4));
  for (int i = 0; i < conjuncts; ++i) {
    Conjunct c;
    const int atoms = static_cast<int>(rng.NextInt(1, 4));
    for (int a = 0; a < atoms; ++a) {
      const int col = static_cast<int>(rng.NextInt(0, 2));
      const int64_t lo = rng.NextInt(0, 15);
      c.AddAtom(AtomRange(col, lo, rng.NextInt(lo + 1, 16)));
    }
    p.AddConjunct(std::move(c));
  }
  return p;
}

TEST_P(DnfPropertyTest, AndOrMatchPointwise) {
  Rng rng(GetParam() * 77 + 1);
  const DnfPredicate a = RandomPredicate(rng);
  const DnfPredicate b = RandomPredicate(rng);
  const DnfPredicate both = a.And(b);
  const DnfPredicate either = a.Or(b);
  for (Value x = 0; x < 16; ++x) {
    for (Value y = 0; y < 16; ++y) {
      const Row row = {x, y};
      EXPECT_EQ(both.Eval(row), a.Eval(row) && b.Eval(row));
      EXPECT_EQ(either.Eval(row), a.Eval(row) || b.Eval(row));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnfPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace hydra
