// Failpoint registry and spec-grammar tests (docs/robustness.md).

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "hydra/summary_io.h"
#include "serve/scheduler.h"
#include "serve/summary_store.h"
#include "storage/disk_table.h"

namespace hydra {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoint::DisarmAll(); }
};

Status HitPoint(Failpoint& fp) {
  HYDRA_FAILPOINT(fp);
  return Status::OK();
}

TEST_F(FailpointTest, ParseOff) {
  const StatusOr<FailpointSpec> spec = FailpointSpec::Parse("off");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->kind, FailpointSpec::Kind::kOff);
}

TEST_F(FailpointTest, ParseError) {
  const StatusOr<FailpointSpec> spec =
      FailpointSpec::Parse("error(IO_ERROR,times=2)");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->kind, FailpointSpec::Kind::kError);
  EXPECT_EQ(spec->code, StatusCode::kIoError);
  EXPECT_EQ(spec->times, 2);
  EXPECT_EQ(spec->probability, 1.0);
}

TEST_F(FailpointTest, ParseDelayWithProbability) {
  const StatusOr<FailpointSpec> spec =
      FailpointSpec::Parse("delay(7,p=0.25,seed=42)");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->kind, FailpointSpec::Kind::kDelay);
  EXPECT_EQ(spec->delay_ms, 7);
  EXPECT_DOUBLE_EQ(spec->probability, 0.25);
  EXPECT_EQ(spec->seed, 42u);
}

TEST_F(FailpointTest, ParseRejectsMalformed) {
  EXPECT_FALSE(FailpointSpec::Parse("").ok());
  EXPECT_FALSE(FailpointSpec::Parse("explode(1)").ok());
  EXPECT_FALSE(FailpointSpec::Parse("error(NOT_A_CODE)").ok());
  EXPECT_FALSE(FailpointSpec::Parse("error(IO_ERROR").ok());
  EXPECT_FALSE(FailpointSpec::Parse("delay(abc)").ok());
  EXPECT_FALSE(FailpointSpec::Parse("error(IO_ERROR,p=nope)").ok());
  EXPECT_FALSE(FailpointSpec::Parse("error(IO_ERROR,frobnicate=1)").ok());
}

TEST_F(FailpointTest, DisabledByDefaultAndZeroHits) {
  Failpoint fp("test/disabled");
  EXPECT_FALSE(fp.armed());
  EXPECT_TRUE(HitPoint(fp).ok());
  EXPECT_EQ(fp.hits(), 0u);  // HYDRA_FAILPOINT never reaches Fire()
  EXPECT_EQ(fp.triggered(), 0u);
}

TEST_F(FailpointTest, InjectsError) {
  Failpoint fp("test/error");
  ASSERT_TRUE(Failpoint::ArmFromString("test/error=error(IO_ERROR)").ok());
  EXPECT_TRUE(fp.armed());
  const Status status = HitPoint(fp);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(fp.hits(), 1u);
  EXPECT_EQ(fp.triggered(), 1u);
  fp.Disarm();
  EXPECT_FALSE(fp.armed());
  EXPECT_TRUE(HitPoint(fp).ok());
}

TEST_F(FailpointTest, TimesBudgetDisarmsItself) {
  Failpoint fp("test/times");
  ASSERT_TRUE(
      Failpoint::ArmFromString("test/times=error(UNAVAILABLE,times=2)").ok());
  EXPECT_EQ(HitPoint(fp).code(), StatusCode::kUnavailable);
  EXPECT_EQ(HitPoint(fp).code(), StatusCode::kUnavailable);
  // Budget exhausted: the point disarmed itself, restoring the fast path.
  EXPECT_FALSE(fp.armed());
  EXPECT_TRUE(HitPoint(fp).ok());
  EXPECT_EQ(fp.triggered(), 2u);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicPerSeed) {
  const auto pattern = [](uint64_t seed) {
    Failpoint fp("test/probability");
    FailpointSpec spec;
    spec.kind = FailpointSpec::Kind::kError;
    spec.code = StatusCode::kInternal;
    spec.probability = 0.5;
    spec.seed = seed;
    fp.Arm(spec);
    std::string fired;
    for (int i = 0; i < 64; ++i) fired += HitPoint(fp).ok() ? '.' : 'X';
    fp.Disarm();
    return fired;
  };
  const std::string a = pattern(7);
  EXPECT_EQ(a, pattern(7));  // same seed, same schedule
  EXPECT_NE(a, pattern(8));  // different seed, different schedule
  EXPECT_NE(a.find('X'), std::string::npos);  // p=0.5 over 64: both occur
  EXPECT_NE(a.find('.'), std::string::npos);
}

TEST_F(FailpointTest, DelayBlocksForConfiguredTime) {
  Failpoint fp("test/delay");
  ASSERT_TRUE(Failpoint::ArmFromString("test/delay=delay(20)").ok());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(HitPoint(fp).ok());  // delays never inject an error
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 20);
  EXPECT_EQ(fp.triggered(), 1u);
}

TEST_F(FailpointTest, ArmByNameBeforeRegistrationIsPending) {
  FailpointSpec spec;
  spec.kind = FailpointSpec::Kind::kError;
  spec.code = StatusCode::kUnavailable;
  Failpoint::ArmByName("test/late", spec);
  ASSERT_EQ(Failpoint::Find("test/late"), nullptr);
  Failpoint fp("test/late");  // registration applies the pending spec
  EXPECT_TRUE(fp.armed());
  EXPECT_EQ(HitPoint(fp).code(), StatusCode::kUnavailable);
}

TEST_F(FailpointTest, ArmFromStringRejectsMalformedSpecs) {
  EXPECT_FALSE(Failpoint::ArmFromString("no-equals-sign").ok());
  EXPECT_FALSE(Failpoint::ArmFromString("test/x=explode(1)").ok());
  EXPECT_FALSE(Failpoint::ArmFromString("=error(IO_ERROR)").ok());
}

TEST_F(FailpointTest, ArmFromStringArmsMultiplePoints) {
  Failpoint a("test/multi_a");
  Failpoint b("test/multi_b");
  ASSERT_TRUE(Failpoint::ArmFromString(
                  "test/multi_a=error(IO_ERROR);test/multi_b=delay(1)")
                  .ok());
  EXPECT_TRUE(a.armed());
  EXPECT_TRUE(b.armed());
  EXPECT_EQ(HitPoint(a).code(), StatusCode::kIoError);
}

TEST_F(FailpointTest, DisarmAllDisarmsEverything) {
  Failpoint fp("test/disarm_all");
  ASSERT_TRUE(Failpoint::ArmFromString("test/disarm_all=error(INTERNAL)").ok());
  EXPECT_TRUE(fp.armed());
  Failpoint::DisarmAll();
  EXPECT_FALSE(fp.armed());
  EXPECT_TRUE(HitPoint(fp).ok());
}

TEST_F(FailpointTest, LibraryPointsAreRegistered) {
  // The instrumented sites across the codebase self-register at static
  // init; spot-check the ones the chaos harness schedules against.
  // Registration runs when the defining archive member is linked, so pull
  // one symbol from each instrumented translation unit — exactly what any
  // binary that exercises these subsystems does implicitly.
  const ThreadPool pool(1);                      // thread_pool/dispatch
  const FairScheduler scheduler(1);              // serve/grant
  const SummaryStore store(1024);                // serve/summary_load
  EXPECT_FALSE(ReadSummary("/nonexistent").ok());      // summary_io/*
  EXPECT_FALSE(DiskTableBytes("/nonexistent").ok());   // disk_table/*
  const std::vector<std::string> names = Failpoint::ListRegistered();
  for (const char* expected :
       {"summary_io/read", "summary_io/write", "serve/summary_load",
        "serve/grant", "thread_pool/dispatch", "disk_table/open",
        "disk_table/open_shard", "disk_table/append", "disk_table/close"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing registered failpoint: " << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST_F(FailpointTest, StatusCodeRoundTrip) {
  StatusCode code = StatusCode::kOk;
  EXPECT_TRUE(StatusCodeFromName("UNAVAILABLE", &code));
  EXPECT_EQ(code, StatusCode::kUnavailable);
  EXPECT_TRUE(StatusCodeFromName("DEADLINE_EXCEEDED", &code));
  EXPECT_EQ(code, StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(StatusCodeFromName("CANCELLED", &code));
  EXPECT_EQ(code, StatusCode::kCancelled);
  EXPECT_FALSE(StatusCodeFromName("NOT_A_CODE", &code));
}

}  // namespace
}  // namespace hydra
