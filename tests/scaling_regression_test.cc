// Regression tests pinning the scaling properties the paper's evaluation
// depends on. These are the guardrails against re-introducing the two
// failure modes found during development: consistency-cell explosion in the
// formulator and grid-like block growth in Algorithm 2.

#include <gtest/gtest.h>

#include "common/random.h"
#include "datasynth/datasynth.h"
#include "hydra/regenerator.h"
#include "partition/region_partition.h"
#include "workload/job.h"
#include "workload/tpcds.h"
#include "workload/workload_runner.h"

namespace hydra {
namespace {

// Shared fixture: the full WLc client site is expensive to build; do it once.
class WlcRegressionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Schema schema = TpcdsSchema(1.0);
    auto queries =
        TpcdsWorkload(schema, TpcdsWorkloadKind::kComplex, 131, 424242);
    auto site = BuildClientSite(schema, DataGenOptions{.seed = 99},
                                std::move(queries));
    ASSERT_TRUE(site.ok());
    site_ = new ClientSite(std::move(*site));
  }
  static void TearDownTestSuite() {
    delete site_;
    site_ = nullptr;
  }
  static ClientSite* site_;
};

ClientSite* WlcRegressionTest::site_ = nullptr;

TEST_F(WlcRegressionTest, HydraLpStaysSmallOnComplexWorkload) {
  HydraRegenerator hydra(site_->schema);
  auto result = hydra.Regenerate(site_->ccs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Paper scale: item ~3700, catalog_sales ~1620 region variables. Guard an
  // order of magnitude above so legitimate noise cannot trip it.
  EXPECT_LT(result->MaxLpVariables(), 150'000u);
  for (const ViewReport& v : result->views) {
    EXPECT_LT(v.lp_constraints, 20'000u)
        << site_->schema.relation(v.relation).name()
        << ": consistency-cell explosion";
  }
}

TEST_F(WlcRegressionTest, GridExplodesByOrdersOfMagnitude) {
  DataSynthRegenerator ds(site_->schema);
  auto grid = ds.CountLpVariables(site_->ccs, 1ull << 62);
  ASSERT_TRUE(grid.ok());
  HydraRegenerator hydra(site_->schema);
  auto result = hydra.Regenerate(site_->ccs);
  ASSERT_TRUE(result.ok());
  // At least one view must show the paper's multi-decade asymmetry.
  double best_ratio = 0;
  for (const ViewReport& v : result->views) {
    if (v.lp_variables == 0) continue;
    best_ratio = std::max(
        best_ratio, double((*grid)[v.relation]) / double(v.lp_variables));
  }
  EXPECT_GT(best_ratio, 1e6);
}

TEST_F(WlcRegressionTest, DataSynthCrashesOnComplexWorkload) {
  DataSynthOptions options;
  options.simplex.max_variables = 2'000'000;
  DataSynthRegenerator ds(site_->schema, options);
  auto result = ds.Regenerate(site_->ccs);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(JobRegressionTest, ViewLpsBoundedAsInPaper) {
  Schema schema = JobSchema(1.0);
  auto queries = JobWorkload(schema, 260, 616161);
  auto site = BuildClientSite(schema, DataGenOptions{.seed = 99},
                              std::move(queries));
  ASSERT_TRUE(site.ok());
  HydraRegenerator hydra(site->schema);
  auto result = hydra.Regenerate(site->ccs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Paper Section 7.6: "typically in the few thousands, never exceeding a
  // hundred thousand".
  EXPECT_LT(result->MaxLpVariables(), 100'000u);
}

TEST(LazySplittingRegressionTest, BlocksStayFarBelowGrid) {
  // 20 narrow 4-dim probes: the naive variant would produce ~10^5 blocks.
  Rng rng(5);
  std::vector<DnfPredicate> constraints;
  for (int i = 0; i < 20; ++i) {
    Conjunct c;
    for (int d = 0; d < 4; ++d) {
      const int64_t lo = rng.NextInt(0, 900);
      c.AddAtom(AtomRange(d, lo, lo + rng.NextInt(10, 100)));
    }
    DnfPredicate p;
    p.AddConjunct(std::move(c));
    constraints.push_back(std::move(p));
  }
  const std::vector<Interval> domains(4, Interval(0, 1000));
  const RegionPartition partition =
      BuildRegionPartition(domains, constraints);
  uint64_t blocks = 0;
  for (const Region& r : partition.regions) blocks += r.blocks.size();
  EXPECT_LT(blocks, 5'000u);
  EXPECT_LT(partition.num_regions(), 300);

  // And it must still be semantically identical to the naive partition:
  // sampled points carry the same constraint signature under both.
  RegionPartitionOptions naive;
  naive.lazy_constraint_tracking = false;
  const RegionPartition eager =
      BuildRegionPartition(domains, constraints, naive);
  EXPECT_EQ(partition.num_regions(), eager.num_regions())
      << "label sets must agree";
  Rng probe(17);
  for (int i = 0; i < 200; ++i) {
    Row pt = {probe.NextInt(0, 1000), probe.NextInt(0, 1000),
              probe.NextInt(0, 1000), probe.NextInt(0, 1000)};
    const int lazy_region = partition.RegionOf(pt);
    const int eager_region = eager.RegionOf(pt);
    ASSERT_GE(lazy_region, 0);
    ASSERT_GE(eager_region, 0);
    EXPECT_EQ(partition.regions[lazy_region].label,
              eager.regions[eager_region].label);
  }
}

TEST(SummarySizeRegressionTest, IndependentOfWorkloadDataScale) {
  // Build the same workload at two data scales; the summary byte size must
  // track the WORKLOAD, not the data.
  uint64_t sizes[2] = {0, 0};
  int i = 0;
  for (double sf : {0.5, 8.0}) {
    Schema schema = TpcdsSchema(sf);
    auto queries =
        TpcdsWorkload(schema, TpcdsWorkloadKind::kSimple, 30, 777);
    auto site = BuildClientSite(schema, DataGenOptions{.seed = 3},
                                std::move(queries));
    ASSERT_TRUE(site.ok());
    HydraRegenerator hydra(site->schema);
    auto result = hydra.Regenerate(site->ccs);
    ASSERT_TRUE(result.ok());
    sizes[i++] = result->summary.ByteSize();
  }
  // 16x more data; allow 4x summary growth (plan shapes shift slightly).
  EXPECT_LT(sizes[1], sizes[0] * 4);
}

}  // namespace
}  // namespace hydra
