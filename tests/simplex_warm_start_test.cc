// Warm starts, Devex edge cases, LU recovery, and cross-configuration
// solution identity for the revised simplex.
//
// The identity tests pin the canonicalization contract: with
// SimplexOptions::canonicalize on, the reported solution is a function of
// the problem alone — byte-identical across pricing rules, warm vs cold
// starts, and refactorization schedules.

#include <cmath>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "hydra/regenerator.h"
#include "hydra/summary_io.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "workload/toy.h"

namespace hydra {
namespace {

std::string SummaryBytes(const DatabaseSummary& summary,
                         const std::string& tag) {
  const auto path =
      (std::filesystem::temp_directory_path() / ("hydra_ws_" + tag + ".bin"))
          .string();
  auto bytes = WriteSummary(summary, path);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::filesystem::remove(path);
  return data;
}

LpConstraint MakeConstraint(std::vector<int> vars, double rhs) {
  LpConstraint c;
  for (int v : vars) c.AddTerm(v, 1.0);
  c.rhs = rhs;
  return c;
}

// Random feasible 0/1 system with a known witness.
LpProblem RandomFeasible(int n, int m, double density, uint64_t seed,
                         int64_t value_cap = 1000) {
  Rng rng(seed);
  std::vector<int64_t> witness(n);
  for (int j = 0; j < n; ++j) witness[j] = rng.NextInt(0, value_cap);
  LpProblem p;
  p.AddVariables(n);
  for (int i = 0; i < m; ++i) {
    LpConstraint c;
    int64_t rhs = 0;
    for (int j = 0; j < n; ++j) {
      if (rng.NextBool(density)) {
        c.AddTerm(j, 1.0);
        rhs += witness[j];
      }
    }
    c.rhs = static_cast<double>(rhs);
    p.AddConstraint(std::move(c));
  }
  return p;
}

// ---- cross-configuration identity ----------------------------------------

TEST(SimplexCanonicalTest, SolutionsIdenticalAcrossPricingRules) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    LpProblem p = RandomFeasible(120, 25, 0.3, seed * 17 + 3);
    SimplexOptions devex;
    devex.canonicalize = true;
    devex.pricing = SimplexPricing::kDevex;
    SimplexOptions partial = devex;
    partial.pricing = SimplexPricing::kPartial;
    auto a = SolveFeasibility(p, devex);
    auto b = SolveFeasibility(p, partial);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->values, b->values) << "seed " << seed;
  }
}

TEST(SimplexCanonicalTest, SolutionsIdenticalAcrossRefactorSchedules) {
  LpProblem p = RandomFeasible(200, 40, 0.25, 99);
  SimplexOptions base;
  base.canonicalize = true;
  auto a = SolveFeasibility(p, base);
  SimplexOptions frequent = base;
  frequent.refactor_interval = 3;
  auto b = SolveFeasibility(p, frequent);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->values, b->values);
}

TEST(SimplexCanonicalTest, WarmAndColdStartsAgreeByteForByte) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    LpProblem p = RandomFeasible(90, 20, 0.35, seed * 31 + 11);
    SimplexOptions cold;
    cold.canonicalize = true;
    SimplexBasis exported;
    cold.export_basis = &exported;
    auto first = SolveFeasibility(p, cold);
    ASSERT_TRUE(first.ok());
    ASSERT_FALSE(exported.empty());

    // Re-solve the same problem seeded with its own final basis: the warm
    // start must be accepted and the solution must not move.
    SimplexOptions warm;
    warm.canonicalize = true;
    warm.warm_start = &exported;
    auto second = SolveFeasibility(p, warm);
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second->warm_started) << "seed " << seed;
    EXPECT_EQ(first->values, second->values) << "seed " << seed;
    // A basis that is already canonical-feasible skips phase I outright.
    EXPECT_EQ(second->phase1_iterations, 0) << "seed " << seed;
  }
}

// ---- warm-start fallback -------------------------------------------------

TEST(SimplexWarmStartTest, ShapeMismatchFallsBackToColdStart) {
  LpProblem p = RandomFeasible(50, 10, 0.4, 5);
  SimplexBasis bogus;
  bogus.num_rows = 7;  // wrong m
  bogus.num_vars = 50;
  bogus.basic.assign(7, -1);
  SimplexOptions options;
  options.warm_start = &bogus;
  auto sol = SolveFeasibility(p, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->warm_started);
  EXPECT_LT(p.MaxViolation(sol->values), 1e-5);
}

TEST(SimplexWarmStartTest, DuplicateColumnsInBasisFallBackToColdStart) {
  LpProblem p = RandomFeasible(50, 10, 0.4, 6);
  SimplexBasis bogus;
  bogus.num_rows = 10;
  bogus.num_vars = 50;
  bogus.basic.assign(10, 3);  // variable 3 claimed by every row
  SimplexOptions options;
  options.warm_start = &bogus;
  auto sol = SolveFeasibility(p, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->warm_started);
  EXPECT_LT(p.MaxViolation(sol->values), 1e-5);
}

TEST(SimplexWarmStartTest, SingularBasisFallsBackToColdStart) {
  // x0 appears in no constraint; a basis naming it is singular.
  LpProblem p;
  p.AddVariables(3);
  p.AddConstraint(MakeConstraint({1, 2}, 10));
  p.AddConstraint(MakeConstraint({1}, 4));
  SimplexBasis bogus;
  bogus.num_rows = 2;
  bogus.num_vars = 3;
  bogus.basic = {0, 1};  // column 0 is empty -> structurally singular
  SimplexOptions options;
  options.warm_start = &bogus;
  auto sol = SolveFeasibility(p, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->warm_started);
  EXPECT_LT(p.MaxViolation(sol->values), 1e-6);
}

TEST(SimplexWarmStartTest, InfeasibleBasisValuesFallBackToColdStart) {
  // The exported basis of one problem imported into a problem with a
  // different right-hand side that makes x_B negative: must cold-start and
  // still solve.
  LpProblem a;
  a.AddVariables(3);
  a.AddConstraint(MakeConstraint({0, 1}, 10));
  a.AddConstraint(MakeConstraint({1, 2}, 4));
  SimplexBasis exported;
  SimplexOptions first;
  first.export_basis = &exported;
  ASSERT_TRUE(SolveFeasibility(a, first).ok());

  LpProblem b;
  b.AddVariables(3);
  b.AddConstraint(MakeConstraint({0, 1}, 2));
  b.AddConstraint(MakeConstraint({1, 2}, 9));  // basis values go negative
  SimplexOptions second;
  second.warm_start = &exported;
  auto sol = SolveFeasibility(b, second);
  ASSERT_TRUE(sol.ok());
  EXPECT_LT(b.MaxViolation(sol->values), 1e-6);
}

TEST(SimplexWarmStartTest, CompatibleBasisAcceleratesSimilarProblem) {
  // Same structure, slightly different cardinalities: the warm start must
  // be accepted and cut phase I down to a handful of pivots.
  LpProblem a = RandomFeasible(400, 60, 0.2, 42);
  SimplexBasis exported;
  SimplexOptions first;
  first.export_basis = &exported;
  auto sol_a = SolveFeasibility(a, first);
  ASSERT_TRUE(sol_a.ok());

  // Perturb b by re-deriving it from a slightly different witness on the
  // same sparsity pattern.
  LpProblem b = RandomFeasible(400, 60, 0.2, 42, /*value_cap=*/1001);
  SimplexOptions warm;
  warm.warm_start = &exported;
  auto sol_b = SolveFeasibility(b, warm);
  ASSERT_TRUE(sol_b.ok());
  EXPECT_LT(b.MaxViolation(sol_b->values), 1e-5);
}

// ---- Devex degenerate edge cases -----------------------------------------

TEST(SimplexDevexTest, DegenerateZeroRhsChainTerminates) {
  // Fully degenerate instance (every pivot ratio 0) under Devex pricing:
  // the Bland fallback must still engage and terminate.
  LpProblem p;
  const int n = 60;
  p.AddVariables(n);
  for (int i = 0; i + 1 < n; ++i) {
    p.AddConstraint(MakeConstraint({i, i + 1}, 0));
  }
  SimplexOptions options;
  options.pricing = SimplexPricing::kDevex;
  auto sol = SolveFeasibility(p, options);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  for (double v : sol->values) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(SimplexDevexTest, HeavyDuplicationStaysFeasible) {
  LpProblem p;
  p.AddVariables(8);
  for (int rep = 0; rep < 16; ++rep) {
    p.AddConstraint(MakeConstraint({0, 1, 2}, 30));
    p.AddConstraint(MakeConstraint({2, 3, 4}, 50));
    p.AddConstraint(MakeConstraint({4, 5, 6}, 20));
  }
  p.AddConstraint(MakeConstraint({0, 1, 2, 3, 4, 5, 6, 7}, 120));
  for (auto pricing : {SimplexPricing::kDevex, SimplexPricing::kPartial}) {
    SimplexOptions options;
    options.pricing = pricing;
    auto sol = SolveFeasibility(p, options);
    ASSERT_TRUE(sol.ok()) << sol.status().ToString();
    EXPECT_LT(p.MaxViolation(sol->values), 1e-6);
  }
}

// ---- LU refactorization recovery -----------------------------------------

TEST(SimplexLuTest, TinyPivotsSurviveForrestTomlinRejection) {
  // Mix huge and tiny coefficients so some column replacements produce
  // near-singular diagonals: Forrest-Tomlin updates get refused and the
  // solver must recover through refactorization.
  Rng rng(7);
  LpProblem p;
  const int n = 80;
  const int m = 30;
  p.AddVariables(n);
  std::vector<int64_t> witness(n);
  for (int j = 0; j < n; ++j) witness[j] = rng.NextInt(0, 100);
  for (int i = 0; i < m; ++i) {
    LpConstraint c;
    double rhs = 0;
    for (int j = 0; j < n; ++j) {
      if (rng.NextBool(0.3)) {
        const double coeff = rng.NextBool(0.2) ? 1e-7 : 1.0;
        c.AddTerm(j, coeff);
        rhs += coeff * witness[j];
      }
    }
    c.rhs = rhs;
    p.AddConstraint(std::move(c));
  }
  SimplexOptions options;
  options.refactor_interval = 5;
  auto sol = SolveFeasibility(p, options);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_LT(p.MaxViolation(sol->values), 1e-4);
}

// ---- end-to-end: hydra pipeline determinism -------------------------------

TEST(HydraWarmStartTest, SummariesIdenticalWarmVsColdWithCanonicalSolver) {
  ToyEnvironment env = MakeToyEnvironment();
  HydraOptions warm;
  warm.simplex.canonicalize = true;
  warm.warm_start = true;
  HydraOptions cold = warm;
  cold.warm_start = false;
  auto a = HydraRegenerator(env.schema, warm).Regenerate(env.ccs);
  auto b = HydraRegenerator(env.schema, cold).Regenerate(env.ccs);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(SummaryBytes(a->summary, "warm"), SummaryBytes(b->summary, "cold"));
}

TEST(HydraWarmStartTest, SummariesIdenticalAcrossPricingWithCanonicalSolver) {
  ToyEnvironment env = MakeToyEnvironment();
  HydraOptions devex;
  devex.simplex.canonicalize = true;
  devex.simplex.pricing = SimplexPricing::kDevex;
  HydraOptions partial = devex;
  partial.simplex.pricing = SimplexPricing::kPartial;
  auto a = HydraRegenerator(env.schema, devex).Regenerate(env.ccs);
  auto b = HydraRegenerator(env.schema, partial).Regenerate(env.ccs);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(SummaryBytes(a->summary, "devex"),
            SummaryBytes(b->summary, "partial"));
}

}  // namespace
}  // namespace hydra
