// Unit + property tests for the LP layer: model, phase-I simplex,
// integerization.

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "lp/integerize.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace hydra {
namespace {

LpConstraint MakeConstraint(std::vector<int> vars, double rhs,
                            const std::string& label = "") {
  LpConstraint c;
  for (int v : vars) c.AddTerm(v, 1.0);
  c.rhs = rhs;
  c.label = label;
  return c;
}

TEST(LpModelTest, NonZerosAndViolation) {
  LpProblem p;
  p.AddVariables(3);
  p.AddConstraint(MakeConstraint({0, 1}, 5));
  p.AddConstraint(MakeConstraint({1, 2}, 7));
  EXPECT_EQ(p.NumNonZeros(), 4u);
  EXPECT_DOUBLE_EQ(p.MaxViolation({2, 3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(p.MaxViolation({2, 2, 4}), 1.0);
}

TEST(SimplexTest, PaperRegionExample) {
  // Figure 4b: y1+y2 = 1000, y2+y3 = 2000, y1+y2+y3+y4 = 8000.
  LpProblem p;
  p.AddVariables(4);
  p.AddConstraint(MakeConstraint({0, 1}, 1000));
  p.AddConstraint(MakeConstraint({1, 2}, 2000));
  p.AddConstraint(MakeConstraint({0, 1, 2, 3}, 8000));
  auto sol = SolveFeasibility(p);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_LT(p.MaxViolation(sol->values), 1e-6);
  for (double v : sol->values) EXPECT_GE(v, -1e-9);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x0 = 5 and x0 = 7 cannot both hold.
  LpProblem p;
  p.AddVariables(1);
  p.AddConstraint(MakeConstraint({0}, 5));
  p.AddConstraint(MakeConstraint({0}, 7));
  auto sol = SolveFeasibility(p);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SimplexTest, SubsetExceedingTotalInfeasible) {
  // x0 + x1 = 10 but x0 = 20 with all x >= 0.
  LpProblem p;
  p.AddVariables(2);
  p.AddConstraint(MakeConstraint({0, 1}, 10));
  p.AddConstraint(MakeConstraint({0}, 20));
  EXPECT_FALSE(SolveFeasibility(p).ok());
}

TEST(SimplexTest, VariableBudgetEnforced) {
  LpProblem p;
  p.AddVariables(100);
  p.AddConstraint(MakeConstraint({0}, 1));
  SimplexOptions options;
  options.max_variables = 50;
  auto sol = SolveFeasibility(p, options);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kResourceExhausted);
}

TEST(SimplexTest, EmptyProblemTriviallyFeasible) {
  LpProblem p;
  p.AddVariables(3);
  auto sol = SolveFeasibility(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->values, (std::vector<double>{0, 0, 0}));
}

TEST(SimplexTest, ZeroRhsFeasibleAtOrigin) {
  LpProblem p;
  p.AddVariables(2);
  p.AddConstraint(MakeConstraint({0, 1}, 0));
  auto sol = SolveFeasibility(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_LT(p.MaxViolation(sol->values), 1e-9);
}

TEST(SimplexTest, NegativeCoefficientsAndRhs) {
  // x0 - x1 = -3, x0 + x1 = 7  =>  x0 = 2, x1 = 5.
  LpProblem p;
  p.AddVariables(2);
  LpConstraint c1;
  c1.AddTerm(0, 1.0);
  c1.AddTerm(1, -1.0);
  c1.rhs = -3;
  p.AddConstraint(std::move(c1));
  p.AddConstraint(MakeConstraint({0, 1}, 7));
  auto sol = SolveFeasibility(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->values[0], 2.0, 1e-6);
  EXPECT_NEAR(sol->values[1], 5.0, 1e-6);
}

TEST(SimplexTest, LargeCardinalities) {
  // Billion-scale right-hand sides (Big Data row counts).
  LpProblem p;
  p.AddVariables(3);
  p.AddConstraint(MakeConstraint({0, 1}, 1.5e9));
  p.AddConstraint(MakeConstraint({1, 2}, 2.5e9));
  p.AddConstraint(MakeConstraint({0, 1, 2}, 3.5e9));
  auto sol = SolveFeasibility(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_LT(p.MaxViolation(sol->values) / 3.5e9, 1e-9);
}

TEST(SimplexTest, DegenerateNestedConstraints) {
  // Laminar family with several zero-valued differences; exercises the
  // anti-cycling path.
  LpProblem p;
  p.AddVariables(6);
  p.AddConstraint(MakeConstraint({0}, 100));
  p.AddConstraint(MakeConstraint({0, 1}, 100));
  p.AddConstraint(MakeConstraint({0, 1, 2}, 100));
  p.AddConstraint(MakeConstraint({0, 1, 2, 3, 4, 5}, 100));
  auto sol = SolveFeasibility(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_LT(p.MaxViolation(sol->values), 1e-6);
}

// Property sweep: random 0/1 systems constructed from a known non-negative
// integer witness are always solved, and the solution satisfies the system.
class SimplexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplexPropertyTest, SolvesSystemsWithKnownWitness) {
  Rng rng(GetParam() * 1337 + 17);
  const int n = static_cast<int>(rng.NextInt(3, 40));
  const int m = static_cast<int>(rng.NextInt(1, 15));
  std::vector<int64_t> witness(n);
  for (int j = 0; j < n; ++j) witness[j] = rng.NextInt(0, 1000);

  LpProblem p;
  p.AddVariables(n);
  for (int i = 0; i < m; ++i) {
    LpConstraint c;
    int64_t rhs = 0;
    for (int j = 0; j < n; ++j) {
      if (rng.NextBool(0.4)) {
        c.AddTerm(j, 1.0);
        rhs += witness[j];
      }
    }
    c.rhs = static_cast<double>(rhs);
    p.AddConstraint(std::move(c));
  }
  auto sol = SolveFeasibility(p);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_LT(p.MaxViolation(sol->values), 1e-5);
  for (double v : sol->values) EXPECT_GE(v, -1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexPropertyTest,
                         ::testing::Range<uint64_t>(0, 30));

// --- Integerization --------------------------------------------------------

TEST(IntegerizeTest, ExactIntegralSolutionUntouched) {
  LpProblem p;
  p.AddVariables(2);
  p.AddConstraint(MakeConstraint({0, 1}, 10));
  const auto result = IntegerizeSolution(p, {4.0, 6.0});
  EXPECT_EQ(result.values, (std::vector<int64_t>{4, 6}));
  EXPECT_EQ(result.max_absolute_violation, 0);
}

TEST(IntegerizeTest, RepairsFractionalSplit) {
  LpProblem p;
  p.AddVariables(2);
  p.AddConstraint(MakeConstraint({0, 1}, 10));
  const auto result = IntegerizeSolution(p, {4.5, 5.5});
  EXPECT_EQ(result.values[0] + result.values[1], 10);
  EXPECT_EQ(result.max_absolute_violation, 0);
}

TEST(IntegerizeTest, ClampsNegativeNoise) {
  LpProblem p;
  p.AddVariables(2);
  p.AddConstraint(MakeConstraint({0, 1}, 5));
  const auto result = IntegerizeSolution(p, {-1e-9, 5.0});
  EXPECT_GE(result.values[0], 0);
  EXPECT_EQ(result.values[0] + result.values[1], 5);
}

TEST(IntegerizeTest, PrefersSingletonColumns) {
  // x0 appears in both constraints; x1 and x2 are singletons. The repair of
  // constraint 1 must not break constraint 0.
  LpProblem p;
  p.AddVariables(3);
  p.AddConstraint(MakeConstraint({0, 1}, 10, "c0"));
  p.AddConstraint(MakeConstraint({0, 2}, 20, "c1"));
  const auto result = IntegerizeSolution(p, {3.4, 6.6, 16.6});
  EXPECT_EQ(result.max_absolute_violation, 0)
      << "values: " << result.values[0] << "," << result.values[1] << ","
      << result.values[2];
}

// Property sweep: integerizing a slightly-perturbed fractional solution of a
// random feasible system keeps violations small (and usually zero).
class IntegerizePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntegerizePropertyTest, RepairKeepsViolationsSmall) {
  Rng rng(GetParam() * 31 + 5);
  const int n = static_cast<int>(rng.NextInt(4, 30));
  std::vector<int64_t> witness(n);
  for (int j = 0; j < n; ++j) witness[j] = rng.NextInt(0, 500);
  LpProblem p;
  p.AddVariables(n);
  const int m = static_cast<int>(rng.NextInt(1, 8));
  for (int i = 0; i < m; ++i) {
    LpConstraint c;
    int64_t rhs = 0;
    for (int j = 0; j < n; ++j) {
      if (rng.NextBool(0.5)) {
        c.AddTerm(j, 1.0);
        rhs += witness[j];
      }
    }
    c.rhs = static_cast<double>(rhs);
    p.AddConstraint(std::move(c));
  }
  auto sol = SolveFeasibility(p);
  ASSERT_TRUE(sol.ok());
  const auto result = IntegerizeSolution(p, sol->values);
  // Simplex vertices of these systems are integral in the vast majority of
  // cases; the repair must keep any residual small relative to the rhs.
  EXPECT_LE(result.max_relative_violation, 0.02)
      << "abs=" << result.max_absolute_violation;
  for (int64_t v : result.values) EXPECT_GE(v, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegerizePropertyTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace hydra
