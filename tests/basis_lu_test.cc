// Unit tests for the Markowitz sparse LU + Forrest-Tomlin update kernel:
// FTRAN/BTRAN checked against dense Gaussian elimination on random sparse
// bases, column-replacement updates re-checked after every pivot, and
// singular/unstable inputs refused without corrupting the prior state.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "lp/basis_lu.h"

namespace hydra {
namespace {

struct DenseMatrix {
  int m = 0;
  std::vector<double> a;  // row-major
  double& At(int i, int j) { return a[i * m + j]; }
  double At(int i, int j) const { return a[i * m + j]; }
};

// x solving A x = b by dense partial-pivoting elimination (test oracle).
std::vector<double> DenseSolve(DenseMatrix A, std::vector<double> b) {
  const int m = A.m;
  std::vector<int> perm(m);
  for (int i = 0; i < m; ++i) perm[i] = i;
  for (int k = 0; k < m; ++k) {
    int p = k;
    for (int i = k + 1; i < m; ++i) {
      if (std::fabs(A.At(perm[i], k)) > std::fabs(A.At(perm[p], k))) p = i;
    }
    std::swap(perm[k], perm[p]);
    const double piv = A.At(perm[k], k);
    for (int i = k + 1; i < m; ++i) {
      const double mult = A.At(perm[i], k) / piv;
      if (mult == 0.0) continue;
      for (int j = k; j < m; ++j) A.At(perm[i], j) -= mult * A.At(perm[k], j);
      b[perm[i]] -= mult * b[perm[k]];
    }
  }
  std::vector<double> x(m);
  for (int k = m - 1; k >= 0; --k) {
    double val = b[perm[k]];
    for (int j = k + 1; j < m; ++j) val -= A.At(perm[k], j) * x[j];
    x[k] = val / A.At(perm[k], k);
  }
  return x;
}

struct SparseCols {
  std::vector<std::vector<int>> rows;
  std::vector<std::vector<double>> vals;

  std::vector<BasisLu::Column> Columns() const {
    std::vector<BasisLu::Column> cols(rows.size());
    for (size_t j = 0; j < rows.size(); ++j) {
      cols[j] = {rows[j].data(), vals[j].data(),
                 static_cast<int>(rows[j].size())};
    }
    return cols;
  }

  DenseMatrix Dense() const {
    DenseMatrix d;
    d.m = static_cast<int>(rows.size());
    d.a.assign(static_cast<size_t>(d.m) * d.m, 0.0);
    for (int j = 0; j < d.m; ++j) {
      for (size_t t = 0; t < rows[j].size(); ++t) {
        d.At(rows[j][t], j) += vals[j][t];
      }
    }
    return d;
  }
};

// Random nonsingular sparse matrix: a permuted unit diagonal (guaranteeing
// nonsingularity) plus random off-diagonal entries.
SparseCols RandomBasis(int m, double density, Rng& rng) {
  SparseCols s;
  s.rows.resize(m);
  s.vals.resize(m);
  std::vector<int> perm(m);
  for (int i = 0; i < m; ++i) perm[i] = i;
  for (int i = m - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.NextInt(0, i + 1)]);
  }
  for (int j = 0; j < m; ++j) {
    s.rows[j].push_back(perm[j]);
    s.vals[j].push_back(1.0 + rng.NextInt(0, 4));
    for (int i = 0; i < m; ++i) {
      if (i != perm[j] && rng.NextBool(density)) {
        s.rows[j].push_back(i);
        s.vals[j].push_back(rng.NextBool(0.5) ? 1.0 : -1.0);
      }
    }
  }
  return s;
}

void ExpectFtranMatchesDense(const BasisLu& lu, const SparseCols& s,
                             double tol = 1e-8) {
  const DenseMatrix dense = s.Dense();
  const int m = dense.m;
  Rng rng(99);
  std::vector<double> b(m);
  for (int i = 0; i < m; ++i) b[i] = rng.NextInt(-50, 51);
  // FTRAN solves B w = b with w indexed by pivot row; translate to
  // position space via row_of_position to compare with the dense solve.
  std::vector<double> w = b;
  lu.Ftran(w);
  const std::vector<double> x = DenseSolve(dense, b);
  for (int p = 0; p < m; ++p) {
    EXPECT_NEAR(w[lu.row_of_position()[p]], x[p], tol) << "position " << p;
  }
}

void ExpectBtranMatchesDense(const BasisLu& lu, const SparseCols& s,
                             double tol = 1e-8) {
  // BTRAN solves B^T y = c where c is given in position space through the
  // row_of_position mapping; check y^T B = c^T directly.
  const DenseMatrix dense = s.Dense();
  const int m = dense.m;
  Rng rng(7);
  std::vector<double> c(m);
  for (int i = 0; i < m; ++i) c[i] = rng.NextInt(-20, 21);
  std::vector<double> y(m, 0.0);
  for (int p = 0; p < m; ++p) y[lu.row_of_position()[p]] = c[p];
  lu.Btran(y);
  for (int p = 0; p < m; ++p) {
    double dot = 0;
    for (int i = 0; i < m; ++i) dot += y[i] * dense.At(i, p);
    EXPECT_NEAR(dot, c[p], tol) << "column " << p;
  }
}

TEST(BasisLuTest, IdentityFactors) {
  SparseCols s;
  s.rows = {{0}, {1}, {2}};
  s.vals = {{1.0}, {1.0}, {1.0}};
  BasisLu lu;
  ASSERT_TRUE(lu.Factorize(3, s.Columns()));
  std::vector<double> v = {3.0, -1.0, 2.0};
  lu.Ftran(v);
  EXPECT_NEAR(v[0], 3.0, 1e-12);
  EXPECT_NEAR(v[1], -1.0, 1e-12);
  EXPECT_NEAR(v[2], 2.0, 1e-12);
}

TEST(BasisLuTest, DuplicateEntriesAreSummed) {
  SparseCols s;
  s.rows = {{0, 0}, {1}};
  s.vals = {{1.0, 1.0}, {3.0}};  // column 0 is (2, 0)
  BasisLu lu;
  ASSERT_TRUE(lu.Factorize(2, s.Columns()));
  ExpectFtranMatchesDense(lu, s);
}

TEST(BasisLuTest, RandomBasesMatchDenseSolve) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed * 131 + 7);
    const int m = static_cast<int>(rng.NextInt(1, 60));
    SparseCols s = RandomBasis(m, 0.08, rng);
    BasisLu lu;
    ASSERT_TRUE(lu.Factorize(m, s.Columns())) << "seed " << seed;
    ExpectFtranMatchesDense(lu, s);
    ExpectBtranMatchesDense(lu, s);
  }
}

TEST(BasisLuTest, SingularColumnRefused) {
  SparseCols s;
  s.rows = {{0, 1}, {0, 1}, {2}};
  s.vals = {{1.0, 1.0}, {2.0, 2.0}, {1.0}};  // col1 = 2 * col0
  BasisLu lu;
  EXPECT_FALSE(lu.Factorize(3, s.Columns()));
}

TEST(BasisLuTest, EmptyColumnRefused) {
  SparseCols s;
  s.rows = {{0}, {}};
  s.vals = {{1.0}, {}};
  BasisLu lu;
  EXPECT_FALSE(lu.Factorize(2, s.Columns()));
}

TEST(BasisLuTest, FailedFactorizeKeepsPriorFactorization) {
  SparseCols good;
  good.rows = {{0}, {1}};
  good.vals = {{2.0}, {5.0}};
  BasisLu lu;
  ASSERT_TRUE(lu.Factorize(2, good.Columns()));
  SparseCols bad;
  bad.rows = {{0}, {0}};
  bad.vals = {{1.0}, {1.0}};
  EXPECT_FALSE(lu.Factorize(2, bad.Columns()));
  ExpectFtranMatchesDense(lu, good);  // old factors still answer queries
}

// Replace random columns one at a time with Forrest-Tomlin updates and
// re-verify FTRAN/BTRAN against the dense oracle after every replacement.
TEST(BasisLuTest, ForrestTomlinUpdatesStayExact) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed * 977 + 3);
    const int m = static_cast<int>(rng.NextInt(2, 40));
    SparseCols s = RandomBasis(m, 0.1, rng);
    BasisLu lu;
    ASSERT_TRUE(lu.Factorize(m, s.Columns())) << "seed " << seed;
    for (int upd = 0; upd < 12; ++upd) {
      // Propose a replacement column; retry until the pivot entry for the
      // chosen leaving position is usable.
      const int pos = static_cast<int>(rng.NextInt(0, m));
      const int leaving_row = lu.row_of_position()[pos];
      std::vector<int> rows;
      std::vector<double> vals;
      for (int i = 0; i < m; ++i) {
        if (rng.NextBool(0.2)) {
          rows.push_back(i);
          vals.push_back(1.0 + rng.NextInt(0, 3));
        }
      }
      rows.push_back(leaving_row);
      vals.push_back(1.0 + rng.NextInt(0, 3));
      std::vector<double> w(m, 0.0);
      for (size_t t = 0; t < rows.size(); ++t) w[rows[t]] += vals[t];
      BasisLu::Spike spike;
      lu.Ftran(w, &spike);
      if (std::fabs(w[leaving_row]) < 1e-6) continue;  // would be singular
      ASSERT_TRUE(lu.Update(leaving_row, spike)) << "seed " << seed;
      // Mirror the replacement in the reference copy.
      s.rows[pos] = rows;
      s.vals[pos] = vals;
      ExpectFtranMatchesDense(lu, s, 1e-7);
      ExpectBtranMatchesDense(lu, s, 1e-7);
    }
  }
}

TEST(BasisLuTest, UnstableUpdateRefusedAndStateIntact) {
  SparseCols s;
  s.rows = {{0}, {1}};
  s.vals = {{1.0}, {1.0}};
  BasisLu lu;
  ASSERT_TRUE(lu.Factorize(2, s.Columns()));
  // Replacement column nearly parallel to the other basis column: the new
  // diagonal is ~1e-14, far below the stability tolerance.
  std::vector<int> rows = {0, 1};
  std::vector<double> vals = {1.0, 1e-14};
  std::vector<double> w(2, 0.0);
  w[0] = 1.0;
  w[1] = 1e-14;
  BasisLu::Spike spike;
  lu.Ftran(w, &spike);
  EXPECT_FALSE(lu.Update(lu.row_of_position()[1], spike));
  ExpectFtranMatchesDense(lu, s);  // factorization unharmed
}

}  // namespace
}  // namespace hydra
