// Tests for the dynamic-regeneration service (src/serve/): summary-cache
// LRU/pinning behavior, fair-scheduler backpressure, and — the serving
// contract — byte-identical per-client streams across every
// {threads, clients, cache_bytes, batch_rows} configuration, including
// cursors that survive LRU eviction and reload of their summary.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "hydra/regenerator.h"
#include "hydra/summary_io.h"
#include "hydra/tuple_generator.h"
#include "serve/scheduler.h"
#include "serve/serve_api.h"
#include "serve/server.h"
#include "serve/summary_store.h"
#include "workload/toy.h"

namespace hydra {
namespace {

constexpr uint64_t kFnvSeed = 14695981039346656037ull;

uint64_t HashValues(uint64_t h, const Value* v, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    uint64_t x = static_cast<uint64_t>(v[i]);
    for (int b = 0; b < 8; ++b) {
      h ^= (x >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

uint64_t HashString(uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Hashes a block's logical rows in row-major order: layout-independent, so
// the serving contract is over the row stream, not the storage layout.
uint64_t HashBlock(uint64_t h, const RowBlock& block) {
  Row row(block.num_columns());
  for (int64_t r = 0; r < block.num_rows(); ++r) {
    block.CopyRowTo(r, row.data());
    h = HashValues(h, row.data(), block.num_columns());
  }
  return h;
}

// Appends a block's rows to `out` in row-major order.
void AppendRows(const RowBlock& block, std::vector<Value>* out) {
  for (int64_t r = 0; r < block.num_rows(); ++r) {
    const size_t base = out->size();
    out->resize(base + block.num_columns());
    block.CopyRowTo(r, out->data() + base);
  }
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hydra_serve_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    env_ = MakeToyEnvironment();
    HydraRegenerator hydra(env_.schema);
    auto result = hydra.Regenerate(env_.ccs);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    summary_ = std::move(result->summary);
    path_ = (dir_ / "toy.summary").string();
    ASSERT_TRUE(WriteSummary(summary_, path_).ok());
    summary_bytes_ = summary_.ByteSize();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Registers both toy-backed summary ids on a freshly built server.
  void RegisterBoth(RegenServer& server) {
    ASSERT_TRUE(server.RegisterSummary("alpha", path_).ok());
    ASSERT_TRUE(server.RegisterSummary("beta", path_).ok());
  }

  std::filesystem::path dir_;
  std::string path_;
  ToyEnvironment env_;
  DatabaseSummary summary_;
  uint64_t summary_bytes_ = 0;
};

// ---- deterministic client workload ---------------------------------------
//
// 16 fixed work items; item c's result depends only on c (never on how many
// clients run concurrently), so its hash must match across every server
// configuration. Kinds rotate: filtered+projected range scan, point-lookup
// burst, full engine pipeline.

constexpr int kNumItems = 16;

uint64_t RunItem(RegenServer& server, const ToyEnvironment& env, int c,
                 std::string* error) {
  const auto fail = [&](const Status& s) {
    *error = "item " + std::to_string(c) + ": " + s.ToString();
    return uint64_t{0};
  };
  auto sid = server.OpenSession(
      OpenSessionRequest{c % 2 == 0 ? "alpha" : "beta"});
  if (!sid.ok()) return fail(sid.status());
  uint64_t h = kFnvSeed;
  const int kind = c % 3;
  if (kind == 0) {
    CursorSpec spec;
    spec.relation = env.schema.RelationIndex("R");
    const int64_t lo = (c * 37) % 300;
    spec.filter = PredicateOf(AtomRange(/*column=*/1, lo, lo + 200));
    spec.projection = {0, 1};
    spec.begin_rank = c * 1000;
    spec.end_rank = spec.begin_rank + 9000;
    auto cid = server.OpenCursor(*sid, spec);
    if (!cid.ok()) return fail(cid.status());
    RowBlock block;
    for (;;) {
      auto batch = server.NextBatch(*sid, *cid, std::move(block));
      if (!batch.ok()) return fail(batch.status());
      if (batch->done) break;
      h = HashBlock(h, batch->rows);
      block = std::move(batch->rows);
    }
  } else if (kind == 1) {
    const int rel = env.schema.RelationIndex(c % 2 == 0 ? "S" : "T");
    const int64_t rows = c % 2 == 0 ? 700 : 1500;
    for (int i = 0; i < 300; ++i) {
      auto row = server.Lookup(*sid, rel, (i * 97 + c * 13) % rows);
      if (!row.ok()) return fail(row.status());
      h = HashValues(h, row->data(), static_cast<int64_t>(row->size()));
    }
  } else {
    auto aqp = server.ExecuteQuery(*sid, env.query);
    if (!aqp.ok()) return fail(aqp.status());
    for (const AqpStep& step : aqp->steps) {
      h = HashString(h, step.label);
      h = HashValues(h, reinterpret_cast<const Value*>(&step.cardinality), 1);
    }
  }
  EXPECT_TRUE(server.CloseSession(*sid).ok());
  return h;
}

// Distributes the kNumItems work items round-robin over `clients` threads.
std::vector<uint64_t> RunClients(RegenServer& server,
                                 const ToyEnvironment& env, int clients,
                                 std::vector<std::string>* errors) {
  std::vector<uint64_t> hashes(kNumItems, 0);
  errors->assign(kNumItems, "");
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      for (int c = t; c < kNumItems; c += clients) {
        hashes[c] = RunItem(server, env, c, &(*errors)[c]);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  return hashes;
}

// ---- serving determinism --------------------------------------------------

TEST_F(ServeTest, StreamsByteIdenticalAcrossConfigurations) {
  const uint64_t big = 64ull << 20;
  const uint64_t tiny = summary_bytes_ + 64;  // fits exactly one summary
  struct Config {
    int threads;
    int clients;
    uint64_t cache_bytes;
    int64_t batch_rows;
  };
  std::vector<Config> configs;
  for (int threads : {1, 2, 8}) {
    for (int clients : {1, 4, 16}) {
      configs.push_back({threads, clients, big, 4096});
    }
  }
  configs.push_back({8, 16, tiny, 513});   // evicting cache, odd batches
  configs.push_back({2, 16, tiny, 1009});

  std::vector<uint64_t> reference;
  for (const Config& config : configs) {
    ServeOptions options;
    options.num_threads = config.threads;
    options.cache_bytes = config.cache_bytes;
    options.batch_rows = config.batch_rows;
    RegenServer server(options);
    RegisterBoth(server);
    std::vector<std::string> errors;
    const std::vector<uint64_t> hashes =
        RunClients(server, env_, config.clients, &errors);
    for (const std::string& e : errors) EXPECT_EQ(e, "");
    if (reference.empty()) {
      reference = hashes;
      continue;
    }
    EXPECT_EQ(hashes, reference)
        << "streams diverged at threads=" << config.threads
        << " clients=" << config.clients
        << " cache=" << config.cache_bytes
        << " batch=" << config.batch_rows;
    const ServeStats stats = server.stats();
    EXPECT_GT(stats.rows_served, 0u);
    EXPECT_GT(stats.lookups_served, 0u);
    EXPECT_GT(stats.queries_served, 0u);
  }
}

TEST_F(ServeTest, CursorStreamMatchesGeneratorScan) {
  RegenServer server{ServeOptions{}};
  RegisterBoth(server);
  auto sid = server.OpenSession(OpenSessionRequest{"alpha"});
  ASSERT_TRUE(sid.ok());
  const int r = env_.schema.RelationIndex("R");
  CursorSpec spec;
  spec.relation = r;
  spec.filter = PredicateOf(AtomRange(/*column=*/1, 100, 400));
  spec.projection = {1, 2};
  auto cid = server.OpenCursor(*sid, spec);
  ASSERT_TRUE(cid.ok());
  std::vector<Value> served;
  RowBlock block;
  for (;;) {
    auto batch = server.NextBatch(*sid, *cid, std::move(block));
    ASSERT_TRUE(batch.ok());
    if (batch->done) break;
    AppendRows(batch->rows, &served);
    block = std::move(batch->rows);
  }

  TupleGenerator gen(summary_);
  std::vector<Value> expected;
  gen.Scan(r, [&](const Row& row) {
    if (row[1] >= 100 && row[1] < 400) {
      expected.push_back(row[1]);
      expected.push_back(row[2]);
    }
  });
  EXPECT_EQ(served, expected);
}

TEST_F(ServeTest, CursorSurvivesEvictionAndReload) {
  ServeOptions options;
  options.num_threads = 1;
  options.cache_bytes = summary_bytes_ + 64;  // room for one summary only
  options.batch_rows = 1000;
  RegenServer server(options);
  RegisterBoth(server);
  const int r = env_.schema.RelationIndex("R");
  CursorSpec spec;
  spec.relation = r;

  // Uninterrupted reference stream.
  std::vector<Value> expected;
  {
    TupleGenerator gen(summary_);
    gen.Scan(r, [&](const Row& row) {
      expected.insert(expected.end(), row.begin(), row.end());
    });
  }

  auto alpha = server.OpenSession(OpenSessionRequest{"alpha"});
  ASSERT_TRUE(alpha.ok());
  auto cursor = server.OpenCursor(*alpha, spec);
  ASSERT_TRUE(cursor.ok());
  std::vector<Value> served;
  RowBlock block;
  for (int i = 0; i < 3; ++i) {
    auto batch = server.NextBatch(*alpha, *cursor, std::move(block));
    ASSERT_TRUE(batch.ok() && !batch->done);
    AppendRows(batch->rows, &served);
    block = std::move(batch->rows);
  }

  // Traffic on the other summary evicts alpha's (unpinned between calls).
  auto beta = server.OpenSession(OpenSessionRequest{"beta"});
  ASSERT_TRUE(beta.ok());
  auto beta_cursor = server.OpenCursor(*beta, spec);
  ASSERT_TRUE(beta_cursor.ok());
  auto beta_batch = server.NextBatch(*beta, *beta_cursor, std::move(block));
  ASSERT_TRUE(beta_batch.ok() && !beta_batch->done);
  block = std::move(beta_batch->rows);
  EXPECT_GE(server.stats().evictions, 1u);

  // The cursor continues over a freshly reloaded summary, byte-identically.
  for (;;) {
    auto batch = server.NextBatch(*alpha, *cursor, std::move(block));
    ASSERT_TRUE(batch.ok());
    if (batch->done) break;
    AppendRows(batch->rows, &served);
    block = std::move(batch->rows);
  }
  EXPECT_EQ(served, expected);
  EXPECT_GE(server.stats().cache_misses, 3u);  // alpha, beta, alpha again
}

TEST_F(ServeTest, CursorReopensAtSavedRank) {
  RegenServer server{ServeOptions{}};
  RegisterBoth(server);
  const int r = env_.schema.RelationIndex("R");
  CursorSpec spec;
  spec.relation = r;

  auto sid = server.OpenSession(OpenSessionRequest{"alpha"});
  ASSERT_TRUE(sid.ok());
  auto cid = server.OpenCursor(*sid, spec);
  ASSERT_TRUE(cid.ok());
  std::vector<Value> first_half;
  RowBlock block;
  for (int i = 0; i < 5; ++i) {
    auto batch = server.NextBatch(*sid, *cid, std::move(block));
    ASSERT_TRUE(batch.ok() && !batch->done);
    AppendRows(batch->rows, &first_half);
    block = std::move(batch->rows);
  }
  auto rank = server.CursorRank(*sid, *cid);
  ASSERT_TRUE(rank.ok());
  ASSERT_TRUE(server.CloseSession(*sid).ok());

  // A brand-new session resumes at the saved rank: the concatenation must
  // equal one uninterrupted stream.
  auto sid2 = server.OpenSession(OpenSessionRequest{"alpha"});
  ASSERT_TRUE(sid2.ok());
  CursorSpec resume = spec;
  resume.begin_rank = *rank;
  auto cid2 = server.OpenCursor(*sid2, resume);
  ASSERT_TRUE(cid2.ok());
  std::vector<Value> resumed = first_half;
  for (;;) {
    auto batch = server.NextBatch(*sid2, *cid2, std::move(block));
    ASSERT_TRUE(batch.ok());
    if (batch->done) break;
    AppendRows(batch->rows, &resumed);
    block = std::move(batch->rows);
  }

  std::vector<Value> expected;
  TupleGenerator gen(summary_);
  gen.Scan(r, [&](const Row& row) {
    expected.insert(expected.end(), row.begin(), row.end());
  });
  EXPECT_EQ(resumed, expected);
}

TEST_F(ServeTest, ExecuteQueryMatchesDirectExecutor) {
  RegenServer server{ServeOptions{}};
  RegisterBoth(server);
  auto sid = server.OpenSession(OpenSessionRequest{"alpha"});
  ASSERT_TRUE(sid.ok());
  auto served = server.ExecuteQuery(*sid, env_.query);
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  TupleGenerator gen(summary_);
  Executor direct(summary_.schema);
  auto expected = direct.Execute(env_.query, gen);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(served->steps.size(), expected->steps.size());
  for (size_t i = 0; i < expected->steps.size(); ++i) {
    EXPECT_EQ(served->steps[i].label, expected->steps[i].label);
    EXPECT_EQ(served->steps[i].cardinality, expected->steps[i].cardinality);
  }
}

// ---- shared scans ---------------------------------------------------------
//
// Multicast contract (docs/serve.md): cursors co-resident on one
// (summary, relation) share generation passes, but every member's stream
// stays byte-identical to the stream a lone cursor with the same spec would
// produce — whatever the member mix, join order, batch size, cancellations,
// or evictions.

// Client c's cursor spec over R: specs deliberately differ per member
// (group keying is (summary, relation) only; filters/projections/ranges are
// per-member) so fan-out correctness is exercised, not just block reuse.
CursorSpec SharedSpec(const ToyEnvironment& env, int c) {
  CursorSpec spec;
  spec.relation = env.schema.RelationIndex("R");
  switch (c % 3) {
    case 0:
      break;  // identity scan, all columns
    case 1:
      spec.filter = PredicateOf(AtomRange(/*column=*/1, 40 + c, 400 + c));
      spec.projection = {0, 1};
      break;
    default:
      spec.projection = {2};
      break;
  }
  spec.begin_rank = (c % 4) * 777;
  spec.end_rank = 80000 - (c % 5) * 333;
  return spec;
}

// Streams client c's cursor to completion on its own session.
uint64_t RunSharedClient(RegenServer& server, const ToyEnvironment& env,
                         int c, std::string* error) {
  const auto fail = [&](const Status& s) {
    *error = "client " + std::to_string(c) + ": " + s.ToString();
    return uint64_t{0};
  };
  auto sid = server.OpenSession(OpenSessionRequest{"alpha"});
  if (!sid.ok()) return fail(sid.status());
  auto cid = server.OpenCursor(*sid, SharedSpec(env, c));
  if (!cid.ok()) return fail(cid.status());
  uint64_t h = kFnvSeed;
  RowBlock block;
  for (;;) {
    auto batch = server.NextBatch(*sid, *cid, std::move(block));
    if (!batch.ok()) return fail(batch.status());
    if (batch->done) break;
    h = HashBlock(h, batch->rows);
    block = std::move(batch->rows);
  }
  EXPECT_TRUE(server.CloseSession(*sid).ok());
  return h;
}

TEST_F(ServeTest, SharedScanStreamsIdenticalToSolo) {
  constexpr int kSpecs = 12;
  // Solo reference: sharing disabled, one client at a time.
  std::vector<uint64_t> reference(kSpecs);
  {
    ServeOptions options;
    options.shared_scan = false;
    RegenServer server(options);
    RegisterBoth(server);
    for (int c = 0; c < kSpecs; ++c) {
      std::string error;
      reference[c] = RunSharedClient(server, env_, c, &error);
      ASSERT_EQ(error, "");
    }
  }

  struct Config {
    int threads;
    int clients;
    int64_t batch_rows;
  };
  for (const Config& config : std::vector<Config>{
           {1, 4, 512}, {4, 8, 1000}, {8, 12, 4096}, {2, 6, 257}}) {
    ServeOptions options;
    options.num_threads = config.threads;
    options.batch_rows = config.batch_rows;
    RegenServer server(options);
    RegisterBoth(server);
    std::vector<uint64_t> hashes(kSpecs, 0);
    std::vector<std::string> errors(kSpecs);
    std::vector<std::thread> threads;
    for (int t = 0; t < config.clients; ++t) {
      threads.emplace_back([&, t] {
        for (int c = t; c < kSpecs; c += config.clients) {
          hashes[c] = RunSharedClient(server, env_, c, &errors[c]);
        }
      });
    }
    for (std::thread& th : threads) th.join();
    for (const std::string& e : errors) EXPECT_EQ(e, "");
    EXPECT_EQ(hashes, reference)
        << "multicast diverged at threads=" << config.threads
        << " clients=" << config.clients << " batch=" << config.batch_rows;
    const ServeStats stats = server.stats();
    EXPECT_GE(stats.scan_groups_formed, 1u);
    EXPECT_GE(stats.peak_group_fanout, 2u);
    EXPECT_GT(stats.shared_chunk_fills, 0u);
  }
}

TEST_F(ServeTest, TwoCursorsShareOneGenerationPass) {
  // Deterministic accounting: two cursors on one session, interleaved
  // batch-by-batch — the follower must ride the leader's chunks (one fill,
  // one hit per chunk) and both streams must equal the generator scan.
  ServeOptions options;
  options.num_threads = 1;
  options.batch_rows = 8192;
  RegenServer server(options);
  RegisterBoth(server);
  const int r = env_.schema.RelationIndex("R");
  auto sid = server.OpenSession(OpenSessionRequest{"alpha"});
  ASSERT_TRUE(sid.ok());
  CursorSpec spec;
  spec.relation = r;
  auto a = server.OpenCursor(*sid, spec);
  auto b = server.OpenCursor(*sid, spec);
  ASSERT_TRUE(a.ok() && b.ok());
  std::vector<Value> rows_a, rows_b;
  RowBlock block;
  for (;;) {
    auto batch_a = server.NextBatch(*sid, *a, std::move(block));
    ASSERT_TRUE(batch_a.ok());
    if (!batch_a->done) AppendRows(batch_a->rows, &rows_a);
    auto batch_b = server.NextBatch(*sid, *b, std::move(batch_a->rows));
    ASSERT_TRUE(batch_b.ok());
    if (!batch_b->done) AppendRows(batch_b->rows, &rows_b);
    block = std::move(batch_b->rows);
    if (batch_a->done && batch_b->done) break;
  }
  EXPECT_EQ(rows_a, rows_b);
  std::vector<Value> expected;
  TupleGenerator gen(summary_);
  gen.Scan(r, [&](const Row& row) {
    expected.insert(expected.end(), row.begin(), row.end());
  });
  EXPECT_EQ(rows_a, expected);
  const ServeStats stats = server.stats();
  const uint64_t chunks = (80000 + 8192 - 1) / 8192;
  EXPECT_EQ(stats.scan_groups_formed, 1u);
  EXPECT_EQ(stats.peak_group_fanout, 2u);
  EXPECT_EQ(stats.shared_chunk_fills, chunks);
  EXPECT_EQ(stats.shared_chunk_hits, chunks);
  EXPECT_EQ(stats.catch_up_batches, 0u);
}

TEST_F(ServeTest, ScanGroupIntrospectionMatchesServerCounters) {
  // Same deterministic two-member group as above, observed through the
  // introspection surface (docs/observability.md): live rows carry group
  // identity and fan-out, and registry totals stay exactly equal to the
  // server's aggregate counters across group death.
  ServeOptions options;
  options.num_threads = 1;
  options.batch_rows = 8192;
  RegenServer server(options);
  RegisterBoth(server);
  const int r = env_.schema.RelationIndex("R");
  EXPECT_TRUE(server.scan_group_infos().empty());

  auto sid = server.OpenSession(OpenSessionRequest{"alpha"});
  ASSERT_TRUE(sid.ok());
  CursorSpec spec;
  spec.relation = r;
  auto a = server.OpenCursor(*sid, spec);
  auto b = server.OpenCursor(*sid, spec);
  ASSERT_TRUE(a.ok() && b.ok());
  RowBlock block;
  for (int i = 0; i < 3; ++i) {
    auto batch_a = server.NextBatch(*sid, *a, std::move(block));
    ASSERT_TRUE(batch_a.ok());
    auto batch_b = server.NextBatch(*sid, *b, std::move(batch_a->rows));
    ASSERT_TRUE(batch_b.ok());
    block = std::move(batch_b->rows);
  }

  const std::vector<ScanGroupInfo> live = server.scan_group_infos();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].summary_id, "alpha");
  EXPECT_EQ(live[0].relation, r);
  EXPECT_EQ(live[0].fanout, 2u);
  EXPECT_EQ(live[0].fills, 3u);  // leader filled one chunk per round
  EXPECT_EQ(live[0].hits, 3u);   // follower rode each one
  EXPECT_EQ(live[0].catch_up, 0u);

  ASSERT_TRUE(server.CloseSession(*sid).ok());
  // The group died with its members, but its counters folded into the
  // registry totals — which must equal the ServeStats aggregates, always
  // (the two populations increment at the same sites).
  EXPECT_TRUE(server.scan_group_infos().empty());
  const ScanGroup::Counters totals = server.scan_group_totals();
  const ServeStats stats = server.stats();
  EXPECT_EQ(totals.fills, stats.shared_chunk_fills);
  EXPECT_EQ(totals.hits, stats.shared_chunk_hits);
  EXPECT_EQ(totals.catch_up, stats.catch_up_batches);
  EXPECT_EQ(totals.fills, 3u);
}

TEST_F(ServeTest, SlowOpLogIsGatedAndCounted) {
  Counter* slow_ops = MetricRegistry::FindCounter("serve/slow_ops");
  ASSERT_NE(slow_ops, nullptr);

  // A 30ms injected stall in the summary load makes OpenSession slow on a
  // cold cache — deterministically, no timing races.
  ASSERT_TRUE(Failpoint::ArmFromString("serve/summary_load=delay(30)").ok());
  {
    // Threshold unset (the default): slow ops are not counted or logged.
    RegenServer server(ServeOptions{});
    RegisterBoth(server);
    const uint64_t before = slow_ops->value();
    auto sid = server.OpenSession(OpenSessionRequest{"alpha"});
    ASSERT_TRUE(sid.ok());
    EXPECT_TRUE(server.CloseSession(*sid).ok());
    EXPECT_EQ(slow_ops->value(), before);
  }
  {
    // Threshold below the stall: the open trips the slow-op log.
    ServeOptions options;
    options.slow_op_ms = 10;
    RegenServer server(options);
    RegisterBoth(server);
    const uint64_t before = slow_ops->value();
    auto sid = server.OpenSession(OpenSessionRequest{"alpha"});
    ASSERT_TRUE(sid.ok());
    EXPECT_GE(slow_ops->value(), before + 1);
    // A fast op under the same threshold stays quiet: the second open hits
    // the summary cache, skipping the armed load failpoint entirely.
    const uint64_t after_open = slow_ops->value();
    auto sid2 = server.OpenSession(OpenSessionRequest{"alpha"});
    ASSERT_TRUE(sid2.ok());
    EXPECT_EQ(slow_ops->value(), after_open);
    EXPECT_TRUE(server.CloseSession(*sid).ok());
    EXPECT_TRUE(server.CloseSession(*sid2).ok());
  }
  ASSERT_TRUE(Failpoint::ArmFromString("serve/summary_load=off").ok());
}

TEST_F(ServeTest, LateJoinerCatchesUpWithoutDisturbingTheGroup) {
  ServeOptions options;
  options.num_threads = 1;
  options.batch_rows = 4096;  // default shared_scan_chunks = 4 slots
  RegenServer server(options);
  RegisterBoth(server);
  const int r = env_.schema.RelationIndex("R");
  auto sid = server.OpenSession(OpenSessionRequest{"alpha"});
  ASSERT_TRUE(sid.ok());
  CursorSpec spec;
  spec.relation = r;
  auto a = server.OpenCursor(*sid, spec);
  ASSERT_TRUE(a.ok());
  std::vector<Value> rows_a, rows_b;
  RowBlock block;
  // The early cursor runs alone (private path) well past the slot ring.
  for (int i = 0; i < 8; ++i) {
    auto batch = server.NextBatch(*sid, *a, std::move(block));
    ASSERT_TRUE(batch.ok() && !batch->done);
    AppendRows(batch->rows, &rows_a);
    block = std::move(batch->rows);
  }
  // A latecomer joins at rank 0: its catch-up chunks are behind the
  // group frontier and long since outside the ring, so they regenerate —
  // counted as catch-up batches — while the leader streams on unperturbed.
  auto b = server.OpenCursor(*sid, spec);
  ASSERT_TRUE(b.ok());
  for (;;) {
    auto batch_a = server.NextBatch(*sid, *a, std::move(block));
    ASSERT_TRUE(batch_a.ok());
    if (!batch_a->done) AppendRows(batch_a->rows, &rows_a);
    auto batch_b = server.NextBatch(*sid, *b, std::move(batch_a->rows));
    ASSERT_TRUE(batch_b.ok());
    if (!batch_b->done) AppendRows(batch_b->rows, &rows_b);
    block = std::move(batch_b->rows);
    if (batch_a->done && batch_b->done) break;
  }
  EXPECT_EQ(rows_a, rows_b);
  std::vector<Value> expected;
  TupleGenerator gen(summary_);
  gen.Scan(r, [&](const Row& row) {
    expected.insert(expected.end(), row.begin(), row.end());
  });
  EXPECT_EQ(rows_a, expected);
  EXPECT_GT(server.stats().catch_up_batches, 0u);
}

TEST_F(ServeTest, MemberCancelDetachesWithoutDisturbingTheGroup) {
  ServeOptions options;
  options.num_threads = 4;
  options.batch_rows = 2048;
  RegenServer server(options);
  RegisterBoth(server);

  // Solo reference for spec 0.
  std::vector<uint64_t> reference(3);
  {
    ServeOptions solo;
    solo.shared_scan = false;
    RegenServer ref_server(solo);
    RegisterBoth(ref_server);
    for (int c = 0; c < 3; ++c) {
      std::string error;
      reference[c] = RunSharedClient(ref_server, env_, c, &error);
      ASSERT_EQ(error, "");
    }
  }

  // Three members; the middle one is cancelled mid-stream and must unwind
  // with kCancelled while the survivors finish byte-identically.
  std::atomic<uint64_t> victim_sid{0};
  std::atomic<int> victim_batches{0};
  std::atomic<bool> cancel_issued{false};
  std::vector<uint64_t> hashes(3, 0);
  std::vector<std::string> errors(3);
  Status victim_status;
  std::vector<std::thread> threads;
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&, c] {
      if (c != 1) {
        hashes[c] = RunSharedClient(server, env_, c, &errors[c]);
        return;
      }
      auto sid = server.OpenSession(OpenSessionRequest{"alpha"});
      ASSERT_TRUE(sid.ok());
      victim_sid.store(sid->id);
      auto cid = server.OpenCursor(*sid, SharedSpec(env_, 1));
      ASSERT_TRUE(cid.ok());
      RowBlock block;
      for (;;) {
        // Pause after the second batch until the cancel has landed, so the
        // terminal kCancelled is observed mid-stream deterministically.
        if (victim_batches.load() == 2) {
          while (!cancel_issued.load()) {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
          }
        }
        auto batch = server.NextBatch(*sid, *cid, std::move(block));
        if (!batch.ok()) {
          victim_status = batch.status();
          break;
        }
        if (batch->done) break;
        block = std::move(batch->rows);
        victim_batches.fetch_add(1);
      }
      EXPECT_TRUE(server.CloseSession(*sid).ok());
    });
  }
  while (victim_batches.load() < 2) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_TRUE(server.CancelSession(SessionHandle{victim_sid.load()}).ok());
  cancel_issued.store(true);
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(victim_status.code(), StatusCode::kCancelled);
  EXPECT_EQ(hashes[0], reference[0]);
  EXPECT_EQ(hashes[2], reference[2]);
  EXPECT_GE(server.stats().cancelled_requests, 1u);
}

TEST_F(ServeTest, SharedScanSurvivesEvictionMidGroup) {
  ServeOptions options;
  options.num_threads = 1;
  options.cache_bytes = summary_bytes_ + 64;  // room for one summary only
  options.batch_rows = 4096;
  RegenServer server(options);
  RegisterBoth(server);
  const int r = env_.schema.RelationIndex("R");
  auto sid = server.OpenSession(OpenSessionRequest{"alpha"});
  ASSERT_TRUE(sid.ok());
  CursorSpec spec;
  spec.relation = r;
  auto a = server.OpenCursor(*sid, spec);
  auto b = server.OpenCursor(*sid, spec);
  ASSERT_TRUE(a.ok() && b.ok());
  std::vector<Value> rows_a, rows_b;
  RowBlock block;
  const auto step = [&](CursorHandle cid, std::vector<Value>* rows,
                        bool* more) {
    auto batch = server.NextBatch(*sid, cid, std::move(block));
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    *more = !batch->done;
    if (*more) AppendRows(batch->rows, rows);
    block = std::move(batch->rows);
  };
  bool more_a = true;
  bool more_b = true;
  for (int i = 0; i < 3; ++i) {
    step(*a, &rows_a, &more_a);
    step(*b, &rows_b, &more_b);
  }
  // Foreign traffic evicts alpha's summary out from under the live group.
  auto beta = server.OpenSession(OpenSessionRequest{"beta"});
  ASSERT_TRUE(beta.ok());
  auto beta_cursor = server.OpenCursor(*beta, spec);
  ASSERT_TRUE(beta_cursor.ok());
  auto beta_batch = server.NextBatch(*beta, *beta_cursor, std::move(block));
  ASSERT_TRUE(beta_batch.ok() && !beta_batch->done);
  block = std::move(beta_batch->rows);
  EXPECT_GE(server.stats().evictions, 1u);
  // The group's chunks are pure functions of (summary bytes, rank range):
  // reload is invisible, streams stay byte-identical.
  for (;;) {
    step(*a, &rows_a, &more_a);
    step(*b, &rows_b, &more_b);
    if (!more_a && !more_b) break;
  }
  EXPECT_EQ(rows_a, rows_b);
  std::vector<Value> expected;
  TupleGenerator gen(summary_);
  gen.Scan(r, [&](const Row& row) {
    expected.insert(expected.end(), row.begin(), row.end());
  });
  EXPECT_EQ(rows_a, expected);
}

// ---- summary store --------------------------------------------------------

TEST_F(ServeTest, StoreEvictsLeastRecentlyUsed) {
  SummaryStore store(2 * summary_bytes_ + 128);  // fits two summaries
  ASSERT_TRUE(store.Register("a", path_).ok());
  ASSERT_TRUE(store.Register("b", path_).ok());
  ASSERT_TRUE(store.Register("c", path_).ok());

  ASSERT_TRUE(store.Acquire("a").ok());  // load a
  ASSERT_TRUE(store.Acquire("b").ok());  // load b
  EXPECT_EQ(store.stats().resident, 2u);
  ASSERT_TRUE(store.Acquire("c").ok());  // load c -> evicts a (LRU)
  {
    const SummaryStore::Stats s = store.stats();
    EXPECT_EQ(s.resident, 2u);
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.misses, 3u);
  }
  ASSERT_TRUE(store.Acquire("b").ok());  // still resident: a hit
  EXPECT_EQ(store.stats().hits, 1u);
  ASSERT_TRUE(store.Acquire("a").ok());  // evicted above: a miss, evicts c
  {
    const SummaryStore::Stats s = store.stats();
    EXPECT_EQ(s.misses, 4u);
    EXPECT_EQ(s.evictions, 2u);
    EXPECT_EQ(s.resident, 2u);
  }
}

TEST_F(ServeTest, StoreNeverEvictsPinnedEntries) {
  SummaryStore store(/*cache_bytes=*/1);  // nothing fits
  ASSERT_TRUE(store.Register("a", path_).ok());
  ASSERT_TRUE(store.Register("b", path_).ok());
  auto a = store.Acquire("a");
  ASSERT_TRUE(a.ok());
  auto b = store.Acquire("b");
  ASSERT_TRUE(b.ok());
  // Both pinned: the cache overcommits rather than evicting in-use data.
  EXPECT_EQ(store.stats().resident, 2u);
  EXPECT_EQ(store.stats().evictions, 0u);
  EXPECT_GT(a->summary().ByteSize(), 0u);
  // A second acquire of a pinned id must share the entry: generator
  // pointers stay stable while any lease is live.
  auto b2 = store.Acquire("b");
  ASSERT_TRUE(b2.ok());
  EXPECT_EQ(&b->generator(), &b2->generator());
  { auto drop = std::move(*b2); }
  { auto drop = std::move(*a); }  // release a -> immediately evictable
  EXPECT_EQ(store.stats().evictions, 1u);
  { auto drop = std::move(*b); }
  EXPECT_EQ(store.stats().evictions, 2u);
  EXPECT_EQ(store.stats().resident, 0u);
  EXPECT_EQ(store.stats().cached_bytes, 0u);
}

TEST_F(ServeTest, StoreConcurrentAcquireSingleLoad) {
  SummaryStore store(64ull << 20);
  ASSERT_TRUE(store.Register("a", path_).ok());
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        auto lease = store.Acquire("a");
        if (!lease.ok() || lease->generator().RowCount(0) == 0) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // All concurrent first acquires collapsed onto one disk load.
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_EQ(store.stats().hits, 159u);
}

// ---- scheduler ------------------------------------------------------------

TEST(FairSchedulerTest, WindowBoundsConcurrentWork) {
  FairScheduler scheduler(/*max_inflight=*/2);
  std::atomic<int> inflight{0};
  std::atomic<int> max_seen{0};
  std::atomic<int> admit_failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 40; ++i) {
        const Status admitted = scheduler.Admit(static_cast<uint64_t>(t), [&] {
          const int now = inflight.fetch_add(1) + 1;
          int seen = max_seen.load();
          while (now > seen && !max_seen.compare_exchange_weak(seen, now)) {
          }
          // Hold the slot long enough that the other five threads pile up
          // behind the 2-wide window, even on a single-core machine.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          inflight.fetch_sub(1);
        });
        if (!admitted.ok()) admit_failures.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_LE(max_seen.load(), 2);
  EXPECT_EQ(admit_failures.load(), 0);  // no scope, no bound: all admitted
  EXPECT_GT(scheduler.admission_waits(), 0u);
}

TEST(FairSchedulerTest, QueueBoundShedsExcessWaiters) {
  FairScheduler scheduler(/*max_inflight=*/1, /*max_queued=*/2);
  std::mutex gate;
  gate.lock();  // the first admitted task blocks, wedging the window
  std::atomic<int> shed{0};
  std::atomic<int> ran{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      const Status admitted = scheduler.Admit(static_cast<uint64_t>(t), [&] {
        ran.fetch_add(1);
        gate.lock();  // first holder blocks until the main thread unlocks
        gate.unlock();
      });
      if (admitted.code() == StatusCode::kResourceExhausted) {
        shed.fetch_add(1);
      }
    });
  }
  // Window (1) + queue (2) fill; the rest must fast-reject.
  while (shed.load() < 5) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));
  gate.unlock();
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(shed.load(), 5);
  EXPECT_EQ(ran.load(), 3);
  EXPECT_EQ(scheduler.shed(), 5u);
  EXPECT_EQ(scheduler.queued(), 0);
}

TEST(FairSchedulerTest, CancelledWaiterLeavesTheQueue) {
  FairScheduler scheduler(/*max_inflight=*/1);
  std::mutex gate;
  gate.lock();
  std::atomic<bool> holding{false};
  std::thread holder([&] {
    const Status admitted = scheduler.Admit(1, [&] {
      holding.store(true);
      gate.lock();
      gate.unlock();
    });
    EXPECT_TRUE(admitted.ok());
  });
  // Wait until the holder owns the window.
  while (!holding.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  CancelToken token;
  std::thread waiter([&] {
    bool ran = false;
    const Status admitted = scheduler.Admit(
        2, [&] { ran = true; }, CancelScope(&token, Deadline::Infinite()));
    EXPECT_EQ(admitted.code(), StatusCode::kCancelled);
    EXPECT_FALSE(ran);
  });
  while (scheduler.queued() == 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  token.Cancel();
  scheduler.Kick();
  waiter.join();
  EXPECT_EQ(scheduler.queued(), 0);
  gate.unlock();
  holder.join();
  scheduler.Drain();  // nothing left: returns immediately, no deadlock
}

TEST(FairSchedulerTest, DeadlineExpiryRejectsQueuedWaiter) {
  FairScheduler scheduler(/*max_inflight=*/1);
  std::mutex gate;
  gate.lock();
  std::atomic<bool> holding{false};
  std::thread holder([&] {
    const Status admitted = scheduler.Admit(1, [&] {
      holding.store(true);
      gate.lock();
      gate.unlock();
    });
    EXPECT_TRUE(admitted.ok());
  });
  while (!holding.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  const Status admitted = scheduler.Admit(
      2, [] {}, CancelScope(nullptr, Deadline::After(20)));
  EXPECT_EQ(admitted.code(), StatusCode::kDeadlineExceeded);
  gate.unlock();
  holder.join();
}

TEST(FairSchedulerTest, ChargedDebtYieldsTurnsWithoutIdling) {
  // Shared-scan accounting: a session charged for a generation pass it got
  // for free yields its next turn to a waiting peer — but debt must never
  // idle the window when the debtor is the only waiter.
  FairScheduler scheduler(/*max_inflight=*/1);

  // Alone in the queue, a debtor is granted immediately despite its debt.
  scheduler.Charge(7, 2);
  EXPECT_EQ(scheduler.charged(), 2u);
  bool ran = false;
  ASSERT_TRUE(scheduler.Admit(7, [&] { ran = true; }).ok());
  EXPECT_TRUE(ran);
  EXPECT_EQ(scheduler.debt_skips(), 0u);

  // Wedge the window, queue the debtor (7) and a peer (8), then release:
  // the rotation reaches 7 first, spends one debt unit skipping it, and
  // grants 8 — so 8 finishes before 7.
  std::mutex gate;
  gate.lock();
  std::atomic<bool> holding{false};
  std::thread holder([&] {
    ASSERT_TRUE(scheduler
                    .Admit(5,
                           [&] {
                             holding.store(true);
                             gate.lock();
                             gate.unlock();
                           })
                    .ok());
  });
  while (!holding.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  std::mutex order_mu;
  std::vector<uint64_t> order;
  const auto client = [&](uint64_t session) {
    ASSERT_TRUE(scheduler
                    .Admit(session,
                           [&, session] {
                             std::lock_guard<std::mutex> lock(order_mu);
                             order.push_back(session);
                           })
                    .ok());
  };
  std::thread t7([&] { client(7); });
  std::thread t8([&] { client(8); });
  while (scheduler.queued() < 2) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  gate.unlock();
  holder.join();
  t7.join();
  t8.join();
  EXPECT_EQ(order, (std::vector<uint64_t>{8, 7}));
  EXPECT_EQ(scheduler.debt_skips(), 1u);
  // The remaining debt unit is dropped with the session.
  scheduler.ForgetSession(7);
}

// ---- QoS: priority + rate limits (docs/serve.md "QoS") --------------------

TEST(FairSchedulerTest, PriorityWinsTheRotationUnderContention) {
  // Wedge the window with session 5, queue a priority-1 waiter (7) and a
  // priority-4 waiter (8), then release. The rotation resumes at 7, but its
  // credit (1) is below the grant cost (maxp = 4), so it is skipped and 8 is
  // granted first — deterministically, despite 7 being first in id order.
  FairScheduler scheduler(/*max_inflight=*/1);
  scheduler.SetSessionQos(7, SessionQos{/*priority=*/1, /*rate=*/0});
  scheduler.SetSessionQos(8, SessionQos{/*priority=*/4, /*rate=*/0});
  std::mutex gate;
  gate.lock();
  std::atomic<bool> holding{false};
  std::thread holder([&] {
    ASSERT_TRUE(scheduler
                    .Admit(5,
                           [&] {
                             holding.store(true);
                             gate.lock();
                             gate.unlock();
                           })
                    .ok());
  });
  while (!holding.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  std::mutex order_mu;
  std::vector<uint64_t> order;
  const auto client = [&](uint64_t session) {
    ASSERT_TRUE(scheduler
                    .Admit(session,
                           [&, session] {
                             std::lock_guard<std::mutex> lock(order_mu);
                             order.push_back(session);
                           })
                    .ok());
  };
  std::thread t7([&] { client(7); });
  std::thread t8([&] { client(8); });
  while (scheduler.queued() < 2) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  gate.unlock();
  holder.join();
  t7.join();
  t8.join();
  EXPECT_EQ(order, (std::vector<uint64_t>{8, 7}));
  EXPECT_GE(scheduler.priority_skips(), 1u);
  scheduler.ForgetSession(7);
  scheduler.ForgetSession(8);
}

TEST(FairSchedulerTest, RateLimitThrottlesAndRefills) {
  // A session that overdraws its token bucket blocks in Admit until the
  // continuous refill clears the deficit — even with the window idle (the
  // rate limit is absolute, unlike priority/debt which are relative).
  FairScheduler scheduler(/*max_inflight=*/1);
  scheduler.SetSessionQos(1, SessionQos{/*priority=*/1, /*rate=*/1000});
  // Burn the full one-second burst plus a 100-row deficit (~100ms refill).
  scheduler.SpendTokens(1, 1100);
  EXPECT_TRUE(scheduler.SessionThrottled(1));
  const auto start = std::chrono::steady_clock::now();
  bool ran = false;
  ASSERT_TRUE(scheduler.Admit(1, [&] { ran = true; }).ok());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_TRUE(ran);
  EXPECT_GE(elapsed.count(), 50);
  EXPECT_GE(scheduler.rate_deferrals(), 1u);
  EXPECT_FALSE(scheduler.SessionThrottled(1));
}

TEST(FairSchedulerTest, ThrottledSessionYieldsToUnthrottledPeer) {
  // With the window wedged and two waiters — 7 throttled, 8 not — the grant
  // loop defers 7 and runs 8 first, whatever the rotation order.
  FairScheduler scheduler(/*max_inflight=*/1);
  scheduler.SetSessionQos(7, SessionQos{/*priority=*/1, /*rate=*/1000});
  scheduler.SpendTokens(7, 1100);
  std::mutex gate;
  gate.lock();
  std::atomic<bool> holding{false};
  std::thread holder([&] {
    ASSERT_TRUE(scheduler
                    .Admit(5,
                           [&] {
                             holding.store(true);
                             gate.lock();
                             gate.unlock();
                           })
                    .ok());
  });
  while (!holding.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  std::mutex order_mu;
  std::vector<uint64_t> order;
  const auto client = [&](uint64_t session) {
    ASSERT_TRUE(scheduler
                    .Admit(session,
                           [&, session] {
                             std::lock_guard<std::mutex> lock(order_mu);
                             order.push_back(session);
                           })
                    .ok());
  };
  std::thread t7([&] { client(7); });
  std::thread t8([&] { client(8); });
  while (scheduler.queued() < 2) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  gate.unlock();
  holder.join();
  t7.join();
  t8.join();
  EXPECT_EQ(order, (std::vector<uint64_t>{8, 7}));
  EXPECT_GE(scheduler.rate_deferrals(), 1u);
  scheduler.ForgetSession(7);
  scheduler.ForgetSession(8);
}

TEST_F(ServeTest, RateLimitedStreamIsSlowerButByteIdentical) {
  // The QoS knobs ride OpenSessionRequest: a rate-limited session streams
  // the same bytes, just later. 30k rows at 20k rows/s = a 20k burst free
  // and 10k rows paced (~500ms); the unlimited control takes ~no time.
  const int r = env_.schema.RelationIndex("R");
  CursorSpec spec;
  spec.relation = r;
  spec.end_rank = 30000;
  const auto stream = [&](RegenServer& server, SessionHandle sid,
                          std::vector<Value>* out) {
    auto cid = server.OpenCursor(sid, spec);
    ASSERT_TRUE(cid.ok());
    RowBlock block;
    for (;;) {
      auto batch = server.NextBatch(sid, *cid, std::move(block));
      ASSERT_TRUE(batch.ok());
      if (batch->done) break;
      AppendRows(batch->rows, out);
      block = std::move(batch->rows);
    }
  };
  RegenServer server{ServeOptions{}};
  RegisterBoth(server);

  std::vector<Value> unlimited;
  auto control = server.OpenSession(OpenSessionRequest{"alpha"});
  ASSERT_TRUE(control.ok());
  stream(server, *control, &unlimited);
  ASSERT_TRUE(server.CloseSession(*control).ok());

  OpenSessionRequest limited_request{"alpha"};
  limited_request.rate_limit_rows_per_sec = 20000;
  auto limited = server.OpenSession(limited_request);
  ASSERT_TRUE(limited.ok());
  std::vector<Value> paced;
  const auto start = std::chrono::steady_clock::now();
  stream(server, *limited, &paced);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_TRUE(server.CloseSession(*limited).ok());

  EXPECT_EQ(paced, unlimited);
  EXPECT_GE(elapsed.count(), 250);  // lenient: ~500ms nominal pacing
  EXPECT_GE(server.stats().rate_deferrals, 1u);
}

// ---- error paths ----------------------------------------------------------

TEST_F(ServeTest, ErrorPaths) {
  RegenServer server{ServeOptions{}};
  RegisterBoth(server);
  EXPECT_EQ(server.RegisterSummary("alpha", path_).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server.OpenSession(OpenSessionRequest{"nope"}).status().code(),
            StatusCode::kNotFound);

  const std::string corrupt = (dir_ / "corrupt.summary").string();
  std::FILE* f = std::fopen(corrupt.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("garbage!", 1, 8, f);
  std::fclose(f);
  ASSERT_TRUE(server.RegisterSummary("corrupt", corrupt).ok());
  EXPECT_EQ(server.OpenSession(OpenSessionRequest{"corrupt"}).status().code(),
            StatusCode::kIoError);

  auto sid = server.OpenSession(OpenSessionRequest{"alpha"});
  ASSERT_TRUE(sid.ok());
  CursorSpec bad_rel;
  bad_rel.relation = 99;
  EXPECT_EQ(server.OpenCursor(*sid, bad_rel).status().code(),
            StatusCode::kInvalidArgument);
  CursorSpec bad_filter;
  bad_filter.relation = 0;
  bad_filter.filter = PredicateOf(AtomRange(17, 0, 5));
  EXPECT_EQ(server.OpenCursor(*sid, bad_filter).status().code(),
            StatusCode::kInvalidArgument);
  CursorSpec bad_proj;
  bad_proj.relation = 0;
  bad_proj.projection = {0, 42};
  EXPECT_EQ(server.OpenCursor(*sid, bad_proj).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server.NextBatch(*sid, CursorHandle{12345}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(server.Lookup(*sid, 0, int64_t{1} << 40).status().code(),
            StatusCode::kOutOfRange);
  ASSERT_TRUE(server.CloseSession(*sid).ok());
  EXPECT_EQ(server.CloseSession(*sid).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace hydra
