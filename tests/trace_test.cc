// Tests for request tracing (src/common/trace.h, docs/observability.md):
// the disabled path records nothing, spans carry nesting and thread
// attribution, the per-thread ring stays bounded, Clear() empties every
// buffer, and the Chrome trace-event JSON export round-trips through a
// minimal JSON scan and a file write.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/trace.h"

namespace hydra {
namespace {

// Tracing state is process-global: every test starts from a clean slate
// and leaves tracing disabled for its neighbors.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::SetEnabled(false);
    trace::Clear();
  }
  void TearDown() override {
    trace::SetEnabled(false);
    trace::Clear();
  }
};

// Counts occurrences of `needle` in `haystack`.
int CountOf(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (size_t pos = 0; (pos = haystack.find(needle, pos)) != std::string::npos;
       pos += needle.size()) {
    ++n;
  }
  return n;
}

TEST_F(TraceTest, DisabledScopesRecordNothing) {
  ASSERT_FALSE(trace::Enabled());
  {
    trace::TraceScope scope("test/should_not_appear");
  }
  EXPECT_TRUE(trace::Snapshot().empty());
}

TEST_F(TraceTest, EnabledScopesRecordSpans) {
  trace::SetEnabled(true);
  {
    trace::TraceScope scope("test/outer");
  }
  const std::vector<trace::Span> spans = trace::Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "test/outer");
}

TEST_F(TraceTest, NestedScopesCloseInnerFirstAndNestByTime) {
  trace::SetEnabled(true);
  {
    trace::TraceScope outer("test/outer");
    {
      trace::TraceScope inner("test/inner");
    }
  }
  const std::vector<trace::Span> spans = trace::Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const trace::Span* outer = nullptr;
  const trace::Span* inner = nullptr;
  for (const trace::Span& s : spans) {
    if (std::string(s.name) == "test/outer") outer = &s;
    if (std::string(s.name) == "test/inner") inner = &s;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The inner span lies inside the outer one on the same thread.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_LE(outer->start_us, inner->start_us);
  EXPECT_GE(outer->start_us + outer->dur_us,
            inner->start_us + inner->dur_us);
}

TEST_F(TraceTest, RingIsBoundedPerThread) {
  trace::SetEnabled(true);
  for (size_t i = 0; i < trace::kSpansPerThread + 500; ++i) {
    trace::TraceScope scope("test/flood");
  }
  EXPECT_EQ(trace::Snapshot().size(), trace::kSpansPerThread);
}

TEST_F(TraceTest, SpansFromJoinedThreadsSurvive) {
  trace::SetEnabled(true);
  std::thread worker([] {
    trace::TraceScope scope("test/worker_span");
  });
  worker.join();
  {
    trace::TraceScope scope("test/main_span");
  }
  const std::vector<trace::Span> spans = trace::Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Distinct threads get distinct small tids.
  EXPECT_NE(spans[0].tid, spans[1].tid);
}

TEST_F(TraceTest, ClearDropsEverything) {
  trace::SetEnabled(true);
  {
    trace::TraceScope scope("test/cleared");
  }
  ASSERT_FALSE(trace::Snapshot().empty());
  trace::Clear();
  EXPECT_TRUE(trace::Snapshot().empty());
}

TEST_F(TraceTest, ChromeJsonHasOneCompleteEventPerSpan) {
  trace::SetEnabled(true);
  {
    trace::TraceScope a("test/json_a");
    trace::TraceScope b("test/json_b");
  }
  const std::string json = trace::ChromeTraceJson();
  // Structure: a traceEvents array of "X" (complete) events with the four
  // Chrome-required keys. A real parser lives on the Chrome side; here we
  // hold the writer to the stable substrings a parser needs.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(CountOf(json, "\"ph\":\"X\""), 2);
  EXPECT_EQ(CountOf(json, "\"name\":\"test/json_a\""), 1);
  EXPECT_EQ(CountOf(json, "\"name\":\"test/json_b\""), 1);
  EXPECT_EQ(CountOf(json, "\"ts\":"), 2);
  EXPECT_EQ(CountOf(json, "\"dur\":"), 2);
  EXPECT_EQ(CountOf(json, "\"pid\":"), 2);
  EXPECT_EQ(CountOf(json, "\"tid\":"), 2);
  // Balanced braces/brackets — cheap well-formedness signal.
  EXPECT_EQ(CountOf(json, "{"), CountOf(json, "}"));
  EXPECT_EQ(CountOf(json, "["), CountOf(json, "]"));
}

TEST_F(TraceTest, WriteChromeTraceRoundTripsThroughDisk) {
  trace::SetEnabled(true);
  {
    trace::TraceScope scope("test/to_disk");
  }
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("hydra_trace_" + std::to_string(::getpid()) + ".json"))
          .string();
  ASSERT_TRUE(trace::WriteChromeTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, trace::ChromeTraceJson());
  std::remove(path.c_str());
}

TEST_F(TraceTest, WriteChromeTraceFailsCleanlyOnBadPath) {
  EXPECT_FALSE(
      trace::WriteChromeTrace("/nonexistent_dir_zz/trace.json").ok());
}

}  // namespace
}  // namespace hydra
