// Unit + property tests for hydra/view_graph: chordal decomposition, maximal
// cliques, clique-tree order with the running-intersection property.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "hydra/view_graph.h"

namespace hydra {
namespace {

ViewConstraint MakeVc(std::vector<int> columns) {
  ViewConstraint vc;
  Conjunct c;
  for (int col : columns) c.AddAtom(AtomRange(col, 0, 5));
  vc.predicate.AddConjunct(std::move(c));
  vc.cardinality = 1;
  return vc;
}

TEST(ViewGraphTest, NoConstraintsNoSubViews) {
  EXPECT_TRUE(DecomposeView(5, {}).empty());
}

TEST(ViewGraphTest, SingleConstraintSingleClique) {
  const auto svs = DecomposeView(5, {MakeVc({1, 3})});
  ASSERT_EQ(svs.size(), 1u);
  EXPECT_EQ(svs[0].columns, (std::vector<int>{1, 3}));
  EXPECT_EQ(svs[0].parent, -1);
  EXPECT_TRUE(svs[0].separator.empty());
}

TEST(ViewGraphTest, ChainDecomposesIntoTwoCliquesWithSeparator) {
  // CCs on (A,B) and (B,C): cliques {A,B} and {B,C}, separator {B}.
  const auto svs = DecomposeView(3, {MakeVc({0, 1}), MakeVc({1, 2})});
  ASSERT_EQ(svs.size(), 2u);
  EXPECT_EQ(svs[0].parent, -1);
  EXPECT_EQ(svs[1].parent, 0);
  EXPECT_EQ(svs[1].separator, std::vector<int>{1});
}

TEST(ViewGraphTest, TriangleIsOneClique) {
  const auto svs =
      DecomposeView(3, {MakeVc({0, 1}), MakeVc({1, 2}), MakeVc({0, 2})});
  ASSERT_EQ(svs.size(), 1u);
  EXPECT_EQ(svs[0].columns, (std::vector<int>{0, 1, 2}));
}

TEST(ViewGraphTest, FourCycleGetsChordalFill) {
  // 0-1, 1-2, 2-3, 3-0: chordal completion adds one chord → two triangles.
  const auto svs = DecomposeView(
      4, {MakeVc({0, 1}), MakeVc({1, 2}), MakeVc({2, 3}), MakeVc({0, 3})});
  ASSERT_EQ(svs.size(), 2u);
  EXPECT_EQ(svs[0].columns.size(), 3u);
  EXPECT_EQ(svs[1].columns.size(), 3u);
  EXPECT_EQ(svs[1].separator.size(), 2u);  // the chord
}

TEST(ViewGraphTest, DisconnectedComponentsEmptySeparator) {
  const auto svs = DecomposeView(4, {MakeVc({0, 1}), MakeVc({2, 3})});
  ASSERT_EQ(svs.size(), 2u);
  EXPECT_TRUE(svs[1].separator.empty());
}

TEST(ViewGraphTest, UnmentionedColumnsExcluded) {
  const auto svs = DecomposeView(10, {MakeVc({7})});
  ASSERT_EQ(svs.size(), 1u);
  EXPECT_EQ(svs[0].columns, std::vector<int>{7});
}

TEST(ViewGraphTest, EveryConstraintCoveredBySomeSubView) {
  // A CC's columns always form a clique, so some maximal clique covers them.
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<ViewConstraint> vcs;
    const int n = 8;
    const int k = static_cast<int>(rng.NextInt(1, 8));
    for (int i = 0; i < k; ++i) {
      std::vector<int> cols;
      const int arity = static_cast<int>(rng.NextInt(1, 5));
      for (int a = 0; a < arity; ++a) {
        cols.push_back(static_cast<int>(rng.NextInt(0, n)));
      }
      std::sort(cols.begin(), cols.end());
      cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
      vcs.push_back(MakeVc(cols));
    }
    const auto svs = DecomposeView(n, vcs);
    for (const ViewConstraint& vc : vcs) {
      const auto cols = vc.predicate.Columns();
      bool covered = false;
      for (const SubView& sv : svs) {
        if (std::includes(sv.columns.begin(), sv.columns.end(), cols.begin(),
                          cols.end())) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered);
    }
  }
}

// Running-intersection property: when sub-views are merged in the returned
// order, each sub-view's intersection with the union of its predecessors is
// exactly its separator — the paper's ordering condition (Section 5.1.1).
class ViewGraphRipTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ViewGraphRipTest, OrderSatisfiesRunningIntersection) {
  Rng rng(GetParam() * 97 + 13);
  const int n = static_cast<int>(rng.NextInt(4, 12));
  std::vector<ViewConstraint> vcs;
  const int k = static_cast<int>(rng.NextInt(2, 10));
  for (int i = 0; i < k; ++i) {
    std::vector<int> cols;
    const int arity = static_cast<int>(rng.NextInt(2, 5));
    for (int a = 0; a < arity; ++a) {
      cols.push_back(static_cast<int>(rng.NextInt(0, n)));
    }
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    vcs.push_back(MakeVc(cols));
  }
  const auto svs = DecomposeView(n, vcs);
  std::set<int> seen;
  for (size_t s = 0; s < svs.size(); ++s) {
    std::vector<int> shared;
    for (int c : svs[s].columns) {
      if (seen.count(c)) shared.push_back(c);
    }
    if (s == 0) {
      EXPECT_TRUE(shared.empty());
    } else {
      ASSERT_GE(svs[s].parent, 0);
      ASSERT_LT(svs[s].parent, static_cast<int>(s))
          << "parents must precede children";
      EXPECT_EQ(shared, svs[s].separator)
          << "sub-view " << s << ": intersection with predecessors must "
          << "equal the clique-tree separator";
    }
    for (int c : svs[s].columns) seen.insert(c);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewGraphRipTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace hydra
