// Tests for engine/kernels: scalar-vs-SIMD bit-identity of every dispatched
// kernel (over lengths that exercise the vector tails), selection-vector
// mechanics, and BlockPredicate compilation semantics against
// DnfPredicate::Eval as the oracle.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "engine/kernels.h"
#include "engine/row_block.h"
#include "query/predicate.h"

namespace hydra {
namespace {

using kernels::BlockPredicate;

// Restores the global dispatch switch even when a test fails mid-body.
class SimdGuard {
 public:
  ~SimdGuard() { kernels::SetSimdEnabled(true); }
};

std::vector<Value> RandomColumn(int64_t n, uint32_t seed, Value lo = -100,
                                Value hi = 100) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<Value> dist(lo, hi);
  std::vector<Value> col(n);
  for (auto& v : col) v = dist(rng);
  return col;
}

// Lengths around the 2/4/16-lane vector widths plus larger odd sizes.
const int64_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 63, 1000, 1001};

TEST(KernelsTest, IntervalMaskMatchesScalarAcrossDispatch) {
  SimdGuard guard;
  for (const int64_t n : kLengths) {
    const std::vector<Value> col = RandomColumn(n, 42 + n);
    std::vector<uint8_t> scalar_mask(n + 1, 0xee), simd_mask(n + 1, 0xee);
    kernels::SetSimdEnabled(false);
    kernels::IntervalMask(col.data(), n, -10, 25, scalar_mask.data());
    kernels::SetSimdEnabled(true);
    kernels::IntervalMask(col.data(), n, -10, 25, simd_mask.data());
    EXPECT_EQ(scalar_mask, simd_mask) << "n=" << n;
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(scalar_mask[i], col[i] >= -10 && col[i] < 25 ? 1 : 0);
    }
    EXPECT_EQ(simd_mask[n], 0xee) << "wrote past the mask";

    // The OR accumulator only ever sets bytes.
    kernels::SetSimdEnabled(false);
    kernels::IntervalMaskOr(col.data(), n, 50, 90, scalar_mask.data());
    kernels::SetSimdEnabled(true);
    kernels::IntervalMaskOr(col.data(), n, 50, 90, simd_mask.data());
    EXPECT_EQ(scalar_mask, simd_mask) << "n=" << n;
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(scalar_mask[i], (col[i] >= -10 && col[i] < 25) ||
                                        (col[i] >= 50 && col[i] < 90)
                                    ? 1
                                    : 0);
    }
  }
}

TEST(KernelsTest, IntervalMaskExtremeBounds) {
  SimdGuard guard;
  const std::vector<Value> col = {INT64_MIN, -1, 0, 1, INT64_MAX};
  for (const bool simd : {false, true}) {
    kernels::SetSimdEnabled(simd);
    std::vector<uint8_t> mask(col.size());
    kernels::IntervalMask(col.data(), col.size(), INT64_MIN, INT64_MAX,
                          mask.data());
    EXPECT_EQ(mask, (std::vector<uint8_t>{1, 1, 1, 1, 0})) << "simd=" << simd;
    kernels::IntervalMask(col.data(), col.size(), 0, 1, mask.data());
    EXPECT_EQ(mask, (std::vector<uint8_t>{0, 0, 1, 0, 0})) << "simd=" << simd;
  }
}

TEST(KernelsTest, MaskCombineMatchesScalarAcrossDispatch) {
  SimdGuard guard;
  for (const int64_t n : kLengths) {
    std::mt19937 rng(7 + n);
    std::vector<uint8_t> a(n), b(n);
    for (int64_t i = 0; i < n; ++i) {
      a[i] = rng() & 1;
      b[i] = rng() & 1;
    }
    std::vector<uint8_t> and_scalar = a, and_simd = a;
    std::vector<uint8_t> or_scalar = a, or_simd = a;
    kernels::SetSimdEnabled(false);
    kernels::MaskAnd(and_scalar.data(), b.data(), n);
    kernels::MaskOr(or_scalar.data(), b.data(), n);
    kernels::SetSimdEnabled(true);
    kernels::MaskAnd(and_simd.data(), b.data(), n);
    kernels::MaskOr(or_simd.data(), b.data(), n);
    EXPECT_EQ(and_scalar, and_simd) << "n=" << n;
    EXPECT_EQ(or_scalar, or_simd) << "n=" << n;
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(and_scalar[i], a[i] & b[i]);
      EXPECT_EQ(or_scalar[i], a[i] | b[i]);
    }
  }
}

TEST(KernelsTest, MaskToSelAppendsAscendingIndices) {
  const std::vector<uint8_t> mask = {1, 0, 0, 1, 1, 0, 1};
  SelVector sel = {99};  // appends, never clears
  kernels::MaskToSel(mask.data(), static_cast<int64_t>(mask.size()), &sel);
  EXPECT_EQ(sel, (SelVector{99, 0, 3, 4, 6}));
  sel.clear();
  kernels::MaskToSel(mask.data(), 0, &sel);
  EXPECT_TRUE(sel.empty());
}

TEST(KernelsTest, GatherSupportsInPlaceCompaction) {
  const std::vector<Value> src = {10, 11, 12, 13, 14, 15};
  const SelVector sel = {0, 2, 5};
  std::vector<Value> dst(3, -1);
  kernels::Gather(src.data(), sel.data(), 3, dst.data());
  EXPECT_EQ(dst, (std::vector<Value>{10, 12, 15}));
  // In place: ascending selection reads stay ahead of writes.
  std::vector<Value> buf = src;
  kernels::Gather(buf.data(), sel.data(), 3, buf.data());
  EXPECT_EQ(buf[0], 10);
  EXPECT_EQ(buf[1], 12);
  EXPECT_EQ(buf[2], 15);
}

TEST(KernelsTest, HashKeysMatchesMixKeyAcrossDispatch) {
  SimdGuard guard;
  for (const int64_t n : kLengths) {
    const std::vector<Value> col =
        RandomColumn(n, 1234 + n, INT64_MIN / 2, INT64_MAX / 2);
    std::vector<uint64_t> scalar_hash(n), simd_hash(n);
    kernels::SetSimdEnabled(false);
    kernels::HashKeys(col.data(), n, scalar_hash.data());
    kernels::SetSimdEnabled(true);
    kernels::HashKeys(col.data(), n, simd_hash.data());
    EXPECT_EQ(scalar_hash, simd_hash) << "n=" << n;
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(scalar_hash[i], kernels::MixKey(col[i]));
    }
  }
}

TEST(KernelsTest, FillKernels) {
  std::vector<Value> buf(10, -1);
  kernels::FillConst(buf.data(), 10, 7);
  EXPECT_EQ(buf, std::vector<Value>(10, 7));
  kernels::FillIota(buf.data(), 10, 100);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(buf[i], 100 + i);
  kernels::FillConst(buf.data(), 0, 9);  // n = 0 is a no-op
  EXPECT_EQ(buf[0], 100);
}

RowBlock MakeBlock(const std::vector<std::vector<Value>>& columns) {
  RowBlock block(static_cast<int>(columns.size()));
  if (columns.empty()) return block;
  block.ResizeUninitialized(static_cast<int64_t>(columns[0].size()));
  for (size_t c = 0; c < columns.size(); ++c) {
    std::copy(columns[c].begin(), columns[c].end(),
              block.MutableColumn(static_cast<int>(c)));
  }
  return block;
}

TEST(BlockPredicateTest, CompilationSemantics) {
  EXPECT_TRUE(BlockPredicate().is_false());  // default = DnfPredicate() = FALSE
  EXPECT_TRUE(BlockPredicate(DnfPredicate()).is_false());
  EXPECT_TRUE(BlockPredicate(DnfPredicate::True()).is_true());
  // An atom over an empty IntervalSet kills its conjunct.
  DnfPredicate impossible = PredicateOf(Atom{0, IntervalSet{}});
  EXPECT_TRUE(BlockPredicate(impossible).is_false());
}

TEST(BlockPredicateTest, SelectMatchesRowOracleAcrossDispatch) {
  SimdGuard guard;
  // Two conjuncts, one with a multi-interval atom:
  // (c0∈[0,40) ∧ c1∈[−50,0)) ∨ c0∈[60,70)∪[80,90).
  const IntervalSet split(std::vector<Interval>{{60, 70}, {80, 90}});
  const DnfPredicate dnf =
      PredicateAllOf({Atom{0, IntervalSet(Interval(0, 40))},
                      Atom{1, IntervalSet(Interval(-50, 0))}})
          .Or(PredicateOf(Atom{0, split}));
  const BlockPredicate pred(dnf);
  for (const int64_t n : kLengths) {
    const RowBlock block =
        MakeBlock({RandomColumn(n, 5 + n), RandomColumn(n, 6 + n)});
    SelVector expected;
    Row row(2);
    for (int64_t r = 0; r < n; ++r) {
      block.CopyRowTo(r, row.data());
      if (dnf.Eval(row)) expected.push_back(static_cast<int32_t>(r));
    }
    for (const bool simd : {false, true}) {
      kernels::SetSimdEnabled(simd);
      SelVector sel = {123};  // Select clears
      pred.Select(block, &sel);
      EXPECT_EQ(sel, expected) << "n=" << n << " simd=" << simd;
    }
  }
}

TEST(BlockPredicateTest, TrueAndFalseFastPaths) {
  const RowBlock block = MakeBlock({{1, 2, 3}});
  SelVector sel;
  BlockPredicate(DnfPredicate::True()).Select(block, &sel);
  EXPECT_EQ(sel, (SelVector{0, 1, 2}));
  BlockPredicate().Select(block, &sel);
  EXPECT_TRUE(sel.empty());
  // Empty batch: no rows selected regardless of the predicate.
  const RowBlock empty = MakeBlock({{}});
  BlockPredicate(DnfPredicate::True()).Select(empty, &sel);
  EXPECT_TRUE(sel.empty());
}

TEST(RowBlockTest, ColumnarRoundTrip) {
  RowBlock block(3);
  const std::vector<Value> rows = {1, 2, 3, 4, 5, 6};  // two row-major rows
  block.AppendRowMajor(rows.data(), 2);
  EXPECT_EQ(block.num_rows(), 2);
  EXPECT_EQ(block.Column(0)[0], 1);
  EXPECT_EQ(block.Column(0)[1], 4);
  EXPECT_EQ(block.Column(2)[1], 6);
  Row row(3);
  block.CopyRowTo(1, row.data());
  EXPECT_EQ(row, (Row{4, 5, 6}));

  RowBlock other(3);
  other.AppendBlock(block);
  other.AppendRange(block, 1, 1);
  EXPECT_EQ(other.num_rows(), 3);
  other.CopyRowTo(2, row.data());
  EXPECT_EQ(row, (Row{4, 5, 6}));

  other.Truncate(1);
  EXPECT_EQ(other.num_rows(), 1);
  other.Reset(2);
  EXPECT_EQ(other.num_columns(), 2);
  EXPECT_TRUE(other.empty());
}

}  // namespace
}  // namespace hydra
