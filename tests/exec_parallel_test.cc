// Parallel-vs-sequential identity of the morsel-driven execution engine:
// AQP cardinalities, similarity reports, and root row order must be
// byte-identical at any {num_threads, morsel_rows} setting, over both
// materialized (TableScanOp/SourceScanOp-on-Database) and dynamically
// generated (GeneratorScanOp/SourceScanOp-on-TupleGenerator) leaves.
// Also covers the morsel edge cases: empty relation, relation smaller than
// one morsel, and morsel boundaries falling mid-join-probe.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "engine/operators.h"
#include "hydra/regenerator.h"
#include "hydra/tuple_generator.h"
#include "workload/toy.h"
#include "workload/tpcds.h"
#include "workload/workload_runner.h"

namespace hydra {
namespace {

// Flattens an operator's whole output into (num_columns, row-major values):
// order-sensitive, so equality means identical root row order.
std::pair<int, std::vector<Value>> Drain(Operator* op) {
  op->Open();
  std::vector<Value> values;
  RowBlock block;
  while (op->NextBatch(&block)) {
    for (int64_t r = 0; r < block.num_rows(); ++r) {
      const size_t base = values.size();
      values.resize(base + block.num_columns());
      block.CopyRowTo(r, values.data() + base);
    }
  }
  return {op->num_columns(), std::move(values)};
}

std::vector<std::pair<std::string, uint64_t>> AqpSignature(
    const AnnotatedQueryPlan& aqp) {
  std::vector<std::pair<std::string, uint64_t>> sig;
  for (const AqpStep& step : aqp.steps) {
    sig.emplace_back(step.label, step.cardinality);
  }
  return sig;
}

TEST(ParallelExecutorTest, TpcdsSiteIdenticalAcrossThreadCounts) {
  Schema schema = TpcdsSchema(0.2);
  const auto make_site = [&](int threads) {
    auto queries = TpcdsWorkload(schema, TpcdsWorkloadKind::kSimple, 10, 9);
    // An odd morsel size forces boundaries mid-relation.
    auto site = BuildClientSite(schema, DataGenOptions{.seed = 3},
                                std::move(queries),
                                ExecOptions{threads, 1000});
    EXPECT_TRUE(site.ok()) << site.status().ToString();
    return std::move(*site);
  };
  const ClientSite base = make_site(1);
  for (int threads : {2, 8}) {
    const ClientSite site = make_site(threads);
    ASSERT_EQ(site.ccs.size(), base.ccs.size()) << threads << " threads";
    for (size_t i = 0; i < base.ccs.size(); ++i) {
      EXPECT_EQ(site.ccs[i].label, base.ccs[i].label);
      EXPECT_EQ(site.ccs[i].cardinality, base.ccs[i].cardinality)
          << base.ccs[i].label << " at " << threads << " threads";
    }
    ASSERT_EQ(site.aqps.size(), base.aqps.size());
    for (size_t q = 0; q < base.aqps.size(); ++q) {
      EXPECT_EQ(AqpSignature(site.aqps[q]), AqpSignature(base.aqps[q]));
    }
  }
}

TEST(ParallelExecutorTest, GeneratorSourceIdenticalAcrossThreadCounts) {
  ToyEnvironment env = MakeToyEnvironment();
  HydraRegenerator hydra(env.schema);
  auto result = hydra.Regenerate(env.ccs);
  ASSERT_TRUE(result.ok());
  TupleGenerator gen(result->summary);

  Executor base(env.schema, ExecOptions{1, 4096});
  auto base_aqp = base.Execute(env.query, gen);
  ASSERT_TRUE(base_aqp.ok());
  for (int threads : {2, 8}) {
    Executor ex(env.schema, ExecOptions{threads, 777});
    auto aqp = ex.Execute(env.query, gen);
    ASSERT_TRUE(aqp.ok());
    EXPECT_EQ(AqpSignature(*aqp), AqpSignature(*base_aqp))
        << threads << " threads";
  }
}

TEST(ParallelExecutorTest, SimilarityReportIdenticalAcrossThreadCounts) {
  ToyEnvironment env = MakeToyEnvironment();
  auto site = BuildClientSite(env.schema, DataGenOptions{.seed = 6},
                              {env.query});
  ASSERT_TRUE(site.ok());
  HydraRegenerator hydra(site->schema);
  auto result = hydra.Regenerate(site->ccs);
  ASSERT_TRUE(result.ok());
  TupleGenerator vendor(result->summary);

  auto base = MeasureVolumetricSimilarity(*site, vendor, ExecOptions{1});
  ASSERT_TRUE(base.ok());
  for (int threads : {2, 8}) {
    auto report =
        MeasureVolumetricSimilarity(*site, vendor, ExecOptions{threads, 500});
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->entries.size(), base->entries.size());
    for (size_t i = 0; i < base->entries.size(); ++i) {
      EXPECT_EQ(report->entries[i].label, base->entries[i].label);
      EXPECT_EQ(report->entries[i].client_cardinality,
                base->entries[i].client_cardinality);
      EXPECT_EQ(report->entries[i].vendor_cardinality,
                base->entries[i].vendor_cardinality)
          << base->entries[i].label << " at " << threads << " threads";
      EXPECT_DOUBLE_EQ(report->entries[i].signed_relative_error,
                       base->entries[i].signed_relative_error);
    }
  }
}

TEST(ParallelOperatorsTest, JoinPipelineRowOrderIdentical) {
  // σ(S) ⋈ R over materialized toy data: the root row order — not just the
  // count — must match the sequential plan at any thread/morsel setting.
  ToyEnvironment env = MakeToyEnvironment();
  HydraRegenerator hydra(env.schema);
  auto result = hydra.Regenerate(env.ccs);
  ASSERT_TRUE(result.ok());
  auto db = MaterializeDatabase(result->summary);
  ASSERT_TRUE(db.ok());
  const Schema& schema = env.schema;
  const int s = schema.RelationIndex("S");
  const int r = schema.RelationIndex("R");
  const int a = schema.relation(s).AttrIndex("A");
  const int sfk = schema.relation(r).AttrIndex("S_fk");
  const int spk = schema.relation(s).PrimaryKeyIndex();

  const auto run = [&](ExecContext* ctx) {
    auto s_scan = std::make_unique<TableScanOp>(&db->table(s), ctx);
    auto s_filtered = std::make_unique<FilterOp>(
        std::move(s_scan), PredicateOf(AtomRange(a, 20, 60)));
    HashJoinOp join(std::make_unique<TableScanOp>(&db->table(r), ctx), sfk,
                    std::move(s_filtered), spk, ctx);
    return Drain(&join);
  };

  const auto sequential = run(nullptr);
  EXPECT_EQ(sequential.second.size() / sequential.first, 50000u);
  for (int threads : {2, 8}) {
    ExecContext ctx(ExecOptions{threads, 333});
    EXPECT_EQ(run(&ctx), sequential) << threads << " threads";
  }
}

TEST(ParallelOperatorsTest, GeneratorLeafRowOrderIdentical) {
  ToyEnvironment env = MakeToyEnvironment();
  HydraRegenerator hydra(env.schema);
  auto result = hydra.Regenerate(env.ccs);
  ASSERT_TRUE(result.ok());
  TupleGenerator gen(result->summary);
  const int s = env.schema.RelationIndex("S");
  const int cols = env.schema.relation(s).num_attributes();

  GeneratorScanOp sequential(&gen, s, cols);
  const auto base = Drain(&sequential);
  for (int threads : {2, 8}) {
    ExecContext ctx(ExecOptions{threads, 13});
    GeneratorScanOp scan(&gen, s, cols, &ctx);
    EXPECT_EQ(Drain(&scan), base) << threads << " threads";
  }
}

TEST(ParallelOperatorsTest, AggregateIdenticalAcrossThreadCounts) {
  Table t(2);
  for (int64_t i = 0; i < 10000; ++i) {
    t.AppendRow({i % 37, i});
  }
  const auto run = [&](ExecContext* ctx) {
    HashAggregateOp agg(
        std::make_unique<TableScanOp>(&t, ctx), {0},
        {{AggregateKind::kCount, -1},
         {AggregateKind::kSum, 1},
         {AggregateKind::kMin, 1},
         {AggregateKind::kMax, 1}},
        ctx);
    return Drain(&agg);
  };
  const auto sequential = run(nullptr);
  EXPECT_EQ(sequential.second.size() / sequential.first, 37u);
  for (int threads : {2, 8}) {
    ExecContext ctx(ExecOptions{threads, 7});
    EXPECT_EQ(run(&ctx), sequential) << threads << " threads";
  }
}

TEST(MorselEdgeCaseTest, EmptyRelation) {
  Table t(3);
  ExecContext ctx(ExecOptions{8, 16});
  TableScanOp scan(&t, &ctx);
  scan.Open();
  RowBlock block;
  EXPECT_FALSE(scan.NextBatch(&block));
  EXPECT_EQ(CountRows(&scan), 0u);
}

TEST(MorselEdgeCaseTest, RelationSmallerThanOneMorsel) {
  Table t(1);
  for (int64_t i = 0; i < 5; ++i) t.AppendRow({i});
  ExecContext ctx(ExecOptions{8, 1 << 20});
  TableScanOp scan(&t, &ctx);
  const auto got = Drain(&scan);
  EXPECT_EQ(got.second, (std::vector<Value>{0, 1, 2, 3, 4}));
}

TEST(MorselEdgeCaseTest, SingleRowMorsels) {
  Table t(1);
  for (int64_t i = 0; i < 17; ++i) t.AppendRow({i});
  ExecContext ctx(ExecOptions{4, 1});
  TableScanOp scan(&t, &ctx);
  const auto got = Drain(&scan);
  ASSERT_EQ(got.second.size(), 17u);
  for (int64_t i = 0; i < 17; ++i) EXPECT_EQ(got.second[i], i);
}

TEST(MorselEdgeCaseTest, MorselBoundaryMidJoinProbe) {
  // Duplicate probe keys straddle every 2-row morsel boundary; duplicate
  // build keys multiply matches. The joined stream must equal the
  // sequential one row for row.
  Table probe(2);
  for (int64_t i = 0; i < 101; ++i) probe.AppendRow({i / 3, i});
  Table build(2);
  for (int64_t i = 0; i < 40; ++i) build.AppendRow({i % 20, 1000 + i});

  const auto run = [&](ExecContext* ctx) {
    HashJoinOp join(std::make_unique<TableScanOp>(&probe, ctx), 0,
                    std::make_unique<TableScanOp>(&build, ctx), 0, ctx);
    return Drain(&join);
  };
  const auto sequential = run(nullptr);
  ASSERT_GT(sequential.second.size(), 0u);
  for (int threads : {2, 8}) {
    ExecContext ctx(ExecOptions{threads, 2});
    EXPECT_EQ(run(&ctx), sequential) << threads << " threads";
  }
}

TEST(SelectionVectorTest, FilterEdgeCases) {
  // The selection-vector path through FilterOp: empty input, all-pass,
  // all-fail, and batches of exactly one row (morsel_rows = 1) must all
  // produce the sequential stream.
  Table empty(2);
  Table t(2);
  for (int64_t i = 0; i < 23; ++i) t.AppendRow({i, 100 + i});
  const auto filter_drain = [](const Table* table, DnfPredicate pred,
                               ExecContext* ctx) {
    FilterOp op(std::make_unique<TableScanOp>(table, ctx), std::move(pred));
    return Drain(&op).second;
  };
  std::vector<Value> all_rows;
  for (int64_t i = 0; i < 23; ++i) {
    all_rows.push_back(i);
    all_rows.push_back(100 + i);
  }
  std::vector<Value> some_rows;
  for (int64_t i = 5; i < 9; ++i) {
    some_rows.push_back(i);
    some_rows.push_back(100 + i);
  }
  ExecContext single_row_morsels(ExecOptions{4, 1});
  for (ExecContext* ctx :
       std::initializer_list<ExecContext*>{nullptr, &single_row_morsels}) {
    EXPECT_TRUE(
        filter_drain(&empty, PredicateOf(AtomRange(0, 0, 100)), ctx).empty());
    // All-pass: every row survives, in order.
    EXPECT_EQ(filter_drain(&t, PredicateOf(AtomRange(0, 0, 100)), ctx),
              all_rows);
    // All-fail: nothing survives.
    EXPECT_TRUE(
        filter_drain(&t, PredicateOf(AtomRange(0, 500, 600)), ctx).empty());
    // Partial: a contiguous band in the middle.
    EXPECT_EQ(filter_drain(&t, PredicateOf(AtomRange(0, 5, 9)), ctx),
              some_rows);
  }
}

TEST(CrossLayoutIdentityTest, ScalarVsSimdAcrossThreadsAndMorsels) {
  // The dispatch contract: the filter+join pipeline's row stream is
  // byte-identical between the scalar and SIMD kernel paths, at every
  // {num_threads, morsel_rows} combination.
  ToyEnvironment env = MakeToyEnvironment();
  HydraRegenerator hydra(env.schema);
  auto result = hydra.Regenerate(env.ccs);
  ASSERT_TRUE(result.ok());
  auto db = MaterializeDatabase(result->summary);
  ASSERT_TRUE(db.ok());
  const Schema& schema = env.schema;
  const int s = schema.RelationIndex("S");
  const int r = schema.RelationIndex("R");
  const int a = schema.relation(s).AttrIndex("A");
  const int sfk = schema.relation(r).AttrIndex("S_fk");
  const int spk = schema.relation(s).PrimaryKeyIndex();

  const auto run = [&](ExecContext* ctx) {
    auto s_scan = std::make_unique<TableScanOp>(&db->table(s), ctx);
    auto s_filtered = std::make_unique<FilterOp>(
        std::move(s_scan), PredicateOf(AtomRange(a, 20, 60)));
    HashJoinOp join(std::make_unique<TableScanOp>(&db->table(r), ctx), sfk,
                    std::move(s_filtered), spk, ctx);
    return Drain(&join);
  };

  kernels::SetSimdEnabled(true);
  const auto baseline = run(nullptr);
  ASSERT_GT(baseline.second.size(), 0u);
  for (const bool simd : {false, true}) {
    kernels::SetSimdEnabled(simd);
    for (const int threads : {1, 2, 8}) {
      for (const int64_t morsel : {311, 4096}) {
        ExecContext ctx(ExecOptions{threads, morsel});
        EXPECT_EQ(run(&ctx), baseline)
            << (simd ? kernels::SimdLevelName() : "scalar") << " x " << threads
            << " threads x morsel " << morsel;
      }
    }
  }
  kernels::SetSimdEnabled(true);
}

TEST(MorselEdgeCaseTest, LimitStopsEarlyOverParallelLeaf) {
  // Early termination leaves in-flight morsels behind; the leaf must drain
  // them cleanly on destruction and still emit the correct prefix.
  Table t(1);
  for (int64_t i = 0; i < 1000; ++i) t.AppendRow({i});
  ExecContext ctx(ExecOptions{8, 3});
  LimitOp limit(std::make_unique<TableScanOp>(&t, &ctx), 10);
  const auto got = Drain(&limit);
  ASSERT_EQ(got.second.size(), 10u);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(got.second[i], i);
}

}  // namespace
}  // namespace hydra
