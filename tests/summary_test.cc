// Unit tests for hydra/summary and hydra/summary_generator.

#include <gtest/gtest.h>

#include "hydra/formulator.h"
#include "hydra/preprocessor.h"
#include "hydra/summary_generator.h"
#include "lp/integerize.h"
#include "lp/simplex.h"
#include "workload/toy.h"

namespace hydra {
namespace {

TEST(RelationSummaryTest, PrefixSumsAndTupleLookup) {
  RelationSummary rs;
  rs.relation = 0;
  rs.attr_indices = {1};
  rs.rows = {{{10}, 3}, {{20}, 1}, {{30}, 4}};
  rs.Finalize();
  EXPECT_EQ(rs.TotalCount(), 8);
  EXPECT_EQ(rs.prefix_counts, (std::vector<int64_t>{0, 3, 4}));
  EXPECT_EQ(rs.RowIndexForTuple(0), 0);
  EXPECT_EQ(rs.RowIndexForTuple(2), 0);
  EXPECT_EQ(rs.RowIndexForTuple(3), 1);
  EXPECT_EQ(rs.RowIndexForTuple(4), 2);
  EXPECT_EQ(rs.RowIndexForTuple(7), 2);
}

TEST(ViewSummaryTest, TotalCount) {
  ViewSummary vs;
  vs.rows = {{{1, 2}, 5}, {{3, 4}, 7}};
  EXPECT_EQ(vs.TotalCount(), 12);
}

TEST(DatabaseSummaryTest, ByteSizeCountsRows) {
  DatabaseSummary s;
  s.relations.resize(1);
  s.relations[0].rows = {{{1, 2, 3}, 10}};
  const uint64_t sz = s.ByteSize();
  EXPECT_GT(sz, 3 * sizeof(Value));
  EXPECT_LT(sz, 4096u);
}

class ToySummaryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = MakeToyEnvironment();
    Preprocessor pre(env_.schema);
    auto views = pre.BuildViews();
    ASSERT_TRUE(views.ok());
    views_ = std::move(*views);
    auto mapped = pre.MapConstraints(views_, env_.ccs);
    ASSERT_TRUE(mapped.ok());
    mapped_ = std::move(*mapped);
  }

  ViewSummary SolveAndSummarize(int rel) {
    auto lp = FormulateViewLp(views_[rel], mapped_[rel]);
    EXPECT_TRUE(lp.ok());
    std::vector<int64_t> ints;
    if (lp->problem.num_vars() > 0) {
      auto sol = SolveFeasibility(lp->problem);
      EXPECT_TRUE(sol.ok());
      ints = IntegerizeSolution(lp->problem, sol->values).values;
    }
    SummaryGenerator gen(env_.schema);
    auto vs = gen.BuildViewSummary(views_[rel], *lp, ints);
    EXPECT_TRUE(vs.ok());
    return std::move(*vs);
  }

  ToyEnvironment env_;
  std::vector<View> views_;
  std::vector<std::vector<ViewConstraint>> mapped_;
};

TEST_F(ToySummaryTest, ViewSummaryTotalsMatchRowCounts) {
  const int r = env_.schema.RelationIndex("R");
  const int s = env_.schema.RelationIndex("S");
  EXPECT_EQ(SolveAndSummarize(r).TotalCount(), 80000);
  EXPECT_EQ(SolveAndSummarize(s).TotalCount(), 700);
}

TEST_F(ToySummaryTest, ViewSummarySatisfiesConstraints) {
  const int r = env_.schema.RelationIndex("R");
  const ViewSummary vs = SolveAndSummarize(r);
  // Find the two join CCs in view space and verify the summed counts.
  for (const ViewConstraint& vc : mapped_[r]) {
    if (vc.predicate.IsTrue()) continue;
    int64_t count = 0;
    for (const SolutionRow& row : vs.rows) {
      if (vc.predicate.Eval(row.values)) count += row.count;
    }
    EXPECT_EQ(count, static_cast<int64_t>(vc.cardinality)) << vc.label;
  }
}

TEST_F(ToySummaryTest, DatabaseSummaryReferentialConsistency) {
  std::vector<ViewSummary> summaries;
  for (int rel = 0; rel < env_.schema.num_relations(); ++rel) {
    summaries.push_back(SolveAndSummarize(rel));
  }
  SummaryGenerator gen(env_.schema);
  auto db = gen.BuildDatabaseSummary(views_, std::move(summaries));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->relations.size(), 3u);

  // Every FK value must be a valid PK (i.e. < target total count).
  const int r = env_.schema.RelationIndex("R");
  const RelationSummary& rr = db->relations[r];
  for (const SolutionRow& row : rr.rows) {
    for (size_t i = 0; i < rr.attr_indices.size(); ++i) {
      const Attribute& attr =
          env_.schema.relation(r).attribute(rr.attr_indices[i]);
      if (attr.kind != AttributeKind::kForeignKey) continue;
      EXPECT_GE(row.values[i], 0);
      EXPECT_LT(row.values[i],
                db->relations[attr.fk_target].TotalCount());
    }
  }
}

TEST_F(ToySummaryTest, ExtraTuplesAreScaleFreeSmall) {
  std::vector<ViewSummary> summaries;
  for (int rel = 0; rel < env_.schema.num_relations(); ++rel) {
    summaries.push_back(SolveAndSummarize(rel));
  }
  SummaryGenerator gen(env_.schema);
  auto db = gen.BuildDatabaseSummary(views_, std::move(summaries));
  ASSERT_TRUE(db.ok());
  // The additive error is bounded by the number of summary rows, not by the
  // 80000-tuple data scale.
  EXPECT_LT(db->TotalExtraTuples(), 50u);
}

TEST_F(ToySummaryTest, SummaryIsMinuscule) {
  std::vector<ViewSummary> summaries;
  for (int rel = 0; rel < env_.schema.num_relations(); ++rel) {
    summaries.push_back(SolveAndSummarize(rel));
  }
  SummaryGenerator gen(env_.schema);
  auto db = gen.BuildDatabaseSummary(views_, std::move(summaries));
  ASSERT_TRUE(db.ok());
  // ~82K tuples summarized in well under 64 KiB.
  EXPECT_LT(db->ByteSize(), 64u * 1024);
}

TEST(SummaryGeneratorTest, UnconstrainedViewGetsSingleRow) {
  ToyEnvironment env = MakeToyEnvironment();
  Preprocessor pre(env.schema);
  auto views = pre.BuildViews();
  ASSERT_TRUE(views.ok());
  const int s = env.schema.RelationIndex("S");
  auto lp = FormulateViewLp((*views)[s], {});
  ASSERT_TRUE(lp.ok());
  SummaryGenerator gen(env.schema);
  auto vs = gen.BuildViewSummary((*views)[s], *lp, {});
  ASSERT_TRUE(vs.ok());
  ASSERT_EQ(vs->rows.size(), 1u);
  EXPECT_EQ(vs->rows[0].count, 700);
  // Left-boundary instantiation at the domain minimum.
  EXPECT_EQ(vs->rows[0].values[0], 0);
}

}  // namespace
}  // namespace hydra
