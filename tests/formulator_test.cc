// Unit tests for hydra/formulator: LP structure, solvability, consistency.

#include <gtest/gtest.h>

#include "hydra/formulator.h"
#include "hydra/preprocessor.h"
#include "lp/integerize.h"
#include "lp/simplex.h"
#include "workload/toy.h"

namespace hydra {
namespace {

View SimpleView(int columns, int64_t width, uint64_t total) {
  View v;
  v.relation = 0;
  for (int c = 0; c < columns; ++c) {
    v.columns.push_back(AttrRef{0, c});
    v.domains.push_back(Interval(0, width));
  }
  v.total_rows = total;
  return v;
}

ViewConstraint Vc(DnfPredicate p, uint64_t k, const std::string& label) {
  ViewConstraint vc;
  vc.predicate = std::move(p);
  vc.cardinality = k;
  vc.label = label;
  return vc;
}

TEST(FormulatorTest, PersonExampleFourVariables) {
  // Section 3.2's Person view: the LP must have exactly the 4 region
  // variables of Figure 4b (single sub-view, no consistency constraints).
  View v = SimpleView(2, 100, 8000);
  std::vector<ViewConstraint> vcs = {
      Vc(PredicateAllOf({AtomLess(0, 40), AtomLess(1, 40)}), 1000, "c1"),
      Vc(PredicateAllOf({AtomRange(0, 20, 60), AtomRange(1, 20, 60)}), 2000,
         "c2"),
  };
  auto lp = FormulateViewLp(v, vcs);
  ASSERT_TRUE(lp.ok()) << lp.status().ToString();
  EXPECT_EQ(lp->problem.num_vars(), 4);
  EXPECT_EQ(lp->subviews.size(), 1u);
  // 1 total + 2 CC rows.
  EXPECT_EQ(lp->problem.num_constraints(), 3);

  auto sol = SolveFeasibility(lp->problem);
  ASSERT_TRUE(sol.ok());
  EXPECT_LT(lp->problem.MaxViolation(sol->values), 1e-6);
}

TEST(FormulatorTest, TrueCcOverridesTotalRows) {
  View v = SimpleView(1, 10, 500);
  std::vector<ViewConstraint> vcs = {Vc(DnfPredicate::True(), 777, "size")};
  auto lp = FormulateViewLp(v, vcs);
  ASSERT_TRUE(lp.ok());
  EXPECT_EQ(lp->total_rows, 777u);
}

TEST(FormulatorTest, NoConstraintsNoVariables) {
  View v = SimpleView(2, 10, 100);
  auto lp = FormulateViewLp(v, {});
  ASSERT_TRUE(lp.ok());
  EXPECT_EQ(lp->problem.num_vars(), 0);
  EXPECT_TRUE(lp->subviews.empty());
}

TEST(FormulatorTest, FalseCcRejected) {
  View v = SimpleView(1, 10, 100);
  auto lp = FormulateViewLp(v, {Vc(DnfPredicate::False(), 5, "bad")});
  EXPECT_FALSE(lp.ok());
}

TEST(FormulatorTest, SharedColumnCreatesConsistencyRows) {
  // CCs on (0,1) and (1,2): two sub-views sharing column 1; the LP must
  // carry consistency rows tying the marginals.
  View v = SimpleView(3, 100, 1000);
  std::vector<ViewConstraint> vcs = {
      Vc(PredicateAllOf({AtomRange(0, 10, 50), AtomRange(1, 20, 60)}), 300,
         "ab"),
      Vc(PredicateAllOf({AtomRange(1, 30, 80), AtomRange(2, 5, 95)}), 400,
         "bc"),
  };
  auto lp = FormulateViewLp(v, vcs);
  ASSERT_TRUE(lp.ok());
  ASSERT_EQ(lp->subviews.size(), 2u);
  // More rows than just totals (2) + CCs (2) means consistency rows exist.
  EXPECT_GT(lp->problem.num_constraints(), 4);
  EXPECT_FALSE(lp->shared_cuts.empty());

  auto sol = SolveFeasibility(lp->problem);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_LT(lp->problem.MaxViolation(sol->values), 1e-6);

  // Solved integer counts per region: both sub-views total 1000 and CCs hold.
  const auto ints = IntegerizeSolution(lp->problem, sol->values);
  EXPECT_EQ(ints.max_absolute_violation, 0);
  for (const SubViewLp& sv : lp->subviews) {
    int64_t total = 0;
    for (int r = 0; r < sv.partition.num_regions(); ++r) {
      total += ints.values[sv.first_var + r];
    }
    EXPECT_EQ(total, 1000);
  }
}

TEST(FormulatorTest, RegionsRespectSharedCutsAfterSplitting) {
  View v = SimpleView(3, 100, 1000);
  std::vector<ViewConstraint> vcs = {
      Vc(PredicateAllOf({AtomRange(0, 10, 50), AtomRange(1, 20, 60)}), 300,
         "ab"),
      Vc(PredicateAllOf({AtomRange(1, 30, 80), AtomRange(2, 5, 95)}), 400,
         "bc"),
  };
  auto lp = FormulateViewLp(v, vcs);
  ASSERT_TRUE(lp.ok());
  // Every region of every sub-view must lie within one elementary cell along
  // each shared column.
  for (const SubViewLp& sv : lp->subviews) {
    for (size_t d = 0; d < sv.subview.columns.size(); ++d) {
      const int col = sv.subview.columns[d];
      const std::vector<int64_t>* cuts = nullptr;
      for (const auto& [c, cs] : lp->shared_cuts) {
        if (c == col) cuts = &cs;
      }
      if (cuts == nullptr) continue;
      for (const Region& region : sv.partition.regions) {
        // Cell index of the region's min along this dim must equal the cell
        // index of its max.
        int64_t mn = INT64_MAX, mx = INT64_MIN;
        for (const Block& b : region.blocks) {
          mn = std::min(mn, b.dims[d].Min());
          mx = std::max(mx, b.dims[d].Max());
        }
        const auto cell_of = [&](int64_t val) {
          return std::upper_bound(cuts->begin(), cuts->end(), val) -
                 cuts->begin();
        };
        EXPECT_EQ(cell_of(mn), cell_of(mx));
      }
    }
  }
}

TEST(FormulatorTest, ToyRviewLpSolvable) {
  ToyEnvironment env = MakeToyEnvironment();
  Preprocessor pre(env.schema);
  auto views = pre.BuildViews();
  ASSERT_TRUE(views.ok());
  auto mapped = pre.MapConstraints(*views, env.ccs);
  ASSERT_TRUE(mapped.ok());
  const int r = env.schema.RelationIndex("R");
  auto lp = FormulateViewLp((*views)[r], (*mapped)[r]);
  ASSERT_TRUE(lp.ok()) << lp.status().ToString();
  EXPECT_GT(lp->problem.num_vars(), 0);
  auto sol = SolveFeasibility(lp->problem);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_LT(lp->problem.MaxViolation(sol->values), 1e-5);
}

TEST(FormulatorTest, InfeasibleCcsDetected) {
  // Sub-count exceeds the total: no database can satisfy this.
  View v = SimpleView(1, 100, 10);
  std::vector<ViewConstraint> vcs = {
      Vc(PredicateOf(AtomRange(0, 0, 50)), 500, "too_big"),
  };
  auto lp = FormulateViewLp(v, vcs);
  ASSERT_TRUE(lp.ok());
  EXPECT_FALSE(SolveFeasibility(lp->problem).ok());
}

TEST(FormulatorTest, DnfConstraintFormulated) {
  View v = SimpleView(2, 100, 1000);
  DnfPredicate dnf =
      PredicateAllOf({AtomLess(0, 30), AtomLess(1, 30)})
          .Or(PredicateOf(AtomGreaterEqual(0, 70)));
  auto lp = FormulateViewLp(v, {Vc(dnf, 250, "dnf")});
  ASSERT_TRUE(lp.ok());
  auto sol = SolveFeasibility(lp->problem);
  ASSERT_TRUE(sol.ok());
  // Verify the CC row: regions satisfying the DNF sum to 250.
  const auto ints = IntegerizeSolution(lp->problem, sol->values);
  int64_t satisfied = 0;
  const SubViewLp& sv = lp->subviews[0];
  for (int r = 0; r < sv.partition.num_regions(); ++r) {
    if (sv.partition.regions[r].SatisfiesConstraint(0)) {
      satisfied += ints.values[sv.first_var + r];
    }
  }
  EXPECT_EQ(satisfied, 250);
}

}  // namespace
}  // namespace hydra
