// Tests for the DataSynth baseline: grid counting, crash emulation,
// sampling-based regeneration.

#include <gtest/gtest.h>

#include "datasynth/datasynth.h"
#include "hydra/regenerator.h"
#include "workload/toy.h"

namespace hydra {
namespace {

TEST(DataSynthTest, CountLpVariablesOnToy) {
  ToyEnvironment env = MakeToyEnvironment();
  DataSynthRegenerator ds(env.schema);
  auto counts = ds.CountLpVariables(env.ccs, 1ull << 40);
  ASSERT_TRUE(counts.ok()) << counts.status().ToString();
  const int r = env.schema.RelationIndex("R");
  const int s = env.schema.RelationIndex("S");
  // R's sub-view (A, C): A has cuts {20,60} over [0,100) → 3 intervals; C has
  // cuts {2,3} over [0,10) → 3 intervals; grid = 9 cells.
  EXPECT_EQ((*counts)[r], 9u);
  // S's sub-view (A): 3 intervals.
  EXPECT_EQ((*counts)[s], 3u);
}

TEST(DataSynthTest, GridAtLeastAsLargeAsRegionCount) {
  ToyEnvironment env = MakeToyEnvironment();
  DataSynthRegenerator ds(env.schema);
  auto grid = ds.CountLpVariables(env.ccs, 1ull << 40);
  ASSERT_TRUE(grid.ok());
  HydraRegenerator hydra(env.schema);
  auto result = hydra.Regenerate(env.ccs);
  ASSERT_TRUE(result.ok());
  for (const ViewReport& v : result->views) {
    EXPECT_GE((*grid)[v.relation], v.lp_variables)
        << "relation " << v.relation;
  }
}

TEST(DataSynthTest, CrashOnVariableBudget) {
  ToyEnvironment env = MakeToyEnvironment();
  DataSynthOptions options;
  options.simplex.max_variables = 4;  // below the 9-cell grid
  DataSynthRegenerator ds(env.schema, options);
  auto result = ds.Regenerate(env.ccs);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

class DataSynthRegenerateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = MakeToyEnvironment();
    // Shrink the toy sizes so sampling-based instantiation stays fast.
    for (auto& cc : env_.ccs) cc.cardinality /= 20;
    env_.schema.mutable_relation(env_.schema.RelationIndex("R"))
        .set_row_count(4000);
    env_.schema.mutable_relation(env_.schema.RelationIndex("S"))
        .set_row_count(35);
    env_.schema.mutable_relation(env_.schema.RelationIndex("T"))
        .set_row_count(75);
  }
  ToyEnvironment env_;
};

TEST_F(DataSynthRegenerateTest, ProducesFullDatabase) {
  DataSynthRegenerator ds(env_.schema);
  auto result = ds.Regenerate(env_.ccs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const int r = env_.schema.RelationIndex("R");
  EXPECT_GE(result->database.RowCount(r), 4000u);
  EXPECT_TRUE(result->database.CheckReferentialIntegrity().ok());
}

TEST_F(DataSynthRegenerateTest, SamplingIntroducesBoundedError) {
  DataSynthRegenerator ds(env_.schema);
  auto result = ds.Regenerate(env_.ccs);
  ASSERT_TRUE(result.ok());
  // σ_{A∈[20,60)}(S) should be near 20 (= 400/20) but, unlike Hydra, is not
  // guaranteed exact — that is the whole point of the baseline.
  const int s = env_.schema.RelationIndex("S");
  const int a = env_.schema.relation(s).AttrIndex("A");
  int64_t count = 0;
  result->database.Scan(s, [&](const Row& row) {
    if (row[a] >= 20 && row[a] < 60) ++count;
  });
  EXPECT_GT(count, 0);
  EXPECT_LT(count, 60);
}

TEST_F(DataSynthRegenerateTest, ReportsViewDiagnostics) {
  DataSynthRegenerator ds(env_.schema);
  auto result = ds.Regenerate(env_.ccs);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->views.size(), 3u);
  for (const auto& v : result->views) {
    EXPECT_GE(v.lp_variables, 0u);
  }
  EXPECT_GE(result->lp_seconds, 0);
  EXPECT_GT(result->instantiate_seconds, 0);
}

TEST_F(DataSynthRegenerateTest, DeterministicForSeed) {
  DataSynthOptions options;
  options.seed = 99;
  DataSynthRegenerator ds1(env_.schema, options);
  DataSynthRegenerator ds2(env_.schema, options);
  auto r1 = ds1.Regenerate(env_.ccs);
  auto r2 = ds2.Regenerate(env_.ccs);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  const int r = env_.schema.RelationIndex("R");
  ASSERT_EQ(r1->database.RowCount(r), r2->database.RowCount(r));
  EXPECT_EQ(r1->database.table(r).data(), r2->database.table(r).data());
}

}  // namespace
}  // namespace hydra
