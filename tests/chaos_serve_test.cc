// Chaos harness for the dynamic-regeneration service (docs/robustness.md):
// the fig_serve-style mixed workload runs under a seeded random failpoint
// schedule — injected load errors, scheduler-grant delays, dispatch delays —
// plus cancellation, deadlines, shedding, and graceful shutdown. The
// invariants under fault:
//
//   * every client finishes with OK or a clean failure-domain Status —
//     no crash, no deadlock (ctest TIMEOUT guards), no leak (ASan/TSan
//     jobs run this test in CI);
//   * a stream that succeeds after faults + retries is byte-identical to
//     the fault-free run — faults may change pacing, never content.
//
// The schedule seed comes from HYDRA_CHAOS_SEED (fixed default), so a CI
// failure reproduces locally by exporting the printed seed.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "hydra/regenerator.h"
#include "hydra/summary_io.h"
#include "hydra/tuple_generator.h"
#include "net/client.h"
#include "net/net_server.h"
#include "serve/serve_api.h"
#include "serve/server.h"
#include "workload/toy.h"

namespace hydra {
namespace {

uint64_t ChaosSeed() {
  const char* env = std::getenv("HYDRA_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260807;  // fixed default: every CI run replays one schedule
}

constexpr uint64_t kFnvSeed = 14695981039346656037ull;

uint64_t HashValues(uint64_t h, const Value* v, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    uint64_t x = static_cast<uint64_t>(v[i]);
    for (int b = 0; b < 8; ++b) {
      h ^= (x >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

// Hashes a block's logical rows in row-major order (layout-independent).
uint64_t HashBlock(uint64_t h, const RowBlock& block) {
  Row row(block.num_columns());
  for (int64_t r = 0; r < block.num_rows(); ++r) {
    block.CopyRowTo(r, row.data());
    h = HashValues(h, row.data(), block.num_columns());
  }
  return h;
}

bool IsCleanFailure(const Status& s) {
  switch (s.code()) {
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
    case StatusCode::kIoError:
      return true;
    default:
      return false;
  }
}

class ChaosServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoint::DisarmAll();
    dir_ = std::filesystem::temp_directory_path() /
           ("hydra_chaos_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    env_ = MakeToyEnvironment();
    HydraRegenerator hydra(env_.schema);
    auto result = hydra.Regenerate(env_.ccs);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    summary_ = std::move(result->summary);
    path_ = (dir_ / "toy.summary").string();
    ASSERT_TRUE(WriteSummary(summary_, path_).ok());
    summary_bytes_ = summary_.ByteSize();
  }
  void TearDown() override {
    Failpoint::DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  std::string path_;
  ToyEnvironment env_;
  DatabaseSummary summary_;
  uint64_t summary_bytes_ = 0;
};

// ---- the mixed workload ---------------------------------------------------
//
// Same shape as serve_test / fig_serve: item c's stream depends only on c,
// so a chaos run's successful items must hash-match the fault-free run.

constexpr int kNumItems = 16;

struct ItemResult {
  bool ok = false;
  uint64_t hash = 0;
  Status error;  // meaningful when !ok
};

ItemResult RunItem(RegenServer& server, const ToyEnvironment& env, int c) {
  ItemResult result;
  const auto fail = [&](const Status& s) {
    result.ok = false;
    result.error = s;
    return result;
  };
  auto sid = server.OpenSession(
      OpenSessionRequest{c % 2 == 0 ? "alpha" : "beta"});
  if (!sid.ok()) return fail(sid.status());
  uint64_t h = kFnvSeed;
  const int kind = c % 3;
  if (kind == 0) {
    CursorSpec spec;
    spec.relation = env.schema.RelationIndex("R");
    const int64_t lo = (c * 37) % 300;
    spec.filter = PredicateOf(AtomRange(/*column=*/1, lo, lo + 200));
    spec.projection = {0, 1};
    spec.begin_rank = c * 1000;
    spec.end_rank = spec.begin_rank + 9000;
    auto cid = server.OpenCursor(*sid, spec);
    if (!cid.ok()) return fail(cid.status());
    RowBlock block;
    for (;;) {
      auto batch = server.NextBatch(*sid, *cid, std::move(block));
      if (!batch.ok()) return fail(batch.status());
      if (batch->done) break;
      h = HashBlock(h, batch->rows);
      block = std::move(batch->rows);
    }
  } else if (kind == 1) {
    const int rel = env.schema.RelationIndex(c % 2 == 0 ? "S" : "T");
    const int64_t rows = c % 2 == 0 ? 700 : 1500;
    for (int i = 0; i < 100; ++i) {
      auto row = server.Lookup(*sid, rel, (i * 97 + c * 13) % rows);
      if (!row.ok()) return fail(row.status());
      h = HashValues(h, row->data(), static_cast<int64_t>(row->size()));
    }
  } else {
    auto aqp = server.ExecuteQuery(*sid, env.query);
    if (!aqp.ok()) return fail(aqp.status());
    for (const AqpStep& step : aqp->steps) {
      h = HashValues(h, reinterpret_cast<const Value*>(&step.cardinality), 1);
    }
  }
  (void)server.CloseSession(*sid);
  result.ok = true;
  result.hash = h;
  return result;
}

std::vector<ItemResult> RunClients(RegenServer& server,
                                   const ToyEnvironment& env, int clients) {
  std::vector<ItemResult> results(kNumItems);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      for (int c = t; c < kNumItems; c += clients) {
        results[c] = RunItem(server, env, c);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  return results;
}

ServeOptions ChaosOptions(uint64_t summary_bytes) {
  ServeOptions options;
  options.num_threads = 4;
  options.cache_bytes = summary_bytes + 64;  // one summary: constant churn
  options.batch_rows = 700;
  options.load_retries = 4;
  options.load_retry_base_ms = 1;
  options.load_retry_max_ms = 4;
  return options;
}

// ---- chaos schedules ------------------------------------------------------

TEST_F(ChaosServeTest, MixedWorkloadSurvivesSeededFaultSchedule) {
  const uint64_t seed = ChaosSeed();
  SCOPED_TRACE("HYDRA_CHAOS_SEED=" + std::to_string(seed));

  // Fault-free reference.
  std::vector<ItemResult> reference;
  {
    RegenServer server(ChaosOptions(summary_bytes_));
    ASSERT_TRUE(server.RegisterSummary("alpha", path_).ok());
    ASSERT_TRUE(server.RegisterSummary("beta", path_).ok());
    reference = RunClients(server, env_, /*clients=*/8);
    for (int c = 0; c < kNumItems; ++c) {
      ASSERT_TRUE(reference[c].ok)
          << "fault-free item " << c << ": " << reference[c].error.ToString();
    }
  }

  // Chaos run: transient load errors (within the retry budget, so loads
  // recover), grant delays stretching held slots, dispatch delays skewing
  // pool timing. All probabilistic decisions hash off the fixed seed.
  const std::string schedule =
      "serve/summary_load=error(UNAVAILABLE,p=0.4,seed=" +
      std::to_string(seed) +
      ");serve/grant=delay(1,p=0.1,seed=" + std::to_string(seed + 1) +
      ");thread_pool/dispatch=delay(1,p=0.02,seed=" + std::to_string(seed + 2) +
      ")";
  {
    RegenServer server(ChaosOptions(summary_bytes_));
    ASSERT_TRUE(server.RegisterSummary("alpha", path_).ok());
    ASSERT_TRUE(server.RegisterSummary("beta", path_).ok());
    ASSERT_TRUE(Failpoint::ArmFromString(schedule).ok());
    const std::vector<ItemResult> chaos = RunClients(server, env_, 8);
    Failpoint::DisarmAll();

    int succeeded = 0;
    for (int c = 0; c < kNumItems; ++c) {
      if (chaos[c].ok) {
        ++succeeded;
        // Faults + retries may change pacing, never content.
        EXPECT_EQ(chaos[c].hash, reference[c].hash)
            << "item " << c << " diverged under chaos";
      } else {
        EXPECT_TRUE(IsCleanFailure(chaos[c].error))
            << "item " << c
            << " failed uncleanly: " << chaos[c].error.ToString();
      }
    }
    // p=0.4 with 4 retries: (almost) every load recovers; the workload is
    // expected to mostly succeed, not merely fail cleanly.
    EXPECT_GT(succeeded, 0);
    const ServeStats stats = server.stats();
    EXPECT_GT(stats.load_retries, 0u);
  }
}

TEST_F(ChaosServeTest, MetricInvariantsHoldUnderFaultStorm) {
  // The observability surface must stay internally consistent no matter
  // what the fault schedule does to pacing, retries, or group membership
  // (docs/observability.md):
  //
  //   * every served batch is covered by an admission grant or a shared-
  //     chunk hit — the fast path is the only grant-free serving;
  //   * scan-group registry totals equal the server's aggregate counters,
  //     exactly, across group churn;
  //   * the process-wide retry counter moves in lockstep with the store's;
  //   * a reaped session is counted exactly once, even when kill paths
  //     race; the snapshot stays deterministic and parseable throughout.
  const uint64_t seed = ChaosSeed();
  SCOPED_TRACE("HYDRA_CHAOS_SEED=" + std::to_string(seed));
  Counter* retry_counter =
      MetricRegistry::FindCounter("serve/summary_load_retries");
  ASSERT_NE(retry_counter, nullptr);
  const uint64_t retries_before = retry_counter->value();

  RegenServer server(ChaosOptions(summary_bytes_));
  ASSERT_TRUE(server.RegisterSummary("alpha", path_).ok());
  ASSERT_TRUE(server.RegisterSummary("beta", path_).ok());
  const std::string schedule =
      "serve/summary_load=error(UNAVAILABLE,p=0.4,seed=" +
      std::to_string(seed) +
      ");serve/grant=delay(1,p=0.1,seed=" + std::to_string(seed + 1) +
      ");thread_pool/dispatch=delay(1,p=0.02,seed=" + std::to_string(seed + 2) +
      ")";
  ASSERT_TRUE(Failpoint::ArmFromString(schedule).ok());
  (void)RunClients(server, env_, /*clients=*/8);
  Failpoint::DisarmAll();

  const ServeStats stats = server.stats();
  EXPECT_GT(stats.batches_served, 0u);
  EXPECT_GT(stats.admission_grants, 0u);
  EXPECT_LE(stats.batches_served,
            stats.admission_grants + stats.shared_chunk_hits);
  // Grants also cover lookups, queries, and empty fills, so they dominate
  // the other admitted-work tallies too.
  EXPECT_GE(stats.admission_grants, stats.admission_waits);

  const ScanGroup::Counters totals = server.scan_group_totals();
  EXPECT_EQ(totals.fills, stats.shared_chunk_fills);
  EXPECT_EQ(totals.hits, stats.shared_chunk_hits);
  EXPECT_EQ(totals.catch_up, stats.catch_up_batches);

  // Only this server loaded summaries since the baseline was taken.
  EXPECT_EQ(retry_counter->value() - retries_before, stats.load_retries);
  EXPECT_GT(stats.load_retries, 0u);

  // Reap-once: orphaned wire sessions are counted exactly when their
  // connection dies — a properly closed session never double-counts.
  {
    NetServer net(&server);
    ASSERT_TRUE(net.Start().ok());
    constexpr int kConns = 3;
    std::vector<std::unique_ptr<NetClient>> clients;
    int orphaned = 0;
    for (int i = 0; i < kConns; ++i) {
      auto client = std::make_unique<NetClient>();
      ASSERT_TRUE(client->Connect("127.0.0.1", net.port()).ok());
      auto first = client->OpenSession(OpenSessionRequest{"alpha"});
      auto second = client->OpenSession(OpenSessionRequest{"beta"});
      ASSERT_TRUE(first.ok() && second.ok());
      if (i == 0) {
        ASSERT_TRUE(client->CloseSession(*first).ok());
        orphaned += 1;  // only the second rides into the disconnect
      } else {
        orphaned += 2;
      }
      clients.push_back(std::move(client));
    }
    for (auto& client : clients) client->Disconnect();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (net.stats().sessions_reaped <
               static_cast<uint64_t>(orphaned) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    // Exactly the orphans — never the cleanly closed session, never a
    // session twice (kill and reap race on the same connection).
    EXPECT_EQ(net.stats().sessions_reaped, static_cast<uint64_t>(orphaned));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(net.stats().sessions_reaped, static_cast<uint64_t>(orphaned));
    net.Stop();
  }

  // The snapshot survives the storm: deterministic bytes, clean parse.
  const MetricsSnapshot snapshot = MetricRegistry::Snapshot();
  const std::string bytes = SerializeMetricsSnapshot(snapshot);
  EXPECT_EQ(bytes, SerializeMetricsSnapshot(MetricRegistry::Snapshot()));
  MetricsSnapshot parsed;
  ASSERT_TRUE(ParseMetricsSnapshot(bytes, &parsed).ok());
  EXPECT_EQ(parsed.counters.size(), snapshot.counters.size());
}

TEST_F(ChaosServeTest, TransientLoadFaultsAreRetriedToSuccess) {
  ServeOptions options = ChaosOptions(summary_bytes_);
  RegenServer server(options);
  ASSERT_TRUE(server.RegisterSummary("alpha", path_).ok());

  // Exactly 2 injected failures with 4 retries budgeted: the very first
  // load must recover without the client ever seeing an error.
  ASSERT_TRUE(
      Failpoint::ArmFromString("serve/summary_load=error(UNAVAILABLE,times=2)")
          .ok());
  const ItemResult faulted = RunItem(server, env_, 0);
  ASSERT_TRUE(faulted.ok) << faulted.error.ToString();
  const ServeStats stats = server.stats();
  EXPECT_GE(stats.load_retries, 2u);

  Failpoint::DisarmAll();
  const ItemResult clean = RunItem(server, env_, 0);
  ASSERT_TRUE(clean.ok);
  EXPECT_EQ(faulted.hash, clean.hash);  // retries never changed the stream
}

TEST_F(ChaosServeTest, ExhaustedRetriesSurfaceTheTransientError) {
  ServeOptions options = ChaosOptions(summary_bytes_);
  options.load_retries = 1;
  RegenServer server(options);
  ASSERT_TRUE(server.RegisterSummary("alpha", path_).ok());
  ASSERT_TRUE(
      Failpoint::ArmFromString("serve/summary_load=error(UNAVAILABLE,times=5)")
          .ok());
  // 1 retry against 5 scheduled failures: the open fails, cleanly.
  EXPECT_EQ(server.OpenSession(OpenSessionRequest{"alpha"}).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(server.stats().load_retries, 1u);
}

// ---- shared-scan faults ---------------------------------------------------

TEST_F(ChaosServeTest, SharedChunkFaultFailsOnlyTheProducingGrant) {
  // serve/shared_chunk fires as a producer claims a group chunk, before any
  // generation: the requesting member sees the clean injected error, the
  // slot resets, and the very next grant (failpoint exhausted) re-produces
  // the same chunk — both members' streams stay byte-identical.
  ServeOptions options;
  options.num_threads = 1;
  options.batch_rows = 8192;
  RegenServer server(options);
  ASSERT_TRUE(server.RegisterSummary("alpha", path_).ok());
  auto sid = server.OpenSession(OpenSessionRequest{"alpha"});
  ASSERT_TRUE(sid.ok());
  CursorSpec spec;
  spec.relation = env_.schema.RelationIndex("R");
  auto a = server.OpenCursor(*sid, spec);
  auto b = server.OpenCursor(*sid, spec);
  ASSERT_TRUE(a.ok() && b.ok());

  ASSERT_TRUE(
      Failpoint::ArmFromString("serve/shared_chunk=error(UNAVAILABLE,times=1)")
          .ok());
  RowBlock block;
  auto faulted = server.NextBatch(*sid, *a, std::move(block));
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kUnavailable);

  // The fault consumed no ranks: both cursors stream to completion and
  // match the direct generator scan.
  uint64_t h_a = kFnvSeed, h_b = kFnvSeed;
  block = RowBlock();
  for (;;) {
    auto batch_a = server.NextBatch(*sid, *a, std::move(block));
    ASSERT_TRUE(batch_a.ok()) << batch_a.status().ToString();
    if (!batch_a->done) h_a = HashBlock(h_a, batch_a->rows);
    auto batch_b = server.NextBatch(*sid, *b, std::move(batch_a->rows));
    ASSERT_TRUE(batch_b.ok()) << batch_b.status().ToString();
    if (!batch_b->done) h_b = HashBlock(h_b, batch_b->rows);
    block = std::move(batch_b->rows);
    if (batch_a->done && batch_b->done) break;
  }
  Failpoint::DisarmAll();
  EXPECT_EQ(h_a, h_b);

  TupleGenerator gen(summary_);
  uint64_t expected = kFnvSeed;
  gen.Scan(spec.relation, [&](const Row& r) {
    expected = HashValues(expected, r.data(), static_cast<int64_t>(r.size()));
  });
  EXPECT_EQ(h_a, expected);
}

TEST_F(ChaosServeTest, SharedScanSurvivesSeededChunkFaultSchedule) {
  // Probabilistic chunk faults + grant delays over a many-member group:
  // every member either finishes byte-identically to the fault-free stream
  // (retrying clean transient errors) or fails cleanly — and the group
  // machinery (slot re-election after a failed producer) never wedges.
  const uint64_t seed = ChaosSeed();
  SCOPED_TRACE("HYDRA_CHAOS_SEED=" + std::to_string(seed));
  ServeOptions options;
  options.num_threads = 4;
  options.batch_rows = 1024;
  RegenServer server(options);
  ASSERT_TRUE(server.RegisterSummary("alpha", path_).ok());

  // Fault-free reference stream hash (identity scan over R).
  uint64_t reference = kFnvSeed;
  {
    TupleGenerator gen(summary_);
    gen.Scan(env_.schema.RelationIndex("R"), [&](const Row& r) {
      reference =
          HashValues(reference, r.data(), static_cast<int64_t>(r.size()));
    });
  }

  ASSERT_TRUE(Failpoint::ArmFromString(
                  "serve/shared_chunk=error(UNAVAILABLE,p=0.1,seed=" +
                  std::to_string(seed) +
                  ");serve/grant=delay(1,p=0.05,seed=" +
                  std::to_string(seed + 1) + ")")
                  .ok());
  constexpr int kMembers = 6;
  std::vector<uint64_t> hashes(kMembers, 0);
  std::vector<std::string> errors(kMembers);
  std::vector<std::thread> members;
  for (int t = 0; t < kMembers; ++t) {
    members.emplace_back([&, t] {
      auto sid = server.OpenSession(OpenSessionRequest{"alpha"});
      if (!sid.ok()) {
        errors[t] = sid.status().ToString();
        return;
      }
      CursorSpec spec;
      spec.relation = env_.schema.RelationIndex("R");
      auto cid = server.OpenCursor(*sid, spec);
      if (!cid.ok()) {
        errors[t] = cid.status().ToString();
        return;
      }
      uint64_t h = kFnvSeed;
      RowBlock block;
      for (;;) {
        auto batch = server.NextBatch(*sid, *cid, std::move(block));
        if (!batch.ok()) {
          // Injected chunk faults are transient: retry the same batch (a
          // failed producer consumed no ranks). Anything unclean aborts.
          if (batch.status().code() == StatusCode::kUnavailable) {
            block = RowBlock();
            continue;
          }
          errors[t] = batch.status().ToString();
          return;
        }
        if (batch->done) break;
        h = HashBlock(h, batch->rows);
        block = std::move(batch->rows);
      }
      hashes[t] = h;
      (void)server.CloseSession(*sid);
    });
  }
  for (std::thread& th : members) th.join();
  Failpoint::DisarmAll();
  for (int t = 0; t < kMembers; ++t) {
    ASSERT_EQ(errors[t], "") << "member " << t;
    EXPECT_EQ(hashes[t], reference) << "member " << t << " diverged";
  }
  const ServeStats stats = server.stats();
  EXPECT_GE(stats.peak_group_fanout, 2u);
  EXPECT_GT(stats.shared_chunk_fills, 0u);
}

// ---- cancellation and deadlines -------------------------------------------

TEST_F(ChaosServeTest, CancelledSessionStopsWithinOneBatch) {
  ServeOptions options;
  options.num_threads = 1;
  options.batch_rows = 500;
  RegenServer server(options);
  ASSERT_TRUE(server.RegisterSummary("alpha", path_).ok());

  OpenSessionRequest request{"alpha"};
  request.cancel = std::make_shared<CancelToken>();
  auto sid = server.OpenSession(request);
  ASSERT_TRUE(sid.ok());
  CursorSpec spec;
  spec.relation = env_.schema.RelationIndex("R");
  auto cid = server.OpenCursor(*sid, spec);
  ASSERT_TRUE(cid.ok());

  auto first = server.NextBatch(*sid, *cid);
  ASSERT_TRUE(first.ok() && !first->done);
  const int64_t rank_at_cancel = *server.CursorRank(*sid, *cid);

  request.cancel->Cancel();
  auto after = server.NextBatch(*sid, *cid, std::move(first->rows));
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kCancelled);
  // Within one batch: the cursor advanced at most one grant past the
  // cancellation point (the admission check runs before any generation).
  const int64_t rank_after = *server.CursorRank(*sid, *cid);
  EXPECT_LE(rank_after, rank_at_cancel + options.batch_rows);
  EXPECT_GE(server.stats().cancelled_requests, 1u);

  // CancelSession works the same for sessions without a client token.
  auto sid2 = server.OpenSession(OpenSessionRequest{"alpha"});
  ASSERT_TRUE(sid2.ok());
  ASSERT_TRUE(server.CancelSession(*sid2).ok());
  EXPECT_EQ(server.Lookup(*sid2, 0, 0).status().code(),
            StatusCode::kCancelled);
}

TEST_F(ChaosServeTest, SessionDeadlineExpiresMidStream) {
  ServeOptions options;
  options.num_threads = 1;
  options.batch_rows = 200;
  RegenServer server(options);
  ASSERT_TRUE(server.RegisterSummary("alpha", path_).ok());

  OpenSessionRequest request{"alpha"};
  request.deadline_ms = 30;
  auto sid = server.OpenSession(request);
  ASSERT_TRUE(sid.ok());
  CursorSpec spec;
  spec.relation = env_.schema.RelationIndex("R");
  auto cid = server.OpenCursor(*sid, spec);
  ASSERT_TRUE(cid.ok());

  // Stream until the deadline fires; it must fire (the sleep guarantees
  // expiry) and must surface as kDeadlineExceeded, not a hang or a crash.
  RowBlock block;
  Status terminal = Status::OK();
  for (int i = 0; i < 10000; ++i) {
    auto batch = server.NextBatch(*sid, *cid, std::move(block));
    if (!batch.ok()) {
      terminal = batch.status();
      break;
    }
    if (batch->done) break;
    block = std::move(batch->rows);
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  EXPECT_EQ(terminal.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(server.stats().cancelled_requests, 1u);
}

TEST_F(ChaosServeTest, CancelCutsShortAnEngineQuery) {
  ServeOptions options;
  options.num_threads = 2;
  RegenServer server(options);
  ASSERT_TRUE(server.RegisterSummary("alpha", path_).ok());
  OpenSessionRequest request{"alpha"};
  request.cancel = std::make_shared<CancelToken>();
  request.cancel->Cancel();  // already tripped: fails immediately
  auto sid = server.OpenSession(request);
  ASSERT_TRUE(sid.ok());
  auto aqp = server.ExecuteQuery(*sid, env_.query);
  ASSERT_FALSE(aqp.ok());
  EXPECT_EQ(aqp.status().code(), StatusCode::kCancelled);
}

// ---- shedding -------------------------------------------------------------

TEST_F(ChaosServeTest, OverloadShedsCleanlyAndServedStreamsStayIdentical) {
  const uint64_t seed = ChaosSeed();
  ServeOptions options;
  options.num_threads = 2;
  options.max_inflight = 1;
  options.max_queued = 2;
  options.batch_rows = 700;
  RegenServer server(options);
  ASSERT_TRUE(server.RegisterSummary("alpha", path_).ok());
  ASSERT_TRUE(server.RegisterSummary("beta", path_).ok());

  // Grant delays make the 1-wide window a bottleneck, so the 3-deep queue
  // overflows and sheds. Served items must still hash-match fault-free
  // runs; shed items must fail with exactly kResourceExhausted.
  ASSERT_TRUE(Failpoint::ArmFromString("serve/grant=delay(2,p=0.5,seed=" +
                                       std::to_string(seed) + ")")
                  .ok());
  const std::vector<ItemResult> results = RunClients(server, env_, 16);
  Failpoint::DisarmAll();

  RegenServer clean_server(ChaosOptions(summary_bytes_));
  ASSERT_TRUE(clean_server.RegisterSummary("alpha", path_).ok());
  ASSERT_TRUE(clean_server.RegisterSummary("beta", path_).ok());
  for (int c = 0; c < kNumItems; ++c) {
    if (results[c].ok) {
      const ItemResult reference = RunItem(clean_server, env_, c);
      ASSERT_TRUE(reference.ok);
      EXPECT_EQ(results[c].hash, reference.hash) << "item " << c;
    } else {
      EXPECT_EQ(results[c].error.code(), StatusCode::kResourceExhausted)
          << "item " << c << ": " << results[c].error.ToString();
    }
  }
}

TEST_F(ChaosServeTest, SessionCapShedsOpens) {
  ServeOptions options;
  options.num_threads = 1;
  options.max_sessions = 2;
  RegenServer server(options);
  ASSERT_TRUE(server.RegisterSummary("alpha", path_).ok());
  auto a = server.OpenSession(OpenSessionRequest{"alpha"});
  auto b = server.OpenSession(OpenSessionRequest{"alpha"});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(server.OpenSession(OpenSessionRequest{"alpha"}).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_GE(server.stats().shed_requests, 1u);
  ASSERT_TRUE(server.CloseSession(*a).ok());
  // Capacity freed.
  EXPECT_TRUE(server.OpenSession(OpenSessionRequest{"alpha"}).ok());
}

// ---- degradation ----------------------------------------------------------

TEST_F(ChaosServeTest, OvercommitDegradesBatchSizeNotContent) {
  ServeOptions options;
  options.num_threads = 1;
  options.cache_bytes = 1;  // every resident summary overcommits the budget
  options.batch_rows = 4096;
  options.min_degraded_batch_rows = 64;
  RegenServer server(options);
  ASSERT_TRUE(server.RegisterSummary("alpha", path_).ok());

  const ItemResult degraded = RunItem(server, env_, 0);
  ASSERT_TRUE(degraded.ok) << degraded.error.ToString();
  EXPECT_GT(server.stats().degraded_batches, 0u);

  RegenServer roomy(ChaosOptions(summary_bytes_));
  ASSERT_TRUE(roomy.RegisterSummary("alpha", path_).ok());
  const ItemResult reference = RunItem(roomy, env_, 0);
  ASSERT_TRUE(reference.ok);
  EXPECT_EQ(degraded.hash, reference.hash);  // smaller quanta, same stream
}

// ---- graceful shutdown ----------------------------------------------------

TEST_F(ChaosServeTest, ShutdownUnderLoadDrainsCleanly) {
  ServeOptions options;
  options.num_threads = 4;
  options.batch_rows = 300;
  auto server = std::make_unique<RegenServer>(options);
  ASSERT_TRUE(server->RegisterSummary("alpha", path_).ok());

  // Streams several long cursors concurrently, then shuts down mid-flight.
  std::atomic<int> batches_before_shutdown{0};
  std::atomic<bool> shutdown_started{false};
  std::atomic<int> unclean{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&] {
      auto sid = server->OpenSession(OpenSessionRequest{"alpha"});
      if (!sid.ok()) {
        if (sid.status().code() != StatusCode::kUnavailable) {
          unclean.fetch_add(1);
        }
        return;
      }
      CursorSpec spec;
      spec.relation = env_.schema.RelationIndex("R");
      auto cid = server->OpenCursor(*sid, spec);
      if (!cid.ok()) {
        unclean.fetch_add(1);
        return;
      }
      RowBlock block;
      for (;;) {
        auto batch = server->NextBatch(*sid, *cid, std::move(block));
        if (!batch.ok()) {
          // After shutdown the only acceptable terminal is kCancelled.
          if (batch.status().code() != StatusCode::kCancelled) {
            unclean.fetch_add(1);
          }
          return;
        }
        if (batch->done) return;  // finished the stream before the drain
        block = std::move(batch->rows);
        if (!shutdown_started.load(std::memory_order_relaxed)) {
          batches_before_shutdown.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Let the clients make real progress before pulling the plug.
  while (batches_before_shutdown.load(std::memory_order_relaxed) < 12) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  shutdown_started.store(true, std::memory_order_relaxed);
  ASSERT_TRUE(server->Shutdown().ok());
  // Post-drain: nothing is admitted or queued, and new opens are refused.
  EXPECT_EQ(server->OpenSession(OpenSessionRequest{"alpha"}).status().code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(server->shutting_down());
  for (std::thread& th : clients) th.join();
  EXPECT_EQ(unclean.load(), 0);
  server.reset();  // double-drain via the destructor must be safe
}

// ---- wire-level faults ----------------------------------------------------
//
// The net/* failpoints (net/accept, net/read_frame, net/write_frame) kill
// live connections as if the peer or the network died mid-frame. The
// invariant mirrors the serve layer's: a client that reconnects and reopens
// its cursor at the last rank it consumed sees one byte-identical stream,
// no matter where the kills landed (docs/net.md "Resume protocol").

// Streams `spec` over TCP, reconnecting and resuming at the last consumed
// rank on every transport failure. Returns false (with `error`) on any
// non-transport failure or when the fault schedule never lets it finish.
bool StreamOverWireWithResume(int port, const CursorSpec& spec,
                              uint64_t* hash, int* drops,
                              std::string* error) {
  uint64_t h = kFnvSeed;
  CursorSpec resume = spec;
  NetClient client;
  SessionHandle sid;
  CursorHandle cid;
  bool open = false;
  RowBlock block;
  const auto transport_failure = [&](const Status& s) {
    return s.code() == StatusCode::kUnavailable && !client.connected();
  };
  for (int failures = 0; failures < 200;) {
    if (!client.connected()) {
      open = false;
      if (!client.Connect("127.0.0.1", port).ok()) {
        ++failures;
        continue;
      }
    }
    if (!open) {
      auto session = client.OpenSession(OpenSessionRequest{"alpha"});
      if (!session.ok()) {
        if (transport_failure(session.status())) {
          ++failures;
          ++*drops;
          continue;
        }
        *error = "open session: " + session.status().ToString();
        return false;
      }
      auto cursor = client.OpenCursor(*session, resume);
      if (!cursor.ok()) {
        if (transport_failure(cursor.status())) {
          ++failures;
          ++*drops;
          continue;
        }
        *error = "open cursor: " + cursor.status().ToString();
        return false;
      }
      sid = *session;
      cid = *cursor;
      open = true;
    }
    auto batch = client.NextBatch(sid, cid, std::move(block));
    if (!batch.ok()) {
      block = RowBlock();
      if (transport_failure(batch.status())) {
        ++failures;
        ++*drops;
        continue;
      }
      *error = "next batch: " + batch.status().ToString();
      return false;
    }
    if (batch->done) {
      *hash = h;
      return true;
    }
    h = HashBlock(h, batch->rows);
    resume.begin_rank = batch->rank;
    block = std::move(batch->rows);
  }
  *error = "fault schedule never let the stream finish";
  return false;
}

TEST_F(ChaosServeTest, NetKillMidStreamResumesByteIdentical) {
  ServeOptions options;
  options.num_threads = 2;
  options.batch_rows = 1024;
  RegenServer server(options);
  ASSERT_TRUE(server.RegisterSummary("alpha", path_).ok());
  NetServer net(&server);
  ASSERT_TRUE(net.Start().ok());

  const int r = env_.schema.RelationIndex("R");
  uint64_t reference = kFnvSeed;
  {
    TupleGenerator gen(summary_);
    gen.Scan(r, [&](const Row& row) {
      reference =
          HashValues(reference, row.data(), static_cast<int64_t>(row.size()));
    });
  }

  CursorSpec spec;
  spec.relation = r;
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net.port()).ok());
  auto sid = client.OpenSession(OpenSessionRequest{"alpha"});
  ASSERT_TRUE(sid.ok()) << sid.status().ToString();
  auto cid = client.OpenCursor(*sid, spec);
  ASSERT_TRUE(cid.ok());
  uint64_t h = kFnvSeed;
  int64_t resume_rank = 0;
  RowBlock block;
  for (int i = 0; i < 3; ++i) {
    auto batch = client.NextBatch(*sid, *cid, std::move(block));
    ASSERT_TRUE(batch.ok() && !batch->done);
    h = HashBlock(h, batch->rows);
    resume_rank = batch->rank;
    block = std::move(batch->rows);
  }

  // The next response write dies on the wire: the server kills the
  // connection (reaping its session) and the client sees a transport error.
  ASSERT_TRUE(
      Failpoint::ArmFromString("net/write_frame=error(UNAVAILABLE,times=1)")
          .ok());
  auto dropped = client.NextBatch(*sid, *cid);
  Failpoint::DisarmAll();
  ASSERT_FALSE(dropped.ok());
  EXPECT_EQ(dropped.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(client.connected());

  // Reconnect, reopen at the last consumed rank: the concatenation must be
  // the one uninterrupted stream.
  ASSERT_TRUE(client.Connect("127.0.0.1", net.port()).ok());
  auto sid2 = client.OpenSession(OpenSessionRequest{"alpha"});
  ASSERT_TRUE(sid2.ok());
  CursorSpec resumed = spec;
  resumed.begin_rank = resume_rank;
  auto cid2 = client.OpenCursor(*sid2, resumed);
  ASSERT_TRUE(cid2.ok());
  for (;;) {
    auto batch = client.NextBatch(*sid2, *cid2, std::move(block));
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (batch->done) break;
    h = HashBlock(h, batch->rows);
    block = std::move(batch->rows);
  }
  EXPECT_EQ(h, reference);
  EXPECT_GE(net.stats().sessions_reaped, 1u);
  net.Stop();
}

TEST_F(ChaosServeTest, NetSeededKillScheduleConvergesByteIdentical) {
  // All three wire failpoints fire probabilistically — accepts dropped,
  // reads and writes dying mid-frame — while one logical stream runs to
  // completion through reconnect-and-resume.
  const uint64_t seed = ChaosSeed();
  SCOPED_TRACE("HYDRA_CHAOS_SEED=" + std::to_string(seed));
  ServeOptions options;
  options.num_threads = 2;
  options.batch_rows = 1024;
  RegenServer server(options);
  ASSERT_TRUE(server.RegisterSummary("alpha", path_).ok());
  NetServer net(&server);
  ASSERT_TRUE(net.Start().ok());

  const int r = env_.schema.RelationIndex("R");
  uint64_t reference = kFnvSeed;
  {
    TupleGenerator gen(summary_);
    gen.Scan(r, [&](const Row& row) {
      reference =
          HashValues(reference, row.data(), static_cast<int64_t>(row.size()));
    });
  }

  ASSERT_TRUE(
      Failpoint::ArmFromString(
          "net/write_frame=error(UNAVAILABLE,p=0.08,seed=" +
          std::to_string(seed) +
          ");net/read_frame=error(UNAVAILABLE,p=0.04,seed=" +
          std::to_string(seed + 1) +
          ");net/accept=error(UNAVAILABLE,p=0.2,seed=" +
          std::to_string(seed + 2) + ")")
          .ok());
  CursorSpec spec;
  spec.relation = r;
  uint64_t h = 0;
  int drops = 0;
  std::string error;
  const bool finished =
      StreamOverWireWithResume(net.port(), spec, &h, &drops, &error);
  Failpoint::DisarmAll();
  ASSERT_TRUE(finished) << error;
  EXPECT_EQ(h, reference);
  // ~80 batches under p=0.08 write kills: the schedule virtually always
  // lands at least one drop, and every drop reaps the orphaned session.
  EXPECT_GE(drops, 1);
  EXPECT_GE(net.stats().sessions_reaped, 1u);
  EXPECT_GE(net.stats().connections_dropped, 1u);
  net.Stop();
}

}  // namespace
}  // namespace hydra
