// Unit tests for common/: Status, intervals, RNG, text tables.

#include <set>

#include <gtest/gtest.h>

#include "common/interval.h"
#include "common/random.h"
#include "common/status.h"
#include "common/text_table.h"

namespace hydra {
namespace {

// --- Status --------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad domain");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad domain");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad domain");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IO_ERROR");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  HYDRA_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(UseHalf(3, &out).ok());
}

// --- Interval --------------------------------------------------------------

TEST(IntervalTest, BasicProperties) {
  Interval iv(3, 8);
  EXPECT_FALSE(iv.empty());
  EXPECT_EQ(iv.Count(), 5);
  EXPECT_TRUE(iv.Contains(3));
  EXPECT_TRUE(iv.Contains(7));
  EXPECT_FALSE(iv.Contains(8));
  EXPECT_FALSE(iv.Contains(2));
  EXPECT_EQ(iv.ToString(), "[3,8)");
}

TEST(IntervalTest, EmptyWhenDegenerate) {
  EXPECT_TRUE(Interval(5, 5).empty());
  EXPECT_TRUE(Interval(6, 5).empty());
  EXPECT_EQ(Interval(6, 5).Count(), 0);
}

TEST(IntervalTest, Overlaps) {
  EXPECT_TRUE(Interval(0, 5).Overlaps(Interval(4, 10)));
  EXPECT_FALSE(Interval(0, 5).Overlaps(Interval(5, 10)));
  EXPECT_TRUE(Interval(0, 10).Overlaps(Interval(3, 4)));
}

TEST(IntervalTest, Intersect) {
  EXPECT_EQ(Interval(0, 5).Intersect(Interval(3, 9)), Interval(3, 5));
  EXPECT_TRUE(Interval(0, 3).Intersect(Interval(5, 9)).empty());
}

// --- IntervalSet -----------------------------------------------------------

TEST(IntervalSetTest, NormalizesUnsortedOverlapping) {
  IntervalSet s(std::vector<Interval>{{5, 9}, {0, 3}, {2, 6}, {12, 12}});
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0], Interval(0, 9));
}

TEST(IntervalSetTest, MergesAdjacent) {
  IntervalSet s(std::vector<Interval>{{0, 3}, {3, 6}});
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0], Interval(0, 6));
}

TEST(IntervalSetTest, CountAndContains) {
  IntervalSet s(std::vector<Interval>{{0, 3}, {10, 12}});
  EXPECT_EQ(s.Count(), 5);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(2));
  EXPECT_FALSE(s.Contains(3));
  EXPECT_TRUE(s.Contains(11));
  EXPECT_FALSE(s.Contains(12));
  EXPECT_EQ(s.Min(), 0);
  EXPECT_EQ(s.Max(), 11);
}

TEST(IntervalSetTest, IntersectDisjointPieces) {
  IntervalSet a(std::vector<Interval>{{0, 5}, {10, 15}});
  IntervalSet b(std::vector<Interval>{{3, 12}});
  IntervalSet c = a.Intersect(b);
  ASSERT_EQ(c.intervals().size(), 2u);
  EXPECT_EQ(c.intervals()[0], Interval(3, 5));
  EXPECT_EQ(c.intervals()[1], Interval(10, 12));
}

TEST(IntervalSetTest, DifferencePunchesHole) {
  IntervalSet a(Interval(0, 10));
  IntervalSet d = a.Difference(Interval(3, 6));
  ASSERT_EQ(d.intervals().size(), 2u);
  EXPECT_EQ(d.intervals()[0], Interval(0, 3));
  EXPECT_EQ(d.intervals()[1], Interval(6, 10));
}

TEST(IntervalSetTest, DifferenceAcrossPieces) {
  IntervalSet a(std::vector<Interval>{{0, 4}, {6, 10}});
  IntervalSet d = a.Difference(IntervalSet(std::vector<Interval>{{2, 8}}));
  ASSERT_EQ(d.intervals().size(), 2u);
  EXPECT_EQ(d.intervals()[0], Interval(0, 2));
  EXPECT_EQ(d.intervals()[1], Interval(8, 10));
}

TEST(IntervalSetTest, DifferenceEverything) {
  IntervalSet a(Interval(0, 10));
  EXPECT_TRUE(a.Difference(Interval(0, 10)).empty());
  EXPECT_TRUE(a.Difference(Interval(-5, 20)).empty());
}

TEST(IntervalSetTest, UnionMerges) {
  IntervalSet a(Interval(0, 3));
  IntervalSet b(Interval(2, 7));
  IntervalSet u = a.Union(b);
  ASSERT_EQ(u.intervals().size(), 1u);
  EXPECT_EQ(u.Count(), 7);
}

TEST(IntervalSetTest, SplitAtInsidePiece) {
  IntervalSet a(std::vector<Interval>{{0, 4}, {6, 10}});
  auto [lo, hi] = a.SplitAt(7);
  EXPECT_EQ(lo.Count(), 5);  // [0,4) + [6,7)
  EXPECT_EQ(hi.Count(), 3);  // [7,10)
}

TEST(IntervalSetTest, SplitAtBoundaryIsClean) {
  IntervalSet a(Interval(0, 10));
  auto [lo, hi] = a.SplitAt(0);
  EXPECT_TRUE(lo.empty());
  EXPECT_EQ(hi.Count(), 10);
  auto [lo2, hi2] = a.SplitAt(10);
  EXPECT_EQ(lo2.Count(), 10);
  EXPECT_TRUE(hi2.empty());
}

// Algebraic property sweep: for random sets A, B over a small universe,
// set operations agree with element-wise evaluation.
class IntervalSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalSetPropertyTest, OperationsMatchElementwiseSemantics) {
  Rng rng(GetParam());
  const int64_t universe = 40;
  auto random_set = [&]() {
    std::vector<Interval> ivs;
    const int pieces = static_cast<int>(rng.NextInt(0, 5));
    for (int i = 0; i < pieces; ++i) {
      const int64_t lo = rng.NextInt(0, universe);
      ivs.push_back(Interval(lo, rng.NextInt(lo, universe + 1)));
    }
    return IntervalSet(std::move(ivs));
  };
  const IntervalSet a = random_set();
  const IntervalSet b = random_set();
  const IntervalSet inter = a.Intersect(b);
  const IntervalSet diff = a.Difference(b);
  const IntervalSet uni = a.Union(b);
  for (int64_t v = -2; v < universe + 2; ++v) {
    const bool in_a = a.Contains(v);
    const bool in_b = b.Contains(v);
    EXPECT_EQ(inter.Contains(v), in_a && in_b) << "v=" << v;
    EXPECT_EQ(diff.Contains(v), in_a && !in_b) << "v=" << v;
    EXPECT_EQ(uni.Contains(v), in_a || in_b) << "v=" << v;
  }
  // Counts are consistent.
  EXPECT_EQ(inter.Count() + diff.Count(), a.Count());
  EXPECT_EQ(uni.Count(), a.Count() + b.Count() - inter.Count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetPropertyTest,
                         ::testing::Range<uint64_t>(0, 25));

// --- Rng ---------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
    const int64_t v = rng.NextInt(-5, 12);
    EXPECT_GE(v, -5);
    EXPECT_LT(v, 12);
  }
}

TEST(RngTest, BoundedCoversAllValues) {
  Rng rng(10);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(5);
  Rng child = a.Fork();
  EXPECT_NE(a.Next64(), child.Next64());
}

TEST(ZipfTest, SamplesInRangeAndSkewed) {
  Rng rng(17);
  ZipfDistribution zipf(1000, 0.9);
  int64_t low_bucket = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = zipf.Sample(rng);
    ASSERT_LT(v, 1000u);
    if (v < 100) ++low_bucket;
  }
  // Under uniform, ~10% of samples would land below 100; Zipf(0.9) puts far
  // more mass on small ranks.
  EXPECT_GT(low_bucket, n / 3);
}

TEST(ZipfTest, ThetaNearZeroApproachesUniform) {
  Rng rng(18);
  ZipfDistribution zipf(100, 0.05);
  int64_t low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) < 50) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.5, 0.12);
}

TEST(RandomPermutationTest, IsPermutation) {
  Rng rng(4);
  const auto perm = RandomPermutation(100, rng);
  std::set<uint64_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

// --- TextTable --------------------------------------------------------

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"name", "rows"});
  t.AddRow({"item", "1800"});
  t.AddRow({"store_sales", "28800"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("| name        | rows  |"), std::string::npos);
  EXPECT_NE(out.find("| store_sales | 28800 |"), std::string::npos);
}

TEST(TextTableTest, CellFormatsDouble) {
  EXPECT_EQ(TextTable::Cell(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Cell(int64_t{42}), "42");
}

TEST(HistogramTest, RendersBars) {
  const std::string h = RenderHistogram({"a", "bb"}, {10, 5}, 10);
  EXPECT_NE(h.find("a  | ########## 10"), std::string::npos);
  EXPECT_NE(h.find("bb | ##### 5"), std::string::npos);
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KiB");
  EXPECT_EQ(FormatBytes(3ull << 30), "3.0 GiB");
}

TEST(FormatTest, Duration) {
  EXPECT_EQ(FormatDuration(0.0005), "500 us");
  EXPECT_EQ(FormatDuration(0.25), "250.0 ms");
  EXPECT_EQ(FormatDuration(58), "58.0 s");
  EXPECT_EQ(FormatDuration(660), "11.0 min");
  EXPECT_EQ(FormatDuration(5760), "1.6 h");
}

TEST(FormatTest, Count) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(5500000), "5,500,000");
}

}  // namespace
}  // namespace hydra
