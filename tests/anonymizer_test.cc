// Tests for anonymizer/: dictionaries and schema masking.

#include <gtest/gtest.h>

#include "anonymizer/anonymizer.h"
#include "workload/toy.h"

namespace hydra {
namespace {

TEST(ValueDictionaryTest, EncodeAssignsConsecutiveCodes) {
  ValueDictionary dict;
  EXPECT_EQ(dict.Encode("red"), 0);
  EXPECT_EQ(dict.Encode("green"), 1);
  EXPECT_EQ(dict.Encode("red"), 0);  // stable
  EXPECT_EQ(dict.size(), 2);
}

TEST(ValueDictionaryTest, DecodeInvertsEncode) {
  ValueDictionary dict;
  dict.Encode("alpha");
  dict.Encode("beta");
  auto v = dict.Decode(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "beta");
  EXPECT_FALSE(dict.Decode(5).ok());
  EXPECT_FALSE(dict.Decode(-1).ok());
}

TEST(AnonymizerTest, SchemaNamesMasked) {
  ToyEnvironment env = MakeToyEnvironment();
  Anonymizer anon;
  const Schema masked = anon.AnonymizeSchema(env.schema);
  ASSERT_EQ(masked.num_relations(), env.schema.num_relations());
  for (int r = 0; r < masked.num_relations(); ++r) {
    EXPECT_EQ(masked.relation(r).name(), "r" + std::to_string(r));
    // Structure preserved.
    EXPECT_EQ(masked.relation(r).num_attributes(),
              env.schema.relation(r).num_attributes());
    EXPECT_EQ(masked.relation(r).row_count(),
              env.schema.relation(r).row_count());
  }
  EXPECT_TRUE(masked.Validate().ok());
}

TEST(AnonymizerTest, DomainsAndKeysPreserved) {
  ToyEnvironment env = MakeToyEnvironment();
  Anonymizer anon;
  const Schema masked = anon.AnonymizeSchema(env.schema);
  const int s = env.schema.RelationIndex("S");
  const int a = env.schema.relation(s).AttrIndex("A");
  EXPECT_EQ(masked.relation(s).attribute(a).domain,
            env.schema.relation(s).attribute(a).domain);
  EXPECT_EQ(masked.relation(s).PrimaryKeyIndex(),
            env.schema.relation(s).PrimaryKeyIndex());
  const int r = env.schema.RelationIndex("R");
  EXPECT_EQ(masked.relation(r).ForeignKeyIndices(),
            env.schema.relation(r).ForeignKeyIndices());
}

TEST(AnonymizerTest, RelationNameLookup) {
  ToyEnvironment env = MakeToyEnvironment();
  Anonymizer anon;
  anon.AnonymizeSchema(env.schema);
  auto name = anon.AnonymizedRelationName("S");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "r0");
  EXPECT_FALSE(anon.AnonymizedRelationName("unknown").ok());
}

TEST(AnonymizerTest, PerAttributeDictionariesIndependent) {
  Anonymizer anon;
  ValueDictionary& d1 = anon.DictionaryFor(AttrRef{0, 1});
  ValueDictionary& d2 = anon.DictionaryFor(AttrRef{0, 2});
  EXPECT_EQ(d1.Encode("x"), 0);
  EXPECT_EQ(d2.Encode("y"), 0);
  EXPECT_EQ(d1.Encode("y"), 1);
  EXPECT_EQ(&anon.DictionaryFor(AttrRef{0, 1}), &d1);
}

}  // namespace
}  // namespace hydra
