// Dynamic regeneration — the paper's Section 6 scenario: the engine under
// test executes the client's workload with NO materialized data at all; the
// scan operator is replaced by the Tuple Generator, which produces rows
// on demand from the database summary.

#include <cstdio>

#include "common/text_table.h"
#include "engine/executor.h"
#include "hydra/regenerator.h"
#include "hydra/tuple_generator.h"
#include "workload/tpcds.h"
#include "workload/workload_runner.h"

int main() {
  using namespace hydra;

  Schema schema = TpcdsSchema(/*scale_factor=*/8.0);
  auto queries = TpcdsWorkload(schema, TpcdsWorkloadKind::kSimple, 20, 1001);
  auto site = BuildClientSite(schema, DataGenOptions{.seed = 5},
                              std::move(queries));
  if (!site.ok()) {
    std::printf("client site failed: %s\n", site.status().ToString().c_str());
    return 1;
  }

  HydraRegenerator hydra(site->schema);
  auto result = hydra.Regenerate(site->ccs);
  if (!result.ok()) {
    std::printf("regeneration failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }

  // The vendor never materializes anything: the summary IS the database.
  TupleGenerator generator(result->summary);
  std::printf("summary: %s describing %s of data — no tuples stored\n\n",
              FormatBytes(result->summary.ByteSize()).c_str(),
              FormatBytes(site->database.TotalBytes()).c_str());

  // Random access: the paper's "120th row of S" example, generalized.
  const int ss = site->schema.RelationIndex("store_sales");
  Row row;
  generator.GetTuple(ss, 120, &row);
  std::printf("store_sales tuple #120 generated on demand: (");
  for (size_t i = 0; i < row.size(); ++i) {
    std::printf(i ? ", %lld" : "%lld", (long long)row[i]);
  }
  std::printf(")\n\n");

  // Execute the entire workload against the dynamic source.
  Executor executor(site->schema);
  TextTable table({"query", "edges", "max |rel.err| vs client"});
  for (size_t qi = 0; qi < site->queries.size(); ++qi) {
    auto aqp = executor.Execute(site->queries[qi], generator);
    if (!aqp.ok()) {
      std::printf("query failed: %s\n", aqp.status().ToString().c_str());
      return 1;
    }
    double max_err = 0;
    for (size_t s = 0; s < aqp->steps.size(); ++s) {
      const double want =
          static_cast<double>(site->aqps[qi].steps[s].cardinality);
      const double got = static_cast<double>(aqp->steps[s].cardinality);
      max_err = std::max(max_err, std::abs(got - want) / std::max(1.0, want));
    }
    table.AddRow({site->queries[qi].name, std::to_string(aqp->steps.size()),
                  TextTable::Cell(max_err, 4)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nEvery annotated plan edge was reproduced from dynamically generated\n"
      "tuples; the 'database' never touched memory or disk.\n");
  return 0;
}
