// Exabyte modeling — the paper's Section 7.4 / introduction scenario: a
// client faces a problem on exabyte-sized tables; transferring (or even
// regenerating) that data is impossible, but Hydra's summary is built from
// metadata and CCs alone, so the scenario is modeled in seconds.
//
// CODD supplies the scaled metadata; AQP cardinalities are multiplied up
// from a base-scale execution, exactly as in the paper.

#include <cstdio>

#include "codd/metadata.h"
#include "common/text_table.h"
#include "hydra/regenerator.h"
#include "hydra/tuple_generator.h"
#include "workload/tpcds.h"
#include "workload/workload_runner.h"

int main() {
  using namespace hydra;

  // Base-scale client site (stands in for the paper's 100 GB instance).
  Schema schema = TpcdsSchema(/*scale_factor=*/2.0);
  auto queries = TpcdsWorkload(schema, TpcdsWorkloadKind::kSimple, 40, 7007);
  auto site = BuildClientSite(schema, DataGenOptions{.seed = 13},
                              std::move(queries));
  if (!site.ok()) return 1;

  const DatabaseMetadata base_md = CaptureMetadata(site->database);
  const uint64_t base_bytes = base_md.EstimatedBytes(site->schema);

  // Scale the environment so the modeled database reaches ~1 EiB.
  const double factor = double(1ull << 60) / double(base_bytes);
  std::printf("base instance: %s; modeling scale factor: %.3g\n",
              FormatBytes(base_bytes).c_str(), factor);

  Schema exa_schema = site->schema;
  const DatabaseMetadata exa_md = ScaleMetadata(base_md, factor);
  if (!ApplyMetadata(exa_md, &exa_schema).ok()) return 1;
  const auto exa_ccs = ScaleConstraints(site->ccs, factor);

  HydraRegenerator hydra(exa_schema);
  auto result = hydra.Regenerate(exa_ccs);
  if (!result.ok()) {
    std::printf("regeneration failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "\nexabyte summary built in %s — %s of metadata describing %s of "
      "data\n\n",
      FormatDuration(result->total_seconds).c_str(),
      FormatBytes(result->summary.ByteSize()).c_str(),
      FormatBytes(exa_md.EstimatedBytes(exa_schema)).c_str());

  TextTable table({"relation", "modeled rows", "summary groups"});
  for (const RelationSummary& rs : result->summary.relations) {
    if (rs.rows.size() < 2) continue;
    table.AddRow({exa_schema.relation(rs.relation).name(),
                  FormatCount(static_cast<uint64_t>(rs.TotalCount())),
                  std::to_string(rs.rows.size())});
  }
  std::printf("%s\n", table.Render().c_str());

  // Queries can start immediately: generate the first tuples of the biggest
  // relation of the virtual exabyte warehouse.
  TupleGenerator gen(result->summary);
  const int ss = exa_schema.RelationIndex("store_sales");
  std::printf("first 3 tuples of the %s-row store_sales:\n",
              FormatCount(gen.RowCount(ss)).c_str());
  Row row;
  for (int64_t i = 0; i < 3; ++i) {
    gen.GetTuple(ss, i, &row);
    std::printf("  (");
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf(c ? ", %lld" : "%lld", (long long)row[c]);
    }
    std::printf(")\n");
  }
  std::printf("\nThe exabyte test environment is ready for query execution.\n");
  return 0;
}
