// TPC-DS regeneration walk-through — the paper's headline scenario
// (Section 7): a decision-support warehouse with a 131-query complex
// workload is summarized at the vendor site and regenerated with high
// volumetric fidelity.
//
// Pipeline demonstrated here:
//   client: synthetic warehouse -> execute workload -> AQPs -> CCs
//   vendor: Hydra (region-partitioned LPs) -> database summary
//   check : materialize + re-run workload -> per-CC relative error

#include <chrono>
#include <cstdio>

#include "common/text_table.h"
#include "hydra/regenerator.h"
#include "hydra/tuple_generator.h"
#include "workload/tpcds.h"
#include "workload/workload_runner.h"

int main() {
  using namespace hydra;

  // --- Client site --------------------------------------------------------
  Schema schema = TpcdsSchema(/*scale_factor=*/4.0);
  auto queries = TpcdsWorkload(schema, TpcdsWorkloadKind::kComplex,
                               /*num_queries=*/131, /*seed=*/424242);
  std::printf("Building the client warehouse and executing %zu queries...\n",
              queries.size());
  auto site = BuildClientSite(schema, DataGenOptions{.seed = 99},
                              std::move(queries));
  if (!site.ok()) {
    std::printf("client site failed: %s\n", site.status().ToString().c_str());
    return 1;
  }
  std::printf("client database: %s in %d relations\n",
              FormatBytes(site->database.TotalBytes()).c_str(),
              site->schema.num_relations());
  std::printf("cardinality constraints extracted: %zu\n\n", site->ccs.size());

  // --- Vendor site ---------------------------------------------------------
  HydraRegenerator hydra(site->schema);
  auto result = hydra.Regenerate(site->ccs);
  if (!result.ok()) {
    std::printf("regeneration failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }
  std::printf("database summary built in %s (size %s)\n",
              FormatDuration(result->total_seconds).c_str(),
              FormatBytes(result->summary.ByteSize()).c_str());
  std::printf("largest view LP: %s region variables\n\n",
              FormatCount(result->MaxLpVariables()).c_str());

  TextTable views({"view", "sub-views", "LP vars", "LP rows", "solve"});
  for (const ViewReport& v : result->views) {
    if (v.lp_variables == 0) continue;
    views.AddRow({site->schema.relation(v.relation).name(),
                  std::to_string(v.num_subviews),
                  FormatCount(v.lp_variables), FormatCount(v.lp_constraints),
                  FormatDuration(v.formulate_seconds + v.solve_seconds)});
  }
  std::printf("%s\n", views.Render().c_str());

  // --- Fidelity check -------------------------------------------------------
  // The similarity evaluation re-runs the whole workload on the vendor
  // side; ExecOptions fans the scans out over morsels, and the report is
  // identical at any thread count.
  auto db = MaterializeDatabase(result->summary);
  if (!db.ok()) return 1;
  const auto measure = [&](ExecOptions exec, double* seconds) {
    const auto start = std::chrono::steady_clock::now();
    auto r = MeasureVolumetricSimilarity(*site, *db, exec);
    *seconds = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
    return r;
  };
  double t1_seconds = 0, tn_seconds = 0;
  auto report_t1 = measure(ExecOptions{/*num_threads=*/1}, &t1_seconds);
  auto report = measure(ExecOptions{/*num_threads=*/0}, &tn_seconds);
  if (!report.ok() || !report_t1.ok()) return 1;
  std::printf("workload re-execution: %s single-thread, %s with all cores "
              "(%.2fx)\n",
              FormatDuration(t1_seconds).c_str(),
              FormatDuration(tn_seconds).c_str(), t1_seconds / tn_seconds);
  std::printf("volumetric similarity on %zu CCs:\n", report->entries.size());
  for (double err : {0.0, 0.01, 0.1}) {
    std::printf("  within %4.0f%% error: %5.1f%% of CCs\n", err * 100,
                100 * report->FractionWithin(err));
  }
  std::printf("  max error: %.3f, negative deviations: %d\n",
              report->MaxAbsError(), report->CountNegative());
  return 0;
}
