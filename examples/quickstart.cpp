// Quickstart: the paper's Figure 1 scenario end to end.
//
// 1. Declare the client schema (R, S, T) and the cardinality constraints of
//    the example annotated query plan.
// 2. Run the Hydra regenerator to obtain a database summary.
// 3. Materialize a synthetic database from the summary and verify that
//    re-executing the query reproduces the plan's cardinalities.

#include <chrono>
#include <cstdio>

#include "common/logging.h"
#include "common/text_table.h"
#include "engine/executor.h"
#include "hydra/regenerator.h"
#include "hydra/tuple_generator.h"
#include "workload/toy.h"

int main() {
  using namespace hydra;

  // --- 1. Client inputs -------------------------------------------------
  ToyEnvironment env = MakeToyEnvironment();
  std::printf("Client schema: R(80000) -> S(700), T(1500)\n");
  std::printf("Cardinality constraints from the AQP (Figure 1d):\n");
  for (const CardinalityConstraint& cc : env.ccs) {
    std::printf("  %s\n", cc.ToString(env.schema).c_str());
  }

  // --- 2. Regenerate ------------------------------------------------------
  HydraRegenerator hydra(env.schema);
  auto result = hydra.Regenerate(env.ccs);
  if (!result.ok()) {
    std::printf("regeneration failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nDatabase summary generated in %s (%s, %llu extra tuples "
              "for referential integrity)\n",
              FormatDuration(result->total_seconds).c_str(),
              FormatBytes(result->summary.ByteSize()).c_str(),
              (unsigned long long)result->summary.TotalExtraTuples());

  // Show the summary itself — the paper's Figure 5 artifact.
  for (const RelationSummary& rs : result->summary.relations) {
    const Relation& rel = env.schema.relation(rs.relation);
    std::printf("\nSummary of %s (%lld tuples in %zu groups):\n",
                rel.name().c_str(), (long long)rs.TotalCount(),
                rs.rows.size());
    std::vector<std::string> header = {"pk range"};
    for (int a : rs.attr_indices) header.push_back(rel.attribute(a).name);
    header.push_back("NumTuples");
    TextTable table(header);
    for (size_t i = 0; i < rs.rows.size() && i < 8; ++i) {
      std::vector<std::string> row;
      row.push_back(std::to_string(rs.prefix_counts[i]) + "-" +
                    std::to_string(rs.prefix_counts[i] + rs.rows[i].count - 1));
      for (Value v : rs.rows[i].values) row.push_back(std::to_string(v));
      row.push_back(std::to_string(rs.rows[i].count));
      table.AddRow(std::move(row));
    }
    std::printf("%s", table.Render().c_str());
    if (rs.rows.size() > 8) {
      std::printf("  ... %zu more groups\n", rs.rows.size() - 8);
    }
  }

  // --- 3. Verify volumetric similarity -----------------------------------
  auto db = hydra.Materialize(result->summary);
  if (!db.ok()) {
    std::printf("materialization failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  // The engine is morsel-driven: ExecOptions{num_threads, morsel_rows}
  // fans leaf scans out over ScanRange partitions with results identical
  // at any thread count.
  Executor executor(env.schema, ExecOptions{/*num_threads=*/1});
  auto aqp = executor.Execute(env.query, *db);
  if (!aqp.ok()) {
    std::printf("execution failed: %s\n", aqp.status().ToString().c_str());
    return 1;
  }
  std::printf("\nRe-executing the Figure 1b query on the synthetic data:\n");
  TextTable table({"plan edge", "required", "observed"});
  const uint64_t want[] = {400, 900, 50000, 30000};
  for (size_t i = 0; i < aqp->steps.size(); ++i) {
    table.AddRow({aqp->steps[i].label, std::to_string(want[i]),
                  std::to_string(aqp->steps[i].cardinality)});
  }
  std::printf("%s", table.Render().c_str());

  // Same query, single- vs multi-thread: identical plan, scaled wall clock.
  const auto time_execute = [&](ExecOptions exec) {
    Executor ex(env.schema, exec);
    const auto start = std::chrono::steady_clock::now();
    auto timed_aqp = ex.Execute(env.query, *db);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    HYDRA_CHECK_OK(timed_aqp.status());
    return seconds;
  };
  const double t1 = time_execute(ExecOptions{1});
  const double tn = time_execute(ExecOptions{0});  // one per hardware thread
  std::printf("\nquery execution: %s single-thread, %s with all cores "
              "(%.2fx)\n",
              FormatDuration(t1).c_str(), FormatDuration(tn).c_str(),
              t1 / tn);
  std::printf("\nDone: the synthetic database is volumetrically identical.\n");
  return 0;
}
