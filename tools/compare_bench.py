#!/usr/bin/env python3
"""Diff BENCH_*.json trajectory records against a committed baseline.

Every bench binary run with --json leaves a BENCH_<name>.json array of
{name, seconds, iterations} records in its working directory. This tool
compares the current records with the baseline copies committed under
bench/baselines/ and fails (exit 1) when any record's wall clock regressed
by more than --tolerance (default 25%).

Rules:
  * Only benches present in BOTH directories are compared, so adding a new
    bench never fails the gate until its baseline is committed.
  * A record present in the baseline but missing from the current run is a
    failure (lost measurement coverage).
  * New records in the current run are reported as informational.
  * --update copies the current records over the baseline (run it on the
    reference machine when hardware or expected performance changes).
  * --normalize FILE:RECORD divides every measurement by that record's
    seconds *within its own run* before comparing. Use this when the
    comparing machine differs from the one the baseline was recorded on
    (e.g. CI runners): it gates on relative shifts between workloads
    instead of absolute seconds. Tradeoff: a uniform slowdown that scales
    every bench — including the normalization record — equally is
    invisible in this mode, and the normalization record itself always
    compares as 1.0.
  * --normalize may repeat. The first entry is the run-wide divisor (so a
    single entry keeps the historical global behavior); each additional
    entry overrides the divisor for its own FILE. Use a per-file override
    when a file's records are only meaningful as ratios against a sibling
    record — e.g. per-client serve latencies against the single-client
    stream of the same run — rather than against the run-wide anchor.

Typical usage:
  python3 tools/compare_bench.py --baseline bench/baselines --current build
  python3 tools/compare_bench.py --baseline bench/baselines --current build --update
  python3 tools/compare_bench.py --baseline bench/baselines --current build \
      --normalize BENCH_fig14_materialization.json:datasynth_sf32 \
      --normalize BENCH_fig_serve.json:serve_shared_c1
"""

import argparse
import glob
import json
import os
import shutil
import sys


def load_records(path):
    """Returns {record name: seconds} for one BENCH_*.json file."""
    with open(path, "r", encoding="utf-8") as f:
        records = json.load(f)
    out = {}
    for rec in records:
        out[rec["name"]] = float(rec["seconds"])
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="directory holding committed BENCH_*.json files")
    parser.add_argument("--current", required=True,
                        help="directory holding freshly produced BENCH_*.json")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get(
                            "HYDRA_BENCH_TOLERANCE", "0.25")),
                        help="allowed relative slowdown before failing "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--min-seconds", type=float, default=0.01,
                        help="records faster than this in the baseline are "
                             "reported but never fail (timer noise)")
    parser.add_argument("--normalize", metavar="FILE:RECORD",
                        action="append", default=None,
                        help="divide seconds by this record's seconds within "
                             "the same run (cross-machine comparison); the "
                             "first entry applies run-wide, repeats override "
                             "the divisor for their own FILE")
    parser.add_argument("--update", action="store_true",
                        help="copy current records over the baseline instead "
                             "of comparing")
    args = parser.parse_args()

    current_files = sorted(glob.glob(os.path.join(args.current,
                                                  "BENCH_*.json")))
    if args.update:
        os.makedirs(args.baseline, exist_ok=True)
        if not current_files:
            print(f"no BENCH_*.json files found in {args.current}")
            return 1
        for path in current_files:
            dst = os.path.join(args.baseline, os.path.basename(path))
            shutil.copyfile(path, dst)
            print(f"baseline updated: {dst}")
        return 0

    baseline_files = sorted(glob.glob(os.path.join(args.baseline,
                                                   "BENCH_*.json")))
    if not baseline_files:
        print(f"no baseline BENCH_*.json files in {args.baseline}; "
              "run with --update to create them")
        return 1

    def divisors(directory):
        """Returns (run-wide divisor, {fname: override}) from --normalize.

        None signals a missing/zero normalization record (an error: a gate
        that silently fell back to absolute seconds would pass or fail on
        runner speed).
        """
        if not args.normalize:
            return 1.0, {}
        default = None
        per_file = {}
        for entry in args.normalize:
            fname, _, record = entry.partition(":")
            path = os.path.join(directory, fname)
            value = (load_records(path).get(record)
                     if os.path.exists(path) else None)
            if not value:
                print(f"normalization record {entry} missing or zero in "
                      f"{directory}")
                return None
            per_file[fname] = value
            if default is None:
                default = value
        return default, per_file

    base_norm = divisors(args.baseline)
    cur_norm = divisors(args.current)
    if base_norm is None or cur_norm is None:
        return 1

    current_names = {os.path.basename(p) for p in current_files}
    regressions = []
    rows = []
    for base_path in baseline_files:
        fname = os.path.basename(base_path)
        if fname not in current_names:
            print(f"SKIP {fname}: not produced by this run")
            continue
        baseline_raw = load_records(base_path)
        current_raw = load_records(os.path.join(args.current, fname))
        norm_base = base_norm[1].get(fname, base_norm[0])
        norm_cur = cur_norm[1].get(fname, cur_norm[0])
        for name, base_raw_secs in sorted(baseline_raw.items()):
            if name not in current_raw:
                regressions.append(f"{fname}:{name} missing from current run")
                continue
            base_secs = base_raw_secs / norm_base
            cur_secs = current_raw[name] / norm_cur
            ratio = cur_secs / base_secs if base_secs > 0 else float("inf")
            status = "ok"
            if cur_secs > base_secs * (1.0 + args.tolerance):
                # The noise floor applies to the raw wall clock, not the
                # normalized value.
                if base_raw_secs < args.min_seconds:
                    status = "noise"  # too fast to gate on
                else:
                    status = "REGRESSION"
                    regressions.append(
                        f"{fname}:{name} {base_secs:.4f} -> {cur_secs:.4f} "
                        f"({(ratio - 1) * 100:+.1f}%)")
            rows.append((fname, name, base_secs, cur_secs, ratio, status))
        for name in sorted(set(current_raw) - set(baseline_raw)):
            rows.append((fname, name, None, current_raw[name] / norm_cur,
                         None, "new"))

    if not rows:
        print("nothing compared: no bench produced records present in the "
              "baseline")
        return 1

    unit = "" if args.normalize else "s"
    name_width = max(len(f"{f}:{n}") for f, n, *_ in rows)
    print(f"{'record'.ljust(name_width)}  {'baseline':>10}  {'current':>10}"
          f"  {'ratio':>7}  status")
    for fname, name, base_secs, cur_secs, ratio, status in rows:
        base_str = f"{base_secs:.4f}{unit}" if base_secs is not None else "-"
        ratio_str = f"{ratio:7.2f}" if ratio is not None else "      -"
        print(f"{(fname + ':' + name).ljust(name_width)}  {base_str:>10}  "
              f"{cur_secs:.4f}{unit}  {ratio_str}  {status}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.tolerance * 100:.0f}%:")
        for r in regressions:
            print(f"  {r}")
        return 1
    print(f"\nall records within {args.tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
