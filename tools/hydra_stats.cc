// hydra_stats — dump a running server's metrics snapshot over the wire
// (docs/observability.md).
//
// Usage:
//   hydra_stats --port P [--host 127.0.0.1] [--format text|prom]
//
// Fetches the GetMetrics snapshot from the server's TCP front end and
// prints it: `text` (default) is a human-readable table with histogram
// percentiles, `prom` is Prometheus text exposition ready to be scraped
// into a file or piped to a pushgateway.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/metrics.h"
#include "net/client.h"

namespace {

void PrintText(const hydra::MetricsSnapshot& snapshot) {
  if (!snapshot.counters.empty()) {
    std::printf("== counters ==\n");
    for (const auto& c : snapshot.counters) {
      std::printf("%-40s %20" PRIu64 "\n", c.name.c_str(), c.value);
    }
  }
  if (!snapshot.gauges.empty()) {
    std::printf("== gauges ==\n");
    for (const auto& g : snapshot.gauges) {
      std::printf("%-40s %20" PRId64 "\n", g.name.c_str(), g.value);
    }
  }
  if (!snapshot.histograms.empty()) {
    std::printf("== histograms (us) ==\n");
    std::printf("%-40s %10s %12s %10s %10s %10s %10s %10s\n", "name", "count",
                "mean", "p50", "p95", "p99", "p99.9", "max");
    for (const auto& h : snapshot.histograms) {
      const double mean =
          h.count == 0 ? 0.0
                       : static_cast<double>(h.sum) /
                             static_cast<double>(h.count);
      std::printf("%-40s %10" PRIu64 " %12.1f %10" PRIu64 " %10" PRIu64
                  " %10" PRIu64 " %10" PRIu64 " %10" PRIu64 "\n",
                  h.name.c_str(), h.count, mean, h.Percentile(0.50),
                  h.Percentile(0.95), h.Percentile(0.99), h.Percentile(0.999),
                  h.max);
    }
  }
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port P [--host 127.0.0.1] [--format text|prom]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string format = "text";
  int port = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (port <= 0 || (format != "text" && format != "prom")) {
    return Usage(argv[0]);
  }

  hydra::NetClient client;
  if (const hydra::Status s = client.Connect(host, port); !s.ok()) {
    std::fprintf(stderr, "connect %s:%d failed: %s\n", host.c_str(), port,
                 s.ToString().c_str());
    return 1;
  }
  hydra::StatusOr<hydra::MetricsSnapshot> snapshot = client.Metrics();
  if (!snapshot.ok()) {
    std::fprintf(stderr, "GetMetrics failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  if (format == "prom") {
    std::fputs(hydra::PrometheusText(*snapshot).c_str(), stdout);
  } else {
    PrintText(*snapshot);
  }
  return 0;
}
