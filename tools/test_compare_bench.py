#!/usr/bin/env python3
"""Tests for tools/compare_bench.py (the CI perf regression gate).

unittest.TestCase style so the file runs under both `python3 -m unittest`
(what ctest invokes — no third-party deps) and pytest.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "compare_bench.py")


def write_bench(directory, fname, records):
    path = os.path.join(directory, fname)
    with open(path, "w", encoding="utf-8") as f:
        json.dump([{"name": n, "seconds": s, "iterations": 1}
                   for n, s in records.items()], f)
    return path


def run_tool(*args):
    proc = subprocess.run(
        [sys.executable, TOOL, *args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return proc.returncode, proc.stdout


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.baseline = os.path.join(self._tmp.name, "baseline")
        self.current = os.path.join(self._tmp.name, "current")
        os.makedirs(self.baseline)
        os.makedirs(self.current)

    def tearDown(self):
        self._tmp.cleanup()

    def compare(self, *extra):
        return run_tool("--baseline", self.baseline,
                        "--current", self.current, *extra)

    def test_pass_within_tolerance(self):
        write_bench(self.baseline, "BENCH_a.json", {"r1": 1.0, "r2": 0.5})
        write_bench(self.current, "BENCH_a.json", {"r1": 1.2, "r2": 0.55})
        code, out = self.compare()
        self.assertEqual(code, 0, out)
        self.assertIn("all records within", out)

    def test_regression_beyond_25_percent_fails(self):
        write_bench(self.baseline, "BENCH_a.json", {"r1": 1.0})
        write_bench(self.current, "BENCH_a.json", {"r1": 1.3})
        code, out = self.compare()
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)
        self.assertIn("r1", out)

    def test_speedup_never_fails(self):
        write_bench(self.baseline, "BENCH_a.json", {"r1": 1.0})
        write_bench(self.current, "BENCH_a.json", {"r1": 0.2})
        code, out = self.compare()
        self.assertEqual(code, 0, out)

    def test_missing_record_in_current_run_fails(self):
        write_bench(self.baseline, "BENCH_a.json", {"r1": 1.0, "gone": 2.0})
        write_bench(self.current, "BENCH_a.json", {"r1": 1.0})
        code, out = self.compare()
        self.assertEqual(code, 1, out)
        self.assertIn("missing from current run", out)
        self.assertIn("gone", out)

    def test_new_record_is_informational_only(self):
        write_bench(self.baseline, "BENCH_a.json", {"r1": 1.0})
        write_bench(self.current, "BENCH_a.json", {"r1": 1.0, "brandnew": 9.0})
        code, out = self.compare()
        self.assertEqual(code, 0, out)
        self.assertIn("new", out)

    def test_bench_without_baseline_is_skipped(self):
        write_bench(self.baseline, "BENCH_a.json", {"r1": 1.0})
        write_bench(self.current, "BENCH_a.json", {"r1": 1.0})
        write_bench(self.current, "BENCH_b.json", {"slow": 100.0})
        code, out = self.compare()
        self.assertEqual(code, 0, out)

    def test_noise_floor_records_never_fail(self):
        # Records under --min-seconds in the baseline report as noise even
        # when they regress relatively.
        write_bench(self.baseline, "BENCH_a.json", {"tiny": 0.001})
        write_bench(self.current, "BENCH_a.json", {"tiny": 0.005})
        code, out = self.compare()
        self.assertEqual(code, 0, out)
        self.assertIn("noise", out)

    def test_empty_baseline_directory_fails(self):
        write_bench(self.current, "BENCH_a.json", {"r1": 1.0})
        code, out = self.compare()
        self.assertEqual(code, 1, out)
        self.assertIn("--update", out)

    def test_update_rewrites_baseline(self):
        write_bench(self.baseline, "BENCH_a.json", {"r1": 1.0})
        write_bench(self.current, "BENCH_a.json", {"r1": 5.0})
        code, out = self.compare("--update")
        self.assertEqual(code, 0, out)
        with open(os.path.join(self.baseline, "BENCH_a.json"),
                  encoding="utf-8") as f:
            refreshed = {r["name"]: r["seconds"] for r in json.load(f)}
        self.assertEqual(refreshed, {"r1": 5.0})
        # After the rewrite, the same comparison passes.
        code, out = self.compare()
        self.assertEqual(code, 0, out)

    def test_update_with_no_current_records_fails(self):
        code, out = self.compare("--update")
        self.assertEqual(code, 1, out)
        self.assertIn("no BENCH_*.json", out)

    def test_normalization_gates_relative_shifts(self):
        # Both runs share the record "anchor"; every measurement divides by
        # its own run's anchor, so a uniform 10x slowdown passes while a
        # relative regression of one record still fails.
        write_bench(self.baseline, "BENCH_a.json",
                    {"anchor": 1.0, "r1": 2.0})
        write_bench(self.current, "BENCH_a.json",
                    {"anchor": 10.0, "r1": 20.0})
        code, out = self.compare("--normalize", "BENCH_a.json:anchor")
        self.assertEqual(code, 0, out)

        write_bench(self.current, "BENCH_a.json",
                    {"anchor": 10.0, "r1": 40.0})
        code, out = self.compare("--normalize", "BENCH_a.json:anchor")
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)

    def test_normalization_missing_anchor_fails(self):
        write_bench(self.baseline, "BENCH_a.json", {"r1": 1.0})
        write_bench(self.current, "BENCH_a.json", {"r1": 1.0})
        code, out = self.compare("--normalize", "BENCH_a.json:absent")
        self.assertEqual(code, 1, out)
        self.assertIn("missing", out)

    def test_per_file_normalization_override(self):
        # Two entries: the first is the run-wide divisor, the second scopes
        # to BENCH_b.json. b's records gate as ratios against b's own
        # anchor, so a uniform 4x slowdown confined to b still passes while
        # a's gating stays pinned to a's anchor.
        write_bench(self.baseline, "BENCH_a.json", {"anchor": 1.0, "r1": 2.0})
        write_bench(self.baseline, "BENCH_b.json", {"solo": 1.0, "c32": 3.0})
        write_bench(self.current, "BENCH_a.json", {"anchor": 1.0, "r1": 2.0})
        write_bench(self.current, "BENCH_b.json", {"solo": 4.0, "c32": 12.0})
        code, out = self.compare(
            "--normalize", "BENCH_a.json:anchor",
            "--normalize", "BENCH_b.json:solo")
        self.assertEqual(code, 0, out)

        # A relative regression inside b (c32 worsens against b's solo
        # stream) fails even though a is untouched.
        write_bench(self.current, "BENCH_b.json", {"solo": 4.0, "c32": 20.0})
        code, out = self.compare(
            "--normalize", "BENCH_a.json:anchor",
            "--normalize", "BENCH_b.json:solo")
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)
        self.assertIn("c32", out)

    def test_first_normalize_entry_is_run_wide_default(self):
        # A file without its own entry divides by the first entry's record:
        # b regressing against a's anchor fails even with a per-file entry
        # present for a different file.
        write_bench(self.baseline, "BENCH_a.json", {"anchor": 1.0})
        write_bench(self.baseline, "BENCH_b.json", {"r": 1.0})
        write_bench(self.current, "BENCH_a.json", {"anchor": 1.0})
        write_bench(self.current, "BENCH_b.json", {"r": 2.0})
        code, out = self.compare("--normalize", "BENCH_a.json:anchor")
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)

    def test_per_file_normalization_missing_record_fails(self):
        write_bench(self.baseline, "BENCH_a.json", {"anchor": 1.0, "r1": 1.0})
        write_bench(self.current, "BENCH_a.json", {"anchor": 1.0, "r1": 1.0})
        code, out = self.compare(
            "--normalize", "BENCH_a.json:anchor",
            "--normalize", "BENCH_b.json:absent")
        self.assertEqual(code, 1, out)
        self.assertIn("missing", out)

    def test_tolerance_env_override(self):
        write_bench(self.baseline, "BENCH_a.json", {"r1": 1.0})
        write_bench(self.current, "BENCH_a.json", {"r1": 1.4})
        env = dict(os.environ, HYDRA_BENCH_TOLERANCE="0.5")
        proc = subprocess.run(
            [sys.executable, TOOL, "--baseline", self.baseline,
             "--current", self.current],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env)
        self.assertEqual(proc.returncode, 0, proc.stdout)


if __name__ == "__main__":
    unittest.main()
