#!/usr/bin/env python3
"""Maintain and plot the BENCH_*.json perf trajectory across PR history.

Each bench binary run with --json leaves a BENCH_<name>.json array of
{name, seconds, iterations} records. This tool appends one history entry
per run — keyed by commit SHA and date — to a JSON-lines file
(bench/history/history.jsonl by default) and renders the wall-clock
trajectory of every record as an SVG (hand-written, stdlib only, so CI
runners need no plotting stack; a PNG is also written when matplotlib
happens to be importable).

Typical usage (what CI's perf job runs):
  python3 tools/plot_bench_trajectory.py \
      --history bench/history/history.jsonl \
      --records build \
      --commit "$GITHUB_SHA" --date "$(date -u +%Y-%m-%d)" \
      --out-svg bench_trajectory.svg

Seeding from the committed baselines (used once, and by CI when the
history file is missing so the plot always has a reference point):
  python3 tools/plot_bench_trajectory.py \
      --history bench/history/history.jsonl \
      --records bench/baselines --commit baseline --date 1970-01-01

Rules:
  * One JSON-lines entry per commit: re-running with a SHA already in the
    history replaces that entry instead of duplicating it.
  * Entries hold {commit, date, records: {bench file: {record: seconds}}}.
  * The plot is per-record: one series per "file:record" key, log-scale
    seconds against history position, labeled by short SHA.
  * --plot-only renders without appending (e.g. to re-plot the committed
    history).
"""

import argparse
import glob
import json
import math
import os
import sys

# Color cycle chosen to stay distinguishable on white; repeats with dashes.
PALETTE = [
    "#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951",
    "#ff8ab7", "#a463f2", "#97bbf5", "#9c6b4e", "#9498a0",
]


def load_records(path):
    """Returns {record name: seconds} for one BENCH_*.json file."""
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    return {rec["name"]: float(rec["seconds"]) for rec in data}


def read_history(path):
    entries = []
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line:
                    entries.append(json.loads(line))
    return entries


def write_history(path, entries):
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        for e in entries:
            f.write(json.dumps(e, sort_keys=True) + "\n")


def append_entry(entries, commit, date, records_dir):
    files = sorted(glob.glob(os.path.join(records_dir, "BENCH_*.json")))
    if not files:
        print(f"no BENCH_*.json files in {records_dir}")
        return None
    entry = {
        "commit": commit,
        "date": date,
        "records": {
            os.path.basename(p): load_records(p) for p in files
        },
    }
    entries = [e for e in entries if e.get("commit") != commit]
    entries.append(entry)
    return entries


def series_from(entries):
    """Returns ordered {(file:record): [(entry index, seconds), ...]}."""
    series = {}
    for i, e in enumerate(entries):
        for fname, records in sorted(e.get("records", {}).items()):
            for name, secs in sorted(records.items()):
                if secs > 0:
                    series.setdefault(f"{fname[len('BENCH_'):-len('.json')]}"
                                      f":{name}", []).append((i, secs))
    return series


def render_svg(entries, series, path):
    width, height = 960, 540
    margin_l, margin_r, margin_t, margin_b = 70, 280, 40, 60
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    all_secs = [s for pts in series.values() for _, s in pts]
    lo = min(all_secs)
    hi = max(all_secs)
    lo_e = math.floor(math.log10(lo))
    hi_e = math.ceil(math.log10(hi)) if hi > 10 ** math.floor(
        math.log10(hi)) else int(math.log10(hi))
    hi_e = max(hi_e, lo_e + 1)
    n = max(len(entries) - 1, 1)

    def x_of(i):
        return margin_l + plot_w * (i / n)

    def y_of(secs):
        frac = (math.log10(secs) - lo_e) / (hi_e - lo_e)
        return margin_t + plot_h * (1 - frac)

    out = []
    out.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="11">')
    out.append(f'<rect width="{width}" height="{height}" fill="white"/>')
    out.append(
        f'<text x="{margin_l}" y="20" font-size="14" font-weight="bold">'
        f'Bench wall-clock trajectory (log seconds)</text>')

    # Gridlines and y labels at decades.
    for e in range(lo_e, hi_e + 1):
        y = y_of(10 ** e)
        out.append(
            f'<line x1="{margin_l}" y1="{y:.1f}" x2="{margin_l + plot_w}" '
            f'y2="{y:.1f}" stroke="#ddd"/>')
        out.append(
            f'<text x="{margin_l - 8}" y="{y + 4:.1f}" text-anchor="end">'
            f'1e{e}</text>')

    # X labels: short commit per entry.
    for i, e in enumerate(entries):
        x = x_of(i)
        label = str(e.get("commit", "?"))[:9]
        out.append(
            f'<line x1="{x:.1f}" y1="{margin_t}" x2="{x:.1f}" '
            f'y2="{margin_t + plot_h}" stroke="#f3f3f3"/>')
        out.append(
            f'<text x="{x:.1f}" y="{margin_t + plot_h + 16}" '
            f'text-anchor="middle">{label}</text>')
        date = str(e.get("date", ""))
        out.append(
            f'<text x="{x:.1f}" y="{margin_t + plot_h + 30}" '
            f'text-anchor="middle" fill="#888">{date}</text>')

    for idx, (key, pts) in enumerate(sorted(series.items())):
        color = PALETTE[idx % len(PALETTE)]
        dash = "" if idx < len(PALETTE) else ' stroke-dasharray="5,3"'
        points = " ".join(f"{x_of(i):.1f},{y_of(s):.1f}" for i, s in pts)
        if len(pts) > 1:
            out.append(
                f'<polyline fill="none" stroke="{color}" stroke-width="1.5"'
                f'{dash} points="{points}"/>')
        for i, s in pts:
            out.append(
                f'<circle cx="{x_of(i):.1f}" cy="{y_of(s):.1f}" r="2.5" '
                f'fill="{color}"/>')
        ly = margin_t + 14 * idx
        lx = margin_l + plot_w + 12
        out.append(
            f'<line x1="{lx}" y1="{ly - 4}" x2="{lx + 18}" y2="{ly - 4}" '
            f'stroke="{color}" stroke-width="2"{dash}/>')
        out.append(f'<text x="{lx + 24}" y="{ly}">{key}</text>')

    out.append("</svg>")
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(out) + "\n")
    print(f"trajectory plot written to {path}")


def render_png(entries, series, path):
    try:
        import matplotlib  # noqa: F401
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib unavailable; skipping PNG (SVG is canonical)")
        return
    fig, ax = plt.subplots(figsize=(12, 6))
    for key, pts in sorted(series.items()):
        ax.plot([i for i, _ in pts], [s for _, s in pts],
                marker="o", markersize=3, label=key)
    ax.set_yscale("log")
    ax.set_ylabel("seconds")
    ax.set_xticks(range(len(entries)))
    ax.set_xticklabels([str(e.get("commit", "?"))[:9] for e in entries],
                       rotation=45, ha="right")
    ax.legend(fontsize=7, bbox_to_anchor=(1.02, 1), loc="upper left")
    fig.tight_layout()
    fig.savefig(path, dpi=120)
    print(f"trajectory plot written to {path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--history", default="bench/history/history.jsonl")
    parser.add_argument("--records", default=None,
                        help="directory holding this run's BENCH_*.json")
    parser.add_argument("--commit", default="unknown")
    parser.add_argument("--date", default="")
    parser.add_argument("--out-svg", default=None)
    parser.add_argument("--out-png", default=None)
    parser.add_argument("--plot-only", action="store_true",
                        help="render the existing history without appending")
    args = parser.parse_args()

    entries = read_history(args.history)
    if not args.plot_only:
        if args.records is None:
            print("--records is required unless --plot-only")
            return 2
        appended = append_entry(entries, args.commit, args.date, args.records)
        if appended is None:
            return 1
        entries = appended
        write_history(args.history, entries)
        print(f"history now holds {len(entries)} entries: {args.history}")

    if not entries:
        print("history is empty; nothing to plot")
        return 1
    series = series_from(entries)
    if not series:
        print("history holds no positive-seconds records; nothing to plot")
        return 1
    if args.out_svg:
        render_svg(entries, series, args.out_svg)
    if args.out_png:
        render_png(entries, series, args.out_png)
    return 0


if __name__ == "__main__":
    sys.exit(main())
