#include "query/query.h"

namespace hydra {

Status Query::Validate(const Schema& schema) const {
  if (tables.empty()) {
    return Status::InvalidArgument("query " + name + " has no tables");
  }
  if (joins.size() + 1 != tables.size()) {
    return Status::InvalidArgument("query " + name +
                                   ": joins must connect all tables");
  }
  for (const QueryTable& qt : tables) {
    if (qt.relation < 0 || qt.relation >= schema.num_relations()) {
      return Status::InvalidArgument("query " + name + ": bad relation index");
    }
    const Relation& rel = schema.relation(qt.relation);
    for (const Conjunct& c : qt.filter.conjuncts()) {
      for (const Atom& a : c.atoms) {
        if (a.column < 0 || a.column >= rel.num_attributes()) {
          return Status::InvalidArgument("query " + name +
                                         ": filter column out of range");
        }
        if (rel.attribute(a.column).kind != AttributeKind::kData) {
          return Status::InvalidArgument(
              "query " + name + ": filter on key attribute " + rel.name() +
              "." + rel.attribute(a.column).name);
        }
      }
    }
  }
  for (size_t i = 0; i < joins.size(); ++i) {
    const JoinEdge& j = joins[i];
    const int joined_so_far = static_cast<int>(i) + 1;
    if (j.pk_table != joined_so_far && j.fk_table != joined_so_far) {
      return Status::InvalidArgument(
          "query " + name + ": join " + std::to_string(i) +
          " must include table " + std::to_string(joined_so_far));
    }
    if (j.fk_table < 0 || j.fk_table > joined_so_far || j.pk_table < 0 ||
        j.pk_table > joined_so_far) {
      return Status::InvalidArgument("query " + name +
                                     ": join table index out of range");
    }
    const Relation& fk_rel = schema.relation(tables[j.fk_table].relation);
    if (j.fk_attr < 0 || j.fk_attr >= fk_rel.num_attributes() ||
        fk_rel.attribute(j.fk_attr).kind != AttributeKind::kForeignKey) {
      return Status::InvalidArgument("query " + name +
                                     ": join attr is not a foreign key");
    }
    if (fk_rel.attribute(j.fk_attr).fk_target !=
        tables[j.pk_table].relation) {
      return Status::InvalidArgument(
          "query " + name + ": FK does not reference the joined relation");
    }
  }
  return Status::OK();
}

}  // namespace hydra
