// Filter predicates in disjunctive normal form (DNF).
//
// A predicate is a disjunction of conjuncts; a conjunct is a conjunction of
// atoms; an atom constrains a single column to an IntervalSet of values.
// Every comparison (<, <=, >, >=, =, !=, BETWEEN, IN) over the anonymized
// numeric domain reduces to interval-set membership, so this representation
// is closed under the paper's query scope (DNF filters on non-key columns).
//
// Column indices are abstract: in a relation-level filter they index the
// relation's attributes; in a view-level constraint they index the view's
// columns. The owner of the predicate defines the column space.

#ifndef HYDRA_QUERY_PREDICATE_H_
#define HYDRA_QUERY_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/interval.h"

#include "catalog/schema.h"

namespace hydra {

// Sentinels used to express one-sided comparisons without knowing the domain;
// partitioning intersects atoms with the actual domain.
inline constexpr int64_t kValueMin = INT64_MIN / 4;
inline constexpr int64_t kValueMax = INT64_MAX / 4;

// column ∈ values.
struct Atom {
  int column = -1;
  IntervalSet values;

  bool Eval(Value v) const { return values.Contains(v); }
  std::string ToString() const;
};

// Conjunction of atoms. An empty conjunct is TRUE. This is the paper's
// "sub-constraint" (Section 4.2).
struct Conjunct {
  std::vector<Atom> atoms;

  bool Eval(const Row& row) const;
  // Raw-pointer variant for flat row-major batches; the caller guarantees
  // the row covers every atom's column index.
  bool Eval(const Value* row) const;

  // The restriction of this conjunct to `column` (Definition 4.5): the set of
  // values the conjunct permits on that column, intersected with `domain`.
  // Returns the full domain when the conjunct does not mention the column.
  IntervalSet RestrictTo(int column, const Interval& domain) const;

  // Whether the conjunct mentions `column`.
  bool Mentions(int column) const;

  // ANDs another atom in, intersecting with an existing atom on the same
  // column if present.
  void AddAtom(Atom atom);

  std::string ToString() const;
};

// Disjunction of conjuncts. An empty disjunction is FALSE; use True() for the
// trivially-true predicate (one empty conjunct).
class DnfPredicate {
 public:
  DnfPredicate() = default;

  static DnfPredicate True();
  static DnfPredicate False();

  bool IsTrue() const;   // exactly one empty conjunct
  bool IsFalse() const;  // no conjuncts

  bool Eval(const Row& row) const;
  // Raw-pointer variant for flat row-major batches.
  bool Eval(const Value* row) const;

  void AddConjunct(Conjunct c) { conjuncts_.push_back(std::move(c)); }
  const std::vector<Conjunct>& conjuncts() const { return conjuncts_; }

  // Conjunction of two DNF predicates (distributes into DNF: cross product of
  // conjunct lists).
  DnfPredicate And(const DnfPredicate& other) const;
  // Disjunction (concatenation of conjunct lists).
  DnfPredicate Or(const DnfPredicate& other) const;

  // Rewrites every atom's column index through `mapping` (old -> new).
  DnfPredicate RemapColumns(const std::vector<int>& mapping) const;

  // All distinct columns mentioned by any atom, sorted.
  std::vector<int> Columns() const;

  std::string ToString() const;

 private:
  std::vector<Conjunct> conjuncts_;
};

// --- Atom builders -----------------------------------------------------

Atom AtomLess(int column, Value v);          // col <  v
Atom AtomLessEqual(int column, Value v);     // col <= v
Atom AtomGreater(int column, Value v);       // col >  v
Atom AtomGreaterEqual(int column, Value v);  // col >= v
Atom AtomEqual(int column, Value v);         // col == v
Atom AtomNotEqual(int column, Value v);      // col != v
Atom AtomRange(int column, Value lo, Value hi);  // lo <= col < hi
Atom AtomIn(int column, const std::vector<Value>& values);

// Single-conjunct, single-atom predicate.
DnfPredicate PredicateOf(Atom atom);
// Single conjunct of the given atoms.
DnfPredicate PredicateAllOf(std::vector<Atom> atoms);

}  // namespace hydra

#endif  // HYDRA_QUERY_PREDICATE_H_
