// Cardinality constraints (CCs) — the declarative interchange format between
// client and vendor (Section 2.2, Figure 1d).
//
// A CC states: |σ_pred( R_0 ⋈ R_1 ⋈ ... )| = cardinality, where all joins are
// PK-FK and the predicate is a DNF filter over non-key attributes of the
// participating relations. The predicate's column space is `columns`, a list
// of (relation, attribute) references.

#ifndef HYDRA_QUERY_CONSTRAINT_H_
#define HYDRA_QUERY_CONSTRAINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "query/predicate.h"

namespace hydra {

// One PK-FK join edge between schema relations.
struct CcJoin {
  int fk_relation = -1;
  int fk_attr = -1;   // attribute index within fk_relation
  int pk_relation = -1;
};

struct CardinalityConstraint {
  // Distinct schema relations participating, root (FK-source) first.
  std::vector<int> relations;
  // PK-FK edges connecting `relations` into a tree.
  std::vector<CcJoin> joins;
  // Column space for `predicate`.
  std::vector<AttrRef> columns;
  // DNF filter whose atoms index into `columns`.
  DnfPredicate predicate;
  // Required output row count.
  uint64_t cardinality = 0;
  // Provenance label, e.g. "q17/join2" — used in reports only.
  std::string label;

  // The relation from which every other participating relation is reachable
  // via FK edges: relations[0] by construction.
  int RootRelation() const { return relations.empty() ? -1 : relations[0]; }

  std::string ToString(const Schema& schema) const;
};

}  // namespace hydra

#endif  // HYDRA_QUERY_CONSTRAINT_H_
