#include "query/constraint.h"

namespace hydra {

std::string CardinalityConstraint::ToString(const Schema& schema) const {
  std::string joined;
  for (size_t i = 0; i < relations.size(); ++i) {
    if (i > 0) joined += " ⋈ ";
    joined += schema.relation(relations[i]).name();
  }
  std::string pred = predicate.IsTrue() ? "" : predicate.ToString() + " ";
  return "|σ " + pred + "(" + joined + ")| = " + std::to_string(cardinality) +
         (label.empty() ? "" : "   [" + label + "]");
}

}  // namespace hydra
