#include "query/predicate.h"

#include <algorithm>

#include "common/logging.h"

namespace hydra {

std::string Atom::ToString() const {
  return "c" + std::to_string(column) + "∈" + values.ToString();
}

bool Conjunct::Eval(const Row& row) const {
  for (const Atom& a : atoms) {
    HYDRA_DCHECK(a.column >= 0 && a.column < static_cast<int>(row.size()));
  }
  return Eval(row.data());
}

bool Conjunct::Eval(const Value* row) const {
  for (const Atom& a : atoms) {
    if (!a.Eval(row[a.column])) return false;
  }
  return true;
}

IntervalSet Conjunct::RestrictTo(int column, const Interval& domain) const {
  IntervalSet result = IntervalSet(domain);
  for (const Atom& a : atoms) {
    if (a.column == column) result = result.Intersect(a.values);
  }
  return result;
}

bool Conjunct::Mentions(int column) const {
  for (const Atom& a : atoms) {
    if (a.column == column) return true;
  }
  return false;
}

void Conjunct::AddAtom(Atom atom) {
  for (Atom& a : atoms) {
    if (a.column == atom.column) {
      a.values = a.values.Intersect(atom.values);
      return;
    }
  }
  atoms.push_back(std::move(atom));
}

std::string Conjunct::ToString() const {
  if (atoms.empty()) return "TRUE";
  std::string out;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += " ∧ ";
    out += atoms[i].ToString();
  }
  return out;
}

DnfPredicate DnfPredicate::True() {
  DnfPredicate p;
  p.AddConjunct(Conjunct{});
  return p;
}

DnfPredicate DnfPredicate::False() { return DnfPredicate(); }

bool DnfPredicate::IsTrue() const {
  return conjuncts_.size() == 1 && conjuncts_[0].atoms.empty();
}

bool DnfPredicate::IsFalse() const { return conjuncts_.empty(); }

bool DnfPredicate::Eval(const Row& row) const { return Eval(row.data()); }

bool DnfPredicate::Eval(const Value* row) const {
  for (const Conjunct& c : conjuncts_) {
    if (c.Eval(row)) return true;
  }
  return false;
}

DnfPredicate DnfPredicate::And(const DnfPredicate& other) const {
  DnfPredicate out;
  for (const Conjunct& a : conjuncts_) {
    for (const Conjunct& b : other.conjuncts_) {
      Conjunct merged = a;
      for (const Atom& atom : b.atoms) merged.AddAtom(atom);
      out.AddConjunct(std::move(merged));
    }
  }
  return out;
}

DnfPredicate DnfPredicate::Or(const DnfPredicate& other) const {
  DnfPredicate out = *this;
  for (const Conjunct& c : other.conjuncts_) out.AddConjunct(c);
  return out;
}

DnfPredicate DnfPredicate::RemapColumns(
    const std::vector<int>& mapping) const {
  DnfPredicate out;
  for (const Conjunct& c : conjuncts_) {
    Conjunct mapped;
    for (const Atom& a : c.atoms) {
      HYDRA_CHECK_MSG(a.column >= 0 &&
                          a.column < static_cast<int>(mapping.size()) &&
                          mapping[a.column] >= 0,
                      "unmapped predicate column " << a.column);
      Atom na = a;
      na.column = mapping[a.column];
      mapped.AddAtom(std::move(na));
    }
    out.AddConjunct(std::move(mapped));
  }
  return out;
}

std::vector<int> DnfPredicate::Columns() const {
  std::vector<int> cols;
  for (const Conjunct& c : conjuncts_) {
    for (const Atom& a : c.atoms) cols.push_back(a.column);
  }
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

std::string DnfPredicate::ToString() const {
  if (IsFalse()) return "FALSE";
  if (IsTrue()) return "TRUE";
  std::string out;
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    if (i > 0) out += " ∨ ";
    out += "(" + conjuncts_[i].ToString() + ")";
  }
  return out;
}

Atom AtomLess(int column, Value v) {
  return Atom{column, IntervalSet(Interval(kValueMin, v))};
}
Atom AtomLessEqual(int column, Value v) {
  return Atom{column, IntervalSet(Interval(kValueMin, v + 1))};
}
Atom AtomGreater(int column, Value v) {
  return Atom{column, IntervalSet(Interval(v + 1, kValueMax))};
}
Atom AtomGreaterEqual(int column, Value v) {
  return Atom{column, IntervalSet(Interval(v, kValueMax))};
}
Atom AtomEqual(int column, Value v) {
  return Atom{column, IntervalSet(Interval(v, v + 1))};
}
Atom AtomNotEqual(int column, Value v) {
  return Atom{column, IntervalSet(std::vector<Interval>{
                          Interval(kValueMin, v), Interval(v + 1, kValueMax)})};
}
Atom AtomRange(int column, Value lo, Value hi) {
  return Atom{column, IntervalSet(Interval(lo, hi))};
}
Atom AtomIn(int column, const std::vector<Value>& values) {
  std::vector<Interval> ivs;
  ivs.reserve(values.size());
  for (Value v : values) ivs.push_back(Interval(v, v + 1));
  return Atom{column, IntervalSet(std::move(ivs))};
}

DnfPredicate PredicateOf(Atom atom) {
  Conjunct c;
  c.AddAtom(std::move(atom));
  DnfPredicate p;
  p.AddConjunct(std::move(c));
  return p;
}

DnfPredicate PredicateAllOf(std::vector<Atom> atoms) {
  Conjunct c;
  for (Atom& a : atoms) c.AddAtom(std::move(a));
  DnfPredicate p;
  p.AddConjunct(std::move(c));
  return p;
}

}  // namespace hydra
