// Query specification: filters on base relations plus PK-FK equi-joins.
//
// This matches the paper's workload scope (Section 2.2): every CC-bearing
// query consists of per-relation DNF filters on non-key attributes and
// PK-FK joins. A query is a join tree rooted at the relation all others are
// reachable from via foreign keys (star/snowflake shape).

#ifndef HYDRA_QUERY_QUERY_H_
#define HYDRA_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "query/predicate.h"

namespace hydra {

// One participating base relation with its pushed-down filter. The filter's
// column space is the relation's attribute indices.
struct QueryTable {
  int relation = -1;
  DnfPredicate filter = DnfPredicate::True();
};

// A PK-FK join: tables[fk_table].relation's attribute fk_attr references the
// primary key of tables[pk_table].relation.
struct JoinEdge {
  int fk_table = -1;
  int fk_attr = -1;
  int pk_table = -1;
};

struct Query {
  std::string name;
  // tables[0] is the join root (the relation on the FK side of every path).
  std::vector<QueryTable> tables;
  // joins[i] connects tables[i+1] into the accumulated join of
  // tables[0..i]; executed left-deep in this order.
  std::vector<JoinEdge> joins;

  // Structural validation against a schema: join arity, FK targets, filter
  // columns are non-key attributes.
  Status Validate(const Schema& schema) const;
};

}  // namespace hydra

#endif  // HYDRA_QUERY_QUERY_H_
