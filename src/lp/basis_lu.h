// Sparse LU factorization of a simplex basis with Markowitz ordering and
// Forrest-Tomlin column-replacement updates.
//
// The basis B (m x m, columns indexed by basis position) is held as
// B = L * U with
//   * L implicit: the Gaussian-elimination multipliers recorded at
//     factorization time (unit lower triangular in pivot order) plus the
//     row-transform etas appended by Forrest-Tomlin updates, and
//   * U explicit: a sparse permuted-triangular matrix kept directly in row
//     coordinates (the pivot row doubles as the column id of the basis
//     position it eliminates), stored row-wise AND column-wise so FTRAN's
//     backward substitution and BTRAN's forward substitution both stream
//     their natural orientation with no gather/scatter passes. A logical
//     ordering array — not physical data movement — keeps U triangular
//     across updates.
//
// All per-slot lists live in pooled flat arrays (SlotRange into one slot/
// value pool per orientation, like the PR 1 eta file) rather than
// vector-of-vectors: the triangular solves walk three contiguous arrays, so
// the per-iteration constant is memory bandwidth, not pointer chasing.
// Forrest-Tomlin updates mutate ranges in place, relocating a range to the
// pool tail when it outgrows its capacity; the garbage this strands is
// reclaimed at the next refactorization.
//
// Pivots are chosen by restricted Markowitz: candidate columns are drawn
// from the lowest fill-count buckets and scored by
// (col_nnz - 1) * (row_nnz - 1), subject to a threshold test against the
// column's largest entry, with index-order tie-breaking so a factorization
// is a deterministic function of the input columns.
//
// A Forrest-Tomlin update replaces one basis column in O(nnz of the spiked
// row/column): the spike L^-1 a is written into U as the (logically) last
// column, the leaving slot's U row is eliminated with row etas recorded
// into the update file, and the slot is moved to the end of the logical
// order. Updates whose new diagonal is numerically negligible are refused
// — the caller refactorizes instead. See docs/solver.md.

#ifndef HYDRA_LP_BASIS_LU_H_
#define HYDRA_LP_BASIS_LU_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace hydra {

class BasisLu {
 public:
  // Sparse basis column; entries may repeat (they are summed).
  struct Column {
    const int* rows = nullptr;
    const double* vals = nullptr;
    int nnz = 0;
  };

  // Spike captured by Ftran for a subsequent Update: the entering column
  // transformed by L only (update-file row etas included, U not applied).
  // `rows` is a superset of the nonzero support (exact when Ftran ran its
  // hyper-sparse path; all rows otherwise).
  struct Spike {
    std::vector<double> values;  // dense, row-indexed
    std::vector<int> rows;
  };

  // Factorizes the m x m matrix whose position-p column is cols[p].
  // Returns false (leaving any previous factorization intact) when the
  // matrix is numerically singular. On success the previous update file is
  // discarded and row_of_position()[p] names the pivot row each input
  // column was assigned. Scratch is retained across calls, so repeated
  // refactorizations of same-shaped bases do not reallocate.
  bool Factorize(int m, const std::vector<Column>& cols);

  bool factorized() const { return m_ > 0; }
  int num_rows() const { return m_; }
  const std::vector<int>& row_of_position() const { return row_of_position_; }

  // v <- B^-1 v (v indexed by row). When `spike` is non-null the
  // intermediate L^-1 v is captured for a later Update call.
  //
  // When `rhs_rows` (a superset of v's nonzero rows, duplicates allowed)
  // is given and small, the solve runs hyper-sparsely (Gilbert-Peierls
  // reachability over the L/U dependency graphs) and touches only the
  // result's support; otherwise it sweeps densely. `out_rows`, when
  // non-null, receives a superset of the result's nonzero rows (all rows
  // after a dense sweep).
  void Ftran(std::vector<double>& v, Spike* spike = nullptr,
             const int* rhs_rows = nullptr, int rhs_nnz = 0,
             std::vector<int>* out_rows = nullptr) const;

  // v <- B^-T v, i.e. v^T <- v^T B^-1 (v indexed by row). Sparse-rhs
  // contract identical to Ftran's.
  void Btran(std::vector<double>& v, const int* rhs_rows = nullptr,
             int rhs_nnz = 0, std::vector<int>* out_rows = nullptr) const;

  // Forrest-Tomlin update: the basis column currently pivoting on
  // `leaving_row` is replaced by the column whose Ftran produced `spike`.
  // Returns false without modifying the factorization when the update
  // would be numerically unstable (caller should refactorize).
  bool Update(int leaving_row, const Spike& spike);

  // Nonzeros across L, U and the update file — the caller's refactorization
  // growth trigger.
  uint64_t TotalNnz() const;
  int updates_since_factorize() const { return num_updates_; }

 private:
  struct Entry {
    int row;
    double val;
  };
  // One Gaussian-elimination column of L: multipliers below the pivot.
  struct LColumn {
    int pivot_row;
    int begin;  // [begin, end) into l_rows_/l_vals_
    int end;
  };
  // One Forrest-Tomlin row eta: U row `target_row` accumulated multiples
  // of other U rows; entries are row ids.
  struct RowEta {
    int target_row;
    int begin;  // [begin, end) into eta_rows_/eta_vals_
    int end;
  };
  // One per-row list inside a pooled array.
  struct Span {
    int begin = 0;
    int len = 0;
    int cap = 0;
  };
  // One orientation of U: per-row spans over a shared row/value pool.
  // Erase swaps within the span; Append relocates the span to the pool
  // tail (with headroom) when it is out of capacity.
  struct UPool {
    std::vector<Span> range;
    std::vector<int> row;
    std::vector<double> val;

    void Clear(int m);
    void Erase(int s, int entry_row);
    void Append(int s, int entry_row, double v);
  };

  void Reset();

  int m_ = 0;
  // L from factorization, pooled like the old eta file.
  std::vector<LColumn> l_cols_;
  std::vector<int> l_rows_;
  std::vector<double> l_vals_;
  // Forrest-Tomlin row etas, applied after L (in append order) in FTRAN.
  std::vector<RowEta> row_etas_;
  std::vector<int> eta_rows_;
  std::vector<double> eta_vals_;
  // U in row coordinates. diag_ holds the pivot; row/col pools hold only
  // off-diagonal entries (row orientation: rows later in the order; col
  // orientation: earlier).
  std::vector<double> diag_;
  UPool urows_;
  UPool ucols_;
  // Logical triangular order of pivot rows and its inverse.
  std::vector<int> order_;
  std::vector<int> pos_in_order_;
  // Input position -> assigned pivot row.
  std::vector<int> row_of_position_;
  int num_updates_ = 0;
  uint64_t u_nnz_ = 0;  // off-diagonal U entries, maintained across updates

  // Scratch (sized m, zeroed between uses) for Ftran/Btran/Update.
  mutable std::vector<double> work_;
  // Factorization scratch, retained across calls so refactorizations of
  // same-shaped bases do not pay an allocation storm.
  std::vector<std::vector<Entry>> fac_cols_;
  std::vector<std::vector<int>> fac_row_cols_;
  std::vector<std::vector<Entry>> fac_urows_;
  std::vector<std::vector<int>> fac_buckets_;
  std::vector<int> fac_row_nnz_, fac_col_nnz_, fac_col_pos_, fac_lrows_;
  std::vector<int> fac_seen_;
  std::vector<char> fac_row_active_, fac_col_active_;
  std::vector<double> fac_acc_, fac_lmult_;
  std::vector<int> fac_row_of_slot_, fac_slot_of_input_, fac_lcol_of_row_;
  std::vector<Entry> update_eta_;

  // Hyper-sparse solve machinery: L column of each pivot row (-1 = unit),
  // the inverse L index (row -> L steps listing it, CSR), and generation-
  // stamped DFS scratch.
  std::vector<int> l_col_of_row_;
  std::vector<int> linv_ptr_;
  std::vector<int> linv_step_;
  mutable std::vector<int64_t> stamp_;
  mutable int64_t stamp_gen_ = 0;
  mutable std::vector<int> touch_;
  mutable std::vector<int> dfs_;
  mutable std::vector<int> steps_;
  std::vector<std::pair<int, int>> heap_;  // (order position, row)

  void FtranDense(std::vector<double>& v, Spike* spike) const;
  void BtranDense(std::vector<double>& v) const;
  void AllRows(std::vector<int>* out) const;
};

}  // namespace hydra

#endif  // HYDRA_LP_BASIS_LU_H_
