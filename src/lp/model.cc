#include "lp/model.h"

#include <cmath>

#include "common/logging.h"

namespace hydra {

uint64_t LpProblem::NumNonZeros() const {
  uint64_t nnz = 0;
  for (const LpConstraint& c : constraints_) nnz += c.vars.size();
  return nnz;
}

double LpProblem::MaxViolation(const std::vector<double>& x) const {
  HYDRA_CHECK(static_cast<int>(x.size()) == num_vars_);
  double worst = 0;
  for (const LpConstraint& c : constraints_) {
    double lhs = 0;
    for (size_t i = 0; i < c.vars.size(); ++i) {
      lhs += c.coeffs[i] * x[c.vars[i]];
    }
    worst = std::max(worst, std::fabs(lhs - c.rhs));
  }
  return worst;
}

}  // namespace hydra
