// LP problem container: equality constraints over non-negative variables.
//
// The regeneration LPs (Figures 6/7 of the paper) are pure feasibility
// problems of the form { Ax = b, x >= 0 } where every entry of A is 0/1 and
// b holds constraint cardinalities. Constraint rows are stored sparsely; the
// solver in lp/simplex.h finds a basic feasible solution.

#ifndef HYDRA_LP_MODEL_H_
#define HYDRA_LP_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace hydra {

// sum_j coeff_j * x_{var_j} = rhs
struct LpConstraint {
  std::vector<int> vars;
  std::vector<double> coeffs;
  double rhs = 0;
  std::string label;  // provenance, for error reports

  void AddTerm(int var, double coeff) {
    vars.push_back(var);
    coeffs.push_back(coeff);
  }
};

class LpProblem {
 public:
  // Returns the index of the new variable.
  int AddVariable() { return num_vars_++; }
  int AddVariables(int n) {
    const int first = num_vars_;
    num_vars_ += n;
    return first;
  }

  void AddConstraint(LpConstraint c) { constraints_.push_back(std::move(c)); }

  int num_vars() const { return num_vars_; }
  int num_constraints() const {
    return static_cast<int>(constraints_.size());
  }
  const std::vector<LpConstraint>& constraints() const { return constraints_; }

  // Total number of nonzero coefficients.
  uint64_t NumNonZeros() const;

  // Maximum violation |Ax - b| of `x` over all constraints.
  double MaxViolation(const std::vector<double>& x) const;

 private:
  int num_vars_ = 0;
  std::vector<LpConstraint> constraints_;
};

struct LpSolution {
  std::vector<double> values;
  // Total pivots: phase-I feasibility plus the canonicalization phase.
  int iterations = 0;
  // Pivots spent reaching feasibility (<= iterations).
  int phase1_iterations = 0;
  // True when an imported warm-start basis was accepted (the solve did not
  // start from the all-artificial basis).
  bool warm_started = false;
};

}  // namespace hydra

#endif  // HYDRA_LP_MODEL_H_
