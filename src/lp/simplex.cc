#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace hydra {

namespace {

struct SparseEntry {
  int row;
  double coeff;
};

// Column-major copy of the constraint matrix (rows with b < 0 negated so that
// b >= 0, as phase-I requires).
struct ColumnMatrix {
  int m = 0;
  int n = 0;
  std::vector<std::vector<SparseEntry>> cols;
  std::vector<double> b;
};

ColumnMatrix BuildColumns(const LpProblem& p) {
  ColumnMatrix cm;
  cm.m = p.num_constraints();
  cm.n = p.num_vars();
  cm.cols.resize(cm.n);
  cm.b.resize(cm.m);
  for (int r = 0; r < cm.m; ++r) {
    const LpConstraint& c = p.constraints()[r];
    const double sign = c.rhs < 0 ? -1.0 : 1.0;
    cm.b[r] = sign * c.rhs;
    for (size_t i = 0; i < c.vars.size(); ++i) {
      cm.cols[c.vars[i]].push_back({r, sign * c.coeffs[i]});
    }
  }
  // Merge duplicate (var, row) entries defensively.
  for (auto& col : cm.cols) {
    std::sort(col.begin(), col.end(),
              [](const SparseEntry& a, const SparseEntry& b) {
                return a.row < b.row;
              });
    size_t w = 0;
    for (size_t i = 0; i < col.size(); ++i) {
      if (w > 0 && col[w - 1].row == col[i].row) {
        col[w - 1].coeff += col[i].coeff;
      } else {
        col[w++] = col[i];
      }
    }
    col.resize(w);
  }
  return cm;
}

class PhaseOneSimplex {
 public:
  PhaseOneSimplex(ColumnMatrix cm, const SimplexOptions& options)
      : cm_(std::move(cm)), options_(options) {
    m_ = cm_.m;
    n_ = cm_.n;
    binv_.assign(static_cast<size_t>(m_) * m_, 0.0);
    for (int i = 0; i < m_; ++i) binv_[i * m_ + i] = 1.0;
    basis_.resize(m_);
    xb_ = cm_.b;
    in_basis_.assign(n_, false);
    for (int i = 0; i < m_; ++i) basis_[i] = n_ + i;  // artificials
    double bmax = 1.0;
    for (double v : cm_.b) bmax = std::max(bmax, std::fabs(v));
    tol_ = options_.tolerance * bmax;
    price_tol_ = options_.tolerance;
  }

  StatusOr<LpSolution> Solve() {
    const int max_iters = options_.max_iterations > 0
                              ? options_.max_iterations
                              : 50 * m_ + 5000;
    int iter = 0;
    int degenerate_streak = 0;
    while (Objective() > tol_) {
      if (++iter > max_iters) {
        return Status::ResourceExhausted(
            "simplex iteration budget exceeded (" +
            std::to_string(max_iters) + ")");
      }
      const bool bland = degenerate_streak > 2 * m_ + 20;
      const int entering = PickEntering(bland);
      if (entering < 0) {
        // Optimal with positive artificial mass: infeasible system.
        return Status::FailedPrecondition(
            "LP infeasible (phase-I objective " +
            std::to_string(Objective()) + ")");
      }
      std::vector<double> w = Ftran(entering);
      const int leaving = RatioTest(w, bland);
      if (leaving < 0) {
        return Status::Internal("phase-I unbounded — numerical failure");
      }
      const double theta = xb_[leaving] / w[leaving];
      if (theta <= tol_ * 1e-3) {
        ++degenerate_streak;
      } else {
        degenerate_streak = 0;
      }
      Pivot(entering, leaving, w, theta);
      if (iter % 512 == 0) Refactorize();
    }
    LpSolution sol;
    sol.values.assign(n_, 0.0);
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] < n_) sol.values[basis_[i]] = std::max(0.0, xb_[i]);
    }
    sol.iterations = iter;
    return sol;
  }

 private:
  // Phase-I objective: total value of artificial basis variables.
  double Objective() const {
    double obj = 0;
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] >= n_) obj += xb_[i];
    }
    return obj;
  }

  // y = c_B^T B^-1 where c_B is 1 on artificial rows.
  std::vector<double> ComputeY() const {
    std::vector<double> y(m_, 0.0);
    for (int k = 0; k < m_; ++k) {
      if (basis_[k] >= n_) {
        const double* row = &binv_[static_cast<size_t>(k) * m_];
        for (int i = 0; i < m_; ++i) y[i] += row[i];
      }
    }
    return y;
  }

  // Most-negative (or first-negative under Bland) reduced cost structural
  // column; -1 if none.
  int PickEntering(bool bland) {
    const std::vector<double> y = ComputeY();
    int best = -1;
    double best_d = -price_tol_;
    for (int j = 0; j < n_; ++j) {
      if (in_basis_[j]) continue;
      double d = 0;
      for (const SparseEntry& e : cm_.cols[j]) d -= y[e.row] * e.coeff;
      if (d < best_d) {
        if (bland) return j;
        best_d = d;
        best = j;
      }
    }
    return best;
  }

  // w = B^-1 A_j.
  std::vector<double> Ftran(int j) const {
    std::vector<double> w(m_, 0.0);
    for (const SparseEntry& e : cm_.cols[j]) {
      const double a = e.coeff;
      for (int k = 0; k < m_; ++k) {
        w[k] += a * binv_[static_cast<size_t>(k) * m_ + e.row];
      }
    }
    return w;
  }

  int RatioTest(const std::vector<double>& w, bool bland) const {
    int leaving = -1;
    double best_theta = 0;
    for (int k = 0; k < m_; ++k) {
      if (w[k] > price_tol_) {
        const double theta = xb_[k] / w[k];
        if (leaving < 0 || theta < best_theta - 1e-12 ||
            (theta < best_theta + 1e-12 &&
             (bland ? basis_[k] < basis_[leaving]
                    // Prefer kicking artificials out of the basis on ties.
                    : basis_[k] >= n_ && basis_[leaving] < n_))) {
          leaving = k;
          best_theta = theta;
        }
      }
    }
    return leaving;
  }

  void Pivot(int entering, int leaving, const std::vector<double>& w,
             double theta) {
    double* lrow = &binv_[static_cast<size_t>(leaving) * m_];
    const double pivot = w[leaving];
    for (int i = 0; i < m_; ++i) lrow[i] /= pivot;
    for (int k = 0; k < m_; ++k) {
      if (k == leaving) continue;
      const double f = w[k];
      if (f == 0.0) continue;
      double* krow = &binv_[static_cast<size_t>(k) * m_];
      for (int i = 0; i < m_; ++i) krow[i] -= f * lrow[i];
      xb_[k] -= theta * f;
      if (xb_[k] < 0 && xb_[k] > -tol_) xb_[k] = 0;
    }
    xb_[leaving] = theta;
    if (basis_[leaving] < n_) in_basis_[basis_[leaving]] = false;
    basis_[leaving] = entering;
    in_basis_[entering] = true;
  }

  // Rebuilds B^-1 from scratch by Gauss-Jordan elimination of the current
  // basis matrix, then recomputes x_B = B^-1 b; bounds numerical drift.
  void Refactorize() {
    std::vector<double> bmat(static_cast<size_t>(m_) * m_, 0.0);
    for (int k = 0; k < m_; ++k) {
      if (basis_[k] >= n_) {
        bmat[static_cast<size_t>(basis_[k] - n_) * m_ + k] = 1.0;
      } else {
        for (const SparseEntry& e : cm_.cols[basis_[k]]) {
          bmat[static_cast<size_t>(e.row) * m_ + k] = e.coeff;
        }
      }
    }
    std::vector<double> inv(static_cast<size_t>(m_) * m_, 0.0);
    for (int i = 0; i < m_; ++i) inv[static_cast<size_t>(i) * m_ + i] = 1.0;
    for (int col = 0; col < m_; ++col) {
      int piv = col;
      for (int r = col + 1; r < m_; ++r) {
        if (std::fabs(bmat[static_cast<size_t>(r) * m_ + col]) >
            std::fabs(bmat[static_cast<size_t>(piv) * m_ + col])) {
          piv = r;
        }
      }
      const double pval = bmat[static_cast<size_t>(piv) * m_ + col];
      if (std::fabs(pval) < 1e-12) return;  // keep the updated inverse
      if (piv != col) {
        for (int i = 0; i < m_; ++i) {
          std::swap(bmat[static_cast<size_t>(piv) * m_ + i],
                    bmat[static_cast<size_t>(col) * m_ + i]);
          std::swap(inv[static_cast<size_t>(piv) * m_ + i],
                    inv[static_cast<size_t>(col) * m_ + i]);
        }
      }
      for (int i = 0; i < m_; ++i) {
        bmat[static_cast<size_t>(col) * m_ + i] /= pval;
        inv[static_cast<size_t>(col) * m_ + i] /= pval;
      }
      for (int r = 0; r < m_; ++r) {
        if (r == col) continue;
        const double f = bmat[static_cast<size_t>(r) * m_ + col];
        if (f == 0.0) continue;
        for (int i = 0; i < m_; ++i) {
          bmat[static_cast<size_t>(r) * m_ + i] -=
              f * bmat[static_cast<size_t>(col) * m_ + i];
          inv[static_cast<size_t>(r) * m_ + i] -=
              f * inv[static_cast<size_t>(col) * m_ + i];
        }
      }
    }
    // inv now holds rows of B^-1 in "column of basis" order: inv[k][*] is the
    // row for basis position k because we eliminated B (rows=constraints,
    // cols=basis positions) to identity.
    binv_ = std::move(inv);
    // Recompute x_B = B^-1 b.
    for (int k = 0; k < m_; ++k) {
      double v = 0;
      const double* row = &binv_[static_cast<size_t>(k) * m_];
      for (int i = 0; i < m_; ++i) v += row[i] * cm_.b[i];
      xb_[k] = std::max(0.0, v);
    }
  }

  ColumnMatrix cm_;
  SimplexOptions options_;
  int m_ = 0;
  int n_ = 0;
  std::vector<double> binv_;  // row-major m x m: row k = basis position k
  std::vector<double> xb_;
  std::vector<int> basis_;  // basis_[k] < n_: structural; else artificial
  std::vector<bool> in_basis_;
  double tol_ = 1e-7;
  double price_tol_ = 1e-7;
};

}  // namespace

StatusOr<LpSolution> SolveFeasibility(const LpProblem& problem,
                                      const SimplexOptions& options) {
  if (static_cast<uint64_t>(problem.num_vars()) > options.max_variables) {
    return Status::ResourceExhausted(
        "LP has " + std::to_string(problem.num_vars()) +
        " variables, exceeding the solver budget of " +
        std::to_string(options.max_variables));
  }
  if (problem.num_constraints() == 0) {
    LpSolution sol;
    sol.values.assign(problem.num_vars(), 0.0);
    return sol;
  }
  PhaseOneSimplex solver(BuildColumns(problem), options);
  return solver.Solve();
}

}  // namespace hydra
