#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "lp/basis_lu.h"

namespace hydra {

// One LU rebuild from the current basis columns — the solver's dominant
// periodic cost; its tail is what degrades a solve.
HYDRA_METRIC_HISTOGRAM(g_refactorize_us, "lp/refactorize_us");

namespace {

// Compressed-sparse-column copy of the constraint matrix (rows with b < 0
// negated so that b >= 0, as phase-I requires). Built in two passes —
// count, prefix-sum, scatter — so the whole matrix lives in three flat
// arrays instead of one heap allocation per column. Devex pricing also
// needs the transpose (compressed sparse rows) to push pivot-row weight
// updates through the matrix sparsely; it is built on demand.
struct ColumnMatrix {
  int m = 0;
  int n = 0;
  std::vector<int> col_ptr;   // n + 1
  std::vector<int> row_idx;   // nnz
  std::vector<double> val;    // nnz
  std::vector<double> b;
  // CSR mirror (empty unless BuildRows ran).
  std::vector<int> row_ptr;   // m + 1
  std::vector<int> col_idx;   // nnz
  std::vector<double> rval;   // nnz

  int ColNnz(int j) const { return col_ptr[j + 1] - col_ptr[j]; }

  void BuildRows() {
    row_ptr.assign(m + 1, 0);
    const int nnz = col_ptr[n];
    col_idx.resize(nnz);
    rval.resize(nnz);
    for (int t = 0; t < nnz; ++t) ++row_ptr[row_idx[t] + 1];
    for (int i = 0; i < m; ++i) row_ptr[i + 1] += row_ptr[i];
    std::vector<int> fill(row_ptr.begin(), row_ptr.end() - 1);
    for (int j = 0; j < n; ++j) {
      for (int t = col_ptr[j]; t < col_ptr[j + 1]; ++t) {
        const int slot = fill[row_idx[t]]++;
        col_idx[slot] = j;
        rval[slot] = val[t];
      }
    }
  }
};

ColumnMatrix BuildColumns(const LpProblem& p) {
  ColumnMatrix cm;
  cm.m = p.num_constraints();
  cm.n = p.num_vars();
  cm.b.resize(cm.m);
  cm.col_ptr.assign(cm.n + 1, 0);
  for (const LpConstraint& c : p.constraints()) {
    for (int v : c.vars) ++cm.col_ptr[v + 1];
  }
  for (int j = 0; j < cm.n; ++j) cm.col_ptr[j + 1] += cm.col_ptr[j];
  cm.row_idx.resize(cm.col_ptr[cm.n]);
  cm.val.resize(cm.col_ptr[cm.n]);
  std::vector<int> fill(cm.col_ptr.begin(), cm.col_ptr.end() - 1);
  for (int r = 0; r < cm.m; ++r) {
    const LpConstraint& c = p.constraints()[r];
    const double sign = c.rhs < 0 ? -1.0 : 1.0;
    cm.b[r] = sign * c.rhs;
    for (size_t i = 0; i < c.vars.size(); ++i) {
      const int slot = fill[c.vars[i]]++;
      cm.row_idx[slot] = r;
      cm.val[slot] = sign * c.coeffs[i];
    }
  }
  // Duplicate (var, row) pairs are left as-is: every consumer accumulates
  // with +=, so repeated terms sum exactly as the model intends.
  return cm;
}

// Fixed pseudo-random positive objective for the canonicalization phase:
// a deterministic hash of the column index mapped into [1, 2). Generic
// weights make the minimizer over { Ax = b, x >= 0 } a unique vertex, so
// the polished solution is a function of the problem alone.
double CanonicalWeight(int j) {
  uint64_t z = static_cast<uint64_t>(j) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return 1.0 + static_cast<double>(z >> 11) * 0x1.0p-53;
}

// Revised simplex over a Markowitz sparse LU of the basis with
// Forrest-Tomlin updates (lp/basis_lu.h). Phase I minimizes the artificial
// mass to find a feasible point; the optional canonicalization phase then
// minimizes a fixed generic objective so the reported solution does not
// depend on pricing, warm starts, or refactorization timing. Pricing is
// Devex by default, with rotating partial pricing selectable for A/B runs;
// both work a bounded candidate list so wide problems never pay full
// n-column scans per pivot. See docs/solver.md.
class RevisedSimplex {
 public:
  RevisedSimplex(ColumnMatrix cm, const SimplexOptions& options)
      : cm_(std::move(cm)), options_(options) {
    m_ = cm_.m;
    n_ = cm_.n;
    basis_.resize(m_);
    in_basis_.assign(n_, false);
    candidate_flag_.assign(n_, 0);
    double bmax = 1.0;
    for (double v : cm_.b) bmax = std::max(bmax, std::fabs(v));
    tol_ = options_.tolerance * bmax;
    // When canonicalizing, phase I pivots until the artificial mass is
    // zero at the working precision (a few ulps of the b scale), not
    // merely under tol_: the leftover mass is exactly the solution's
    // infeasibility, and pinning near-zero artificials keeps the
    // canonicalization phase exact. Without it, stopping at tol_ (the PR 1
    // behaviour) saves the grinding tail pivots. The looser tol_ always
    // decides feasible-vs-infeasible when pricing runs out of improving
    // columns first.
    feas_zero_ = options_.canonicalize ? 1e-14 * bmax : tol_;
    price_tol_ = options_.tolerance;
    work_.assign(m_, 0.0);
    rho_.assign(m_, 0.0);
    y_.assign(m_, 0.0);
    refactor_interval_ =
        options_.refactor_interval > 0 ? options_.refactor_interval : 256;
    base_growth_nnz_ = 16 * static_cast<uint64_t>(m_) + 1024;
    if (options_.pricing == SimplexPricing::kDevex) {
      cm_.BuildRows();
      devex_.assign(n_, 1.0);
      alpha_.assign(n_, 0.0);
    }
    if (options_.pricing_threads > 1) {
      price_pool_ = std::make_unique<ThreadPool>(options_.pricing_threads);
    }
    // Unit artificial columns as slices of one shared identity: the column
    // of artificial r is the length-1 slice {art_rows_[r], art_vals_[r]}.
    art_rows_.resize(m_);
    std::iota(art_rows_.begin(), art_rows_.end(), 0);
    art_vals_.assign(m_, 1.0);
  }

  StatusOr<LpSolution> Solve() {
    max_iters_ = options_.max_iterations > 0 ? options_.max_iterations
                                             : 80 * m_ + 10000;
    const bool warm = TryWarmStart();
    HYDRA_RETURN_IF_ERROR(RunPhase(/*phase=*/1));
    const int phase1 = iter_;
    if (options_.canonicalize) {
      StartCanonicalPhase();
      HYDRA_RETURN_IF_ERROR(RunPhase(/*phase=*/2));
    }
    return Export(phase1, warm);
  }

 private:
  // ---- costs ------------------------------------------------------------
  // Phase I: artificials cost 1, structurals 0. Phase II: structurals get
  // the fixed generic weights, artificials 0 (they are pinned at zero by
  // the ratio test and barred from entering).
  double StructuralCost(int j) const {
    return phase_ == 1 ? 0.0 : CanonicalWeight(j);
  }
  double BasisCost(int var) const {
    if (var >= n_) return phase_ == 1 ? 1.0 : 0.0;
    return StructuralCost(var);
  }

  // The canonicalization phase always prices with the candidate-list
  // partial rule: its endpoint is the unique canonical vertex whichever
  // rule walks there, so the Devex weight maintenance (whose pivot-row
  // pass grows expensive on the denser phase-II bases) buys nothing.
  bool UseDevex() const {
    return phase_ == 1 && options_.pricing == SimplexPricing::kDevex;
  }

  // Phase-I objective: total value of artificial basis variables.
  double Objective() const {
    double obj = 0;
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] >= n_) obj += xb_[i];
    }
    return obj;
  }

  double ReducedCost(int j) const {
    double d = StructuralCost(j);
    for (int t = cm_.col_ptr[j]; t < cm_.col_ptr[j + 1]; ++t) {
      d -= y_[cm_.row_idx[t]] * cm_.val[t];
    }
    return d;
  }

  // ---- main loop --------------------------------------------------------
  Status RunPhase(int phase) {
    phase_ = phase;
    int degenerate_streak = 0;
    bool was_bland = false;
    while (true) {
      if (phase_ == 1 && Objective() <= feas_zero_) return Status::OK();
      if (++iter_ > max_iters_) {
        return Status::ResourceExhausted(
            "simplex iteration budget exceeded (" +
            std::to_string(max_iters_) + ")");
      }
      const bool bland = degenerate_streak > 2 * m_ + 20;
      if (bland && !was_bland) {
        // Entering the anti-cycling regime: make the duals exact first so
        // Bland's first-negative scan is not misled by incremental drift.
        Refactorize();
      }
      was_bland = bland;
      double d_entering = 0;
      double gamma_entering = 1.0;
      int entering = PickEntering(bland, &d_entering, &gamma_entering);
      if (entering < 0) {
        // No improving column under the (incrementally maintained) duals.
        // Re-derive y from a fresh factorization before trusting the
        // verdict this implies.
        if (!fresh_factorization_ && Refactorize()) {
          entering = PickEntering(bland, &d_entering, &gamma_entering);
        }
        if (entering < 0) {
          --iter_;  // no pivot happened
          if (phase_ == 2) return Status::OK();  // canonical optimum
          if (Objective() <= tol_) return Status::OK();
          return Status::FailedPrecondition(
              "LP infeasible (phase-I objective " +
              std::to_string(Objective()) + ")");
        }
      }
      FtranColumn(entering);  // work_ = B^-1 A_entering (+ spike capture)
      int leaving = RatioTest(bland);
      if (leaving < 0) {
        if (!fresh_factorization_ && Refactorize()) {
          FtranColumn(entering);
          leaving = RatioTest(bland);
        }
        if (leaving < 0) {
          // Phase I cannot be unbounded and phase II minimizes a positive
          // objective over x >= 0; a missing leaving row is numerics.
          return Status::Internal("simplex unbounded — numerical failure");
        }
      }
      const double theta = (phase_ == 2 && basis_[leaving] >= n_)
                               ? 0.0
                               : xb_[leaving] / work_[leaving];
      if (theta <= tol_ * 1e-3) {
        ++degenerate_streak;
      } else {
        degenerate_streak = 0;
      }
      HYDRA_RETURN_IF_ERROR(
          Pivot(entering, leaving, theta, d_entering, gamma_entering));
    }
  }

  // Partial pricing over a rotating candidate list (multiple pricing):
  // re-price the cached candidates first and enter the best; only when the
  // list runs dry (or has gone stale), scan structural columns in rotating
  // blocks from the cursor, refilling the list with every improving column
  // of the first block that has one. The per-column merit is Devex
  // (d^2 / gamma) or plain most-negative (partial), per options. Under
  // Bland's rule, scan everything in index order and take the first
  // improving column. Returns -1 if no column prices out.
  int PickEntering(bool bland, double* d_entering, double* gamma_entering) {
    const bool devex = UseDevex();
    if (bland) {
      for (int j = 0; j < n_; ++j) {
        if (in_basis_[j]) continue;
        const double d = ReducedCost(j);
        if (d < -price_tol_) {
          *d_entering = d;
          *gamma_entering = devex ? devex_[j] : 1.0;
          return j;
        }
      }
      return -1;
    }
    // Re-price the surviving candidates (cheap: the list is small). If the
    // best of them is still comparably attractive to the best the refilling
    // scan saw, enter it without touching fresh blocks (suboptimization).
    int best = -1;
    double best_d = 0;
    double best_score = 0;
    size_t w = 0;
    for (size_t t = 0; t < candidates_.size(); ++t) {
      const int j = candidates_[t];
      if (in_basis_[j]) {
        candidate_flag_[j] = 0;
        continue;
      }
      const double d = ReducedCost(j);
      if (d >= -price_tol_) {  // stale candidate: drop
        candidate_flag_[j] = 0;
        continue;
      }
      candidates_[w++] = j;
      const double s = Merit(devex, j, d);
      if (best < 0 || s > best_score) {
        best_score = s;
        best_d = d;
        best = j;
      }
    }
    candidates_.resize(w);
    // Squared Devex merits decay faster than plain reduced costs, so the
    // suboptimization threshold is looser there (0.25 ~= 0.5^2).
    const double keep_factor = devex ? 0.25 : 0.5;
    if (best >= 0 && best_score >= keep_factor * refill_best_score_) {
      *d_entering = best_d;
      *gamma_entering = devex ? devex_[best] : 1.0;
      return best;
    }
    // Otherwise rotate fresh blocks from the cursor until one prices an
    // improving column (or the rotation completes), refilling the list with
    // every improving column seen along the way.
    const int block = std::max(256, (n_ + 31) / 32);
    int scanned = 0;
    while (scanned < n_) {
      const int begin = cursor_;
      const int len = std::min(block, n_ - scanned);
      ScanPricingBlock(begin, len, devex, &best, &best_d, &best_score);
      scanned += len;
      cursor_ = (begin + len) % n_;
      if (best >= 0) {
        refill_best_score_ = best_score;
        *d_entering = best_d;
        *gamma_entering = devex ? devex_[best] : 1.0;
        return best;
      }
    }
    return -1;
  }

  // The per-column pricing merit, shared by the sequential and striped
  // scans so both paths evaluate the bit-identical expression.
  double Merit(bool devex, int j, double d) const {
    return devex ? d * d / devex_[j] : -d;
  }

  // Scans the rotating block [begin, begin + len) (mod n_) for improving
  // columns: appends them to candidates_ (dedup + cap) and folds the best
  // merit into (*best, *best_d, *best_score) with the strict-> first-best
  // rule. With pricing_threads > 1 and a block long enough to amortize the
  // fork, the block is striped across the pool: every stripe collects its
  // improving columns in index order plus its own first-best, and the
  // merge walks stripes in order — stripe concatenation IS block order —
  // so the candidate-list contents, the kMaxCandidates cutoff, and every
  // tie-break replay the sequential scan exactly. The shared state the
  // stripes read (y_, cm_, devex_, in_basis_, candidate_flag_) is
  // read-only during the scan; candidate_flag_ only mutates in the
  // single-threaded merge.
  void ScanPricingBlock(int begin, int len, bool devex, int* best,
                        double* best_d, double* best_score) {
    constexpr int kMinStripeLen = 2048;
    const int threads =
        price_pool_ == nullptr
            ? 1
            : std::min(price_pool_->num_threads(),
                       std::max(1, len / kMinStripeLen));
    if (threads <= 1) {
      for (int t = 0; t < len; ++t) {
        int j = begin + t;
        if (j >= n_) j -= n_;
        if (in_basis_[j]) continue;
        const double d = ReducedCost(j);
        if (d >= -price_tol_) continue;
        if (!candidate_flag_[j] && candidates_.size() < kMaxCandidates) {
          candidate_flag_[j] = 1;
          candidates_.push_back(j);
        }
        const double s = Merit(devex, j, d);
        if (*best < 0 || s > *best_score) {
          *best_score = s;
          *best_d = d;
          *best = j;
        }
      }
      return;
    }
    if (static_cast<int>(stripes_.size()) < threads) stripes_.resize(threads);
    ParallelFor(*price_pool_, threads, [&, begin, len, threads](int s) {
      PricingStripe& stripe = stripes_[s];
      stripe.improving.clear();
      stripe.best = -1;
      stripe.best_d = 0;
      stripe.best_score = 0;
      const int64_t wide_len = len;
      const int lo = static_cast<int>(wide_len * s / threads);
      const int hi = static_cast<int>(wide_len * (s + 1) / threads);
      for (int t = lo; t < hi; ++t) {
        int j = begin + t;
        if (j >= n_) j -= n_;
        if (in_basis_[j]) continue;
        const double d = ReducedCost(j);
        if (d >= -price_tol_) continue;
        // Store only what the merge could append: unflagged columns, at
        // most the global cap's worth per stripe. Flagged ones still shape
        // the stripe best below, exactly as the sequential scan's merit
        // update runs for every improving column.
        if (!candidate_flag_[j] &&
            stripe.improving.size() < kMaxCandidates) {
          stripe.improving.push_back(j);
        }
        const double score = Merit(devex, j, d);
        if (stripe.best < 0 || score > stripe.best_score) {
          stripe.best_score = score;
          stripe.best_d = d;
          stripe.best = j;
        }
      }
    });
    for (int s = 0; s < threads; ++s) {
      const PricingStripe& stripe = stripes_[s];
      for (const int j : stripe.improving) {
        if (!candidate_flag_[j] && candidates_.size() < kMaxCandidates) {
          candidate_flag_[j] = 1;
          candidates_.push_back(j);
        }
      }
      if (stripe.best >= 0 &&
          (*best < 0 || stripe.best_score > *best_score)) {
        *best_score = stripe.best_score;
        *best_d = stripe.best_d;
        *best = stripe.best;
      }
    }
  }

  // work_ = B^-1 A_j, capturing the L-stage spike for a Forrest-Tomlin
  // update of this pivot. work_ is cleared sparsely through the support of
  // the previous FTRAN, and work_support_ receives this result's support,
  // so the ratio test and the pivot's x_B update never scan all m rows.
  void FtranColumn(int j) {
    for (int r : work_support_) work_[r] = 0.0;
    work_support_.clear();
    for (int t = cm_.col_ptr[j]; t < cm_.col_ptr[j + 1]; ++t) {
      work_[cm_.row_idx[t]] += cm_.val[t];
    }
    lu_.Ftran(work_, &spike_, cm_.row_idx.data() + cm_.col_ptr[j],
              cm_.ColNnz(j), &work_support_);
    // Ascending row order keeps the ratio test's tie-breaking identical to
    // a full 0..m scan, whichever solve path produced the support.
    std::sort(work_support_.begin(), work_support_.end());
  }

  int RatioTest(bool bland) const {
    int leaving = -1;
    double best_theta = 0;
    for (int k : work_support_) {
      const bool artificial = basis_[k] >= n_;
      double theta;
      if (phase_ == 2 && artificial) {
        // Canonicalization pins basic artificials at zero (their residual
        // mass was folded into b when the phase started): any significant
        // pivot-column entry in their row caps the step at zero, and the
        // tied ratio test then kicks the artificial out of the basis.
        if (std::fabs(work_[k]) <= price_tol_) continue;
        theta = 0.0;
      } else {
        if (work_[k] <= price_tol_) continue;
        theta = xb_[k] / work_[k];
      }
      if (leaving < 0 || theta < best_theta - 1e-12 ||
          (theta < best_theta + 1e-12 &&
           (bland ? basis_[k] < basis_[leaving]
                  // Prefer kicking artificials out of the basis on ties.
                  : artificial && basis_[leaving] < n_))) {
        leaving = k;
        best_theta = theta;
      }
    }
    return leaving;
  }

  // Applies the basis change: sparse x_B update, bookkeeping, the
  // Forrest-Tomlin column replacement (falling back to a full
  // refactorization when the update is numerically refused), incremental
  // duals (y' = y + d_e * rho with rho the leaving row of the new inverse),
  // and the sparse Devex weight pass through the pivot row.
  Status Pivot(int entering, int leaving, double theta, double d_entering,
               double gamma_entering) {
    for (int k : work_support_) {
      if (k == leaving || work_[k] == 0.0) continue;
      xb_[k] -= theta * work_[k];
      if (xb_[k] < 0 && xb_[k] > -tol_) xb_[k] = 0;
    }
    xb_[leaving] = theta;
    const double alpha_q = work_[leaving];
    const int leaving_var = basis_[leaving];
    if (leaving_var < n_) in_basis_[leaving_var] = false;
    basis_[leaving] = entering;
    in_basis_[entering] = true;
    ++pivots_since_refactor_;

    const bool devex = UseDevex();
    if (!lu_.Update(leaving, spike_)) {
      // Unstable replacement: rebuild the factors from the (already
      // updated) basis columns. The Devex pass is skipped — weights are
      // approximations and the refactorization recomputed exact duals.
      if (!Refactorize()) {
        return Status::Internal(
            "basis singular after pivot — numerical failure");
      }
      return Status::OK();
    }
    fresh_factorization_ = false;

    // rho^T = e_leaving^T B_new^-1 drives both the dual update and the
    // Devex weight update.
    for (int r : rho_support_) rho_[r] = 0.0;
    rho_support_.clear();
    rho_[leaving] = 1.0;
    lu_.Btran(rho_, &leaving, 1, &rho_support_);
    // Ascending order pins the floating-point accumulation order of the
    // Devex pass to the dense path's.
    std::sort(rho_support_.begin(), rho_support_.end());
    for (int i : rho_support_) {
      if (rho_[i] != 0.0) y_[i] += d_entering * rho_[i];
    }
    if (devex) UpdateDevexWeights(leaving_var, alpha_q, gamma_entering);

    if (pivots_since_refactor_ >= refactor_interval_ ||
        lu_.TotalNnz() > max_lu_nnz_) {
      if (!Refactorize()) {
        // Singular right now — keep the working update file and back off
        // for another interval instead of re-attempting after every pivot.
        pivots_since_refactor_ = 0;
        max_lu_nnz_ = lu_.TotalNnz() + base_growth_nnz_;
      }
    }
    return Status::OK();
  }

  // Devex reference-framework update (Forrest & Goldfarb): with pivot row
  // rho, every nonbasic column j with alpha_j = rho . A_j != 0 raises its
  // weight to max(gamma_j, (alpha_j/alpha_q)^2 * gamma_q); the leaving
  // variable re-enters the nonbasic pool at max(gamma_q/alpha_q^2, 1).
  // alpha is accumulated sparsely through the CSR rows of rho's support,
  // so on Hydra's sparse rows the pass costs the support's fill — and a
  // per-pivot entry budget caps it on dense-row instances (DataSynth-style
  // wide LPs), where an exact pass would cost a full matrix sweep per
  // pivot. Skipped rows leave weights understated, which Devex tolerates:
  // they only sharpen the merit ordering, never its correctness.
  void UpdateDevexWeights(int leaving_var, double alpha_q, double gamma_q) {
    const double inv_aq2 = 1.0 / (alpha_q * alpha_q);
    alpha_touched_.clear();
    // rho is the leaving row of the NEW inverse, so the accumulated
    // alpha_[j] below is already alpha_j / alpha_q — square it directly;
    // only the leaving variable's own weight needs the 1/alpha_q^2 factor.
    int64_t budget = 16 * static_cast<int64_t>(m_) + 1024;
    for (int i : rho_support_) {
      const double r = rho_[i];
      if (std::fabs(r) <= 1e-12) continue;
      budget -= cm_.row_ptr[i + 1] - cm_.row_ptr[i];
      if (budget < 0) break;
      for (int t = cm_.row_ptr[i]; t < cm_.row_ptr[i + 1]; ++t) {
        const int j = cm_.col_idx[t];
        if (in_basis_[j]) continue;
        if (alpha_[j] == 0.0) alpha_touched_.push_back(j);
        alpha_[j] += r * cm_.rval[t];
      }
    }
    double maxw = 0.0;
    for (int j : alpha_touched_) {
      const double a = alpha_[j];
      alpha_[j] = 0.0;
      const double cand = a * a * gamma_q;
      if (cand > devex_[j]) devex_[j] = cand;
      if (devex_[j] > maxw) maxw = devex_[j];
    }
    if (leaving_var < n_) {
      devex_[leaving_var] = std::max(gamma_q * inv_aq2, 1.0);
      maxw = std::max(maxw, devex_[leaving_var]);
    }
    // Weights grown far beyond the reference framework lose their meaning;
    // restart the framework at the current nonbasic set.
    if (maxw > 1e7) devex_.assign(n_, 1.0);
  }

  // ---- basis management -------------------------------------------------
  BasisLu::Column ColumnOf(int var) const {
    if (var >= n_) {
      const int r = var - n_;
      return {&art_rows_[r], &art_vals_[r], 1};
    }
    return {cm_.row_idx.data() + cm_.col_ptr[var],
            cm_.val.data() + cm_.col_ptr[var], cm_.ColNnz(var)};
  }

  // Rebuilds the LU factors from the current basis columns, permutes basis
  // positions to the factorization's pivot rows, and recomputes x_B and the
  // duals exactly. Returns false (leaving the previous factors and update
  // file in place) if the basis is numerically singular.
  bool Refactorize() {
    ScopedLatencyTimer timer(&g_refactorize_us);
    std::vector<BasisLu::Column> cols(m_);
    for (int p = 0; p < m_; ++p) cols[p] = ColumnOf(basis_[p]);
    if (!lu_.Factorize(m_, cols)) return false;
    std::vector<int> new_basis(m_);
    for (int p = 0; p < m_; ++p) {
      new_basis[lu_.row_of_position()[p]] = basis_[p];
    }
    basis_ = std::move(new_basis);
    pivots_since_refactor_ = 0;
    max_lu_nnz_ = lu_.TotalNnz() + base_growth_nnz_;
    fresh_factorization_ = true;

    // x_B = B^-1 b (min tracked pre-clamp for warm-start validation). When
    // b's support is tiny, handing it to Ftran lets the solve run
    // hyper-sparsely over the fresh factors (the update file is empty
    // here) instead of sweeping all of L and U. The gate is deliberately
    // much tighter than Ftran's own m/8 cutoff: BM_BasisLuFtranB measures
    // mid-size supports (~m/25) losing to the dense sweep once the
    // reachability closure blows past its fallback limit, so only
    // clearly-small supports take the sparse path.
    xb_ = cm_.b;
    b_support_.clear();
    for (int i = 0; i < m_; ++i) {
      if (xb_[i] != 0.0) b_support_.push_back(i);
    }
    if (static_cast<int>(b_support_.size()) < m_ / 64) {
      lu_.Ftran(xb_, /*spike=*/nullptr, b_support_.data(),
                static_cast<int>(b_support_.size()));
    } else {
      lu_.Ftran(xb_);
    }
    min_xb_ = 0.0;
    for (double& v : xb_) {
      min_xb_ = std::min(min_xb_, v);
      if (v < 0) v = 0;
    }
    ComputeDuals();
    return true;
  }

  // y^T = c_B^T B^-1 under the current phase's costs.
  void ComputeDuals() {
    for (int i = 0; i < m_; ++i) y_[i] = BasisCost(basis_[i]);
    lu_.Btran(y_);
  }

  void ColdStart() {
    for (int i = 0; i < m_; ++i) basis_[i] = n_ + i;  // artificials
    std::fill(in_basis_.begin(), in_basis_.end(), false);
    const bool ok = Refactorize();
    HYDRA_CHECK(ok);  // the identity always factors
  }

  // Imports options_.warm_start when it matches this problem's shape and
  // yields a factorizable basis with x_B >= 0; otherwise cold-starts.
  bool TryWarmStart() {
    phase_ = 1;
    const SimplexBasis* warm = options_.warm_start;
    if (warm == nullptr || warm->empty() || warm->num_rows != m_ ||
        warm->num_vars != n_ ||
        static_cast<int>(warm->basic.size()) != m_) {
      ColdStart();
      return false;
    }
    std::fill(in_basis_.begin(), in_basis_.end(), false);
    bool valid = true;
    for (int r = 0; r < m_ && valid; ++r) {
      const int var = warm->basic[r];
      if (var >= n_ || var < -1) {
        valid = false;
      } else if (var >= 0) {
        if (in_basis_[var]) valid = false;  // duplicated column
        basis_[r] = var;
        in_basis_[var] = true;
      } else {
        basis_[r] = n_ + r;
      }
    }
    if (!valid || !Refactorize() || min_xb_ < -tol_) {
      // Structurally or numerically incompatible with this problem (a
      // negative basic value would break the phase-I invariant x >= 0):
      // fall back to the cold all-artificial start.
      ColdStart();
      return false;
    }
    return true;
  }

  void StartCanonicalPhase() {
    phase_ = 2;
    // Freeze whatever infeasibility phase I could not remove: each basic
    // artificial's residual moves from x_B into the right-hand side, so
    // from here on artificials sit at exactly zero, every refactorization
    // (x_B = B^-1 b) reproduces that, and the ratio test can pin them
    // without drift. For exactly-solved systems (the Hydra LPs) the
    // residuals are zero and b is untouched, which is what makes the
    // canonical vertex a function of the problem alone.
    for (int k = 0; k < m_; ++k) {
      if (basis_[k] >= n_ && xb_[k] != 0.0) {
        cm_.b[basis_[k] - n_] -= xb_[k];
        xb_[k] = 0.0;
      }
    }
    // New objective: exact duals, fresh pricing state, new Devex framework.
    ComputeDuals();
    for (int j : candidates_) candidate_flag_[j] = 0;
    candidates_.clear();
    refill_best_score_ = 0;
  }

  // ---- solution export --------------------------------------------------
  // The final values are recomputed through one factorization of the final
  // basis taken in a canonical column order (structurals ascending, then
  // artificials), so byte-identical basis sets give byte-identical values
  // no matter which pivot path produced them.
  StatusOr<LpSolution> Export(int phase1_iters, bool warm) {
    LpSolution sol;
    sol.values.assign(n_, 0.0);
    sol.iterations = iter_;
    sol.phase1_iterations = phase1_iters;
    sol.warm_started = warm;

    std::vector<int> vars(basis_.begin(), basis_.end());
    std::sort(vars.begin(), vars.end());
    std::vector<BasisLu::Column> cols(m_);
    for (int p = 0; p < m_; ++p) cols[p] = ColumnOf(vars[p]);
    BasisLu canonical;
    std::vector<double> xb = cm_.b;
    const int* row_of_position = nullptr;
    if (canonical.Factorize(m_, cols)) {
      canonical.Ftran(xb);
      row_of_position = canonical.row_of_position().data();
    } else {
      // The working factors already answer for this basis; fall back to
      // the path-dependent layout rather than failing the solve.
      vars = basis_;
      xb = xb_;
    }
    for (int p = 0; p < m_; ++p) {
      const int var = vars[p];
      if (var >= n_) continue;
      double v = row_of_position != nullptr ? xb[row_of_position[p]] : xb[p];
      if (v < 0) v = 0;
      // Snap values that are integral up to roundoff: the common case for
      // these 0/1 systems, and it absorbs last-ulp differences between
      // alternative optimal bases of a degenerate canonical vertex. The
      // window sits well above one ulp but far below any genuine
      // fractional vertex component.
      const double r = std::round(v);
      if (std::fabs(v - r) <= 1e-12 * std::max(1.0, std::fabs(v))) v = r;
      sol.values[var] = v;
    }
    if (options_.export_basis != nullptr) {
      SimplexBasis& out = *options_.export_basis;
      out.num_rows = m_;
      out.num_vars = n_;
      out.basic.assign(m_, -1);
      for (int p = 0; p < m_; ++p) {
        if (vars[p] < n_) {
          const int row = row_of_position != nullptr ? row_of_position[p] : p;
          out.basic[row] = vars[p];
        }
      }
    }
    return sol;
  }

  ColumnMatrix cm_;
  SimplexOptions options_;
  int m_ = 0;
  int n_ = 0;
  int phase_ = 1;
  int iter_ = 0;
  int max_iters_ = 0;
  BasisLu lu_;
  BasisLu::Spike spike_;
  uint64_t base_growth_nnz_ = 0;
  uint64_t max_lu_nnz_ = 0;
  int refactor_interval_ = 64;
  int pivots_since_refactor_ = 0;
  bool fresh_factorization_ = false;
  double min_xb_ = 0.0;       // pre-clamp min of the last refactorized x_B
  std::vector<double> xb_;
  std::vector<int> b_support_;  // nonzero rows of b (Refactorize scratch)
  std::vector<double> y_;     // dual vector, maintained incrementally
  std::vector<double> work_;  // FTRAN result of the entering column
  std::vector<int> work_support_;  // superset of work_'s nonzero rows
  std::vector<double> rho_;   // unit-vector BTRAN scratch for dual updates
  std::vector<int> rho_support_;   // superset of rho_'s nonzero rows
  std::vector<int> basis_;    // basis_[row] < n_: structural; else artificial
  std::vector<bool> in_basis_;
  std::vector<int> art_rows_;    // identity slices for artificial columns
  std::vector<double> art_vals_;
  std::vector<double> devex_;    // Devex weights (devex pricing only)
  std::vector<double> alpha_;    // sparse pivot-row accumulator, size n
  std::vector<int> alpha_touched_;
  int cursor_ = 0;            // rotating partial-pricing position
  static constexpr size_t kMaxCandidates = 32;
  std::vector<int> candidates_;  // improving columns to re-price first
  std::vector<char> candidate_flag_;  // j is in candidates_ (dedup)
  double refill_best_score_ = 0;  // best merit at the last refilling scan
  // Parallel pricing (SimplexOptions::pricing_threads > 1): a private pool
  // plus per-stripe scratch, reused across blocks so the steady state
  // allocates nothing.
  std::unique_ptr<ThreadPool> price_pool_;
  struct PricingStripe {
    std::vector<int> improving;  // unflagged improving columns, scan order
    int best = -1;
    double best_d = 0;
    double best_score = 0;
  };
  std::vector<PricingStripe> stripes_;
  double tol_ = 1e-7;
  double feas_zero_ = 1e-21;
  double price_tol_ = 1e-7;
};

}  // namespace

StatusOr<LpSolution> SolveFeasibility(const LpProblem& problem,
                                      const SimplexOptions& options) {
  if (static_cast<uint64_t>(problem.num_vars()) > options.max_variables) {
    return Status::ResourceExhausted(
        "LP has " + std::to_string(problem.num_vars()) +
        " variables, exceeding the solver budget of " +
        std::to_string(options.max_variables));
  }
  if (problem.num_constraints() == 0) {
    LpSolution sol;
    sol.values.assign(problem.num_vars(), 0.0);
    return sol;
  }
  RevisedSimplex solver(BuildColumns(problem), options);
  return solver.Solve();
}

}  // namespace hydra
