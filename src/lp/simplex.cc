#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/logging.h"

namespace hydra {

namespace {

// Compressed-sparse-column copy of the constraint matrix (rows with b < 0
// negated so that b >= 0, as phase-I requires). Built in two passes —
// count, prefix-sum, scatter — so the whole matrix lives in three flat
// arrays instead of one heap allocation per column.
struct ColumnMatrix {
  int m = 0;
  int n = 0;
  std::vector<int> col_ptr;   // n + 1
  std::vector<int> row_idx;   // nnz
  std::vector<double> val;    // nnz
  std::vector<double> b;

  int ColNnz(int j) const { return col_ptr[j + 1] - col_ptr[j]; }
};

ColumnMatrix BuildColumns(const LpProblem& p) {
  ColumnMatrix cm;
  cm.m = p.num_constraints();
  cm.n = p.num_vars();
  cm.b.resize(cm.m);
  cm.col_ptr.assign(cm.n + 1, 0);
  for (const LpConstraint& c : p.constraints()) {
    for (int v : c.vars) ++cm.col_ptr[v + 1];
  }
  for (int j = 0; j < cm.n; ++j) cm.col_ptr[j + 1] += cm.col_ptr[j];
  cm.row_idx.resize(cm.col_ptr[cm.n]);
  cm.val.resize(cm.col_ptr[cm.n]);
  std::vector<int> fill(cm.col_ptr.begin(), cm.col_ptr.end() - 1);
  for (int r = 0; r < cm.m; ++r) {
    const LpConstraint& c = p.constraints()[r];
    const double sign = c.rhs < 0 ? -1.0 : 1.0;
    cm.b[r] = sign * c.rhs;
    for (size_t i = 0; i < c.vars.size(); ++i) {
      const int slot = fill[c.vars[i]]++;
      cm.row_idx[slot] = r;
      cm.val[slot] = sign * c.coeffs[i];
    }
  }
  // Duplicate (var, row) pairs are left as-is: every consumer accumulates
  // with +=, so repeated terms sum exactly as the model intends.
  return cm;
}

// The product-form inverse: B^-1 = E_k^-1 ... E_1^-1, each eta a sparse
// elementary column transform recorded at pivot (or refactorization) time.
// Applying an eta to a vector v replaces v[pivot_row] with
// pivot_mult * v[pivot_row] and adds entry.coeff * v_pivot_old to every
// other listed row. Entries are pooled in one flat array.
struct EtaFile {
  struct Header {
    int pivot_row;
    double pivot_mult;  // 1 / w[pivot_row]
    int begin;          // [begin, end) into rows/coeffs
    int end;
  };
  std::vector<Header> etas;
  std::vector<int> rows;
  std::vector<double> coeffs;  // -w[i] / w[pivot_row]

  size_t TotalNnz() const { return rows.size() + etas.size(); }

  // Builds an eta from a dense FTRAN'd column `w` pivoting at `pivot_row`.
  void Append(const std::vector<double>& w, int pivot_row) {
    Header h;
    h.pivot_row = pivot_row;
    h.pivot_mult = 1.0 / w[pivot_row];
    h.begin = static_cast<int>(rows.size());
    const int m = static_cast<int>(w.size());
    for (int i = 0; i < m; ++i) {
      if (i != pivot_row && w[i] != 0.0) {
        rows.push_back(i);
        coeffs.push_back(-w[i] * h.pivot_mult);
      }
    }
    h.end = static_cast<int>(rows.size());
    etas.push_back(h);
  }

  // v = B^-1 v via a forward sweep. Etas whose pivot row is currently zero
  // are skipped entirely — the sparsity win.
  void Ftran(std::vector<double>& v) const {
    for (const Header& h : etas) {
      const double vr = v[h.pivot_row];
      if (vr == 0.0) continue;
      v[h.pivot_row] = h.pivot_mult * vr;
      for (int t = h.begin; t < h.end; ++t) v[rows[t]] += coeffs[t] * vr;
    }
  }

  // v^T = v^T B^-1 via a reverse sweep: each eta only changes v[pivot_row],
  // replacing it with the dot product of v and the eta column.
  void Btran(std::vector<double>& v) const {
    for (auto it = etas.rbegin(); it != etas.rend(); ++it) {
      double dot = it->pivot_mult * v[it->pivot_row];
      for (int t = it->begin; t < it->end; ++t) {
        dot += coeffs[t] * v[rows[t]];
      }
      v[it->pivot_row] = dot;
    }
  }
};

// Phase-I sparse revised simplex over the product-form-of-the-inverse.
//
// Instead of a dense m x m basis inverse, the basis is represented as an eta
// file refactorized periodically from the basis columns. FTRAN/BTRAN sweep
// the eta file; pricing maintains the dual vector y incrementally
// (y' = y + d_e * rho, rho the pivot row of the new inverse) and scans
// structural columns in rotating partial-pricing blocks rather than full
// Dantzig over all n columns. See docs/solver.md.
class PhaseOneSimplex {
 public:
  PhaseOneSimplex(ColumnMatrix cm, const SimplexOptions& options)
      : cm_(std::move(cm)), options_(options) {
    m_ = cm_.m;
    n_ = cm_.n;
    basis_.resize(m_);
    xb_ = cm_.b;
    in_basis_.assign(n_, false);
    candidate_flag_.assign(n_, 0);
    for (int i = 0; i < m_; ++i) basis_[i] = n_ + i;  // artificials
    double bmax = 1.0;
    for (double v : cm_.b) bmax = std::max(bmax, std::fabs(v));
    tol_ = options_.tolerance * bmax;
    price_tol_ = options_.tolerance;
    // Initial basis is the identity (all artificial): y = c_B = 1.
    y_.assign(m_, 1.0);
    work_.assign(m_, 0.0);
    rho_.assign(m_, 0.0);
    refactor_interval_ =
        options_.refactor_interval > 0 ? options_.refactor_interval : 64;
    // Eta-file growth bound: refactorize once the file costs more to sweep
    // than a fresh factorization of the basis would.
    base_max_eta_nnz_ = 16 * static_cast<size_t>(m_) + 1024;
    max_eta_nnz_ = base_max_eta_nnz_;
  }

  StatusOr<LpSolution> Solve() {
    const int max_iters = options_.max_iterations > 0
                              ? options_.max_iterations
                              : 50 * m_ + 5000;
    int iter = 0;
    int degenerate_streak = 0;
    bool was_bland = false;
    while (Objective() > tol_) {
      if (++iter > max_iters) {
        return Status::ResourceExhausted(
            "simplex iteration budget exceeded (" +
            std::to_string(max_iters) + ")");
      }
      const bool bland = degenerate_streak > 2 * m_ + 20;
      if (bland && !was_bland) {
        // Entering the anti-cycling regime: make the duals exact first so
        // Bland's first-negative scan is not misled by incremental drift.
        Refactorize();
      }
      was_bland = bland;
      double d_entering = 0;
      int entering = PickEntering(bland, &d_entering);
      if (entering < 0) {
        // No improving column under the (incrementally maintained) duals.
        // Re-derive y from a fresh factorization before declaring the
        // positive artificial mass a genuine infeasibility.
        if (!fresh_factorization_ && Refactorize()) {
          entering = PickEntering(bland, &d_entering);
        }
        if (entering < 0) {
          if (Objective() <= tol_) break;
          return Status::FailedPrecondition(
              "LP infeasible (phase-I objective " +
              std::to_string(Objective()) + ")");
        }
      }
      Ftran(entering);  // work_ = B^-1 A_entering
      int leaving = RatioTest(bland);
      if (leaving < 0) {
        if (!fresh_factorization_ && Refactorize()) {
          Ftran(entering);
          leaving = RatioTest(bland);
        }
        if (leaving < 0) {
          return Status::Internal("phase-I unbounded — numerical failure");
        }
      }
      const double theta = xb_[leaving] / work_[leaving];
      if (theta <= tol_ * 1e-3) {
        ++degenerate_streak;
      } else {
        degenerate_streak = 0;
      }
      Pivot(entering, leaving, theta, d_entering);
      if (pivots_since_refactor_ >= refactor_interval_ ||
          etas_.TotalNnz() > max_eta_nnz_) {
        if (!Refactorize()) {
          // Singular right now — keep the working eta file and back off for
          // another interval instead of re-attempting after every pivot.
          // The nnz bound is re-based on the current file size so a growing
          // file cannot re-trigger the attempt on the very next pivot.
          pivots_since_refactor_ = 0;
          max_eta_nnz_ = etas_.TotalNnz() + base_max_eta_nnz_;
        }
      }
    }
    LpSolution sol;
    sol.values.assign(n_, 0.0);
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] < n_) sol.values[basis_[i]] = std::max(0.0, xb_[i]);
    }
    sol.iterations = iter;
    return sol;
  }

 private:
  // Phase-I objective: total value of artificial basis variables.
  double Objective() const {
    double obj = 0;
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] >= n_) obj += xb_[i];
    }
    return obj;
  }

  // Reduced cost of structural column j under the current duals
  // (c_j = 0 for structural columns, so d_j = -y . A_j).
  double ReducedCost(int j) const {
    double d = 0;
    for (int t = cm_.col_ptr[j]; t < cm_.col_ptr[j + 1]; ++t) {
      d -= y_[cm_.row_idx[t]] * cm_.val[t];
    }
    return d;
  }

  // Partial pricing over a rotating candidate list (multiple pricing):
  // re-price the cached candidates first and enter the most negative; only
  // when the list runs dry, scan structural columns in rotating blocks from
  // the cursor, refilling the list with every negative column of the first
  // block that has one. Under Bland's rule, scan everything in index order
  // and take the first negative column. Returns -1 if no column prices out.
  int PickEntering(bool bland, double* d_entering) {
    if (bland) {
      for (int j = 0; j < n_; ++j) {
        if (in_basis_[j]) continue;
        const double d = ReducedCost(j);
        if (d < -price_tol_) {
          *d_entering = d;
          return j;
        }
      }
      return -1;
    }
    // Re-price the surviving candidates (cheap: the list is small). If the
    // best of them is still comparably attractive to the best the refilling
    // scan saw, enter it without touching fresh blocks (suboptimization).
    int best = -1;
    double best_d = -price_tol_;
    size_t w = 0;
    for (size_t t = 0; t < candidates_.size(); ++t) {
      const int j = candidates_[t];
      if (in_basis_[j] ) {
        candidate_flag_[j] = 0;
        continue;
      }
      const double d = ReducedCost(j);
      if (d >= -price_tol_) {  // stale candidate: drop
        candidate_flag_[j] = 0;
        continue;
      }
      candidates_[w++] = j;
      if (d < best_d) {
        best_d = d;
        best = j;
      }
    }
    candidates_.resize(w);
    if (best >= 0 && best_d <= 0.5 * refill_best_) {
      *d_entering = best_d;
      return best;
    }
    // Otherwise rotate fresh blocks from the cursor until one prices a
    // negative column (or the rotation completes), refilling the list with
    // every negative column seen along the way.
    const int block = std::max(256, (n_ + 31) / 32);
    int scanned = 0;
    while (scanned < n_) {
      const int begin = cursor_;
      const int len = std::min(block, n_ - scanned);
      for (int t = 0; t < len; ++t) {
        int j = begin + t;
        if (j >= n_) j -= n_;
        if (in_basis_[j]) continue;
        const double d = ReducedCost(j);
        if (d < -price_tol_) {
          if (!candidate_flag_[j] && candidates_.size() < kMaxCandidates) {
            candidate_flag_[j] = 1;
            candidates_.push_back(j);
          }
          if (d < best_d) {
            best_d = d;
            best = j;
          }
        }
      }
      scanned += len;
      cursor_ = (begin + len) % n_;
      if (best >= 0) {
        refill_best_ = best_d;
        *d_entering = best_d;
        return best;
      }
    }
    return -1;
  }

  // work_ = B^-1 A_j via the eta file.
  void Ftran(int j) {
    std::fill(work_.begin(), work_.end(), 0.0);
    for (int t = cm_.col_ptr[j]; t < cm_.col_ptr[j + 1]; ++t) {
      work_[cm_.row_idx[t]] += cm_.val[t];
    }
    etas_.Ftran(work_);
  }

  int RatioTest(bool bland) const {
    int leaving = -1;
    double best_theta = 0;
    for (int k = 0; k < m_; ++k) {
      if (work_[k] > price_tol_) {
        const double theta = xb_[k] / work_[k];
        if (leaving < 0 || theta < best_theta - 1e-12 ||
            (theta < best_theta + 1e-12 &&
             (bland ? basis_[k] < basis_[leaving]
                    // Prefer kicking artificials out of the basis on ties.
                    : basis_[k] >= n_ && basis_[leaving] < n_))) {
          leaving = k;
          best_theta = theta;
        }
      }
    }
    return leaving;
  }

  // Appends the eta for this pivot, updates x_B sparsely, and updates the
  // duals incrementally: y' = y + d_e * rho where rho is the leaving row of
  // the *new* basis inverse (a unit-vector BTRAN through the eta file).
  void Pivot(int entering, int leaving, double theta, double d_entering) {
    for (int k = 0; k < m_; ++k) {
      if (k == leaving || work_[k] == 0.0) continue;
      xb_[k] -= theta * work_[k];
      if (xb_[k] < 0 && xb_[k] > -tol_) xb_[k] = 0;
    }
    xb_[leaving] = theta;
    etas_.Append(work_, leaving);
    const bool leaving_artificial = basis_[leaving] >= n_;
    if (!leaving_artificial) in_basis_[basis_[leaving]] = false;
    basis_[leaving] = entering;
    in_basis_[entering] = true;
    ++pivots_since_refactor_;
    fresh_factorization_ = false;

    // rho^T = e_leaving^T B_new^-1.
    std::fill(rho_.begin(), rho_.end(), 0.0);
    rho_[leaving] = 1.0;
    etas_.Btran(rho_);
    for (int i = 0; i < m_; ++i) {
      if (rho_[i] != 0.0) y_[i] += d_entering * rho_[i];
    }
  }

  // Rebuilds the eta file from the current basis columns (Gauss-Jordan in
  // product form): FTRAN each basis column through the fresh file and emit
  // one eta per column, pivoting on the largest remaining row. Basis
  // positions are permuted to match the chosen pivot rows, then x_B and y
  // are recomputed exactly. Returns false (leaving the old file in place) if
  // the basis is numerically singular.
  bool Refactorize() {
    EtaFile fresh;
    std::vector<char> row_used(m_, 0);
    std::vector<int> new_basis(m_, -1);

    // Artificial columns are unit vectors: their eta is the identity, so
    // they just claim their own row. Structural columns are processed in
    // ascending-sparsity order, which keeps the fresh file close to an LU of
    // the basis for the near-triangular systems the formulator emits.
    std::vector<int> structural;
    structural.reserve(m_);
    for (int k = 0; k < m_; ++k) {
      if (basis_[k] >= n_) {
        const int row = basis_[k] - n_;
        if (row_used[row]) return false;  // duplicate artificial: corrupt
        row_used[row] = 1;
        new_basis[row] = basis_[k];
      } else {
        structural.push_back(k);
      }
    }
    std::sort(structural.begin(), structural.end(), [&](int a, int b) {
      const int na = cm_.ColNnz(basis_[a]);
      const int nb = cm_.ColNnz(basis_[b]);
      return na != nb ? na < nb : a < b;
    });

    for (int k : structural) {
      std::fill(work_.begin(), work_.end(), 0.0);
      const int j = basis_[k];
      for (int t = cm_.col_ptr[j]; t < cm_.col_ptr[j + 1]; ++t) {
        work_[cm_.row_idx[t]] += cm_.val[t];
      }
      fresh.Ftran(work_);
      int pivot_row = -1;
      double pivot_abs = 1e-11;
      for (int i = 0; i < m_; ++i) {
        if (!row_used[i] && std::fabs(work_[i]) > pivot_abs) {
          pivot_abs = std::fabs(work_[i]);
          pivot_row = i;
        }
      }
      if (pivot_row < 0) return false;  // singular basis; keep the old file
      row_used[pivot_row] = 1;
      new_basis[pivot_row] = j;
      fresh.Append(work_, pivot_row);
    }

    etas_ = std::move(fresh);
    max_eta_nnz_ = base_max_eta_nnz_;
    basis_ = std::move(new_basis);
    pivots_since_refactor_ = 0;
    fresh_factorization_ = true;

    // x_B = B^-1 b.
    xb_ = cm_.b;
    etas_.Ftran(xb_);
    for (double& v : xb_) v = std::max(0.0, v);
    // y^T = c_B^T B^-1 with c_B the artificial indicator.
    for (int i = 0; i < m_; ++i) y_[i] = basis_[i] >= n_ ? 1.0 : 0.0;
    etas_.Btran(y_);
    return true;
  }

  ColumnMatrix cm_;
  SimplexOptions options_;
  int m_ = 0;
  int n_ = 0;
  EtaFile etas_;              // product-form inverse, oldest first
  size_t base_max_eta_nnz_ = 0;
  size_t max_eta_nnz_ = 0;
  int refactor_interval_ = 64;
  int pivots_since_refactor_ = 0;
  bool fresh_factorization_ = true;
  std::vector<double> xb_;
  std::vector<double> y_;     // dual vector, maintained incrementally
  std::vector<double> work_;  // FTRAN result of the entering column
  std::vector<double> rho_;   // unit-vector BTRAN scratch for dual updates
  std::vector<int> basis_;    // basis_[k] < n_: structural; else artificial
  std::vector<bool> in_basis_;
  int cursor_ = 0;            // rotating partial-pricing position
  static constexpr size_t kMaxCandidates = 32;
  std::vector<int> candidates_;  // negative-reduced-cost columns to re-price
  std::vector<char> candidate_flag_;  // j is in candidates_ (dedup)
  double refill_best_ = 0;  // best reduced cost at the last refilling scan
  double tol_ = 1e-7;
  double price_tol_ = 1e-7;
};

}  // namespace

StatusOr<LpSolution> SolveFeasibility(const LpProblem& problem,
                                      const SimplexOptions& options) {
  if (static_cast<uint64_t>(problem.num_vars()) > options.max_variables) {
    return Status::ResourceExhausted(
        "LP has " + std::to_string(problem.num_vars()) +
        " variables, exceeding the solver budget of " +
        std::to_string(options.max_variables));
  }
  if (problem.num_constraints() == 0) {
    LpSolution sol;
    sol.values.assign(problem.num_vars(), 0.0);
    return sol;
  }
  PhaseOneSimplex solver(BuildColumns(problem), options);
  return solver.Solve();
}

}  // namespace hydra
