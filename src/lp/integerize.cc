#include "lp/integerize.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace hydra {

IntegerizeResult IntegerizeSolution(const LpProblem& problem,
                                    const std::vector<double>& solution,
                                    int repair_passes) {
  const int n = problem.num_vars();
  const int m = problem.num_constraints();
  HYDRA_CHECK(static_cast<int>(solution.size()) == n);

  IntegerizeResult result;
  result.values.resize(n);
  for (int j = 0; j < n; ++j) {
    result.values[j] =
        std::max<int64_t>(0, std::llround(std::max(0.0, solution[j])));
  }

  // How many constraints each variable appears in (repairing via variables
  // unique to one constraint cannot break any other constraint).
  std::vector<int> appearances(n, 0);
  for (const LpConstraint& c : problem.constraints()) {
    for (int v : c.vars) ++appearances[v];
  }

  auto residual_of = [&](const LpConstraint& c) -> int64_t {
    // Constraint coefficients are 0/1 in the regeneration LPs; rounding rhs
    // is exact for integral inputs.
    double lhs = 0;
    for (size_t i = 0; i < c.vars.size(); ++i) {
      lhs += c.coeffs[i] * static_cast<double>(result.values[c.vars[i]]);
    }
    return std::llround(c.rhs - lhs);
  };

  for (int pass = 0; pass < repair_passes; ++pass) {
    bool any_change = false;
    for (int ci = 0; ci < m; ++ci) {
      const LpConstraint& c = problem.constraints()[ci];
      int64_t residual = residual_of(c);
      if (residual == 0) continue;
      // Candidate variables with unit coefficient, singleton columns first,
      // then larger current values (more room to subtract).
      std::vector<int> candidates;
      for (size_t i = 0; i < c.vars.size(); ++i) {
        if (std::fabs(c.coeffs[i] - 1.0) < 1e-9) {
          candidates.push_back(c.vars[i]);
        }
      }
      std::stable_sort(candidates.begin(), candidates.end(),
                       [&](int a, int b) {
                         if (appearances[a] != appearances[b]) {
                           return appearances[a] < appearances[b];
                         }
                         return result.values[a] > result.values[b];
                       });
      for (int v : candidates) {
        if (residual == 0) break;
        if (residual > 0) {
          result.values[v] += residual;
          residual = 0;
          any_change = true;
        } else {
          const int64_t take = std::min(result.values[v], -residual);
          if (take > 0) {
            result.values[v] -= take;
            residual += take;
            any_change = true;
          }
        }
      }
    }
    if (!any_change) break;
  }

  for (const LpConstraint& c : problem.constraints()) {
    const int64_t residual = residual_of(c);
    result.max_absolute_violation = std::max<int64_t>(
        result.max_absolute_violation, std::llabs(residual));
    const double rel =
        std::fabs(static_cast<double>(residual)) / std::max(1.0, c.rhs);
    result.max_relative_violation =
        std::max(result.max_relative_violation, rel);
  }
  return result;
}

}  // namespace hydra
