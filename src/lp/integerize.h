// Integerization of an LP feasibility solution.
//
// Region counts must be non-negative integers (they are tuple counts). The
// simplex solution is rounded and then repaired constraint-by-constraint,
// preferring variables that appear in no other constraint (common in the
// regeneration LPs, where most regions touch only the total-size constraint)
// so that repairs do not cascade. Any residual violation is reported and
// surfaces as the small relative errors the paper observes.

#ifndef HYDRA_LP_INTEGERIZE_H_
#define HYDRA_LP_INTEGERIZE_H_

#include <cstdint>
#include <vector>

#include "lp/model.h"

namespace hydra {

struct IntegerizeResult {
  std::vector<int64_t> values;
  // Worst absolute |Ax - b| after repair.
  int64_t max_absolute_violation = 0;
  // Worst |Ax - b| / max(1, b) after repair.
  double max_relative_violation = 0;
};

IntegerizeResult IntegerizeSolution(const LpProblem& problem,
                                    const std::vector<double>& solution,
                                    int repair_passes = 8);

}  // namespace hydra

#endif  // HYDRA_LP_INTEGERIZE_H_
