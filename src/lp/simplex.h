// Phase-I revised simplex solver for { Ax = b, x >= 0 } feasibility.
//
// The paper delegates LP feasibility to the Z3 SMT solver; this repository
// ships its own solver so the pipeline is self-contained. The implementation
// is a sparse revised simplex: the basis inverse is kept in product form (an
// eta file of sparse elementary transforms, periodically refactorized from
// the basis columns), FTRAN/BTRAN sweep the eta file, the dual vector is
// maintained incrementally across pivots, and pricing scans structural
// columns in rotating partial-pricing blocks. See docs/solver.md. The LPs
// have few constraints — tens to a few thousand — while the variable count
// ranges from a handful for Hydra's region partitioning to millions for
// DataSynth's grid partitioning, which partial pricing absorbs gracefully.

#ifndef HYDRA_LP_SIMPLEX_H_
#define HYDRA_LP_SIMPLEX_H_

#include "common/status.h"
#include "lp/model.h"

namespace hydra {

struct SimplexOptions {
  // Hard budget on the number of structural variables; mirrors the paper's
  // observation that the solver "crashes" on DataSynth's billion-variable
  // formulations. Exceeding it returns RESOURCE_EXHAUSTED.
  uint64_t max_variables = 50'000'000;
  // Pivoting iteration budget (0 = automatic: 50*m + 5000).
  int max_iterations = 0;
  // Feasibility tolerance.
  double tolerance = 1e-7;
  // Pivots between eta-file refactorizations (0 = automatic: 64). The file
  // is also refactorized early if its nonzero count outgrows the basis.
  int refactor_interval = 0;
};

// Returns a basic feasible solution of { Ax = b, x >= 0 }, or:
//  * FAILED_PRECONDITION if the system is infeasible,
//  * RESOURCE_EXHAUSTED if it exceeds the variable or iteration budget.
StatusOr<LpSolution> SolveFeasibility(const LpProblem& problem,
                                      const SimplexOptions& options = {});

}  // namespace hydra

#endif  // HYDRA_LP_SIMPLEX_H_
