// Phase-I revised simplex solver for { Ax = b, x >= 0 } feasibility.
//
// The paper delegates LP feasibility to the Z3 SMT solver; this repository
// ships its own solver so the pipeline is self-contained. The implementation
// is a sparse revised simplex: the basis is held as a Markowitz-ordered
// sparse LU factorization with Forrest-Tomlin column-replacement updates
// (lp/basis_lu.h), FTRAN/BTRAN run against the L/U factors plus update file,
// the dual vector is maintained incrementally across pivots, and pricing is
// Devex (reference-framework weights, updated sparsely through the pivot
// row) over a rotating candidate list — classic rotating partial pricing
// stays available behind SimplexOptions::pricing for A/B comparison. After
// feasibility is reached, an optional canonicalization phase drives the
// point to the unique minimizer of a fixed pseudo-random objective so the
// reported solution does not depend on the pricing rule, warm start, or any
// other search-path detail. See docs/solver.md. The LPs have few
// constraints — tens to a few thousand — while the variable count ranges
// from a handful for Hydra's region partitioning to millions for DataSynth's
// grid partitioning, which the pricing candidate lists absorb gracefully.

#ifndef HYDRA_LP_SIMPLEX_H_
#define HYDRA_LP_SIMPLEX_H_

#include <vector>

#include "common/status.h"
#include "lp/model.h"

namespace hydra {

enum class SimplexPricing {
  // Devex reference-framework pricing (Forrest & Goldfarb): enter the
  // column maximizing d_j^2 / gamma_j. Default; iteration counts track ~m.
  kDevex,
  // Rotating partial pricing over a candidate list (the PR 1 design):
  // enter the most negative reduced cost seen in the current block.
  kPartial,
};

// A basis exported by one solve and importable as a warm start by another.
// Only meaningful for a problem with the same number of rows and variables;
// the solver re-validates (factorizes and checks x_B >= 0) on import and
// silently falls back to the cold all-artificial start when the basis is
// incompatible with the new problem.
struct SimplexBasis {
  int num_rows = 0;
  int num_vars = 0;
  // basic[row]: index of the structural variable pivoting on that row, or
  // -1 when the row is covered by its own artificial.
  std::vector<int> basic;

  bool empty() const { return basic.empty(); }
};

struct SimplexOptions {
  // Hard budget on the number of structural variables; mirrors the paper's
  // observation that the solver "crashes" on DataSynth's billion-variable
  // formulations. Exceeding it returns RESOURCE_EXHAUSTED.
  uint64_t max_variables = 50'000'000;
  // Pivoting iteration budget across both phases (0 = automatic:
  // 80*m + 10000).
  int max_iterations = 0;
  // Feasibility tolerance.
  double tolerance = 1e-7;
  // Forrest-Tomlin updates between refactorizations (0 = automatic: 256).
  // The factorization is also rebuilt early if the update file's nonzero
  // count outgrows the basis.
  int refactor_interval = 0;
  // Entering-variable rule; kPartial is kept for the ablation bench.
  SimplexPricing pricing = SimplexPricing::kDevex;
  // Worker threads for the fresh-block pricing scan (the candidate-list
  // refill over rotating column blocks — the solver's widest loop on
  // DataSynth-scale variable counts). 1 = sequential. The parallel scan
  // stripes each block over a private pool and merges stripes in column
  // order, so the candidate list, every tie-break, and therefore the entire
  // pivot path are bit-identical at any thread count. Blocks too short to
  // amortize the fork run sequentially regardless.
  int pricing_threads = 1;
  // After phase I, polish the feasible point to the unique minimizer of a
  // fixed pseudo-random positive objective. This makes the reported
  // solution a function of the problem alone — identical across pricing
  // rules, warm vs cold starts, and refactorization schedules — at the
  // cost of roughly one extra solve (the polish is a full phase II walk to
  // the canonical vertex, and phase I must first grind the artificial mass
  // to the fp floor instead of stopping at the feasibility tolerance).
  // Off by default: regeneration wants the fast path, and its output is
  // already byte-identical across runs and thread counts for a fixed
  // configuration. Turn on to make solutions comparable across solver
  // configurations (pricing A/B, warm vs cold starts).
  bool canonicalize = false;
  // Optional warm start (not owned; may be null or empty). Incompatible or
  // numerically unusable bases fall back to the cold start.
  const SimplexBasis* warm_start = nullptr;
  // When non-null, receives the final basis in canonical form for seeding
  // the next solve.
  SimplexBasis* export_basis = nullptr;
};

// Returns a basic feasible solution of { Ax = b, x >= 0 }, or:
//  * FAILED_PRECONDITION if the system is infeasible,
//  * RESOURCE_EXHAUSTED if it exceeds the variable or iteration budget.
StatusOr<LpSolution> SolveFeasibility(const LpProblem& problem,
                                      const SimplexOptions& options = {});

}  // namespace hydra

#endif  // HYDRA_LP_SIMPLEX_H_
