#include "lp/basis_lu.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

namespace hydra {

namespace {

// Entries whose magnitude falls below the column's largest entry times this
// factor are not acceptable pivots (threshold partial pivoting).
constexpr double kPivotThreshold = 0.05;
// Absolute floor below which a value never pivots.
constexpr double kAbsPivotTol = 1e-11;
// A Forrest-Tomlin update is refused when the new diagonal is this small
// relative to the spike.
constexpr double kUpdateStabilityTol = 1e-9;

}  // namespace

void BasisLu::UPool::Clear(int m) {
  range.assign(m, Span{});
  row.clear();
  val.clear();
}

void BasisLu::UPool::Erase(int s, int entry_row) {
  Span& r = range[s];
  for (int t = r.begin; t < r.begin + r.len; ++t) {
    if (row[t] == entry_row) {
      row[t] = row[r.begin + r.len - 1];
      val[t] = val[r.begin + r.len - 1];
      --r.len;
      return;
    }
  }
}

void BasisLu::UPool::Append(int s, int entry_row, double v) {
  Span& r = range[s];
  if (r.len == r.cap) {
    // Relocate to the pool tail with headroom; the old span becomes
    // garbage until the next refactorization rebuilds the pool.
    const int nb = static_cast<int>(row.size());
    const int ncap = std::max(4, 2 * r.len);
    row.resize(nb + ncap);
    val.resize(nb + ncap);
    std::copy(row.begin() + r.begin, row.begin() + r.begin + r.len,
              row.begin() + nb);
    std::copy(val.begin() + r.begin, val.begin() + r.begin + r.len,
              val.begin() + nb);
    r.begin = nb;
    r.cap = ncap;
  }
  row[r.begin + r.len] = entry_row;
  val[r.begin + r.len] = v;
  ++r.len;
}

void BasisLu::Reset() {
  l_cols_.clear();
  l_rows_.clear();
  l_vals_.clear();
  row_etas_.clear();
  eta_rows_.clear();
  eta_vals_.clear();
  num_updates_ = 0;
  u_nnz_ = 0;
}

bool BasisLu::Factorize(int m, const std::vector<Column>& cols) {
  // --- build the working copy (duplicates summed, exact zeros dropped) ---
  auto& work_cols = fac_cols_;
  auto& row_cols = fac_row_cols_;
  work_cols.resize(m);
  row_cols.resize(m);
  for (int i = 0; i < m; ++i) {
    work_cols[i].clear();
    row_cols[i].clear();
  }
  fac_row_nnz_.assign(m, 0);
  fac_col_nnz_.assign(m, 0);
  fac_row_active_.assign(m, 1);
  fac_col_active_.assign(m, 1);
  fac_acc_.assign(m, 0.0);
  {
    std::vector<int> touched;
    for (int j = 0; j < m; ++j) {
      touched.clear();
      const Column& c = cols[j];
      for (int t = 0; t < c.nnz; ++t) {
        if (fac_acc_[c.rows[t]] == 0.0) touched.push_back(c.rows[t]);
        fac_acc_[c.rows[t]] += c.vals[t];
      }
      std::sort(touched.begin(), touched.end());
      for (int r : touched) {
        if (fac_acc_[r] != 0.0) {
          work_cols[j].push_back({r, fac_acc_[r]});
          row_cols[r].push_back(j);
          ++fac_row_nnz_[r];
        }
        fac_acc_[r] = 0.0;
      }
      fac_col_nnz_[j] = static_cast<int>(work_cols[j].size());
      if (fac_col_nnz_[j] == 0) return false;  // structurally singular
    }
  }

  // Columns bucketed by active nonzero count for restricted Markowitz;
  // entries revalidate lazily on pop.
  auto& buckets = fac_buckets_;
  buckets.resize(m + 1);
  for (int i = 0; i <= m; ++i) buckets[i].clear();
  int max_level = 0;
  for (int j = 0; j < m; ++j) {
    buckets[fac_col_nnz_[j]].push_back(j);
    max_level = std::max(max_level, fac_col_nnz_[j]);
  }

  // Fresh factors, built into temporaries and committed only on success.
  std::vector<LColumn> l_cols;
  std::vector<int> l_rows;
  std::vector<double> l_vals;
  std::vector<double> diag(m, 0.0);
  // U rows recorded with *input column* ids; remapped to slots at the end.
  auto& u_rows = fac_urows_;
  u_rows.resize(m);
  for (int i = 0; i < m; ++i) u_rows[i].clear();
  fac_row_of_slot_.assign(m, -1);
  fac_slot_of_input_.assign(m, -1);

  fac_col_pos_.assign(m, 0);  // 1 + entry index of a row in a column
  fac_lmult_.assign(m, 0.0);
  fac_lcol_of_row_.assign(m, -1);
  fac_seen_.assign(m, -1);  // per-step stamp deduplicating bucket entries
  auto& lrows_step = fac_lrows_;

  for (int step = 0; step < m; ++step) {
    // --- restricted Markowitz pivot selection ----------------------------
    int best_col = -1, best_row = -1, best_entry = -1;
    int64_t best_score = -1;
    int candidates = 0;
    // Scanning stops once every still-active column has been examined —
    // without this, steps with fewer than 8 eligible candidates would walk
    // every (mostly empty) bucket level.
    const int active_cols = m - step;
    int seen_active = 0;
    for (int level = 1;
         level <= max_level && candidates < 8 && seen_active < active_cols &&
         best_score != 0;
         ++level) {
      auto& bucket = buckets[level];
      // Retired and stale entries are swap-erased in O(1) — compacting in
      // place here would copy the whole bucket tail once per step, which
      // on singleton-heavy bases turns factorization quadratic.
      size_t t = 0;
      while (t < bucket.size() && candidates < 8) {
        const int j = bucket[t];
        if (!fac_col_active_[j]) {  // retired; drop from bucket
          bucket[t] = bucket.back();
          bucket.pop_back();
          continue;
        }
        if (fac_col_nnz_[j] != level) {
          const int lvl = fac_col_nnz_[j];
          buckets[lvl].push_back(j);  // stale; migrate
          max_level = std::max(max_level, lvl);
          bucket[t] = bucket.back();
          bucket.pop_back();
          continue;
        }
        if (fac_seen_[j] == step) {
          // Reseating pushes duplicates; drop them here so they cannot
          // inflate seen_active/candidates and end the search before every
          // active column was really examined.
          bucket[t] = bucket.back();
          bucket.pop_back();
          continue;
        }
        fac_seen_[j] = step;
        ++t;
        ++seen_active;
        double colmax = 0.0;
        for (const Entry& e : work_cols[j]) {
          if (fac_row_active_[e.row]) {
            colmax = std::max(colmax, std::fabs(e.val));
          }
        }
        if (colmax < kAbsPivotTol) continue;
        int row = -1, entry = -1, rn = 0;
        for (size_t k = 0; k < work_cols[j].size(); ++k) {
          const Entry& e = work_cols[j][k];
          if (!fac_row_active_[e.row]) continue;
          if (std::fabs(e.val) < kPivotThreshold * colmax ||
              std::fabs(e.val) < kAbsPivotTol) {
            continue;
          }
          if (row < 0 || fac_row_nnz_[e.row] < rn ||
              (fac_row_nnz_[e.row] == rn && e.row < row)) {
            row = e.row;
            rn = fac_row_nnz_[e.row];
            entry = static_cast<int>(k);
          }
        }
        if (row < 0) continue;
        ++candidates;
        const int64_t score =
            static_cast<int64_t>(level - 1) * static_cast<int64_t>(rn - 1);
        if (best_col < 0 || score < best_score ||
            (score == best_score && j < best_col)) {
          best_score = score;
          best_col = j;
          best_row = row;
          best_entry = entry;
        }
      }
    }
    if (best_col < 0) return false;  // no eligible pivot: singular

    const int pr = best_row;
    const int pc = best_col;
    const double pivot = work_cols[pc][best_entry].val;

    // --- record L column and retire the pivot column ---------------------
    LColumn lc;
    lc.pivot_row = pr;
    lc.begin = static_cast<int>(l_rows.size());
    lrows_step.clear();
    for (const Entry& e : work_cols[pc]) {
      if (!fac_row_active_[e.row] || e.row == pr) continue;
      const double mult = e.val / pivot;
      l_rows.push_back(e.row);
      l_vals.push_back(mult);
      fac_lmult_[e.row] = mult;
      lrows_step.push_back(e.row);
      --fac_row_nnz_[e.row];  // the pivot-column entry leaves the matrix
    }
    lc.end = static_cast<int>(l_rows.size());
    if (lc.end > lc.begin) l_cols.push_back(lc);  // unit columns are identity
    fac_lcol_of_row_[pr] =
        lc.end > lc.begin ? static_cast<int>(l_cols.size()) - 1 : -1;
    fac_col_active_[pc] = 0;
    fac_row_active_[pr] = 0;
    diag[step] = pivot;
    fac_row_of_slot_[step] = pr;
    fac_slot_of_input_[pc] = step;

    // --- record the U row and eliminate it from the active matrix --------
    {
      auto& rc = row_cols[pr];
      size_t w = 0;
      for (size_t t = 0; t < rc.size(); ++t) {
        const int j = rc[t];
        if (!fac_col_active_[j]) continue;
        // Locate row pr in column j.
        int idx = -1;
        for (size_t k = 0; k < work_cols[j].size(); ++k) {
          if (work_cols[j][k].row == pr) {
            idx = static_cast<int>(k);
            break;
          }
        }
        if (idx < 0) continue;  // stale listing
        rc[w++] = j;
        const double vrj = work_cols[j][idx].val;
        if (vrj != 0.0) {
          u_rows[step].push_back({j, vrj});  // input-column id
        }
        // Drop the pivot-row entry, then apply  col_j -= mult * col_pc.
        work_cols[j][idx] = work_cols[j].back();
        work_cols[j].pop_back();
        --fac_col_nnz_[j];
        if (vrj != 0.0 && !lrows_step.empty()) {
          for (size_t k = 0; k < work_cols[j].size(); ++k) {
            fac_col_pos_[work_cols[j][k].row] = static_cast<int>(k) + 1;
          }
          for (int i : lrows_step) {
            const double delta = fac_lmult_[i] * vrj;
            if (fac_col_pos_[i] > 0) {
              work_cols[j][fac_col_pos_[i] - 1].val -= delta;
            } else if (delta != 0.0) {
              work_cols[j].push_back({i, -delta});  // fill-in
              fac_col_pos_[i] = static_cast<int>(work_cols[j].size());
              row_cols[i].push_back(j);
              ++fac_row_nnz_[i];
              ++fac_col_nnz_[j];
            }
          }
          for (const Entry& e : work_cols[j]) fac_col_pos_[e.row] = 0;
        }
      }
      rc.resize(w);
      // Updated columns changed size; reseat them in their buckets.
      for (size_t t = 0; t < w; ++t) {
        const int lvl = fac_col_nnz_[rc[t]];
        buckets[lvl].push_back(rc[t]);
        max_level = std::max(max_level, lvl);
      }
    }
    for (int i : lrows_step) fac_lmult_[i] = 0.0;
  }

  // --- commit ------------------------------------------------------------
  m_ = m;
  Reset();
  l_cols_ = std::move(l_cols);
  l_rows_ = std::move(l_rows);
  l_vals_ = std::move(l_vals);
  row_of_position_.assign(m, -1);
  for (int j = 0; j < m; ++j) {
    row_of_position_[j] = fac_row_of_slot_[fac_slot_of_input_[j]];
  }
  // Everything committed below lives in ROW coordinates (pivot row ids):
  // diag_[r], the U pools, and the triangular order. This keeps FTRAN and
  // BTRAN free of slot gather/scatter passes.
  diag_.assign(m, 0.0);
  for (int k = 0; k < m; ++k) diag_[fac_row_of_slot_[k]] = diag[k];
  order_.resize(m);
  pos_in_order_.resize(m);
  for (int k = 0; k < m; ++k) {
    order_[k] = fac_row_of_slot_[k];
    pos_in_order_[fac_row_of_slot_[k]] = k;
  }
  // Flatten U into the row/col pools (exactly sized; updates relocate
  // ranges to the tail as they outgrow), remapping entries from input
  // column ids to their pivot rows.
  urows_.Clear(m);
  ucols_.Clear(m);
  {
    std::vector<int>& colcount = fac_col_pos_;  // reuse as scratch
    colcount.assign(m, 0);
    int total = 0;
    for (int k = 0; k < m; ++k) {
      total += static_cast<int>(u_rows[k].size());
      for (Entry& e : u_rows[k]) {
        e.row = fac_row_of_slot_[fac_slot_of_input_[e.row]];
        ++colcount[e.row];
      }
    }
    urows_.row.resize(total);
    urows_.val.resize(total);
    ucols_.row.resize(total);
    ucols_.val.resize(total);
    int at = 0;
    for (int k = 0; k < m; ++k) {
      const int rk = fac_row_of_slot_[k];
      Span& r = urows_.range[rk];
      r.begin = at;
      r.len = r.cap = static_cast<int>(u_rows[k].size());
      for (const Entry& e : u_rows[k]) {
        urows_.row[at] = e.row;
        urows_.val[at] = e.val;
        ++at;
      }
    }
    at = 0;
    for (int k = 0; k < m; ++k) {
      Span& r = ucols_.range[k];
      r.begin = at;
      r.cap = colcount[k];
      at += colcount[k];
    }
    for (int k = 0; k < m; ++k) {
      const int rk = fac_row_of_slot_[k];
      const Span& rr = urows_.range[rk];
      for (int t = rr.begin; t < rr.begin + rr.len; ++t) {
        Span& cr = ucols_.range[urows_.row[t]];
        ucols_.row[cr.begin + cr.len] = rk;
        ucols_.val[cr.begin + cr.len] = urows_.val[t];
        ++cr.len;
      }
    }
    colcount.assign(m, 0);
    u_nnz_ = total;
  }
  l_col_of_row_ = fac_lcol_of_row_;
  // Inverse L index: row -> L columns listing it (CSR), for the transposed
  // hyper-sparse closure in Btran.
  linv_ptr_.assign(m + 1, 0);
  for (int r : l_rows_) ++linv_ptr_[r + 1];
  for (int i = 0; i < m; ++i) linv_ptr_[i + 1] += linv_ptr_[i];
  linv_step_.resize(l_rows_.size());
  {
    std::vector<int>& fill = fac_col_pos_;  // reuse as scratch
    fill.assign(linv_ptr_.begin(), linv_ptr_.end() - 1);
    for (int k = 0; k < static_cast<int>(l_cols_.size()); ++k) {
      for (int t = l_cols_[k].begin; t < l_cols_[k].end; ++t) {
        linv_step_[fill[l_rows_[t]]++] = k;
      }
    }
    fill.assign(m, 0);
  }
  stamp_.assign(m, 0);
  stamp_gen_ = 0;
  work_.assign(m, 0.0);
  return true;
}

void BasisLu::AllRows(std::vector<int>* out) const {
  out->resize(m_);
  for (int i = 0; i < m_; ++i) (*out)[i] = i;
}

void BasisLu::Ftran(std::vector<double>& v, Spike* spike, const int* rhs_rows,
                    int rhs_nnz, std::vector<int>* out_rows) const {
  if (rhs_rows == nullptr || rhs_nnz > m_ / 8) {
    FtranDense(v, spike);
    if (out_rows != nullptr) AllRows(out_rows);
    return;
  }
  const int limit = m_ / 4;
  ++stamp_gen_;
  touch_.clear();
  dfs_.clear();
  for (int t = 0; t < rhs_nnz; ++t) {
    const int r = rhs_rows[t];
    if (stamp_[r] != stamp_gen_) {
      stamp_[r] = stamp_gen_;
      touch_.push_back(r);
      dfs_.push_back(r);
    }
  }
  // Reachability closure over L: row r feeds the rows of its L column.
  bool fallback = false;
  while (!dfs_.empty()) {
    const int r = dfs_.back();
    dfs_.pop_back();
    const int k = l_col_of_row_[r];
    if (k < 0) continue;
    for (int t = l_cols_[k].begin; t < l_cols_[k].end; ++t) {
      const int i = l_rows_[t];
      if (stamp_[i] != stamp_gen_) {
        stamp_[i] = stamp_gen_;
        touch_.push_back(i);
        dfs_.push_back(i);
      }
    }
    if (static_cast<int>(touch_.size()) > limit) {
      fallback = true;
      break;
    }
  }
  if (fallback) {
    FtranDense(v, spike);
    if (out_rows != nullptr) AllRows(out_rows);
    return;
  }
  // Apply the touched L columns in pivot order.
  steps_.clear();
  for (int r : touch_) {
    if (l_col_of_row_[r] >= 0) steps_.push_back(l_col_of_row_[r]);
  }
  std::sort(steps_.begin(), steps_.end());
  for (int k : steps_) {
    const LColumn& lc = l_cols_[k];
    const double piv = v[lc.pivot_row];
    if (piv == 0.0) continue;
    for (int t = lc.begin; t < lc.end; ++t) v[l_rows_[t]] -= l_vals_[t] * piv;
  }
  // Row etas in append order; an eta fires when any of its entry rows is
  // in the support (unmarked rows are exact zeros).
  for (const RowEta& eta : row_etas_) {
    double acc = 0.0;
    bool any = false;
    for (int t = eta.begin; t < eta.end; ++t) {
      const int r = eta_rows_[t];
      if (stamp_[r] == stamp_gen_) {
        acc += eta_vals_[t] * v[r];
        any = true;
      }
    }
    if (!any) continue;
    v[eta.target_row] -= acc;
    if (stamp_[eta.target_row] != stamp_gen_) {
      stamp_[eta.target_row] = stamp_gen_;
      touch_.push_back(eta.target_row);
    }
  }
  if (spike != nullptr) {
    // Maintain the (caller-reused) spike dense buffer sparsely: clear the
    // previous support, then copy only this FTRAN's touched rows — Update
    // reads untouched rows as exact zeros.
    if (static_cast<int>(spike->values.size()) != m_) {
      spike->values.assign(m_, 0.0);
    } else {
      for (int r : spike->rows) spike->values[r] = 0.0;
    }
    for (int r : touch_) spike->values[r] = v[r];
    spike->rows = touch_;
  }
  // Ancestor closure over U columns: x_j != 0 affects the rows of U
  // column j.
  dfs_ = touch_;
  while (!dfs_.empty()) {
    const int j = dfs_.back();
    dfs_.pop_back();
    const Span r = ucols_.range[j];
    for (int t = r.begin; t < r.begin + r.len; ++t) {
      const int k = ucols_.row[t];
      if (stamp_[k] != stamp_gen_) {
        stamp_[k] = stamp_gen_;
        touch_.push_back(k);
        dfs_.push_back(k);
      }
    }
    if (static_cast<int>(touch_.size()) > limit) {
      fallback = true;
      break;
    }
  }
  if (fallback) {
    for (int pos = m_ - 1; pos >= 0; --pos) {
      const int s = order_[pos];
      const Span r = urows_.range[s];
      double val = v[s];
      if (val == 0.0 && r.len == 0) continue;
      for (int t = r.begin; t < r.begin + r.len; ++t) {
        val -= urows_.val[t] * v[urows_.row[t]];
      }
      v[s] = val / diag_[s];
    }
    if (out_rows != nullptr) AllRows(out_rows);
    return;
  }
  // Backward substitution over the touched rows, latest order position
  // first (a row's dependencies all sit later in the order).
  std::sort(touch_.begin(), touch_.end(), [&](int a, int b) {
    return pos_in_order_[a] > pos_in_order_[b];
  });
  for (int s : touch_) {
    const Span r = urows_.range[s];
    double val = v[s];
    for (int t = r.begin; t < r.begin + r.len; ++t) {
      val -= urows_.val[t] * v[urows_.row[t]];
    }
    v[s] = val / diag_[s];
  }
  if (out_rows != nullptr) *out_rows = touch_;
}

void BasisLu::FtranDense(std::vector<double>& v, Spike* spike) const {
  // L sweep; columns whose pivot value is zero are skipped.
  for (const LColumn& lc : l_cols_) {
    const double piv = v[lc.pivot_row];
    if (piv == 0.0) continue;
    for (int t = lc.begin; t < lc.end; ++t) v[l_rows_[t]] -= l_vals_[t] * piv;
  }
  // Forrest-Tomlin row etas, in append order.
  for (const RowEta& eta : row_etas_) {
    double acc = 0.0;
    for (int t = eta.begin; t < eta.end; ++t) {
      acc += eta_vals_[t] * v[eta_rows_[t]];
    }
    v[eta.target_row] -= acc;
  }
  if (spike != nullptr) {
    spike->values = v;
    AllRows(&spike->rows);
  }
  // U backward substitution along the logical order.
  for (int pos = m_ - 1; pos >= 0; --pos) {
    const int s = order_[pos];
    const Span r = urows_.range[s];
    double val = v[s];
    if (val == 0.0 && r.len == 0) continue;
    for (int t = r.begin; t < r.begin + r.len; ++t) {
      val -= urows_.val[t] * v[urows_.row[t]];
    }
    v[s] = val / diag_[s];
  }
}

void BasisLu::Btran(std::vector<double>& v, const int* rhs_rows, int rhs_nnz,
                    std::vector<int>* out_rows) const {
  if (rhs_rows == nullptr || rhs_nnz > m_ / 8) {
    BtranDense(v);
    if (out_rows != nullptr) AllRows(out_rows);
    return;
  }
  const int limit = m_ / 4;
  ++stamp_gen_;
  touch_.clear();
  dfs_.clear();
  for (int t = 0; t < rhs_nnz; ++t) {
    const int r = rhs_rows[t];
    if (stamp_[r] != stamp_gen_) {
      stamp_[r] = stamp_gen_;
      touch_.push_back(r);
      dfs_.push_back(r);
    }
  }
  // Descendant closure over U rows: z_j != 0 affects the rows of U row j.
  bool fallback = false;
  while (!dfs_.empty()) {
    const int j = dfs_.back();
    dfs_.pop_back();
    const Span r = urows_.range[j];
    for (int t = r.begin; t < r.begin + r.len; ++t) {
      const int k = urows_.row[t];
      if (stamp_[k] != stamp_gen_) {
        stamp_[k] = stamp_gen_;
        touch_.push_back(k);
        dfs_.push_back(k);
      }
    }
    if (static_cast<int>(touch_.size()) > limit) {
      fallback = true;
      break;
    }
  }
  if (fallback) {
    BtranDense(v);
    if (out_rows != nullptr) AllRows(out_rows);
    return;
  }
  // Forward substitution over the touched rows, earliest position first.
  std::sort(touch_.begin(), touch_.end(), [&](int a, int b) {
    return pos_in_order_[a] < pos_in_order_[b];
  });
  for (int s : touch_) {
    const Span r = ucols_.range[s];
    double val = v[s];
    for (int t = r.begin; t < r.begin + r.len; ++t) {
      val -= ucols_.val[t] * v[ucols_.row[t]];
    }
    v[s] = val / diag_[s];
  }
  // Transposed row etas, reverse append order; spread marks to entry rows.
  for (auto it = row_etas_.rbegin(); it != row_etas_.rend(); ++it) {
    if (stamp_[it->target_row] != stamp_gen_) continue;
    const double val = v[it->target_row];
    if (val == 0.0) continue;
    for (int t = it->begin; t < it->end; ++t) {
      const int r = eta_rows_[t];
      v[r] -= eta_vals_[t] * val;
      if (stamp_[r] != stamp_gen_) {
        stamp_[r] = stamp_gen_;
        touch_.push_back(r);
      }
    }
  }
  // Transposed L closure: a touched entry row feeds the pivot rows of the
  // L columns listing it (chains handled by the DFS).
  dfs_ = touch_;
  steps_.clear();
  while (!dfs_.empty()) {
    const int i = dfs_.back();
    dfs_.pop_back();
    for (int t = linv_ptr_[i]; t < linv_ptr_[i + 1]; ++t) {
      const int k = linv_step_[t];
      steps_.push_back(k);
      const int pr = l_cols_[k].pivot_row;
      if (stamp_[pr] != stamp_gen_) {
        stamp_[pr] = stamp_gen_;
        touch_.push_back(pr);
        dfs_.push_back(pr);
      }
    }
    if (static_cast<int>(touch_.size()) > limit) {
      fallback = true;
      break;
    }
  }
  if (fallback) {
    for (auto it = l_cols_.rbegin(); it != l_cols_.rend(); ++it) {
      double acc = 0.0;
      for (int t = it->begin; t < it->end; ++t) {
        acc += l_vals_[t] * v[l_rows_[t]];
      }
      v[it->pivot_row] -= acc;
    }
    if (out_rows != nullptr) AllRows(out_rows);
    return;
  }
  std::sort(steps_.begin(), steps_.end());
  steps_.erase(std::unique(steps_.begin(), steps_.end()), steps_.end());
  for (auto it = steps_.rbegin(); it != steps_.rend(); ++it) {
    const LColumn& lc = l_cols_[*it];
    double acc = 0.0;
    for (int t = lc.begin; t < lc.end; ++t) {
      acc += l_vals_[t] * v[l_rows_[t]];
    }
    v[lc.pivot_row] -= acc;
  }
  if (out_rows != nullptr) *out_rows = touch_;
}

void BasisLu::BtranDense(std::vector<double>& v) const {
  // U^T forward substitution along the logical order.
  for (int pos = 0; pos < m_; ++pos) {
    const int s = order_[pos];
    const Span r = ucols_.range[s];
    double val = v[s];
    if (val == 0.0 && r.len == 0) continue;
    for (int t = r.begin; t < r.begin + r.len; ++t) {
      val -= ucols_.val[t] * v[ucols_.row[t]];
    }
    v[s] = val / diag_[s];
  }
  // Transposed row etas, reverse append order.
  for (auto it = row_etas_.rbegin(); it != row_etas_.rend(); ++it) {
    const double val = v[it->target_row];
    if (val == 0.0) continue;
    for (int t = it->begin; t < it->end; ++t) {
      v[eta_rows_[t]] -= eta_vals_[t] * val;
    }
  }
  // Transposed L sweep, reverse column order.
  for (auto it = l_cols_.rbegin(); it != l_cols_.rend(); ++it) {
    double acc = 0.0;
    for (int t = it->begin; t < it->end; ++t) {
      acc += l_vals_[t] * v[l_rows_[t]];
    }
    v[it->pivot_row] -= acc;
  }
}

bool BasisLu::Update(int leaving_row, const Spike& spike) {
  const int t = leaving_row;
  const std::vector<double>& u = spike.values;

  // Dry-run the elimination of row t against the triangular part after t:
  // accumulate the row ops into stamped scratch (work_ holds garbage for
  // unstamped rows) and compute the new diagonal, visiting candidate rows
  // through a position-ordered heap so the pass costs the fill of the
  // touched U rows, not O(m). U is not modified until the update is known
  // to be stable.
  std::vector<double>& w = work_;
  ++stamp_gen_;
  heap_.clear();
  const auto wadd = [&](int r, double val) {
    if (stamp_[r] != stamp_gen_) {
      stamp_[r] = stamp_gen_;
      w[r] = val;
      heap_.emplace_back(pos_in_order_[r], r);
      std::push_heap(heap_.begin(), heap_.end(),
                     std::greater<std::pair<int, int>>());
    } else {
      w[r] += val;
    }
  };
  {
    const Span r = urows_.range[t];
    for (int k = r.begin; k < r.begin + r.len; ++k) {
      wadd(urows_.row[k], urows_.val[k]);
    }
  }
  double d = u[t];
  double umax = 0.0;
  for (int r : spike.rows) umax = std::max(umax, std::fabs(u[r]));
  update_eta_.clear();
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(),
                  std::greater<std::pair<int, int>>());
    const int j = heap_.back().second;
    heap_.pop_back();
    const double val = w[j];
    if (val == 0.0) continue;
    const double mult = val / diag_[j];
    update_eta_.push_back({j, mult});
    d -= mult * u[j];
    const Span r = urows_.range[j];
    for (int k = r.begin; k < r.begin + r.len; ++k) {
      wadd(urows_.row[k], -mult * urows_.val[k]);
    }
  }

  if (std::fabs(d) <= kUpdateStabilityTol * (1.0 + umax)) {
    return false;  // numerically unstable replacement; refactorize instead
  }

  // --- commit ------------------------------------------------------------
  {
    const Span r = ucols_.range[t];
    for (int k = r.begin; k < r.begin + r.len; ++k) {
      urows_.Erase(ucols_.row[k], t);
      --u_nnz_;
    }
  }
  {
    const Span r = urows_.range[t];
    for (int k = r.begin; k < r.begin + r.len; ++k) {
      ucols_.Erase(urows_.row[k], t);
      --u_nnz_;
    }
  }
  urows_.range[t].len = 0;
  ucols_.range[t].len = 0;
  // Install the spike as the (logically last) column of slot t.
  for (int s : spike.rows) {
    if (s == t || u[s] == 0.0) continue;
    ucols_.Append(t, s, u[s]);
    urows_.Append(s, t, u[s]);
    ++u_nnz_;
  }
  diag_[t] = d;
  if (!update_eta_.empty()) {
    RowEta rec;
    rec.target_row = t;
    rec.begin = static_cast<int>(eta_rows_.size());
    for (const Entry& e : update_eta_) {
      eta_rows_.push_back(e.row);
      eta_vals_.push_back(e.val);
    }
    rec.end = static_cast<int>(eta_rows_.size());
    row_etas_.push_back(rec);
  }
  // Move row t to the end of the logical order.
  const int tpos = pos_in_order_[t];
  order_.erase(order_.begin() + tpos);
  order_.push_back(t);
  for (int pos = tpos; pos < m_; ++pos) pos_in_order_[order_[pos]] = pos;
  ++num_updates_;
  return true;
}

uint64_t BasisLu::TotalNnz() const {
  return l_vals_.size() + eta_vals_.size() + u_nnz_ +
         static_cast<uint64_t>(m_);
}

}  // namespace hydra
