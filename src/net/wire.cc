#include "net/wire.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>
#include <vector>

namespace hydra {

namespace {

void PutU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}

void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

void PutU64(uint8_t* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v));
  PutU32(p + 4, static_cast<uint32_t>(v >> 32));
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

}  // namespace

void EncodeFrameHeader(const FrameHeader& header, uint8_t* out) {
  PutU32(out, header.magic);
  out[4] = header.version;
  out[5] = header.opcode;
  PutU16(out + 6, header.reserved);
  PutU64(out + 8, header.request_id);
  PutU32(out + 16, header.payload_len);
}

FrameHeader DecodeFrameHeader(const uint8_t* in) {
  FrameHeader header;
  header.magic = GetU32(in);
  header.version = in[4];
  header.opcode = in[5];
  header.reserved = GetU16(in + 6);
  header.request_id = GetU64(in + 8);
  header.payload_len = GetU32(in + 16);
  return header;
}

Status ValidateFrameHeader(const FrameHeader& header) {
  if (header.magic != kWireMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (header.version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version");
  }
  if (header.payload_len > kMaxPayloadBytes) {
    return Status::InvalidArgument("frame payload too large");
  }
  return Status::OK();
}

void WireWriter::U16(uint16_t v) {
  uint8_t buf[2];
  PutU16(buf, v);
  Bytes(buf, sizeof(buf));
}

void WireWriter::U32(uint32_t v) {
  uint8_t buf[4];
  PutU32(buf, v);
  Bytes(buf, sizeof(buf));
}

void WireWriter::U64(uint64_t v) {
  uint8_t buf[8];
  PutU64(buf, v);
  Bytes(buf, sizeof(buf));
}

void WireWriter::Bytes(const void* data, size_t n) {
  out_->append(static_cast<const char*>(data), n);
}

void WireWriter::LengthPrefixed(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  Bytes(s.data(), s.size());
}

Status WireReader::Take(size_t n, const uint8_t** p) {
  if (size_ - pos_ < n) {
    return Status::InvalidArgument("truncated wire payload");
  }
  *p = data_ + pos_;
  pos_ += n;
  return Status::OK();
}

Status WireReader::U8(uint8_t* v) {
  const uint8_t* p;
  HYDRA_RETURN_IF_ERROR(Take(1, &p));
  *v = *p;
  return Status::OK();
}

Status WireReader::U16(uint16_t* v) {
  const uint8_t* p;
  HYDRA_RETURN_IF_ERROR(Take(2, &p));
  *v = GetU16(p);
  return Status::OK();
}

Status WireReader::U32(uint32_t* v) {
  const uint8_t* p;
  HYDRA_RETURN_IF_ERROR(Take(4, &p));
  *v = GetU32(p);
  return Status::OK();
}

Status WireReader::U64(uint64_t* v) {
  const uint8_t* p;
  HYDRA_RETURN_IF_ERROR(Take(8, &p));
  *v = GetU64(p);
  return Status::OK();
}

Status WireReader::I32(int32_t* v) {
  uint32_t raw;
  HYDRA_RETURN_IF_ERROR(U32(&raw));
  *v = static_cast<int32_t>(raw);
  return Status::OK();
}

Status WireReader::I64(int64_t* v) {
  uint64_t raw;
  HYDRA_RETURN_IF_ERROR(U64(&raw));
  *v = static_cast<int64_t>(raw);
  return Status::OK();
}

Status WireReader::LengthPrefixed(std::string* s) {
  uint32_t len;
  HYDRA_RETURN_IF_ERROR(U32(&len));
  const uint8_t* p;
  HYDRA_RETURN_IF_ERROR(Take(len, &p));
  s->assign(reinterpret_cast<const char*>(p), len);
  return Status::OK();
}

void AppendStatusEnvelope(const Status& status, std::string* out) {
  WireWriter writer(out);
  writer.U16(static_cast<uint16_t>(ToServeErrorCode(status.code())));
  writer.LengthPrefixed(status.ok() ? std::string() : status.message());
}

Status ReadStatusEnvelope(WireReader* reader, Status* status) {
  uint16_t code;
  std::string message;
  HYDRA_RETURN_IF_ERROR(reader->U16(&code));
  HYDRA_RETURN_IF_ERROR(reader->LengthPrefixed(&message));
  *status = StatusFromWire(code, std::move(message));
  return Status::OK();
}

void AppendOpenSessionRequest(const OpenSessionRequest& request,
                              std::string* out) {
  WireWriter writer(out);
  writer.LengthPrefixed(request.summary_id);
  writer.I64(request.deadline_ms);
  writer.I32(request.priority);
  writer.I64(request.rate_limit_rows_per_sec);
}

Status ReadOpenSessionRequest(WireReader* reader, OpenSessionRequest* request) {
  HYDRA_RETURN_IF_ERROR(reader->LengthPrefixed(&request->summary_id));
  HYDRA_RETURN_IF_ERROR(reader->I64(&request->deadline_ms));
  HYDRA_RETURN_IF_ERROR(reader->I32(&request->priority));
  HYDRA_RETURN_IF_ERROR(reader->I64(&request->rate_limit_rows_per_sec));
  request->cancel = nullptr;
  return Status::OK();
}

void AppendPredicate(const DnfPredicate& predicate, std::string* out) {
  WireWriter writer(out);
  writer.U32(static_cast<uint32_t>(predicate.conjuncts().size()));
  for (const Conjunct& conjunct : predicate.conjuncts()) {
    writer.U32(static_cast<uint32_t>(conjunct.atoms.size()));
    for (const Atom& atom : conjunct.atoms) {
      writer.I32(atom.column);
      writer.U32(static_cast<uint32_t>(atom.values.intervals().size()));
      for (const Interval& interval : atom.values.intervals()) {
        writer.I64(interval.lo);
        writer.I64(interval.hi);
      }
    }
  }
}

Status ReadPredicate(WireReader* reader, DnfPredicate* predicate) {
  *predicate = DnfPredicate();  // zero conjuncts = False()
  uint32_t num_conjuncts;
  HYDRA_RETURN_IF_ERROR(reader->U32(&num_conjuncts));
  for (uint32_t c = 0; c < num_conjuncts; ++c) {
    Conjunct conjunct;
    uint32_t num_atoms;
    HYDRA_RETURN_IF_ERROR(reader->U32(&num_atoms));
    for (uint32_t a = 0; a < num_atoms; ++a) {
      Atom atom;
      HYDRA_RETURN_IF_ERROR(reader->I32(&atom.column));
      uint32_t num_intervals;
      HYDRA_RETURN_IF_ERROR(reader->U32(&num_intervals));
      std::vector<Interval> intervals;
      // Reserve only what the bytes present can back (16 bytes each), so a
      // lying count can't force a huge allocation.
      intervals.reserve(
          std::min<size_t>(num_intervals, reader->remaining() / 16 + 1));
      for (uint32_t i = 0; i < num_intervals; ++i) {
        Interval interval;
        HYDRA_RETURN_IF_ERROR(reader->I64(&interval.lo));
        HYDRA_RETURN_IF_ERROR(reader->I64(&interval.hi));
        intervals.push_back(interval);
      }
      atom.values = IntervalSet(std::move(intervals));
      conjunct.atoms.push_back(std::move(atom));
    }
    predicate->AddConjunct(std::move(conjunct));
  }
  return Status::OK();
}

void AppendCursorSpec(const CursorSpec& spec, std::string* out) {
  WireWriter writer(out);
  writer.I32(spec.relation);
  writer.I64(spec.begin_rank);
  writer.I64(spec.end_rank);
  writer.U32(static_cast<uint32_t>(spec.projection.size()));
  for (const int col : spec.projection) writer.I32(col);
  AppendPredicate(spec.filter, out);
}

Status ReadCursorSpec(WireReader* reader, CursorSpec* spec) {
  HYDRA_RETURN_IF_ERROR(reader->I32(&spec->relation));
  HYDRA_RETURN_IF_ERROR(reader->I64(&spec->begin_rank));
  HYDRA_RETURN_IF_ERROR(reader->I64(&spec->end_rank));
  uint32_t num_projection;
  HYDRA_RETURN_IF_ERROR(reader->U32(&num_projection));
  spec->projection.clear();
  spec->projection.reserve(
      std::min<size_t>(num_projection, reader->remaining() / 4 + 1));
  for (uint32_t i = 0; i < num_projection; ++i) {
    int32_t col;
    HYDRA_RETURN_IF_ERROR(reader->I32(&col));
    spec->projection.push_back(col);
  }
  return ReadPredicate(reader, &spec->filter);
}

void AppendRowBlock(const RowBlock& block, std::string* out) {
  WireWriter writer(out);
  writer.U32(static_cast<uint32_t>(block.num_columns()));
  writer.U64(static_cast<uint64_t>(block.num_rows()));
  // Columns go out as raw value buffers (8 bytes per value, host order —
  // the protocol targets little-endian hosts on both ends).
  const size_t column_bytes =
      static_cast<size_t>(block.num_rows()) * sizeof(Value);
  for (int c = 0; c < block.num_columns(); ++c) {
    writer.Bytes(block.Column(c), column_bytes);
  }
}

Status ReadRowBlock(WireReader* reader, RowBlock* block) {
  uint32_t num_columns;
  uint64_t num_rows;
  HYDRA_RETURN_IF_ERROR(reader->U32(&num_columns));
  HYDRA_RETURN_IF_ERROR(reader->U64(&num_rows));
  // The whole block must be backed by bytes actually present before any
  // allocation happens — a lying header is rejected, not trusted.
  if (num_columns > 0 && num_rows > reader->remaining() / sizeof(Value) /
                                        num_columns) {
    return Status::InvalidArgument("row block larger than payload");
  }
  block->Reset(static_cast<int>(num_columns));
  block->ResizeUninitialized(static_cast<int64_t>(num_rows));
  const size_t column_bytes = static_cast<size_t>(num_rows) * sizeof(Value);
  for (uint32_t c = 0; c < num_columns; ++c) {
    const uint8_t* src;
    HYDRA_RETURN_IF_ERROR(reader->Raw(column_bytes, &src));
    std::memcpy(block->MutableColumn(static_cast<int>(c)), src, column_bytes);
  }
  return Status::OK();
}

void AppendServeStats(const ServeStats& stats, std::string* out) {
  WireWriter writer(out);
  const uint64_t fields[] = {
      stats.cache_hits,         stats.cache_misses,
      stats.evictions,          stats.cached_bytes,
      stats.resident_summaries, stats.batches_served,
      stats.rows_served,        stats.lookups_served,
      stats.queries_served,     stats.admission_waits,
      stats.scan_groups_formed, stats.peak_group_fanout,
      stats.shared_chunk_fills, stats.shared_chunk_hits,
      stats.catch_up_batches,   stats.shared_charges,
      stats.priority_skips,     stats.rate_deferrals,
      stats.load_retries,       stats.shed_requests,
      stats.degraded_batches,   stats.cancelled_requests,
      // Appended fields go at the end: old readers skip trailing extras,
      // so wire order is append-only even where the struct interleaves.
      stats.admission_grants,
  };
  writer.U32(static_cast<uint32_t>(sizeof(fields) / sizeof(fields[0])));
  for (const uint64_t field : fields) writer.U64(field);
}

Status ReadServeStats(WireReader* reader, ServeStats* stats) {
  uint32_t num_fields;
  HYDRA_RETURN_IF_ERROR(reader->U32(&num_fields));
  uint64_t* const fields[] = {
      &stats->cache_hits,         &stats->cache_misses,
      &stats->evictions,          &stats->cached_bytes,
      &stats->resident_summaries, &stats->batches_served,
      &stats->rows_served,        &stats->lookups_served,
      &stats->queries_served,     &stats->admission_waits,
      &stats->scan_groups_formed, &stats->peak_group_fanout,
      &stats->shared_chunk_fills, &stats->shared_chunk_hits,
      &stats->catch_up_batches,   &stats->shared_charges,
      &stats->priority_skips,     &stats->rate_deferrals,
      &stats->load_retries,       &stats->shed_requests,
      &stats->degraded_batches,   &stats->cancelled_requests,
      &stats->admission_grants,
  };
  constexpr uint32_t kKnown = sizeof(fields) / sizeof(fields[0]);
  if (num_fields < kKnown) {
    return Status::InvalidArgument("stats payload too short");
  }
  for (uint32_t i = 0; i < num_fields; ++i) {
    uint64_t value;
    HYDRA_RETURN_IF_ERROR(reader->U64(&value));
    if (i < kKnown) *fields[i] = value;  // extra fields: newer server, skip
  }
  return Status::OK();
}

Status ReadExact(int fd, void* buf, size_t n) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  while (n > 0) {
    const ssize_t got = ::read(fd, p, n);
    if (got > 0) {
      p += got;
      n -= static_cast<size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return Status::Unavailable(got == 0 ? "connection closed"
                                        : std::strerror(errno));
  }
  return Status::OK();
}

Status WriteAll(int fd, const void* buf, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that vanished mid-write must surface as EPIPE,
    // not kill the process with SIGPIPE.
    const ssize_t wrote = ::send(fd, p, n, MSG_NOSIGNAL);
    if (wrote > 0) {
      p += wrote;
      n -= static_cast<size_t>(wrote);
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Nonblocking fd with a full socket buffer (server side): wait for
      // drain. A peer that never drains eventually fails the write with
      // EPIPE/ECONNRESET when the connection is killed, so this cannot
      // spin forever on a live server.
      pollfd pfd{fd, POLLOUT, 0};
      (void)::poll(&pfd, 1, /*timeout_ms=*/1000);
      continue;
    }
    return Status::Unavailable(std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace hydra
