#include "net/client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace hydra {

Status NetClient::Connect(const std::string& host, int port) {
  if (connected()) return Status::FailedPrecondition("already connected");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("connect failed: " + reason);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

void NetClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status NetClient::Transact(Opcode opcode, const std::string& request_payload,
                           std::string* body) {
  if (!connected()) return Status::Unavailable("not connected");
  const uint64_t request_id = next_request_id_++;
  std::string frame(kFrameHeaderBytes, '\0');
  frame += request_payload;
  FrameHeader header;
  header.opcode = static_cast<uint8_t>(opcode);
  header.request_id = request_id;
  header.payload_len = static_cast<uint32_t>(request_payload.size());
  EncodeFrameHeader(header, reinterpret_cast<uint8_t*>(&frame[0]));
  Status io = WriteAll(fd_, frame.data(), frame.size());
  uint8_t response_header_bytes[kFrameHeaderBytes];
  if (io.ok()) {
    io = ReadExact(fd_, response_header_bytes, sizeof(response_header_bytes));
  }
  FrameHeader response;
  if (io.ok()) {
    response = DecodeFrameHeader(response_header_bytes);
    io = ValidateFrameHeader(response);
    if (io.ok() && (response.request_id != request_id ||
                    response.opcode != header.opcode)) {
      io = Status::Unavailable("response does not match request");
    }
  }
  std::string payload;
  if (io.ok()) {
    payload.resize(response.payload_len);
    io = response.payload_len == 0
             ? Status::OK()
             : ReadExact(fd_, &payload[0], payload.size());
  }
  if (!io.ok()) {
    // The stream is out of sync (or gone); this connection is done.
    Disconnect();
    return Status::Unavailable(io.message());
  }
  WireReader reader(payload);
  Status remote;
  if (!ReadStatusEnvelope(&reader, &remote).ok()) {
    Disconnect();
    return Status::Unavailable("malformed response envelope");
  }
  if (!remote.ok()) return remote;
  body->assign(payload, payload.size() - reader.remaining(),
               reader.remaining());
  return Status::OK();
}

StatusOr<SessionHandle> NetClient::OpenSession(
    const OpenSessionRequest& request) {
  std::string payload;
  AppendOpenSessionRequest(request, &payload);
  std::string body;
  HYDRA_RETURN_IF_ERROR(Transact(Opcode::kOpenSession, payload, &body));
  WireReader reader(body);
  SessionHandle session;
  HYDRA_RETURN_IF_ERROR(reader.U64(&session.id));
  return session;
}

StatusOr<CursorHandle> NetClient::OpenCursor(SessionHandle session,
                                             const CursorSpec& spec) {
  std::string payload;
  WireWriter writer(&payload);
  writer.U64(session.id);
  AppendCursorSpec(spec, &payload);
  std::string body;
  HYDRA_RETURN_IF_ERROR(Transact(Opcode::kOpenCursor, payload, &body));
  WireReader reader(body);
  CursorHandle cursor;
  HYDRA_RETURN_IF_ERROR(reader.U64(&cursor.id));
  return cursor;
}

StatusOr<BatchResult> NetClient::NextBatch(SessionHandle session,
                                           CursorHandle cursor,
                                           RowBlock&& reuse) {
  std::string payload;
  WireWriter writer(&payload);
  writer.U64(session.id);
  writer.U64(cursor.id);
  std::string body;
  HYDRA_RETURN_IF_ERROR(Transact(Opcode::kNextBatch, payload, &body));
  WireReader reader(body);
  BatchResult result;
  result.rows = std::move(reuse);
  uint8_t done;
  HYDRA_RETURN_IF_ERROR(reader.U8(&done));
  HYDRA_RETURN_IF_ERROR(reader.I64(&result.rank));
  HYDRA_RETURN_IF_ERROR(ReadRowBlock(&reader, &result.rows));
  result.done = done != 0;
  return result;
}

StatusOr<int64_t> NetClient::CursorRank(SessionHandle session,
                                        CursorHandle cursor) {
  std::string payload;
  WireWriter writer(&payload);
  writer.U64(session.id);
  writer.U64(cursor.id);
  std::string body;
  HYDRA_RETURN_IF_ERROR(Transact(Opcode::kCursorRank, payload, &body));
  WireReader reader(body);
  int64_t rank;
  HYDRA_RETURN_IF_ERROR(reader.I64(&rank));
  return rank;
}

Status NetClient::CancelSession(SessionHandle session) {
  std::string payload;
  WireWriter writer(&payload);
  writer.U64(session.id);
  std::string body;
  return Transact(Opcode::kCancelSession, payload, &body);
}

Status NetClient::CloseCursor(SessionHandle session, CursorHandle cursor) {
  std::string payload;
  WireWriter writer(&payload);
  writer.U64(session.id);
  writer.U64(cursor.id);
  std::string body;
  return Transact(Opcode::kCloseCursor, payload, &body);
}

Status NetClient::CloseSession(SessionHandle session) {
  std::string payload;
  WireWriter writer(&payload);
  writer.U64(session.id);
  std::string body;
  return Transact(Opcode::kCloseSession, payload, &body);
}

StatusOr<ServeStats> NetClient::Stats() {
  std::string body;
  HYDRA_RETURN_IF_ERROR(Transact(Opcode::kStats, std::string(), &body));
  WireReader reader(body);
  ServeStats stats;
  HYDRA_RETURN_IF_ERROR(ReadServeStats(&reader, &stats));
  return stats;
}

StatusOr<std::string> NetClient::MetricsSerialized() {
  std::string body;
  HYDRA_RETURN_IF_ERROR(Transact(Opcode::kGetMetrics, std::string(), &body));
  WireReader reader(body);
  std::string snapshot;
  HYDRA_RETURN_IF_ERROR(reader.LengthPrefixed(&snapshot));
  return snapshot;
}

StatusOr<MetricsSnapshot> NetClient::Metrics() {
  HYDRA_ASSIGN_OR_RETURN(const std::string bytes, MetricsSerialized());
  MetricsSnapshot snapshot;
  HYDRA_RETURN_IF_ERROR(ParseMetricsSnapshot(bytes, &snapshot));
  return snapshot;
}

Status NetClient::Ping() {
  std::string body;
  return Transact(Opcode::kPing, std::string(), &body);
}

}  // namespace hydra
