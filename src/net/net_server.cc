#include "net/net_server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"

namespace hydra {

// Fault-injection sites of the wire layer (docs/net.md). An injected error
// behaves exactly like the corresponding socket failure: a failed accept
// drops the brand-new connection, a failed frame read/write kills the
// established one — and the dropped client exercises the reconnect+resume
// protocol.
HYDRA_FAILPOINT_DEFINE(g_fp_accept, "net/accept");
HYDRA_FAILPOINT_DEFINE(g_fp_read_frame, "net/read_frame");
HYDRA_FAILPOINT_DEFINE(g_fp_write_frame, "net/write_frame");

// Frame lifecycle latency, split at the seams a wire request crosses: time
// queued for a worker, time executing, time writing the response. The
// kGetMetrics opcode skips handle/write recording — its response must be
// byte-identical to the snapshot it serialized, so it must not mutate the
// registry after serializing (tests/net_test.cc).
HYDRA_METRIC_HISTOGRAM(g_dispatch_wait_us, "net/dispatch_wait_us");
HYDRA_METRIC_HISTOGRAM(g_handle_us, "net/handle_us");
HYDRA_METRIC_HISTOGRAM(g_write_us, "net/write_us");

namespace {

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal("fcntl(O_NONBLOCK) failed");
  }
  return Status::OK();
}

int ResolveWorkers(const NetServerOptions& options) {
  const int requested = options.worker_threads == 0
                            ? ThreadPool::DefaultThreads()
                            : options.worker_threads;
  // Floor of 2: handlers block on admission, and a width-1 pool runs
  // inline — on the IO thread, which must never block.
  return std::max(2, requested);
}

}  // namespace

NetServer::NetServer(RegenServer* server, NetServerOptions options)
    : server_(server),
      options_(std::move(options)),
      metrics_provider_("net", [this](MetricsSink* sink) {
        const NetStats s = stats();
        sink->Gauge("connections_accepted", s.connections_accepted);
        sink->Gauge("connections_dropped", s.connections_dropped);
        sink->Gauge("frames_received", s.frames_received);
        sink->Gauge("frames_sent", s.frames_sent);
        sink->Gauge("protocol_errors", s.protocol_errors);
        sink->Gauge("sessions_reaped", s.sessions_reaped);
      }) {
  if (options_.max_buffered_frames < 1) options_.max_buffered_frames = 1;
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (started_) return Status::FailedPrecondition("already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Unavailable("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("bind/listen failed: " +
                               std::string(std::strerror(errno)));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (::pipe(wake_fds_) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("pipe() failed");
  }
  HYDRA_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));
  HYDRA_RETURN_IF_ERROR(SetNonBlocking(wake_fds_[0]));
  HYDRA_RETURN_IF_ERROR(SetNonBlocking(wake_fds_[1]));
  workers_ = std::make_unique<ThreadPool>(ResolveWorkers(options_));
  stopping_.store(false, std::memory_order_relaxed);
  io_thread_ = std::thread([this] { IoLoop(); });
  started_ = true;
  return Status::OK();
}

void NetServer::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  WakeIoThread();
  io_thread_.join();
  // Kill every connection: cancels owned sessions, which unblocks any
  // handler stuck in the admission queue; its response write then fails on
  // the shut-down socket and the worker unwinds.
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::shared_ptr<Connection>> conns;
    conns.reserve(connections_.size());
    for (const auto& [fd, conn] : connections_) conns.push_back(conn);
    for (const auto& conn : conns) KillLocked(conn);
  }
  workers_->Wait();
  // Workers are quiet now; reap anything a busy flag kept alive.
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (!connections_.empty()) {
      ReapLocked(connections_.begin()->second);
    }
  }
  workers_.reset();
  ::close(listen_fd_);
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  listen_fd_ = wake_fds_[0] = wake_fds_[1] = -1;
  started_ = false;
}

void NetServer::WakeIoThread() {
  const char byte = 0;
  // Nonblocking: a full pipe already guarantees a pending wake.
  (void)!::write(wake_fds_[1], &byte, 1);
}

void NetServer::IoLoop() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Connection>> polled;
  while (!stopping_.load(std::memory_order_relaxed)) {
    fds.clear();
    polled.clear();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [fd, conn] : connections_) {
        if (conn->dead) continue;
        // Backpressure: a connection that pipelined up to the buffer cap
        // is not read from until its queue drains (POLLERR/POLLHUP still
        // report, so a dropped client is noticed).
        const bool want_read =
            static_cast<int>(conn->pending.size()) <
            options_.max_buffered_frames;
        fds.push_back({fd, static_cast<short>(want_read ? POLLIN : 0), 0});
        polled.push_back(conn);
      }
    }
    if (::poll(fds.data(), fds.size(), /*timeout_ms=*/200) < 0) {
      if (errno == EINTR) continue;
      break;  // poll itself failed; the server is wedged, bail out
    }
    if (fds[0].revents != 0) {
      char drain[64];
      while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if (fds[1].revents != 0) AcceptReady();
    for (size_t i = 2; i < fds.size(); ++i) {
      const std::shared_ptr<Connection>& conn = polled[i - 2];
      if (fds[i].revents == 0) continue;
      if (!ReadReady(conn)) {
        std::lock_guard<std::mutex> lock(mu_);
        KillLocked(conn);
      }
    }
  }
}

void NetServer::AcceptReady() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient error: nothing more to take now
    }
    if (g_fp_accept.armed() && !g_fp_accept.Fire().ok()) {
      // Injected accept failure: the client sees an immediate close —
      // exactly what an overloaded or dying listener produces.
      ::close(fd);
      connections_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      connections_.emplace(fd, conn);
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool NetServer::ReadReady(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (conn->dead || conn->fd < 0) return true;  // raced a reap; no-op
  }
  if (g_fp_read_frame.armed() && !g_fp_read_frame.Fire().ok()) {
    return false;  // injected read failure == the socket died mid-frame
  }
  // Drain everything readable (edge-agnostic: we re-poll level-triggered,
  // but draining now saves wakeups).
  char buf[1 << 16];
  while (true) {
    const ssize_t got = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (got > 0) {
      conn->read_buffer.append(buf, static_cast<size_t>(got));
      if (static_cast<size_t>(got) < sizeof(buf)) break;
      continue;
    }
    if (got == 0) return false;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  // Parse complete frames off the front.
  std::vector<std::pair<FrameHeader, std::string>> frames;
  size_t consumed = 0;
  while (conn->read_buffer.size() - consumed >= kFrameHeaderBytes) {
    const uint8_t* base =
        reinterpret_cast<const uint8_t*>(conn->read_buffer.data()) + consumed;
    const FrameHeader header = DecodeFrameHeader(base);
    if (!ValidateFrameHeader(header).ok()) {
      // The stream has no trustworthy frame boundary anymore; drop it.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (conn->read_buffer.size() - consumed <
        kFrameHeaderBytes + header.payload_len) {
      break;  // torn frame: wait for the rest
    }
    frames.emplace_back(
        header,
        conn->read_buffer.substr(consumed + kFrameHeaderBytes,
                                 header.payload_len));
    consumed += kFrameHeaderBytes + header.payload_len;
    frames_received_.fetch_add(1, std::memory_order_relaxed);
  }
  if (consumed > 0) conn->read_buffer.erase(0, consumed);
  if (!frames.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& frame : frames) conn->pending.push_back(std::move(frame));
    if (!conn->busy && !conn->dead) DispatchLocked(conn);
  }
  return true;
}

void NetServer::DispatchLocked(const std::shared_ptr<Connection>& conn) {
  if (conn->pending.empty()) return;
  conn->busy = true;
  FrameHeader header = conn->pending.front().first;
  std::string payload = std::move(conn->pending.front().second);
  conn->pending.pop_front();
  std::shared_ptr<Connection> shared = conn;
  const uint64_t enqueue_us =
      metrics::TimingEnabled() ? metrics::MonotonicMicros() : 0;
  workers_->Submit([this, shared, header, payload, enqueue_us]() mutable {
    HandleFrame(std::move(shared), header, std::move(payload), enqueue_us);
  });
}

void NetServer::HandleFrame(std::shared_ptr<Connection> conn,
                            FrameHeader header, std::string payload,
                            uint64_t enqueue_us) {
  if (enqueue_us != 0 && metrics::TimingEnabled()) {
    g_dispatch_wait_us.Record(metrics::MonotonicMicros() - enqueue_us);
  }
  // Snapshot self-consistency: a GetMetrics response serializes the
  // registry inside Execute, so every effect of serving it must land
  // *before* that point (the dispatch wait above, the pre-counted
  // frames_sent below) or not at all (handle/write records skipped).
  const bool is_metrics =
      static_cast<Opcode>(header.opcode) == Opcode::kGetMetrics;
  if (is_metrics) frames_sent_.fetch_add(1, std::memory_order_relaxed);
  // Build the whole response frame in one buffer (header patched last), so
  // it goes out in one write — no torn frame on a concurrent kill.
  std::string frame(kFrameHeaderBytes, '\0');
  WireReader reader(payload);
  {
    ScopedLatencyTimer handle_timer(is_metrics ? nullptr : &g_handle_us);
    Execute(conn, static_cast<Opcode>(header.opcode), &reader, &frame);
  }
  FrameHeader response;
  response.opcode = header.opcode;
  response.request_id = header.request_id;
  response.payload_len =
      static_cast<uint32_t>(frame.size() - kFrameHeaderBytes);
  EncodeFrameHeader(response, reinterpret_cast<uint8_t*>(&frame[0]));
  Status write_status;
  if (g_fp_write_frame.armed()) write_status = g_fp_write_frame.Fire();
  if (write_status.ok()) {
    ScopedLatencyTimer write_timer(is_metrics ? nullptr : &g_write_us);
    write_status = WriteAll(conn->fd, frame.data(), frame.size());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (write_status.ok()) {
      if (!is_metrics) frames_sent_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // The pre-count assumed the response would reach the wire.
      if (is_metrics) frames_sent_.fetch_sub(1, std::memory_order_relaxed);
      KillLocked(conn);
    }
    conn->busy = false;
    if (conn->dead) {
      ReapLocked(conn);
    } else if (!conn->pending.empty()) {
      DispatchLocked(conn);
    }
  }
  // The poll set may need rebuilding (backpressure lifted, conn died).
  WakeIoThread();
}

void NetServer::Execute(const std::shared_ptr<Connection>& conn, Opcode opcode,
                        WireReader* reader, std::string* out) {
  WireWriter writer(out);
  switch (opcode) {
    case Opcode::kOpenSession: {
      OpenSessionRequest request;
      if (Status s = ReadOpenSessionRequest(reader, &request); !s.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        AppendStatusEnvelope(s, out);
        return;
      }
      StatusOr<SessionHandle> session = server_->OpenSession(request);
      AppendStatusEnvelope(session.ok() ? Status::OK() : session.status(),
                           out);
      if (session.ok()) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          conn->sessions.push_back(*session);
        }
        writer.U64(session->id);
      }
      return;
    }
    case Opcode::kOpenCursor: {
      uint64_t session_id;
      CursorSpec spec;
      Status s = reader->U64(&session_id);
      if (s.ok()) s = ReadCursorSpec(reader, &spec);
      if (!s.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        AppendStatusEnvelope(s, out);
        return;
      }
      const SessionHandle session{session_id};
      if (!OwnsSession(conn, session)) {
        AppendStatusEnvelope(Status::NotFound("no such session"), out);
        return;
      }
      StatusOr<CursorHandle> cursor =
          server_->OpenCursor(session, std::move(spec));
      AppendStatusEnvelope(cursor.ok() ? Status::OK() : cursor.status(), out);
      if (cursor.ok()) writer.U64(cursor->id);
      return;
    }
    case Opcode::kNextBatch: {
      uint64_t session_id, cursor_id;
      Status s = reader->U64(&session_id);
      if (s.ok()) s = reader->U64(&cursor_id);
      if (!s.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        AppendStatusEnvelope(s, out);
        return;
      }
      const SessionHandle session{session_id};
      if (!OwnsSession(conn, session)) {
        AppendStatusEnvelope(Status::NotFound("no such session"), out);
        return;
      }
      StatusOr<BatchResult> batch =
          server_->NextBatch(session, CursorHandle{cursor_id});
      AppendStatusEnvelope(batch.ok() ? Status::OK() : batch.status(), out);
      if (batch.ok()) {
        writer.U8(batch->done ? 1 : 0);
        writer.I64(batch->rank);
        AppendRowBlock(batch->rows, out);
      }
      return;
    }
    case Opcode::kCursorRank: {
      uint64_t session_id, cursor_id;
      Status s = reader->U64(&session_id);
      if (s.ok()) s = reader->U64(&cursor_id);
      if (!s.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        AppendStatusEnvelope(s, out);
        return;
      }
      const SessionHandle session{session_id};
      if (!OwnsSession(conn, session)) {
        AppendStatusEnvelope(Status::NotFound("no such session"), out);
        return;
      }
      StatusOr<int64_t> rank =
          server_->CursorRank(session, CursorHandle{cursor_id});
      AppendStatusEnvelope(rank.ok() ? Status::OK() : rank.status(), out);
      if (rank.ok()) writer.I64(*rank);
      return;
    }
    case Opcode::kCancelSession:
    case Opcode::kCloseSession: {
      uint64_t session_id;
      if (Status s = reader->U64(&session_id); !s.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        AppendStatusEnvelope(s, out);
        return;
      }
      const SessionHandle session{session_id};
      if (!OwnsSession(conn, session)) {
        AppendStatusEnvelope(Status::NotFound("no such session"), out);
        return;
      }
      Status result;
      if (opcode == Opcode::kCancelSession) {
        result = server_->CancelSession(session);
      } else {
        result = server_->CloseSession(session);
        std::lock_guard<std::mutex> lock(mu_);
        auto& owned = conn->sessions;
        owned.erase(std::remove(owned.begin(), owned.end(), session),
                    owned.end());
      }
      AppendStatusEnvelope(result, out);
      return;
    }
    case Opcode::kCloseCursor: {
      uint64_t session_id, cursor_id;
      Status s = reader->U64(&session_id);
      if (s.ok()) s = reader->U64(&cursor_id);
      if (!s.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        AppendStatusEnvelope(s, out);
        return;
      }
      const SessionHandle session{session_id};
      if (!OwnsSession(conn, session)) {
        AppendStatusEnvelope(Status::NotFound("no such session"), out);
        return;
      }
      AppendStatusEnvelope(
          server_->CloseCursor(session, CursorHandle{cursor_id}), out);
      return;
    }
    case Opcode::kStats: {
      AppendStatusEnvelope(Status::OK(), out);
      AppendServeStats(server_->stats(), out);
      return;
    }
    case Opcode::kPing: {
      AppendStatusEnvelope(Status::OK(), out);
      return;
    }
    case Opcode::kGetMetrics: {
      // The one source of truth: the same registry snapshot an in-process
      // embedder reads, serialized with the same encoder. HandleFrame
      // already pre-counted this frame and suppresses its own latency
      // records, so these bytes equal a quiesced in-process snapshot.
      AppendStatusEnvelope(Status::OK(), out);
      writer.LengthPrefixed(
          SerializeMetricsSnapshot(MetricRegistry::Snapshot()));
      return;
    }
  }
  // Unknown opcode: the frame itself was well-formed, so the connection
  // survives; the client gets a stable "not supported" answer.
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  AppendStatusEnvelope(Status::Unimplemented("unknown opcode"), out);
}

bool NetServer::OwnsSession(const std::shared_ptr<Connection>& conn,
                            SessionHandle session) {
  std::lock_guard<std::mutex> lock(mu_);
  return std::find(conn->sessions.begin(), conn->sessions.end(), session) !=
         conn->sessions.end();
}

void NetServer::KillLocked(const std::shared_ptr<Connection>& conn) {
  if (conn->dead) return;
  conn->dead = true;
  // Shutdown (not close) while a worker may still hold the fd: the write
  // fails cleanly, and the fd number cannot be reused for a new accept
  // until ReapLocked actually closes it.
  if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  // Disconnect triggers CancelSession (docs/net.md): any request of these
  // sessions — queued, admitted, or mid-stream — unwinds at its next
  // cancellation poll.
  for (const SessionHandle session : conn->sessions) {
    (void)server_->CancelSession(session);
  }
  if (!conn->busy) ReapLocked(conn);
}

void NetServer::ReapLocked(const std::shared_ptr<Connection>& conn) {
  if (conn->fd >= 0) {
    connections_.erase(conn->fd);
    ::close(conn->fd);
    conn->fd = -1;
    connections_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  conn->dead = true;
  for (const SessionHandle session : conn->sessions) {
    (void)server_->CancelSession(session);
    if (server_->CloseSession(session).ok()) {
      sessions_reaped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  conn->sessions.clear();
}

NetStats NetServer::stats() const {
  NetStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_dropped = connections_dropped_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.sessions_reaped = sessions_reaped_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace hydra
