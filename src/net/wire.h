// Wire protocol of the serve front end (docs/net.md).
//
// Framing: every message is one frame — a fixed 20-byte header followed by
// `payload_len` bytes of payload. All integers are little-endian.
//
//   offset  size  field
//   0       4     magic       0x41525948 — ASCII "HYRA" on the wire
//   4       1     version     kWireVersion (1)
//   5       1     opcode      Opcode
//   6       2     reserved    0
//   8       8     request_id  echoed verbatim in the response frame
//   16      4     payload_len bytes following the header (<= kMaxPayload)
//
// Requests and responses share the frame shape; a response echoes the
// request's opcode and request_id. Every response payload begins with a
// status envelope — u16 ServeErrorCode + u32 message length + message
// bytes — followed by the opcode-specific body only when the code is kOk.
//
// The payload codecs below are the single marshalling implementation: the
// server encodes with the same functions the client decodes with, so the
// in-process typed API (serve_api.h) and the wire cannot drift apart.
//
// Trust model: WireReader bounds-checks every read and caps every count
// against the bytes actually present, so a malformed or adversarial frame
// yields kInvalidArgument, never a crash or an unbounded allocation.

#ifndef HYDRA_NET_WIRE_H_
#define HYDRA_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "serve/serve_api.h"
#include "serve/serve_options.h"

namespace hydra {

inline constexpr uint32_t kWireMagic = 0x41525948u;  // "HYRA"
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 20;
// Upper bound on one frame's payload; a header announcing more is a
// protocol error that kills the connection.
inline constexpr uint32_t kMaxPayloadBytes = 64u << 20;

enum class Opcode : uint8_t {
  kOpenSession = 1,
  kOpenCursor = 2,
  kNextBatch = 3,
  kCursorRank = 4,
  kCancelSession = 5,
  kCloseCursor = 6,
  kCloseSession = 7,
  kStats = 8,
  kPing = 9,
  // Body: the serialized MetricRegistry snapshot (SerializeMetricsSnapshot
  // in common/metrics.h) — byte-identical to an in-process snapshot of the
  // same registry state.
  kGetMetrics = 10,
};

struct FrameHeader {
  uint32_t magic = kWireMagic;
  uint8_t version = kWireVersion;
  uint8_t opcode = 0;
  uint16_t reserved = 0;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
};

// Serializes `header` into exactly kFrameHeaderBytes at `out`.
void EncodeFrameHeader(const FrameHeader& header, uint8_t* out);
// Parses kFrameHeaderBytes at `in`. Purely structural — see Validate.
FrameHeader DecodeFrameHeader(const uint8_t* in);
// Checks magic, version and payload bound. A failure here means the byte
// stream itself can't be trusted (no frame boundary to resynchronize on),
// so the connection must be dropped.
Status ValidateFrameHeader(const FrameHeader& header);

// Appends little-endian scalars to a byte string (std::string doubles as
// the byte buffer everywhere in this layer).
class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Bytes(const void* data, size_t n);
  // u32 length prefix + bytes.
  void LengthPrefixed(const std::string& s);

 private:
  std::string* out_;
};

// Bounds-checked little-endian reads over a borrowed byte range. Every
// getter fails with kInvalidArgument on underrun; decoding never reads
// past `size`.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::string& buf)
      : WireReader(reinterpret_cast<const uint8_t*>(buf.data()), buf.size()) {}

  Status U8(uint8_t* v);
  Status U16(uint16_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status I32(int32_t* v);
  Status I64(int64_t* v);
  // u32 length prefix + bytes; the length is capped by remaining().
  Status LengthPrefixed(std::string* s);
  // Borrows `n` raw bytes (bulk column copies); fails on underrun.
  Status Raw(size_t n, const uint8_t** p) { return Take(n, p); }

  size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  Status Take(size_t n, const uint8_t** p);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// --- payload codecs -----------------------------------------------------
// Append* writes the opcode-specific body; Read* parses it back. Each
// Read* fails with kInvalidArgument on malformed input.

// Response status envelope: u16 ServeErrorCode, length-prefixed message.
void AppendStatusEnvelope(const Status& status, std::string* out);
// Parses the envelope into `status` (reconstructed through the stable
// code mapping). Returns non-OK only when the envelope itself is
// malformed.
Status ReadStatusEnvelope(WireReader* reader, Status* status);

// OpenSession body: summary id, deadline, priority, rate limit. The
// in-process-only `cancel` field does not cross the wire.
void AppendOpenSessionRequest(const OpenSessionRequest& request,
                              std::string* out);
Status ReadOpenSessionRequest(WireReader* reader, OpenSessionRequest* request);

// DNF predicate: u32 conjuncts { u32 atoms { i32 column, u32 intervals
// { i64 lo, i64 hi } } }. True() is one empty conjunct, False() is zero.
void AppendPredicate(const DnfPredicate& predicate, std::string* out);
Status ReadPredicate(WireReader* reader, DnfPredicate* predicate);

// CursorSpec: i32 relation, i64 begin_rank, i64 end_rank, u32 projection
// count + i32 columns, predicate.
void AppendCursorSpec(const CursorSpec& spec, std::string* out);
Status ReadCursorSpec(WireReader* reader, CursorSpec* spec);

// RowBlock: u32 columns, u64 rows, then each column's values contiguously
// (column-major — the server's native layout, so encoding is a straight
// copy per column).
void AppendRowBlock(const RowBlock& block, std::string* out);
Status ReadRowBlock(WireReader* reader, RowBlock* block);

// ServeStats: every counter as u64, in struct order. Diagnostic payload —
// stable within a wire version, not frozen across them.
void AppendServeStats(const ServeStats& stats, std::string* out);
Status ReadServeStats(WireReader* reader, ServeStats* stats);

// --- blocking socket helpers -------------------------------------------
// Shared by the blocking client and the server's response writes. Both
// retry EINTR and treat any other failure (including EOF mid-buffer) as
// kUnavailable — the caller's signal to drop the connection.
Status ReadExact(int fd, void* buf, size_t n);
Status WriteAll(int fd, const void* buf, size_t n);

}  // namespace hydra

#endif  // HYDRA_NET_WIRE_H_
