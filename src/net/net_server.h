// NetServer — the TCP front end of RegenServer (docs/net.md).
//
// One IO thread runs a poll() event loop over the listening socket and
// every connection; request execution runs on a thread-per-core worker
// pool (src/common/thread_pool.h), so a handler blocking in the fair
// scheduler's admission queue never stalls the loop. The protocol is
// strictly request/response per connection: one frame is in flight at a
// time, later frames buffer until the response is written (arrival-order
// execution, which is what makes a wire cursor stream deterministic).
//
// Sessions are connection-owned: a session opened on a connection is
// addressable only from it, and when the connection drops — client close,
// socket error, or an injected net/* failpoint — the server immediately
// CancelSession()s everything the connection owns (unblocking any
// in-flight request at its next cancellation poll) and CloseSession()s it
// once the in-flight handler unwinds. Resumption is the serve layer's
// rank-cursor contract: the client reconnects, reopens a session, and
// opens a cursor at its last BatchResult::rank — the stream continues
// byte-identically (tests/net_test.cc, tests/chaos_serve_test.cc).
//
// Failpoints: `net/accept` (drop an accepted connection), `net/read_frame`
// and `net/write_frame` (fail a frame read/write as if the socket died) —
// armed through the HYDRA_FAILPOINTS grammar for chaos schedules.

#ifndef HYDRA_NET_NET_SERVER_H_
#define HYDRA_NET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "net/wire.h"
#include "serve/server.h"

namespace hydra {

struct NetServerOptions {
  std::string bind_address = "127.0.0.1";
  // 0 = ephemeral; the bound port is readable via port() after Start().
  int port = 0;
  // Workers executing request handlers. 0 = one per hardware thread, with
  // a floor of 2: handlers block (admission, rate limits), and the pool
  // inlines work at width 1 — which would block the caller. The floor also
  // keeps one worker free to process a CancelSession that unblocks another
  // connection's stalled request.
  int worker_threads = 0;
  // Complete frames a connection may buffer behind its in-flight request
  // before the loop stops reading from it (backpressure on pipelining
  // clients).
  int max_buffered_frames = 16;
};

// Monotonic counters; snapshot via NetServer::stats().
struct NetStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_dropped = 0;  // disconnects + protocol errors + faults
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t protocol_errors = 0;  // bad magic/version/length, malformed bodies
  uint64_t sessions_reaped = 0;  // sessions cancelled+closed on disconnect
};

class NetServer {
 public:
  // `server` must outlive this object. Start()/Stop() bracket the listener.
  explicit NetServer(RegenServer* server, NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds, listens, and launches the IO thread + worker pool. Fails with
  // kUnavailable when the address can't be bound.
  Status Start();

  // Drops every connection (reaping their sessions), joins the IO thread,
  // and drains the workers. Idempotent; the destructor calls it. The
  // underlying RegenServer is left running — it may be shared.
  void Stop();

  // The bound port (resolved from an ephemeral request); 0 before Start().
  int port() const { return port_; }

  NetStats stats() const;

 private:
  struct Connection {
    int fd = -1;
    std::string read_buffer;  // raw bytes, frames parsed off the front
    // Complete frames (header + payload) waiting behind the in-flight
    // request. Bounded by max_buffered_frames.
    std::deque<std::pair<FrameHeader, std::string>> pending;
    bool busy = false;  // a worker is executing this connection's request
    bool dead = false;  // socket gone; close + reap once not busy
    // Sessions opened over this connection, reaped on disconnect.
    std::vector<SessionHandle> sessions;
  };

  void IoLoop();
  // Accepts as many pending connections as the listener holds.
  void AcceptReady();
  // Drains readable bytes, parses frames, dispatches if idle. Returns
  // false when the connection died (EOF, error, protocol error).
  bool ReadReady(const std::shared_ptr<Connection>& conn);
  // Hands the next pending frame to the worker pool. mu_ held.
  void DispatchLocked(const std::shared_ptr<Connection>& conn);
  // Worker entry: decode, execute against server_, write the response.
  // `enqueue_us` is the dispatch timestamp (0 when timing is disabled) —
  // the worker records its queue wait against it.
  void HandleFrame(std::shared_ptr<Connection> conn, FrameHeader header,
                   std::string payload, uint64_t enqueue_us);
  // Executes one request, appending the response payload (status envelope
  // + body) to `out`.
  void Execute(const std::shared_ptr<Connection>& conn, Opcode opcode,
               WireReader* reader, std::string* out);
  // Marks the connection dead, shuts the socket down, and cancels its
  // sessions (close + full reap happen once no worker holds it). mu_ held.
  void KillLocked(const std::shared_ptr<Connection>& conn);
  // Closes the fd and cancels+closes owned sessions; called when a dead
  // connection is no longer busy. mu_ held.
  void ReapLocked(const std::shared_ptr<Connection>& conn);
  // True when `session` was opened over `conn` (wire sessions are
  // connection-scoped).
  bool OwnsSession(const std::shared_ptr<Connection>& conn,
                   SessionHandle session);
  void WakeIoThread();

  RegenServer* const server_;
  NetServerOptions options_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] polled, [1] written
  int port_ = 0;
  std::thread io_thread_;
  std::unique_ptr<ThreadPool> workers_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  mutable std::mutex mu_;  // guards connections_ and Connection state
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_dropped_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> sessions_reaped_{0};

  // Re-exports stats() as gauges under the "net" prefix in every
  // MetricRegistry::Snapshot(). Declared last (registers fully-constructed
  // state, unregisters first).
  MetricsProvider metrics_provider_;
};

}  // namespace hydra

#endif  // HYDRA_NET_NET_SERVER_H_
