// NetClient — small blocking TCP client of the serve front end.
//
// Mirrors the RegenServer typed API (serve_api.h) method for method: the
// same request structs in, the same handles and BatchResult out, with the
// wire's ServeErrorCode mapped back onto Status so a caller can't tell an
// in-process server from a remote one — except for transport failures,
// which surface as kUnavailable and leave the client disconnected.
//
// One request is in flight at a time (the class is not thread-safe; give
// each client thread its own NetClient — connections are cheap). Resume
// protocol after a drop: reconnect, OpenSession on the same summary, and
// OpenCursor with begin_rank = the last BatchResult::rank you consumed;
// the stream continues byte-identically (docs/net.md).

#ifndef HYDRA_NET_CLIENT_H_
#define HYDRA_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "net/wire.h"
#include "serve/serve_api.h"
#include "serve/serve_options.h"

namespace hydra {

class NetClient {
 public:
  NetClient() = default;
  ~NetClient() { Disconnect(); }

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  // Connects to a numeric IPv4 address ("127.0.0.1").
  Status Connect(const std::string& host, int port);
  // Abrupt close — no goodbye frames. The server notices the drop and
  // reaps this connection's sessions (tests use this to exercise the
  // resume protocol).
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  // --- the typed serve API over the wire --------------------------------
  // `request.cancel` does not cross the wire; cancel remotely via
  // CancelSession or by dropping the connection.
  StatusOr<SessionHandle> OpenSession(const OpenSessionRequest& request);
  StatusOr<CursorHandle> OpenCursor(SessionHandle session,
                                    const CursorSpec& spec);
  // Pass the previous result's rows back as `reuse` to recycle buffers,
  // exactly like the in-process call.
  StatusOr<BatchResult> NextBatch(SessionHandle session, CursorHandle cursor,
                                  RowBlock&& reuse = RowBlock());
  StatusOr<int64_t> CursorRank(SessionHandle session, CursorHandle cursor);
  Status CancelSession(SessionHandle session);
  Status CloseCursor(SessionHandle session, CursorHandle cursor);
  Status CloseSession(SessionHandle session);
  StatusOr<ServeStats> Stats();
  // The server process's full metrics snapshot. MetricsSerialized() hands
  // back the wire bytes verbatim (byte-identical to the server's own
  // SerializeMetricsSnapshot — tests/net_test.cc holds it to that);
  // Metrics() parses them into a MetricsSnapshot.
  StatusOr<std::string> MetricsSerialized();
  StatusOr<MetricsSnapshot> Metrics();
  Status Ping();

 private:
  // One round trip: frames `request_payload` under `opcode`, reads the
  // response frame, verifies the echoed request id, and parses the status
  // envelope. On OK, `body` holds the bytes after the envelope. Any
  // transport or framing failure disconnects and returns kUnavailable.
  Status Transact(Opcode opcode, const std::string& request_payload,
                  std::string* body);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
};

}  // namespace hydra

#endif  // HYDRA_NET_CLIENT_H_
