#include "engine/kernels.h"

#include <atomic>

#if HYDRA_SIMD_LEVEL >= 1
#include <immintrin.h>
#endif

namespace hydra {
namespace kernels {

namespace {

std::atomic<bool> g_simd_enabled{true};

// --- Scalar bodies -------------------------------------------------------
//
// Written as single-expression loops over contiguous data so -O2/-O3 can
// autovectorize them even at HYDRA_SIMD_LEVEL 0. They are also the reference
// semantics the explicit SIMD bodies must reproduce bit-for-bit.

void IntervalMaskScalar(const Value* col, int64_t n, Value lo, Value hi,
                        uint8_t* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>((col[i] >= lo) & (col[i] < hi));
  }
}

void IntervalMaskOrScalar(const Value* col, int64_t n, Value lo, Value hi,
                          uint8_t* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] |= static_cast<uint8_t>((col[i] >= lo) & (col[i] < hi));
  }
}

void MaskAndScalar(uint8_t* a, const uint8_t* b, int64_t n) {
  for (int64_t i = 0; i < n; ++i) a[i] &= b[i];
}

void MaskOrScalar(uint8_t* a, const uint8_t* b, int64_t n) {
  for (int64_t i = 0; i < n; ++i) a[i] |= b[i];
}

void HashKeysScalar(const Value* col, int64_t n, uint64_t* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = MixKey(col[i]);
}

void FillConstScalar(Value* dst, int64_t n, Value v) {
  for (int64_t i = 0; i < n; ++i) dst[i] = v;
}

void FillIotaScalar(Value* dst, int64_t n, Value start) {
  for (int64_t i = 0; i < n; ++i) dst[i] = start + i;
}

#if HYDRA_SIMD_LEVEL == 1

// Signed 64-bit a > b with only the sign bit of each lane valid (SSE2 has no
// pcmpgtq): compare the high dwords signed, and on a high-dword tie fall
// back to the low dwords compared unsigned (via the sign-flip bias). The
// per-lane verdict is assembled into the high dword, i.e. the lane's sign
// bit, which movemask_pd then extracts.
inline __m128i CmpGt64Sign(__m128i a, __m128i b) {
  const __m128i bias = _mm_set1_epi32(INT32_MIN);
  const __m128i hi_gt = _mm_cmpgt_epi32(a, b);
  const __m128i eq = _mm_cmpeq_epi32(a, b);
  const __m128i lo_gt =
      _mm_cmpgt_epi32(_mm_xor_si128(a, bias), _mm_xor_si128(b, bias));
  // Lift each lane's low-dword verdict into its high-dword position.
  const __m128i lo_in_hi = _mm_shuffle_epi32(lo_gt, _MM_SHUFFLE(2, 2, 0, 0));
  return _mm_or_si128(hi_gt, _mm_and_si128(eq, lo_in_hi));
}

// in-range bits for lanes [i, i+2): bit j set iff col[i+j] in [lo, hi).
inline int InRangeBits2(const Value* p, __m128i vlo, __m128i vhi) {
  const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const int below = _mm_movemask_pd(_mm_castsi128_pd(CmpGt64Sign(vlo, v)));
  const int lt_hi = _mm_movemask_pd(_mm_castsi128_pd(CmpGt64Sign(vhi, v)));
  return ~below & lt_hi & 0x3;
}

void IntervalMaskSse2(const Value* col, int64_t n, Value lo, Value hi,
                      uint8_t* out) {
  const __m128i vlo = _mm_set1_epi64x(lo);
  const __m128i vhi = _mm_set1_epi64x(hi);
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int bits = InRangeBits2(col + i, vlo, vhi);
    out[i] = static_cast<uint8_t>(bits & 1);
    out[i + 1] = static_cast<uint8_t>(bits >> 1);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<uint8_t>((col[i] >= lo) & (col[i] < hi));
  }
}

void IntervalMaskOrSse2(const Value* col, int64_t n, Value lo, Value hi,
                        uint8_t* out) {
  const __m128i vlo = _mm_set1_epi64x(lo);
  const __m128i vhi = _mm_set1_epi64x(hi);
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int bits = InRangeBits2(col + i, vlo, vhi);
    out[i] |= static_cast<uint8_t>(bits & 1);
    out[i + 1] |= static_cast<uint8_t>(bits >> 1);
  }
  for (; i < n; ++i) {
    out[i] |= static_cast<uint8_t>((col[i] >= lo) & (col[i] < hi));
  }
}

#endif  // HYDRA_SIMD_LEVEL == 1

#if HYDRA_SIMD_LEVEL >= 2

// in-range bits for lanes [i, i+4): bit j set iff col[i+j] in [lo, hi).
inline int InRangeBits4(const Value* p, __m256i vlo, __m256i vhi) {
  const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m256i below = _mm256_cmpgt_epi64(vlo, v);  // v < lo
  const __m256i lt_hi = _mm256_cmpgt_epi64(vhi, v);  // v < hi
  return _mm256_movemask_pd(
      _mm256_castsi256_pd(_mm256_andnot_si256(below, lt_hi)));
}

void IntervalMaskAvx2(const Value* col, int64_t n, Value lo, Value hi,
                      uint8_t* out) {
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int bits = InRangeBits4(col + i, vlo, vhi);
    out[i] = static_cast<uint8_t>(bits & 1);
    out[i + 1] = static_cast<uint8_t>((bits >> 1) & 1);
    out[i + 2] = static_cast<uint8_t>((bits >> 2) & 1);
    out[i + 3] = static_cast<uint8_t>(bits >> 3);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<uint8_t>((col[i] >= lo) & (col[i] < hi));
  }
}

void IntervalMaskOrAvx2(const Value* col, int64_t n, Value lo, Value hi,
                        uint8_t* out) {
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int bits = InRangeBits4(col + i, vlo, vhi);
    out[i] |= static_cast<uint8_t>(bits & 1);
    out[i + 1] |= static_cast<uint8_t>((bits >> 1) & 1);
    out[i + 2] |= static_cast<uint8_t>((bits >> 2) & 1);
    out[i + 3] |= static_cast<uint8_t>(bits >> 3);
  }
  for (; i < n; ++i) {
    out[i] |= static_cast<uint8_t>((col[i] >= lo) & (col[i] < hi));
  }
}

// 64x64->64 multiply (AVX2 has no vpmullq): the low-64 product is
// lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32), built from 32x32
// partial products.
inline __m256i Mul64(__m256i a, __m256i b) {
  const __m256i b_swap = _mm256_shuffle_epi32(b, 0xB1);  // hi<->lo per lane
  const __m256i cross = _mm256_mullo_epi32(a, b_swap);   // lo*hi, hi*lo
  const __m256i cross_sum =
      _mm256_shuffle_epi32(_mm256_hadd_epi32(cross, _mm256_setzero_si256()),
                           _MM_SHUFFLE(1, 3, 0, 3));  // sums into hi dwords
  const __m256i lo_lo = _mm256_mul_epu32(a, b);
  return _mm256_add_epi64(lo_lo, cross_sum);
}

inline __m256i MixKey4(__m256i x) {
  x = _mm256_add_epi64(
      x, _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ull)));
  x = Mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
            _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ull)));
  x = Mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
            _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebull)));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

void HashKeysAvx2(const Value* col, int64_t n, uint64_t* out) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), MixKey4(v));
  }
  for (; i < n; ++i) out[i] = MixKey(col[i]);
}

#endif  // HYDRA_SIMD_LEVEL >= 2

#if HYDRA_SIMD_LEVEL >= 1

void MaskAndSse2(uint8_t* a, const uint8_t* b, int64_t n) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a + i), _mm_and_si128(va, vb));
  }
  for (; i < n; ++i) a[i] &= b[i];
}

void MaskOrSse2(uint8_t* a, const uint8_t* b, int64_t n) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a + i), _mm_or_si128(va, vb));
  }
  for (; i < n; ++i) a[i] |= b[i];
}

#endif  // HYDRA_SIMD_LEVEL >= 1

}  // namespace

const char* SimdLevelName() {
#if HYDRA_SIMD_LEVEL >= 2
  return "avx2";
#elif HYDRA_SIMD_LEVEL == 1
  return "sse2";
#else
  return "scalar";
#endif
}

void SetSimdEnabled(bool enabled) {
  g_simd_enabled.store(enabled, std::memory_order_relaxed);
}

bool SimdEnabled() { return g_simd_enabled.load(std::memory_order_relaxed); }

void IntervalMask(const Value* col, int64_t n, Value lo, Value hi,
                  uint8_t* out) {
#if HYDRA_SIMD_LEVEL >= 2
  if (SimdEnabled()) return IntervalMaskAvx2(col, n, lo, hi, out);
#elif HYDRA_SIMD_LEVEL == 1
  if (SimdEnabled()) return IntervalMaskSse2(col, n, lo, hi, out);
#endif
  IntervalMaskScalar(col, n, lo, hi, out);
}

void IntervalMaskOr(const Value* col, int64_t n, Value lo, Value hi,
                    uint8_t* out) {
#if HYDRA_SIMD_LEVEL >= 2
  if (SimdEnabled()) return IntervalMaskOrAvx2(col, n, lo, hi, out);
#elif HYDRA_SIMD_LEVEL == 1
  if (SimdEnabled()) return IntervalMaskOrSse2(col, n, lo, hi, out);
#endif
  IntervalMaskOrScalar(col, n, lo, hi, out);
}

void MaskAnd(uint8_t* a, const uint8_t* b, int64_t n) {
#if HYDRA_SIMD_LEVEL >= 1
  if (SimdEnabled()) return MaskAndSse2(a, b, n);
#endif
  MaskAndScalar(a, b, n);
}

void MaskOr(uint8_t* a, const uint8_t* b, int64_t n) {
#if HYDRA_SIMD_LEVEL >= 1
  if (SimdEnabled()) return MaskOrSse2(a, b, n);
#endif
  MaskOrScalar(a, b, n);
}

void MaskToSel(const uint8_t* mask, int64_t n, SelVector* sel, int32_t base) {
  for (int64_t i = 0; i < n; ++i) {
    if (mask[i]) sel->push_back(base + static_cast<int32_t>(i));
  }
}

void Gather(const Value* src, const int32_t* sel, int64_t n, Value* dst) {
  for (int64_t i = 0; i < n; ++i) dst[i] = src[sel[i]];
}

void HashKeys(const Value* col, int64_t n, uint64_t* out) {
#if HYDRA_SIMD_LEVEL >= 2
  if (SimdEnabled()) return HashKeysAvx2(col, n, out);
#endif
  HashKeysScalar(col, n, out);
}

void FillConst(Value* dst, int64_t n, Value v) { FillConstScalar(dst, n, v); }

void FillIota(Value* dst, int64_t n, Value start) {
  FillIotaScalar(dst, n, start);
}

// --- BlockPredicate ------------------------------------------------------

BlockPredicate::BlockPredicate(const DnfPredicate& dnf) {
  for (const Conjunct& conj : dnf.conjuncts()) {
    std::vector<AtomPlan> plan;
    plan.reserve(conj.atoms.size());
    bool conjunct_false = false;
    for (const Atom& atom : conj.atoms) {
      if (atom.values.empty()) {
        conjunct_false = true;  // contradicted atom: conjunct matches nothing
        break;
      }
      plan.push_back({atom.column, atom.values.intervals()});
    }
    if (conjunct_false) continue;
    if (plan.empty()) {
      // An empty conjunct is TRUE, which makes the whole disjunction TRUE.
      is_true_ = true;
      conjuncts_.clear();
      return;
    }
    conjuncts_.push_back(std::move(plan));
  }
}

namespace {

void AtomMask(const Value* col, int64_t n, const std::vector<Interval>& ivs,
              uint8_t* out) {
  IntervalMask(col, n, ivs[0].lo, ivs[0].hi, out);
  for (size_t k = 1; k < ivs.size(); ++k) {
    IntervalMaskOr(col, n, ivs[k].lo, ivs[k].hi, out);
  }
}

}  // namespace

void BlockPredicate::Select(const RowBlock& block, SelVector* sel) const {
  SelectRange(block, 0, block.num_rows(), sel);
}

void BlockPredicate::SelectRange(const RowBlock& block, int64_t begin,
                                 int64_t end, SelVector* sel) const {
  sel->clear();
  const int64_t n = end - begin;
  if (n <= 0 || is_false()) return;
  if (is_true_) {
    sel->resize(n);
    for (int64_t i = 0; i < n; ++i) {
      (*sel)[i] = static_cast<int32_t>(begin + i);
    }
    return;
  }
  // thread_local scratch: Select is const and runs concurrently on morsel
  // workers; each thread folds into its own masks.
  thread_local std::vector<uint8_t> total_mask;
  thread_local std::vector<uint8_t> conj_mask;
  thread_local std::vector<uint8_t> atom_mask;
  const bool single = conjuncts_.size() == 1;
  if (!single) total_mask.assign(n, 0);
  conj_mask.resize(n);
  atom_mask.resize(n);
  for (const std::vector<AtomPlan>& conj : conjuncts_) {
    AtomMask(block.Column(conj[0].column) + begin, n, conj[0].intervals,
             conj_mask.data());
    for (size_t a = 1; a < conj.size(); ++a) {
      AtomMask(block.Column(conj[a].column) + begin, n, conj[a].intervals,
               atom_mask.data());
      MaskAnd(conj_mask.data(), atom_mask.data(), n);
    }
    if (single) break;
    MaskOr(total_mask.data(), conj_mask.data(), n);
  }
  sel->reserve(n);
  MaskToSel(single ? conj_mask.data() : total_mask.data(), n, sel,
            static_cast<int32_t>(begin));
}

}  // namespace kernels
}  // namespace hydra
