// Columnar batch storage: the unit of data flow between operators.
//
// A RowBlock holds up to a few thousand rows in column-major vectors — one
// contiguous Value array per column — so the hot loops (predicate masks,
// join-key hashing, generator fills, projection) run as tight per-column
// kernels over sequential memory instead of striding through row-major rows
// (docs/engine.md). Logical row order is unchanged: row r is the r-th
// element of every column, and every consumer-visible stream remains
// byte-identical to the former row-major engine.
//
// Filters communicate through selection vectors (SelVector): a list of
// passing row indices produced by the predicate kernels and consumed by
// per-column gathers (GatherBlock).

#ifndef HYDRA_ENGINE_ROW_BLOCK_H_
#define HYDRA_ENGINE_ROW_BLOCK_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "catalog/schema.h"

namespace hydra {

namespace internal {

// Allocator whose default-construct leaves trivial types uninitialized, so
// ResizeUninitialized's resize() doesn't spend a memory pass zeroing bytes
// the caller immediately overwrites (the dominant write on the generator-
// fill and join-output paths).
template <typename T>
class DefaultInitAllocator : public std::allocator<T> {
 public:
  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };
  using std::allocator<T>::allocator;

  template <typename U>
  void construct(U* ptr) noexcept(
      std::is_nothrow_default_constructible<U>::value) {
    ::new (static_cast<void*>(ptr)) U;
  }
  template <typename U, typename... Args>
  void construct(U* ptr, Args&&... args) {
    std::allocator_traits<std::allocator<T>>::construct(
        static_cast<std::allocator<T>&>(*this), ptr,
        std::forward<Args>(args)...);
  }
};

}  // namespace internal

// Flat value storage with uninitialized growth.
using ValueBuffer = std::vector<Value, internal::DefaultInitAllocator<Value>>;

// Selection vector: row indices (into one RowBlock) in ascending order.
using SelVector = std::vector<int32_t>;

// A batch of rows in column-major storage: one contiguous buffer per column.
class RowBlock {
 public:
  RowBlock() = default;
  explicit RowBlock(int num_columns) { Reset(num_columns); }

  // Re-types the block and drops its rows. Column buffers keep their
  // capacity — including buffers beyond the new width, which stay pooled
  // for a later wider Reset — so a block cycled through operators of
  // varying widths allocates each column once and reuses it from then on.
  void Reset(int num_columns) {
    if (static_cast<size_t>(num_columns) > cols_.size()) {
      cols_.resize(num_columns);
    }
    width_ = num_columns;
    for (int c = 0; c < width_; ++c) cols_[c].clear();
    num_rows_ = 0;
  }
  void Clear() {
    for (int c = 0; c < width_; ++c) cols_[c].clear();
    num_rows_ = 0;
  }

  int num_columns() const { return width_; }
  int64_t num_rows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  void Reserve(int64_t rows) {
    for (int c = 0; c < width_; ++c) cols_[c].reserve(rows);
  }
  // Grows (or shrinks) every column to exactly `rows` values without
  // initializing new cells; the caller fills them through MutableColumn.
  void ResizeUninitialized(int64_t rows) {
    for (int c = 0; c < width_; ++c) cols_[c].resize(rows);
    num_rows_ = rows;
  }
  // Drops all rows past the first `rows`.
  void Truncate(int64_t rows) {
    if (rows >= num_rows_) return;
    for (int c = 0; c < width_; ++c) cols_[c].resize(rows);
    num_rows_ = rows;
  }

  const Value* Column(int c) const { return cols_[c].data(); }
  Value* MutableColumn(int c) { return cols_[c].data(); }
  // Direct buffer access, for column moves (projection swaps buffers
  // instead of copying values). The caller must keep all columns the same
  // length and finish with SetNumRows.
  ValueBuffer& MutableColumnBuffer(int c) { return cols_[c]; }
  // Declares the row count after direct column-buffer writes/swaps.
  void SetNumRows(int64_t rows) { num_rows_ = rows; }

  Value At(int64_t row, int col) const { return cols_[col][row]; }

  // Appends `n` row-major rows (n * num_columns() values), transposing into
  // the columns — the bridge from row-major storage (Table) and the
  // row-at-a-time shim.
  void AppendRowMajor(const Value* rows, int64_t n) {
    const int w = num_columns();
    const int64_t base = num_rows_;
    ResizeUninitialized(base + n);
    // Tiled transpose: each tile of source rows is re-read once per column,
    // so keep the tile small enough to survive in L1 across all w passes.
    constexpr int64_t kTileRows = 256;
    for (int64_t t = 0; t < n; t += kTileRows) {
      const int64_t tn = std::min(kTileRows, n - t);
      for (int c = 0; c < w; ++c) {
        Value* dst = cols_[c].data() + base + t;
        const Value* src = rows + t * w + c;
        for (int64_t r = 0; r < tn; ++r) dst[r] = src[r * w];
      }
    }
  }

  // Appends all rows of `other` (same width) — per-column contiguous copy.
  void AppendBlock(const RowBlock& other) {
    const int64_t base = num_rows_;
    ResizeUninitialized(base + other.num_rows_);
    for (int c = 0; c < num_columns(); ++c) {
      Value* dst = cols_[c].data() + base;
      const Value* src = other.cols_[c].data();
      std::copy(src, src + other.num_rows_, dst);
    }
  }

  // Appends rows [begin, begin + n) of `other` (same width).
  void AppendRange(const RowBlock& other, int64_t begin, int64_t n) {
    const int64_t base = num_rows_;
    ResizeUninitialized(base + n);
    for (int c = 0; c < num_columns(); ++c) {
      const Value* src = other.cols_[c].data() + begin;
      std::copy(src, src + n, cols_[c].data() + base);
    }
  }

  // Writes row `row` into `dst` (num_columns() values, row-major).
  void CopyRowTo(int64_t row, Value* dst) const {
    for (int c = 0; c < num_columns(); ++c) dst[c] = cols_[c][row];
  }

 private:
  // cols_ may hold more buffers than width_ (see Reset); only the first
  // width_ are live.
  std::vector<ValueBuffer> cols_;
  int width_ = 0;
  int64_t num_rows_ = 0;
};

}  // namespace hydra

#endif  // HYDRA_ENGINE_ROW_BLOCK_H_
