// Query executor producing Annotated Query Plans (AQPs), plus the parser that
// converts AQPs to cardinality constraints (Sections 2.1, 2.2, 3.1).
//
// Execution is left-deep in the query's join order with filters pushed down,
// mirroring the plans of Figure 1c: every filtered base relation and every
// join output edge carries a row-cardinality annotation.

#ifndef HYDRA_ENGINE_EXECUTOR_H_
#define HYDRA_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "engine/operators.h"
#include "engine/table.h"
#include "query/constraint.h"
#include "query/query.h"

namespace hydra {

// One annotated edge of the plan: the (partial) join expression evaluated so
// far, its accumulated filter predicate, and the observed output cardinality.
// This carries exactly the information the client-side Parser needs to emit a
// cardinality constraint.
struct AqpStep {
  std::string label;
  std::vector<int> relations;    // schema relation indices, join root first
  std::vector<CcJoin> joins;     // PK-FK edges applied so far
  std::vector<AttrRef> columns;  // predicate column space
  DnfPredicate predicate;        // accumulated filters over `columns`
  uint64_t cardinality = 0;
};

struct AnnotatedQueryPlan {
  std::string query_name;
  std::vector<AqpStep> steps;
};

class Executor {
 public:
  // The executor owns one ExecContext (thread pool + morsel knobs) reused
  // across every Execute call; per-relation scan+filter runs through the
  // morsel-parallel operator pipeline. Results are byte-identical at any
  // num_threads (docs/engine.md).
  explicit Executor(const Schema& schema, ExecOptions options = {})
      : schema_(schema), owned_ctx_(std::make_unique<ExecContext>(options)) {}

  // Runs on a caller-owned context instead (e.g. a serving-layer scheduler
  // slot over a shared pool — docs/serve.md). `ctx` must outlive the
  // executor; results are identical to the owning mode.
  Executor(const Schema& schema, ExecContext* ctx)
      : schema_(schema), external_ctx_(ctx) {}

  // Executes `query` against `source` and returns the annotated plan.
  // Requires the query's relations to be distinct (no self-joins).
  StatusOr<AnnotatedQueryPlan> Execute(const Query& query,
                                       const TableSource& source) const;

  const ExecOptions& options() const { return ctx()->options(); }

 private:
  ExecContext* ctx() const {
    return external_ctx_ != nullptr ? external_ctx_ : owned_ctx_.get();
  }

  const Schema& schema_;
  std::unique_ptr<ExecContext> owned_ctx_;
  ExecContext* external_ctx_ = nullptr;  // non-owning
};

// The client-site Parser: converts an AQP into cardinality constraints
// (Figure 1d). Each annotated edge becomes one CC.
std::vector<CardinalityConstraint> AqpToConstraints(
    const AnnotatedQueryPlan& aqp);

// The |R| = count base-size constraint for a relation.
CardinalityConstraint RelationSizeConstraint(int relation, uint64_t count,
                                             const std::string& label);

}  // namespace hydra

#endif  // HYDRA_ENGINE_EXECUTOR_H_
