#include "engine/executor.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace hydra {

namespace {

// Builds the CC column space + remapped predicate for the subset of query
// tables in `table_ids` (indices into query.tables).
void BuildCcPredicate(const Schema& schema, const Query& query,
                      const std::vector<int>& table_ids,
                      std::vector<AttrRef>* columns, DnfPredicate* predicate) {
  columns->clear();
  *predicate = DnfPredicate::True();
  for (int t : table_ids) {
    const QueryTable& qt = query.tables[t];
    if (qt.filter.IsTrue()) continue;
    // Map this table's filter columns (attribute indices) into the CC space.
    const Relation& rel = schema.relation(qt.relation);
    std::vector<int> mapping(rel.num_attributes(), -1);
    for (int attr : qt.filter.Columns()) {
      AttrRef ref{qt.relation, attr};
      int idx = -1;
      for (size_t i = 0; i < columns->size(); ++i) {
        if ((*columns)[i] == ref) {
          idx = static_cast<int>(i);
          break;
        }
      }
      if (idx < 0) {
        idx = static_cast<int>(columns->size());
        columns->push_back(ref);
      }
      mapping[attr] = idx;
    }
    *predicate = predicate->And(qt.filter.RemapColumns(mapping));
  }
}

}  // namespace

StatusOr<AnnotatedQueryPlan> Executor::Execute(
    const Query& query, const TableSource& source) const {
  HYDRA_RETURN_IF_ERROR(query.Validate(schema_));
  {
    std::unordered_set<int> rels;
    for (const QueryTable& qt : query.tables) {
      if (!rels.insert(qt.relation).second) {
        return Status::Unimplemented("self-joins are not supported (query " +
                                     query.name + ")");
      }
    }
  }

  AnnotatedQueryPlan aqp;
  aqp.query_name = query.name;

  const int num_tables = static_cast<int>(query.tables.size());

  // Scan + filter each participating relation once, through the morsel-
  // driven operator pipeline: the leaf fans out over ScanRange partitions
  // and evaluates the pushed-down filter inside the morsel workers, and the
  // blocks arrive in rank order, so the filtered table is identical to a
  // sequential scan at any thread count.
  // Per-query intermediates are thread_local so their buffers survive
  // across Execute calls: a workload loop otherwise re-allocates (and
  // first-touches) megabytes of fresh column storage for every query.
  thread_local std::vector<RowBlock> filtered;
  thread_local RowBlock drain;
  if (static_cast<int>(filtered.size()) < num_tables) {
    filtered.resize(num_tables);
  }
  for (int t = 0; t < num_tables; ++t) {
    // Stage boundary: a tripped CancelScope unwinds here (and after each
    // join below) within one morsel of the signal — the pipelines stop
    // emitting, so the partial tables are simply dropped.
    HYDRA_RETURN_IF_ERROR(ctx()->CheckCancel());
    const QueryTable& qt = query.tables[t];
    const Relation& rel = schema_.relation(qt.relation);
    RowBlock& ft = filtered[t];
    ft.Reset(rel.num_attributes());
    {
      SourceScanOp scan(&source, qt.relation, rel.num_attributes(),
                        qt.filter, ctx());
      scan.Open();
      while (scan.NextBatch(&drain)) ft.AppendBlock(drain);
    }
    if (!qt.filter.IsTrue()) {
      AqpStep step;
      step.label = query.name + "/filter(" + rel.name() + ")";
      step.relations = {qt.relation};
      BuildCcPredicate(schema_, query, {t}, &step.columns, &step.predicate);
      step.cardinality = ft.num_rows();
      aqp.steps.push_back(std::move(step));
    }
  }

  // Left-deep join phase, entirely in the operator layer: every step is one
  // HashJoinOp — the accumulated result probes, the new relation builds —
  // so the parallel partitioned build + shared read-only probe is the
  // production join path. For a PK-side new table the acc row's FK value
  // probes the (unique) PK build keys; for an FK-side new table the acc
  // row's PK value probes the FK build keys, expanding per duplicate.
  //
  // Intermediates stay narrow: both the build side and the join output are
  // projected down to the probe-key columns later steps still need (AQP
  // annotation only wants cardinalities), so an accumulated row carries a
  // handful of key values, not every joined attribute.
  struct AttrCol {
    int table;  // index into query.tables
    int attr;
    bool operator==(const AttrCol& o) const {
      return table == o.table && attr == o.attr;
    }
  };
  const int num_joins = static_cast<int>(query.joins.size());
  std::vector<AttrCol> acc_key(num_joins);   // join key column within acc
  std::vector<int> new_key(num_joins);       // join key attr on the new table
  std::vector<bool> new_is_fk(num_joins);
  for (int k = 0; k < num_joins; ++k) {
    const JoinEdge& edge = query.joins[k];
    const int new_t = k + 1;
    new_is_fk[k] = edge.fk_table == new_t;
    if (edge.pk_table == new_t) {
      // New table is the PK side: each accumulated row matches <= 1 new row.
      const int pk_attr =
          schema_.relation(query.tables[new_t].relation).PrimaryKeyIndex();
      HYDRA_CHECK(pk_attr >= 0);
      HYDRA_CHECK_MSG(edge.fk_table <= k, "join references un-joined table "
                                              << edge.fk_table);
      acc_key[k] = {edge.fk_table, edge.fk_attr};
      new_key[k] = pk_attr;
    } else {
      // New table is the FK side: accumulated PK values match any number of
      // new FK rows (may expand).
      HYDRA_CHECK(edge.fk_table == new_t);
      HYDRA_CHECK_MSG(edge.pk_table <= k, "join references un-joined table "
                                              << edge.pk_table);
      const int pk_attr =
          schema_.relation(query.tables[edge.pk_table].relation)
              .PrimaryKeyIndex();
      HYDRA_CHECK(pk_attr >= 0);
      acc_key[k] = {edge.pk_table, pk_attr};
      new_key[k] = edge.fk_attr;
    }
  }
  // The acc-side key columns still needed by steps > j, deduped in step
  // order.
  const auto needed_after = [&](int j) {
    std::vector<AttrCol> out;
    for (int k = j + 1; k < num_joins; ++k) {
      if (std::find(out.begin(), out.end(), acc_key[k]) == out.end()) {
        out.push_back(acc_key[k]);
      }
    }
    return out;
  };
  const auto col_index = [](const std::vector<AttrCol>& cols,
                            const AttrCol& c) {
    const auto it = std::find(cols.begin(), cols.end(), c);
    HYDRA_CHECK(it != cols.end());
    return static_cast<int>(it - cols.begin());
  };

  // acc holds exactly the still-needed key columns of the joined tables,
  // laid out as described by acc_cols; seed it with the root's key columns.
  std::vector<AttrCol> acc_cols;
  for (const AttrCol& c : needed_after(-1)) {
    if (c.table == 0) acc_cols.push_back(c);
  }
  thread_local RowBlock acc;
  acc.Reset(static_cast<int>(acc_cols.size()));
  if (num_joins > 0) {
    std::vector<int> root_attrs;
    root_attrs.reserve(acc_cols.size());
    for (const AttrCol& c : acc_cols) root_attrs.push_back(c.attr);
    ProjectOp project(std::make_unique<RowBlockScanOp>(&filtered[0], ctx()),
                      std::move(root_attrs));
    project.Open();
    while (project.NextBatch(&drain)) acc.AppendBlock(drain);
  }

  std::vector<int> joined_tables = {0};  // indices into query.tables

  for (int j = 0; j < num_joins; ++j) {
    HYDRA_RETURN_IF_ERROR(ctx()->CheckCancel());
    const int new_t = j + 1;

    // The new relation projected to its key column (first) plus any of its
    // attributes later steps probe with.
    std::vector<int> new_attrs = {new_key[j]};
    const std::vector<AttrCol> needed = needed_after(j);
    for (const AttrCol& c : needed) {
      if (c.table == new_t && c.attr != new_key[j]) {
        new_attrs.push_back(c.attr);
      }
    }
    auto new_scan = std::make_unique<ProjectOp>(
        std::make_unique<RowBlockScanOp>(&filtered[new_t], ctx()),
        new_attrs);
    const int acc_key_col = col_index(acc_cols, acc_key[j]);

    // Orientation: always hash-build over the smaller, join-result-bounded
    // side. A PK-side new table is a dimension (unique keys) — build on it,
    // probe with acc. An FK-side new table is fact-sized — build on acc and
    // let the fact scan be the morsel-parallel probe.
    std::unique_ptr<HashJoinOp> join;
    std::vector<AttrCol> out_cols;
    if (new_is_fk[j]) {
      for (int a : new_attrs) out_cols.push_back({new_t, a});
      out_cols.insert(out_cols.end(), acc_cols.begin(), acc_cols.end());
      join = std::make_unique<HashJoinOp>(std::move(new_scan),
                                          /*probe_col=*/0, &acc, acc_key_col,
                                          ctx());
    } else {
      out_cols = acc_cols;
      for (int a : new_attrs) out_cols.push_back({new_t, a});
      join = std::make_unique<HashJoinOp>(
          std::make_unique<RowBlockScanOp>(&acc, ctx()), acc_key_col,
          std::move(new_scan), /*build_col=*/0, ctx());
    }

    // Keys of not-yet-joined tables enter acc only once their table joins
    // (via build_attrs above); until then they are carried by `needed` but
    // cannot be projected.
    std::vector<AttrCol> keep_cols;
    for (const AttrCol& c : needed) {
      if (c.table <= new_t) keep_cols.push_back(c);
    }

    uint64_t cardinality = 0;
    if (keep_cols.empty()) {
      // Final step: only the cardinality is wanted.
      cardinality = CountRows(join.get());
      acc.Reset(0);
      acc_cols.clear();
    } else {
      std::vector<int> keep;
      keep.reserve(keep_cols.size());
      for (const AttrCol& c : keep_cols) {
        keep.push_back(col_index(out_cols, c));
      }
      // Swap (not move) so the displaced acc buffers become next's scratch
      // on the following join step instead of being freed.
      thread_local RowBlock next;
      next.Reset(static_cast<int>(keep_cols.size()));
      ProjectOp project(std::move(join), std::move(keep));
      project.Open();
      while (project.NextBatch(&drain)) next.AppendBlock(drain);
      cardinality = static_cast<uint64_t>(next.num_rows());
      std::swap(acc, next);
      acc_cols = std::move(keep_cols);
    }
    joined_tables.push_back(new_t);

    AqpStep step;
    step.label = query.name + "/join" + std::to_string(j);
    std::vector<int> sorted_tables = joined_tables;
    std::sort(sorted_tables.begin(), sorted_tables.end());
    for (int t : sorted_tables) {
      step.relations.push_back(query.tables[t].relation);
    }
    for (int k = 0; k <= j; ++k) {
      const JoinEdge& e = query.joins[k];
      CcJoin cj;
      cj.fk_relation = query.tables[e.fk_table].relation;
      cj.fk_attr = e.fk_attr;
      cj.pk_relation = query.tables[e.pk_table].relation;
      step.joins.push_back(cj);
    }
    BuildCcPredicate(schema_, query, sorted_tables, &step.columns,
                     &step.predicate);
    step.cardinality = cardinality;
    aqp.steps.push_back(std::move(step));
  }

  // A cancellation that tripped inside the last stage produced truncated
  // streams above; report it rather than returning a silently-partial plan.
  HYDRA_RETURN_IF_ERROR(ctx()->CheckCancel());
  return aqp;
}

std::vector<CardinalityConstraint> AqpToConstraints(
    const AnnotatedQueryPlan& aqp) {
  std::vector<CardinalityConstraint> ccs;
  ccs.reserve(aqp.steps.size());
  for (const AqpStep& step : aqp.steps) {
    CardinalityConstraint cc;
    cc.relations = step.relations;
    cc.joins = step.joins;
    cc.columns = step.columns;
    cc.predicate = step.predicate;
    cc.cardinality = step.cardinality;
    cc.label = step.label;
    ccs.push_back(std::move(cc));
  }
  return ccs;
}

CardinalityConstraint RelationSizeConstraint(int relation, uint64_t count,
                                             const std::string& label) {
  CardinalityConstraint cc;
  cc.relations = {relation};
  cc.predicate = DnfPredicate::True();
  cc.cardinality = count;
  cc.label = label;
  return cc;
}

}  // namespace hydra
