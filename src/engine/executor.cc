#include "engine/executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace hydra {

namespace {

// Builds the CC column space + remapped predicate for the subset of query
// tables in `table_ids` (indices into query.tables).
void BuildCcPredicate(const Schema& schema, const Query& query,
                      const std::vector<int>& table_ids,
                      std::vector<AttrRef>* columns, DnfPredicate* predicate) {
  columns->clear();
  *predicate = DnfPredicate::True();
  for (int t : table_ids) {
    const QueryTable& qt = query.tables[t];
    if (qt.filter.IsTrue()) continue;
    // Map this table's filter columns (attribute indices) into the CC space.
    const Relation& rel = schema.relation(qt.relation);
    std::vector<int> mapping(rel.num_attributes(), -1);
    for (int attr : qt.filter.Columns()) {
      AttrRef ref{qt.relation, attr};
      int idx = -1;
      for (size_t i = 0; i < columns->size(); ++i) {
        if ((*columns)[i] == ref) {
          idx = static_cast<int>(i);
          break;
        }
      }
      if (idx < 0) {
        idx = static_cast<int>(columns->size());
        columns->push_back(ref);
      }
      mapping[attr] = idx;
    }
    *predicate = predicate->And(qt.filter.RemapColumns(mapping));
  }
}

}  // namespace

StatusOr<AnnotatedQueryPlan> Executor::Execute(
    const Query& query, const TableSource& source) const {
  HYDRA_RETURN_IF_ERROR(query.Validate(schema_));
  {
    std::unordered_set<int> rels;
    for (const QueryTable& qt : query.tables) {
      if (!rels.insert(qt.relation).second) {
        return Status::Unimplemented("self-joins are not supported (query " +
                                     query.name + ")");
      }
    }
  }

  AnnotatedQueryPlan aqp;
  aqp.query_name = query.name;

  const int num_tables = static_cast<int>(query.tables.size());

  // Scan + filter each participating relation once.
  std::vector<Table> filtered;
  filtered.reserve(num_tables);
  for (int t = 0; t < num_tables; ++t) {
    const QueryTable& qt = query.tables[t];
    const Relation& rel = schema_.relation(qt.relation);
    Table ft(rel.num_attributes());
    source.Scan(qt.relation, [&](const Row& row) {
      if (qt.filter.Eval(row)) ft.AppendRow(row);
    });
    if (!qt.filter.IsTrue()) {
      AqpStep step;
      step.label = query.name + "/filter(" + rel.name() + ")";
      step.relations = {qt.relation};
      BuildCcPredicate(schema_, query, {t}, &step.columns, &step.predicate);
      step.cardinality = ft.num_rows();
      aqp.steps.push_back(std::move(step));
    }
    filtered.push_back(std::move(ft));
  }

  // Accumulated join result: flat array of row-id tuples, one uint32 row id
  // per already-joined table (PK-FK joins keep these narrow).
  std::vector<uint32_t> acc;
  std::vector<int> joined_tables = {0};  // indices into query.tables
  acc.reserve(filtered[0].num_rows());
  for (uint64_t r = 0; r < filtered[0].num_rows(); ++r) {
    acc.push_back(static_cast<uint32_t>(r));
  }

  for (size_t j = 0; j < query.joins.size(); ++j) {
    const JoinEdge& edge = query.joins[j];
    const int new_t = static_cast<int>(j) + 1;
    const int stride = static_cast<int>(joined_tables.size());
    std::vector<uint32_t> next;

    auto slot_of = [&](int table_id) {
      for (int s = 0; s < stride; ++s) {
        if (joined_tables[s] == table_id) return s;
      }
      HYDRA_CHECK_MSG(false, "join references un-joined table " << table_id);
      return -1;
    };

    if (edge.pk_table == new_t) {
      // New table is the PK side: each accumulated row matches <= 1 new row.
      const Relation& pk_rel =
          schema_.relation(query.tables[new_t].relation);
      const int pk_attr = pk_rel.PrimaryKeyIndex();
      HYDRA_CHECK(pk_attr >= 0);
      std::unordered_map<Value, uint32_t> build;
      build.reserve(filtered[new_t].num_rows() * 2);
      for (uint64_t r = 0; r < filtered[new_t].num_rows(); ++r) {
        build.emplace(filtered[new_t].At(r, pk_attr),
                      static_cast<uint32_t>(r));
      }
      const int fk_slot = slot_of(edge.fk_table);
      const uint64_t acc_rows = acc.size() / stride;
      for (uint64_t r = 0; r < acc_rows; ++r) {
        const uint32_t fk_row = acc[r * stride + fk_slot];
        const Value fk_value = filtered[edge.fk_table].At(fk_row, edge.fk_attr);
        auto it = build.find(fk_value);
        if (it == build.end()) continue;
        next.insert(next.end(), acc.begin() + r * stride,
                    acc.begin() + (r + 1) * stride);
        next.push_back(it->second);
      }
    } else {
      // New table is the FK side: probe accumulated PK values (may expand).
      HYDRA_CHECK(edge.fk_table == new_t);
      const Relation& pk_rel =
          schema_.relation(query.tables[edge.pk_table].relation);
      const int pk_attr = pk_rel.PrimaryKeyIndex();
      HYDRA_CHECK(pk_attr >= 0);
      const int pk_slot = slot_of(edge.pk_table);
      std::unordered_map<Value, std::vector<uint32_t>> build;
      const uint64_t acc_rows = acc.size() / stride;
      build.reserve(acc_rows * 2);
      for (uint64_t r = 0; r < acc_rows; ++r) {
        const uint32_t pk_row = acc[r * stride + pk_slot];
        build[filtered[edge.pk_table].At(pk_row, pk_attr)].push_back(
            static_cast<uint32_t>(r));
      }
      for (uint64_t r = 0; r < filtered[new_t].num_rows(); ++r) {
        const Value fk_value = filtered[new_t].At(r, edge.fk_attr);
        auto it = build.find(fk_value);
        if (it == build.end()) continue;
        for (uint32_t acc_r : it->second) {
          next.insert(next.end(), acc.begin() + acc_r * stride,
                      acc.begin() + (acc_r + 1) * stride);
          next.push_back(static_cast<uint32_t>(r));
        }
      }
    }

    joined_tables.push_back(new_t);
    acc = std::move(next);

    AqpStep step;
    step.label = query.name + "/join" + std::to_string(j);
    std::vector<int> sorted_tables = joined_tables;
    std::sort(sorted_tables.begin(), sorted_tables.end());
    for (int t : sorted_tables) {
      step.relations.push_back(query.tables[t].relation);
    }
    for (size_t k = 0; k <= j; ++k) {
      const JoinEdge& e = query.joins[k];
      CcJoin cj;
      cj.fk_relation = query.tables[e.fk_table].relation;
      cj.fk_attr = e.fk_attr;
      cj.pk_relation = query.tables[e.pk_table].relation;
      step.joins.push_back(cj);
    }
    BuildCcPredicate(schema_, query, sorted_tables, &step.columns,
                     &step.predicate);
    step.cardinality = acc.size() / joined_tables.size();
    aqp.steps.push_back(std::move(step));
  }

  return aqp;
}

std::vector<CardinalityConstraint> AqpToConstraints(
    const AnnotatedQueryPlan& aqp) {
  std::vector<CardinalityConstraint> ccs;
  ccs.reserve(aqp.steps.size());
  for (const AqpStep& step : aqp.steps) {
    CardinalityConstraint cc;
    cc.relations = step.relations;
    cc.joins = step.joins;
    cc.columns = step.columns;
    cc.predicate = step.predicate;
    cc.cardinality = step.cardinality;
    cc.label = step.label;
    ccs.push_back(std::move(cc));
  }
  return ccs;
}

CardinalityConstraint RelationSizeConstraint(int relation, uint64_t count,
                                             const std::string& label) {
  CardinalityConstraint cc;
  cc.relations = {relation};
  cc.predicate = DnfPredicate::True();
  cc.cardinality = count;
  cc.label = label;
  return cc;
}

}  // namespace hydra
