// In-memory relational storage: flat row-major tables and a Database bundling
// one table per schema relation.
//
// The engine plays two roles from the paper: the *client's* database engine
// (executing the workload to annotate query plans with true cardinalities)
// and the *vendor's* engine under test (executing the same workload on
// regenerated data). Tables store Values contiguously (row-major) to keep
// scans cache-friendly.

#ifndef HYDRA_ENGINE_TABLE_H_
#define HYDRA_ENGINE_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "engine/row_block.h"

namespace hydra {

class Table {
 public:
  explicit Table(int num_columns) : num_columns_(num_columns) {}

  int num_columns() const { return num_columns_; }
  uint64_t num_rows() const {
    return num_columns_ == 0 ? 0 : data_.size() / num_columns_;
  }

  void Reserve(uint64_t rows) { data_.reserve(rows * num_columns_); }
  // Grows (or shrinks) the table to exactly `rows` rows, zero-filling new
  // cells. Parallel materialization carves the resized storage into disjoint
  // shard ranges and fills them through MutableRowPtr.
  void ResizeRows(uint64_t rows) { data_.resize(rows * num_columns_); }

  void AppendRow(const Row& row);
  // Appends a row given as a raw pointer to num_columns() values.
  void AppendRaw(const Value* row);
  // Appends `num_rows` contiguous row-major rows in one insertion.
  void AppendBlock(const Value* rows, int64_t num_rows);

  Value At(uint64_t row, int col) const {
    return data_[row * num_columns_ + col];
  }
  // Pointer to the first value of `row`.
  const Value* RowPtr(uint64_t row) const {
    return data_.data() + row * num_columns_;
  }
  Value* MutableRowPtr(uint64_t row) {
    return data_.data() + row * num_columns_;
  }

  void GetRow(uint64_t row, Row* out) const;

  uint64_t ByteSize() const { return data_.size() * sizeof(Value); }

  const std::vector<Value>& data() const { return data_; }

 private:
  int num_columns_;
  std::vector<Value> data_;
};

// Abstract supplier of relation rows. The materialized Database implements it
// by scanning storage; the Hydra tuple generator implements it by generating
// rows on demand from the database summary (the paper's `datagen` scan
// replacement).
class TableSource {
 public:
  virtual ~TableSource() = default;

  virtual uint64_t RowCount(int relation) const = 0;
  // Invokes `fn` once per row of `relation`, in primary-key order. The Row
  // reference is only valid during the call.
  virtual void Scan(int relation,
                    const std::function<void(const Row&)>& fn) const = 0;
  // Invokes `fn` once per row of the half-open rank range [begin, end), in
  // primary-key order (requires 0 <= begin <= end <= RowCount(relation)).
  // PK values are implicit ranks, so ranges partition every relation into
  // independently scannable shards: concatenating ScanRange over any split
  // of [0, RowCount) yields exactly the Scan() sequence, and disjoint ranges
  // may be scanned concurrently.
  virtual void ScanRange(int relation, int64_t begin, int64_t end,
                         const std::function<void(const Row&)>& fn) const = 0;
  // Appends the rank range [begin, end) to `out` (already Reset to the
  // relation's width) in columnar form — the engine's batch scan entry
  // point. The base implementation transposes through ScanRange; sources
  // with a cheaper columnar path (constant-run generators, contiguous
  // storage) override it. Same range semantics as ScanRange.
  virtual void FillBlockRange(int relation, int64_t begin, int64_t end,
                              RowBlock* out) const;
};

// A fully-materialized database: one Table per schema relation.
class Database : public TableSource {
 public:
  explicit Database(Schema schema);

  const Schema& schema() const { return schema_; }

  Table& table(int relation) { return tables_[relation]; }
  const Table& table(int relation) const { return tables_[relation]; }

  uint64_t TotalBytes() const;
  uint64_t TotalRows() const;

  // TableSource:
  uint64_t RowCount(int relation) const override;
  void Scan(int relation,
            const std::function<void(const Row&)>& fn) const override;
  void ScanRange(int relation, int64_t begin, int64_t end,
                 const std::function<void(const Row&)>& fn) const override;
  void FillBlockRange(int relation, int64_t begin, int64_t end,
                      RowBlock* out) const override;

  // Verifies that every FK value appears as a PK of the target relation.
  Status CheckReferentialIntegrity() const;

 private:
  // Lazily built column-major mirror of the row-major tables, so repeated
  // batch scans (e.g. one per workload query) pay the transpose once
  // instead of per FillBlockRange call. Guarded by a reader/writer lock:
  // morsel workers scan under shared locks; a stale mirror (table grew
  // since the last build) is refreshed under the exclusive lock. Held by
  // pointer so Database stays movable.
  struct ColumnarMirror {
    std::shared_mutex mu;
    std::vector<RowBlock> blocks;
  };

  Schema schema_;
  std::vector<Table> tables_;
  mutable std::unique_ptr<ColumnarMirror> columnar_ =
      std::make_unique<ColumnarMirror>();
};

}  // namespace hydra

#endif  // HYDRA_ENGINE_TABLE_H_
