// Volcano-style pull operators: the execution layer of the engine under
// test. Section 6's `datagen` feature is realized by swapping the leaf:
// TableScanOp reads materialized storage, GeneratorScanOp pulls tuples
// straight out of the database summary — every operator above is oblivious
// to where the rows come from.

#ifndef HYDRA_ENGINE_OPERATORS_H_
#define HYDRA_ENGINE_OPERATORS_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/table.h"
#include "hydra/tuple_generator.h"
#include "query/predicate.h"

namespace hydra {

// Pull iterator: Open() once, then Next() until it returns false.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual void Open() = 0;
  // Fills `out` (resized as needed) and returns true, or returns false at
  // end of stream.
  virtual bool Next(Row* out) = 0;
  virtual int num_columns() const = 0;
};

// Leaf: scans an in-memory table in row order.
class TableScanOp : public Operator {
 public:
  explicit TableScanOp(const Table* table) : table_(table) {}

  void Open() override { next_row_ = 0; }
  bool Next(Row* out) override;
  int num_columns() const override { return table_->num_columns(); }

 private:
  const Table* table_;
  uint64_t next_row_ = 0;
};

// Leaf: generates tuples on demand from a database summary (dynamic
// regeneration; no storage touched).
class GeneratorScanOp : public Operator {
 public:
  GeneratorScanOp(const TupleGenerator* generator, int relation,
                  int num_columns)
      : generator_(generator), relation_(relation), num_columns_(num_columns) {}

  void Open() override { next_pk_ = 0; }
  bool Next(Row* out) override;
  int num_columns() const override { return num_columns_; }

 private:
  const TupleGenerator* generator_;
  int relation_;
  int num_columns_;
  int64_t next_pk_ = 0;
};

// σ: keeps rows satisfying a DNF predicate.
class FilterOp : public Operator {
 public:
  FilterOp(std::unique_ptr<Operator> child, DnfPredicate predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  void Open() override { child_->Open(); }
  bool Next(Row* out) override;
  int num_columns() const override { return child_->num_columns(); }

 private:
  std::unique_ptr<Operator> child_;
  DnfPredicate predicate_;
};

// π: emits a subset/permutation of the child's columns.
class ProjectOp : public Operator {
 public:
  ProjectOp(std::unique_ptr<Operator> child, std::vector<int> columns)
      : child_(std::move(child)), columns_(std::move(columns)) {}

  void Open() override { child_->Open(); }
  bool Next(Row* out) override;
  int num_columns() const override {
    return static_cast<int>(columns_.size());
  }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<int> columns_;
  Row buffer_;
};

// ⋈: hash join; the build side is materialized at Open(). Output rows are
// probe columns followed by build columns. Handles duplicate keys on both
// sides.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(std::unique_ptr<Operator> probe, int probe_col,
             std::unique_ptr<Operator> build, int build_col)
      : probe_(std::move(probe)),
        build_(std::move(build)),
        probe_col_(probe_col),
        build_col_(build_col) {}

  void Open() override;
  bool Next(Row* out) override;
  int num_columns() const override {
    return probe_->num_columns() + build_->num_columns();
  }

 private:
  std::unique_ptr<Operator> probe_;
  std::unique_ptr<Operator> build_;
  int probe_col_;
  int build_col_;
  // key -> rows of the build side.
  std::unordered_map<Value, std::vector<Row>> hash_;
  Row probe_row_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_index_ = 0;
};

enum class AggregateKind { kCount, kSum, kMin, kMax };

// γ: grouped aggregation; fully materializes at Open(). Output row layout:
// group columns then one value per aggregate.
class HashAggregateOp : public Operator {
 public:
  struct Aggregate {
    AggregateKind kind;
    int column = -1;  // ignored for kCount
  };

  HashAggregateOp(std::unique_ptr<Operator> child, std::vector<int> group_by,
                  std::vector<Aggregate> aggregates)
      : child_(std::move(child)),
        group_by_(std::move(group_by)),
        aggregates_(std::move(aggregates)) {}

  void Open() override;
  bool Next(Row* out) override;
  int num_columns() const override {
    return static_cast<int>(group_by_.size() + aggregates_.size());
  }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<int> group_by_;
  std::vector<Aggregate> aggregates_;
  std::vector<Row> results_;
  size_t next_result_ = 0;
};

// Stops after `limit` rows.
class LimitOp : public Operator {
 public:
  LimitOp(std::unique_ptr<Operator> child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  void Open() override {
    child_->Open();
    emitted_ = 0;
  }
  bool Next(Row* out) override;
  int num_columns() const override { return child_->num_columns(); }

 private:
  std::unique_ptr<Operator> child_;
  uint64_t limit_;
  uint64_t emitted_ = 0;
};

// Drains `op` and returns the number of rows produced.
uint64_t CountRows(Operator* op);

}  // namespace hydra

#endif  // HYDRA_ENGINE_OPERATORS_H_
