// Batch-vectorized, morsel-driven execution engine. Section 6's `datagen`
// feature is realized by swapping the leaf: TableScanOp reads materialized
// storage, GeneratorScanOp pulls tuples straight out of the database summary,
// SourceScanOp scans any TableSource — every operator above is oblivious to
// where the rows come from.
//
// Operators exchange columnar RowBlock batches (NextBatch); the hot loops —
// predicate evaluation, join-key hashing, generator fills, projection — run
// as per-column kernels (engine/kernels.h) over the blocks' contiguous
// column buffers, with filters communicating through selection vectors.
// The row-at-a-time Next() shim on the base class exists only for root
// consumers and tests. Leaves fan morsels (fixed-size rank ranges of
// ScanRange/FillBlockRange) out over an ExecContext's thread pool and emit
// the filled blocks in rank order, so the concatenated row stream — and
// therefore every cardinality, aggregate value, and root row order — is
// byte-identical at any thread count and at either kernel dispatch path
// (docs/engine.md).

#ifndef HYDRA_ENGINE_OPERATORS_H_
#define HYDRA_ENGINE_OPERATORS_H_

#include <map>
#include <memory>
#include <vector>

#include "common/cancel.h"
#include "common/thread_pool.h"
#include "engine/kernels.h"
#include "engine/row_block.h"
#include "engine/table.h"
#include "hydra/tuple_generator.h"
#include "query/predicate.h"

namespace hydra {

// Knobs of the parallel engine, threaded from the workload drivers down to
// the morsel sources.
struct ExecOptions {
  // Worker threads for morsel fan-out. 0 = one per hardware thread;
  // 1 = fully sequential (no pool, no handoff machinery).
  int num_threads = 1;
  // Rows per morsel: the unit of leaf parallel work and the target batch
  // size flowing between operators.
  int64_t morsel_rows = 4096;

  int ResolvedThreads() const {
    return num_threads == 0 ? ThreadPool::DefaultThreads()
                            : (num_threads < 1 ? 1 : num_threads);
  }
};

// Shared execution state for one operator tree (reused across the queries of
// a workload): the options plus the pool morsel work fans out on. Operators
// given no context — or a 1-thread context — run fully sequentially.
//
// Two ownership modes:
//  * owning (the classic constructor): the context spawns its own pool of
//    options.ResolvedThreads() workers;
//  * external slot: the context borrows a caller-owned shared pool and caps
//    its fan-out at `slot_parallelism` — the serving layer's "scheduler
//    slot", letting many concurrent pipelines share one pool with bounded
//    per-pipeline width. Tasks submitted through a slot must never block on
//    other pool tasks (the engine's leaf tasks never do), so slots cannot
//    deadlock a shared pool.
class ExecContext {
 public:
  explicit ExecContext(ExecOptions options);
  // External-slot mode: non-owning. With slot_parallelism <= 1 (or a null
  // pool) the context is fully sequential and never touches `shared_pool`.
  ExecContext(ExecOptions options, ThreadPool* shared_pool,
              int slot_parallelism);

  const ExecOptions& options() const { return options_; }
  int64_t morsel_rows() const { return options_.morsel_rows; }
  // Workers available for fan-out; 1 means sequential.
  int parallelism() const {
    if (external_pool_ != nullptr) return slot_parallelism_;
    return pool_ ? pool_->num_threads() : 1;
  }
  // Null when sequential.
  ThreadPool* pool() {
    return external_pool_ != nullptr ? external_pool_ : pool_.get();
  }

  // Failure domain (docs/robustness.md): a non-null scope makes morsel
  // sources stop planning new morsels once it trips — a pipeline unwinds
  // within one morsel of the signal. The caller sets it around a request
  // and must keep the scope alive while set; never owned.
  void set_cancel(const CancelScope* cancel) { cancel_ = cancel; }
  bool cancelled() const { return cancel_ != nullptr && cancel_->cancelled(); }
  // OK, or why execution must stop (kCancelled / kDeadlineExceeded).
  Status CheckCancel() const {
    return cancel_ != nullptr ? cancel_->Check() : Status::OK();
  }

 private:
  ExecOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  ThreadPool* external_pool_ = nullptr;  // non-owning slot mode
  int slot_parallelism_ = 1;
  const CancelScope* cancel_ = nullptr;
};

namespace internal {
class MorselPipeline;
class OrderedBatchMapper;
}  // namespace internal

// Batch iterator: Open() once, then NextBatch() until it returns false.
class Operator {
 public:
  virtual ~Operator();

  // Prepares for a (re-)scan and resets the row shim.
  void Open();

  // Fills `out` with the next non-empty batch and returns true, or returns
  // false at end of stream. The callee Resets `out`; batch boundaries are an
  // implementation detail — only the concatenated row stream is contractual,
  // and it is identical at any thread count.
  virtual bool NextBatch(RowBlock* out) = 0;

  virtual int num_columns() const = 0;

  // Row-at-a-time shim over NextBatch, kept for root consumers and tests.
  bool Next(Row* out);

 protected:
  virtual void OpenImpl() = 0;

 private:
  RowBlock shim_;
  int64_t shim_pos_ = 0;
  bool shim_eof_ = false;
};

// Leaf: morsel-driven scan over any TableSource (a materialized Database or
// a TupleGenerator), with an optional pushed-down filter evaluated inside
// the morsel workers — the executor's scan+filter unit of parallelism. The
// workers fill their morsel columnar (FillBlockRange), run the compiled
// predicate over the columns, and compact in place through the selection
// vector.
class SourceScanOp : public Operator {
 public:
  SourceScanOp(const TableSource* source, int relation, int num_columns,
               DnfPredicate filter = DnfPredicate::True(),
               ExecContext* ctx = nullptr);
  ~SourceScanOp() override;

  bool NextBatch(RowBlock* out) override;
  int num_columns() const override { return num_columns_; }

 protected:
  void OpenImpl() override;

 private:
  const TableSource* source_;
  int relation_;
  int num_columns_;
  kernels::BlockPredicate filter_;
  bool filter_is_true_;
  ExecContext* ctx_;
  std::unique_ptr<internal::MorselPipeline> morsels_;
};

// Leaf: scans an in-memory row-major table (morsel workers transpose their
// rank range into the block's columns).
class TableScanOp : public Operator {
 public:
  explicit TableScanOp(const Table* table, ExecContext* ctx = nullptr);
  ~TableScanOp() override;

  bool NextBatch(RowBlock* out) override;
  int num_columns() const override { return table_->num_columns(); }

 protected:
  void OpenImpl() override;

 private:
  const Table* table_;
  ExecContext* ctx_;
  std::unique_ptr<internal::MorselPipeline> morsels_;
};

// Leaf: scans an already-columnar RowBlock (the executor's intermediate
// results); morsel workers copy their rank range column by column.
class RowBlockScanOp : public Operator {
 public:
  explicit RowBlockScanOp(const RowBlock* block, ExecContext* ctx = nullptr);
  ~RowBlockScanOp() override;

  bool NextBatch(RowBlock* out) override;
  int num_columns() const override { return block_->num_columns(); }

 protected:
  void OpenImpl() override;

 private:
  const RowBlock* block_;
  ExecContext* ctx_;
  std::unique_ptr<internal::MorselPipeline> morsels_;
};

// Leaf: generates tuples on demand from a database summary (dynamic
// regeneration; no storage touched). Morsel workers generate disjoint rank
// ranges concurrently via FillBlockRange — per-column constant splats and
// PK iota runs.
class GeneratorScanOp : public Operator {
 public:
  GeneratorScanOp(const TupleGenerator* generator, int relation,
                  int num_columns, ExecContext* ctx = nullptr);
  ~GeneratorScanOp() override;

  bool NextBatch(RowBlock* out) override;
  int num_columns() const override { return num_columns_; }

 protected:
  void OpenImpl() override;

 private:
  const TupleGenerator* generator_;
  int relation_;
  int num_columns_;
  ExecContext* ctx_;
  std::unique_ptr<internal::MorselPipeline> morsels_;
};

// σ: keeps rows satisfying a DNF predicate. The predicate is compiled to
// column kernels once at construction; each batch is masked column-wise and
// gathered through the selection vector. The input block and the selection
// vector are owned by the operator and keep their capacity across
// NextBatch calls.
class FilterOp : public Operator {
 public:
  FilterOp(std::unique_ptr<Operator> child, DnfPredicate predicate)
      : child_(std::move(child)), predicate_(predicate) {}

  bool NextBatch(RowBlock* out) override;
  int num_columns() const override { return child_->num_columns(); }

 protected:
  void OpenImpl() override { child_->Open(); }

 private:
  std::unique_ptr<Operator> child_;
  kernels::BlockPredicate predicate_;
  RowBlock in_;
  SelVector sel_;
};

// π: emits a subset/permutation of the child's columns. Columnar layout
// makes this a column *move*: each projected column's buffer is swapped out
// of the owned input block (the output's previous buffer swaps back in, so
// both blocks reuse their capacity); only duplicated source columns copy.
class ProjectOp : public Operator {
 public:
  ProjectOp(std::unique_ptr<Operator> child, std::vector<int> columns)
      : child_(std::move(child)), columns_(std::move(columns)) {}

  bool NextBatch(RowBlock* out) override;
  int num_columns() const override {
    return static_cast<int>(columns_.size());
  }

 protected:
  void OpenImpl() override { child_->Open(); }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<int> columns_;
  RowBlock in_;
};

// ⋈: hash join; the build side is materialized at Open(). Output rows are
// probe columns followed by build columns. Handles duplicate keys on both
// sides. With a parallel context the build is hash-partitioned across the
// pool and probe batches are joined concurrently against the then-read-only
// table, emitted in probe order. Probe batches hash their whole key column
// in one kernel pass before touching the hash table.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(std::unique_ptr<Operator> probe, int probe_col,
             std::unique_ptr<Operator> build, int build_col,
             ExecContext* ctx = nullptr);
  // Build side given as an already-materialized columnar block (the
  // executor's intermediate layout): hashed in place instead of streaming
  // through an operator. `build_block` must outlive the op.
  HashJoinOp(std::unique_ptr<Operator> probe, int probe_col,
             const RowBlock* build_block, int build_col,
             ExecContext* ctx = nullptr);
  ~HashJoinOp() override;

  bool NextBatch(RowBlock* out) override;
  int num_columns() const override {
    return probe_->num_columns() + build_width_();
  }

 protected:
  void OpenImpl() override;

 private:
  // Open-addressing key -> row-span map with power-of-two capacity and
  // linear probing; len == 0 marks an empty slot (every present key spans
  // >= 1 row). The bucket comes from the *high* hash bits — the partition
  // index consumed the low bits — which keeps probe chains short.
  struct KeySlot {
    Value key = 0;
    uint32_t begin = 0;
    uint32_t len = 0;
  };
  struct KeyMap {
    std::vector<KeySlot> slots;
    uint32_t mask = 0;

    void Init(int64_t distinct_upper_bound);
    KeySlot* FindOrInsert(Value key, uint64_t hash);
    const KeySlot* Find(Value key, uint64_t hash) const {
      uint32_t i = static_cast<uint32_t>(hash >> 32) & mask;
      while (slots[i].len != 0) {
        if (slots[i].key == key) return &slots[i];
        i = (i + 1) & mask;
      }
      return nullptr;
    }
  };

  // Joins one probe batch against the (read-only) build table. Safe to call
  // concurrently from morsel workers.
  void JoinBatch(const RowBlock& in, RowBlock* out) const;

  int build_width_() const {
    return build_block_ != nullptr ? build_block_->num_columns()
                                   : build_->num_columns();
  }
  const RowBlock& build_rows() const {
    return build_block_ != nullptr ? *build_block_ : build_rows_;
  }

  std::unique_ptr<Operator> probe_;
  std::unique_ptr<Operator> build_;           // null in block-build mode
  const RowBlock* build_block_ = nullptr;     // null in operator-build mode
  int probe_col_;
  int build_col_;
  ExecContext* ctx_;
  // All build rows, columnar, in build-stream order (operator-build mode
  // drains the child here; block-build mode points straight at the block).
  RowBlock build_rows_;
  int64_t build_num_rows_ = 0;
  // CSR hash table: partition p maps key -> a span of partition_rows_[p]
  // holding that key's build row indices in build-stream order. A key's
  // rows live in exactly one partition; the flat per-partition row array
  // avoids a heap allocation per distinct key.
  std::vector<KeyMap> partitions_;
  std::vector<std::vector<uint32_t>> partition_rows_;
  std::unique_ptr<internal::OrderedBatchMapper> probe_mapper_;
  RowBlock probe_in_;
};

enum class AggregateKind { kCount, kSum, kMin, kMax };

// γ: grouped aggregation; fully materializes at Open(). Output row layout:
// group columns then one value per aggregate, in group-key order. With a
// parallel context, child batches are folded into per-worker partial states
// whose merge is commutative, so the (sorted) result is thread-count
// independent.
class HashAggregateOp : public Operator {
 public:
  struct Aggregate {
    AggregateKind kind;
    int column = -1;  // ignored for kCount
  };

  HashAggregateOp(std::unique_ptr<Operator> child, std::vector<int> group_by,
                  std::vector<Aggregate> aggregates,
                  ExecContext* ctx = nullptr)
      : child_(std::move(child)),
        group_by_(std::move(group_by)),
        aggregates_(std::move(aggregates)),
        ctx_(ctx) {}

  bool NextBatch(RowBlock* out) override;
  int num_columns() const override {
    return static_cast<int>(group_by_.size() + aggregates_.size());
  }

 protected:
  void OpenImpl() override;

 private:
  // One group's running aggregate values, ordered like aggregates_.
  using GroupMap = std::map<Row, std::vector<int64_t>>;
  void AccumulateBatch(const RowBlock& in, GroupMap* groups) const;

  std::unique_ptr<Operator> child_;
  std::vector<int> group_by_;
  std::vector<Aggregate> aggregates_;
  ExecContext* ctx_;
  RowBlock results_;
  int64_t next_result_ = 0;
};

// Stops after `limit` rows.
class LimitOp : public Operator {
 public:
  LimitOp(std::unique_ptr<Operator> child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  bool NextBatch(RowBlock* out) override;
  int num_columns() const override { return child_->num_columns(); }

 protected:
  void OpenImpl() override {
    child_->Open();
    emitted_ = 0;
  }

 private:
  std::unique_ptr<Operator> child_;
  uint64_t limit_;
  uint64_t emitted_ = 0;
};

// Drains `op` and returns the number of rows produced.
uint64_t CountRows(Operator* op);

}  // namespace hydra

#endif  // HYDRA_ENGINE_OPERATORS_H_
