#include "engine/table.h"

#include <mutex>
#include <unordered_set>

#include "common/logging.h"

namespace hydra {

void Table::AppendRow(const Row& row) {
  HYDRA_DCHECK(static_cast<int>(row.size()) == num_columns_);
  data_.insert(data_.end(), row.begin(), row.end());
}

void Table::AppendRaw(const Value* row) {
  data_.insert(data_.end(), row, row + num_columns_);
}

void Table::AppendBlock(const Value* rows, int64_t num_rows) {
  data_.insert(data_.end(), rows, rows + num_rows * num_columns_);
}

void Table::GetRow(uint64_t row, Row* out) const {
  out->assign(RowPtr(row), RowPtr(row) + num_columns_);
}

Database::Database(Schema schema) : schema_(std::move(schema)) {
  tables_.reserve(schema_.num_relations());
  for (int r = 0; r < schema_.num_relations(); ++r) {
    tables_.emplace_back(schema_.relation(r).num_attributes());
  }
}

uint64_t Database::TotalBytes() const {
  uint64_t total = 0;
  for (const Table& t : tables_) total += t.ByteSize();
  return total;
}

uint64_t Database::TotalRows() const {
  uint64_t total = 0;
  for (const Table& t : tables_) total += t.num_rows();
  return total;
}

uint64_t Database::RowCount(int relation) const {
  return tables_[relation].num_rows();
}

void TableSource::FillBlockRange(int relation, int64_t begin, int64_t end,
                                 RowBlock* out) const {
  ScanRange(relation, begin, end,
            [out](const Row& row) { out->AppendRowMajor(row.data(), 1); });
}

void Database::Scan(int relation,
                    const std::function<void(const Row&)>& fn) const {
  ScanRange(relation, 0, static_cast<int64_t>(tables_[relation].num_rows()),
            fn);
}

void Database::ScanRange(int relation, int64_t begin, int64_t end,
                         const std::function<void(const Row&)>& fn) const {
  const Table& t = tables_[relation];
  HYDRA_CHECK_MSG(begin >= 0 && begin <= end &&
                      end <= static_cast<int64_t>(t.num_rows()),
                  "scan range [" << begin << ", " << end
                                 << ") out of bounds for relation "
                                 << relation);
  Row row(t.num_columns());
  for (int64_t r = begin; r < end; ++r) {
    const Value* p = t.RowPtr(r);
    row.assign(p, p + t.num_columns());
    fn(row);
  }
}

void Database::FillBlockRange(int relation, int64_t begin, int64_t end,
                              RowBlock* out) const {
  const Table& t = tables_[relation];
  const int64_t rows = static_cast<int64_t>(t.num_rows());
  HYDRA_CHECK_MSG(begin >= 0 && begin <= end && end <= rows,
                  "scan range [" << begin << ", " << end
                                 << ") out of bounds for relation "
                                 << relation);
  // Serve from the columnar mirror: a per-call transpose would redo the
  // same work for every query that scans this relation. The mirror only
  // ever appends (tables are append-only), so refresh = transpose the tail.
  std::shared_lock<std::shared_mutex> read(columnar_->mu);
  if (static_cast<size_t>(relation) >= columnar_->blocks.size() ||
      columnar_->blocks[relation].num_rows() != rows) {
    read.unlock();
    {
      std::unique_lock<std::shared_mutex> write(columnar_->mu);
      if (columnar_->blocks.size() != tables_.size()) {
        columnar_->blocks.resize(tables_.size());
      }
      RowBlock& mirror = columnar_->blocks[relation];
      if (mirror.num_columns() != t.num_columns() ||
          mirror.num_rows() > rows) {
        mirror.Reset(t.num_columns());
      }
      if (mirror.num_rows() < rows) {
        mirror.Reserve(rows);
        mirror.AppendRowMajor(t.RowPtr(mirror.num_rows()),
                              rows - mirror.num_rows());
      }
    }
    read.lock();
  }
  out->AppendRange(columnar_->blocks[relation], begin, end - begin);
}

Status Database::CheckReferentialIntegrity() const {
  for (int r = 0; r < schema_.num_relations(); ++r) {
    const Relation& rel = schema_.relation(r);
    for (int fk : rel.ForeignKeyIndices()) {
      const int target = rel.attribute(fk).fk_target;
      const Relation& target_rel = schema_.relation(target);
      const int target_pk = target_rel.PrimaryKeyIndex();
      if (target_pk < 0) {
        return Status::FailedPrecondition("FK target " + target_rel.name() +
                                          " has no primary key");
      }
      std::unordered_set<Value> pks;
      const Table& tt = tables_[target];
      pks.reserve(tt.num_rows() * 2);
      for (uint64_t i = 0; i < tt.num_rows(); ++i) {
        pks.insert(tt.At(i, target_pk));
      }
      const Table& ft = tables_[r];
      for (uint64_t i = 0; i < ft.num_rows(); ++i) {
        if (pks.find(ft.At(i, fk)) == pks.end()) {
          return Status::FailedPrecondition(
              "dangling FK " + rel.name() + "." + rel.attribute(fk).name +
              " = " + std::to_string(ft.At(i, fk)) + " at row " +
              std::to_string(i));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace hydra
