#include "engine/table.h"

#include <unordered_set>

#include "common/logging.h"

namespace hydra {

void Table::AppendRow(const Row& row) {
  HYDRA_DCHECK(static_cast<int>(row.size()) == num_columns_);
  data_.insert(data_.end(), row.begin(), row.end());
}

void Table::AppendRaw(const Value* row) {
  data_.insert(data_.end(), row, row + num_columns_);
}

void Table::AppendBlock(const Value* rows, int64_t num_rows) {
  data_.insert(data_.end(), rows, rows + num_rows * num_columns_);
}

void Table::GetRow(uint64_t row, Row* out) const {
  out->assign(RowPtr(row), RowPtr(row) + num_columns_);
}

Database::Database(Schema schema) : schema_(std::move(schema)) {
  tables_.reserve(schema_.num_relations());
  for (int r = 0; r < schema_.num_relations(); ++r) {
    tables_.emplace_back(schema_.relation(r).num_attributes());
  }
}

uint64_t Database::TotalBytes() const {
  uint64_t total = 0;
  for (const Table& t : tables_) total += t.ByteSize();
  return total;
}

uint64_t Database::TotalRows() const {
  uint64_t total = 0;
  for (const Table& t : tables_) total += t.num_rows();
  return total;
}

uint64_t Database::RowCount(int relation) const {
  return tables_[relation].num_rows();
}

void Database::Scan(int relation,
                    const std::function<void(const Row&)>& fn) const {
  ScanRange(relation, 0, static_cast<int64_t>(tables_[relation].num_rows()),
            fn);
}

void Database::ScanRange(int relation, int64_t begin, int64_t end,
                         const std::function<void(const Row&)>& fn) const {
  const Table& t = tables_[relation];
  HYDRA_CHECK_MSG(begin >= 0 && begin <= end &&
                      end <= static_cast<int64_t>(t.num_rows()),
                  "scan range [" << begin << ", " << end
                                 << ") out of bounds for relation "
                                 << relation);
  Row row(t.num_columns());
  for (int64_t r = begin; r < end; ++r) {
    const Value* p = t.RowPtr(r);
    row.assign(p, p + t.num_columns());
    fn(row);
  }
}

Status Database::CheckReferentialIntegrity() const {
  for (int r = 0; r < schema_.num_relations(); ++r) {
    const Relation& rel = schema_.relation(r);
    for (int fk : rel.ForeignKeyIndices()) {
      const int target = rel.attribute(fk).fk_target;
      const Relation& target_rel = schema_.relation(target);
      const int target_pk = target_rel.PrimaryKeyIndex();
      if (target_pk < 0) {
        return Status::FailedPrecondition("FK target " + target_rel.name() +
                                          " has no primary key");
      }
      std::unordered_set<Value> pks;
      const Table& tt = tables_[target];
      pks.reserve(tt.num_rows() * 2);
      for (uint64_t i = 0; i < tt.num_rows(); ++i) {
        pks.insert(tt.At(i, target_pk));
      }
      const Table& ft = tables_[r];
      for (uint64_t i = 0; i < ft.num_rows(); ++i) {
        if (pks.find(ft.At(i, fk)) == pks.end()) {
          return Status::FailedPrecondition(
              "dangling FK " + rel.name() + "." + rel.attribute(fk).name +
              " = " + std::to_string(ft.At(i, fk)) + " at row " +
              std::to_string(i));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace hydra
