// Per-column kernels for the engine's hot loops: branch-free interval masks,
// mask combination, selection-vector extraction, gathers, batched join-key
// hashing, and constant/iota column fills.
//
// Every kernel has a scalar body written as a tight autovectorizable loop and
// an explicit SIMD body selected by a compile-time dispatch macro:
//
//   HYDRA_SIMD_LEVEL 0  portable scalar only
//   HYDRA_SIMD_LEVEL 1  SSE2   (x86-64 baseline: interval masks, mask ops)
//   HYDRA_SIMD_LEVEL 2  AVX2   (adds 4-wide 64-bit compares and vectorized
//                               splitmix64 key hashing; build with -mavx2)
//
// The level is picked from the compiler's target flags; SetSimdEnabled(false)
// forces the scalar bodies at runtime so tests and benches can A/B the two
// paths in one binary. Scalar and SIMD bodies compute bit-identical results —
// the dispatch is a pure performance choice, never a semantic one — which is
// what keeps engine output byte-identical across ISAs (docs/engine.md).
//
// BlockPredicate is the compiled form of a DnfPredicate over a columnar
// RowBlock: atoms become interval-mask kernels, conjuncts AND masks,
// disjuncts OR them, and the result leaves as a selection vector.

#ifndef HYDRA_ENGINE_KERNELS_H_
#define HYDRA_ENGINE_KERNELS_H_

#include <cstdint>
#include <vector>

#include "common/interval.h"
#include "engine/row_block.h"
#include "query/predicate.h"

#if defined(__AVX2__)
#define HYDRA_SIMD_LEVEL 2
#elif defined(__SSE2__) || defined(_M_X64)
#define HYDRA_SIMD_LEVEL 1
#else
#define HYDRA_SIMD_LEVEL 0
#endif

namespace hydra {
namespace kernels {

// The dispatch level this binary was compiled with ("scalar", "sse2",
// "avx2").
const char* SimdLevelName();

// Runtime override: false forces every kernel onto its scalar body. Global;
// intended for A/B benchmarking and cross-path identity tests, not for
// toggling while queries run.
void SetSimdEnabled(bool enabled);
bool SimdEnabled();

// out[i] = col[i] in [lo, hi), as 0/1 bytes.
void IntervalMask(const Value* col, int64_t n, Value lo, Value hi,
                  uint8_t* out);
// out[i] |= col[i] in [lo, hi) — accumulates the disjuncts of a
// multi-interval atom (e.g. IN lists).
void IntervalMaskOr(const Value* col, int64_t n, Value lo, Value hi,
                    uint8_t* out);

// a[i] &= b[i] / a[i] |= b[i] over 0/1 byte masks.
void MaskAnd(uint8_t* a, const uint8_t* b, int64_t n);
void MaskOr(uint8_t* a, const uint8_t* b, int64_t n);

// Appends base + the indices with mask[i] != 0 to *sel (not cleared),
// ascending. `base` shifts the emitted indices so a mask computed over a
// sub-range of a block selects into the full block's row space.
void MaskToSel(const uint8_t* mask, int64_t n, SelVector* sel,
               int32_t base = 0);

// dst[i] = src[sel[i]]. In-place compaction (dst == src) is allowed because
// selection vectors are ascending: sel[i] >= i, so reads stay ahead of
// writes.
void Gather(const Value* src, const int32_t* sel, int64_t n, Value* dst);

// The engine's fixed integer mix (splitmix64 finalizer) for join-key
// hashing and hash partitioning. Only distributions depend on it — results
// never do — but it must stay platform-independent so partition shapes are
// reproducible.
inline uint64_t MixKey(Value v) {
  uint64_t x = static_cast<uint64_t>(v);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// out[i] = MixKey(col[i]): one pass over the whole key column, so the mix is
// computed once per batch instead of once per probe inside the hash-table
// loop. AVX2 runs 4 lanes of the 64x64 multiplies via the mul_epu32
// cross-product emulation; below AVX2 the scalar body is already the fastest
// formulation.
void HashKeys(const Value* col, int64_t n, uint64_t* out);

// dst[0..n) = v.
void FillConst(Value* dst, int64_t n, Value v);
// dst[i] = start + i — primary keys are ranks, so generator fills emit PK
// columns as iota runs.
void FillIota(Value* dst, int64_t n, Value start);

// A DnfPredicate compiled to per-column kernel plans. Select() is const and
// thread-safe (scratch masks are thread_local), so one compiled predicate
// serves concurrent morsel workers.
class BlockPredicate {
 public:
  // Default: matches nothing (same as DnfPredicate(), which is FALSE).
  BlockPredicate() = default;
  explicit BlockPredicate(const DnfPredicate& dnf);

  bool is_true() const { return is_true_; }
  bool is_false() const { return !is_true_ && conjuncts_.empty(); }

  // Clears *sel and fills it with the indices of `block`'s passing rows,
  // ascending. Every atom's column index must be < block.num_columns().
  void Select(const RowBlock& block, SelVector* sel) const;

  // Select() restricted to rows [begin, end): masks are evaluated over the
  // sub-range only, and the emitted indices stay absolute (in [begin, end)),
  // so gathers against the full block's columns work unchanged. The passing
  // set equals Select() intersected with [begin, end) — the shared-scan fan
  // path filters its slice of a group chunk without copying it first.
  void SelectRange(const RowBlock& block, int64_t begin, int64_t end,
                   SelVector* sel) const;

 private:
  struct AtomPlan {
    int column = -1;
    std::vector<Interval> intervals;  // sorted, disjoint, non-empty
  };
  std::vector<std::vector<AtomPlan>> conjuncts_;
  bool is_true_ = false;
};

}  // namespace kernels
}  // namespace hydra

#endif  // HYDRA_ENGINE_KERNELS_H_
