#include "engine/operators.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace hydra {

bool TableScanOp::Next(Row* out) {
  if (next_row_ >= table_->num_rows()) return false;
  table_->GetRow(next_row_++, out);
  return true;
}

bool GeneratorScanOp::Next(Row* out) {
  if (next_pk_ >=
      static_cast<int64_t>(generator_->RowCount(relation_))) {
    return false;
  }
  generator_->GetTuple(relation_, next_pk_++, out);
  return true;
}

bool FilterOp::Next(Row* out) {
  while (child_->Next(out)) {
    if (predicate_.Eval(*out)) return true;
  }
  return false;
}

bool ProjectOp::Next(Row* out) {
  if (!child_->Next(&buffer_)) return false;
  out->resize(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    (*out)[i] = buffer_[columns_[i]];
  }
  return true;
}

void HashJoinOp::Open() {
  build_->Open();
  hash_.clear();
  Row row;
  while (build_->Next(&row)) {
    hash_[row[build_col_]].push_back(row);
  }
  probe_->Open();
  matches_ = nullptr;
  match_index_ = 0;
}

bool HashJoinOp::Next(Row* out) {
  while (true) {
    if (matches_ != nullptr && match_index_ < matches_->size()) {
      const Row& build_row = (*matches_)[match_index_++];
      out->resize(probe_row_.size() + build_row.size());
      std::copy(probe_row_.begin(), probe_row_.end(), out->begin());
      std::copy(build_row.begin(), build_row.end(),
                out->begin() + probe_row_.size());
      return true;
    }
    if (!probe_->Next(&probe_row_)) return false;
    const auto it = hash_.find(probe_row_[probe_col_]);
    matches_ = it == hash_.end() ? nullptr : &it->second;
    match_index_ = 0;
  }
}

void HashAggregateOp::Open() {
  child_->Open();
  results_.clear();
  next_result_ = 0;

  // Group state: per aggregate, the running value.
  std::map<Row, std::vector<int64_t>> groups;
  Row row;
  while (child_->Next(&row)) {
    Row key;
    key.reserve(group_by_.size());
    for (int c : group_by_) key.push_back(row[c]);
    auto [it, inserted] = groups.try_emplace(std::move(key));
    if (inserted) {
      it->second.reserve(aggregates_.size());
      for (const Aggregate& agg : aggregates_) {
        switch (agg.kind) {
          case AggregateKind::kCount:
          case AggregateKind::kSum:
            it->second.push_back(0);
            break;
          case AggregateKind::kMin:
            it->second.push_back(INT64_MAX);
            break;
          case AggregateKind::kMax:
            it->second.push_back(INT64_MIN);
            break;
        }
      }
    }
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      const Aggregate& agg = aggregates_[a];
      int64_t& state = it->second[a];
      switch (agg.kind) {
        case AggregateKind::kCount:
          ++state;
          break;
        case AggregateKind::kSum:
          state += row[agg.column];
          break;
        case AggregateKind::kMin:
          state = std::min(state, row[agg.column]);
          break;
        case AggregateKind::kMax:
          state = std::max(state, row[agg.column]);
          break;
      }
    }
  }
  results_.reserve(groups.size());
  for (auto& [key, values] : groups) {
    Row result = key;
    result.insert(result.end(), values.begin(), values.end());
    results_.push_back(std::move(result));
  }
}

bool HashAggregateOp::Next(Row* out) {
  if (next_result_ >= results_.size()) return false;
  *out = results_[next_result_++];
  return true;
}

bool LimitOp::Next(Row* out) {
  if (emitted_ >= limit_) return false;
  if (!child_->Next(out)) return false;
  ++emitted_;
  return true;
}

uint64_t CountRows(Operator* op) {
  op->Open();
  Row row;
  uint64_t count = 0;
  while (op->Next(&row)) ++count;
  return count;
}

}  // namespace hydra
