#include "engine/operators.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>

#include "common/logging.h"

namespace hydra {

namespace {

// Runs fn(i) for i in [0, count) on the context's pool and blocks until all
// complete. Completion is tracked by a private WaitGroup (not via
// ThreadPool::Wait) so unrelated work in flight on the shared pool is never
// waited on.
void RunTasks(ExecContext* ctx, int count,
              const std::function<void(int)>& fn) {
  ThreadPool* pool = ctx == nullptr ? nullptr : ctx->pool();
  if (pool == nullptr) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  WaitGroup wg;
  wg.Add(count);
  for (int i = 0; i < count; ++i) {
    pool->Submit([&, i] {
      fn(i);
      wg.Done();
    });
  }
  wg.Wait();
}

}  // namespace

namespace internal {

// Plans [0, total_rows) into morsel_rows-sized rank ranges and emits one
// filled RowBlock per non-empty morsel, in rank order. With a parallel
// context up to 2*parallelism morsels are filled concurrently ahead of the
// consumer; emission order is fixed by morsel index, never by completion
// order, so the concatenated row stream is identical at any thread count.
class MorselPipeline {
 public:
  // fill(begin, end, out) produces rank range [begin, end) into `out`
  // (already Reset to the right width). It runs on pool workers and must
  // only read state that is immutable while the pipeline is live.
  using Fill = std::function<void(int64_t, int64_t, RowBlock*)>;

  MorselPipeline(ExecContext* ctx, int64_t total_rows, int num_columns,
                 Fill fill)
      : ctx_(ctx),
        total_rows_(total_rows),
        num_columns_(num_columns),
        fill_(std::move(fill)) {
    morsel_rows_ = std::max<int64_t>(
        1, ctx_ == nullptr ? ExecOptions{}.morsel_rows : ctx_->morsel_rows());
    num_morsels_ = (total_rows_ + morsel_rows_ - 1) / morsel_rows_;
    if (ctx_ != nullptr && ctx_->parallelism() > 1 && num_morsels_ > 1) {
      slots_.resize(static_cast<size_t>(
          std::min<int64_t>(num_morsels_, 2 * ctx_->parallelism())));
      for (size_t i = 0; i < slots_.size(); ++i) SubmitNext();
    }
  }

  // Waits out in-flight morsels: tasks capture `this` and the fill state,
  // so an early-terminated scan (e.g. under a LimitOp) must drain.
  ~MorselPipeline() { wg_.Wait(); }

  bool Next(RowBlock* out) {
    if (slots_.empty()) {  // sequential: fill straight into the caller
      while (next_emit_ < num_morsels_) {
        if (Cancelled()) return false;
        const int64_t begin = next_emit_ * morsel_rows_;
        const int64_t end = std::min(total_rows_, begin + morsel_rows_);
        ++next_emit_;
        out->Reset(num_columns_);
        fill_(begin, end, out);
        if (!out->empty()) return true;
      }
      return false;
    }
    while (next_emit_ < num_morsels_) {
      // Cancelled: stop emitting. In-flight workers see the same flag,
      // leave their blocks empty, and the destructor drains them — the
      // truncated stream is reported by the caller's CheckCancel, never
      // consumed as a complete result.
      if (Cancelled()) return false;
      Slot& slot = slots_[next_emit_ % slots_.size()];
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&slot] { return slot.done; });
        out->Reset(num_columns_);
        std::swap(*out, slot.block);
        slot.done = false;
      }
      ++next_emit_;
      SubmitNext();  // refill the just-freed slot
      if (!out->empty()) return true;
    }
    return false;
  }

 private:
  struct Slot {
    RowBlock block;
    bool done = false;
  };

  bool Cancelled() const { return ctx_ != nullptr && ctx_->cancelled(); }

  void SubmitNext() {
    if (next_submit_ >= num_morsels_) return;
    const int64_t m = next_submit_++;
    Slot* slot = &slots_[m % slots_.size()];
    wg_.Add();
    ctx_->pool()->Submit([this, m, slot] {
      const int64_t begin = m * morsel_rows_;
      const int64_t end = std::min(total_rows_, begin + morsel_rows_);
      slot->block.Reset(num_columns_);
      if (!Cancelled()) fill_(begin, end, &slot->block);
      {
        std::lock_guard<std::mutex> lock(mu_);
        slot->done = true;
        cv_.notify_all();
      }
      wg_.Done();
    });
  }

  ExecContext* ctx_;
  int64_t total_rows_;
  int num_columns_;
  Fill fill_;
  int64_t morsel_rows_ = 1;
  int64_t num_morsels_ = 0;
  int64_t next_emit_ = 0;
  int64_t next_submit_ = 0;
  std::vector<Slot> slots_;  // empty = sequential mode
  std::mutex mu_;            // guards the slots' done flags
  std::condition_variable cv_;
  WaitGroup wg_;
};

// Pulls batches from `child` on the consumer thread, maps up to 2*threads of
// them concurrently through `fn` on the pool, and yields the mapped outputs
// in input order — the parallel probe machinery of HashJoinOp.
class OrderedBatchMapper {
 public:
  using MapFn = std::function<void(const RowBlock&, RowBlock*)>;

  OrderedBatchMapper(ExecContext* ctx, Operator* child, MapFn fn)
      : ctx_(ctx),
        child_(child),
        fn_(std::move(fn)),
        slots_(2 * ctx->parallelism()) {}

  ~OrderedBatchMapper() { wg_.Wait(); }

  bool Next(RowBlock* out) {
    for (;;) {
      // Keep the window full: pull child batches into free slots and hand
      // them to the pool. Pulling happens only on this (consumer) thread.
      while (!child_eof_ &&
             next_fill_ - next_emit_ < static_cast<int64_t>(slots_.size())) {
        Slot* slot = &slots_[next_fill_ % slots_.size()];
        if (!child_->NextBatch(&slot->in)) {
          child_eof_ = true;
          break;
        }
        ++next_fill_;
        wg_.Add();
        ctx_->pool()->Submit([this, slot] {
          fn_(slot->in, &slot->out);
          {
            std::lock_guard<std::mutex> lock(mu_);
            slot->done = true;
            cv_.notify_all();
          }
          wg_.Done();
        });
      }
      if (next_emit_ == next_fill_) return false;  // drained at child EOF
      Slot& slot = slots_[next_emit_ % slots_.size()];
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&slot] { return slot.done; });
        std::swap(*out, slot.out);
        slot.done = false;
      }
      ++next_emit_;
      if (!out->empty()) return true;
    }
  }

 private:
  struct Slot {
    RowBlock in;
    RowBlock out;
    bool done = false;
  };

  ExecContext* ctx_;
  Operator* child_;
  MapFn fn_;
  std::vector<Slot> slots_;
  bool child_eof_ = false;
  int64_t next_fill_ = 0;
  int64_t next_emit_ = 0;
  std::mutex mu_;  // guards the slots' done flags
  std::condition_variable cv_;
  WaitGroup wg_;
};

}  // namespace internal

// --- ExecContext ---------------------------------------------------------

ExecContext::ExecContext(ExecOptions options) : options_(options) {
  if (options_.morsel_rows < 1) options_.morsel_rows = 1;
  const int threads = options_.ResolvedThreads();
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

ExecContext::ExecContext(ExecOptions options, ThreadPool* shared_pool,
                         int slot_parallelism)
    : options_(options) {
  if (options_.morsel_rows < 1) options_.morsel_rows = 1;
  if (shared_pool != nullptr && slot_parallelism > 1 &&
      shared_pool->num_threads() > 1) {
    external_pool_ = shared_pool;
    slot_parallelism_ =
        std::min(slot_parallelism, shared_pool->num_threads());
  }
}

// --- Operator base -------------------------------------------------------

Operator::~Operator() = default;

void Operator::Open() {
  shim_.Reset(0);
  shim_pos_ = 0;
  shim_eof_ = false;
  OpenImpl();
}

bool Operator::Next(Row* out) {
  while (shim_pos_ >= shim_.num_rows()) {
    if (shim_eof_ || !NextBatch(&shim_)) {
      shim_eof_ = true;
      return false;
    }
    shim_pos_ = 0;
  }
  out->resize(shim_.num_columns());
  shim_.CopyRowTo(shim_pos_++, out->data());
  return true;
}

// --- Leaves --------------------------------------------------------------

SourceScanOp::SourceScanOp(const TableSource* source, int relation,
                           int num_columns, DnfPredicate filter,
                           ExecContext* ctx)
    : source_(source),
      relation_(relation),
      num_columns_(num_columns),
      filter_(filter),
      filter_is_true_(filter_.is_true()),
      ctx_(ctx) {}

SourceScanOp::~SourceScanOp() = default;

void SourceScanOp::OpenImpl() {
  morsels_ = std::make_unique<internal::MorselPipeline>(
      ctx_, static_cast<int64_t>(source_->RowCount(relation_)), num_columns_,
      [this](int64_t begin, int64_t end, RowBlock* out) {
        source_->FillBlockRange(relation_, begin, end, out);
        if (filter_is_true_) return;
        // Mask the columns, then compact each one in place through the
        // selection vector (ascending, so reads stay ahead of writes).
        thread_local SelVector sel;
        filter_.Select(*out, &sel);
        const int64_t kept = static_cast<int64_t>(sel.size());
        if (kept == out->num_rows()) return;
        for (int c = 0; c < out->num_columns(); ++c) {
          Value* col = out->MutableColumn(c);
          kernels::Gather(col, sel.data(), kept, col);
        }
        out->Truncate(kept);
      });
}

bool SourceScanOp::NextBatch(RowBlock* out) { return morsels_->Next(out); }

TableScanOp::TableScanOp(const Table* table, ExecContext* ctx)
    : table_(table), ctx_(ctx) {}

TableScanOp::~TableScanOp() = default;

void TableScanOp::OpenImpl() {
  morsels_ = std::make_unique<internal::MorselPipeline>(
      ctx_, static_cast<int64_t>(table_->num_rows()), table_->num_columns(),
      [this](int64_t begin, int64_t end, RowBlock* out) {
        out->AppendRowMajor(table_->RowPtr(begin), end - begin);
      });
}

bool TableScanOp::NextBatch(RowBlock* out) { return morsels_->Next(out); }

RowBlockScanOp::RowBlockScanOp(const RowBlock* block, ExecContext* ctx)
    : block_(block), ctx_(ctx) {}

RowBlockScanOp::~RowBlockScanOp() = default;

void RowBlockScanOp::OpenImpl() {
  morsels_ = std::make_unique<internal::MorselPipeline>(
      ctx_, block_->num_rows(), block_->num_columns(),
      [this](int64_t begin, int64_t end, RowBlock* out) {
        out->AppendRange(*block_, begin, end - begin);
      });
}

bool RowBlockScanOp::NextBatch(RowBlock* out) { return morsels_->Next(out); }

GeneratorScanOp::GeneratorScanOp(const TupleGenerator* generator, int relation,
                                 int num_columns, ExecContext* ctx)
    : generator_(generator),
      relation_(relation),
      num_columns_(num_columns),
      ctx_(ctx) {}

GeneratorScanOp::~GeneratorScanOp() = default;

void GeneratorScanOp::OpenImpl() {
  morsels_ = std::make_unique<internal::MorselPipeline>(
      ctx_, static_cast<int64_t>(generator_->RowCount(relation_)),
      num_columns_, [this](int64_t begin, int64_t end, RowBlock* out) {
        generator_->FillBlockRange(relation_, begin, end, out);
      });
}

bool GeneratorScanOp::NextBatch(RowBlock* out) { return morsels_->Next(out); }

// --- Filter / Project / Limit --------------------------------------------

bool FilterOp::NextBatch(RowBlock* out) {
  out->Reset(child_->num_columns());
  while (child_->NextBatch(&in_)) {
    predicate_.Select(in_, &sel_);
    const int64_t kept = static_cast<int64_t>(sel_.size());
    if (kept == 0) continue;
    out->ResizeUninitialized(kept);
    for (int c = 0; c < in_.num_columns(); ++c) {
      kernels::Gather(in_.Column(c), sel_.data(), kept, out->MutableColumn(c));
    }
    return true;
  }
  return false;
}

bool ProjectOp::NextBatch(RowBlock* out) {
  const int num_cols = static_cast<int>(columns_.size());
  out->Reset(num_cols);
  if (!child_->NextBatch(&in_)) return false;
  const int64_t rows = in_.num_rows();
  // Column moves: swap each projected buffer out of the owned input block;
  // the output's previous buffer swaps back in, so both blocks keep their
  // capacity. A source column projected twice copies on re-use.
  std::vector<int> moved_to(in_.num_columns(), -1);
  for (int c = 0; c < num_cols; ++c) {
    const int src = columns_[c];
    if (moved_to[src] < 0) {
      std::swap(out->MutableColumnBuffer(c), in_.MutableColumnBuffer(src));
      moved_to[src] = c;
    } else {
      const ValueBuffer& first = out->MutableColumnBuffer(moved_to[src]);
      out->MutableColumnBuffer(c).assign(first.begin(), first.end());
    }
  }
  out->SetNumRows(rows);
  return true;
}

bool LimitOp::NextBatch(RowBlock* out) {
  if (emitted_ >= limit_) return false;
  if (!child_->NextBatch(out)) return false;
  const uint64_t remaining = limit_ - emitted_;
  if (static_cast<uint64_t>(out->num_rows()) > remaining) {
    out->Truncate(static_cast<int64_t>(remaining));
  }
  emitted_ += out->num_rows();
  return true;
}

// --- HashJoinOp ----------------------------------------------------------

void HashJoinOp::KeyMap::Init(int64_t rows) {
  uint64_t cap = 8;
  while (cap < static_cast<uint64_t>(rows) * 2) cap <<= 1;
  slots.assign(cap, {});
  mask = static_cast<uint32_t>(cap - 1);
}

HashJoinOp::KeySlot* HashJoinOp::KeyMap::FindOrInsert(Value key,
                                                      uint64_t hash) {
  uint32_t i = static_cast<uint32_t>(hash >> 32) & mask;
  while (slots[i].len != 0) {
    if (slots[i].key == key) return &slots[i];
    i = (i + 1) & mask;
  }
  slots[i].key = key;
  return &slots[i];
}

HashJoinOp::HashJoinOp(std::unique_ptr<Operator> probe, int probe_col,
                       std::unique_ptr<Operator> build, int build_col,
                       ExecContext* ctx)
    : probe_(std::move(probe)),
      build_(std::move(build)),
      probe_col_(probe_col),
      build_col_(build_col),
      ctx_(ctx) {}

HashJoinOp::HashJoinOp(std::unique_ptr<Operator> probe, int probe_col,
                       const RowBlock* build_block, int build_col,
                       ExecContext* ctx)
    : probe_(std::move(probe)),
      build_block_(build_block),
      probe_col_(probe_col),
      build_col_(build_col),
      ctx_(ctx) {}

HashJoinOp::~HashJoinOp() = default;

void HashJoinOp::OpenImpl() {
  probe_mapper_.reset();
  if (build_ != nullptr) {
    build_->Open();
    build_rows_.Reset(build_->num_columns());
    RowBlock b;
    while (build_->NextBatch(&b)) build_rows_.AppendBlock(b);
  }
  const RowBlock& built = build_rows();
  build_num_rows_ = built.num_rows();
  const int64_t n = build_num_rows_;
  HYDRA_CHECK_MSG(n < INT64_C(0xffffffff),
                  "build side too large for uint32 row ids");
  // One kernel pass hashes the whole build key column; partition index and
  // bucket index both come from the precomputed hash (low bits pick the
  // partition, high bits the bucket — see KeyMap).
  const Value* keys = built.Column(build_col_);
  std::vector<uint64_t> hashes(n);
  kernels::HashKeys(keys, n, hashes.data());

  // Hash-partitioned CSR build. Each partition runs a count pass (span
  // lengths per key), assigns span *end* offsets, then a reverse-order fill
  // pass that places row ids back to front — after which every span's begin
  // has walked down to its start and the ids sit in build-stream order.
  // Two passes over a flat open-addressing map cost less than a node
  // allocation per distinct key, and the flat layout probes cache-friendly.
  const bool parallel =
      ctx_ != nullptr && ctx_->parallelism() > 1 && n >= 1024;
  const int num_parts =
      parallel ? std::min(ctx_->parallelism(), 64) : 1;
  partitions_.assign(num_parts, {});
  partition_rows_.assign(num_parts, {});
  // Builds partition `p` from forward/reverse walks of its row ids (both in
  // build-stream order / reversed build-stream order respectively). The
  // walkers are generic callables so every per-row call inlines — a
  // std::function here costs an indirect call per build row per pass.
  // Pass 1 records each row's slot so the fill pass never re-probes.
  std::vector<uint32_t> slot_of_row(static_cast<size_t>(n));
  const auto build_partition =
      [&](int p, int64_t row_count, const auto& forward, const auto& reverse) {
        KeyMap& part = partitions_[p];
        part.Init(row_count);
        KeySlot* const base = part.slots.data();
        forward([&](uint32_t r) {
          KeySlot* slot = part.FindOrInsert(keys[r], hashes[r]);
          ++slot->len;
          slot_of_row[r] = static_cast<uint32_t>(slot - base);
        });
        uint32_t offset = 0;
        for (KeySlot& slot : part.slots) {
          if (slot.len == 0) continue;
          offset += slot.len;
          slot.begin = offset;  // one past the span end; fill walks it down
        }
        auto& rows = partition_rows_[p];
        rows.resize(offset);
        reverse([&](uint32_t r) {
          rows[--base[slot_of_row[r]].begin] = r;
        });
      };
  if (num_parts == 1) {
    build_partition(
        0, n,
        [n](const auto& fn) {
          for (int64_t r = 0; r < n; ++r) fn(static_cast<uint32_t>(r));
        },
        [n](const auto& fn) {
          for (int64_t r = n - 1; r >= 0; --r) fn(static_cast<uint32_t>(r));
        });
  } else {
    // buckets[chunk][partition] -> row ids, so total work stays O(n):
    // pass 1 has each chunk bucket its own rows by partition; pass 2 has
    // each partition consume its buckets in chunk order, which is exactly
    // build-stream order.
    const int num_chunks = num_parts;
    std::vector<std::vector<std::vector<uint32_t>>> buckets(
        num_chunks, std::vector<std::vector<uint32_t>>(num_parts));
    const int64_t chunk_rows = (n + num_chunks - 1) / num_chunks;
    RunTasks(ctx_, num_chunks, [&](int c) {
      auto& mine = buckets[c];
      const int64_t begin = c * chunk_rows;
      const int64_t end = std::min(n, begin + chunk_rows);
      for (int64_t r = begin; r < end; ++r) {
        mine[hashes[r] % static_cast<uint64_t>(num_parts)].push_back(
            static_cast<uint32_t>(r));
      }
    });
    RunTasks(ctx_, num_parts, [&](int p) {
      int64_t row_count = 0;
      for (int c = 0; c < num_chunks; ++c) {
        row_count += static_cast<int64_t>(buckets[c][p].size());
      }
      build_partition(
          p, row_count,
          [&buckets, num_chunks, p](const auto& fn) {
            for (int c = 0; c < num_chunks; ++c) {
              for (const uint32_t r : buckets[c][p]) fn(r);
            }
          },
          [&buckets, num_chunks, p](const auto& fn) {
            for (int c = num_chunks - 1; c >= 0; --c) {
              const auto& ids = buckets[c][p];
              for (size_t i = ids.size(); i > 0; --i) fn(ids[i - 1]);
            }
          });
    });
  }

  probe_->Open();
  if (ctx_ != nullptr && ctx_->parallelism() > 1) {
    // The partitions are read-only from here on: probe batches may be
    // joined concurrently and are emitted in probe order.
    probe_mapper_ = std::make_unique<internal::OrderedBatchMapper>(
        ctx_, probe_.get(),
        [this](const RowBlock& in, RowBlock* out) { JoinBatch(in, out); });
  }
}

void HashJoinOp::JoinBatch(const RowBlock& in, RowBlock* out) const {
  out->Reset(num_columns());
  const int probe_cols = in.num_columns();
  const int build_cols = build_width_();
  const int num_parts = static_cast<int>(partitions_.size());
  const int64_t probe_n = in.num_rows();
  const Value* keys = in.Column(probe_col_);
  // The whole probe key column is hashed in one kernel pass per batch; the
  // per-row loop only partitions and probes. thread_local scratch: probe
  // batches are joined concurrently by the OrderedBatchMapper's workers.
  thread_local std::vector<uint64_t> hashes;
  hashes.resize(static_cast<size_t>(probe_n));
  kernels::HashKeys(keys, probe_n, hashes.data());
  // Pass 1: resolve each probe row's span so the output can be sized in
  // one allocation (per-output-row growth dominated the join otherwise).
  struct Match {
    int64_t probe_row;
    const uint32_t* row_ids;
    uint32_t len;
  };
  thread_local std::vector<Match> matches;
  matches.clear();
  matches.reserve(static_cast<size_t>(probe_n));
  int64_t total_rows = 0;
  // The slot array exceeds cache for large build sides, so each probe's
  // first bucket touch is a miss; prefetching a fixed distance ahead hides
  // it behind the current row's work.
  constexpr int64_t kPrefetchAhead = 16;
  for (int64_t r = 0; r < probe_n; ++r) {
#if defined(__GNUC__) || defined(__clang__)
    if (r + kPrefetchAhead < probe_n) {
      const uint64_t ha = hashes[r + kPrefetchAhead];
      const KeyMap& pa =
          partitions_[num_parts == 1
                          ? 0
                          : static_cast<int>(
                                ha % static_cast<uint64_t>(num_parts))];
      __builtin_prefetch(&pa.slots[static_cast<uint32_t>(ha >> 32) & pa.mask]);
    }
#endif
    const uint64_t h = hashes[r];
    const int p = num_parts == 1
                      ? 0
                      : static_cast<int>(h % static_cast<uint64_t>(num_parts));
    const KeySlot* slot = partitions_[p].Find(keys[r], h);
    if (slot == nullptr) continue;
    matches.push_back(
        {r, partition_rows_[p].data() + slot->begin, slot->len});
    total_rows += slot->len;
  }
  // Flatten the match spans into per-output-row source indices once, so
  // the per-column fill is a straight-line gather rather than a nested
  // match-span walk repeated for every column.
  thread_local std::vector<int32_t> probe_idx;
  thread_local std::vector<uint32_t> build_idx;
  probe_idx.resize(static_cast<size_t>(total_rows));
  build_idx.resize(static_cast<size_t>(total_rows));
  int64_t pos = 0;
  for (const Match& m : matches) {
    for (uint32_t i = 0; i < m.len; ++i) {
      probe_idx[pos] = static_cast<int32_t>(m.probe_row);
      build_idx[pos] = m.row_ids[i];
      ++pos;
    }
  }
  // Pass 2: fill column by column — probe values splat across their match
  // runs, build values gather through the span row ids.
  out->ResizeUninitialized(total_rows);
  for (int c = 0; c < probe_cols; ++c) {
    kernels::Gather(in.Column(c), probe_idx.data(), total_rows,
                    out->MutableColumn(c));
  }
  const RowBlock& built = build_rows();
  for (int c = 0; c < build_cols; ++c) {
    const Value* src = built.Column(c);
    Value* dst = out->MutableColumn(probe_cols + c);
    for (int64_t i = 0; i < total_rows; ++i) dst[i] = src[build_idx[i]];
  }
}

bool HashJoinOp::NextBatch(RowBlock* out) {
  if (probe_mapper_ != nullptr) return probe_mapper_->Next(out);
  while (probe_->NextBatch(&probe_in_)) {
    JoinBatch(probe_in_, out);
    if (!out->empty()) return true;
  }
  return false;
}

// --- HashAggregateOp -----------------------------------------------------

void HashAggregateOp::AccumulateBatch(const RowBlock& in,
                                      GroupMap* groups) const {
  // Hoist the column base pointers; the per-row loop then indexes straight
  // into the contiguous buffers.
  thread_local std::vector<const Value*> group_cols;
  thread_local std::vector<const Value*> agg_cols;
  group_cols.clear();
  for (int c : group_by_) group_cols.push_back(in.Column(c));
  agg_cols.clear();
  for (const Aggregate& agg : aggregates_) {
    agg_cols.push_back(agg.column >= 0 ? in.Column(agg.column) : nullptr);
  }
  Row key;
  for (int64_t r = 0; r < in.num_rows(); ++r) {
    key.clear();
    for (const Value* col : group_cols) key.push_back(col[r]);
    auto [it, inserted] = groups->try_emplace(key);
    if (inserted) {
      it->second.reserve(aggregates_.size());
      for (const Aggregate& agg : aggregates_) {
        switch (agg.kind) {
          case AggregateKind::kCount:
          case AggregateKind::kSum:
            it->second.push_back(0);
            break;
          case AggregateKind::kMin:
            it->second.push_back(INT64_MAX);
            break;
          case AggregateKind::kMax:
            it->second.push_back(INT64_MIN);
            break;
        }
      }
    }
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      int64_t& state = it->second[a];
      switch (aggregates_[a].kind) {
        case AggregateKind::kCount:
          ++state;
          break;
        case AggregateKind::kSum:
          state += agg_cols[a][r];
          break;
        case AggregateKind::kMin:
          state = std::min(state, agg_cols[a][r]);
          break;
        case AggregateKind::kMax:
          state = std::max(state, agg_cols[a][r]);
          break;
      }
    }
  }
}

void HashAggregateOp::OpenImpl() {
  child_->Open();
  next_result_ = 0;

  GroupMap merged;
  const int num_workers = ctx_ == nullptr ? 1 : ctx_->parallelism();
  if (num_workers <= 1) {
    RowBlock in;
    while (child_->NextBatch(&in)) AccumulateBatch(in, &merged);
  } else {
    // Child batches fold into per-worker partial states; dispatch is
    // bounded to 2 batches per worker. count/sum/min/max over int64 are
    // commutative and associative, so neither the batch-to-slot assignment
    // nor execution order can change the merged result.
    struct Partial {
      std::mutex mu;
      GroupMap groups;
    };
    std::vector<std::unique_ptr<Partial>> partials;
    partials.reserve(num_workers);
    for (int k = 0; k < num_workers; ++k) {
      partials.push_back(std::make_unique<Partial>());
    }
    WaitGroup wg;
    const int window = 2 * num_workers;
    int64_t batch_index = 0;
    RowBlock in;
    while (child_->NextBatch(&in)) {
      auto block = std::make_shared<RowBlock>(std::move(in));
      Partial* slot = partials[batch_index++ % num_workers].get();
      wg.WaitUntilBelow(window);
      wg.Add();
      ctx_->pool()->Submit([this, block, slot, &wg] {
        {
          std::lock_guard<std::mutex> part_lock(slot->mu);
          AccumulateBatch(*block, &slot->groups);
        }
        wg.Done();
      });
    }
    wg.Wait();
    for (auto& partial : partials) {
      for (auto& [key, values] : partial->groups) {
        auto [it, inserted] = merged.try_emplace(key, std::move(values));
        if (inserted) continue;
        for (size_t a = 0; a < aggregates_.size(); ++a) {
          switch (aggregates_[a].kind) {
            case AggregateKind::kCount:
            case AggregateKind::kSum:
              it->second[a] += values[a];
              break;
            case AggregateKind::kMin:
              it->second[a] = std::min(it->second[a], values[a]);
              break;
            case AggregateKind::kMax:
              it->second[a] = std::max(it->second[a], values[a]);
              break;
          }
        }
      }
    }
  }

  results_.Reset(num_columns());
  results_.ResizeUninitialized(static_cast<int64_t>(merged.size()));
  const int num_groups = static_cast<int>(group_by_.size());
  int64_t r = 0;
  for (const auto& [key, values] : merged) {
    for (int c = 0; c < num_groups; ++c) {
      results_.MutableColumn(c)[r] = key[c];
    }
    for (size_t a = 0; a < values.size(); ++a) {
      results_.MutableColumn(num_groups + static_cast<int>(a))[r] = values[a];
    }
    ++r;
  }
}

bool HashAggregateOp::NextBatch(RowBlock* out) {
  const int64_t total = results_.num_rows();
  if (next_result_ >= total) return false;
  const int64_t batch_rows = std::max<int64_t>(
      1, ctx_ == nullptr ? ExecOptions{}.morsel_rows : ctx_->morsel_rows());
  const int64_t chunk = std::min(total - next_result_, batch_rows);
  out->Reset(num_columns());
  out->AppendRange(results_, next_result_, chunk);
  next_result_ += chunk;
  return true;
}

// --- CountRows -----------------------------------------------------------

uint64_t CountRows(Operator* op) {
  op->Open();
  RowBlock block;
  uint64_t count = 0;
  while (op->NextBatch(&block)) count += block.num_rows();
  return count;
}

}  // namespace hydra
