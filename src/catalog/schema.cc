#include "catalog/schema.h"

#include <algorithm>

#include "common/logging.h"

namespace hydra {

int Relation::AddDataAttribute(const std::string& name, Interval domain) {
  HYDRA_CHECK_MSG(!domain.empty(), "empty domain for " << name_ << "." << name);
  Attribute a;
  a.name = name;
  a.kind = AttributeKind::kData;
  a.domain = domain;
  attributes_.push_back(a);
  const int idx = static_cast<int>(attributes_.size()) - 1;
  HYDRA_CHECK_MSG(attr_index_.emplace(name, idx).second,
                  "duplicate attribute " << name_ << "." << name);
  return idx;
}

int Relation::AddPrimaryKey(const std::string& name) {
  HYDRA_CHECK_MSG(PrimaryKeyIndex() < 0, "relation " << name_
                                                     << " already has a PK");
  Attribute a;
  a.name = name;
  a.kind = AttributeKind::kPrimaryKey;
  a.domain = Interval(0, static_cast<int64_t>(row_count_) > 0
                             ? static_cast<int64_t>(row_count_)
                             : 1);
  attributes_.push_back(a);
  const int idx = static_cast<int>(attributes_.size()) - 1;
  HYDRA_CHECK_MSG(attr_index_.emplace(name, idx).second,
                  "duplicate attribute " << name_ << "." << name);
  return idx;
}

int Relation::AddForeignKey(const std::string& name, int target_relation) {
  Attribute a;
  a.name = name;
  a.kind = AttributeKind::kForeignKey;
  a.fk_target = target_relation;
  a.domain = Interval(0, 1);  // resolved against the target's row count
  attributes_.push_back(a);
  const int idx = static_cast<int>(attributes_.size()) - 1;
  HYDRA_CHECK_MSG(attr_index_.emplace(name, idx).second,
                  "duplicate attribute " << name_ << "." << name);
  return idx;
}

void Relation::set_row_count(uint64_t n) {
  row_count_ = n;
  const int pk = PrimaryKeyIndex();
  if (pk >= 0) {
    attributes_[pk].domain =
        Interval(0, n > 0 ? static_cast<int64_t>(n) : 1);
  }
}

int Relation::AttrIndex(const std::string& name) const {
  auto it = attr_index_.find(name);
  return it == attr_index_.end() ? -1 : it->second;
}

int Relation::PrimaryKeyIndex() const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].kind == AttributeKind::kPrimaryKey) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<int> Relation::DataAttrIndices() const {
  std::vector<int> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].kind == AttributeKind::kData) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::vector<int> Relation::ForeignKeyIndices() const {
  std::vector<int> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].kind == AttributeKind::kForeignKey) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

int Schema::AddRelation(Relation relation) {
  const int idx = static_cast<int>(relations_.size());
  HYDRA_CHECK_MSG(relation_index_.emplace(relation.name(), idx).second,
                  "duplicate relation " << relation.name());
  relations_.push_back(std::move(relation));
  return idx;
}

int Schema::RelationIndex(const std::string& name) const {
  auto it = relation_index_.find(name);
  return it == relation_index_.end() ? -1 : it->second;
}

std::vector<int> Schema::DirectDependencies(int rel) const {
  std::vector<int> out;
  for (int fk : relations_[rel].ForeignKeyIndices()) {
    const int target = relations_[rel].attribute(fk).fk_target;
    if (std::find(out.begin(), out.end(), target) == out.end()) {
      out.push_back(target);
    }
  }
  return out;
}

std::vector<int> Schema::TransitiveDependencies(int rel) const {
  std::vector<bool> seen(relations_.size(), false);
  std::vector<int> stack = DirectDependencies(rel);
  std::vector<int> out;
  while (!stack.empty()) {
    const int r = stack.back();
    stack.pop_back();
    if (seen[r]) continue;
    seen[r] = true;
    out.push_back(r);
    for (int d : DirectDependencies(r)) {
      if (!seen[d]) stack.push_back(d);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Schema::IsDag() const { return DependentsFirstOrder().ok(); }

StatusOr<std::vector<int>> Schema::DependentsFirstOrder() const {
  const int n = num_relations();
  // Kahn's algorithm on edges rel -> dependency; output order emits a node
  // only once all its dependents have been emitted.
  std::vector<int> pending_dependents(n, 0);
  for (int r = 0; r < n; ++r) {
    for (int d : DirectDependencies(r)) ++pending_dependents[d];
  }
  std::vector<int> ready;
  for (int r = 0; r < n; ++r) {
    if (pending_dependents[r] == 0) ready.push_back(r);
  }
  std::vector<int> order;
  order.reserve(n);
  while (!ready.empty()) {
    // Pop the smallest index for deterministic output.
    auto it = std::min_element(ready.begin(), ready.end());
    const int r = *it;
    ready.erase(it);
    order.push_back(r);
    for (int d : DirectDependencies(r)) {
      if (--pending_dependents[d] == 0) ready.push_back(d);
    }
  }
  if (static_cast<int>(order.size()) != n) {
    return Status::FailedPrecondition(
        "referential dependency graph has a cycle");
  }
  return order;
}

Status Schema::Validate() const {
  for (int r = 0; r < num_relations(); ++r) {
    const Relation& rel = relations_[r];
    for (int a = 0; a < rel.num_attributes(); ++a) {
      const Attribute& attr = rel.attribute(a);
      if (attr.kind == AttributeKind::kData && attr.domain.empty()) {
        return Status::InvalidArgument("empty domain for " + rel.name() +
                                       "." + attr.name);
      }
      if (attr.kind == AttributeKind::kForeignKey) {
        if (attr.fk_target < 0 || attr.fk_target >= num_relations()) {
          return Status::InvalidArgument("dangling FK target for " +
                                         rel.name() + "." + attr.name);
        }
        if (attr.fk_target == r) {
          return Status::InvalidArgument("self-referencing FK in " +
                                         rel.name());
        }
        if (relations_[attr.fk_target].PrimaryKeyIndex() < 0) {
          return Status::InvalidArgument(
              "FK " + rel.name() + "." + attr.name + " references relation " +
              relations_[attr.fk_target].name() + " which has no PK");
        }
      }
    }
  }
  if (!IsDag()) {
    return Status::InvalidArgument("dependency graph is not a DAG");
  }
  return Status::OK();
}

std::string Schema::QualifiedName(const AttrRef& ref) const {
  return relations_[ref.relation].name() + "." +
         relations_[ref.relation].attribute(ref.attr).name;
}

}  // namespace hydra
