// Relational catalog: attributes, relations, and the referential dependency
// graph (a DAG; Hydra explicitly supports DAG-shaped dependencies, not just
// trees).
//
// Conventions matching the paper's setting (Section 2.2):
//  * every attribute is numeric (the anonymizer maps other types to numbers),
//    with a half-open integer domain [lo, hi);
//  * each relation has at most one primary key attribute;
//  * foreign keys reference the primary key of their target relation;
//  * cardinality constraints filter only non-key attributes and join only
//    along PK-FK edges.

#ifndef HYDRA_CATALOG_SCHEMA_H_
#define HYDRA_CATALOG_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/interval.h"
#include "common/status.h"

namespace hydra {

// A single attribute value; all data is numeric post-anonymization.
using Value = int64_t;
// One tuple, attribute-ordered as in the owning relation/view.
using Row = std::vector<Value>;

enum class AttributeKind {
  kData,        // plain non-key attribute (filterable)
  kPrimaryKey,  // the relation's PK (row identity)
  kForeignKey,  // references another relation's PK
};

struct Attribute {
  std::string name;
  AttributeKind kind = AttributeKind::kData;
  // Value domain [lo, hi); for keys this is [0, row_count) by convention.
  Interval domain;
  // For kForeignKey: index of the referenced relation in the Schema.
  int fk_target = -1;
};

// Identifies an attribute globally: (relation index, attribute index).
struct AttrRef {
  int relation = -1;
  int attr = -1;

  friend bool operator==(const AttrRef& a, const AttrRef& b) {
    return a.relation == b.relation && a.attr == b.attr;
  }
  friend bool operator<(const AttrRef& a, const AttrRef& b) {
    return a.relation != b.relation ? a.relation < b.relation
                                    : a.attr < b.attr;
  }
};

struct AttrRefHash {
  size_t operator()(const AttrRef& r) const {
    return std::hash<int64_t>()((int64_t(r.relation) << 32) ^
                                uint32_t(r.attr));
  }
};

class Relation {
 public:
  Relation(std::string name, uint64_t row_count)
      : name_(std::move(name)), row_count_(row_count) {}

  // Returns the index of the new attribute.
  int AddDataAttribute(const std::string& name, Interval domain);
  int AddPrimaryKey(const std::string& name);
  int AddForeignKey(const std::string& name, int target_relation);

  const std::string& name() const { return name_; }
  uint64_t row_count() const { return row_count_; }
  void set_row_count(uint64_t n);

  int num_attributes() const { return static_cast<int>(attributes_.size()); }
  const Attribute& attribute(int i) const { return attributes_[i]; }
  Attribute& mutable_attribute(int i) { return attributes_[i]; }

  // Index of the attribute with `name`, or -1.
  int AttrIndex(const std::string& name) const;

  // Index of the primary key attribute, or -1 if the relation has none.
  int PrimaryKeyIndex() const;
  // Indices of plain data attributes (the "non-key" attributes of the paper).
  std::vector<int> DataAttrIndices() const;
  // Indices of foreign key attributes.
  std::vector<int> ForeignKeyIndices() const;

 private:
  std::string name_;
  uint64_t row_count_;
  std::vector<Attribute> attributes_;
  std::unordered_map<std::string, int> attr_index_;
};

class Schema {
 public:
  // Returns the index of the new relation.
  int AddRelation(Relation relation);

  int num_relations() const { return static_cast<int>(relations_.size()); }
  const Relation& relation(int i) const { return relations_[i]; }
  Relation& mutable_relation(int i) { return relations_[i]; }

  // Index of the relation with `name`, or -1.
  int RelationIndex(const std::string& name) const;

  // Relations directly referenced by `rel` through foreign keys (dedup'd).
  std::vector<int> DirectDependencies(int rel) const;
  // All relations reachable from `rel` through foreign keys (excluding rel).
  std::vector<int> TransitiveDependencies(int rel) const;

  // True iff the referential dependency graph has no cycle.
  bool IsDag() const;

  // Relations ordered so that every relation appears before all relations it
  // depends on (dependents first, referenced relations later). Fails if the
  // graph has a cycle.
  StatusOr<std::vector<int>> DependentsFirstOrder() const;

  // Validates domains, FK targets (must have a PK), and acyclicity.
  Status Validate() const;

  // Qualified attribute name "relation.attr".
  std::string QualifiedName(const AttrRef& ref) const;

 private:
  std::vector<Relation> relations_;
  std::unordered_map<std::string, int> relation_index_;
};

}  // namespace hydra

#endif  // HYDRA_CATALOG_SCHEMA_H_
