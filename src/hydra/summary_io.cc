#include "hydra/summary_io.h"

#include <cstdio>
#include <vector>

#include "common/logging.h"

namespace hydra {

namespace {

constexpr uint64_t kSummaryMagic = 0x48594452'53554D31ULL;  // "HYDRSUM1"

class Writer {
 public:
  explicit Writer(std::FILE* f) : f_(f) {}

  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }
  void Raw(const void* p, size_t n) {
    if (ok_ && std::fwrite(p, 1, n, f_) != n) ok_ = false;
    bytes_ += n;
  }

  bool ok() const { return ok_; }
  uint64_t bytes() const { return bytes_; }

 private:
  std::FILE* f_;
  bool ok_ = true;
  uint64_t bytes_ = 0;
};

class Reader {
 public:
  explicit Reader(std::FILE* f) : f_(f) {}

  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  int64_t I64() {
    int64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  int32_t I32() {
    int32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  std::string Str() {
    const uint64_t n = U64();
    if (!ok_ || n > (1u << 20)) {
      ok_ = false;
      return "";
    }
    std::string s(n, '\0');
    Raw(s.data(), n);
    return s;
  }
  void Raw(void* p, size_t n) {
    if (ok_ && std::fread(p, 1, n, f_) != n) ok_ = false;
  }

  bool ok() const { return ok_; }

 private:
  std::FILE* f_;
  bool ok_ = true;
};

}  // namespace

StatusOr<uint64_t> WriteSummary(const DatabaseSummary& summary,
                                const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  Writer w(f);
  w.U64(kSummaryMagic);

  // --- Schema ---------------------------------------------------------
  const Schema& schema = summary.schema;
  w.I32(schema.num_relations());
  for (int r = 0; r < schema.num_relations(); ++r) {
    const Relation& rel = schema.relation(r);
    w.Str(rel.name());
    w.U64(rel.row_count());
    w.I32(rel.num_attributes());
    for (int a = 0; a < rel.num_attributes(); ++a) {
      const Attribute& attr = rel.attribute(a);
      w.Str(attr.name);
      w.I32(static_cast<int32_t>(attr.kind));
      w.I64(attr.domain.lo);
      w.I64(attr.domain.hi);
      w.I32(attr.fk_target);
    }
  }

  // --- Relation summaries ----------------------------------------------
  for (const RelationSummary& rs : summary.relations) {
    w.I32(rs.relation);
    w.I32(static_cast<int32_t>(rs.attr_indices.size()));
    for (int a : rs.attr_indices) w.I32(a);
    w.U64(rs.rows.size());
    for (const SolutionRow& row : rs.rows) {
      w.I64(row.count);
      for (Value v : row.values) w.I64(v);
    }
  }
  for (uint64_t e : summary.extra_tuples) w.U64(e);

  const bool ok = w.ok();
  const uint64_t bytes = w.bytes();
  if (std::fclose(f) != 0 || !ok) {
    return Status::IoError("short write to " + path);
  }
  return bytes;
}

StatusOr<DatabaseSummary> ReadSummary(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  Reader r(f);
  if (r.U64() != kSummaryMagic) {
    std::fclose(f);
    return Status::IoError("bad summary header in " + path);
  }

  DatabaseSummary out;
  const int32_t num_relations = r.I32();
  if (!r.ok() || num_relations < 0 || num_relations > 1 << 16) {
    std::fclose(f);
    return Status::IoError("corrupt summary: relation count");
  }
  for (int32_t rel_idx = 0; rel_idx < num_relations; ++rel_idx) {
    const std::string name = r.Str();
    const uint64_t row_count = r.U64();
    const int32_t num_attrs = r.I32();
    if (!r.ok() || num_attrs < 0 || num_attrs > 1 << 16) {
      std::fclose(f);
      return Status::IoError("corrupt summary: attribute count");
    }
    Relation rel(name, row_count);
    for (int32_t a = 0; a < num_attrs; ++a) {
      const std::string attr_name = r.Str();
      const auto kind = static_cast<AttributeKind>(r.I32());
      const int64_t lo = r.I64();
      const int64_t hi = r.I64();
      const int32_t fk_target = r.I32();
      if (!r.ok() || (kind == AttributeKind::kData && lo >= hi)) {
        std::fclose(f);
        return Status::IoError("corrupt summary: attribute payload");
      }
      switch (kind) {
        case AttributeKind::kData:
          rel.AddDataAttribute(attr_name, Interval(lo, hi));
          break;
        case AttributeKind::kPrimaryKey:
          rel.AddPrimaryKey(attr_name);
          break;
        case AttributeKind::kForeignKey:
          rel.AddForeignKey(attr_name, fk_target);
          break;
        default:
          std::fclose(f);
          return Status::IoError("corrupt summary: attribute kind");
      }
    }
    out.schema.AddRelation(std::move(rel));
  }

  out.relations.resize(num_relations);
  for (int32_t i = 0; i < num_relations; ++i) {
    RelationSummary& rs = out.relations[i];
    rs.relation = r.I32();
    const int32_t cols = r.I32();
    if (!r.ok() || cols < 0 || cols > 1 << 16) {
      std::fclose(f);
      return Status::IoError("corrupt summary: column count");
    }
    for (int32_t c = 0; c < cols; ++c) rs.attr_indices.push_back(r.I32());
    const uint64_t rows = r.U64();
    if (!r.ok() || rows > (1ull << 32)) {
      std::fclose(f);
      return Status::IoError("corrupt summary: row count");
    }
    rs.rows.resize(rows);
    for (uint64_t row = 0; row < rows; ++row) {
      rs.rows[row].count = r.I64();
      rs.rows[row].values.resize(cols);
      for (int32_t c = 0; c < cols; ++c) rs.rows[row].values[c] = r.I64();
    }
    rs.Finalize();
  }
  out.extra_tuples.resize(num_relations);
  for (int32_t i = 0; i < num_relations; ++i) out.extra_tuples[i] = r.U64();

  const bool ok = r.ok();
  std::fclose(f);
  if (!ok) return Status::IoError("truncated summary file " + path);
  return out;
}

}  // namespace hydra
