#include "hydra/summary_io.h"

#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"

namespace hydra {

// Chaos hooks on both halves of the summary disk format. Injecting
// kUnavailable on the read side models a transient I/O blip (the serve
// layer's retry path); kIoError models a hard one.
HYDRA_FAILPOINT_DEFINE(g_fp_summary_read, "summary_io/read");
HYDRA_FAILPOINT_DEFINE(g_fp_summary_write, "summary_io/write");

namespace {

constexpr uint64_t kSummaryMagic = 0x48594452'53554D31ULL;  // "HYDRSUM1"

class Writer {
 public:
  explicit Writer(std::FILE* f) : f_(f) {}

  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }
  void Raw(const void* p, size_t n) {
    if (ok_ && std::fwrite(p, 1, n, f_) != n) ok_ = false;
    bytes_ += n;
  }

  bool ok() const { return ok_; }
  uint64_t bytes() const { return bytes_; }

 private:
  std::FILE* f_;
  bool ok_ = true;
  uint64_t bytes_ = 0;
};

// Size-bounded reader: tracks the bytes left in the file so every length
// and count field can be validated against what the file can actually hold
// *before* anything is allocated — a corrupt header claiming 2^32 rows must
// fail with a Status, not an OOM (the serve layer loads untrusted files at
// runtime).
class Reader {
 public:
  Reader(std::FILE* f, uint64_t file_bytes)
      : f_(f), remaining_(file_bytes) {}

  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  int64_t I64() {
    int64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  int32_t I32() {
    int32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  std::string Str() {
    const uint64_t n = U64();
    if (!ok_ || n > remaining_ || n > (1u << 20)) {
      ok_ = false;
      return "";
    }
    std::string s(n, '\0');
    Raw(s.data(), n);
    return s;
  }
  void Raw(void* p, size_t n) {
    if (!ok_ || n > remaining_ || std::fread(p, 1, n, f_) != n) {
      ok_ = false;
      return;
    }
    remaining_ -= n;
  }

  bool ok() const { return ok_; }
  // Bytes of payload the rest of the file can still supply.
  uint64_t remaining() const { return remaining_; }

 private:
  std::FILE* f_;
  uint64_t remaining_;
  bool ok_ = true;
};

// fstat-free file size via the stdio seek API.
bool FileBytes(std::FILE* f, uint64_t* out) {
  if (std::fseek(f, 0, SEEK_END) != 0) return false;
  const long size = std::ftell(f);
  if (size < 0 || std::fseek(f, 0, SEEK_SET) != 0) return false;
  *out = static_cast<uint64_t>(size);
  return true;
}

}  // namespace

StatusOr<uint64_t> WriteSummary(const DatabaseSummary& summary,
                                const std::string& path) {
  HYDRA_FAILPOINT(g_fp_summary_write);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  Writer w(f);
  w.U64(kSummaryMagic);

  // --- Schema ---------------------------------------------------------
  const Schema& schema = summary.schema;
  w.I32(schema.num_relations());
  for (int r = 0; r < schema.num_relations(); ++r) {
    const Relation& rel = schema.relation(r);
    w.Str(rel.name());
    w.U64(rel.row_count());
    w.I32(rel.num_attributes());
    for (int a = 0; a < rel.num_attributes(); ++a) {
      const Attribute& attr = rel.attribute(a);
      w.Str(attr.name);
      w.I32(static_cast<int32_t>(attr.kind));
      w.I64(attr.domain.lo);
      w.I64(attr.domain.hi);
      w.I32(attr.fk_target);
    }
  }

  // --- Relation summaries ----------------------------------------------
  for (const RelationSummary& rs : summary.relations) {
    w.I32(rs.relation);
    w.I32(static_cast<int32_t>(rs.attr_indices.size()));
    for (int a : rs.attr_indices) w.I32(a);
    w.U64(rs.rows.size());
    for (const SolutionRow& row : rs.rows) {
      w.I64(row.count);
      for (Value v : row.values) w.I64(v);
    }
  }
  for (uint64_t e : summary.extra_tuples) w.U64(e);

  const bool ok = w.ok();
  const uint64_t bytes = w.bytes();
  if (std::fclose(f) != 0 || !ok) {
    return Status::IoError("short write to " + path);
  }
  return bytes;
}

StatusOr<DatabaseSummary> ReadSummary(const std::string& path) {
  HYDRA_FAILPOINT(g_fp_summary_read);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  uint64_t file_bytes = 0;
  if (!FileBytes(f, &file_bytes)) {
    std::fclose(f);
    return Status::IoError("cannot size " + path);
  }
  Reader r(f, file_bytes);
  // Every early exit funnels through here so the handle can never leak.
  const auto fail = [&](const std::string& what) -> Status {
    std::fclose(f);
    return Status::IoError("corrupt summary " + path + ": " + what);
  };

  if (r.U64() != kSummaryMagic) return fail("bad header");

  DatabaseSummary out;
  const int32_t num_relations = r.I32();
  if (!r.ok() || num_relations < 0 || num_relations > 1 << 16) {
    return fail("relation count");
  }
  for (int32_t rel_idx = 0; rel_idx < num_relations; ++rel_idx) {
    const std::string name = r.Str();
    const uint64_t row_count = r.U64();
    const int32_t num_attrs = r.I32();
    if (!r.ok() || name.empty() || num_attrs < 0 || num_attrs > 1 << 16) {
      return fail("attribute count");
    }
    if (out.schema.RelationIndex(name) >= 0) {
      return fail("duplicate relation name " + name);
    }
    Relation rel(name, row_count);
    for (int32_t a = 0; a < num_attrs; ++a) {
      const std::string attr_name = r.Str();
      const auto kind = static_cast<AttributeKind>(r.I32());
      const int64_t lo = r.I64();
      const int64_t hi = r.I64();
      const int32_t fk_target = r.I32();
      if (!r.ok() || attr_name.empty() ||
          (kind == AttributeKind::kData && lo >= hi)) {
        return fail("attribute payload");
      }
      // Pre-validate what the schema builders would otherwise CHECK-abort
      // on: duplicate names, a second PK, a dangling FK target.
      if (rel.AttrIndex(attr_name) >= 0) {
        return fail("duplicate attribute " + name + "." + attr_name);
      }
      switch (kind) {
        case AttributeKind::kData:
          rel.AddDataAttribute(attr_name, Interval(lo, hi));
          break;
        case AttributeKind::kPrimaryKey:
          if (rel.PrimaryKeyIndex() >= 0) return fail("second primary key");
          rel.AddPrimaryKey(attr_name);
          break;
        case AttributeKind::kForeignKey:
          if (fk_target < 0 || fk_target >= num_relations) {
            return fail("foreign key target out of range");
          }
          rel.AddForeignKey(attr_name, fk_target);
          break;
        default:
          return fail("attribute kind");
      }
    }
    out.schema.AddRelation(std::move(rel));
  }

  out.relations.resize(num_relations);
  for (int32_t i = 0; i < num_relations; ++i) {
    RelationSummary& rs = out.relations[i];
    rs.relation = r.I32();
    const int32_t cols = r.I32();
    // Summary blocks are written in relation order over the relation's own
    // attributes; anything else indexes out of the schema at generation
    // time.
    const int32_t rel_attrs = out.schema.relation(i).num_attributes();
    if (!r.ok() || rs.relation != i || cols < 0 || cols > rel_attrs) {
      return fail("summary column count");
    }
    for (int32_t c = 0; c < cols; ++c) {
      const int32_t attr = r.I32();
      if (!r.ok() || attr < 0 || attr >= rel_attrs) {
        return fail("summary attribute index");
      }
      rs.attr_indices.push_back(attr);
    }
    const uint64_t rows = r.U64();
    // Each row needs (1 + cols) i64 fields; a row count the rest of the
    // file cannot physically hold is rejected before the resize allocates.
    const uint64_t row_bytes = (1ull + cols) * sizeof(int64_t);
    if (!r.ok() || rows > r.remaining() / row_bytes) {
      return fail("summary row count");
    }
    rs.rows.resize(rows);
    int64_t total = 0;
    for (uint64_t row = 0; row < rows; ++row) {
      const int64_t count = r.I64();
      if (count < 0 || count > INT64_MAX - total) {
        return fail("summary tuple count");
      }
      total += count;
      rs.rows[row].count = count;
      rs.rows[row].values.resize(cols);
      for (int32_t c = 0; c < cols; ++c) rs.rows[row].values[c] = r.I64();
    }
    if (!r.ok()) return fail("truncated summary rows");
    rs.Finalize();
  }
  out.extra_tuples.resize(num_relations);
  for (int32_t i = 0; i < num_relations; ++i) out.extra_tuples[i] = r.U64();

  if (!r.ok()) return fail("truncated file");
  std::fclose(f);
  return out;
}

}  // namespace hydra
