#include "hydra/formulator.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/logging.h"

namespace hydra {

namespace {

// Per-dimension strides packing an elementary-cell key into one uint64
// (cell index along dim d is < cuts_d + 1). Returns false when the cell
// space is too large to pack; callers surface that as a Status error —
// a formulation with more than 2^62 elementary cells is far beyond
// anything the LP layer could solve anyway.
bool CellKeyStrides(
    const std::vector<std::pair<int, std::vector<int64_t>>>& cut_dims,
    std::vector<uint64_t>* strides) {
  // The first listed dimension gets the largest stride so that comparing
  // packed keys orders cells exactly like comparing the per-dimension
  // index vectors lexicographically.
  strides->assign(cut_dims.size(), 0);
  uint64_t stride = 1;
  for (size_t d = cut_dims.size(); d-- > 0;) {
    (*strides)[d] = stride;
    const uint64_t cells =
        static_cast<uint64_t>(cut_dims[d].second.size()) + 1;
    if (stride > (uint64_t{1} << 62) / cells) return false;
    stride *= cells;
  }
  return true;
}

// Packed elementary-cell key of a block along the given local dims.
uint64_t BlockFlatKey(
    const Block& b,
    const std::vector<std::pair<int, std::vector<int64_t>>>& cut_dims,
    const std::vector<uint64_t>& strides) {
  uint64_t key = 0;
  for (size_t d = 0; d < cut_dims.size(); ++d) {
    const auto& cuts = cut_dims[d].second;
    const int64_t min_val = b.dims[cut_dims[d].first].Min();
    const auto it = std::upper_bound(cuts.begin(), cuts.end(), min_val);
    key += strides[d] * static_cast<uint64_t>(it - cuts.begin());
  }
  return key;
}

// Splits every region of `partition` into one region per elementary-cell key
// along `cut_dims` (local dim -> sorted cuts). Precondition: the partition
// has already been refined so no block crosses a cut. Fails (without
// touching the partition) when the cell space cannot be keyed.
Status SplitRegionsByCellKeys(
    RegionPartition* partition,
    const std::vector<std::pair<int, std::vector<int64_t>>>& cut_dims) {
  if (cut_dims.empty()) return Status::OK();
  // Split every region into one region per elementary-cell key: the split
  // is required for consistency, while blocks of the same region landing
  // in the same cell stay merged as one variable. Labels are unique per
  // region (BuildRegionPartition merges by label), so grouping is local to
  // each region — sort its blocks by cell key instead of feeding a global
  // map of heap-allocated (label, key) pairs.
  std::vector<uint64_t> strides;
  if (!CellKeyStrides(cut_dims, &strides)) {
    return Status::ResourceExhausted(
        "view's elementary-cell space exceeds 2^62 cells");
  }
  std::vector<Region> out;
  std::vector<uint64_t> out_key;
  out.reserve(partition->regions.size());
  out_key.reserve(partition->regions.size());
  std::vector<std::pair<uint64_t, int>> keyed;
  for (Region& region : partition->regions) {
    keyed.clear();
    keyed.reserve(region.blocks.size());
    for (size_t i = 0; i < region.blocks.size(); ++i) {
      keyed.emplace_back(BlockFlatKey(region.blocks[i], cut_dims, strides),
                         static_cast<int>(i));
    }
    std::sort(keyed.begin(), keyed.end());
    size_t begin = 0;
    for (size_t i = 1; i <= keyed.size(); ++i) {
      if (i < keyed.size() && keyed[i].first == keyed[begin].first) continue;
      Region r;
      r.label = region.label;
      r.blocks.reserve(i - begin);
      for (size_t k = begin; k < i; ++k) {
        r.blocks.push_back(std::move(region.blocks[keyed[k].second]));
      }
      out.push_back(std::move(r));
      out_key.push_back(keyed[begin].first);
      begin = i;
    }
  }
  // Order regions (LP variables) by (label, cell key) — the ordering the
  // pricing heuristics were tuned against.
  std::vector<int> order(out.size());
  for (size_t i = 0; i < out.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (out[a].label != out[b].label) return out[a].label < out[b].label;
    return out_key[a] < out_key[b];
  });
  std::vector<Region> sorted;
  sorted.reserve(out.size());
  for (int i : order) sorted.push_back(std::move(out[i]));
  partition->regions = std::move(sorted);
  return Status::OK();
}

}  // namespace

StatusOr<ViewLp> FormulateViewLp(const View& view,
                                 std::vector<ViewConstraint> constraints) {
  ViewLp out;
  out.total_rows = view.total_rows;

  // Extract total-size constraints (TRUE predicates).
  std::vector<ViewConstraint> filtered;
  for (ViewConstraint& vc : constraints) {
    if (vc.predicate.IsTrue()) {
      out.total_rows = vc.cardinality;
    } else if (vc.predicate.IsFalse()) {
      return Status::InvalidArgument("FALSE predicate in CC " + vc.label);
    } else {
      filtered.push_back(std::move(vc));
    }
  }
  out.constraints = std::move(filtered);

  std::vector<SubView> subviews =
      DecomposeView(view.num_columns(), out.constraints);

  // Assign each constraint to the first sub-view covering its columns.
  std::vector<std::vector<int>> assigned(subviews.size());
  for (size_t ci = 0; ci < out.constraints.size(); ++ci) {
    const std::vector<int> cols = out.constraints[ci].predicate.Columns();
    bool placed = false;
    for (size_t s = 0; s < subviews.size(); ++s) {
      if (std::includes(subviews[s].columns.begin(),
                        subviews[s].columns.end(), cols.begin(),
                        cols.end())) {
        assigned[s].push_back(static_cast<int>(ci));
        placed = true;
        break;
      }
    }
    if (!placed) {
      // Cannot happen: a CC's columns form a clique of the view-graph and
      // every clique is inside some maximal clique.
      return Status::Internal("constraint " + out.constraints[ci].label +
                              " not covered by any sub-view");
    }
  }

  // Build region partitions per sub-view.
  for (size_t s = 0; s < subviews.size(); ++s) {
    SubViewLp svlp;
    svlp.subview = subviews[s];
    svlp.assigned_constraints = assigned[s];

    const int local_dims = static_cast<int>(subviews[s].columns.size());
    std::vector<Interval> domains(local_dims);
    std::vector<int> view_to_local(view.num_columns(), -1);
    for (int d = 0; d < local_dims; ++d) {
      domains[d] = view.domains[subviews[s].columns[d]];
      view_to_local[subviews[s].columns[d]] = d;
    }
    std::vector<DnfPredicate> predicates;
    predicates.reserve(assigned[s].size());
    for (int ci : assigned[s]) {
      predicates.push_back(
          out.constraints[ci].predicate.RemapColumns(view_to_local));
    }
    svlp.partition = BuildRegionPartition(domains, predicates);
    out.subviews.push_back(std::move(svlp));
  }

  // Global cut points per *separator* column. Columns shared by sub-views
  // that are not clique-tree neighbours are covered transitively: by the
  // running-intersection property such a column lies in every separator on
  // the tree path between the two cliques, so per-edge consistency chains
  // across the path.
  std::unordered_map<int, int> separator_columns;
  for (const SubViewLp& sv : out.subviews) {
    for (int c : sv.subview.separator) ++separator_columns[c];
  }
  std::unordered_map<int, std::vector<int64_t>> global_cuts;
  for (const SubViewLp& sv : out.subviews) {
    for (size_t d = 0; d < sv.subview.columns.size(); ++d) {
      const int col = sv.subview.columns[d];
      if (separator_columns.find(col) == separator_columns.end()) continue;
      std::vector<int64_t> cuts =
          BlockBoundaries(sv.partition, static_cast<int>(d));
      auto& dst = global_cuts[col];
      dst.insert(dst.end(), cuts.begin(), cuts.end());
    }
  }
  for (auto& [col, cuts] : global_cuts) {
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  }
  for (const auto& [col, cuts] : global_cuts) {
    out.shared_cuts.emplace_back(col, cuts);
  }
  std::sort(out.shared_cuts.begin(), out.shared_cuts.end());

  // Refine every sub-view at the global cuts of its shared columns and split
  // regions per elementary cell.
  for (SubViewLp& sv : out.subviews) {
    std::vector<std::pair<int, std::vector<int64_t>>> cut_dims;
    for (size_t d = 0; d < sv.subview.columns.size(); ++d) {
      auto it = global_cuts.find(sv.subview.columns[d]);
      if (it != global_cuts.end() && !it->second.empty()) {
        cut_dims.emplace_back(static_cast<int>(d), it->second);
      }
    }
    if (cut_dims.empty()) continue;
    RefineRegionsAtCuts(&sv.partition, cut_dims);
    HYDRA_RETURN_IF_ERROR(SplitRegionsByCellKeys(&sv.partition, cut_dims));
  }

  // Allocate LP variables.
  for (SubViewLp& sv : out.subviews) {
    sv.first_var = out.problem.AddVariables(sv.partition.num_regions());
  }

  // (a) Total-size constraint per sub-view.
  for (const SubViewLp& sv : out.subviews) {
    LpConstraint c;
    c.label = "total";
    c.rhs = static_cast<double>(out.total_rows);
    for (int r = 0; r < sv.partition.num_regions(); ++r) {
      c.AddTerm(sv.first_var + r, 1.0);
    }
    out.problem.AddConstraint(std::move(c));
  }

  // (b) One LP row per assigned CC.
  for (const SubViewLp& sv : out.subviews) {
    for (size_t k = 0; k < sv.assigned_constraints.size(); ++k) {
      const int ci = sv.assigned_constraints[k];
      LpConstraint c;
      c.label = out.constraints[ci].label;
      c.rhs = static_cast<double>(out.constraints[ci].cardinality);
      for (int r = 0; r < sv.partition.num_regions(); ++r) {
        // Region labels index the sub-view's local predicate list, which is
        // ordered like assigned_constraints.
        if (sv.partition.regions[r].SatisfiesConstraint(static_cast<int>(k))) {
          c.AddTerm(sv.first_var + r, 1.0);
        }
      }
      out.problem.AddConstraint(std::move(c));
    }
  }

  // (c) Consistency constraints per clique-tree edge: equal mass per
  // elementary cell over the separator columns.
  for (size_t s = 0; s < out.subviews.size(); ++s) {
    const SubViewLp& child = out.subviews[s];
    if (child.subview.parent < 0 || child.subview.separator.empty()) continue;
    const SubViewLp& parent = out.subviews[child.subview.parent];

    auto cell_dims_for = [&](const SubViewLp& sv) {
      std::vector<std::pair<int, std::vector<int64_t>>> cut_dims;
      for (int col : child.subview.separator) {
        const auto cit = global_cuts.find(col);
        std::vector<int64_t> cuts =
            cit == global_cuts.end() ? std::vector<int64_t>{} : cit->second;
        const auto pos = std::find(sv.subview.columns.begin(),
                                   sv.subview.columns.end(), col);
        HYDRA_CHECK(pos != sv.subview.columns.end());
        cut_dims.emplace_back(
            static_cast<int>(pos - sv.subview.columns.begin()),
            std::move(cuts));
      }
      return cut_dims;
    };
    const auto child_dims = cell_dims_for(child);
    const auto parent_dims = cell_dims_for(parent);

    // One row per elementary cell over the separator: gather every
    // region's (packed cell key, signed term) and group by sorting — the
    // same rows a map would build, without a tree node (or heap key) per
    // cell. Child and parent pack with the same strides because both
    // cell_dims_for lists follow the separator's column order.
    std::vector<uint64_t> child_strides, parent_strides;
    if (!CellKeyStrides(child_dims, &child_strides) ||
        !CellKeyStrides(parent_dims, &parent_strides)) {
      return Status::ResourceExhausted(
          "separator's elementary-cell space exceeds 2^62 cells");
    }
    std::vector<std::pair<uint64_t, std::pair<int, double>>> terms;
    terms.reserve(child.partition.num_regions() +
                  parent.partition.num_regions());
    for (int r = 0; r < child.partition.num_regions(); ++r) {
      terms.emplace_back(
          BlockFlatKey(child.partition.regions[r].blocks.front(), child_dims,
                       child_strides),
          std::make_pair(child.first_var + r, 1.0));
    }
    for (int r = 0; r < parent.partition.num_regions(); ++r) {
      terms.emplace_back(
          BlockFlatKey(parent.partition.regions[r].blocks.front(),
                       parent_dims, parent_strides),
          std::make_pair(parent.first_var + r, -1.0));
    }
    std::sort(terms.begin(), terms.end());
    size_t begin = 0;
    for (size_t i = 1; i <= terms.size(); ++i) {
      if (i < terms.size() && terms[i].first == terms[begin].first) continue;
      LpConstraint c;
      c.rhs = 0;
      c.label = "consistency sv" + std::to_string(s);
      for (size_t k = begin; k < i; ++k) {
        c.AddTerm(terms[k].second.first, terms[k].second.second);
      }
      out.problem.AddConstraint(std::move(c));
      begin = i;
    }
  }

  return out;
}

}  // namespace hydra
