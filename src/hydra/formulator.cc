#include "hydra/formulator.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/logging.h"

namespace hydra {

namespace {

// Splits every region of `partition` into one region per elementary-cell key
// along `cut_dims` (local dim -> sorted cuts). Precondition: the partition
// has already been refined so no block crosses a cut.
void SplitRegionsByCellKeys(
    RegionPartition* partition,
    const std::vector<std::pair<int, std::vector<int64_t>>>& cut_dims) {
  if (cut_dims.empty()) return;
  // Group blocks by (label, elementary-cell key): splitting a region across
  // cells is required for consistency, but two regions that end up with the
  // same label in the same cell can be re-merged into one variable.
  std::map<std::pair<std::vector<int>, std::vector<int64_t>>,
           std::vector<Block>>
      groups;
  for (Region& region : partition->regions) {
    for (Block& b : region.blocks) {
      std::vector<int64_t> key;
      key.reserve(cut_dims.size());
      for (const auto& [dim, cuts] : cut_dims) {
        const int64_t min_val = b.dims[dim].Min();
        const auto it =
            std::upper_bound(cuts.begin(), cuts.end(), min_val);
        key.push_back(static_cast<int64_t>(it - cuts.begin()));
      }
      groups[{region.label, std::move(key)}].push_back(std::move(b));
    }
  }
  std::vector<Region> out;
  out.reserve(groups.size());
  for (auto& [label_key, blocks] : groups) {
    Region r;
    r.label = label_key.first;
    r.blocks = std::move(blocks);
    out.push_back(std::move(r));
  }
  partition->regions = std::move(out);
}

// Elementary-cell key of a region along the given local dims.
std::vector<int64_t> RegionCellKey(
    const Region& region,
    const std::vector<std::pair<int, std::vector<int64_t>>>& cut_dims) {
  std::vector<int64_t> key;
  key.reserve(cut_dims.size());
  const Block& b = region.blocks.front();
  for (const auto& [dim, cuts] : cut_dims) {
    const int64_t min_val = b.dims[dim].Min();
    const auto it = std::upper_bound(cuts.begin(), cuts.end(), min_val);
    key.push_back(static_cast<int64_t>(it - cuts.begin()));
  }
  return key;
}

}  // namespace

StatusOr<ViewLp> FormulateViewLp(const View& view,
                                 std::vector<ViewConstraint> constraints) {
  ViewLp out;
  out.total_rows = view.total_rows;

  // Extract total-size constraints (TRUE predicates).
  std::vector<ViewConstraint> filtered;
  for (ViewConstraint& vc : constraints) {
    if (vc.predicate.IsTrue()) {
      out.total_rows = vc.cardinality;
    } else if (vc.predicate.IsFalse()) {
      return Status::InvalidArgument("FALSE predicate in CC " + vc.label);
    } else {
      filtered.push_back(std::move(vc));
    }
  }
  out.constraints = std::move(filtered);

  std::vector<SubView> subviews =
      DecomposeView(view.num_columns(), out.constraints);

  // Assign each constraint to the first sub-view covering its columns.
  std::vector<std::vector<int>> assigned(subviews.size());
  for (size_t ci = 0; ci < out.constraints.size(); ++ci) {
    const std::vector<int> cols = out.constraints[ci].predicate.Columns();
    bool placed = false;
    for (size_t s = 0; s < subviews.size(); ++s) {
      if (std::includes(subviews[s].columns.begin(),
                        subviews[s].columns.end(), cols.begin(),
                        cols.end())) {
        assigned[s].push_back(static_cast<int>(ci));
        placed = true;
        break;
      }
    }
    if (!placed) {
      // Cannot happen: a CC's columns form a clique of the view-graph and
      // every clique is inside some maximal clique.
      return Status::Internal("constraint " + out.constraints[ci].label +
                              " not covered by any sub-view");
    }
  }

  // Build region partitions per sub-view.
  for (size_t s = 0; s < subviews.size(); ++s) {
    SubViewLp svlp;
    svlp.subview = subviews[s];
    svlp.assigned_constraints = assigned[s];

    const int local_dims = static_cast<int>(subviews[s].columns.size());
    std::vector<Interval> domains(local_dims);
    std::vector<int> view_to_local(view.num_columns(), -1);
    for (int d = 0; d < local_dims; ++d) {
      domains[d] = view.domains[subviews[s].columns[d]];
      view_to_local[subviews[s].columns[d]] = d;
    }
    std::vector<DnfPredicate> predicates;
    predicates.reserve(assigned[s].size());
    for (int ci : assigned[s]) {
      predicates.push_back(
          out.constraints[ci].predicate.RemapColumns(view_to_local));
    }
    svlp.partition = BuildRegionPartition(domains, predicates);
    out.subviews.push_back(std::move(svlp));
  }

  // Global cut points per *separator* column. Columns shared by sub-views
  // that are not clique-tree neighbours are covered transitively: by the
  // running-intersection property such a column lies in every separator on
  // the tree path between the two cliques, so per-edge consistency chains
  // across the path.
  std::unordered_map<int, int> separator_columns;
  for (const SubViewLp& sv : out.subviews) {
    for (int c : sv.subview.separator) ++separator_columns[c];
  }
  std::unordered_map<int, std::vector<int64_t>> global_cuts;
  for (const SubViewLp& sv : out.subviews) {
    for (size_t d = 0; d < sv.subview.columns.size(); ++d) {
      const int col = sv.subview.columns[d];
      if (separator_columns.find(col) == separator_columns.end()) continue;
      std::vector<int64_t> cuts =
          BlockBoundaries(sv.partition, static_cast<int>(d));
      auto& dst = global_cuts[col];
      dst.insert(dst.end(), cuts.begin(), cuts.end());
    }
  }
  for (auto& [col, cuts] : global_cuts) {
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  }
  for (const auto& [col, cuts] : global_cuts) {
    out.shared_cuts.emplace_back(col, cuts);
  }
  std::sort(out.shared_cuts.begin(), out.shared_cuts.end());

  // Refine every sub-view at the global cuts of its shared columns and split
  // regions per elementary cell.
  for (SubViewLp& sv : out.subviews) {
    std::vector<std::pair<int, std::vector<int64_t>>> cut_dims;
    for (size_t d = 0; d < sv.subview.columns.size(); ++d) {
      auto it = global_cuts.find(sv.subview.columns[d]);
      if (it != global_cuts.end() && !it->second.empty()) {
        cut_dims.emplace_back(static_cast<int>(d), it->second);
      }
    }
    if (cut_dims.empty()) continue;
    RefineRegionsAtCuts(&sv.partition, cut_dims);
    SplitRegionsByCellKeys(&sv.partition, cut_dims);
  }

  // Allocate LP variables.
  for (SubViewLp& sv : out.subviews) {
    sv.first_var = out.problem.AddVariables(sv.partition.num_regions());
  }

  // (a) Total-size constraint per sub-view.
  for (const SubViewLp& sv : out.subviews) {
    LpConstraint c;
    c.label = "total";
    c.rhs = static_cast<double>(out.total_rows);
    for (int r = 0; r < sv.partition.num_regions(); ++r) {
      c.AddTerm(sv.first_var + r, 1.0);
    }
    out.problem.AddConstraint(std::move(c));
  }

  // (b) One LP row per assigned CC.
  for (const SubViewLp& sv : out.subviews) {
    for (size_t k = 0; k < sv.assigned_constraints.size(); ++k) {
      const int ci = sv.assigned_constraints[k];
      LpConstraint c;
      c.label = out.constraints[ci].label;
      c.rhs = static_cast<double>(out.constraints[ci].cardinality);
      for (int r = 0; r < sv.partition.num_regions(); ++r) {
        // Region labels index the sub-view's local predicate list, which is
        // ordered like assigned_constraints.
        if (sv.partition.regions[r].SatisfiesConstraint(static_cast<int>(k))) {
          c.AddTerm(sv.first_var + r, 1.0);
        }
      }
      out.problem.AddConstraint(std::move(c));
    }
  }

  // (c) Consistency constraints per clique-tree edge: equal mass per
  // elementary cell over the separator columns.
  for (size_t s = 0; s < out.subviews.size(); ++s) {
    const SubViewLp& child = out.subviews[s];
    if (child.subview.parent < 0 || child.subview.separator.empty()) continue;
    const SubViewLp& parent = out.subviews[child.subview.parent];

    auto cell_dims_for = [&](const SubViewLp& sv) {
      std::vector<std::pair<int, std::vector<int64_t>>> cut_dims;
      for (int col : child.subview.separator) {
        const auto cit = global_cuts.find(col);
        std::vector<int64_t> cuts =
            cit == global_cuts.end() ? std::vector<int64_t>{} : cit->second;
        const auto pos = std::find(sv.subview.columns.begin(),
                                   sv.subview.columns.end(), col);
        HYDRA_CHECK(pos != sv.subview.columns.end());
        cut_dims.emplace_back(
            static_cast<int>(pos - sv.subview.columns.begin()),
            std::move(cuts));
      }
      return cut_dims;
    };
    const auto child_dims = cell_dims_for(child);
    const auto parent_dims = cell_dims_for(parent);

    std::map<std::vector<int64_t>, LpConstraint> rows;
    for (int r = 0; r < child.partition.num_regions(); ++r) {
      const auto key = RegionCellKey(child.partition.regions[r], child_dims);
      rows[key].AddTerm(child.first_var + r, 1.0);
    }
    for (int r = 0; r < parent.partition.num_regions(); ++r) {
      const auto key = RegionCellKey(parent.partition.regions[r], parent_dims);
      rows[key].AddTerm(parent.first_var + r, -1.0);
    }
    for (auto& [key, c] : rows) {
      c.rhs = 0;
      c.label = "consistency sv" + std::to_string(s);
      out.problem.AddConstraint(std::move(c));
    }
  }

  return out;
}

}  // namespace hydra
