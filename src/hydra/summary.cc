#include "hydra/summary.h"

#include <algorithm>

#include "common/logging.h"

namespace hydra {

int64_t ViewSummary::TotalCount() const {
  int64_t total = 0;
  for (const SolutionRow& r : rows) total += r.count;
  return total;
}

void RelationSummary::Finalize() {
  prefix_counts.resize(rows.size());
  int64_t running = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    prefix_counts[i] = running;
    running += rows[i].count;
  }
}

int64_t RelationSummary::TotalCount() const {
  // O(1) once finalized — the range-scan entry points bounds-check against
  // this on every call, including once per materialization shard. Mutating
  // rows after Finalize() without re-finalizing would make this stale.
  if (!prefix_counts.empty()) {
    HYDRA_DCHECK(prefix_counts.size() == rows.size());
    return prefix_counts.back() + rows.back().count;
  }
  int64_t total = 0;
  for (const SolutionRow& r : rows) total += r.count;
  return total;
}

int RelationSummary::RowIndexForTuple(int64_t r) const {
  HYDRA_DCHECK(!prefix_counts.empty() || rows.empty());
  // Largest i with prefix_counts[i] <= r.
  const auto it =
      std::upper_bound(prefix_counts.begin(), prefix_counts.end(), r);
  HYDRA_DCHECK(it != prefix_counts.begin());
  return static_cast<int>(it - prefix_counts.begin()) - 1;
}

uint64_t RelationSummary::ByteSize() const {
  uint64_t bytes = sizeof(RelationSummary);
  bytes += attr_indices.size() * sizeof(int);
  bytes += prefix_counts.size() * sizeof(int64_t);
  for (const SolutionRow& r : rows) {
    bytes += sizeof(SolutionRow) + r.values.size() * sizeof(Value);
  }
  return bytes;
}

uint64_t DatabaseSummary::ByteSize() const {
  uint64_t bytes = 0;
  for (const RelationSummary& r : relations) bytes += r.ByteSize();
  return bytes;
}

uint64_t DatabaseSummary::TotalExtraTuples() const {
  uint64_t total = 0;
  for (uint64_t e : extra_tuples) total += e;
  return total;
}

}  // namespace hydra
