// Tuple Generator (Section 6): generates relation tuples on demand from the
// database summary, replacing the scan operator of the engine under test
// (the paper's PostgreSQL `datagen` feature).
//
// The r-th tuple of relation R has PK value r; its remaining attributes come
// from the summary row whose cumulative NumTuples range covers r. Sequential
// scans walk the summary rows directly; random access binary-searches the
// prefix sums.

#ifndef HYDRA_HYDRA_TUPLE_GENERATOR_H_
#define HYDRA_HYDRA_TUPLE_GENERATOR_H_

#include <string>

#include "common/status.h"
#include "engine/table.h"
#include "hydra/summary.h"

namespace hydra {

class TupleGenerator : public TableSource {
 public:
  // `summary` must outlive the generator.
  explicit TupleGenerator(const DatabaseSummary& summary);

  // On-the-fly generation in PK order (no materialized storage touched).
  void Scan(int relation,
            const std::function<void(const Row&)>& fn) const override;
  uint64_t RowCount(int relation) const override;

  // Batched generation in PK order: invokes `fn` with contiguous row-major
  // blocks of up to `block_rows` rows (width = the relation's attribute
  // count). Block boundaries are an implementation detail; concatenating
  // the blocks yields exactly the Scan() sequence. Used by the
  // materialization paths to write in blocks instead of per row.
  void ScanBlocks(int relation, int64_t block_rows,
                  const std::function<void(const Value*, int64_t)>& fn) const;

  // Random access: fills `out` with the tuple whose PK is `r`.
  void GetTuple(int relation, int64_t r, Row* out) const;

 private:
  // Writes the non-key values of summary row `summary_row` into `out`
  // (which must already be sized) and sets the PK to `pk`.
  void FillRow(int relation, int summary_row, int64_t pk, Row* out) const;

  const DatabaseSummary& summary_;
  // Per-relation invariants hoisted out of the per-tuple paths.
  std::vector<int> pk_attr_;
  std::vector<std::vector<int>> uncovered_attrs_;
};

// Materializes the summary into an in-memory database (the "static
// generation" option of Section 5).
StatusOr<Database> MaterializeDatabase(const DatabaseSummary& summary);

// Streams every relation to disk as `<dir>/<relation>.tbl` in the binary
// format of storage/disk_table.h. Returns total bytes written.
StatusOr<uint64_t> MaterializeToDisk(const DatabaseSummary& summary,
                                     const std::string& dir);

}  // namespace hydra

#endif  // HYDRA_HYDRA_TUPLE_GENERATOR_H_
