// Tuple Generator (Section 6): generates relation tuples on demand from the
// database summary, replacing the scan operator of the engine under test
// (the paper's PostgreSQL `datagen` feature).
//
// The r-th tuple of relation R has PK value r; its remaining attributes come
// from the summary row whose cumulative NumTuples range covers r. Sequential
// scans walk the summary rows directly; random access binary-searches the
// prefix sums. Because PK values are implicit ranks, the PK space of every
// relation shards trivially into independently generatable, offset-
// addressable ranges — the Range entry points below start mid-stream via the
// same binary search, and the materialization paths fan shards out across a
// thread pool (docs/generation.md).

#ifndef HYDRA_HYDRA_TUPLE_GENERATOR_H_
#define HYDRA_HYDRA_TUPLE_GENERATOR_H_

#include <string>

#include "common/cancel.h"
#include "common/status.h"
#include "engine/table.h"
#include "hydra/summary.h"

namespace hydra {

// Options for the generation pipeline (MaterializeDatabase /
// MaterializeToDisk and range-partitioned scans built on them).
struct GenerationOptions {
  // Worker threads for sharded materialization. 0 = one per hardware
  // thread; 1 = sequential. The produced database / .tbl files are
  // byte-identical regardless of the setting — every shard owns a disjoint
  // rank range whose storage offset is fixed by the rank→offset map.
  int num_threads = 0;
  // Rows per generation block handed from ScanBlocksRange to the writer.
  int64_t block_rows = 512;
  // Rows per shard: the unit of parallel work. One relation is split into
  // ceil(rows / shard_rows) independently generated shards.
  int64_t shard_rows = 1 << 18;
};

class TupleGenerator : public TableSource {
 public:
  // `summary` must outlive the generator.
  explicit TupleGenerator(const DatabaseSummary& summary);

  // On-the-fly generation in PK order (no materialized storage touched).
  // All scan entry points are const and share no mutable state, so disjoint
  // ranges may be generated concurrently on one generator.
  void Scan(int relation,
            const std::function<void(const Row&)>& fn) const override;
  void ScanRange(int relation, int64_t begin, int64_t end,
                 const std::function<void(const Row&)>& fn) const override;
  uint64_t RowCount(int relation) const override;
  // Columnar generation of the rank range [begin, end), appended to `out`
  // (already Reset to the relation's width). All tuples of a summary run
  // share their attribute values, so each run is a per-column constant splat
  // plus an iota run for the PK — no row-major intermediate at all. Emits
  // exactly the ScanRange() rows.
  void FillBlockRange(int relation, int64_t begin, int64_t end,
                      RowBlock* out) const override;

  // Batched generation in PK order: invokes `fn` with contiguous row-major
  // blocks of up to `block_rows` rows (width = the relation's attribute
  // count). Block boundaries are an implementation detail; concatenating
  // the blocks yields exactly the Scan() sequence. Used by the
  // materialization paths to write in blocks instead of per row.
  void ScanBlocks(int relation, int64_t block_rows,
                  const std::function<void(const Value*, int64_t)>& fn) const;
  // Batched generation of the rank range [begin, end): starts block
  // generation at an arbitrary rank via the prefix_counts binary search.
  // Concatenating the blocks over any split of [0, RowCount) yields exactly
  // the ScanBlocks() sequence of rows.
  void ScanBlocksRange(
      int relation, int64_t begin, int64_t end, int64_t block_rows,
      const std::function<void(const Value*, int64_t)>& fn) const;
  // Generates the rank range [begin, end) straight into `dst`, which must
  // hold (end - begin) * num_attributes Values. Single pass, no callback or
  // intermediate block: the fastest path when the destination storage is
  // preallocated (in-memory materialization shards).
  void FillRange(int relation, int64_t begin, int64_t end, Value* dst) const;

  // Random access: fills `out` with the tuple whose PK is `r`.
  void GetTuple(int relation, int64_t r, Row* out) const;

  // Resumable streaming cursor over one relation's rank space — the serving
  // layer's unit of dynamic regeneration (docs/serve.md). Fill() emits the
  // next bounded run of rows and advances; position() is the rank of the
  // next unemitted row, so a cursor rebuilt over a freshly reloaded copy of
  // the same summary and Seek()ed to that rank continues the stream
  // byte-identically. Within a cursor's lifetime the covering summary row
  // is carried across Fill() calls, so only Seek() pays a binary search.
  // The generator must outlive the cursor.
  class Cursor {
   public:
    Cursor(const TupleGenerator& generator, int relation, int64_t begin = 0);

    // Rank of the next row Fill() would emit.
    int64_t position() const { return next_; }
    int64_t total_rows() const { return total_; }
    bool done() const { return next_ >= total_; }

    // Re-anchors the cursor at `rank` (0 <= rank <= total_rows()).
    void Seek(int64_t rank);

    // Generates up to `max_rows` rows into `dst` (which must hold
    // max_rows * num_attributes Values, row-major) and advances. Returns
    // the number of rows written; 0 exactly at end of stream. With a
    // cancel scope set, a tripped scope stops the fill at the next summary
    // run boundary — a shorter (possibly empty) prefix, position() still
    // exact, so a resumed or retried fill continues byte-identically.
    int64_t Fill(int64_t max_rows, Value* dst);

    // Columnar variant of Fill(): appends up to `max_rows` rows to `out`
    // (already Reset to the relation's width) as per-column constant splats
    // and PK iota runs, and advances. Same return value, cancellation, and
    // resumption contract as Fill(); the emitted row stream is identical.
    int64_t FillBlock(int64_t max_rows, RowBlock* out);

    // Failure domain: non-owning; the scope must stay alive across Fill().
    // Null (the default) disables polling entirely.
    void set_cancel(const CancelScope* cancel) { cancel_ = cancel; }

   private:
    const TupleGenerator* generator_;
    int relation_;
    int64_t total_;
    int64_t next_ = 0;     // rank of the next row to emit
    int summary_row_ = 0;  // index of the summary row covering next_
    Row row_buf_;          // current summary row's values (PK rewritten)
    const CancelScope* cancel_ = nullptr;
  };

 private:
  // Writes the non-key values of summary row `summary_row` into `out`
  // (which must already be sized) and sets the PK to `pk`.
  void FillRow(int relation, int summary_row, int64_t pk, Row* out) const;

  // The one copy of the resume-at-rank arithmetic: walks the summary rows
  // covering [begin, end) and invokes fn(summary_row, pk_begin, pk_end) for
  // each non-empty stretch, in rank order. Zero-count summary rows are
  // skipped. Both Scan*Range variants layer row/block emission on top.
  void ForEachSummaryRun(
      int relation, int64_t begin, int64_t end,
      const std::function<void(int, int64_t, int64_t)>& fn) const;

  const DatabaseSummary& summary_;
  // Per-relation invariants hoisted out of the per-tuple paths.
  std::vector<int> pk_attr_;
  std::vector<std::vector<int>> uncovered_attrs_;
};

// Materializes the summary into an in-memory database (the "static
// generation" option of Section 5). With options.num_threads != 1 the
// relations' rank ranges are filled concurrently into preallocated storage.
StatusOr<Database> MaterializeDatabase(const DatabaseSummary& summary,
                                       const GenerationOptions& options = {});

// Streams every relation to disk as `<dir>/<relation>.tbl` in the binary
// format of storage/disk_table.h. Returns total bytes written. With
// options.num_threads != 1 each relation's shards are generated and written
// concurrently at their fixed byte offsets into a single .tbl file.
StatusOr<uint64_t> MaterializeToDisk(const DatabaseSummary& summary,
                                     const std::string& dir,
                                     const GenerationOptions& options = {});

}  // namespace hydra

#endif  // HYDRA_HYDRA_TUPLE_GENERATOR_H_
