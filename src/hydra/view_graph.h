// View-graph decomposition (Section 3.2): nodes are view columns, edges join
// columns that co-occur in a cardinality constraint. The graph is made
// chordal (min-fill heuristic elimination), its maximal cliques become the
// *sub-views*, and a clique tree (maximum-weight spanning tree over separator
// sizes) provides a merge order with the running-intersection property — the
// paper's greedy sub-view ordering condition (Section 5.1.1).

#ifndef HYDRA_HYDRA_VIEW_GRAPH_H_
#define HYDRA_HYDRA_VIEW_GRAPH_H_

#include <vector>

#include "hydra/preprocessor.h"

namespace hydra {

// One maximal clique of the chordal view-graph.
struct SubView {
  // View column indices, sorted ascending.
  std::vector<int> columns;
  // Index of the parent sub-view in the clique tree; -1 for the root.
  int parent = -1;
  // columns ∩ parent's columns (sorted); empty for the root.
  std::vector<int> separator;
};

// Decomposes a view with `num_columns` columns under `constraints` into
// sub-views. Only columns mentioned by at least one constraint participate;
// unmentioned columns are unconstrained and handled downstream by
// left-boundary instantiation. Sub-views are returned in clique-tree BFS
// order (parents before children), so merging them left-to-right satisfies
// the running-intersection property.
std::vector<SubView> DecomposeView(
    int num_columns, const std::vector<ViewConstraint>& constraints);

}  // namespace hydra

#endif  // HYDRA_HYDRA_VIEW_GRAPH_H_
