#include "hydra/tuple_generator.h"

#include "common/logging.h"
#include "storage/disk_table.h"

namespace hydra {

TupleGenerator::TupleGenerator(const DatabaseSummary& summary)
    : summary_(summary) {
  for (const RelationSummary& rs : summary_.relations) {
    HYDRA_CHECK_MSG(!rs.rows.empty() == !rs.prefix_counts.empty() &&
                        rs.prefix_counts.size() == rs.rows.size(),
                    "relation summary not finalized");
  }
}

uint64_t TupleGenerator::RowCount(int relation) const {
  return static_cast<uint64_t>(summary_.relations[relation].TotalCount());
}

void TupleGenerator::FillRow(int relation, int summary_row, int64_t pk,
                             Row* out) const {
  const RelationSummary& rs = summary_.relations[relation];
  const Relation& rel = summary_.schema.relation(relation);
  const int pk_attr = rel.PrimaryKeyIndex();
  const SolutionRow& srow = rs.rows[summary_row];
  for (size_t i = 0; i < rs.attr_indices.size(); ++i) {
    (*out)[rs.attr_indices[i]] = srow.values[i];
  }
  if (pk_attr >= 0) (*out)[pk_attr] = pk;
}

void TupleGenerator::Scan(int relation,
                          const std::function<void(const Row&)>& fn) const {
  const RelationSummary& rs = summary_.relations[relation];
  const Relation& rel = summary_.schema.relation(relation);
  Row row(rel.num_attributes(), 0);
  int64_t pk = 0;
  for (size_t i = 0; i < rs.rows.size(); ++i) {
    FillRow(relation, static_cast<int>(i), pk, &row);
    const int pk_attr = rel.PrimaryKeyIndex();
    for (int64_t k = 0; k < rs.rows[i].count; ++k) {
      if (pk_attr >= 0) row[pk_attr] = pk;
      fn(row);
      ++pk;
    }
  }
}

void TupleGenerator::GetTuple(int relation, int64_t r, Row* out) const {
  const RelationSummary& rs = summary_.relations[relation];
  HYDRA_CHECK_MSG(r >= 0 && r < rs.TotalCount(),
                  "tuple index " << r << " out of range for relation "
                                 << summary_.schema.relation(relation).name());
  out->assign(summary_.schema.relation(relation).num_attributes(), 0);
  FillRow(relation, rs.RowIndexForTuple(r), r, out);
}

StatusOr<Database> MaterializeDatabase(const DatabaseSummary& summary) {
  Database db(summary.schema);
  TupleGenerator gen(summary);
  for (int r = 0; r < summary.schema.num_relations(); ++r) {
    Table& table = db.table(r);
    table.Reserve(gen.RowCount(r));
    gen.Scan(r, [&](const Row& row) { table.AppendRow(row); });
  }
  return db;
}

StatusOr<uint64_t> MaterializeToDisk(const DatabaseSummary& summary,
                                     const std::string& dir) {
  TupleGenerator gen(summary);
  uint64_t total_bytes = 0;
  for (int r = 0; r < summary.schema.num_relations(); ++r) {
    const Relation& rel = summary.schema.relation(r);
    const std::string path = dir + "/" + rel.name() + ".tbl";
    DiskTableWriter writer(path, rel.num_attributes());
    HYDRA_RETURN_IF_ERROR(writer.Open());
    Status append_status = Status::OK();
    gen.Scan(r, [&](const Row& row) {
      if (append_status.ok()) append_status = writer.Append(row);
    });
    HYDRA_RETURN_IF_ERROR(append_status);
    HYDRA_RETURN_IF_ERROR(writer.Close());
    HYDRA_ASSIGN_OR_RETURN(const uint64_t bytes, DiskTableBytes(path));
    total_bytes += bytes;
  }
  return total_bytes;
}

}  // namespace hydra
