#include "hydra/tuple_generator.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "storage/disk_table.h"

namespace hydra {

TupleGenerator::TupleGenerator(const DatabaseSummary& summary)
    : summary_(summary) {
  const int num_relations = static_cast<int>(summary_.relations.size());
  pk_attr_.resize(num_relations);
  uncovered_attrs_.resize(num_relations);
  for (int r = 0; r < num_relations; ++r) {
    const RelationSummary& rs = summary_.relations[r];
    HYDRA_CHECK_MSG(!rs.rows.empty() == !rs.prefix_counts.empty() &&
                        rs.prefix_counts.size() == rs.rows.size(),
                    "relation summary not finalized");
    const Relation& rel = summary_.schema.relation(r);
    pk_attr_[r] = rel.PrimaryKeyIndex();
    // Attributes neither produced by the summary nor the PK default to 0;
    // they are zeroed once per output buffer instead of once per tuple.
    std::vector<char> covered(rel.num_attributes(), 0);
    for (int a : rs.attr_indices) covered[a] = 1;
    if (pk_attr_[r] >= 0) covered[pk_attr_[r]] = 1;
    for (int a = 0; a < rel.num_attributes(); ++a) {
      if (!covered[a]) uncovered_attrs_[r].push_back(a);
    }
  }
}

uint64_t TupleGenerator::RowCount(int relation) const {
  return static_cast<uint64_t>(summary_.relations[relation].TotalCount());
}

void TupleGenerator::FillRow(int relation, int summary_row, int64_t pk,
                             Row* out) const {
  const RelationSummary& rs = summary_.relations[relation];
  const SolutionRow& srow = rs.rows[summary_row];
  for (size_t i = 0; i < rs.attr_indices.size(); ++i) {
    (*out)[rs.attr_indices[i]] = srow.values[i];
  }
  const int pk_attr = pk_attr_[relation];
  if (pk_attr >= 0) (*out)[pk_attr] = pk;
}

void TupleGenerator::Scan(int relation,
                          const std::function<void(const Row&)>& fn) const {
  const RelationSummary& rs = summary_.relations[relation];
  const Relation& rel = summary_.schema.relation(relation);
  const int pk_attr = pk_attr_[relation];
  Row row(rel.num_attributes(), 0);
  int64_t pk = 0;
  for (size_t i = 0; i < rs.rows.size(); ++i) {
    // All tuples of a summary row share its attribute values: fill once,
    // then only rewrite the PK in the inner loop.
    FillRow(relation, static_cast<int>(i), pk, &row);
    for (int64_t k = 0; k < rs.rows[i].count; ++k) {
      if (pk_attr >= 0) row[pk_attr] = pk;
      fn(row);
      ++pk;
    }
  }
}

void TupleGenerator::ScanBlocks(
    int relation, int64_t block_rows,
    const std::function<void(const Value*, int64_t)>& fn) const {
  HYDRA_CHECK_MSG(block_rows > 0, "block_rows must be positive");
  const RelationSummary& rs = summary_.relations[relation];
  const Relation& rel = summary_.schema.relation(relation);
  const int width = rel.num_attributes();
  const int pk_attr = pk_attr_[relation];
  Row row(width, 0);
  std::vector<Value> block(static_cast<size_t>(block_rows) * width);
  int64_t filled = 0;
  int64_t pk = 0;
  for (size_t i = 0; i < rs.rows.size(); ++i) {
    FillRow(relation, static_cast<int>(i), pk, &row);
    for (int64_t k = 0; k < rs.rows[i].count; ++k) {
      if (pk_attr >= 0) row[pk_attr] = pk;
      std::memcpy(block.data() + filled * width, row.data(),
                  sizeof(Value) * width);
      ++pk;
      if (++filled == block_rows) {
        fn(block.data(), filled);
        filled = 0;
      }
    }
  }
  if (filled > 0) fn(block.data(), filled);
}

void TupleGenerator::GetTuple(int relation, int64_t r, Row* out) const {
  const RelationSummary& rs = summary_.relations[relation];
  HYDRA_CHECK_MSG(r >= 0 && r < rs.TotalCount(),
                  "tuple index " << r << " out of range for relation "
                                 << summary_.schema.relation(relation).name());
  const int width = summary_.schema.relation(relation).num_attributes();
  // FillRow covers every summary attribute and the PK; only attributes the
  // summary never mentions need zeroing, so repeated calls reusing one
  // buffer skip the full per-call reassignment.
  if (static_cast<int>(out->size()) != width) {
    out->assign(width, 0);
  } else {
    for (int a : uncovered_attrs_[relation]) (*out)[a] = 0;
  }
  FillRow(relation, rs.RowIndexForTuple(r), r, out);
}

namespace {

// Rows per materialization block: large enough to amortize per-call work,
// small enough to stay cache-resident (64 KiB of Values at 16 columns).
constexpr int64_t kMaterializeBlockRows = 512;

}  // namespace

StatusOr<Database> MaterializeDatabase(const DatabaseSummary& summary) {
  Database db(summary.schema);
  TupleGenerator gen(summary);
  for (int r = 0; r < summary.schema.num_relations(); ++r) {
    Table& table = db.table(r);
    table.Reserve(gen.RowCount(r));
    gen.ScanBlocks(r, kMaterializeBlockRows,
                   [&](const Value* rows, int64_t n) {
                     table.AppendBlock(rows, n);
                   });
  }
  return db;
}

StatusOr<uint64_t> MaterializeToDisk(const DatabaseSummary& summary,
                                     const std::string& dir) {
  TupleGenerator gen(summary);
  uint64_t total_bytes = 0;
  for (int r = 0; r < summary.schema.num_relations(); ++r) {
    const Relation& rel = summary.schema.relation(r);
    const std::string path = dir + "/" + rel.name() + ".tbl";
    DiskTableWriter writer(path, rel.num_attributes());
    HYDRA_RETURN_IF_ERROR(writer.Open());
    Status append_status = Status::OK();
    gen.ScanBlocks(r, kMaterializeBlockRows,
                   [&](const Value* rows, int64_t n) {
                     if (append_status.ok()) {
                       append_status = writer.AppendBlock(rows, n);
                     }
                   });
    HYDRA_RETURN_IF_ERROR(append_status);
    HYDRA_RETURN_IF_ERROR(writer.Close());
    HYDRA_ASSIGN_OR_RETURN(const uint64_t bytes, DiskTableBytes(path));
    total_bytes += bytes;
  }
  return total_bytes;
}

}  // namespace hydra
