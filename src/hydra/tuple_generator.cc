#include "hydra/tuple_generator.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "engine/kernels.h"
#include "storage/disk_table.h"

namespace hydra {

// One columnar generation pass (cursor morsel or shared-chunk fill) — the
// serving data plane's unit of work.
HYDRA_METRIC_HISTOGRAM(g_gen_fill_us, "gen/fill_us");

TupleGenerator::TupleGenerator(const DatabaseSummary& summary)
    : summary_(summary) {
  const int num_relations = static_cast<int>(summary_.relations.size());
  pk_attr_.resize(num_relations);
  uncovered_attrs_.resize(num_relations);
  for (int r = 0; r < num_relations; ++r) {
    const RelationSummary& rs = summary_.relations[r];
    HYDRA_CHECK_MSG(!rs.rows.empty() == !rs.prefix_counts.empty() &&
                        rs.prefix_counts.size() == rs.rows.size(),
                    "relation summary not finalized");
    const Relation& rel = summary_.schema.relation(r);
    pk_attr_[r] = rel.PrimaryKeyIndex();
    // Attributes neither produced by the summary nor the PK default to 0;
    // they are zeroed once per output buffer instead of once per tuple.
    std::vector<char> covered(rel.num_attributes(), 0);
    for (int a : rs.attr_indices) covered[a] = 1;
    if (pk_attr_[r] >= 0) covered[pk_attr_[r]] = 1;
    for (int a = 0; a < rel.num_attributes(); ++a) {
      if (!covered[a]) uncovered_attrs_[r].push_back(a);
    }
  }
}

uint64_t TupleGenerator::RowCount(int relation) const {
  return static_cast<uint64_t>(summary_.relations[relation].TotalCount());
}

void TupleGenerator::FillRow(int relation, int summary_row, int64_t pk,
                             Row* out) const {
  const RelationSummary& rs = summary_.relations[relation];
  const SolutionRow& srow = rs.rows[summary_row];
  for (size_t i = 0; i < rs.attr_indices.size(); ++i) {
    (*out)[rs.attr_indices[i]] = srow.values[i];
  }
  const int pk_attr = pk_attr_[relation];
  if (pk_attr >= 0) (*out)[pk_attr] = pk;
}

void TupleGenerator::Scan(int relation,
                          const std::function<void(const Row&)>& fn) const {
  ScanRange(relation, 0, summary_.relations[relation].TotalCount(), fn);
}

void TupleGenerator::ForEachSummaryRun(
    int relation, int64_t begin, int64_t end,
    const std::function<void(int, int64_t, int64_t)>& fn) const {
  const RelationSummary& rs = summary_.relations[relation];
  HYDRA_CHECK_MSG(begin >= 0 && begin <= end && end <= rs.TotalCount(),
                  "scan range [" << begin << ", " << end
                                 << ") out of bounds for relation "
                                 << summary_.schema.relation(relation).name());
  if (begin == end) return;
  int64_t pk = begin;
  for (int i = rs.RowIndexForTuple(begin); pk < end; ++i) {
    const int64_t stop = std::min(end, rs.prefix_counts[i] + rs.rows[i].count);
    if (stop > pk) {
      fn(i, pk, stop);
      pk = stop;
    }
  }
}

void TupleGenerator::ScanRange(
    int relation, int64_t begin, int64_t end,
    const std::function<void(const Row&)>& fn) const {
  const Relation& rel = summary_.schema.relation(relation);
  const int pk_attr = pk_attr_[relation];
  Row row(rel.num_attributes(), 0);
  ForEachSummaryRun(
      relation, begin, end, [&](int i, int64_t pk, int64_t stop) {
        // All tuples of a summary row share its attribute values: fill
        // once, then only rewrite the PK in the inner loop.
        FillRow(relation, i, pk, &row);
        for (; pk < stop; ++pk) {
          if (pk_attr >= 0) row[pk_attr] = pk;
          fn(row);
        }
      });
}

void TupleGenerator::ScanBlocks(
    int relation, int64_t block_rows,
    const std::function<void(const Value*, int64_t)>& fn) const {
  ScanBlocksRange(relation, 0, summary_.relations[relation].TotalCount(),
                  block_rows, fn);
}

void TupleGenerator::ScanBlocksRange(
    int relation, int64_t begin, int64_t end, int64_t block_rows,
    const std::function<void(const Value*, int64_t)>& fn) const {
  HYDRA_CHECK_MSG(block_rows > 0, "block_rows must be positive");
  const Relation& rel = summary_.schema.relation(relation);
  const int width = rel.num_attributes();
  const int pk_attr = pk_attr_[relation];
  Row row(width, 0);
  std::vector<Value> block(static_cast<size_t>(block_rows) * width);
  int64_t filled = 0;  // carries across summary runs
  ForEachSummaryRun(
      relation, begin, end, [&](int i, int64_t pk, int64_t stop) {
        FillRow(relation, i, pk, &row);
        for (; pk < stop; ++pk) {
          if (pk_attr >= 0) row[pk_attr] = pk;
          std::memcpy(block.data() + filled * width, row.data(),
                      sizeof(Value) * width);
          if (++filled == block_rows) {
            fn(block.data(), filled);
            filled = 0;
          }
        }
      });
  if (filled > 0) fn(block.data(), filled);
}

void TupleGenerator::FillRange(int relation, int64_t begin, int64_t end,
                               Value* dst) const {
  const Relation& rel = summary_.schema.relation(relation);
  const int width = rel.num_attributes();
  const int pk_attr = pk_attr_[relation];
  Row row(width, 0);
  ForEachSummaryRun(
      relation, begin, end, [&](int i, int64_t pk, int64_t stop) {
        FillRow(relation, i, pk, &row);
        for (; pk < stop; ++pk) {
          if (pk_attr >= 0) row[pk_attr] = pk;
          std::memcpy(dst, row.data(), sizeof(Value) * width);
          dst += width;
        }
      });
}

void TupleGenerator::FillBlockRange(int relation, int64_t begin, int64_t end,
                                    RowBlock* out) const {
  ScopedLatencyTimer timer(&g_gen_fill_us);
  const RelationSummary& rs = summary_.relations[relation];
  const int pk_attr = pk_attr_[relation];
  const int64_t base = out->num_rows();
  out->ResizeUninitialized(base + (end - begin));
  int64_t offset = base;
  ForEachSummaryRun(
      relation, begin, end, [&](int i, int64_t pk, int64_t stop) {
        // One summary run = one constant splat per summary attribute, an
        // iota run for the PK (splatted attributes the PK shadows are
        // overwritten, mirroring FillRow), and zeros for uncovered columns.
        const SolutionRow& srow = rs.rows[i];
        const int64_t n = stop - pk;
        for (size_t a = 0; a < rs.attr_indices.size(); ++a) {
          kernels::FillConst(out->MutableColumn(rs.attr_indices[a]) + offset,
                             n, srow.values[a]);
        }
        if (pk_attr >= 0) {
          kernels::FillIota(out->MutableColumn(pk_attr) + offset, n, pk);
        }
        for (int a : uncovered_attrs_[relation]) {
          kernels::FillConst(out->MutableColumn(a) + offset, n, 0);
        }
        offset += n;
      });
}

void TupleGenerator::GetTuple(int relation, int64_t r, Row* out) const {
  const RelationSummary& rs = summary_.relations[relation];
  HYDRA_CHECK_MSG(r >= 0 && r < rs.TotalCount(),
                  "tuple index " << r << " out of range for relation "
                                 << summary_.schema.relation(relation).name());
  const int width = summary_.schema.relation(relation).num_attributes();
  // FillRow covers every summary attribute and the PK; only attributes the
  // summary never mentions need zeroing, so repeated calls reusing one
  // buffer skip the full per-call reassignment.
  if (static_cast<int>(out->size()) != width) {
    out->assign(width, 0);
  } else {
    for (int a : uncovered_attrs_[relation]) (*out)[a] = 0;
  }
  FillRow(relation, rs.RowIndexForTuple(r), r, out);
}

TupleGenerator::Cursor::Cursor(const TupleGenerator& generator, int relation,
                               int64_t begin)
    : generator_(&generator),
      relation_(relation),
      total_(generator.summary_.relations[relation].TotalCount()) {
  row_buf_.assign(
      generator_->summary_.schema.relation(relation_).num_attributes(), 0);
  Seek(begin);
}

void TupleGenerator::Cursor::Seek(int64_t rank) {
  HYDRA_CHECK_MSG(rank >= 0 && rank <= total_,
                  "cursor seek to " << rank << " outside [0, " << total_
                                    << "]");
  next_ = rank;
  const RelationSummary& rs = generator_->summary_.relations[relation_];
  summary_row_ = rank < total_ ? rs.RowIndexForTuple(rank)
                               : static_cast<int>(rs.rows.size());
}

int64_t TupleGenerator::Cursor::Fill(int64_t max_rows, Value* dst) {
  const RelationSummary& rs = generator_->summary_.relations[relation_];
  const int width = static_cast<int>(row_buf_.size());
  const int pk_attr = generator_->pk_attr_[relation_];
  const int64_t end = std::min(total_, next_ + std::max<int64_t>(0, max_rows));
  int64_t written = 0;
  while (next_ < end) {
    // Poll at run boundaries, not per row: runs are the natural quantum
    // (one summary row's stretch), so the check cost stays negligible.
    if (cancel_ != nullptr && cancel_->cancelled()) break;
    // Skip summary rows exhausted by previous fills (zero-count rows too).
    while (rs.prefix_counts[summary_row_] + rs.rows[summary_row_].count <=
           next_) {
      ++summary_row_;
    }
    const int64_t stop = std::min(
        end, rs.prefix_counts[summary_row_] + rs.rows[summary_row_].count);
    generator_->FillRow(relation_, summary_row_, next_, &row_buf_);
    for (; next_ < stop; ++next_, ++written) {
      if (pk_attr >= 0) row_buf_[pk_attr] = next_;
      std::memcpy(dst + written * width, row_buf_.data(),
                  sizeof(Value) * width);
    }
  }
  return written;
}

int64_t TupleGenerator::Cursor::FillBlock(int64_t max_rows, RowBlock* out) {
  ScopedLatencyTimer timer(&g_gen_fill_us);
  const RelationSummary& rs = generator_->summary_.relations[relation_];
  const int pk_attr = generator_->pk_attr_[relation_];
  const int64_t end = std::min(total_, next_ + std::max<int64_t>(0, max_rows));
  const int64_t base = out->num_rows();
  out->ResizeUninitialized(base + (end - next_));
  int64_t written = 0;
  while (next_ < end) {
    // Same run-boundary cancellation quantum as Fill().
    if (cancel_ != nullptr && cancel_->cancelled()) break;
    while (rs.prefix_counts[summary_row_] + rs.rows[summary_row_].count <=
           next_) {
      ++summary_row_;
    }
    const int64_t stop = std::min(
        end, rs.prefix_counts[summary_row_] + rs.rows[summary_row_].count);
    const SolutionRow& srow = rs.rows[summary_row_];
    const int64_t n = stop - next_;
    const int64_t offset = base + written;
    for (size_t a = 0; a < rs.attr_indices.size(); ++a) {
      kernels::FillConst(out->MutableColumn(rs.attr_indices[a]) + offset, n,
                         srow.values[a]);
    }
    if (pk_attr >= 0) {
      kernels::FillIota(out->MutableColumn(pk_attr) + offset, n, next_);
    }
    for (int a : generator_->uncovered_attrs_[relation_]) {
      kernels::FillConst(out->MutableColumn(a) + offset, n, 0);
    }
    next_ = stop;
    written += n;
  }
  out->Truncate(base + written);  // cancelled mid-grant: drop the unwritten tail
  return written;
}

namespace {

// One unit of parallel materialization work: the rank range [begin, end) of
// one relation.
struct Shard {
  int relation;
  int64_t begin;
  int64_t end;
};

// Splits every relation of `summary` into shards of at most
// `options.shard_rows` rows, in (relation, rank) order.
std::vector<Shard> PlanShards(const DatabaseSummary& summary,
                              const GenerationOptions& options) {
  HYDRA_CHECK_MSG(options.shard_rows > 0, "shard_rows must be positive");
  std::vector<Shard> shards;
  for (int r = 0; r < summary.schema.num_relations(); ++r) {
    const int64_t rows = summary.relations[r].TotalCount();
    for (int64_t b = 0; b < rows; b += options.shard_rows) {
      shards.push_back({r, b, std::min(rows, b + options.shard_rows)});
    }
  }
  return shards;
}

int ResolveThreads(const GenerationOptions& options, size_t num_shards) {
  const int threads = options.num_threads == 0 ? ThreadPool::DefaultThreads()
                                               : options.num_threads;
  return std::max(1, std::min<int>(threads, static_cast<int>(num_shards)));
}

}  // namespace

StatusOr<Database> MaterializeDatabase(const DatabaseSummary& summary,
                                       const GenerationOptions& options) {
  Database db(summary.schema);
  const TupleGenerator gen(summary);
  for (int r = 0; r < summary.schema.num_relations(); ++r) {
    // The zero-fill is redundant (every cell is memcpy'd by a shard below)
    // but keeps Table on a plain std::vector; at current scales the extra
    // pass is noise next to generation cost. Revisit with a default-init
    // allocator if multi-GB in-memory materialization becomes a target.
    db.table(r).ResizeRows(gen.RowCount(r));
  }
  const std::vector<Shard> shards = PlanShards(summary, options);
  ThreadPool pool(ResolveThreads(options, shards.size()));
  ParallelFor(pool, static_cast<int>(shards.size()), [&](int i) {
    const Shard& s = shards[i];
    gen.FillRange(s.relation, s.begin, s.end,
                  db.table(s.relation).MutableRowPtr(s.begin));
  });
  return db;
}

StatusOr<uint64_t> MaterializeToDisk(const DatabaseSummary& summary,
                                     const std::string& dir,
                                     const GenerationOptions& options) {
  const TupleGenerator gen(summary);
  const Schema& schema = summary.schema;
  std::vector<std::string> paths(schema.num_relations());
  for (int r = 0; r < schema.num_relations(); ++r) {
    const Relation& rel = schema.relation(r);
    paths[r] = dir + "/" + rel.name() + ".tbl";
    HYDRA_RETURN_IF_ERROR(
        PreallocateDiskTable(paths[r], rel.num_attributes()));
  }
  // One flat shard list across all relations keeps every worker busy even
  // when a single relation dominates the row count.
  const std::vector<Shard> shards = PlanShards(summary, options);
  ThreadPool pool(ResolveThreads(options, shards.size()));
  std::vector<Status> statuses(shards.size(), Status::OK());
  // One failed shard (disk full, deleted file) aborts the fleet: shards not
  // yet started bail before generating their ranges. An in-flight shard
  // still finishes generating its (shard_rows-bounded) range — its callback
  // just stops writing — which keeps ScanBlocksRange abort-free.
  std::atomic<bool> failed{false};
  ParallelFor(pool, static_cast<int>(shards.size()), [&](int i) {
    if (failed.load(std::memory_order_relaxed)) return;
    const Shard& s = shards[i];
    DiskTableWriter writer(paths[s.relation],
                           schema.relation(s.relation).num_attributes());
    Status status = writer.OpenShard(s.begin);
    if (status.ok()) {
      gen.ScanBlocksRange(s.relation, s.begin, s.end, options.block_rows,
                          [&](const Value* rows, int64_t n) {
                            if (status.ok()) {
                              status = writer.AppendBlock(rows, n);
                            }
                          });
      const Status close_status = writer.Close();
      if (status.ok()) status = close_status;
    }
    if (!status.ok()) {
      statuses[i] = status;
      failed.store(true, std::memory_order_relaxed);
    }
  });
  for (const Status& s : statuses) HYDRA_RETURN_IF_ERROR(s);
  // Every shard landed: only now stamp the real row counts, so a crashed or
  // failed run leaves files that scan as empty instead of as tables whose
  // unwritten holes read back as rows of zeros.
  uint64_t total_bytes = 0;
  for (int r = 0; r < schema.num_relations(); ++r) {
    HYDRA_RETURN_IF_ERROR(FinalizeDiskTable(
        paths[r], schema.relation(r).num_attributes(), gen.RowCount(r)));
    HYDRA_ASSIGN_OR_RETURN(const uint64_t bytes, DiskTableBytes(paths[r]));
    total_bytes += bytes;
  }
  return total_bytes;
}

}  // namespace hydra
