// Summary Generator (Section 5): turns solved view LPs into the database
// summary through four deterministic, data-scale-free steps:
//   (1) per view, order sub-view solutions along the clique tree and
//       align-and-merge them into a complete view solution (Section 5.1),
//   (2) instantiate every region at its left boundary (Section 5.2),
//   (3) make views consistent with the views they borrow attributes from,
//       adding count-1 rows where a combination is missing (Section 5.3),
//   (4) extract relation summaries, resolving each foreign key to the PK of
//       the first tuple carrying the referenced combination (Section 5.4).
//
// Unlike DataSynth's sampling-based instantiation, every step here operates
// on summaries whose size depends only on the workload, never the data scale.

#ifndef HYDRA_HYDRA_SUMMARY_GENERATOR_H_
#define HYDRA_HYDRA_SUMMARY_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "hydra/formulator.h"
#include "hydra/summary.h"

namespace hydra {

class SummaryGenerator {
 public:
  explicit SummaryGenerator(const Schema& schema) : schema_(schema) {}

  // Steps (1)+(2): builds the instantiated view summary from the integer LP
  // solution (`solution[v]` is the tuple count of LP variable v).
  StatusOr<ViewSummary> BuildViewSummary(
      const View& view, const ViewLp& lp,
      const std::vector<int64_t>& solution) const;

  // Steps (3)+(4): cross-view referential repair and relation-summary
  // extraction. `views` and `view_summaries` are indexed by relation.
  StatusOr<DatabaseSummary> BuildDatabaseSummary(
      const std::vector<View>& views,
      std::vector<ViewSummary> view_summaries) const;

 private:
  const Schema& schema_;
};

}  // namespace hydra

#endif  // HYDRA_HYDRA_SUMMARY_GENERATOR_H_
