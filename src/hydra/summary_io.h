// Database-summary serialization.
//
// The summary is the artifact Hydra ships between sites (Figure 2): it must
// be writable to a compact file and reloadable on the engine under test.
// Format: a small header, the schema (relations, attributes, domains, keys),
// then per-relation summary rows. All integers little-endian fixed-width.

#ifndef HYDRA_HYDRA_SUMMARY_IO_H_
#define HYDRA_HYDRA_SUMMARY_IO_H_

#include <string>

#include "common/status.h"
#include "hydra/summary.h"

namespace hydra {

// Writes `summary` to `path`. Returns bytes written.
StatusOr<uint64_t> WriteSummary(const DatabaseSummary& summary,
                                const std::string& path);

// Reads a summary previously written by WriteSummary. Relation summaries are
// finalized (prefix sums rebuilt) and ready for TupleGenerator.
StatusOr<DatabaseSummary> ReadSummary(const std::string& path);

}  // namespace hydra

#endif  // HYDRA_HYDRA_SUMMARY_IO_H_
