// Database summary types (Sections 5, 6).
//
// A view summary holds the deterministic, instantiated solution of a view:
// rows of concrete attribute values with a NumTuples count. A relation
// summary is the per-relation projection with foreign keys resolved to
// concrete PK values; the full DatabaseSummary is the paper's minuscule
// artifact from which databases of any size are generated — its size depends
// only on the query workload, never on the data scale.

#ifndef HYDRA_HYDRA_SUMMARY_H_
#define HYDRA_HYDRA_SUMMARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"

namespace hydra {

// A group of `count` identical tuples with the given attribute values.
struct SolutionRow {
  Row values;
  int64_t count = 0;
};

// Instantiated solution of one view (values over the view's column space).
struct ViewSummary {
  int relation = -1;
  std::vector<AttrRef> columns;
  std::vector<SolutionRow> rows;

  int64_t TotalCount() const;
};

// Summarized relation R̃ (Section 5.4): every non-PK attribute of R plus a
// NumTuples count per row. PK values are implicit — the r-th generated tuple
// has PK r (Section 6).
struct RelationSummary {
  int relation = -1;
  // Relation attribute index of each summary column, in relation attribute
  // order with the PK excluded.
  std::vector<int> attr_indices;
  std::vector<SolutionRow> rows;
  // Exclusive prefix sums over row counts; entry i is the PK of the first
  // tuple produced by rows[i]. Built by Finalize().
  std::vector<int64_t> prefix_counts;

  void Finalize();
  int64_t TotalCount() const;
  // Index of the summary row that produces tuple `r` (0 <= r < TotalCount()).
  int RowIndexForTuple(int64_t r) const;

  uint64_t ByteSize() const;
};

struct DatabaseSummary {
  Schema schema;
  std::vector<RelationSummary> relations;
  // Tuples added per relation to restore referential integrity — the paper's
  // scale-independent additive error (Section 5.3, Figure 11).
  std::vector<uint64_t> extra_tuples;

  uint64_t ByteSize() const;
  uint64_t TotalExtraTuples() const;
};

}  // namespace hydra

#endif  // HYDRA_HYDRA_SUMMARY_H_
