// Preprocessor (Section 3.2, sourced from DataSynth in the paper): maps each
// relation to a *view* over non-key attributes and rewrites join-bearing
// cardinality constraints into single-view selection constraints.
//
// The view of relation R contains R's own non-key attributes plus the
// non-key attributes of every relation R references, directly or
// transitively. Because every join is PK-FK (each R row matches exactly one
// row of each referenced relation), |σ_p(R ⋈ S ⋈ ...)| equals the number of
// rows of R's view satisfying p, so a join CC becomes a plain selection CC on
// the root relation's view.

#ifndef HYDRA_HYDRA_PREPROCESSOR_H_
#define HYDRA_HYDRA_PREPROCESSOR_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "query/constraint.h"

namespace hydra {

// A view over one relation's (transitively closed) non-key attribute space.
struct View {
  int relation = -1;
  // Column i of the view is the source attribute columns[i]; R's own data
  // attributes come first, then borrowed attributes grouped by referenced
  // relation in ascending relation-index order. For any referenced relation
  // S, columns(V_S) ⊆ columns(V_R) as sets.
  std::vector<AttrRef> columns;
  std::vector<Interval> domains;  // per column
  // |R| from metadata; the LP's total-size right-hand side.
  uint64_t total_rows = 0;

  int num_columns() const { return static_cast<int>(columns.size()); }
  // Index of `ref` in `columns`, or -1.
  int ColumnOf(const AttrRef& ref) const;
};

// A CC rewritten over a view: |σ_predicate(view)| = cardinality.
struct ViewConstraint {
  DnfPredicate predicate;  // atoms index view columns
  uint64_t cardinality = 0;
  std::string label;
};

class Preprocessor {
 public:
  explicit Preprocessor(const Schema& schema) : schema_(schema) {}

  // Validates paper preconditions (DAG schema, at most one FK per target
  // relation per relation) and builds one view per relation.
  StatusOr<std::vector<View>> BuildViews() const;

  // Rewrites every CC onto the view of its root relation. Output is indexed
  // by relation: result[r] holds the constraints of views[r].
  StatusOr<std::vector<std::vector<ViewConstraint>>> MapConstraints(
      const std::vector<View>& views,
      const std::vector<CardinalityConstraint>& ccs) const;

 private:
  const Schema& schema_;
};

}  // namespace hydra

#endif  // HYDRA_HYDRA_PREPROCESSOR_H_
