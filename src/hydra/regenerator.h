// HydraRegenerator — the end-to-end public API (Figure 2's vendor site).
//
// Input: a schema (with metadata row counts) and the cardinality constraints
// extracted from the client's annotated query plans. Output: the database
// summary plus per-view diagnostics. The summary can then be materialized
// (MaterializeDatabase / MaterializeToDisk) or served dynamically through
// TupleGenerator during query execution.
//
// Typical use:
//   HydraRegenerator hydra(schema);
//   auto result = hydra.Regenerate(ccs);
//   TupleGenerator gen(result->summary);          // dynamic generation
//   auto db = MaterializeDatabase(result->summary);  // or static

#ifndef HYDRA_HYDRA_REGENERATOR_H_
#define HYDRA_HYDRA_REGENERATOR_H_

#include <cstdint>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "hydra/summary.h"
#include "hydra/tuple_generator.h"
#include "lp/simplex.h"
#include "query/constraint.h"

namespace hydra {

struct HydraOptions {
  SimplexOptions simplex;
  // Seed each view's phase I from the final basis of the previous view
  // with the same LP signature (rows, variables, nonzeros) — consecutive
  // views share most constraint structure, so the imported basis usually
  // survives validation and skips most of phase I. Views with distinct
  // signatures solve cold, and an incompatible basis falls back to the
  // cold start inside the solver. Summaries are byte-identical at any
  // num_threads either way (chains are static and solved in view order);
  // set simplex.canonicalize for summaries that are also identical across
  // warm/cold and pricing configurations.
  bool warm_start = true;
  // Extra repair passes for LP integerization.
  int integerize_passes = 8;
  // Worker threads for the per-view formulate/solve/integerize stage.
  // 0 = one per hardware thread (capped at the view count); 1 = sequential.
  // The produced summary is byte-identical regardless of the setting — each
  // view writes its own slot and reduction happens in view order.
  int num_threads = 0;
  // Options for materializing the produced summary (MaterializeDatabase /
  // MaterializeToDisk), carried here so one struct configures the whole
  // regenerate→materialize pipeline.
  GenerationOptions generation;
};

// Diagnostics for one view's pipeline stage.
struct ViewReport {
  int relation = -1;
  int num_subviews = 0;
  uint64_t lp_variables = 0;
  uint64_t lp_constraints = 0;
  int lp_iterations = 0;
  // The solver accepted a warm-start basis from a previous view.
  bool warm_started = false;
  double formulate_seconds = 0;
  double solve_seconds = 0;
  // Residual integerization error (paper Section 7.1 error tail).
  int64_t max_abs_violation = 0;
  double max_rel_violation = 0;
};

struct RegenerationResult {
  DatabaseSummary summary;
  std::vector<ViewReport> views;
  double total_seconds = 0;

  uint64_t TotalLpVariables() const;
  uint64_t MaxLpVariables() const;
};

class HydraRegenerator {
 public:
  explicit HydraRegenerator(const Schema& schema, HydraOptions options = {})
      : schema_(schema), options_(options) {}

  StatusOr<RegenerationResult> Regenerate(
      const std::vector<CardinalityConstraint>& ccs) const;

  // Convenience wrappers that materialize a produced summary with
  // options().generation, so one HydraOptions really does configure the
  // whole regenerate→materialize pipeline.
  StatusOr<Database> Materialize(const DatabaseSummary& summary) const;
  StatusOr<uint64_t> MaterializeToDisk(const DatabaseSummary& summary,
                                       const std::string& dir) const;

  const HydraOptions& options() const { return options_; }

 private:
  const Schema& schema_;
  HydraOptions options_;
};

}  // namespace hydra

#endif  // HYDRA_HYDRA_REGENERATOR_H_
