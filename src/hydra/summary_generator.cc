#include "hydra/summary_generator.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace hydra {

namespace {

// Mutable view solution accumulated by the align-and-merge loop.
struct WorkingSolution {
  std::vector<int> columns;  // view column indices, in accumulation order
  std::vector<SolutionRow> rows;
};

// Instantiates the sub-view solution: one row per region with positive count,
// at the region's left boundary (Section 5.2).
std::vector<SolutionRow> InstantiateSubView(const SubViewLp& sv,
                                            const std::vector<int64_t>& x) {
  std::vector<SolutionRow> rows;
  for (int r = 0; r < sv.partition.num_regions(); ++r) {
    const int64_t count = x[sv.first_var + r];
    if (count <= 0) continue;
    SolutionRow row;
    row.values = sv.partition.regions[r].MinPoint();
    row.count = count;
    rows.push_back(std::move(row));
  }
  return rows;
}

// Sort key for alignment: per shared column, (elementary cell index, value).
// Grouping by cell index first is what makes pairing sound — consistency
// constraints equate masses per cell, and no constraint changes truth inside
// a cell.
struct AlignKey {
  std::vector<std::pair<int64_t, Value>> parts;

  bool operator<(const AlignKey& o) const { return parts < o.parts; }
  bool operator==(const AlignKey& o) const { return parts == o.parts; }
};

AlignKey KeyOf(const SolutionRow& row, const std::vector<int>& positions,
               const std::vector<const std::vector<int64_t>*>& cuts) {
  AlignKey key;
  key.parts.reserve(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    const Value v = row.values[positions[i]];
    int64_t cell = 0;
    if (cuts[i] != nullptr) {
      cell = std::upper_bound(cuts[i]->begin(), cuts[i]->end(), v) -
             cuts[i]->begin();
    }
    key.parts.emplace_back(cell, v);
  }
  return key;
}

}  // namespace

StatusOr<ViewSummary> SummaryGenerator::BuildViewSummary(
    const View& view, const ViewLp& lp,
    const std::vector<int64_t>& solution) const {
  HYDRA_CHECK(static_cast<int>(solution.size()) == lp.problem.num_vars());

  std::map<int, const std::vector<int64_t>*> cuts_of;
  for (const auto& [col, cuts] : lp.shared_cuts) cuts_of[col] = &cuts;

  WorkingSolution work;
  for (size_t s = 0; s < lp.subviews.size(); ++s) {
    const SubViewLp& sv = lp.subviews[s];
    std::vector<SolutionRow> incoming = InstantiateSubView(sv, solution);

    if (s == 0) {
      work.columns = sv.subview.columns;
      work.rows = std::move(incoming);
      continue;
    }

    // Shared columns between the accumulated solution and this sub-view.
    std::vector<int> shared;
    std::vector<int> new_cols;
    for (int c : sv.subview.columns) {
      if (std::find(work.columns.begin(), work.columns.end(), c) !=
          work.columns.end()) {
        shared.push_back(c);
      } else {
        new_cols.push_back(c);
      }
    }

    // Positions of the shared columns in each side's row layout.
    std::vector<int> work_pos, sv_pos;
    std::vector<const std::vector<int64_t>*> cuts;
    for (int c : shared) {
      work_pos.push_back(static_cast<int>(
          std::find(work.columns.begin(), work.columns.end(), c) -
          work.columns.begin()));
      sv_pos.push_back(static_cast<int>(
          std::find(sv.subview.columns.begin(), sv.subview.columns.end(), c) -
          sv.subview.columns.begin()));
      auto it = cuts_of.find(c);
      cuts.push_back(it == cuts_of.end() ? nullptr : it->second);
    }
    std::vector<int> new_pos;
    for (int c : new_cols) {
      new_pos.push_back(static_cast<int>(
          std::find(sv.subview.columns.begin(), sv.subview.columns.end(), c) -
          sv.subview.columns.begin()));
    }

    // Solution Sorting (Section 5.1.2): both sides ordered by shared cells.
    std::stable_sort(work.rows.begin(), work.rows.end(),
                     [&](const SolutionRow& a, const SolutionRow& b) {
                       return KeyOf(a, work_pos, cuts) <
                              KeyOf(b, work_pos, cuts);
                     });
    std::stable_sort(incoming.begin(), incoming.end(),
                     [&](const SolutionRow& a, const SolutionRow& b) {
                       return KeyOf(a, sv_pos, cuts) < KeyOf(b, sv_pos, cuts);
                     });

    // Row Splitting + position-based merge (Sections 5.1.2, 5.1.3): pair off
    // counts in sorted order; shared values come from the accumulated
    // solution, new columns from the incoming sub-view.
    std::vector<SolutionRow> merged;
    merged.reserve(std::max(work.rows.size(), incoming.size()));
    size_t wi = 0, ii = 0;
    int64_t wleft = wi < work.rows.size() ? work.rows[wi].count : 0;
    int64_t ileft = ii < incoming.size() ? incoming[ii].count : 0;
    while (wi < work.rows.size() && ii < incoming.size()) {
      const int64_t take = std::min(wleft, ileft);
      SolutionRow row;
      row.values = work.rows[wi].values;
      row.values.reserve(row.values.size() + new_pos.size());
      for (int p : new_pos) row.values.push_back(incoming[ii].values[p]);
      row.count = take;
      merged.push_back(std::move(row));
      wleft -= take;
      ileft -= take;
      if (wleft == 0 && ++wi < work.rows.size()) wleft = work.rows[wi].count;
      if (ileft == 0 && ++ii < incoming.size()) ileft = incoming[ii].count;
    }
    // Integerization can leave a tiny count mismatch between the two sides;
    // pad the exhausted side with its last row's values.
    while (wi < work.rows.size()) {
      SolutionRow row;
      row.values = work.rows[wi].values;
      for (size_t k = 0; k < new_pos.size(); ++k) {
        row.values.push_back(
            incoming.empty()
                ? view.domains[new_cols[k]].lo
                : incoming.back().values[new_pos[k]]);
      }
      row.count = wleft;
      if (row.count > 0) merged.push_back(std::move(row));
      if (++wi < work.rows.size()) wleft = work.rows[wi].count;
    }
    if (ii < incoming.size() && !work.rows.empty()) {
      // Excess mass on the incoming side: attach it to the last accumulated
      // row's values (positive-only spill, never lost).
      int64_t excess = ileft;
      for (size_t k = ii + 1; k < incoming.size(); ++k) {
        excess += incoming[k].count;
      }
      if (excess > 0 && !merged.empty()) merged.back().count += excess;
    }

    work.columns.insert(work.columns.end(), new_cols.begin(), new_cols.end());
    work.rows = std::move(merged);
  }

  // Assemble the final view summary in view-column order; columns untouched
  // by any constraint are instantiated at their domain minimum.
  ViewSummary out;
  out.relation = view.relation;
  out.columns = view.columns;
  std::vector<int> position(view.num_columns(), -1);
  for (size_t i = 0; i < work.columns.size(); ++i) {
    position[work.columns[i]] = static_cast<int>(i);
  }
  if (work.rows.empty()) {
    // No constrained sub-views (or an all-zero solution): a single group of
    // identical tuples at the domain minimum.
    if (lp.total_rows > 0) {
      SolutionRow row;
      for (int c = 0; c < view.num_columns(); ++c) {
        row.values.push_back(view.domains[c].lo);
      }
      row.count = static_cast<int64_t>(lp.total_rows);
      out.rows.push_back(std::move(row));
    }
    return out;
  }
  out.rows.reserve(work.rows.size());
  for (const SolutionRow& wrow : work.rows) {
    SolutionRow row;
    row.count = wrow.count;
    row.values.resize(view.num_columns());
    for (int c = 0; c < view.num_columns(); ++c) {
      row.values[c] = position[c] >= 0 ? wrow.values[position[c]]
                                       : view.domains[c].lo;
    }
    out.rows.push_back(std::move(row));
  }
  // Compact: merge rows with identical values.
  std::sort(out.rows.begin(), out.rows.end(),
            [](const SolutionRow& a, const SolutionRow& b) {
              return a.values < b.values;
            });
  std::vector<SolutionRow> compact;
  for (SolutionRow& row : out.rows) {
    if (!compact.empty() && compact.back().values == row.values) {
      compact.back().count += row.count;
    } else {
      compact.push_back(std::move(row));
    }
  }
  out.rows = std::move(compact);
  return out;
}

StatusOr<DatabaseSummary> SummaryGenerator::BuildDatabaseSummary(
    const std::vector<View>& views,
    std::vector<ViewSummary> view_summaries) const {
  HYDRA_CHECK(views.size() == view_summaries.size());
  const int n = schema_.num_relations();

  DatabaseSummary out;
  out.schema = schema_;
  out.extra_tuples.assign(n, 0);

  // Step (3): referential repair in dependents-first order — every view is
  // made consistent with its direct dependencies before those are processed,
  // so additions cascade exactly once (Section 5.3; DAG-safe via topological
  // order).
  HYDRA_ASSIGN_OR_RETURN(const std::vector<int> order,
                         schema_.DependentsFirstOrder());

  // combo -> first row index, per view.
  std::vector<std::map<Row, int>> first_row(n);
  auto index_view = [&](int rel) {
    first_row[rel].clear();
    for (size_t i = 0; i < view_summaries[rel].rows.size(); ++i) {
      first_row[rel].emplace(view_summaries[rel].rows[i].values,
                             static_cast<int>(i));
    }
  };
  for (int r = 0; r < n; ++r) index_view(r);

  for (int r : order) {
    for (int dep : schema_.DirectDependencies(r)) {
      // Projection of V_r columns onto V_dep columns.
      std::vector<int> proj;
      proj.reserve(views[dep].columns.size());
      for (const AttrRef& ref : views[dep].columns) {
        const int col = views[r].ColumnOf(ref);
        HYDRA_CHECK_MSG(col >= 0, "view of "
                                      << schema_.relation(r).name()
                                      << " is missing borrowed attribute "
                                      << schema_.QualifiedName(ref));
        proj.push_back(col);
      }
      for (const SolutionRow& row : view_summaries[r].rows) {
        Row combo;
        combo.reserve(proj.size());
        for (int c : proj) combo.push_back(row.values[c]);
        auto it = first_row[dep].find(combo);
        if (it == first_row[dep].end()) {
          SolutionRow added;
          added.values = combo;
          added.count = 1;
          first_row[dep].emplace(
              std::move(combo),
              static_cast<int>(view_summaries[dep].rows.size()));
          view_summaries[dep].rows.push_back(std::move(added));
          ++out.extra_tuples[dep];
        }
      }
    }
  }

  // Prefix sums per view (PK of the first tuple of each row group).
  std::vector<std::vector<int64_t>> view_prefix(n);
  for (int r = 0; r < n; ++r) {
    auto& prefix = view_prefix[r];
    prefix.resize(view_summaries[r].rows.size());
    int64_t running = 0;
    for (size_t i = 0; i < view_summaries[r].rows.size(); ++i) {
      prefix[i] = running;
      running += view_summaries[r].rows[i].count;
    }
  }

  // Step (4): relation summaries.
  out.relations.resize(n);
  for (int r = 0; r < n; ++r) {
    const Relation& rel = schema_.relation(r);
    RelationSummary& rs = out.relations[r];
    rs.relation = r;

    struct ColumnSource {
      bool is_fk = false;
      int view_column = -1;  // for data attributes
      int fk_target = -1;    // for FKs: referenced relation
      std::vector<int> proj;  // for FKs: projection onto the target's view
    };
    std::vector<ColumnSource> sources;
    for (int a = 0; a < rel.num_attributes(); ++a) {
      const Attribute& attr = rel.attribute(a);
      if (attr.kind == AttributeKind::kPrimaryKey) continue;
      rs.attr_indices.push_back(a);
      ColumnSource src;
      if (attr.kind == AttributeKind::kData) {
        src.view_column = views[r].ColumnOf(AttrRef{r, a});
        HYDRA_CHECK(src.view_column >= 0);
      } else {
        src.is_fk = true;
        src.fk_target = attr.fk_target;
        for (const AttrRef& ref : views[attr.fk_target].columns) {
          const int col = views[r].ColumnOf(ref);
          HYDRA_CHECK(col >= 0);
          src.proj.push_back(col);
        }
      }
      sources.push_back(std::move(src));
    }

    rs.rows.reserve(view_summaries[r].rows.size());
    for (const SolutionRow& vrow : view_summaries[r].rows) {
      SolutionRow row;
      row.count = vrow.count;
      row.values.reserve(sources.size());
      for (const ColumnSource& src : sources) {
        if (!src.is_fk) {
          row.values.push_back(vrow.values[src.view_column]);
          continue;
        }
        Row combo;
        combo.reserve(src.proj.size());
        for (int c : src.proj) combo.push_back(vrow.values[c]);
        auto it = first_row[src.fk_target].find(combo);
        if (it == first_row[src.fk_target].end()) {
          return Status::Internal(
              "referential repair missed a combination for FK into " +
              schema_.relation(src.fk_target).name());
        }
        row.values.push_back(view_prefix[src.fk_target][it->second]);
      }
      rs.rows.push_back(std::move(row));
    }
    rs.Finalize();
  }
  return out;
}

}  // namespace hydra
