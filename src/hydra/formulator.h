// LP Formulator (Section 4): builds one LP per view using region
// partitioning, with consistency constraints tying the marginal
// distributions of sub-views that share attributes.
//
// Consistency design: for every view column shared by two or more sub-views,
// the union of all sub-views' block boundaries along that column defines a
// global set of cut points. Every sub-view's regions are refined and split so
// each region lies within a single *elementary cell* of those cuts along all
// of its shared columns. Per clique-tree edge, the LP equates the per-cell
// mass of child and parent over the separator columns. Because every
// constraint boundary is a block boundary, no constraint changes truth value
// inside an elementary cell — which is what makes the summary generator's
// align-and-merge (and its value substitution within a cell) sound.

#ifndef HYDRA_HYDRA_FORMULATOR_H_
#define HYDRA_HYDRA_FORMULATOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "hydra/preprocessor.h"
#include "hydra/view_graph.h"
#include "lp/model.h"
#include "partition/region_partition.h"

namespace hydra {

struct SubViewLp {
  SubView subview;
  // Region partition over the sub-view's local dimension space
  // (dimension i = subview.columns[i]).
  RegionPartition partition;
  // LP variable index of region 0; region r maps to first_var + r.
  int first_var = 0;
  // Indices (into the view's constraint list) assigned to this sub-view.
  std::vector<int> assigned_constraints;
};

struct ViewLp {
  LpProblem problem;
  std::vector<SubViewLp> subviews;
  uint64_t total_rows = 0;
  // Constraints after extracting the total-size CC (order preserved;
  // assigned_constraints indices refer to this list).
  std::vector<ViewConstraint> constraints;
  // Global elementary-cell cut points per shared view column (sorted); the
  // summary generator's align step groups rows by these cells.
  std::vector<std::pair<int, std::vector<int64_t>>> shared_cuts;
};

// Formulates the per-view LP. A constraint with a TRUE predicate is treated
// as the total-size constraint |view| = k (overriding the metadata row
// count); all others must have at least one atom.
StatusOr<ViewLp> FormulateViewLp(const View& view,
                                 std::vector<ViewConstraint> constraints);

}  // namespace hydra

#endif  // HYDRA_HYDRA_FORMULATOR_H_
