#include "hydra/preprocessor.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace hydra {

int View::ColumnOf(const AttrRef& ref) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == ref) return static_cast<int>(i);
  }
  return -1;
}

StatusOr<std::vector<View>> Preprocessor::BuildViews() const {
  HYDRA_RETURN_IF_ERROR(schema_.Validate());
  // Paper precondition: the borrowed attribute space has one copy of each
  // referenced relation's attributes, so a relation may reference any given
  // relation through at most one foreign key.
  for (int r = 0; r < schema_.num_relations(); ++r) {
    const Relation& rel = schema_.relation(r);
    std::set<int> targets;
    for (int fk : rel.ForeignKeyIndices()) {
      if (!targets.insert(rel.attribute(fk).fk_target).second) {
        return Status::Unimplemented(
            "relation " + rel.name() +
            " references the same relation through multiple foreign keys");
      }
    }
  }

  std::vector<View> views;
  views.reserve(schema_.num_relations());
  for (int r = 0; r < schema_.num_relations(); ++r) {
    const Relation& rel = schema_.relation(r);
    View v;
    v.relation = r;
    v.total_rows = rel.row_count();
    auto add_attrs = [&](int source_rel) {
      const Relation& src = schema_.relation(source_rel);
      for (int a : src.DataAttrIndices()) {
        v.columns.push_back(AttrRef{source_rel, a});
        v.domains.push_back(src.attribute(a).domain);
      }
    };
    add_attrs(r);
    std::vector<int> deps = schema_.TransitiveDependencies(r);  // sorted
    for (int d : deps) add_attrs(d);
    views.push_back(std::move(v));
  }
  return views;
}

StatusOr<std::vector<std::vector<ViewConstraint>>> Preprocessor::MapConstraints(
    const std::vector<View>& views,
    const std::vector<CardinalityConstraint>& ccs) const {
  std::vector<std::vector<ViewConstraint>> mapped(views.size());
  for (const CardinalityConstraint& cc : ccs) {
    if (cc.relations.empty()) {
      return Status::InvalidArgument("CC with no relations: " + cc.label);
    }
    const int root = cc.RootRelation();
    const View& view = views[root];
    // Every participating relation must be the root or one of its
    // (transitive) dependencies; otherwise the join is not rooted at `root`.
    std::vector<int> deps = schema_.TransitiveDependencies(root);
    for (size_t i = 1; i < cc.relations.size(); ++i) {
      if (!std::binary_search(deps.begin(), deps.end(), cc.relations[i])) {
        return Status::InvalidArgument(
            "CC " + cc.label + ": relation " +
            schema_.relation(cc.relations[i]).name() +
            " is not reachable from root " + schema_.relation(root).name());
      }
    }
    // Remap the predicate's column space (cc.columns of AttrRefs) to view
    // column indices.
    std::vector<int> mapping(cc.columns.size(), -1);
    for (size_t i = 0; i < cc.columns.size(); ++i) {
      const int col = view.ColumnOf(cc.columns[i]);
      if (col < 0) {
        return Status::InvalidArgument(
            "CC " + cc.label + ": attribute " +
            schema_.QualifiedName(cc.columns[i]) + " is not in the view of " +
            schema_.relation(root).name());
      }
      mapping[i] = col;
    }
    ViewConstraint vc;
    vc.predicate = cc.predicate.IsTrue() ? DnfPredicate::True()
                                         : cc.predicate.RemapColumns(mapping);
    vc.cardinality = cc.cardinality;
    vc.label = cc.label;
    mapped[root].push_back(std::move(vc));
  }
  return mapped;
}

}  // namespace hydra
