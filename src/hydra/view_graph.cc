#include "hydra/view_graph.h"

#include <algorithm>
#include <queue>
#include <set>

#include "common/logging.h"

namespace hydra {

namespace {

// Min-fill elimination: returns the elimination order and completes `adj`
// (adjacency sets) into a chordal graph by adding fill edges.
std::vector<int> ChordalizeMinFill(std::vector<std::set<int>>& adj) {
  const int n = static_cast<int>(adj.size());
  std::vector<bool> eliminated(n, false);
  std::vector<int> order;
  order.reserve(n);
  for (int step = 0; step < n; ++step) {
    // Pick the vertex whose elimination adds the fewest fill edges.
    int best = -1;
    long best_fill = -1;
    for (int v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      std::vector<int> nbrs;
      for (int u : adj[v]) {
        if (!eliminated[u]) nbrs.push_back(u);
      }
      long fill = 0;
      for (size_t i = 0; i < nbrs.size(); ++i) {
        for (size_t j = i + 1; j < nbrs.size(); ++j) {
          if (adj[nbrs[i]].find(nbrs[j]) == adj[nbrs[i]].end()) ++fill;
        }
      }
      if (best < 0 || fill < best_fill ||
          (fill == best_fill && nbrs.size() < adj[best].size())) {
        best = v;
        best_fill = fill;
      }
    }
    // Add fill edges among best's remaining neighbors.
    std::vector<int> nbrs;
    for (int u : adj[best]) {
      if (!eliminated[u]) nbrs.push_back(u);
    }
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        adj[nbrs[i]].insert(nbrs[j]);
        adj[nbrs[j]].insert(nbrs[i]);
      }
    }
    eliminated[best] = true;
    order.push_back(best);
  }
  return order;
}

}  // namespace

std::vector<SubView> DecomposeView(
    int num_columns, const std::vector<ViewConstraint>& constraints) {
  // Columns mentioned by at least one constraint.
  std::vector<bool> mentioned(num_columns, false);
  for (const ViewConstraint& vc : constraints) {
    for (int c : vc.predicate.Columns()) mentioned[c] = true;
  }
  std::vector<int> nodes;  // compact id -> view column
  std::vector<int> compact(num_columns, -1);
  for (int c = 0; c < num_columns; ++c) {
    if (mentioned[c]) {
      compact[c] = static_cast<int>(nodes.size());
      nodes.push_back(c);
    }
  }
  if (nodes.empty()) return {};

  // Edges: columns co-occurring in one CC form a clique.
  std::vector<std::set<int>> adj(nodes.size());
  for (const ViewConstraint& vc : constraints) {
    const std::vector<int> cols = vc.predicate.Columns();
    for (size_t i = 0; i < cols.size(); ++i) {
      for (size_t j = i + 1; j < cols.size(); ++j) {
        adj[compact[cols[i]]].insert(compact[cols[j]]);
        adj[compact[cols[j]]].insert(compact[cols[i]]);
      }
    }
  }

  const std::vector<int> order = ChordalizeMinFill(adj);
  std::vector<int> position(nodes.size());
  for (size_t i = 0; i < order.size(); ++i) {
    position[order[i]] = static_cast<int>(i);
  }

  // Candidate cliques: v plus its neighbors eliminated after v.
  std::vector<std::vector<int>> candidates;
  for (int v : order) {
    std::vector<int> clique = {v};
    for (int u : adj[v]) {
      if (position[u] > position[v]) clique.push_back(u);
    }
    std::sort(clique.begin(), clique.end());
    candidates.push_back(std::move(clique));
  }
  // Keep only maximal candidates.
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  std::vector<std::vector<int>> cliques;
  for (const auto& cand : candidates) {
    bool contained = false;
    for (const auto& kept : cliques) {
      if (std::includes(kept.begin(), kept.end(), cand.begin(), cand.end())) {
        contained = true;
        break;
      }
    }
    if (!contained) cliques.push_back(cand);
  }

  // Maximum-weight spanning tree over pairwise separator sizes (Prim).
  const int k = static_cast<int>(cliques.size());
  std::vector<int> parent(k, -1);
  std::vector<bool> in_tree(k, false);
  std::vector<int> best_weight(k, -1);
  std::vector<int> best_parent(k, -1);
  best_weight[0] = 0;
  for (int step = 0; step < k; ++step) {
    int pick = -1;
    for (int i = 0; i < k; ++i) {
      if (!in_tree[i] && best_weight[i] >= 0 &&
          (pick < 0 || best_weight[i] > best_weight[pick])) {
        pick = i;
      }
    }
    HYDRA_CHECK(pick >= 0);
    in_tree[pick] = true;
    parent[pick] = best_parent[pick];
    for (int i = 0; i < k; ++i) {
      if (in_tree[i]) continue;
      std::vector<int> isect;
      std::set_intersection(cliques[pick].begin(), cliques[pick].end(),
                            cliques[i].begin(), cliques[i].end(),
                            std::back_inserter(isect));
      const int w = static_cast<int>(isect.size());
      if (w > best_weight[i]) {
        best_weight[i] = w;
        best_parent[i] = pick;
      } else if (best_weight[i] < 0) {
        // Disconnected component: attach with an empty separator.
        best_weight[i] = 0;
        best_parent[i] = pick;
      }
    }
  }

  // BFS from the root so parents precede children.
  std::vector<std::vector<int>> children(k);
  int root = -1;
  for (int i = 0; i < k; ++i) {
    if (parent[i] < 0) {
      root = i;
    } else {
      children[parent[i]].push_back(i);
    }
  }
  HYDRA_CHECK(root >= 0);

  std::vector<SubView> result;
  std::vector<int> emitted_index(k, -1);
  std::queue<int> bfs;
  bfs.push(root);
  while (!bfs.empty()) {
    const int c = bfs.front();
    bfs.pop();
    SubView sv;
    for (int node : cliques[c]) sv.columns.push_back(nodes[node]);
    std::sort(sv.columns.begin(), sv.columns.end());
    if (parent[c] >= 0) {
      sv.parent = emitted_index[parent[c]];
      std::vector<int> isect;
      std::set_intersection(cliques[c].begin(), cliques[c].end(),
                            cliques[parent[c]].begin(),
                            cliques[parent[c]].end(),
                            std::back_inserter(isect));
      for (int node : isect) sv.separator.push_back(nodes[node]);
      std::sort(sv.separator.begin(), sv.separator.end());
    }
    emitted_index[c] = static_cast<int>(result.size());
    result.push_back(std::move(sv));
    for (int child : children[c]) bfs.push(child);
  }
  return result;
}

}  // namespace hydra
