#include "hydra/regenerator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <tuple>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "hydra/formulator.h"
#include "hydra/preprocessor.h"
#include "hydra/summary_generator.h"
#include "lp/integerize.h"

namespace hydra {

// Per-view LP phase latency. Recorded off the ViewReport's own timings
// (no extra clock reads on the regeneration path).
HYDRA_METRIC_HISTOGRAM(g_formulate_us, "lp/formulate_us");
HYDRA_METRIC_HISTOGRAM(g_solve_us, "lp/solve_us");

namespace {

double SecondsSince(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

uint64_t RegenerationResult::TotalLpVariables() const {
  uint64_t total = 0;
  for (const ViewReport& v : views) total += v.lp_variables;
  return total;
}

uint64_t RegenerationResult::MaxLpVariables() const {
  uint64_t best = 0;
  for (const ViewReport& v : views) best = std::max(best, v.lp_variables);
  return best;
}

StatusOr<RegenerationResult> HydraRegenerator::Regenerate(
    const std::vector<CardinalityConstraint>& ccs) const {
  const auto t0 = std::chrono::steady_clock::now();
  RegenerationResult result;

  Preprocessor pre(schema_);
  HYDRA_ASSIGN_OR_RETURN(std::vector<View> views, pre.BuildViews());
  HYDRA_ASSIGN_OR_RETURN(auto view_constraints,
                         pre.MapConstraints(views, ccs));

  SummaryGenerator generator(schema_);
  const int num_views = static_cast<int>(views.size());
  std::vector<ViewSummary> summaries(num_views);
  std::vector<ViewReport> reports(num_views);
  std::vector<Status> statuses(num_views, Status::OK());
  std::vector<ViewLp> lps(num_views);

  const int pool_threads = std::min(
      num_views == 0 ? 1 : num_views,
      options_.num_threads > 0 ? options_.num_threads
                               : ThreadPool::DefaultThreads());
  // Once any view fails, tasks that have not started yet bail immediately —
  // the whole Regenerate returns an error either way, so finishing the
  // remaining solves is wasted work. Which failing view's status is reported
  // can then depend on scheduling (the lowest-indexed view that actually
  // ran and failed); the success path is unaffected and stays deterministic.
  std::atomic<bool> any_failed{false};
  ThreadPool pool(pool_threads);

  // Stage 1 — formulate every view, one task per view. Each task writes
  // only its own slot, so the stage is deterministic at any thread count.
  ParallelFor(pool, num_views, [&](int v) {
    if (any_failed.load(std::memory_order_relaxed)) return;
    ViewReport& report = reports[v];
    report.relation = views[v].relation;

    const auto tf = std::chrono::steady_clock::now();
    auto lp_or = FormulateViewLp(views[v], view_constraints[v]);
    if (!lp_or.ok()) {
      statuses[v] = lp_or.status();
      any_failed.store(true, std::memory_order_relaxed);
      return;
    }
    lps[v] = *std::move(lp_or);
    report.formulate_seconds = SecondsSince(tf);
    g_formulate_us.Record(
        static_cast<uint64_t>(report.formulate_seconds * 1e6));
    report.num_subviews = static_cast<int>(lps[v].subviews.size());
    report.lp_variables = lps[v].problem.num_vars();
    report.lp_constraints = lps[v].problem.num_constraints();
  });
  for (const Status& s : statuses) HYDRA_RETURN_IF_ERROR(s);

  // Stage 2 — group views into warm-start chains by LP signature (the
  // constraint-overlap heuristic: identical row/variable/nonzero counts
  // mean the views were formulated from near-identical constraint
  // structure). Each chain solves sequentially in view order, seeding
  // every phase I from the previous member's exported basis; distinct
  // chains run in parallel. Chain membership is a pure function of the
  // formulated LPs, and each view writes only its own slot, so the output
  // is byte-identical at any num_threads. With warm starts disabled every
  // view is its own chain (the PR 1 behaviour).
  std::vector<std::vector<int>> chains;
  if (options_.warm_start) {
    std::map<std::tuple<int, int, uint64_t>, int> chain_of;
    for (int v = 0; v < num_views; ++v) {
      const auto key = std::make_tuple(lps[v].problem.num_constraints(),
                                       lps[v].problem.num_vars(),
                                       lps[v].problem.NumNonZeros());
      const auto [it, inserted] =
          chain_of.emplace(key, static_cast<int>(chains.size()));
      if (inserted) chains.emplace_back();
      chains[it->second].push_back(v);
    }
  } else {
    chains.resize(num_views);
    for (int v = 0; v < num_views; ++v) chains[v] = {v};
  }

  ParallelFor(pool, static_cast<int>(chains.size()), [&](int c) {
    SimplexBasis prev;
    for (int v : chains[c]) {
      if (any_failed.load(std::memory_order_relaxed)) return;
      ViewReport& report = reports[v];
      ViewLp& lp = lps[v];

      const auto ts = std::chrono::steady_clock::now();
      SimplexOptions simplex = options_.simplex;
      SimplexBasis exported;
      if (options_.warm_start) {
        simplex.warm_start = prev.empty() ? nullptr : &prev;
        simplex.export_basis = &exported;
      }
      auto lp_solution = SolveFeasibility(lp.problem, simplex);
      if (!lp_solution.ok()) {
        statuses[v] = lp_solution.status();
        any_failed.store(true, std::memory_order_relaxed);
        return;
      }
      report.lp_iterations = lp_solution->iterations;
      report.warm_started = lp_solution->warm_started;
      IntegerizeResult integers = IntegerizeSolution(
          lp.problem, lp_solution->values, options_.integerize_passes);
      report.solve_seconds = SecondsSince(ts);
      g_solve_us.Record(static_cast<uint64_t>(report.solve_seconds * 1e6));
      report.max_abs_violation = integers.max_absolute_violation;
      report.max_rel_violation = integers.max_relative_violation;

      auto summary_or =
          generator.BuildViewSummary(views[v], lp, integers.values);
      if (!summary_or.ok()) {
        statuses[v] = summary_or.status();
        any_failed.store(true, std::memory_order_relaxed);
        return;
      }
      summaries[v] = *std::move(summary_or);
      prev = std::move(exported);
    }
  });

  // First recorded failure in view order wins.
  for (const Status& s : statuses) HYDRA_RETURN_IF_ERROR(s);
  result.views = std::move(reports);

  HYDRA_ASSIGN_OR_RETURN(
      result.summary,
      generator.BuildDatabaseSummary(views, std::move(summaries)));
  result.total_seconds = SecondsSince(t0);
  return result;
}

StatusOr<Database> HydraRegenerator::Materialize(
    const DatabaseSummary& summary) const {
  return MaterializeDatabase(summary, options_.generation);
}

StatusOr<uint64_t> HydraRegenerator::MaterializeToDisk(
    const DatabaseSummary& summary, const std::string& dir) const {
  return hydra::MaterializeToDisk(summary, dir, options_.generation);
}

}  // namespace hydra
