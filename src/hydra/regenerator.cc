#include "hydra/regenerator.h"

#include <algorithm>
#include <chrono>

#include "hydra/formulator.h"
#include "hydra/preprocessor.h"
#include "hydra/summary_generator.h"
#include "lp/integerize.h"

namespace hydra {

namespace {

double SecondsSince(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

uint64_t RegenerationResult::TotalLpVariables() const {
  uint64_t total = 0;
  for (const ViewReport& v : views) total += v.lp_variables;
  return total;
}

uint64_t RegenerationResult::MaxLpVariables() const {
  uint64_t best = 0;
  for (const ViewReport& v : views) best = std::max(best, v.lp_variables);
  return best;
}

StatusOr<RegenerationResult> HydraRegenerator::Regenerate(
    const std::vector<CardinalityConstraint>& ccs) const {
  const auto t0 = std::chrono::steady_clock::now();
  RegenerationResult result;

  Preprocessor pre(schema_);
  HYDRA_ASSIGN_OR_RETURN(std::vector<View> views, pre.BuildViews());
  HYDRA_ASSIGN_OR_RETURN(auto view_constraints,
                         pre.MapConstraints(views, ccs));

  SummaryGenerator generator(schema_);
  std::vector<ViewSummary> summaries(views.size());

  for (size_t v = 0; v < views.size(); ++v) {
    ViewReport report;
    report.relation = views[v].relation;

    const auto tf = std::chrono::steady_clock::now();
    HYDRA_ASSIGN_OR_RETURN(
        ViewLp lp, FormulateViewLp(views[v], view_constraints[v]));
    report.formulate_seconds = SecondsSince(tf);
    report.num_subviews = static_cast<int>(lp.subviews.size());
    report.lp_variables = lp.problem.num_vars();
    report.lp_constraints = lp.problem.num_constraints();

    const auto ts = std::chrono::steady_clock::now();
    HYDRA_ASSIGN_OR_RETURN(LpSolution lp_solution,
                           SolveFeasibility(lp.problem, options_.simplex));
    report.lp_iterations = lp_solution.iterations;
    IntegerizeResult integers = IntegerizeSolution(
        lp.problem, lp_solution.values, options_.integerize_passes);
    report.solve_seconds = SecondsSince(ts);
    report.max_abs_violation = integers.max_absolute_violation;
    report.max_rel_violation = integers.max_relative_violation;

    HYDRA_ASSIGN_OR_RETURN(
        summaries[v],
        generator.BuildViewSummary(views[v], lp, integers.values));
    result.views.push_back(report);
  }

  HYDRA_ASSIGN_OR_RETURN(
      result.summary,
      generator.BuildDatabaseSummary(views, std::move(summaries)));
  result.total_seconds = SecondsSince(t0);
  return result;
}

}  // namespace hydra
