// Anonymizer (Section 3.1): before schema, metadata and CCs leave the client
// site, identifiers are masked and non-numeric constants are mapped to
// numbers so the vendor-side pipeline operates on a purely numeric database.
// The mapping is invertible at the client (the vendor never needs it).

#ifndef HYDRA_ANONYMIZER_ANONYMIZER_H_
#define HYDRA_ANONYMIZER_ANONYMIZER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"

namespace hydra {

// Per-column dictionary mapping original string values to consecutive
// numeric codes (dictionary encoding; order-preserving within insertion).
class ValueDictionary {
 public:
  // Returns the code for `value`, assigning the next code if unseen.
  int64_t Encode(const std::string& value);
  // Inverse mapping; NOT_FOUND if the code was never assigned.
  StatusOr<std::string> Decode(int64_t code) const;

  int64_t size() const { return static_cast<int64_t>(values_.size()); }

 private:
  std::unordered_map<std::string, int64_t> codes_;
  std::vector<std::string> values_;
};

// Anonymizes schema identifiers and provides per-attribute dictionaries.
class Anonymizer {
 public:
  // Returns a copy of `schema` with relation and attribute names replaced by
  // opaque identifiers ("r0", "r0.a1", ...). Domains and keys are preserved —
  // they are exactly what the vendor needs for LP formulation.
  Schema AnonymizeSchema(const Schema& schema);

  // Dictionary for a (relation, attribute) pair, created on first use.
  ValueDictionary& DictionaryFor(const AttrRef& ref);

  // The anonymized name assigned to an original relation name, or NOT_FOUND.
  StatusOr<std::string> AnonymizedRelationName(const std::string& name) const;

 private:
  std::unordered_map<std::string, std::string> relation_names_;
  std::unordered_map<AttrRef, ValueDictionary, AttrRefHash> dictionaries_;
};

}  // namespace hydra

#endif  // HYDRA_ANONYMIZER_ANONYMIZER_H_
