#include "anonymizer/anonymizer.h"

namespace hydra {

int64_t ValueDictionary::Encode(const std::string& value) {
  auto [it, inserted] =
      codes_.emplace(value, static_cast<int64_t>(values_.size()));
  if (inserted) values_.push_back(value);
  return it->second;
}

StatusOr<std::string> ValueDictionary::Decode(int64_t code) const {
  if (code < 0 || code >= static_cast<int64_t>(values_.size())) {
    return Status::NotFound("code " + std::to_string(code) +
                            " not in dictionary");
  }
  return values_[code];
}

Schema Anonymizer::AnonymizeSchema(const Schema& schema) {
  Schema anonymized;
  for (int r = 0; r < schema.num_relations(); ++r) {
    const Relation& rel = schema.relation(r);
    const std::string masked = "r" + std::to_string(r);
    relation_names_[rel.name()] = masked;
    Relation copy(masked, rel.row_count());
    for (int a = 0; a < rel.num_attributes(); ++a) {
      const Attribute& attr = rel.attribute(a);
      const std::string attr_name = masked + ".a" + std::to_string(a);
      switch (attr.kind) {
        case AttributeKind::kData:
          copy.AddDataAttribute(attr_name, attr.domain);
          break;
        case AttributeKind::kPrimaryKey:
          copy.AddPrimaryKey(attr_name);
          break;
        case AttributeKind::kForeignKey:
          copy.AddForeignKey(attr_name, attr.fk_target);
          break;
      }
    }
    anonymized.AddRelation(std::move(copy));
  }
  return anonymized;
}

ValueDictionary& Anonymizer::DictionaryFor(const AttrRef& ref) {
  return dictionaries_[ref];
}

StatusOr<std::string> Anonymizer::AnonymizedRelationName(
    const std::string& name) const {
  auto it = relation_names_.find(name);
  if (it == relation_names_.end()) {
    return Status::NotFound("relation " + name + " was not anonymized");
  }
  return it->second;
}

}  // namespace hydra
