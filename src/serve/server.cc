#include "serve/server.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "common/trace.h"
#include "hydra/tuple_generator.h"

namespace hydra {

// End-to-end request latency as the client experiences it: admission wait,
// summary lease, generation, and fan-out included.
HYDRA_METRIC_HISTOGRAM(g_next_batch_us, "serve/next_batch_us");
HYDRA_METRIC_HISTOGRAM(g_open_session_us, "serve/open_session_us");
// Requests the slow-op log reported (ServeOptions::slow_op_ms reached).
HYDRA_METRIC_COUNTER(g_slow_ops, "serve/slow_ops");

namespace {

int ResolvePoolThreads(const ServeOptions& options) {
  const int threads = options.num_threads == 0 ? ThreadPool::DefaultThreads()
                                               : options.num_threads;
  return std::max(1, threads);
}

int ResolveInflight(const ServeOptions& options, int pool_threads) {
  return options.max_inflight == 0 ? pool_threads
                                   : std::max(1, options.max_inflight);
}

LoadRetryPolicy ResolveRetryPolicy(const ServeOptions& options) {
  LoadRetryPolicy policy;
  policy.retries = std::max(0, options.load_retries);
  policy.base_ms = std::max<int64_t>(0, options.load_retry_base_ms);
  policy.max_ms = std::max<int64_t>(policy.base_ms, options.load_retry_max_ms);
  return policy;
}

bool IsTerminalSignal(const Status& status) {
  return status.code() == StatusCode::kCancelled ||
         status.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace

RegenServer::RegenServer(ServeOptions options)
    : options_(options),
      store_(options.cache_bytes, ResolveRetryPolicy(options)),
      scheduler_(ResolveInflight(options, ResolvePoolThreads(options)),
                 options.max_queued),
      scan_groups_(std::max<int64_t>(1, options.batch_rows),
                   options.shared_scan_chunks),
      metrics_provider_("serve", [this](MetricsSink* sink) {
        const ServeStats s = stats();
        sink->Gauge("cache_hits", s.cache_hits);
        sink->Gauge("cache_misses", s.cache_misses);
        sink->Gauge("evictions", s.evictions);
        sink->Gauge("cached_bytes", s.cached_bytes);
        sink->Gauge("resident_summaries", s.resident_summaries);
        sink->Gauge("batches_served", s.batches_served);
        sink->Gauge("rows_served", s.rows_served);
        sink->Gauge("lookups_served", s.lookups_served);
        sink->Gauge("queries_served", s.queries_served);
        sink->Gauge("admission_waits", s.admission_waits);
        sink->Gauge("admission_grants", s.admission_grants);
        sink->Gauge("scan_groups_formed", s.scan_groups_formed);
        sink->Gauge("peak_group_fanout", s.peak_group_fanout);
        sink->Gauge("shared_chunk_fills", s.shared_chunk_fills);
        sink->Gauge("shared_chunk_hits", s.shared_chunk_hits);
        sink->Gauge("catch_up_batches", s.catch_up_batches);
        sink->Gauge("shared_charges", s.shared_charges);
        sink->Gauge("priority_skips", s.priority_skips);
        sink->Gauge("rate_deferrals", s.rate_deferrals);
        sink->Gauge("load_retries", s.load_retries);
        sink->Gauge("shed_requests", s.shed_requests);
        sink->Gauge("degraded_batches", s.degraded_batches);
        sink->Gauge("cancelled_requests", s.cancelled_requests);
        for (const ScanGroupInfo& g : scan_group_infos()) {
          const std::string prefix =
              "group/" + g.summary_id + "/" + std::to_string(g.relation) + "/";
          sink->Gauge(prefix + "fanout", g.fanout);
          sink->Gauge(prefix + "fills", g.fills);
          sink->Gauge(prefix + "hits", g.hits);
          sink->Gauge(prefix + "catch_up", g.catch_up);
          sink->Gauge(prefix + "pacing_waits", g.pacing_waits);
        }
      }) {
  if (options_.batch_rows < 1) options_.batch_rows = 1;
  const int threads = ResolvePoolThreads(options_);
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  if (options_.trace_spans) trace::SetEnabled(true);
}

RegenServer::~RegenServer() {
  // Belt and braces: a well-behaved embedder already Shutdown() and joined
  // its clients; draining again is a no-op then, and otherwise it keeps a
  // racing in-flight request from outliving the scheduler.
  (void)Shutdown();
}

Status RegenServer::RegisterSummary(const std::string& id,
                                    const std::string& path) {
  return store_.Register(id, path);
}

StatusOr<SessionHandle> RegenServer::OpenSession(
    const OpenSessionRequest& request) {
  trace::TraceScope span("serve/open_session");
  ScopedLatencyTimer timer(&g_open_session_us);
  if (shutting_down()) {
    return Status::Unavailable("server is shutting down");
  }
  // Load shedding at the front door: refuse new tenants while the session
  // cap is reached or the admission queue is already at its bound —
  // existing sessions' requests shed individually in Admit.
  if (options_.max_sessions > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (static_cast<int>(sessions_.size()) >= options_.max_sessions) {
      opens_shed_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted("session limit reached");
    }
  }
  if (options_.max_queued > 0 && scheduler_.queued() >= options_.max_queued) {
    opens_shed_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted("admission queue full");
  }
  // Load (or touch) the summary now so registration errors and corrupt
  // files fail the open, not the first batch.
  HYDRA_ASSIGN_OR_RETURN(const SummaryLease lease,
                         store_.Acquire(request.summary_id));
  (void)lease;
  auto session = std::make_shared<Session>();
  session->summary_id = request.summary_id;
  session->slot = std::make_unique<ExecContext>(
      ExecOptions{options_.query_parallelism, options_.morsel_rows},
      pool_.get(), options_.query_parallelism);
  session->user_cancel = request.cancel;
  session->deadline = request.deadline_ms > 0
                          ? Deadline::After(request.deadline_ms)
                          : Deadline::Infinite();
  SessionHandle handle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down()) {
      // Shutdown raced the open: refuse rather than admit a session the
      // drain pass will never see.
      return Status::Unavailable("server is shutting down");
    }
    session->id = next_session_id_++;
    handle.id = session->id;
    sessions_.emplace(session->id, session);
  }
  // QoS rides on the open frame: install before the first request can
  // queue. Defaults (priority 1, no rate) are a no-op in the scheduler.
  scheduler_.SetSessionQos(
      handle.id, SessionQos{request.priority, request.rate_limit_rows_per_sec});
  MaybeLogSlowOp("open_session", handle.id, request.summary_id, -1, timer);
  return handle;
}

Status RegenServer::CloseSession(SessionHandle session_handle) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(session_handle.id);
    if (it == sessions_.end()) return Status::NotFound("no such session");
    session = it->second;
    sessions_.erase(it);
  }
  // A request of this session may still be queued (the map only stops new
  // FindSession calls); cancel + kick so it leaves promptly, and the held
  // shared_ptr keeps the Session alive until that waiter unwinds.
  session->server_cancel.Cancel();
  scheduler_.Kick();
  scheduler_.ForgetSession(session_handle.id);
  // Detach every cursor from its scan group so groups never count a closed
  // session among their members (taking session->mu may briefly wait out an
  // in-flight grant — bounded work, and the cancel above already tripped).
  {
    std::lock_guard<std::mutex> session_lock(session->mu);
    for (auto& [cursor_id, cursor] : session->cursors) {
      DetachCursor(*session, cursor);
    }
  }
  return Status::OK();
}

Status RegenServer::CancelSession(SessionHandle session_handle) {
  HYDRA_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                         FindSession(session_handle.id));
  session->server_cancel.Cancel();
  scheduler_.Kick();
  return Status::OK();
}

Status RegenServer::Shutdown() {
  if (shutting_down_.exchange(true)) {
    // Second caller (or the destructor after an explicit Shutdown): still
    // wait for the drain so every caller returns to a quiet server.
    scheduler_.Drain();
    return Status::OK();
  }
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) sessions.push_back(session);
  }
  for (const auto& session : sessions) session->server_cancel.Cancel();
  scheduler_.Kick();
  scheduler_.Drain();
  if (pool_ != nullptr) pool_->Wait();
  return Status::OK();
}

StatusOr<std::shared_ptr<RegenServer::Session>> RegenServer::FindSession(
    uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  return it->second;
}

StatusOr<CursorHandle> RegenServer::OpenCursor(SessionHandle session_handle,
                                               CursorSpec spec) {
  HYDRA_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                         FindSession(session_handle.id));
  HYDRA_ASSIGN_OR_RETURN(const SummaryLease lease,
                         store_.Acquire(session->summary_id));
  const Schema& schema = lease.summary().schema;
  if (spec.relation < 0 || spec.relation >= schema.num_relations()) {
    return Status::InvalidArgument("cursor relation out of range");
  }
  const int width = schema.relation(spec.relation).num_attributes();
  for (const int col : spec.filter.Columns()) {
    if (col < 0 || col >= width) {
      return Status::InvalidArgument("cursor filter column out of range");
    }
  }
  for (const int col : spec.projection) {
    if (col < 0 || col >= width) {
      return Status::InvalidArgument("cursor projection column out of range");
    }
  }
  const int64_t rows =
      static_cast<int64_t>(lease.generator().RowCount(spec.relation));
  Cursor cursor;
  cursor.relation_rows = rows;
  cursor.end_rank =
      spec.end_rank < 0 ? rows : std::min<int64_t>(spec.end_rank, rows);
  cursor.next_rank =
      std::max<int64_t>(0, std::min(spec.begin_rank, cursor.end_rank));
  cursor.source_width = width;
  cursor.out_width = spec.projection.empty()
                         ? width
                         : static_cast<int>(spec.projection.size());
  cursor.spec = std::move(spec);
  cursor.filter = kernels::BlockPredicate(cursor.spec.filter);
  std::lock_guard<std::mutex> lock(session->mu);
  if (options_.shared_scan) {
    // Every cursor joins the (summary, relation) scan group; grants only
    // take the shared path while the group has a second member, so a lone
    // cursor still serves through the private streaming path.
    cursor.group = scan_groups_.Join(session->summary_id,
                                     cursor.spec.relation, session->id,
                                     &cursor.member);
  }
  CursorHandle handle;
  handle.id = session->next_cursor_id++;
  session->cursors.emplace(handle.id, std::move(cursor));
  return handle;
}

StatusOr<BatchResult> RegenServer::NextBatch(SessionHandle session_handle,
                                             CursorHandle cursor_handle,
                                             RowBlock&& reuse) {
  trace::TraceScope span("serve/next_batch");
  ScopedLatencyTimer timer(&g_next_batch_us);
  HYDRA_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                         FindSession(session_handle.id));
  std::lock_guard<std::mutex> lock(session->mu);
  const auto it = session->cursors.find(cursor_handle.id);
  if (it == session->cursors.end()) return Status::NotFound("no such cursor");
  Cursor& cursor = it->second;
  BatchResult result;
  result.rows = std::move(reuse);
  RowBlock* out = &result.rows;
  out->Reset(cursor.out_width);

  // One admission grant per source morsel: a selective filter costs several
  // grants (other sessions interleave between them), never one unbounded
  // scan. The summary lease is taken inside the grant, so cache loads are
  // admission-controlled work too — and eviction between grants is fine:
  // the cursor addresses ranks, not a generator instance.
  const CancelScope scope = SessionScope(*session);
  Status status = Status::OK();
  while (out->empty() && cursor.next_rank < cursor.end_rank && status.ok()) {
    // Multicast fast path: a resident shared chunk is consumed without an
    // admission grant (see TrySharedFastPath) — the producing member's
    // grant covered the generation and charged every peer for it. Misses
    // and degraded grants fall through to admitted work below. A session
    // whose token bucket is overdrawn is kept off the fast path too:
    // admission-free serving must not outrun the rate limit.
    if (cursor.group != nullptr && scope.Check().ok() &&
        cursor.group->member_count() >= 2 &&
        EffectiveBatchRows() == options_.batch_rows &&
        !scheduler_.SessionThrottled(session->id) &&
        TrySharedFastPath(cursor, out)) {
      continue;
    }
    const Status admitted = scheduler_.Admit(session->id, [&] {
      StatusOr<SummaryLease> lease = store_.Acquire(session->summary_id);
      if (!lease.ok()) {
        status = lease.status();
        return;
      }
      const int64_t effective = EffectiveBatchRows();
      // Multicast path: while the scan group has company and the grant is
      // not degraded, serve this member from the group's shared chunk (one
      // generation pass per chunk across all members). Degraded grants
      // bypass sharing — their morsels are smaller than a chunk — and
      // re-engage at full batch size; a group that shrank back to one
      // member quietly resumes the cheaper private path below.
      if (cursor.group != nullptr && effective == options_.batch_rows &&
          cursor.group->member_count() >= 2) {
        status = SharedGrant(*session, cursor, lease->generator(), scope, out);
        return;
      }
      const int64_t morsel =
          std::min<int64_t>(effective, cursor.end_rank - cursor.next_rank);
      cursor.scratch.Reset(cursor.source_width);
      // Reuse the streaming cursor while the same generator instance is
      // resident; after an eviction the lease hands back a different
      // instance (same bytes — it reloaded the same file) and the state
      // is rebuilt at next_rank. Comparing against a possibly-dangling
      // old pointer is fine: it is never dereferenced, and on an address
      // match the cached state was derived from identical summary content.
      const TupleGenerator& generator = lease->generator();
      if (cursor.gen_cursor == nullptr || cursor.gen_instance != &generator ||
          cursor.gen_cursor->position() != cursor.next_rank) {
        cursor.gen_cursor = std::make_unique<TupleGenerator::Cursor>(
            generator, cursor.spec.relation, cursor.next_rank);
        cursor.gen_instance = &generator;
      }
      // A fill that is interrupted mid-morsel (cancel trips between summary
      // runs) simply generates a shorter prefix; the next admission check
      // reports why. Content stays a deterministic prefix of the stream.
      cursor.gen_cursor->set_cancel(&scope);
      const int64_t generated =
          cursor.gen_cursor->FillBlock(morsel, &cursor.scratch);
      cursor.gen_cursor->set_cancel(nullptr);
      cursor.next_rank = cursor.gen_cursor->position();
      if (generated == 0) return;
      const auto& projection = cursor.spec.projection;
      if (cursor.filter.is_true() && projection.empty()) {
        // Identity grant: move the generated columns into the output (the
        // output's previous buffers swap back, so both reuse capacity).
        for (int c = 0; c < cursor.source_width; ++c) {
          std::swap(out->MutableColumnBuffer(c),
                    cursor.scratch.MutableColumnBuffer(c));
        }
        out->SetNumRows(generated);
        cursor.scratch.Clear();
        return;
      }
      int64_t kept = generated;
      const int32_t* sel = nullptr;
      if (!cursor.filter.is_true()) {
        cursor.filter.Select(cursor.scratch, &cursor.sel);
        kept = static_cast<int64_t>(cursor.sel.size());
        if (kept == 0) return;
        sel = cursor.sel.data();
      }
      out->ResizeUninitialized(kept);
      for (int c = 0; c < cursor.out_width; ++c) {
        const Value* src =
            cursor.scratch.Column(projection.empty() ? c : projection[c]);
        Value* dst = out->MutableColumn(c);
        if (sel != nullptr) {
          kernels::Gather(src, sel, kept, dst);
        } else {
          std::copy(src, src + kept, dst);
        }
      }
    }, scope);
    if (status.ok()) status = admitted;
  }
  // A member that ends in cancel/deadline detaches here: the group's other
  // members keep sharing undisturbed, and this cursor — were it somehow
  // resumed — would stream privately.
  if (IsTerminalSignal(status)) DetachCursor(*session, cursor);
  MaybeLogSlowOp("next_batch", session_handle.id, session->summary_id,
                 cursor.next_rank, timer);
  HYDRA_RETURN_IF_ERROR(TallyTerminal(status));
  result.rank = cursor.next_rank;
  if (out->empty()) {
    result.done = true;
    return result;
  }
  batches_served_.fetch_add(1, std::memory_order_relaxed);
  rows_served_.fetch_add(static_cast<uint64_t>(out->num_rows()),
                         std::memory_order_relaxed);
  // Post-paid rate accounting: the batch that overdraws the bucket still
  // serves; the *next* grant waits for the refill.
  scheduler_.SpendTokens(session->id, out->num_rows());
  return result;
}

bool RegenServer::TrySharedFastPath(Cursor& cursor, RowBlock* out) {
  const int64_t chunk_rows = cursor.group->chunk_rows();
  const int64_t chunk = cursor.next_rank / chunk_rows;
  ScanGroup::ChunkResult result;
  if (!cursor.group->TryAcquireResident(cursor.member, chunk, &result)) {
    return false;
  }
  shared_chunk_hits_.fetch_add(1, std::memory_order_relaxed);
  const int64_t base = chunk * chunk_rows;
  const int64_t chunk_end =
      std::min(base + chunk_rows, cursor.relation_rows);
  FanOutShared(cursor, *result.block, base, chunk_end, out);
  return true;
}

Status RegenServer::SharedGrant(Session& session, Cursor& cursor,
                                const TupleGenerator& generator,
                                const CancelScope& scope, RowBlock* out) {
  const int64_t chunk_rows = cursor.group->chunk_rows();
  const int64_t chunk = cursor.next_rank / chunk_rows;
  const int64_t base = chunk * chunk_rows;
  const int64_t chunk_end =
      std::min(base + chunk_rows, cursor.relation_rows);
  ScanGroup::ChunkResult result;
  HYDRA_RETURN_IF_ERROR(cursor.group->AcquireChunk(
      cursor.member, chunk, scope,
      [&](RowBlock* block) {
        // The chunk is a pure function of (summary bytes, rank range):
        // chunk-aligned, member-independent, valid across evictions and
        // generator instances, so every member fans out byte-identically
        // to its solo stream.
        block->Reset(cursor.source_width);
        generator.FillBlockRange(cursor.spec.relation, base, chunk_end, block);
        return Status::OK();
      },
      &result));
  if (result.produced) {
    shared_chunk_fills_.fetch_add(1, std::memory_order_relaxed);
    if (result.catch_up) {
      catch_up_batches_.fetch_add(1, std::memory_order_relaxed);
    }
    // Fairness: this one admission generated work every member consumes,
    // so every peer session is charged a turn of the rotation.
    for (const uint64_t peer : cursor.group->PeerSessions(session.id)) {
      scheduler_.Charge(peer, 1);
    }
  } else {
    shared_chunk_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  FanOutShared(cursor, *result.block, base, chunk_end, out);
  return Status::OK();
}

// Fan this member's slice [next_rank, limit) out of the shared block with
// its own filter/projection kernels. The private streaming cursor is now
// stale; a later private grant rebuilds it at next_rank (rank mismatch).
void RegenServer::FanOutShared(Cursor& cursor, const RowBlock& block,
                               int64_t base, int64_t chunk_end, RowBlock* out) {
  const int64_t limit = std::min(cursor.end_rank, chunk_end);
  const int64_t lo = cursor.next_rank - base;
  const int64_t hi = limit - base;
  cursor.next_rank = limit;
  const auto& projection = cursor.spec.projection;
  if (cursor.filter.is_true() && projection.empty()) {
    out->AppendRange(block, lo, hi - lo);
    return;
  }
  int64_t kept = hi - lo;
  const int32_t* sel = nullptr;
  if (!cursor.filter.is_true()) {
    cursor.filter.SelectRange(block, lo, hi, &cursor.sel);
    kept = static_cast<int64_t>(cursor.sel.size());
    if (kept == 0) return;  // all filtered: next grant advances
    sel = cursor.sel.data();
  }
  out->ResizeUninitialized(kept);
  for (int c = 0; c < cursor.out_width; ++c) {
    const Value* src = block.Column(projection.empty() ? c : projection[c]);
    Value* dst = out->MutableColumn(c);
    if (sel != nullptr) {
      kernels::Gather(src, sel, kept, dst);
    } else {
      std::copy(src + lo, src + hi, dst);
    }
  }
}

void RegenServer::DetachCursor(Session& session, Cursor& cursor) {
  if (cursor.group == nullptr) return;
  scan_groups_.Leave(session.summary_id, cursor.spec.relation, cursor.group,
                     cursor.member);
  cursor.group = nullptr;
  cursor.member = 0;
}

StatusOr<int64_t> RegenServer::CursorRank(SessionHandle session_handle,
                                          CursorHandle cursor_handle) {
  HYDRA_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                         FindSession(session_handle.id));
  std::lock_guard<std::mutex> lock(session->mu);
  const auto it = session->cursors.find(cursor_handle.id);
  if (it == session->cursors.end()) return Status::NotFound("no such cursor");
  return it->second.next_rank;
}

Status RegenServer::CloseCursor(SessionHandle session_handle,
                                CursorHandle cursor_handle) {
  HYDRA_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                         FindSession(session_handle.id));
  std::lock_guard<std::mutex> lock(session->mu);
  const auto it = session->cursors.find(cursor_handle.id);
  if (it == session->cursors.end()) return Status::NotFound("no such cursor");
  DetachCursor(*session, it->second);
  session->cursors.erase(it);
  return Status::OK();
}

StatusOr<Row> RegenServer::Lookup(SessionHandle session_handle, int relation,
                                  int64_t pk) {
  HYDRA_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                         FindSession(session_handle.id));
  std::lock_guard<std::mutex> lock(session->mu);
  const CancelScope scope = SessionScope(*session);
  Row out;
  Status status = Status::OK();
  const Status admitted = scheduler_.Admit(session->id, [&] {
    StatusOr<SummaryLease> lease = store_.Acquire(session->summary_id);
    if (!lease.ok()) {
      status = lease.status();
      return;
    }
    const Schema& schema = lease->summary().schema;
    if (relation < 0 || relation >= schema.num_relations()) {
      status = Status::InvalidArgument("lookup relation out of range");
      return;
    }
    if (pk < 0 ||
        pk >= static_cast<int64_t>(lease->generator().RowCount(relation))) {
      status = Status::OutOfRange("lookup pk out of range");
      return;
    }
    lease->generator().GetTuple(relation, pk, &out);
  }, scope);
  if (status.ok()) status = admitted;
  HYDRA_RETURN_IF_ERROR(TallyTerminal(status));
  lookups_served_.fetch_add(1, std::memory_order_relaxed);
  scheduler_.SpendTokens(session->id, 1);
  return out;
}

StatusOr<AnnotatedQueryPlan> RegenServer::ExecuteQuery(
    SessionHandle session_handle, const Query& query) {
  HYDRA_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                         FindSession(session_handle.id));
  std::lock_guard<std::mutex> lock(session->mu);
  const CancelScope scope = SessionScope(*session);
  StatusOr<AnnotatedQueryPlan> result =
      Status::Internal("query never admitted");
  const Status admitted = scheduler_.Admit(session->id, [&] {
    StatusOr<SummaryLease> lease = store_.Acquire(session->summary_id);
    if (!lease.ok()) {
      result = lease.status();
      return;
    }
    // The whole pipeline runs under one grant on this client's thread; its
    // intra-query fan-out goes to the shared pool through the session's
    // scheduler slot. Pool tasks never block on other pool tasks, so slots
    // cannot deadlock the pool. The slot polls the scope at morsel
    // boundaries, so a long pipeline unwinds within one morsel of cancel.
    session->slot->set_cancel(&scope);
    const Executor executor(lease->summary().schema, session->slot.get());
    result = executor.Execute(query, lease->generator());
    session->slot->set_cancel(nullptr);
  }, scope);
  if (!admitted.ok()) result = admitted;  // fn never ran; this is the reason
  if (!result.ok()) return TallyTerminal(result.status());
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

int64_t RegenServer::EffectiveBatchRows() {
  if (options_.min_degraded_batch_rows <= 0 || !store_.Overcommitted()) {
    return options_.batch_rows;
  }
  // Overcommitted: every resident summary is pinned past the budget, so
  // shrink work quanta proportionally to the overshoot — grants stay cheap
  // and leases short-lived, which is what lets the cache recover. Content
  // never depends on the morsel size, only pacing does.
  const SummaryStore::Stats cache = store_.stats();
  if (cache.cached_bytes == 0) return options_.batch_rows;
  const double fill = static_cast<double>(options_.cache_bytes) /
                      static_cast<double>(cache.cached_bytes);
  int64_t rows = static_cast<int64_t>(
      static_cast<double>(options_.batch_rows) * fill);
  rows = std::max(rows, std::min(options_.min_degraded_batch_rows,
                                 options_.batch_rows));
  if (rows < options_.batch_rows) {
    degraded_batches_.fetch_add(1, std::memory_order_relaxed);
  }
  return rows;
}

void RegenServer::MaybeLogSlowOp(const char* op, uint64_t session_id,
                                 const std::string& summary_id, int64_t rank,
                                 const ScopedLatencyTimer& timer) {
  if (options_.slow_op_ms <= 0 || !timer.active()) return;
  const uint64_t us = timer.elapsed_us();
  if (us < static_cast<uint64_t>(options_.slow_op_ms) * 1000) return;
  g_slow_ops.Inc();
  std::fprintf(stderr,
               "[hydra.slow_op] op=%s session=%" PRIu64 " summary=%s"
               " rank=%" PRId64 " duration_us=%" PRIu64 "\n",
               op, session_id, summary_id.c_str(), rank, us);
}

Status RegenServer::TallyTerminal(Status status) {
  if (IsTerminalSignal(status)) {
    cancelled_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

ServeStats RegenServer::stats() const {
  ServeStats s;
  const SummaryStore::Stats store = store_.stats();
  s.cache_hits = store.hits;
  s.cache_misses = store.misses;
  s.evictions = store.evictions;
  s.cached_bytes = store.cached_bytes;
  s.resident_summaries = store.resident;
  s.batches_served = batches_served_.load(std::memory_order_relaxed);
  s.rows_served = rows_served_.load(std::memory_order_relaxed);
  s.lookups_served = lookups_served_.load(std::memory_order_relaxed);
  s.queries_served = queries_served_.load(std::memory_order_relaxed);
  s.admission_waits = scheduler_.admission_waits();
  s.admission_grants = scheduler_.grants();
  s.scan_groups_formed = scan_groups_.groups_formed();
  s.peak_group_fanout = scan_groups_.peak_fanout();
  s.shared_chunk_fills = shared_chunk_fills_.load(std::memory_order_relaxed);
  s.shared_chunk_hits = shared_chunk_hits_.load(std::memory_order_relaxed);
  s.catch_up_batches = catch_up_batches_.load(std::memory_order_relaxed);
  s.shared_charges = scheduler_.charged();
  s.priority_skips = scheduler_.priority_skips();
  s.rate_deferrals = scheduler_.rate_deferrals();
  s.load_retries = store.load_retries;
  s.shed_requests =
      scheduler_.shed() + opens_shed_.load(std::memory_order_relaxed);
  s.degraded_batches = degraded_batches_.load(std::memory_order_relaxed);
  s.cancelled_requests = cancelled_requests_.load(std::memory_order_relaxed);
  return s;
}

std::vector<ScanGroupInfo> RegenServer::scan_group_infos() const {
  return scan_groups_.Infos();
}

ScanGroup::Counters RegenServer::scan_group_totals() const {
  return scan_groups_.totals();
}

}  // namespace hydra
