#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "hydra/tuple_generator.h"

namespace hydra {

namespace {

int ResolvePoolThreads(const ServeOptions& options) {
  const int threads = options.num_threads == 0 ? ThreadPool::DefaultThreads()
                                               : options.num_threads;
  return std::max(1, threads);
}

int ResolveInflight(const ServeOptions& options, int pool_threads) {
  return options.max_inflight == 0 ? pool_threads
                                   : std::max(1, options.max_inflight);
}

}  // namespace

RegenServer::RegenServer(ServeOptions options)
    : options_(options),
      store_(options.cache_bytes),
      scheduler_(ResolveInflight(options, ResolvePoolThreads(options))) {
  if (options_.batch_rows < 1) options_.batch_rows = 1;
  const int threads = ResolvePoolThreads(options_);
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

RegenServer::~RegenServer() = default;

Status RegenServer::RegisterSummary(const std::string& id,
                                    const std::string& path) {
  return store_.Register(id, path);
}

StatusOr<uint64_t> RegenServer::OpenSession(const std::string& summary_id) {
  // Load (or touch) the summary now so registration errors and corrupt
  // files fail the open, not the first batch.
  HYDRA_ASSIGN_OR_RETURN(const SummaryLease lease, store_.Acquire(summary_id));
  (void)lease;
  auto session = std::make_shared<Session>();
  session->summary_id = summary_id;
  session->slot = std::make_unique<ExecContext>(
      ExecOptions{options_.query_parallelism, options_.morsel_rows},
      pool_.get(), options_.query_parallelism);
  std::lock_guard<std::mutex> lock(mu_);
  session->id = next_session_id_++;
  sessions_.emplace(session->id, session);
  return session->id;
}

Status RegenServer::CloseSession(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.erase(session_id) == 0) {
    return Status::NotFound("no such session");
  }
  return Status::OK();
}

StatusOr<std::shared_ptr<RegenServer::Session>> RegenServer::FindSession(
    uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  return it->second;
}

StatusOr<uint64_t> RegenServer::OpenCursor(uint64_t session_id,
                                           CursorSpec spec) {
  HYDRA_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                         FindSession(session_id));
  HYDRA_ASSIGN_OR_RETURN(const SummaryLease lease,
                         store_.Acquire(session->summary_id));
  const Schema& schema = lease.summary().schema;
  if (spec.relation < 0 || spec.relation >= schema.num_relations()) {
    return Status::InvalidArgument("cursor relation out of range");
  }
  const int width = schema.relation(spec.relation).num_attributes();
  for (const int col : spec.filter.Columns()) {
    if (col < 0 || col >= width) {
      return Status::InvalidArgument("cursor filter column out of range");
    }
  }
  for (const int col : spec.projection) {
    if (col < 0 || col >= width) {
      return Status::InvalidArgument("cursor projection column out of range");
    }
  }
  const int64_t rows =
      static_cast<int64_t>(lease.generator().RowCount(spec.relation));
  Cursor cursor;
  cursor.end_rank =
      spec.end_rank < 0 ? rows : std::min<int64_t>(spec.end_rank, rows);
  cursor.next_rank =
      std::max<int64_t>(0, std::min(spec.begin_rank, cursor.end_rank));
  cursor.source_width = width;
  cursor.out_width = spec.projection.empty()
                         ? width
                         : static_cast<int>(spec.projection.size());
  cursor.spec = std::move(spec);
  std::lock_guard<std::mutex> lock(session->mu);
  const uint64_t cursor_id = session->next_cursor_id++;
  session->cursors.emplace(cursor_id, std::move(cursor));
  return cursor_id;
}

StatusOr<bool> RegenServer::NextBatch(uint64_t session_id, uint64_t cursor_id,
                                      RowBlock* out) {
  HYDRA_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                         FindSession(session_id));
  std::lock_guard<std::mutex> lock(session->mu);
  const auto it = session->cursors.find(cursor_id);
  if (it == session->cursors.end()) return Status::NotFound("no such cursor");
  Cursor& cursor = it->second;
  out->Reset(cursor.out_width);

  // One admission grant per source morsel: a selective filter costs several
  // grants (other sessions interleave between them), never one unbounded
  // scan. The summary lease is taken inside the grant, so cache loads are
  // admission-controlled work too — and eviction between grants is fine:
  // the cursor addresses ranks, not a generator instance.
  Status status = Status::OK();
  while (out->empty() && cursor.next_rank < cursor.end_rank && status.ok()) {
    scheduler_.Admit(session->id, [&] {
      StatusOr<SummaryLease> lease = store_.Acquire(session->summary_id);
      if (!lease.ok()) {
        status = lease.status();
        return;
      }
      const int64_t morsel = std::min<int64_t>(
          options_.batch_rows, cursor.end_rank - cursor.next_rank);
      cursor.scratch.Reset(cursor.source_width);
      // Reuse the streaming cursor while the same generator instance is
      // resident; after an eviction the lease hands back a different
      // instance (same bytes — it reloaded the same file) and the state
      // is rebuilt at next_rank. Comparing against a possibly-dangling
      // old pointer is fine: it is never dereferenced, and on an address
      // match the cached state was derived from identical summary content.
      const TupleGenerator& generator = lease->generator();
      if (cursor.gen_cursor == nullptr || cursor.gen_instance != &generator ||
          cursor.gen_cursor->position() != cursor.next_rank) {
        cursor.gen_cursor = std::make_unique<TupleGenerator::Cursor>(
            generator, cursor.spec.relation, cursor.next_rank);
        cursor.gen_instance = &generator;
      }
      const int64_t generated = cursor.gen_cursor->Fill(
          morsel, cursor.scratch.AppendUninitialized(morsel));
      cursor.scratch.Truncate(generated);
      cursor.next_rank = cursor.gen_cursor->position();
      const bool unfiltered = cursor.spec.filter.IsTrue();
      const auto& projection = cursor.spec.projection;
      for (int64_t r = 0; r < generated; ++r) {
        const Value* row = cursor.scratch.RowPtr(r);
        if (!unfiltered && !cursor.spec.filter.Eval(row)) continue;
        if (projection.empty()) {
          out->AppendRow(row);
        } else {
          Value* dst = out->AppendRow();
          for (size_t c = 0; c < projection.size(); ++c) {
            dst[c] = row[projection[c]];
          }
        }
      }
    });
  }
  HYDRA_RETURN_IF_ERROR(status);
  if (out->empty()) return false;
  batches_served_.fetch_add(1, std::memory_order_relaxed);
  rows_served_.fetch_add(static_cast<uint64_t>(out->num_rows()),
                         std::memory_order_relaxed);
  return true;
}

StatusOr<int64_t> RegenServer::CursorRank(uint64_t session_id,
                                          uint64_t cursor_id) {
  HYDRA_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                         FindSession(session_id));
  std::lock_guard<std::mutex> lock(session->mu);
  const auto it = session->cursors.find(cursor_id);
  if (it == session->cursors.end()) return Status::NotFound("no such cursor");
  return it->second.next_rank;
}

Status RegenServer::CloseCursor(uint64_t session_id, uint64_t cursor_id) {
  HYDRA_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                         FindSession(session_id));
  std::lock_guard<std::mutex> lock(session->mu);
  if (session->cursors.erase(cursor_id) == 0) {
    return Status::NotFound("no such cursor");
  }
  return Status::OK();
}

Status RegenServer::Lookup(uint64_t session_id, int relation, int64_t pk,
                           Row* out) {
  HYDRA_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                         FindSession(session_id));
  std::lock_guard<std::mutex> lock(session->mu);
  Status status = Status::OK();
  scheduler_.Admit(session->id, [&] {
    StatusOr<SummaryLease> lease = store_.Acquire(session->summary_id);
    if (!lease.ok()) {
      status = lease.status();
      return;
    }
    const Schema& schema = lease->summary().schema;
    if (relation < 0 || relation >= schema.num_relations()) {
      status = Status::InvalidArgument("lookup relation out of range");
      return;
    }
    if (pk < 0 ||
        pk >= static_cast<int64_t>(lease->generator().RowCount(relation))) {
      status = Status::OutOfRange("lookup pk out of range");
      return;
    }
    lease->generator().GetTuple(relation, pk, out);
  });
  HYDRA_RETURN_IF_ERROR(status);
  lookups_served_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

StatusOr<AnnotatedQueryPlan> RegenServer::ExecuteQuery(uint64_t session_id,
                                                       const Query& query) {
  HYDRA_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                         FindSession(session_id));
  std::lock_guard<std::mutex> lock(session->mu);
  StatusOr<AnnotatedQueryPlan> result =
      Status::Internal("query never admitted");
  scheduler_.Admit(session->id, [&] {
    StatusOr<SummaryLease> lease = store_.Acquire(session->summary_id);
    if (!lease.ok()) {
      result = lease.status();
      return;
    }
    // The whole pipeline runs under one grant on this client's thread; its
    // intra-query fan-out goes to the shared pool through the session's
    // scheduler slot. Pool tasks never block on other pool tasks, so slots
    // cannot deadlock the pool.
    const Executor executor(lease->summary().schema, session->slot.get());
    result = executor.Execute(query, lease->generator());
  });
  if (result.ok()) queries_served_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

ServeStats RegenServer::stats() const {
  ServeStats s;
  const SummaryStore::Stats store = store_.stats();
  s.cache_hits = store.hits;
  s.cache_misses = store.misses;
  s.evictions = store.evictions;
  s.cached_bytes = store.cached_bytes;
  s.resident_summaries = store.resident;
  s.batches_served = batches_served_.load(std::memory_order_relaxed);
  s.rows_served = rows_served_.load(std::memory_order_relaxed);
  s.lookups_served = lookups_served_.load(std::memory_order_relaxed);
  s.queries_served = queries_served_.load(std::memory_order_relaxed);
  s.admission_waits = scheduler_.admission_waits();
  return s;
}

}  // namespace hydra
