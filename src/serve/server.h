// RegenServer — the dynamic-regeneration service (docs/serve.md).
//
// One process serves many concurrent clients against many virtual
// databases: a client opens a session on a registered summary id, then
// streams rows through cursors (bounded filtered/projected rank scans over
// the TupleGenerator), issues point lookups, or runs full engine pipelines
// (the morsel-driven executor on a scheduler slot over the server's shared
// pool). Nothing is materialized — every served row is generated on demand
// from the summary, the paper's Section 6 `datagen` path made multi-tenant.
//
// API contract (serve_api.h): this class and the TCP front end
// (src/net/) expose the same typed surface — SessionHandle/CursorHandle,
// OpenSessionRequest, BatchResult — so an in-process embedder and a wire
// client are interchangeable, and every error maps to a stable
// ServeErrorCode the wire transmits verbatim.
//
// Determinism contract: a cursor's concatenated row stream is a pure
// function of (summary file, CursorSpec) — identical across any
// {num_threads, max_inflight, cache_bytes, batch_rows} configuration, any
// interleaving with other sessions, and across evictions: cursors address
// the rank space, so a cursor whose summary was evicted and reloaded (or a
// brand-new cursor opened at BatchResult::rank) continues byte-identically.
//
// Threading: the server is thread-safe; each session is a single-client
// object (concurrent calls into one session serialize on its lock). All
// work is admission-controlled by the FairScheduler, so total concurrent
// work never exceeds ServeOptions::max_inflight. Per-session QoS
// (OpenSessionRequest::priority / rate_limit_rows_per_sec) weights and
// paces that admission; see scheduler.h.
//
// Failure domain (docs/robustness.md): every request observes the
// session's CancelScope — the client's own CancelToken, the per-session
// deadline, and the server's shutdown signal — and unwinds with
// kCancelled / kDeadlineExceeded within one admission grant of the signal.
// Overload sheds (kResourceExhausted) instead of queueing unboundedly, and
// cache overcommit degrades batch sizes before refusing anything.
// Shutdown() drains gracefully: new opens get kUnavailable, in-flight work
// finishes its bounded quantum, and the call returns once nothing runs.

#ifndef HYDRA_SERVE_SERVER_H_
#define HYDRA_SERVE_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/executor.h"
#include "engine/operators.h"
#include "query/predicate.h"
#include "query/query.h"
#include "serve/scan_group.h"
#include "serve/scheduler.h"
#include "serve/serve_api.h"
#include "serve/serve_options.h"
#include "serve/summary_store.h"

namespace hydra {

class RegenServer {
 public:
  explicit RegenServer(ServeOptions options = {});
  ~RegenServer();

  RegenServer(const RegenServer&) = delete;
  RegenServer& operator=(const RegenServer&) = delete;

  // Registers the summary file at `path` under `id` (loaded lazily on
  // first use; see SummaryStore).
  Status RegisterSummary(const std::string& id, const std::string& path);

  // Opens a session against a registered summary and installs the
  // request's deadline and QoS. Validates that the summary loads (so a
  // corrupt file fails here, not mid-stream). Fails with kUnavailable
  // after Shutdown() and with kResourceExhausted when the server is
  // shedding (session cap reached or admission queue full).
  StatusOr<SessionHandle> OpenSession(const OpenSessionRequest& request);
  Status CloseSession(SessionHandle session);

  // Trips the session's server-side cancel flag: every queued and future
  // request of the session fails with kCancelled; in-flight work stops
  // within one admission grant. The session stays open (CloseSession still
  // applies) so the client can observe the terminal error.
  Status CancelSession(SessionHandle session);

  // Graceful drain: new opens fail with kUnavailable, every session is
  // cancelled, queued admissions are woken to leave, and the call blocks
  // until no work is admitted or queued. Idempotent; the destructor calls
  // it. Existing sessions stay readable for stats/errors until closed.
  Status Shutdown();
  bool shutting_down() const {
    return shutting_down_.load(std::memory_order_relaxed);
  }

  // Opens a cursor; the spec is validated against the summary's schema.
  StatusOr<CursorHandle> OpenCursor(SessionHandle session, CursorSpec spec);

  // Next batch of the cursor's stream: non-empty rows mid-stream, or
  // done=true (empty rows) at end of stream; rank is the resume token
  // after the batch. Pass the previous result's rows back as `reuse` to
  // recycle its buffers. Each admitted grant generates at most
  // ServeOptions::batch_rows source ranks, so selective filters cost
  // several grants — between which other sessions interleave — rather
  // than one unbounded one. Batch boundaries are an implementation
  // detail; only the concatenated stream is contractual.
  StatusOr<BatchResult> NextBatch(SessionHandle session, CursorHandle cursor,
                                  RowBlock&& reuse = RowBlock());

  // Rank of the next row the cursor would emit — the resume token: a new
  // cursor opened with begin_rank = CursorRank() continues the stream.
  StatusOr<int64_t> CursorRank(SessionHandle session, CursorHandle cursor);
  Status CloseCursor(SessionHandle session, CursorHandle cursor);

  // Point lookup: the tuple whose PK is `pk` (PK values are ranks).
  StatusOr<Row> Lookup(SessionHandle session, int relation, int64_t pk);

  // Full engine pipeline over the session's virtual database: executes
  // `query` with the morsel-driven executor on this session's scheduler
  // slot (ExecContext external-slot mode over the shared pool) and returns
  // the annotated plan. Results are identical at any server configuration.
  StatusOr<AnnotatedQueryPlan> ExecuteQuery(SessionHandle session,
                                            const Query& query);

  ServeStats stats() const;
  // Per-scan-group introspection: one row per live group (identity,
  // fan-out, lifetime counters). The metrics provider re-exports these as
  // "serve/group/<summary>/<relation>/..." gauges in every snapshot.
  std::vector<ScanGroupInfo> scan_group_infos() const;
  // Lifetime scan-group counter totals, exact across group churn. Always
  // equals the matching ServeStats aggregates (fills/hits/catch_up) — the
  // chaos harness holds the two populations to each other.
  ScanGroup::Counters scan_group_totals() const;
  const ServeOptions& options() const { return options_; }
  // Resolved worker count of the shared pool (1 = sequential serving).
  int pool_threads() const { return pool_ ? pool_->num_threads() : 1; }

 private:
  struct Cursor {
    CursorSpec spec;
    int64_t next_rank = 0;
    int64_t end_rank = 0;
    // Row count of the relation, fixed by the summary at OpenCursor; lets
    // the shared fast path bound its chunk without acquiring a lease.
    int64_t relation_rows = 0;
    int source_width = 0;
    int out_width = 0;
    // The spec's filter compiled to column kernels once at OpenCursor; every
    // grant evaluates it over the generated columns via a selection vector.
    kernels::BlockPredicate filter;
    SelVector sel;     // per-grant selection scratch, capacity reused
    RowBlock scratch;  // source-width generation buffer, reused per morsel
    // Streaming state over the *currently resident* generator, kept across
    // grants so consecutive batches resume in O(1) (no per-batch
    // prefix-sum search). gen_instance identifies the generator it was
    // built over; a mismatch (the summary was evicted and reloaded) or a
    // rank mismatch (external reposition) rebuilds it via Seek.
    std::unique_ptr<TupleGenerator::Cursor> gen_cursor;
    const TupleGenerator* gen_instance = nullptr;
    // Shared-scan membership (docs/serve.md): non-null while this cursor is
    // a member of its (summary, relation) scan group. Grants fan out of the
    // group's shared chunks whenever the group has >= 2 members and the
    // grant is not degraded; otherwise the private path above serves as
    // before. Membership ends at CloseCursor/CloseSession or on a terminal
    // cancel/deadline — a detached member never disturbs the group.
    std::shared_ptr<ScanGroup> group;
    uint64_t member = 0;
  };
  struct Session {
    uint64_t id = 0;
    std::string summary_id;
    std::mutex mu;  // serializes calls into this session
    std::unordered_map<uint64_t, Cursor> cursors;
    uint64_t next_cursor_id = 1;
    // This session's engine-pipeline slot over the server's shared pool.
    std::unique_ptr<ExecContext> slot;
    // Failure domain: the client's token (may be null), the session
    // deadline, and the server-side flag Shutdown()/CancelSession() trip.
    std::shared_ptr<CancelToken> user_cancel;
    Deadline deadline;
    CancelToken server_cancel;
  };

  StatusOr<std::shared_ptr<Session>> FindSession(uint64_t session_id);
  // The scope every request of `session` polls: user token + deadline +
  // server-side cancel. Valid while the shared_ptr is held.
  static CancelScope SessionScope(const Session& session) {
    return CancelScope(session.user_cancel.get(), session.deadline,
                       &session.server_cancel);
  }
  // Rows one cursor grant may generate right now: batch_rows normally,
  // proportionally less (floored) while the summary cache is overcommitted.
  int64_t EffectiveBatchRows();
  // Counts a request that ended with kCancelled/kDeadlineExceeded.
  Status TallyTerminal(Status status);
  // One shared-scan grant: acquires (generating at most once across the
  // group) the chunk covering cursor.next_rank and fans this member's rows
  // out of it. Runs inside an admission grant; session.mu held.
  Status SharedGrant(Session& session, Cursor& cursor,
                     const TupleGenerator& generator, const CancelScope& scope,
                     RowBlock* out);
  // Admission-free multicast serve: when the chunk covering
  // cursor.next_rank is already resident in the group's ring, fans this
  // member's rows out of it and returns true — without a scheduler grant
  // or a summary lease. The generation work was the producer's admission
  // (and was charged to every peer), so a consumer replaying it from
  // memory must not also queue behind the producers: routing hits through
  // admission lets paced producers hold every inflight slot while the
  // member they are pacing on waits for one, convoying the whole group on
  // the eviction grace. Returns false on a miss (or an in-flight load):
  // the caller takes the admitted path. session.mu held.
  bool TrySharedFastPath(Cursor& cursor, RowBlock* out);
  // Fans cursor's rows in [next_rank, min(end_rank, chunk_end)) out of the
  // shared chunk `block` (covering ranks [base, chunk_end)) through the
  // cursor's own filter and projection, advancing next_rank. session.mu
  // held.
  void FanOutShared(Cursor& cursor, const RowBlock& block, int64_t base,
                    int64_t chunk_end, RowBlock* out);
  // Ends the cursor's group membership, if any. session.mu held.
  void DetachCursor(Session& session, Cursor& cursor);
  // Slow-op log (docs/observability.md): when the op's measured latency
  // reaches ServeOptions::slow_op_ms, emits one structured stderr line off
  // the histogram timer's own measurement. rank < 0 = not applicable.
  void MaybeLogSlowOp(const char* op, uint64_t session_id,
                      const std::string& summary_id, int64_t rank,
                      const ScopedLatencyTimer& timer);

  ServeOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when serving sequentially
  SummaryStore store_;
  FairScheduler scheduler_;
  ScanGroupRegistry scan_groups_;

  std::mutex mu_;  // guards sessions_ / next_session_id_
  std::unordered_map<uint64_t, std::shared_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;

  std::atomic<bool> shutting_down_{false};
  std::atomic<uint64_t> batches_served_{0};
  std::atomic<uint64_t> rows_served_{0};
  std::atomic<uint64_t> lookups_served_{0};
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> opens_shed_{0};
  std::atomic<uint64_t> degraded_batches_{0};
  std::atomic<uint64_t> cancelled_requests_{0};
  std::atomic<uint64_t> shared_chunk_fills_{0};
  std::atomic<uint64_t> shared_chunk_hits_{0};
  std::atomic<uint64_t> catch_up_batches_{0};

  // Re-exports stats() and scan_group_infos() as gauges into every
  // MetricRegistry::Snapshot() under the "serve" prefix ("serve#2"... for
  // further instances). Declared last: it registers fully-constructed
  // state and unregisters before any member it reads is destroyed.
  MetricsProvider metrics_provider_;
};

}  // namespace hydra

#endif  // HYDRA_SERVE_SERVER_H_
