// Configuration and observability types of the dynamic-regeneration service
// (docs/serve.md). One ServeOptions configures the whole server: the shared
// worker pool, the summary cache budget, the admission window, and the
// per-request work bound.

#ifndef HYDRA_SERVE_SERVE_OPTIONS_H_
#define HYDRA_SERVE_SERVE_OPTIONS_H_

#include <cstdint>

namespace hydra {

struct ServeOptions {
  // Workers in the shared pool engine pipelines fan out on. 0 = one per
  // hardware thread; 1 = fully sequential serving.
  int num_threads = 0;
  // Byte budget of the summary cache. Unpinned summaries beyond the budget
  // are evicted LRU-first and transparently reloaded from disk on the next
  // acquire; pinned (in-use) summaries are never evicted, so the resident
  // set may transiently exceed the budget under load.
  uint64_t cache_bytes = 64ull << 20;
  // Source ranks generated per admitted cursor grant: the unit of work one
  // NextBatch admission buys, and therefore the granularity at which the
  // scheduler interleaves sessions. Stream *content* never depends on it.
  int64_t batch_rows = 4096;
  // Concurrently admitted requests; 0 = the resolved pool width. This is
  // the backpressure knob: clients beyond the window queue in the fair
  // round-robin admission queue.
  int max_inflight = 0;
  // Fan-out width of one session's engine-pipeline scheduler slot
  // (ExecContext external-slot mode over the shared pool). 1 = pipelines
  // run sequentially on the client's thread.
  int query_parallelism = 2;
  // Morsel size inside engine pipelines (ExecOptions::morsel_rows).
  int64_t morsel_rows = 4096;

  // --- shared scan (docs/serve.md) ---------------------------------------
  // Multicast regeneration: cursors over the same (summary, relation) form
  // a scan group, and while a group has >= 2 members each grant serves the
  // member from a shared batch_rows-aligned chunk — one generation pass per
  // chunk feeds every member instead of one pass per member. Streams stay
  // byte-identical to their solo runs (fan-out is the member's own
  // filter/projection over the shared block). Off = every cursor generates
  // privately, the pre-shared-scan behavior.
  bool shared_scan = true;
  // Resident chunks per scan group (the shared-chunk ring). Members whose
  // ranks fall within this many chunks of each other share every pass; a
  // straggler farther behind regenerates its own chunks (bounded catch-up)
  // until it re-enters the window.
  int shared_scan_chunks = 4;

  // --- failure domain (docs/robustness.md) -------------------------------
  // Load shedding: admission requests beyond this many queued waiters are
  // fast-rejected with kResourceExhausted instead of queueing unboundedly,
  // and OpenSession refuses new sessions while the queue is that deep.
  // 0 = unbounded (the pre-shedding behavior).
  int max_queued = 0;
  // Hard cap on concurrently open sessions; opens beyond it are rejected
  // with kResourceExhausted. 0 = unbounded.
  int max_sessions = 0;
  // Degradation before refusal: while the summary cache is overcommitted
  // (pinned entries exceed cache_bytes), cursor grants shrink their morsel
  // proportionally — smaller work quanta under memory pressure — down to
  // this floor. Stream *content* never depends on it. 0 disables.
  int64_t min_degraded_batch_rows = 64;
  // Transient-load retry: a summary load failing with kIoError or
  // kUnavailable is retried up to this many additional times with capped
  // exponential backoff and deterministic jitter.
  int load_retries = 3;
  int64_t load_retry_base_ms = 2;   // backoff = base << attempt, jittered
  int64_t load_retry_max_ms = 100;  // cap per sleep

  // --- observability (docs/observability.md) -----------------------------
  // Slow-op log: a NextBatch or OpenSession whose end-to-end latency
  // reaches this threshold emits one structured stderr line (session id,
  // summary id, rank, duration), riding the same measurement its latency
  // histogram records. 0 = disabled.
  int64_t slow_op_ms = 0;
  // Enables span tracing (common/trace.h) at server construction — the
  // programmatic equivalent of HYDRA_TRACE=1.
  bool trace_spans = false;
};

// Monotonic counters snapshotted by RegenServer::stats(). Plain values —
// the server keeps atomics internally.
struct ServeStats {
  // Summary cache.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;  // disk loads, including reloads after eviction
  uint64_t evictions = 0;
  uint64_t cached_bytes = 0;    // resident bytes right now
  uint64_t resident_summaries = 0;
  // Serving.
  uint64_t batches_served = 0;  // non-empty cursor batches handed out
  uint64_t rows_served = 0;     // rows across those batches
  uint64_t lookups_served = 0;
  uint64_t queries_served = 0;  // full engine pipelines
  uint64_t admission_waits = 0;  // grants that queued behind a full window
  uint64_t admission_grants = 0;  // tickets granted a slot by the
                                  // fair scheduler
  // Shared scan.
  uint64_t scan_groups_formed = 0;  // groups that reached >= 2 members
  uint64_t peak_group_fanout = 0;   // most members any group ever had
  uint64_t shared_chunk_fills = 0;  // generation passes into shared chunks
  uint64_t shared_chunk_hits = 0;   // member grants served from a resident
                                    // chunk — generation passes saved
  uint64_t catch_up_batches = 0;    // chunk fills behind the group frontier
                                    // (late joiners regenerating their
                                    // missed prefix)
  uint64_t shared_charges = 0;      // fairness debt units charged to members
                                    // a shared pass served
  // QoS (docs/serve.md): per-session priority + rate limit, set at
  // OpenSession (OpenSessionRequest) and enforced by the FairScheduler.
  uint64_t priority_skips = 0;    // rotation turns yielded to a
                                  // higher-priority session
  uint64_t rate_deferrals = 0;    // grants deferred by a drained
                                  // token bucket
  // Failure domain.
  uint64_t load_retries = 0;      // transient summary-load attempts retried
  uint64_t shed_requests = 0;     // admissions/opens rejected by shedding
  uint64_t degraded_batches = 0;  // cursor grants shrunk under overcommit
  uint64_t cancelled_requests = 0;  // requests ended by cancel/deadline
};

}  // namespace hydra

#endif  // HYDRA_SERVE_SERVE_OPTIONS_H_
