// Configuration and observability types of the dynamic-regeneration service
// (docs/serve.md). One ServeOptions configures the whole server: the shared
// worker pool, the summary cache budget, the admission window, and the
// per-request work bound.

#ifndef HYDRA_SERVE_SERVE_OPTIONS_H_
#define HYDRA_SERVE_SERVE_OPTIONS_H_

#include <cstdint>

namespace hydra {

struct ServeOptions {
  // Workers in the shared pool engine pipelines fan out on. 0 = one per
  // hardware thread; 1 = fully sequential serving.
  int num_threads = 0;
  // Byte budget of the summary cache. Unpinned summaries beyond the budget
  // are evicted LRU-first and transparently reloaded from disk on the next
  // acquire; pinned (in-use) summaries are never evicted, so the resident
  // set may transiently exceed the budget under load.
  uint64_t cache_bytes = 64ull << 20;
  // Source ranks generated per admitted cursor grant: the unit of work one
  // NextBatch admission buys, and therefore the granularity at which the
  // scheduler interleaves sessions. Stream *content* never depends on it.
  int64_t batch_rows = 4096;
  // Concurrently admitted requests; 0 = the resolved pool width. This is
  // the backpressure knob: clients beyond the window queue in the fair
  // round-robin admission queue.
  int max_inflight = 0;
  // Fan-out width of one session's engine-pipeline scheduler slot
  // (ExecContext external-slot mode over the shared pool). 1 = pipelines
  // run sequentially on the client's thread.
  int query_parallelism = 2;
  // Morsel size inside engine pipelines (ExecOptions::morsel_rows).
  int64_t morsel_rows = 4096;
};

// Monotonic counters snapshotted by RegenServer::stats(). Plain values —
// the server keeps atomics internally.
struct ServeStats {
  // Summary cache.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;  // disk loads, including reloads after eviction
  uint64_t evictions = 0;
  uint64_t cached_bytes = 0;    // resident bytes right now
  uint64_t resident_summaries = 0;
  // Serving.
  uint64_t batches_served = 0;  // non-empty cursor batches handed out
  uint64_t rows_served = 0;     // rows across those batches
  uint64_t lookups_served = 0;
  uint64_t queries_served = 0;  // full engine pipelines
  uint64_t admission_waits = 0;  // grants that queued behind a full window
};

}  // namespace hydra

#endif  // HYDRA_SERVE_SERVE_OPTIONS_H_
