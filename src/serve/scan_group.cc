#include "serve/scan_group.h"

#include <algorithm>
#include <chrono>

#include "common/failpoint.h"

namespace hydra {

// Fires as a producer claims a shared chunk, before the generation pass:
// error(...) fails that member's request cleanly and resets the slot so the
// waiting members re-elect a producer; delay(ms) holds the slot in its
// loading state, stretching how long the group's waiters park.
HYDRA_FAILPOINT_DEFINE(g_fp_shared_chunk, "serve/shared_chunk");

ScanGroup::ScanGroup(int64_t chunk_rows, int num_slots)
    : chunk_rows_(std::max<int64_t>(1, chunk_rows)),
      slots_(std::max(1, num_slots)) {}

// How long a producer paces the frontier for a slow in-window member
// before evicting the chunk out from under it (degrading that member to a
// catch-up refill). The costs are asymmetric: an expired grace costs the
// straggler one bounded chunk_rows refill later, while pacing stalls every
// frontier member for the full wait — so the grace is sized to ride out a
// briefly descheduled client thread, not a wedged one.
constexpr auto kEvictGrace = std::chrono::milliseconds(15);

uint64_t ScanGroup::Join(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t member = next_member_++;
  members_.emplace(member, Member{session_id, -1});
  return member;
}

void ScanGroup::Leave(uint64_t member) {
  std::lock_guard<std::mutex> lock(mu_);
  members_.erase(member);
}

int ScanGroup::member_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(members_.size());
}

std::vector<uint64_t> ScanGroup::PeerSessions(uint64_t self_session) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> peers;
  for (const auto& [member, state] : members_) {
    if (state.session == self_session) continue;
    if (std::find(peers.begin(), peers.end(), state.session) == peers.end()) {
      peers.push_back(state.session);
    }
  }
  return peers;
}

bool ScanGroup::NeededLocked(int64_t chunk, uint64_t self) const {
  // Members below the window are stragglers regenerating their own missed
  // chunks; holding the frontier for them would stall the group behind an
  // entire catch-up, so only in-window members pace eviction.
  const int64_t window = top_chunk_ - static_cast<int64_t>(slots_.size());
  for (const auto& [member, state] : members_) {
    if (member == self) continue;
    if (state.pos >= window && state.pos < chunk) return true;
  }
  return false;
}

void ScanGroup::AdvanceMemberLocked(uint64_t member, int64_t chunk) {
  const auto it = members_.find(member);
  if (it == members_.end() || chunk <= it->second.pos) return;
  it->second.pos = chunk;
  published_cv_.notify_all();
}

bool ScanGroup::TryAcquireResident(uint64_t member, int64_t chunk,
                                   ChunkResult* result) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& slot : slots_) {
    if (slot.chunk != chunk || slot.loading) continue;
    slot.stamp = ++stamp_counter_;
    ++counters_.hits;
    AdvanceMemberLocked(member, chunk);
    result->block = slot.block;
    result->produced = false;
    result->catch_up = false;
    return true;
  }
  return false;
}

Status ScanGroup::AcquireChunk(uint64_t member, int64_t chunk,
                               const CancelScope& scope,
                               const std::function<Status(RowBlock*)>& fill,
                               ChunkResult* result) {
  const auto evict_deadline = std::chrono::steady_clock::now() + kEvictGrace;
  Slot* claimed = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      HYDRA_RETURN_IF_ERROR(scope.Check());
      Slot* hit = nullptr;
      for (Slot& slot : slots_) {
        if (slot.chunk == chunk) {
          hit = &slot;
          break;
        }
      }
      if (hit != nullptr) {
        if (!hit->loading) {
          hit->stamp = ++stamp_counter_;
          ++counters_.hits;
          AdvanceMemberLocked(member, chunk);
          result->block = hit->block;
          result->produced = false;
          result->catch_up = false;
          return Status::OK();
        }
        // Another member is generating this chunk right now: park until it
        // publishes (or fails, resetting the slot — then re-elect). The
        // periodic timeout bounds how stale a tripped cancel goes unseen.
        published_cv_.wait_for(lock, std::chrono::milliseconds(10));
        continue;
      }
      // Miss: claim an idle slot as producer — an empty one, else the
      // least-recently-used slot whose chunk no in-window member still
      // needs. Evicting a needed chunk would only push that member into a
      // catch-up refill of the very same ranks, so while every idle slot
      // is needed the producer waits, pacing the frontier to the slowest
      // in-window member — until the grace deadline, after which the LRU
      // needed slot goes anyway (a stalled member degrades to catch-up
      // instead of wedging the group). With every slot mid-load, wait for
      // one to settle rather than grow the ring.
      Slot* victim = nullptr;
      Slot* needed_lru = nullptr;
      for (Slot& slot : slots_) {
        if (slot.loading) continue;
        if (slot.chunk == -1) {
          victim = &slot;
          break;
        }
        if (NeededLocked(slot.chunk, member)) {
          if (needed_lru == nullptr || slot.stamp < needed_lru->stamp) {
            needed_lru = &slot;
          }
        } else if (victim == nullptr || slot.stamp < victim->stamp) {
          victim = &slot;
        }
      }
      if (victim == nullptr && needed_lru != nullptr &&
          std::chrono::steady_clock::now() >= evict_deadline) {
        victim = needed_lru;
      }
      if (victim == nullptr) {
        // Pacing: every idle slot is still needed by an in-window member
        // (needed_lru set) — the frontier waits for the slowest member.
        // With every slot mid-load instead, this is just producer backoff.
        if (needed_lru != nullptr) ++counters_.pacing_waits;
        published_cv_.wait_for(lock, std::chrono::milliseconds(10));
        continue;
      }
      victim->chunk = chunk;
      victim->loading = true;
      victim->block = nullptr;
      claimed = victim;
      break;
    }
  }
  // Produce outside the lock: other members keep hitting resident chunks
  // (and other producers keep filling other slots) while this one runs.
  Status status;
  if (g_fp_shared_chunk.armed()) status = g_fp_shared_chunk.Fire();
  auto block = std::make_shared<RowBlock>();
  if (status.ok()) status = fill(block.get());
  std::lock_guard<std::mutex> lock(mu_);
  if (!status.ok()) {
    // Failed fill: free the slot so the waiters re-elect a producer; this
    // member's request reports the error.
    claimed->chunk = -1;
    claimed->loading = false;
    published_cv_.notify_all();
    return status;
  }
  claimed->block = std::move(block);
  claimed->loading = false;
  claimed->stamp = ++stamp_counter_;
  AdvanceMemberLocked(member, chunk);
  result->block = claimed->block;
  result->produced = true;
  result->catch_up = chunk < top_chunk_;
  ++counters_.fills;
  if (result->catch_up) ++counters_.catch_up;
  top_chunk_ = std::max(top_chunk_, chunk);
  published_cv_.notify_all();
  return Status::OK();
}

ScanGroup::Counters ScanGroup::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

ScanGroupRegistry::ScanGroupRegistry(int64_t chunk_rows, int num_slots)
    : chunk_rows_(chunk_rows), num_slots_(num_slots) {}

std::shared_ptr<ScanGroup> ScanGroupRegistry::Join(
    const std::string& summary_id, int relation, uint64_t session_id,
    uint64_t* member) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& group = groups_[{summary_id, relation}];
  if (group == nullptr) {
    group = std::make_shared<ScanGroup>(chunk_rows_, num_slots_);
  }
  *member = group->Join(session_id);
  const uint64_t fanout = static_cast<uint64_t>(group->member_count());
  if (fanout == 2) ++groups_formed_;
  peak_fanout_ = std::max(peak_fanout_, fanout);
  return group;
}

void ScanGroupRegistry::Leave(const std::string& summary_id, int relation,
                              const std::shared_ptr<ScanGroup>& group,
                              uint64_t member) {
  std::lock_guard<std::mutex> lock(mu_);
  group->Leave(member);
  if (group->member_count() == 0) {
    const auto it = groups_.find({summary_id, relation});
    if (it != groups_.end() && it->second == group) {
      // Fold the dying group's counters into the registry totals so
      // totals() stays exact across group churn.
      const ScanGroup::Counters c = group->counters();
      dead_totals_.fills += c.fills;
      dead_totals_.hits += c.hits;
      dead_totals_.catch_up += c.catch_up;
      dead_totals_.pacing_waits += c.pacing_waits;
      groups_.erase(it);
    }
  }
}

std::vector<ScanGroupInfo> ScanGroupRegistry::Infos() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ScanGroupInfo> infos;
  infos.reserve(groups_.size());
  for (const auto& [key, group] : groups_) {
    ScanGroupInfo info;
    info.summary_id = key.first;
    info.relation = key.second;
    info.fanout = static_cast<uint64_t>(group->member_count());
    const ScanGroup::Counters c = group->counters();
    info.fills = c.fills;
    info.hits = c.hits;
    info.catch_up = c.catch_up;
    info.pacing_waits = c.pacing_waits;
    infos.push_back(std::move(info));
  }
  return infos;
}

ScanGroup::Counters ScanGroupRegistry::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  ScanGroup::Counters totals = dead_totals_;
  for (const auto& [key, group] : groups_) {
    const ScanGroup::Counters c = group->counters();
    totals.fills += c.fills;
    totals.hits += c.hits;
    totals.catch_up += c.catch_up;
    totals.pacing_waits += c.pacing_waits;
  }
  return totals;
}

uint64_t ScanGroupRegistry::groups_formed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return groups_formed_;
}

uint64_t ScanGroupRegistry::peak_fanout() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_fanout_;
}

}  // namespace hydra
