// SummaryStore — the serving layer's registry of virtual databases.
//
// Each registered id names a summary file on disk. Acquire() returns a
// refcounted lease over the loaded summary plus a TupleGenerator built on
// it; the store keeps loaded entries behind an LRU byte-budget cache
// (ServeOptions::cache_bytes) and evicts only unpinned entries, so a lease
// is always valid for its lifetime while summaries nobody is using make
// room for hot ones. Loads go through the hardened ReadSummary, so a
// corrupt or truncated file surfaces as a Status, never a crash.
//
// Transient load failures (kIoError / kUnavailable — an evicted summary
// being reloaded while the disk hiccups) are retried with capped
// exponential backoff and deterministic per-(id, attempt) jitter before
// the error escapes to the caller (docs/robustness.md). Permanent errors
// (corrupt file, unregistered id) never retry.
//
// Concurrency: all operations are thread-safe. A load happens outside the
// store mutex; concurrent acquirers of the same id wait for the first
// loader instead of reading the file twice.

#ifndef HYDRA_SERVE_SUMMARY_STORE_H_
#define HYDRA_SERVE_SUMMARY_STORE_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "hydra/summary.h"
#include "hydra/tuple_generator.h"

namespace hydra {

namespace serve_internal {
struct StoreEntry;
}  // namespace serve_internal

class SummaryStore;

// Movable RAII pin on one loaded summary. While any lease on an entry is
// live the entry cannot be evicted; destruction releases the pin (and lets
// an over-budget cache shrink).
class SummaryLease {
 public:
  SummaryLease() = default;
  SummaryLease(SummaryLease&& other) noexcept;
  SummaryLease& operator=(SummaryLease&& other) noexcept;
  SummaryLease(const SummaryLease&) = delete;
  SummaryLease& operator=(const SummaryLease&) = delete;
  ~SummaryLease();

  bool valid() const { return entry_ != nullptr; }
  const DatabaseSummary& summary() const;
  const TupleGenerator& generator() const;

 private:
  friend class SummaryStore;
  SummaryLease(SummaryStore* store, serve_internal::StoreEntry* entry)
      : store_(store), entry_(entry) {}

  SummaryStore* store_ = nullptr;
  serve_internal::StoreEntry* entry_ = nullptr;
};

// Backoff schedule for transient load failures. `retries` additional
// attempts follow a failed load; attempt k sleeps
// min(max_ms, base_ms << k) plus a deterministic jitter derived from
// (summary id, k) — no RNG state, so chaos runs replay exactly.
struct LoadRetryPolicy {
  int retries = 0;
  int64_t base_ms = 2;
  int64_t max_ms = 100;
};

class SummaryStore {
 public:
  explicit SummaryStore(uint64_t cache_bytes, LoadRetryPolicy retry = {});
  ~SummaryStore();

  SummaryStore(const SummaryStore&) = delete;
  SummaryStore& operator=(const SummaryStore&) = delete;

  // Records that `id` is served from the summary file at `path`. The file
  // is not read until the first Acquire. Fails on duplicate ids.
  Status Register(const std::string& id, const std::string& path);

  // Pins `id` into the cache (loading it from disk on a miss) and returns
  // the lease. NotFound for unregistered ids; the ReadSummary error for
  // unreadable/corrupt files.
  StatusOr<SummaryLease> Acquire(const std::string& id);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t cached_bytes = 0;
    uint64_t resident = 0;
    uint64_t load_retries = 0;  // transient-failure attempts retried
  };
  Stats stats() const;

  // True while resident bytes exceed the budget (every entry pinned): the
  // serve layer's signal to degrade work quanta before refusing service.
  bool Overcommitted() const;

 private:
  friend class SummaryLease;

  // Drops unpinned entries, LRU first, until the budget is met (or only
  // pinned/loading entries remain). Caller holds mu_.
  void EvictToFitLocked();
  void Release(serve_internal::StoreEntry* entry);
  // ReadSummary plus the transient-failure retry loop; runs unlocked.
  StatusOr<DatabaseSummary> LoadWithRetry(const std::string& id,
                                          const std::string& path);

  const uint64_t cache_bytes_;
  const LoadRetryPolicy retry_;
  std::atomic<uint64_t> load_retries_{0};
  mutable std::mutex mu_;
  std::condition_variable loaded_cv_;
  std::map<std::string, std::string> paths_;
  // Heap-allocated entries: pointers stay stable for leases while the map
  // mutates. Only unpinned entries are ever erased.
  std::map<std::string, std::unique_ptr<serve_internal::StoreEntry>> resident_;
  uint64_t total_bytes_ = 0;
  uint64_t lru_clock_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace hydra

#endif  // HYDRA_SERVE_SUMMARY_STORE_H_
