#include "serve/scheduler.h"

#include <algorithm>
#include <chrono>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace hydra {

// Time a grant spent queued behind a full window (queued grants only — an
// immediate grant records nothing, so the histogram is the shape of the
// *waits*, matching the admission_waits counter's population).
HYDRA_METRIC_HISTOGRAM(g_admission_wait_us, "serve/admission_wait_us");

// Fires as a request is granted its slot, before the work runs: delay(ms)
// stretches the window a grant is held (starving other sessions — the
// fairness rotation must still bound the damage), error(...) turns the
// grant into a clean rejection the client sees as the request's Status.
HYDRA_FAILPOINT_DEFINE(g_fp_grant, "serve/grant");

FairScheduler::FairScheduler(int max_inflight, int max_queued)
    : max_inflight_(std::max(1, max_inflight)),
      max_queued_(std::max(0, max_queued)) {}

Status FairScheduler::Admit(uint64_t session, const std::function<void()>& fn,
                            const CancelScope& cancel) {
  Ticket ticket;
  ticket.session = session;
  {
    std::unique_lock<std::mutex> lock(mu_);
    HYDRA_RETURN_IF_ERROR(cancel.Check());
    // Load shedding: a full queue fast-rejects instead of growing. A free
    // slot still admits immediately — shedding bounds *waiting*, not work.
    if (max_queued_ > 0 && num_waiting_ >= max_queued_ &&
        inflight_ >= max_inflight_) {
      ++shed_;
      return Status::ResourceExhausted("admission queue full");
    }
    waiting_[session].push_back(&ticket);
    ++num_waiting_;
    GrantLocked();
    if (!ticket.granted) {
      ++admission_waits_;
      ScopedLatencyTimer wait_timer(&g_admission_wait_us);
      // Deadlines and token-bucket refills are not hooked into the cv, so
      // poll: granted_cv_ wakes on grants and Kick(); the periodic timeout
      // bounds how stale an expired deadline can go unnoticed, and the
      // re-grant attempt lets a queue where every session is rate-limited
      // make progress once a bucket refills.
      while (!ticket.granted && !cancel.cancelled()) {
        granted_cv_.wait_for(lock, std::chrono::milliseconds(10));
        if (!ticket.granted) GrantLocked();
      }
      if (!ticket.granted) {
        // Cancelled while queued: withdraw the ticket and report why.
        RemoveTicketLocked(&ticket);
        if (num_waiting_ == 0 && inflight_ == 0) drained_cv_.notify_all();
        return cancel.Check();
      }
    }
  }
  Status injected;
  if (g_fp_grant.armed()) injected = g_fp_grant.Fire();
  if (injected.ok()) fn();
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    GrantLocked();
    if (num_waiting_ == 0 && inflight_ == 0) drained_cv_.notify_all();
  }
  return injected;
}

void FairScheduler::GrantLocked() {
  bool granted_any = false;
  const auto now = std::chrono::steady_clock::now();
  while (inflight_ < max_inflight_ && !waiting_.empty()) {
    auto it = waiting_.lower_bound(rr_next_);
    if (it == waiting_.end()) it = waiting_.begin();  // wrap the rotation
    if (waiting_.size() > 1) {
      // Shared-work debt: a session that consumed another member's
      // generation pass yields one turn per debt unit — but only while
      // someone else is actually waiting (debt shifts priority, it never
      // idles the window). Each skip repays a unit, so this loop
      // terminates: total debt is finite and capped.
      const auto debt = debt_.find(it->first);
      if (debt != debt_.end() && debt->second > 0) {
        if (--debt->second == 0) debt_.erase(debt);
        ++debt_skips_;
        rr_next_ = it->first + 1;
        continue;
      }
      // Priority weighting: every visit deposits the session's priority as
      // credit; a grant costs the highest priority among waiting sessions.
      // A priority-p session therefore covers the cost on every visit when
      // p == maxp, and every maxp/p-th visit otherwise — p grants per peer
      // grant, without ever starving anyone (credit accrues each skip, so
      // a grant is always at most kMaxPriority rotations away). With all
      // priorities equal this degenerates to the plain rotation.
      int maxp = 1;
      for (const auto& entry : waiting_) {
        const auto qit = qos_.find(entry.first);
        if (qit != qos_.end()) maxp = std::max(maxp, qit->second.priority);
      }
      if (maxp > 1) {
        QosState& qos = qos_[it->first];
        qos.credit += std::max(1, qos.priority);
        if (qos.credit < maxp) {
          ++priority_skips_;
          rr_next_ = it->first + 1;
          continue;
        }
        qos.credit -= maxp;
      }
    }
    // Rate limit: an overdrawn bucket defers the session's grant to any
    // non-throttled waiter (the probe bypasses the credit bookkeeping —
    // deferral is already the stronger penalty). When every waiting
    // session is throttled the window goes intentionally idle; Admit's
    // poll loop re-grants once a bucket refills.
    if (ThrottledLocked(it->first, now)) {
      ++rate_deferrals_;
      bool found = false;
      auto probe = it;
      for (size_t i = 1; i < waiting_.size(); ++i) {
        ++probe;
        if (probe == waiting_.end()) probe = waiting_.begin();
        if (!ThrottledLocked(probe->first, now)) {
          it = probe;
          found = true;
          break;
        }
      }
      if (!found) break;
    }
    Ticket* ticket = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) waiting_.erase(it);
    --num_waiting_;
    rr_next_ = ticket->session + 1;
    ticket->granted = true;
    ++grants_;
    ++inflight_;
    granted_any = true;
  }
  if (granted_any) granted_cv_.notify_all();
}

void FairScheduler::RemoveTicketLocked(Ticket* ticket) {
  const auto it = waiting_.find(ticket->session);
  if (it == waiting_.end()) return;
  for (auto dq_it = it->second.begin(); dq_it != it->second.end(); ++dq_it) {
    if (*dq_it == ticket) {
      it->second.erase(dq_it);
      --num_waiting_;
      break;
    }
  }
  if (it->second.empty()) waiting_.erase(it);
}

void FairScheduler::RefillLocked(QosState& qos,
                                 std::chrono::steady_clock::time_point now) {
  if (qos.rate <= 0) return;
  const double elapsed =
      std::chrono::duration<double>(now - qos.last_refill).count();
  if (elapsed <= 0) return;
  // Burst allowance: one second of credit, so a fresh or long-idle session
  // may serve a rate-sized burst before throttling engages.
  const double burst = static_cast<double>(qos.rate);
  qos.tokens = std::min(burst, qos.tokens + elapsed * burst);
  qos.last_refill = now;
}

bool FairScheduler::ThrottledLocked(uint64_t session,
                                    std::chrono::steady_clock::time_point now) {
  const auto it = qos_.find(session);
  if (it == qos_.end() || it->second.rate <= 0) return false;
  RefillLocked(it->second, now);
  return it->second.tokens <= 0;
}

void FairScheduler::SetSessionQos(uint64_t session, SessionQos qos) {
  std::lock_guard<std::mutex> lock(mu_);
  QosState& state = qos_[session];
  state.priority =
      std::min(kMaxPriority, std::max(1, qos.priority));
  state.rate = std::max<int64_t>(0, qos.rate_rows_per_sec);
  state.tokens = static_cast<double>(state.rate);  // start with full burst
  state.last_refill = std::chrono::steady_clock::now();
}

void FairScheduler::SpendTokens(uint64_t session, int64_t rows) {
  if (rows <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = qos_.find(session);
  if (it == qos_.end() || it->second.rate <= 0) return;
  RefillLocked(it->second, std::chrono::steady_clock::now());
  it->second.tokens -= static_cast<double>(rows);
}

bool FairScheduler::SessionThrottled(uint64_t session) {
  std::lock_guard<std::mutex> lock(mu_);
  return ThrottledLocked(session, std::chrono::steady_clock::now());
}

void FairScheduler::Charge(uint64_t session, int units) {
  if (units <= 0) return;
  // Cap: with a huge fan-out a member could otherwise be buried under more
  // debt than it can repay before the group moves on.
  constexpr int kMaxDebt = 64;
  std::lock_guard<std::mutex> lock(mu_);
  int& debt = debt_[session];
  debt = std::min(debt + units, kMaxDebt);
  charged_ += static_cast<uint64_t>(units);
}

void FairScheduler::ForgetSession(uint64_t session) {
  std::lock_guard<std::mutex> lock(mu_);
  debt_.erase(session);
  qos_.erase(session);
}

void FairScheduler::Kick() {
  std::lock_guard<std::mutex> lock(mu_);
  granted_cv_.notify_all();
}

void FairScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock,
                   [this] { return num_waiting_ == 0 && inflight_ == 0; });
}

uint64_t FairScheduler::admission_waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admission_waits_;
}

uint64_t FairScheduler::grants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return grants_;
}

uint64_t FairScheduler::charged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return charged_;
}

uint64_t FairScheduler::debt_skips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return debt_skips_;
}

uint64_t FairScheduler::priority_skips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return priority_skips_;
}

uint64_t FairScheduler::rate_deferrals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rate_deferrals_;
}

uint64_t FairScheduler::shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

int FairScheduler::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_waiting_;
}

}  // namespace hydra
