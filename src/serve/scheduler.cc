#include "serve/scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace hydra {

FairScheduler::FairScheduler(int max_inflight)
    : max_inflight_(std::max(1, max_inflight)) {}

void FairScheduler::Admit(uint64_t session, const std::function<void()>& fn) {
  Ticket ticket;
  ticket.session = session;
  {
    std::unique_lock<std::mutex> lock(mu_);
    waiting_[session].push_back(&ticket);
    GrantLocked();
    if (!ticket.granted) {
      ++admission_waits_;
      granted_cv_.wait(lock, [&ticket] { return ticket.granted; });
    }
  }
  fn();
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    GrantLocked();
  }
}

void FairScheduler::GrantLocked() {
  bool granted_any = false;
  while (inflight_ < max_inflight_ && !waiting_.empty()) {
    auto it = waiting_.lower_bound(rr_next_);
    if (it == waiting_.end()) it = waiting_.begin();  // wrap the rotation
    Ticket* ticket = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) waiting_.erase(it);
    rr_next_ = ticket->session + 1;
    ticket->granted = true;
    ++inflight_;
    granted_any = true;
  }
  if (granted_any) granted_cv_.notify_all();
}

uint64_t FairScheduler::admission_waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admission_waits_;
}

}  // namespace hydra
