#include "serve/scheduler.h"

#include <algorithm>
#include <chrono>

#include "common/failpoint.h"
#include "common/logging.h"

namespace hydra {

// Fires as a request is granted its slot, before the work runs: delay(ms)
// stretches the window a grant is held (starving other sessions — the
// fairness rotation must still bound the damage), error(...) turns the
// grant into a clean rejection the client sees as the request's Status.
HYDRA_FAILPOINT_DEFINE(g_fp_grant, "serve/grant");

FairScheduler::FairScheduler(int max_inflight, int max_queued)
    : max_inflight_(std::max(1, max_inflight)),
      max_queued_(std::max(0, max_queued)) {}

Status FairScheduler::Admit(uint64_t session, const std::function<void()>& fn,
                            const CancelScope& cancel) {
  Ticket ticket;
  ticket.session = session;
  {
    std::unique_lock<std::mutex> lock(mu_);
    HYDRA_RETURN_IF_ERROR(cancel.Check());
    // Load shedding: a full queue fast-rejects instead of growing. A free
    // slot still admits immediately — shedding bounds *waiting*, not work.
    if (max_queued_ > 0 && num_waiting_ >= max_queued_ &&
        inflight_ >= max_inflight_) {
      ++shed_;
      return Status::ResourceExhausted("admission queue full");
    }
    waiting_[session].push_back(&ticket);
    ++num_waiting_;
    GrantLocked();
    if (!ticket.granted) {
      ++admission_waits_;
      // Deadlines are not hooked into the cv, so poll: granted_cv_ wakes on
      // grants and Kick(); the periodic timeout bounds how stale an expired
      // deadline can go unnoticed.
      while (!ticket.granted && !cancel.cancelled()) {
        granted_cv_.wait_for(lock, std::chrono::milliseconds(10));
      }
      if (!ticket.granted) {
        // Cancelled while queued: withdraw the ticket and report why.
        RemoveTicketLocked(&ticket);
        if (num_waiting_ == 0 && inflight_ == 0) drained_cv_.notify_all();
        return cancel.Check();
      }
    }
  }
  Status injected;
  if (g_fp_grant.armed()) injected = g_fp_grant.Fire();
  if (injected.ok()) fn();
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    GrantLocked();
    if (num_waiting_ == 0 && inflight_ == 0) drained_cv_.notify_all();
  }
  return injected;
}

void FairScheduler::GrantLocked() {
  bool granted_any = false;
  while (inflight_ < max_inflight_ && !waiting_.empty()) {
    auto it = waiting_.lower_bound(rr_next_);
    if (it == waiting_.end()) it = waiting_.begin();  // wrap the rotation
    // Shared-work debt: a session that consumed another member's generation
    // pass yields one turn per debt unit — but only while someone else is
    // actually waiting (debt shifts priority, it never idles the window).
    // Each skip repays a unit, so this loop terminates: total debt is
    // finite and capped.
    if (waiting_.size() > 1) {
      const auto debt = debt_.find(it->first);
      if (debt != debt_.end() && debt->second > 0) {
        if (--debt->second == 0) debt_.erase(debt);
        ++debt_skips_;
        rr_next_ = it->first + 1;
        continue;
      }
    }
    Ticket* ticket = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) waiting_.erase(it);
    --num_waiting_;
    rr_next_ = ticket->session + 1;
    ticket->granted = true;
    ++inflight_;
    granted_any = true;
  }
  if (granted_any) granted_cv_.notify_all();
}

void FairScheduler::RemoveTicketLocked(Ticket* ticket) {
  const auto it = waiting_.find(ticket->session);
  if (it == waiting_.end()) return;
  for (auto dq_it = it->second.begin(); dq_it != it->second.end(); ++dq_it) {
    if (*dq_it == ticket) {
      it->second.erase(dq_it);
      --num_waiting_;
      break;
    }
  }
  if (it->second.empty()) waiting_.erase(it);
}

void FairScheduler::Charge(uint64_t session, int units) {
  if (units <= 0) return;
  // Cap: with a huge fan-out a member could otherwise be buried under more
  // debt than it can repay before the group moves on.
  constexpr int kMaxDebt = 64;
  std::lock_guard<std::mutex> lock(mu_);
  int& debt = debt_[session];
  debt = std::min(debt + units, kMaxDebt);
  charged_ += static_cast<uint64_t>(units);
}

void FairScheduler::ForgetSession(uint64_t session) {
  std::lock_guard<std::mutex> lock(mu_);
  debt_.erase(session);
}

void FairScheduler::Kick() {
  std::lock_guard<std::mutex> lock(mu_);
  granted_cv_.notify_all();
}

void FairScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock,
                   [this] { return num_waiting_ == 0 && inflight_ == 0; });
}

uint64_t FairScheduler::admission_waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admission_waits_;
}

uint64_t FairScheduler::charged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return charged_;
}

uint64_t FairScheduler::debt_skips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return debt_skips_;
}

uint64_t FairScheduler::shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

int FairScheduler::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_waiting_;
}

}  // namespace hydra
