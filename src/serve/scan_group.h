// Scan groups — shared-scan multicast regeneration (docs/serve.md).
//
// When many cursors stream the same (summary, relation), running one
// generation pass per cursor is pure waste: the paper's rank-addressed
// determinism means every cursor would generate the very same rows. A
// ScanGroup collapses that work: members share a small ring of columnar
// chunks, each covering one batch_rows-aligned rank range, and the first
// member to need a chunk generates it once (single-flight) while the rest
// wait and then fan out of the shared block with their own filter and
// projection kernels. Because generation is a pure function of (summary
// bytes, rank range), a cached chunk never goes stale — not across summary
// eviction and reload, not across generator instances — so the ring needs
// no invalidation protocol at all.
//
// Rank alignment is what keeps member streams byte-identical to their solo
// runs: chunk k covers exactly [k*chunk_rows, (k+1)*chunk_rows), any
// cursor's position falls inside exactly one chunk, and batch boundaries
// were never contractual (only the concatenated stream is). A late joiner
// whose rank trails the group simply generates its own missed chunks —
// each a bounded chunk_rows pass, counted as catch-up — until it reaches
// ranks the ring still holds.
//
// Lock order: a ScanGroup's mutex is taken after the owning session's lock
// and is never held across generation (the producer releases it around the
// fill) or across any scheduler call.

#ifndef HYDRA_SERVE_SCAN_GROUP_H_
#define HYDRA_SERVE_SCAN_GROUP_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "engine/row_block.h"

namespace hydra {

// One live group's introspection row (docs/observability.md): identity,
// current fan-out, and lifetime counters. RegenServer::scan_group_infos()
// returns these; the wire ships them inside the GetMetrics snapshot as
// "serve/group/<summary>/<relation>/..." gauges.
struct ScanGroupInfo {
  std::string summary_id;
  int relation = 0;
  uint64_t fanout = 0;        // members right now
  uint64_t fills = 0;         // generation passes into this group's chunks
  uint64_t hits = 0;          // grants served from a resident chunk
  uint64_t catch_up = 0;      // fills behind the group frontier
  uint64_t pacing_waits = 0;  // producer wait rounds pacing the frontier
                              // to a slow in-window member
};

class ScanGroup {
 public:
  ScanGroup(int64_t chunk_rows, int num_slots);

  ScanGroup(const ScanGroup&) = delete;
  ScanGroup& operator=(const ScanGroup&) = delete;

  // What AcquireChunk hands back: the shared block plus how it was served.
  struct ChunkResult {
    std::shared_ptr<const RowBlock> block;
    // This call generated the chunk (false: served from the ring — one
    // generation pass saved for this member).
    bool produced = false;
    // The produced chunk trails the group's frontier: a late joiner's
    // bounded catch-up pass.
    bool catch_up = false;
  };

  // Membership. Join returns a member token; Leave is idempotent on it.
  // One session may hold several memberships (one per cursor).
  uint64_t Join(uint64_t session_id);
  void Leave(uint64_t member);
  int member_count() const;
  // Distinct session ids of current members, excluding `self_session` —
  // the sessions a shared generation pass also served, for fairness
  // accounting.
  std::vector<uint64_t> PeerSessions(uint64_t self_session) const;

  // Returns the shared block for chunk index `chunk` (ranks
  // [chunk*chunk_rows, ...)) on behalf of `member`. Single-flight: the
  // first caller to miss claims the producer role and runs `fill` outside
  // the group lock; concurrent callers of the same chunk block until it
  // publishes, polling `scope` so a cancelled waiter leaves without
  // disturbing the group. A failed fill resets the slot and wakes the
  // waiters, which re-elect a producer among themselves.
  //
  // Eviction is position-aware: a resident chunk that a near-frontier
  // member has yet to consume is not evicted while any other idle slot
  // will do, and when every idle slot is still needed the producer waits —
  // pacing the frontier to the slowest in-window member — rather than
  // thrash the ring into one generation pass per member. The wait is
  // bounded (kEvictGraceMs): a member that stalls inside the window
  // degrades to catch-up refills instead of wedging the group, and members
  // already further behind than one ring never pace anyone.
  Status AcquireChunk(uint64_t member, int64_t chunk, const CancelScope& scope,
                      const std::function<Status(RowBlock*)>& fill,
                      ChunkResult* result);

  // Non-blocking probe: when `chunk` is resident (published, not mid-load)
  // hands it back exactly like a hit in AcquireChunk — LRU touch, member
  // position advance — and returns true. Returns false otherwise without
  // waiting, claiming, or producing anything.
  bool TryAcquireResident(uint64_t member, int64_t chunk, ChunkResult* result);

  int64_t chunk_rows() const { return chunk_rows_; }

  // Lifetime counters (the ScanGroupInfo fields minus identity). The
  // registry folds a dying group's counters into its running totals, so
  // registry totals are exact across group churn.
  struct Counters {
    uint64_t fills = 0;
    uint64_t hits = 0;
    uint64_t catch_up = 0;
    uint64_t pacing_waits = 0;
  };
  Counters counters() const;

 private:
  struct Slot {
    int64_t chunk = -1;  // -1 = empty
    bool loading = false;
    std::shared_ptr<const RowBlock> block;
    uint64_t stamp = 0;  // LRU clock
  };
  struct Member {
    uint64_t session = 0;
    int64_t pos = -1;  // highest chunk this member has acquired
  };

  // True when a member other than `self` still needs `chunk`: it has only
  // consumed up to pos < chunk and sits within one ring of the frontier,
  // so the ring — not a catch-up refill — is how it should get there.
  bool NeededLocked(int64_t chunk, uint64_t self) const;
  // Records that `member` acquired `chunk`; wakes paced producers whose
  // eviction this advance may have unblocked.
  void AdvanceMemberLocked(uint64_t member, int64_t chunk);

  const int64_t chunk_rows_;
  mutable std::mutex mu_;
  std::condition_variable published_cv_;
  std::vector<Slot> slots_;
  Counters counters_;  // guarded by mu_
  uint64_t stamp_counter_ = 0;
  int64_t top_chunk_ = -1;  // highest chunk ever published (the frontier)
  std::map<uint64_t, Member> members_;  // member token -> position
  uint64_t next_member_ = 1;
};

// The server-wide registry: one ScanGroup per (summary id, relation) with
// live members. Groups are created on first join and destroyed when the
// last member leaves; the formed/peak counters survive their groups.
class ScanGroupRegistry {
 public:
  ScanGroupRegistry(int64_t chunk_rows, int num_slots);

  // Joins (creating if absent) the group for (summary_id, relation);
  // returns the group and writes the member token.
  std::shared_ptr<ScanGroup> Join(const std::string& summary_id, int relation,
                                  uint64_t session_id, uint64_t* member);
  // Leaves `group`; erases it from the registry once empty.
  void Leave(const std::string& summary_id, int relation,
             const std::shared_ptr<ScanGroup>& group, uint64_t member);

  // Groups that ever reached two concurrent members (a second cursor
  // actually shared a scan).
  uint64_t groups_formed() const;
  // Most members any group ever had.
  uint64_t peak_fanout() const;

  // One ScanGroupInfo per live group, ordered by (summary id, relation).
  std::vector<ScanGroupInfo> Infos() const;
  // Lifetime counter totals across every group this registry ever held:
  // live groups summed on the fly plus the folded counters of groups
  // already destroyed. Exact across churn — the chaos harness holds these
  // equal to the server's own aggregate atomics.
  ScanGroup::Counters totals() const;

 private:
  const int64_t chunk_rows_;
  const int num_slots_;
  mutable std::mutex mu_;
  std::map<std::pair<std::string, int>, std::shared_ptr<ScanGroup>> groups_;
  uint64_t groups_formed_ = 0;
  uint64_t peak_fanout_ = 0;
  ScanGroup::Counters dead_totals_;  // folded in by Leave on group death
};

}  // namespace hydra

#endif  // HYDRA_SERVE_SCAN_GROUP_H_
