#include "serve/summary_store.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "hydra/summary_io.h"

namespace hydra {

// End-to-end single-flight summary load: disk read plus any retry backoff.
// Cache hits record nothing — the histogram is the shape of the misses.
HYDRA_METRIC_HISTOGRAM(g_summary_load_us, "serve/summary_load_us");
// Transient load attempts retried — the process-wide aggregate across
// stores (each store's own count stays in ServeStats::load_retries, which
// the serve provider re-exports as the gauge "serve/load_retries").
HYDRA_METRIC_COUNTER(g_load_retries, "serve/summary_load_retries");

// Fires inside the single-flight load, before ReadSummary touches the
// file: error(UNAVAILABLE,times=N) with N <= load retries makes the load
// succeed only after the backoff loop — the chaos harness's retry story.
HYDRA_FAILPOINT_DEFINE(g_fp_summary_load, "serve/summary_load");

namespace {

// FNV-1a then splitmix64 finalizer: a stateless jitter hash so the backoff
// schedule of (id, attempt) is reproducible across runs and threads.
uint64_t JitterHash(const std::string& id, int attempt) {
  uint64_t h = 14695981039346656037ull;
  for (const char c : id) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  h ^= static_cast<uint64_t>(attempt);
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e9b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kUnavailable;
}

}  // namespace

namespace serve_internal {

// One loaded summary. The generator references the summary member, so the
// entry lives on the heap and is never moved after construction.
struct StoreEntry {
  std::string id;
  DatabaseSummary summary;
  std::unique_ptr<TupleGenerator> generator;
  uint64_t bytes = 0;
  int pins = 0;
  uint64_t lru_stamp = 0;
  bool loading = true;
};

}  // namespace serve_internal

using serve_internal::StoreEntry;

SummaryLease::SummaryLease(SummaryLease&& other) noexcept
    : store_(other.store_), entry_(other.entry_) {
  other.store_ = nullptr;
  other.entry_ = nullptr;
}

SummaryLease& SummaryLease::operator=(SummaryLease&& other) noexcept {
  if (this != &other) {
    if (entry_ != nullptr) store_->Release(entry_);
    store_ = other.store_;
    entry_ = other.entry_;
    other.store_ = nullptr;
    other.entry_ = nullptr;
  }
  return *this;
}

SummaryLease::~SummaryLease() {
  if (entry_ != nullptr) store_->Release(entry_);
}

const DatabaseSummary& SummaryLease::summary() const {
  HYDRA_DCHECK(entry_ != nullptr);
  return entry_->summary;
}

const TupleGenerator& SummaryLease::generator() const {
  HYDRA_DCHECK(entry_ != nullptr);
  return *entry_->generator;
}

SummaryStore::SummaryStore(uint64_t cache_bytes, LoadRetryPolicy retry)
    : cache_bytes_(cache_bytes), retry_(retry) {}

StatusOr<DatabaseSummary> SummaryStore::LoadWithRetry(
    const std::string& id, const std::string& path) {
  ScopedLatencyTimer timer(&g_summary_load_us);
  for (int attempt = 0;; ++attempt) {
    Status injected;
    if (g_fp_summary_load.armed()) injected = g_fp_summary_load.Fire();
    StatusOr<DatabaseSummary> loaded =
        injected.ok() ? ReadSummary(path) : StatusOr<DatabaseSummary>(injected);
    if (loaded.ok() || !IsTransient(loaded.status()) ||
        attempt >= retry_.retries) {
      return loaded;
    }
    load_retries_.fetch_add(1, std::memory_order_relaxed);
    g_load_retries.Inc();
    const int64_t backoff = std::min(
        retry_.max_ms, retry_.base_ms << std::min(attempt, 30));
    // Deterministic jitter in [0, backoff]: desynchronizes concurrent
    // retriers without nondeterministic RNG state.
    const int64_t jitter =
        backoff > 0
            ? static_cast<int64_t>(JitterHash(id, attempt) %
                                   static_cast<uint64_t>(backoff + 1))
            : 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff + jitter));
  }
}

SummaryStore::~SummaryStore() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, entry] : resident_) {
    HYDRA_CHECK_MSG(entry->pins == 0,
                    "SummaryStore destroyed with live lease on " << id);
  }
}

Status SummaryStore::Register(const std::string& id, const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!paths_.emplace(id, path).second) {
    return Status::InvalidArgument("summary id already registered: " + id);
  }
  return Status::OK();
}

StatusOr<SummaryLease> SummaryStore::Acquire(const std::string& id) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = resident_.find(id);
    if (it != resident_.end()) {
      StoreEntry* entry = it->second.get();
      if (entry->loading) {
        // Another thread is reading the file; wait for it to finish (or
        // fail, which erases the placeholder) and re-check.
        loaded_cv_.wait(lock);
        continue;
      }
      ++entry->pins;
      entry->lru_stamp = ++lru_clock_;
      ++hits_;
      return SummaryLease(this, entry);
    }
    const auto path_it = paths_.find(id);
    if (path_it == paths_.end()) {
      return Status::NotFound("summary id not registered: " + id);
    }
    // Miss: install a loading placeholder, read the file outside the lock,
    // then publish. Waiters above re-find the entry, so the placeholder's
    // address is the synchronization point.
    auto placeholder = std::make_unique<StoreEntry>();
    placeholder->id = id;
    StoreEntry* entry = placeholder.get();
    resident_.emplace(id, std::move(placeholder));
    const std::string path = path_it->second;
    lock.unlock();
    StatusOr<DatabaseSummary> loaded = LoadWithRetry(id, path);
    lock.lock();
    if (!loaded.ok()) {
      resident_.erase(id);
      loaded_cv_.notify_all();
      return loaded.status();
    }
    entry->summary = std::move(*loaded);
    entry->generator = std::make_unique<TupleGenerator>(entry->summary);
    entry->bytes = entry->summary.ByteSize();
    entry->loading = false;
    entry->pins = 1;
    entry->lru_stamp = ++lru_clock_;
    total_bytes_ += entry->bytes;
    ++misses_;
    EvictToFitLocked();
    loaded_cv_.notify_all();
    return SummaryLease(this, entry);
  }
}

void SummaryStore::EvictToFitLocked() {
  while (total_bytes_ > cache_bytes_) {
    StoreEntry* victim = nullptr;
    for (const auto& [id, entry] : resident_) {
      if (entry->pins > 0 || entry->loading) continue;
      if (victim == nullptr || entry->lru_stamp < victim->lru_stamp) {
        victim = entry.get();
      }
    }
    if (victim == nullptr) return;  // everything left is pinned or loading
    total_bytes_ -= victim->bytes;
    ++evictions_;
    const std::string victim_id = victim->id;  // outlive the entry
    resident_.erase(victim_id);
  }
}

void SummaryStore::Release(StoreEntry* entry) {
  std::lock_guard<std::mutex> lock(mu_);
  HYDRA_DCHECK(entry->pins > 0);
  --entry->pins;
  // An over-budget cache could not shrink past this entry while it was
  // pinned; retry now that it is evictable.
  if (entry->pins == 0) EvictToFitLocked();
}

SummaryStore::Stats SummaryStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.cached_bytes = total_bytes_;
  s.resident = resident_.size();
  s.load_retries = load_retries_.load(std::memory_order_relaxed);
  return s;
}

bool SummaryStore::Overcommitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_ > cache_bytes_;
}

}  // namespace hydra
