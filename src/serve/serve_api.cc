#include "serve/serve_api.h"

#include <utility>

namespace hydra {

ServeErrorCode ToServeErrorCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return ServeErrorCode::kOk;
    case StatusCode::kInvalidArgument:
      return ServeErrorCode::kInvalidArgument;
    case StatusCode::kNotFound:
      return ServeErrorCode::kNotFound;
    case StatusCode::kFailedPrecondition:
      return ServeErrorCode::kFailedPrecondition;
    case StatusCode::kOutOfRange:
      return ServeErrorCode::kOutOfRange;
    case StatusCode::kResourceExhausted:
      return ServeErrorCode::kResourceExhausted;
    case StatusCode::kInternal:
      return ServeErrorCode::kInternal;
    case StatusCode::kUnimplemented:
      return ServeErrorCode::kUnimplemented;
    case StatusCode::kIoError:
      return ServeErrorCode::kIoError;
    case StatusCode::kCancelled:
      return ServeErrorCode::kCancelled;
    case StatusCode::kDeadlineExceeded:
      return ServeErrorCode::kDeadlineExceeded;
    case StatusCode::kUnavailable:
      return ServeErrorCode::kUnavailable;
  }
  return ServeErrorCode::kInternal;
}

StatusCode ToStatusCode(uint16_t wire_code) {
  switch (static_cast<ServeErrorCode>(wire_code)) {
    case ServeErrorCode::kOk:
      return StatusCode::kOk;
    case ServeErrorCode::kInvalidArgument:
      return StatusCode::kInvalidArgument;
    case ServeErrorCode::kNotFound:
      return StatusCode::kNotFound;
    case ServeErrorCode::kFailedPrecondition:
      return StatusCode::kFailedPrecondition;
    case ServeErrorCode::kOutOfRange:
      return StatusCode::kOutOfRange;
    case ServeErrorCode::kResourceExhausted:
      return StatusCode::kResourceExhausted;
    case ServeErrorCode::kInternal:
      return StatusCode::kInternal;
    case ServeErrorCode::kUnimplemented:
      return StatusCode::kUnimplemented;
    case ServeErrorCode::kIoError:
      return StatusCode::kIoError;
    case ServeErrorCode::kCancelled:
      return StatusCode::kCancelled;
    case ServeErrorCode::kDeadlineExceeded:
      return StatusCode::kDeadlineExceeded;
    case ServeErrorCode::kUnavailable:
      return StatusCode::kUnavailable;
  }
  return StatusCode::kInternal;
}

Status StatusFromWire(uint16_t wire_code, std::string message) {
  const StatusCode code = ToStatusCode(wire_code);
  if (code == StatusCode::kOk) return Status::OK();
  return Status(code, std::move(message));
}

}  // namespace hydra
