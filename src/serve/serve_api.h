// The serving contract — the one typed request/response surface shared by
// the in-process RegenServer API and the TCP wire protocol (docs/net.md).
//
// Everything a client names is a typed handle (SessionHandle, CursorHandle:
// distinct structs, so swapping the two is a compile error, not a silent
// NotFound at runtime), every open carries an explicit request struct with
// defaulted fields, NextBatch returns a BatchResult value instead of
// filling out-params, and every error crosses process boundaries as a
// ServeErrorCode — a stable numeric enum with a documented mapping from
// StatusCode that the wire protocol transmits verbatim.

#ifndef HYDRA_SERVE_SERVE_API_H_
#define HYDRA_SERVE_SERVE_API_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "engine/row_block.h"
#include "query/predicate.h"

namespace hydra {

// Opaque server-issued session identifier. Value 0 is never issued and
// means "no session".
struct SessionHandle {
  uint64_t id = 0;

  bool valid() const { return id != 0; }
  friend bool operator==(SessionHandle a, SessionHandle b) {
    return a.id == b.id;
  }
  friend bool operator!=(SessionHandle a, SessionHandle b) {
    return a.id != b.id;
  }
  friend bool operator<(SessionHandle a, SessionHandle b) {
    return a.id < b.id;
  }
};

// Opaque server-issued cursor identifier, scoped to its session. Value 0 is
// never issued.
struct CursorHandle {
  uint64_t id = 0;

  bool valid() const { return id != 0; }
  friend bool operator==(CursorHandle a, CursorHandle b) {
    return a.id == b.id;
  }
  friend bool operator!=(CursorHandle a, CursorHandle b) {
    return a.id != b.id;
  }
};

// Everything OpenSession needs, with defaults a plain `{"summary"}` keeps
// sane. The QoS fields feed the FairScheduler (docs/serve.md "QoS"):
// priority weights the round-robin grant rotation, rate_limit_rows_per_sec
// token-buckets the session's cursor streaming. The wire protocol marshals
// every field except `cancel` (a wire client cancels by CancelSession or by
// dropping the connection).
struct OpenSessionRequest {
  std::string summary_id;
  // Wall-clock budget for the whole session; 0 = none. Requests past the
  // deadline fail with kDeadlineExceeded.
  int64_t deadline_ms = 0;
  // Weighted round-robin: a session with priority p may take up to p
  // consecutive admission grants per rotation visit, so it drains p× the
  // work of a priority-1 peer under contention. Clamped to [1, 8].
  int priority = 1;
  // Token-bucket rate limit on served cursor rows, refilled continuously
  // with a one-second burst allowance. 0 = unlimited. Throttling defers the
  // session's grants (other sessions run instead); it never changes stream
  // content.
  int64_t rate_limit_rows_per_sec = 0;
  // Caller-owned cancellation handle: Cancel() makes every subsequent (and
  // every queued) request of this session fail with kCancelled. The server
  // shares ownership, so the caller may drop it any time. In-process only.
  std::shared_ptr<CancelToken> cancel;
};

// What a cursor streams: the rank range [begin_rank, end_rank) of one
// relation, filtered by a pushed-down predicate over the relation's
// attributes, projected to `projection` (empty = all attributes).
struct CursorSpec {
  int relation = -1;
  DnfPredicate filter = DnfPredicate::True();
  std::vector<int> projection;
  int64_t begin_rank = 0;
  int64_t end_rank = -1;  // -1 = the relation's row count
};

// One NextBatch result. Exactly one of {non-empty rows, done} holds: a
// non-empty batch with done=false mid-stream, empty rows with done=true at
// end of stream. `rank` is the resume token after this batch — a new cursor
// opened with begin_rank = rank continues the stream byte-identically, on
// this server or another one serving the same summary.
struct BatchResult {
  RowBlock rows;
  bool done = false;
  int64_t rank = 0;
};

// Stable numeric error codes — the wire representation of Status::code().
// The numbers are a frozen contract (docs/net.md): clients of any version
// decode them without sharing headers with the server, so entries are only
// ever appended, never renumbered or removed. StatusCode (an internal enum
// that may reorder freely) maps through ToServeErrorCode / ToStatusCode.
enum class ServeErrorCode : uint16_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kResourceExhausted = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kIoError = 8,
  kCancelled = 9,
  kDeadlineExceeded = 10,
  kUnavailable = 11,
};

// StatusCode -> wire code. Total: unknown/new internal codes degrade to
// kInternal rather than leaking unstable numbers onto the wire.
ServeErrorCode ToServeErrorCode(StatusCode code);
// Wire code -> StatusCode. Unknown wire values (a newer server) decode as
// kInternal so old clients still fail cleanly.
StatusCode ToStatusCode(uint16_t wire_code);
// Rebuilds a Status from its wire representation.
Status StatusFromWire(uint16_t wire_code, std::string message);

}  // namespace hydra

// Handles hash as their raw ids (for unordered_map keys in clients/tests).
template <>
struct std::hash<hydra::SessionHandle> {
  size_t operator()(hydra::SessionHandle h) const noexcept {
    return std::hash<uint64_t>{}(h.id);
  }
};
template <>
struct std::hash<hydra::CursorHandle> {
  size_t operator()(hydra::CursorHandle h) const noexcept {
    return std::hash<uint64_t>{}(h.id);
  }
};

#endif  // HYDRA_SERVE_SERVE_API_H_
