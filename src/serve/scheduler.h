// FairScheduler — admission control for the dynamic-regeneration service.
//
// Every unit of serving work (one cursor morsel, one point lookup, one
// engine pipeline) passes through Admit(): the caller blocks until a slot
// of the bounded inflight window is granted, runs its work, and releases
// the slot. Grants rotate round-robin over the sessions that have waiters,
// so a session streaming a giant scan (many back-to-back requests) cannot
// starve point-lookup sessions: after each grant the rotation cursor moves
// past the granted session, and its next request queues behind every other
// waiting session's. The window bound is the backpressure mechanism — work
// admitted concurrently never exceeds max_inflight, no matter how many
// clients are connected.
//
// QoS (docs/serve.md): each session may carry a SessionQos, set at
// OpenSession. `priority` weights the rotation — while several sessions
// contend, a priority-p session earns p grants for every one a priority-1
// peer earns (a credit scheme: each rotation visit deposits the session's
// priority, a grant costs the highest waiting priority, and a visit whose
// balance can't cover the cost yields the turn). `rate_rows_per_sec`
// token-buckets the session's served rows: the server deposits a spend
// after each batch, and while the bucket is overdrawn the rotation defers
// the session's grants. Priority (like shared-scan debt) shifts *relative*
// standing only — a low-priority session still runs whenever nobody else
// is waiting — but a rate limit is absolute: a throttled session waits for
// its refill even with the window idle. Default QoS (priority 1, no rate)
// reproduces plain round-robin exactly.
//
// Failure domain (docs/robustness.md): Admit returns a Status. A request
// whose CancelScope trips while it waits leaves the queue with
// kCancelled / kDeadlineExceeded; when `max_queued` > 0, a request arriving
// at a full queue is fast-rejected with kResourceExhausted (load shedding)
// instead of queueing unboundedly. Kick() wakes every waiter to re-check
// its scope (the server calls it after cancelling sessions); Drain() blocks
// until nothing is admitted or queued — the graceful-shutdown barrier.
//
// Determinism: the scheduler orders *work*, never results. Each request's
// output is a pure function of (summary, cursor spec, rank), so any grant
// interleaving produces the same per-client streams.

#ifndef HYDRA_SERVE_SCHEDULER_H_
#define HYDRA_SERVE_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>

#include "common/cancel.h"
#include "common/status.h"

namespace hydra {

// Per-session scheduling knobs (see the QoS block above). Defaults are the
// unweighted, unlimited behavior.
struct SessionQos {
  int priority = 1;               // clamped to [1, kMaxPriority]
  int64_t rate_rows_per_sec = 0;  // 0 = unlimited
};

class FairScheduler {
 public:
  // Priorities above this clamp down; bounds how long the rotation can
  // favor one session before every waiter gets a turn.
  static constexpr int kMaxPriority = 8;

  // max_queued: waiters allowed in the admission queue before new requests
  // are shed with kResourceExhausted; 0 = unbounded.
  explicit FairScheduler(int max_inflight, int max_queued = 0);

  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  // Blocks until `session`'s turn at a free slot, runs `fn` on the calling
  // thread, then releases the slot and grants the next waiter. Returns
  // non-OK without running `fn` when the queue is full (shedding) or
  // `cancel` trips first. Reentrant calls from inside `fn` would deadlock
  // the calling session; serving work never nests admissions.
  Status Admit(uint64_t session, const std::function<void()>& fn,
               const CancelScope& cancel = {});

  // Installs `session`'s QoS (priority clamped to [1, kMaxPriority]); the
  // token bucket starts with one second of burst credit. Absent sessions
  // run at the defaults.
  void SetSessionQos(uint64_t session, SessionQos qos);

  // Deducts `rows` from the session's token bucket (no-op when the session
  // has no rate limit). The server calls it after serving a batch, so one
  // oversized batch overdraws the bucket and the session pauses until the
  // refill catches up — average throughput converges on the configured
  // rate without splitting batches.
  void SpendTokens(uint64_t session, int64_t rows);

  // True while the session's token bucket is overdrawn. The server gates
  // admission-free serving (the shared-scan fast path) on this so a rate
  // limit holds even for work that never queues.
  bool SessionThrottled(uint64_t session);

  // Fairness accounting for shared work: records that `session` was served
  // `units` grants' worth of work it did not pay admission for (a shared
  // scan pass another member produced). Each debt unit makes the rotation
  // skip one of the session's turns — but only while some other session is
  // waiting, so debt throttles relative priority, never absolute progress.
  // Debt is capped (kMaxDebt) so a long-running group cannot bury a member.
  void Charge(uint64_t session, int units);

  // Drops any outstanding debt and QoS state of `session` (the server
  // calls it when the session closes, so the maps stay bounded by live
  // sessions).
  void ForgetSession(uint64_t session);

  // Wakes every waiter so it re-evaluates its CancelScope. Call after
  // cancelling tokens that queued waiters are watching.
  void Kick();

  // Blocks until no work is admitted or queued. With every session
  // cancelled and Kick()ed this terminates: waiters leave cancelled,
  // in-flight work finishes its bounded quantum.
  void Drain();

  int max_inflight() const { return max_inflight_; }
  int max_queued() const { return max_queued_; }
  // Grants that found the window full and had to queue.
  uint64_t admission_waits() const;
  // Tickets granted a slot (every admission that ran its work).
  uint64_t grants() const;
  // Debt units recorded by Charge().
  uint64_t charged() const;
  // Turns the rotation skipped to repay debt.
  uint64_t debt_skips() const;
  // Turns yielded to a higher-priority session (QoS weighting).
  uint64_t priority_skips() const;
  // Grants deferred because the session's token bucket was overdrawn.
  uint64_t rate_deferrals() const;
  // Requests fast-rejected by the queue-depth bound.
  uint64_t shed() const;
  // Waiters queued right now (the shedding signal OpenSession consults).
  int queued() const;

 private:
  struct Ticket {
    uint64_t session = 0;
    bool granted = false;
  };
  struct QosState {
    int priority = 1;
    int64_t rate = 0;   // rows/sec; 0 = unlimited
    double tokens = 0;  // may go negative (post-paid batches)
    // Rotation credit for priority weighting; see GrantLocked.
    int credit = 0;
    std::chrono::steady_clock::time_point last_refill;
  };

  // Grants free slots to waiting tickets in round-robin session order,
  // modulated by debt, priority credit, and rate limits. Caller holds mu_;
  // notifies when any ticket was granted.
  void GrantLocked();
  // Removes a not-yet-granted ticket whose owner is abandoning the wait.
  void RemoveTicketLocked(Ticket* ticket);
  // Tops up the bucket from elapsed time (capped at one second of burst).
  static void RefillLocked(QosState& qos,
                           std::chrono::steady_clock::time_point now);
  // True if `session` has a rate limit and its bucket is overdrawn at
  // `now`. Caller holds mu_.
  bool ThrottledLocked(uint64_t session,
                       std::chrono::steady_clock::time_point now);

  const int max_inflight_;
  const int max_queued_;
  mutable std::mutex mu_;
  std::condition_variable granted_cv_;
  std::condition_variable drained_cv_;
  // session -> FIFO of that session's waiting tickets. Ordered map: the
  // rotation cursor walks sessions in id order, wrapping.
  std::map<uint64_t, std::deque<Ticket*>> waiting_;
  int num_waiting_ = 0;  // total tickets across waiting_
  uint64_t rr_next_ = 0;  // first session id to consider for the next grant
  int inflight_ = 0;
  uint64_t admission_waits_ = 0;
  uint64_t grants_ = 0;
  uint64_t shed_ = 0;
  // session -> outstanding shared-work debt (absent = 0), capped per
  // session so totals stay finite and GrantLocked always terminates.
  std::map<uint64_t, int> debt_;
  // session -> QoS state (absent = defaults). Entries are created by
  // SetSessionQos and by the credit/bucket bookkeeping, erased by
  // ForgetSession.
  std::map<uint64_t, QosState> qos_;
  uint64_t charged_ = 0;
  uint64_t debt_skips_ = 0;
  uint64_t priority_skips_ = 0;
  uint64_t rate_deferrals_ = 0;
};

}  // namespace hydra

#endif  // HYDRA_SERVE_SCHEDULER_H_
