// FairScheduler — admission control for the dynamic-regeneration service.
//
// Every unit of serving work (one cursor morsel, one point lookup, one
// engine pipeline) passes through Admit(): the caller blocks until a slot
// of the bounded inflight window is granted, runs its work, and releases
// the slot. Grants rotate round-robin over the sessions that have waiters,
// so a session streaming a giant scan (many back-to-back requests) cannot
// starve point-lookup sessions: after each grant the rotation cursor moves
// past the granted session, and its next request queues behind every other
// waiting session's. The window bound is the backpressure mechanism — work
// admitted concurrently never exceeds max_inflight, no matter how many
// clients are connected.
//
// Failure domain (docs/robustness.md): Admit returns a Status. A request
// whose CancelScope trips while it waits leaves the queue with
// kCancelled / kDeadlineExceeded; when `max_queued` > 0, a request arriving
// at a full queue is fast-rejected with kResourceExhausted (load shedding)
// instead of queueing unboundedly. Kick() wakes every waiter to re-check
// its scope (the server calls it after cancelling sessions); Drain() blocks
// until nothing is admitted or queued — the graceful-shutdown barrier.
//
// Determinism: the scheduler orders *work*, never results. Each request's
// output is a pure function of (summary, cursor spec, rank), so any grant
// interleaving produces the same per-client streams.

#ifndef HYDRA_SERVE_SCHEDULER_H_
#define HYDRA_SERVE_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>

#include "common/cancel.h"
#include "common/status.h"

namespace hydra {

class FairScheduler {
 public:
  // max_queued: waiters allowed in the admission queue before new requests
  // are shed with kResourceExhausted; 0 = unbounded.
  explicit FairScheduler(int max_inflight, int max_queued = 0);

  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  // Blocks until `session`'s turn at a free slot, runs `fn` on the calling
  // thread, then releases the slot and grants the next waiter. Returns
  // non-OK without running `fn` when the queue is full (shedding) or
  // `cancel` trips first. Reentrant calls from inside `fn` would deadlock
  // the calling session; serving work never nests admissions.
  Status Admit(uint64_t session, const std::function<void()>& fn,
               const CancelScope& cancel = {});

  // Fairness accounting for shared work: records that `session` was served
  // `units` grants' worth of work it did not pay admission for (a shared
  // scan pass another member produced). Each debt unit makes the rotation
  // skip one of the session's turns — but only while some other session is
  // waiting, so debt throttles relative priority, never absolute progress.
  // Debt is capped (kMaxDebt) so a long-running group cannot bury a member.
  void Charge(uint64_t session, int units);

  // Drops any outstanding debt of `session` (the server calls it when the
  // session closes, so the map stays bounded by live sessions).
  void ForgetSession(uint64_t session);

  // Wakes every waiter so it re-evaluates its CancelScope. Call after
  // cancelling tokens that queued waiters are watching.
  void Kick();

  // Blocks until no work is admitted or queued. With every session
  // cancelled and Kick()ed this terminates: waiters leave cancelled,
  // in-flight work finishes its bounded quantum.
  void Drain();

  int max_inflight() const { return max_inflight_; }
  int max_queued() const { return max_queued_; }
  // Grants that found the window full and had to queue.
  uint64_t admission_waits() const;
  // Debt units recorded by Charge().
  uint64_t charged() const;
  // Turns the rotation skipped to repay debt.
  uint64_t debt_skips() const;
  // Requests fast-rejected by the queue-depth bound.
  uint64_t shed() const;
  // Waiters queued right now (the shedding signal OpenSession consults).
  int queued() const;

 private:
  struct Ticket {
    uint64_t session = 0;
    bool granted = false;
  };

  // Grants free slots to waiting tickets in round-robin session order.
  // Caller holds mu_; notifies when any ticket was granted.
  void GrantLocked();
  // Removes a not-yet-granted ticket whose owner is abandoning the wait.
  void RemoveTicketLocked(Ticket* ticket);

  const int max_inflight_;
  const int max_queued_;
  mutable std::mutex mu_;
  std::condition_variable granted_cv_;
  std::condition_variable drained_cv_;
  // session -> FIFO of that session's waiting tickets. Ordered map: the
  // rotation cursor walks sessions in id order, wrapping.
  std::map<uint64_t, std::deque<Ticket*>> waiting_;
  int num_waiting_ = 0;  // total tickets across waiting_
  uint64_t rr_next_ = 0;  // first session id to consider for the next grant
  int inflight_ = 0;
  uint64_t admission_waits_ = 0;
  uint64_t shed_ = 0;
  // session -> outstanding shared-work debt (absent = 0), capped per
  // session so totals stay finite and GrantLocked always terminates.
  std::map<uint64_t, int> debt_;
  uint64_t charged_ = 0;
  uint64_t debt_skips_ = 0;
};

}  // namespace hydra

#endif  // HYDRA_SERVE_SCHEDULER_H_
