#include "workload/tpcds.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "workload/querygen.h"

namespace hydra {

namespace {

uint64_t Scaled(double base, double sf) {
  return static_cast<uint64_t>(std::llround(base * sf));
}

// Dimension tables grow with the square root of the scale factor, roughly as
// in TPC-DS.
uint64_t DimScaled(double base, double sf) {
  return static_cast<uint64_t>(std::llround(base * std::sqrt(sf)));
}

}  // namespace

Schema TpcdsSchema(double scale_factor) {
  HYDRA_CHECK(scale_factor > 0);
  const double sf = scale_factor;
  Schema s;

  // --- Dimensions -------------------------------------------------------
  Relation date_dim("date_dim", DimScaled(7300, sf));
  date_dim.AddPrimaryKey("d_date_sk");
  date_dim.AddDataAttribute("d_year", Interval(1998, 2004));
  date_dim.AddDataAttribute("d_moy", Interval(1, 13));
  date_dim.AddDataAttribute("d_dom", Interval(1, 32));
  date_dim.AddDataAttribute("d_qoy", Interval(1, 5));
  date_dim.AddDataAttribute("d_day_of_week", Interval(0, 7));
  const int rd = s.AddRelation(std::move(date_dim));

  Relation time_dim("time_dim", DimScaled(8640, sf));
  time_dim.AddPrimaryKey("t_time_sk");
  time_dim.AddDataAttribute("t_hour", Interval(0, 24));
  time_dim.AddDataAttribute("t_minute", Interval(0, 60));
  time_dim.AddDataAttribute("t_shift", Interval(0, 3));
  const int rt = s.AddRelation(std::move(time_dim));

  Relation item("item", DimScaled(1800, sf));
  item.AddPrimaryKey("i_item_sk");
  item.AddDataAttribute("i_category", Interval(0, 10));
  item.AddDataAttribute("i_class", Interval(0, 100));
  item.AddDataAttribute("i_brand", Interval(0, 500));
  item.AddDataAttribute("i_current_price", Interval(1, 1000));
  item.AddDataAttribute("i_size", Interval(0, 7));
  item.AddDataAttribute("i_manufact_id", Interval(0, 1000));
  item.AddDataAttribute("i_wholesale_cost", Interval(1, 100));
  item.AddDataAttribute("i_units", Interval(0, 50));
  const int ri = s.AddRelation(std::move(item));

  Relation customer_address("customer_address", DimScaled(5000, sf));
  customer_address.AddPrimaryKey("ca_address_sk");
  customer_address.AddDataAttribute("ca_state", Interval(0, 50));
  customer_address.AddDataAttribute("ca_zip", Interval(0, 10000));
  customer_address.AddDataAttribute("ca_gmt_offset", Interval(-12, 13));
  const int rca = s.AddRelation(std::move(customer_address));

  Relation customer_demographics("customer_demographics",
                                 DimScaled(19200, sf));
  customer_demographics.AddPrimaryKey("cd_demo_sk");
  customer_demographics.AddDataAttribute("cd_gender", Interval(0, 2));
  customer_demographics.AddDataAttribute("cd_marital_status", Interval(0, 5));
  customer_demographics.AddDataAttribute("cd_education", Interval(0, 7));
  customer_demographics.AddDataAttribute("cd_credit_rating", Interval(0, 4));
  const int rcd = s.AddRelation(std::move(customer_demographics));

  Relation income_band("income_band", 20);
  income_band.AddPrimaryKey("ib_income_band_sk");
  income_band.AddDataAttribute("ib_bracket", Interval(0, 20));
  const int rib = s.AddRelation(std::move(income_band));

  Relation household_demographics("household_demographics",
                                  DimScaled(720, sf));
  household_demographics.AddPrimaryKey("hd_demo_sk");
  household_demographics.AddForeignKey("hd_income_band_sk", rib);
  household_demographics.AddDataAttribute("hd_buy_potential", Interval(0, 6));
  household_demographics.AddDataAttribute("hd_dep_count", Interval(0, 10));
  household_demographics.AddDataAttribute("hd_vehicle_count", Interval(0, 5));
  const int rhd = s.AddRelation(std::move(household_demographics));

  Relation store("store", DimScaled(60, sf));
  store.AddPrimaryKey("s_store_sk");
  store.AddDataAttribute("s_floor_space", Interval(5000, 10000));
  store.AddDataAttribute("s_number_employees", Interval(50, 300));
  store.AddDataAttribute("s_market_id", Interval(0, 10));
  const int rst = s.AddRelation(std::move(store));

  Relation warehouse("warehouse", DimScaled(25, sf));
  warehouse.AddPrimaryKey("w_warehouse_sk");
  warehouse.AddDataAttribute("w_warehouse_sq_ft", Interval(50, 1000));
  const int rw = s.AddRelation(std::move(warehouse));

  Relation ship_mode("ship_mode", 20);
  ship_mode.AddPrimaryKey("sm_ship_mode_sk");
  ship_mode.AddDataAttribute("sm_type", Interval(0, 6));
  const int rsm = s.AddRelation(std::move(ship_mode));

  Relation promotion("promotion", DimScaled(300, sf));
  promotion.AddPrimaryKey("p_promo_sk");
  promotion.AddDataAttribute("p_channel", Interval(0, 5));
  promotion.AddDataAttribute("p_cost", Interval(100, 10000));
  const int rp = s.AddRelation(std::move(promotion));

  Relation reason("reason", 35);
  reason.AddPrimaryKey("r_reason_sk");
  reason.AddDataAttribute("r_reason_code", Interval(0, 35));
  const int rr = s.AddRelation(std::move(reason));

  Relation call_center("call_center", DimScaled(30, sf));
  call_center.AddPrimaryKey("cc_call_center_sk");
  call_center.AddDataAttribute("cc_employees", Interval(10, 500));
  const int rcc = s.AddRelation(std::move(call_center));

  Relation catalog_page("catalog_page", DimScaled(1170, sf));
  catalog_page.AddPrimaryKey("cp_catalog_page_sk");
  catalog_page.AddDataAttribute("cp_type", Interval(0, 4));
  const int rcp = s.AddRelation(std::move(catalog_page));

  Relation web_site("web_site", DimScaled(30, sf));
  web_site.AddPrimaryKey("web_site_sk");
  web_site.AddDataAttribute("web_market", Interval(0, 6));
  const int rws = s.AddRelation(std::move(web_site));

  Relation web_page("web_page", DimScaled(60, sf));
  web_page.AddPrimaryKey("wp_web_page_sk");
  web_page.AddDataAttribute("wp_type", Interval(0, 7));
  const int rwp = s.AddRelation(std::move(web_page));

  Relation customer("customer", DimScaled(10000, sf));
  customer.AddPrimaryKey("c_customer_sk");
  customer.AddForeignKey("c_current_addr_sk", rca);
  customer.AddForeignKey("c_current_cdemo_sk", rcd);
  customer.AddForeignKey("c_current_hdemo_sk", rhd);
  customer.AddDataAttribute("c_birth_year", Interval(1920, 2000));
  customer.AddDataAttribute("c_preferred_flag", Interval(0, 2));
  const int rc = s.AddRelation(std::move(customer));

  // --- Facts -------------------------------------------------------------
  Relation store_sales("store_sales", Scaled(28800, sf));
  store_sales.AddPrimaryKey("ss_ticket_sk");
  store_sales.AddForeignKey("ss_sold_date_sk", rd);
  store_sales.AddForeignKey("ss_sold_time_sk", rt);
  store_sales.AddForeignKey("ss_item_sk", ri);
  store_sales.AddForeignKey("ss_customer_sk", rc);
  store_sales.AddForeignKey("ss_store_sk", rst);
  store_sales.AddForeignKey("ss_promo_sk", rp);
  store_sales.AddDataAttribute("ss_quantity", Interval(1, 100));
  store_sales.AddDataAttribute("ss_sales_price", Interval(1, 200));
  store_sales.AddDataAttribute("ss_ext_discount_amt", Interval(0, 100));
  store_sales.AddDataAttribute("ss_net_profit", Interval(-5000, 5000));
  s.AddRelation(std::move(store_sales));

  Relation store_returns("store_returns", Scaled(2880, sf));
  store_returns.AddPrimaryKey("sr_ticket_sk");
  store_returns.AddForeignKey("sr_returned_date_sk", rd);
  store_returns.AddForeignKey("sr_item_sk", ri);
  store_returns.AddForeignKey("sr_customer_sk", rc);
  store_returns.AddForeignKey("sr_store_sk", rst);
  store_returns.AddForeignKey("sr_reason_sk", rr);
  store_returns.AddDataAttribute("sr_return_quantity", Interval(1, 100));
  store_returns.AddDataAttribute("sr_return_amt", Interval(1, 20000));
  s.AddRelation(std::move(store_returns));

  Relation catalog_sales("catalog_sales", Scaled(14400, sf));
  catalog_sales.AddPrimaryKey("cs_order_sk");
  catalog_sales.AddForeignKey("cs_sold_date_sk", rd);
  catalog_sales.AddForeignKey("cs_item_sk", ri);
  catalog_sales.AddForeignKey("cs_bill_customer_sk", rc);
  catalog_sales.AddForeignKey("cs_call_center_sk", rcc);
  catalog_sales.AddForeignKey("cs_catalog_page_sk", rcp);
  catalog_sales.AddForeignKey("cs_ship_mode_sk", rsm);
  catalog_sales.AddForeignKey("cs_warehouse_sk", rw);
  catalog_sales.AddForeignKey("cs_promo_sk", rp);
  catalog_sales.AddDataAttribute("cs_quantity", Interval(1, 100));
  catalog_sales.AddDataAttribute("cs_sales_price", Interval(1, 300));
  catalog_sales.AddDataAttribute("cs_net_paid", Interval(1, 30000));
  s.AddRelation(std::move(catalog_sales));

  Relation catalog_returns("catalog_returns", Scaled(1440, sf));
  catalog_returns.AddPrimaryKey("cr_order_sk");
  catalog_returns.AddForeignKey("cr_returned_date_sk", rd);
  catalog_returns.AddForeignKey("cr_item_sk", ri);
  catalog_returns.AddForeignKey("cr_customer_sk", rc);
  catalog_returns.AddForeignKey("cr_call_center_sk", rcc);
  catalog_returns.AddForeignKey("cr_reason_sk", rr);
  catalog_returns.AddForeignKey("cr_warehouse_sk", rw);
  catalog_returns.AddDataAttribute("cr_return_quantity", Interval(1, 100));
  catalog_returns.AddDataAttribute("cr_return_amount", Interval(1, 30000));
  s.AddRelation(std::move(catalog_returns));

  Relation web_sales("web_sales", Scaled(7200, sf));
  web_sales.AddPrimaryKey("ws_order_sk");
  web_sales.AddForeignKey("ws_sold_date_sk", rd);
  web_sales.AddForeignKey("ws_sold_time_sk", rt);
  web_sales.AddForeignKey("ws_item_sk", ri);
  web_sales.AddForeignKey("ws_bill_customer_sk", rc);
  web_sales.AddForeignKey("ws_web_site_sk", rws);
  web_sales.AddForeignKey("ws_web_page_sk", rwp);
  web_sales.AddForeignKey("ws_ship_mode_sk", rsm);
  web_sales.AddForeignKey("ws_warehouse_sk", rw);
  web_sales.AddForeignKey("ws_promo_sk", rp);
  web_sales.AddDataAttribute("ws_quantity", Interval(1, 100));
  web_sales.AddDataAttribute("ws_sales_price", Interval(1, 300));
  web_sales.AddDataAttribute("ws_net_profit", Interval(-5000, 10000));
  s.AddRelation(std::move(web_sales));

  Relation web_returns("web_returns", Scaled(720, sf));
  web_returns.AddPrimaryKey("wr_order_sk");
  web_returns.AddForeignKey("wr_returned_date_sk", rd);
  web_returns.AddForeignKey("wr_item_sk", ri);
  web_returns.AddForeignKey("wr_customer_sk", rc);
  web_returns.AddForeignKey("wr_web_page_sk", rwp);
  web_returns.AddForeignKey("wr_reason_sk", rr);
  web_returns.AddDataAttribute("wr_return_quantity", Interval(1, 100));
  web_returns.AddDataAttribute("wr_return_amt", Interval(1, 30000));
  s.AddRelation(std::move(web_returns));

  Relation inventory("inventory", Scaled(58500, sf));
  inventory.AddPrimaryKey("inv_sk");
  inventory.AddForeignKey("inv_date_sk", rd);
  inventory.AddForeignKey("inv_item_sk", ri);
  inventory.AddForeignKey("inv_warehouse_sk", rw);
  inventory.AddDataAttribute("inv_quantity_on_hand", Interval(0, 1000));
  s.AddRelation(std::move(inventory));

  HYDRA_CHECK_OK(s.Validate());
  return s;
}

std::vector<Query> TpcdsWorkload(const Schema& schema, TpcdsWorkloadKind kind,
                                 int num_queries, uint64_t seed) {
  Rng rng(seed ^ (kind == TpcdsWorkloadKind::kComplex ? 0xC0 : 0x51));
  const bool complex = kind == TpcdsWorkloadKind::kComplex;

  FilterGenOptions filter_options;
  filter_options.quantize_positions = complex ? 0 : 20;
  filter_options.dnf_probability = complex ? 0.25 : 0.0;
  filter_options.in_probability = complex ? 0.2 : 0.0;

  const std::vector<std::string> fact_names = {
      "store_sales", "catalog_sales", "web_sales",      "inventory",
      "store_returns", "catalog_returns", "web_returns"};
  const std::vector<std::string> dim_only = {"item", "customer", "date_dim",
                                             "customer_demographics"};

  std::vector<Query> queries;
  queries.reserve(num_queries);
  for (int q = 0; q < num_queries; ++q) {
    Query query;
    query.name = (complex ? "wlc_q" : "wls_q") + std::to_string(q);

    // "Wide dimension probes" constrain most attributes of one
    // attribute-rich dimension at once (TPC-DS queries routinely pair
    // i_category, i_class, i_brand and i_current_price). They are what make
    // grid-partitioning explode — the sub-view clique covers the whole
    // dimension and the grid is the product of every column's interval
    // count — while Hydra's region count only grows with realized
    // constraint signatures.
    const bool wide_probe = rng.NextBool(complex ? 0.35 : 0.25);
    const bool dim_query =
        (wide_probe && !complex) || rng.NextBool(complex ? 0.15 : 0.3);
    const std::string root_name =
        wide_probe && !complex
            ? (rng.NextBool(0.5) ? "item" : "date_dim")
            : (dim_query ? dim_only[rng.NextBounded(dim_only.size())]
                         : fact_names[rng.NextBounded(fact_names.size())]);
    const int root = schema.RelationIndex(root_name);
    HYDRA_CHECK(root >= 0);
    query.tables.push_back(QueryTable{root, DnfPredicate::True()});

    // Join a random subset of the root's FK targets; optionally snowflake
    // through customer / household_demographics.
    const Relation& root_rel = schema.relation(root);
    std::vector<int> fks = root_rel.ForeignKeyIndices();
    // Shuffle.
    for (size_t i = fks.size(); i > 1; --i) {
      std::swap(fks[i - 1], fks[rng.NextBounded(i)]);
    }
    const int max_joins =
        complex ? static_cast<int>(rng.NextInt(1, 5))
                : static_cast<int>(rng.NextInt(0, 3));
    int filter_budget = complex ? static_cast<int>(rng.NextInt(1, 4))
                                : static_cast<int>(rng.NextInt(1, 3));

    std::vector<int> joined_tables = {0};
    int joins_done = 0;
    for (int fk : fks) {
      if (joins_done >= max_joins) break;
      const int target = root_rel.attribute(fk).fk_target;
      const int t = JoinPkSide(&query, 0, fk, target);
      joined_tables.push_back(t);
      ++joins_done;
      // Snowflake one level deeper with some probability.
      if (complex && rng.NextBool(0.3) && joins_done < max_joins) {
        const Relation& dim_rel = schema.relation(target);
        const std::vector<int> dim_fks = dim_rel.ForeignKeyIndices();
        if (!dim_fks.empty()) {
          const int dfk =
              dim_fks[rng.NextBounded(dim_fks.size())];
          const int t2 = JoinPkSide(&query, t, dfk,
                                    dim_rel.attribute(dfk).fk_target);
          joined_tables.push_back(t2);
          ++joins_done;
        }
      }
    }

    if (wide_probe) {
      // Pick the joined table with the most data attributes.
      int wide_t = 0;
      size_t best = 0;
      for (int t : joined_tables) {
        const size_t n =
            schema.relation(query.tables[t].relation).DataAttrIndices().size();
        if (n > best) {
          best = n;
          wide_t = t;
        }
      }
      const Relation& rel = schema.relation(query.tables[wide_t].relation);
      std::vector<int> data_attrs = rel.DataAttrIndices();
      // WLs probes stay at <= 5 attributes so that DataSynth's grid remains
      // within its solver budget — WLs is by construction the workload the
      // baseline can still handle (Section 7).
      if (!complex && data_attrs.size() > 5) data_attrs.resize(5);
      FilterGenOptions narrow_options = filter_options;
      narrow_options.narrow = true;
      narrow_options.dnf_probability = 0;
      for (int attr : data_attrs) {
        AddFilter(&query.tables[wide_t],
                  RandomFilter(rel, attr, rng, narrow_options));
      }
      queries.push_back(std::move(query));
      continue;
    }

    // Otherwise filters touch at most two of the joined tables (pairing a
    // fact measure with one dimension attribute, as the benchmark's typical
    // queries do); spreading filters across every dimension would create
    // view-graph cliques and separators no real workload exhibits.
    std::vector<int> filter_tables;
    filter_tables.push_back(
        static_cast<int>(joined_tables[rng.NextBounded(joined_tables.size())]));
    filter_tables.push_back(
        static_cast<int>(joined_tables[rng.NextBounded(joined_tables.size())]));
    int attempts = 0;
    while (filter_budget > 0 && attempts < 32) {
      ++attempts;
      const int t = filter_tables[rng.NextBounded(filter_tables.size())];
      const Relation& rel = schema.relation(query.tables[t].relation);
      const std::vector<int> data_attrs = rel.DataAttrIndices();
      if (data_attrs.empty()) continue;
      // Real TPC-DS workloads hammer a few hot columns (d_year, i_category,
      // ss_quantity, ...): bias towards each table's first data attributes.
      // This concentration is what piles dozens of interval boundaries onto
      // the same columns, blowing up DataSynth's grids while Hydra's region
      // count only grows with realized constraint signatures.
      const size_t hot = std::min<size_t>(2, data_attrs.size());
      const int attr = (complex && rng.NextBool(0.75))
                           ? data_attrs[rng.NextBounded(hot)]
                           : data_attrs[rng.NextBounded(data_attrs.size())];
      AddFilter(&query.tables[t],
                RandomFilter(rel, attr, rng, filter_options));
      --filter_budget;
    }

    // Guarantee at least one non-trivial step.
    bool has_filter = false;
    for (const QueryTable& qt : query.tables) {
      if (!qt.filter.IsTrue()) has_filter = true;
    }
    if (!has_filter && query.joins.empty()) {
      const Relation& rel = schema.relation(root);
      const std::vector<int> data_attrs = rel.DataAttrIndices();
      if (!data_attrs.empty()) {
        AddFilter(&query.tables[0],
                  RandomFilter(rel, data_attrs[0], rng, filter_options));
      }
    }
    queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace hydra
