#include "workload/workload_runner.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace hydra {

StatusOr<ClientSite> BuildClientSite(const Schema& schema,
                                     const DataGenOptions& datagen_options,
                                     std::vector<Query> queries,
                                     const ExecOptions& exec) {
  ClientSite site{schema, Database(schema), std::move(queries), {}, {}};
  HYDRA_ASSIGN_OR_RETURN(site.database,
                         GenerateClientDatabase(schema, datagen_options));

  // Size CCs from metadata (CODD's catalog transfer).
  for (int r = 0; r < schema.num_relations(); ++r) {
    site.ccs.push_back(RelationSizeConstraint(
        r, site.database.RowCount(r),
        "|" + schema.relation(r).name() + "|"));
  }

  Executor executor(site.schema, exec);
  site.aqps.reserve(site.queries.size());
  for (const Query& q : site.queries) {
    HYDRA_ASSIGN_OR_RETURN(AnnotatedQueryPlan aqp,
                           executor.Execute(q, site.database));
    std::vector<CardinalityConstraint> ccs = AqpToConstraints(aqp);
    site.ccs.insert(site.ccs.end(), ccs.begin(), ccs.end());
    site.aqps.push_back(std::move(aqp));
  }
  return site;
}

double SimilarityReport::FractionWithin(double threshold) const {
  if (entries.empty()) return 1.0;
  int within = 0;
  for (const SimilarityEntry& e : entries) {
    if (std::fabs(e.signed_relative_error) <= threshold) ++within;
  }
  return static_cast<double>(within) / entries.size();
}

double SimilarityReport::MaxAbsError() const {
  double worst = 0;
  for (const SimilarityEntry& e : entries) {
    worst = std::max(worst, std::fabs(e.signed_relative_error));
  }
  return worst;
}

int SimilarityReport::CountNegative() const {
  int n = 0;
  for (const SimilarityEntry& e : entries) {
    if (e.signed_relative_error < 0) ++n;
  }
  return n;
}

StatusOr<SimilarityReport> MeasureVolumetricSimilarity(
    const ClientSite& client, const TableSource& vendor,
    const ExecOptions& exec) {
  SimilarityReport report;

  auto add_entry = [&](const std::string& label, uint64_t want,
                       uint64_t got) {
    SimilarityEntry e;
    e.label = label;
    e.client_cardinality = want;
    e.vendor_cardinality = got;
    e.signed_relative_error =
        (static_cast<double>(got) - static_cast<double>(want)) /
        std::max<double>(1.0, static_cast<double>(want));
    report.entries.push_back(std::move(e));
  };

  for (int r = 0; r < client.schema.num_relations(); ++r) {
    add_entry("|" + client.schema.relation(r).name() + "|",
              client.database.RowCount(r), vendor.RowCount(r));
  }

  Executor executor(client.schema, exec);
  for (size_t qi = 0; qi < client.queries.size(); ++qi) {
    HYDRA_ASSIGN_OR_RETURN(
        AnnotatedQueryPlan vendor_aqp,
        executor.Execute(client.queries[qi], vendor));
    const AnnotatedQueryPlan& client_aqp = client.aqps[qi];
    if (vendor_aqp.steps.size() != client_aqp.steps.size()) {
      return Status::Internal("plan shape mismatch for query " +
                              client.queries[qi].name);
    }
    for (size_t s = 0; s < vendor_aqp.steps.size(); ++s) {
      add_entry(client_aqp.steps[s].label, client_aqp.steps[s].cardinality,
                vendor_aqp.steps[s].cardinality);
    }
  }
  return report;
}

}  // namespace hydra
