#include "workload/querygen.h"

#include <algorithm>

#include "common/logging.h"

namespace hydra {

namespace {

// A random sub-range of `domain` covering ~5-60% of it (or ~2-12% when
// `narrow`), optionally with endpoints quantized to a coarse lattice.
Interval RandomRange(const Interval& domain, Rng& rng, int quantize,
                     bool narrow) {
  const int64_t width = domain.Count();
  int64_t lo, hi;
  if (quantize > 1 && width >= quantize) {
    const int64_t step = width / quantize;
    if (narrow) {
      const int64_t a = rng.NextInt(0, quantize);
      lo = domain.lo + a * step;
      hi = std::min(domain.hi, lo + step * rng.NextInt(1, 3));
    } else {
      const int64_t a = rng.NextInt(0, quantize);
      const int64_t b = rng.NextInt(0, quantize) + 1;
      lo = domain.lo + std::min(a, b - 1) * step;
      hi = domain.lo + std::max(a + 1, b) * step;
      hi = std::min(hi, domain.hi);
    }
  } else {
    const int64_t max_span =
        narrow ? std::max<int64_t>(1, width / 10)
               : std::max<int64_t>(1, width * 11 / 20);
    const int64_t span = std::max<int64_t>(
        1, width / (narrow ? 50 : 20) + rng.NextInt(0, max_span));
    lo = rng.NextInt(domain.lo, std::max(domain.lo + 1, domain.hi - span));
    hi = std::min(domain.hi, lo + span);
  }
  if (hi <= lo) hi = lo + 1;
  return Interval(lo, hi);
}

}  // namespace

DnfPredicate RandomFilter(const Relation& rel, int attr, Rng& rng,
                          const FilterGenOptions& options) {
  const Interval domain = rel.attribute(attr).domain;
  HYDRA_CHECK(rel.attribute(attr).kind == AttributeKind::kData);

  auto random_atom = [&]() -> Atom {
    if (rng.NextBool(options.in_probability) && domain.Count() >= 8) {
      const int k = static_cast<int>(rng.NextInt(2, 5));
      std::vector<Value> values;
      for (int i = 0; i < k; ++i) {
        values.push_back(rng.NextInt(domain.lo, domain.hi));
      }
      return AtomIn(attr, values);
    }
    const Interval range =
        RandomRange(domain, rng, options.quantize_positions, options.narrow);
    return AtomRange(attr, range.lo, range.hi);
  };

  if (rng.NextBool(options.dnf_probability)) {
    // (atom ∧ atom) ∨ atom — a genuine multi-conjunct DNF filter.
    Conjunct c1;
    c1.AddAtom(random_atom());
    c1.AddAtom(random_atom());
    Conjunct c2;
    c2.AddAtom(random_atom());
    DnfPredicate p;
    p.AddConjunct(std::move(c1));
    p.AddConjunct(std::move(c2));
    return p;
  }
  return PredicateOf(random_atom());
}

void AddFilter(QueryTable* table, const DnfPredicate& extra) {
  table->filter =
      table->filter.IsTrue() ? extra : table->filter.And(extra);
}

int JoinPkSide(Query* query, int fk_table, int fk_attr, int relation) {
  const int new_index = static_cast<int>(query->tables.size());
  query->tables.push_back(QueryTable{relation, DnfPredicate::True()});
  query->joins.push_back(JoinEdge{fk_table, fk_attr, new_index});
  return new_index;
}

}  // namespace hydra
