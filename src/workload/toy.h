// The paper's running example (Figure 1): relations R(R_pk, S_fk, T_fk),
// S(S_pk, A, B), T(T_pk, C) with the example query's cardinality constraints
// (Figure 1d). Used by the quickstart example and by end-to-end tests.

#ifndef HYDRA_WORKLOAD_TOY_H_
#define HYDRA_WORKLOAD_TOY_H_

#include <vector>

#include "catalog/schema.h"
#include "query/constraint.h"
#include "query/query.h"

namespace hydra {

struct ToyEnvironment {
  Schema schema;
  // The Figure 1d constraints, hand-built (|R|, |S|, |T|, two filter CCs and
  // two join CCs).
  std::vector<CardinalityConstraint> ccs;
  // The Figure 1b query (for engine-based round trips).
  Query query;
};

ToyEnvironment MakeToyEnvironment();

}  // namespace hydra

#endif  // HYDRA_WORKLOAD_TOY_H_
